// Classic pcap (libpcap "tcpdump" format) — the trace container that makes
// the simulated links talk to the rest of the world: anything this repo
// records opens in tcpdump/wireshark, and any classic pcap becomes a
// replayable workload (capture/replay.hpp).
//
// Scope is deliberately the *classic* format, not pcapng: a 24-octet file
// header (magic, version, snaplen, linktype) followed by flat records. All
// four on-disk dialects are handled — little- and big-endian files, and
// both timestamp magics (0xa1b2c3d4 microseconds, 0xa1b23c4d nanoseconds).
// Records normalise to nanoseconds in memory; PcapMeta remembers the file's
// own endianness/precision so a parse→serialize round trip is byte-exact
// (the golden-vector tests pin this).
//
// Two reading shapes:
//   * parse_pcap() — whole buffer in memory, returns every record. A file
//     cut off mid-record (a capture that died with the disk) yields the
//     records before the cut plus truncated_tail=true, never a hard error.
//   * PcapFileReader — bounded-memory streaming: one record resident at a
//     time, so a multi-gigabyte trace replays without loading it.
// Writing mirrors that: serialize_pcap() for buffers, PcapWriter for
// streaming append (create, or reopen an existing capture and continue it).
#pragma once

#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace p5::net::capture {

inline constexpr u32 kMagicUsec = 0xa1b2c3d4;  ///< timestamps in microseconds
inline constexpr u32 kMagicNsec = 0xa1b23c4d;  ///< timestamps in nanoseconds

// Linktypes this repo writes (the LINKTYPE_* registry values).
inline constexpr u32 kLinkPpp = 9;      ///< PPP: [ff 03][proto be16][info]
inline constexpr u32 kLinkRawIp = 101;  ///< raw IPv4/IPv6 datagrams
inline constexpr u32 kLinkUser0 = 147;  ///< reserved-for-private-use: SONET chunks

inline constexpr std::size_t kFileHeaderBytes = 24;
inline constexpr std::size_t kRecordHeaderBytes = 16;
inline constexpr u32 kDefaultSnaplen = 65535;

/// The file-level facts a byte-exact round trip has to preserve.
struct PcapMeta {
  bool big_endian = false;  ///< file written with big-endian headers
  bool nsec = false;        ///< nanosecond magic (else microsecond)
  u16 version_major = 2;
  u16 version_minor = 4;
  u32 snaplen = kDefaultSnaplen;
  u32 linktype = kLinkRawIp;
};

/// One captured packet. `ts_nsec` is always nanoseconds-within-second in
/// memory regardless of the file dialect; usec files quantise on write.
struct PcapRecord {
  u32 ts_sec = 0;
  u32 ts_nsec = 0;
  u32 orig_len = 0;  ///< length on the wire (>= data.size() when snapped)
  Bytes data;

  [[nodiscard]] u64 timestamp_ns() const {
    return static_cast<u64>(ts_sec) * 1'000'000'000ull + ts_nsec;
  }
};

struct PcapFile {
  PcapMeta meta;
  std::vector<PcapRecord> records;
  /// The byte stream ended inside a record header or body: everything
  /// before the cut parsed fine, the partial tail was discarded.
  bool truncated_tail = false;
};

/// Parse the 24-octet file header. nullopt: not a classic pcap.
[[nodiscard]] std::optional<PcapMeta> parse_pcap_header(BytesView data);

/// Whole-buffer parse. nullopt only for a bad file header; a truncated tail
/// sets the flag instead of failing (see header comment).
[[nodiscard]] std::optional<PcapFile> parse_pcap(BytesView data);

[[nodiscard]] Bytes serialize_pcap_header(const PcapMeta& meta);
[[nodiscard]] Bytes serialize_record(const PcapMeta& meta, const PcapRecord& rec);
[[nodiscard]] Bytes serialize_pcap(const PcapMeta& meta,
                                   std::span<const PcapRecord> records);

/// Streaming reader: one record in memory at a time.
class PcapFileReader {
 public:
  PcapFileReader() = default;
  ~PcapFileReader();
  PcapFileReader(const PcapFileReader&) = delete;
  PcapFileReader& operator=(const PcapFileReader&) = delete;

  /// False: unreadable file or not a classic pcap (see error()).
  [[nodiscard]] bool open(const std::string& path);
  /// Next record, nullopt at end of file (clean or truncated — check
  /// truncated() afterwards). Record bodies larger than the file's snaplen
  /// plus slack are treated as a truncation point, not an allocation.
  [[nodiscard]] std::optional<PcapRecord> next();

  [[nodiscard]] const PcapMeta& meta() const { return meta_; }
  [[nodiscard]] bool truncated() const { return truncated_; }
  [[nodiscard]] u64 records_read() const { return records_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::FILE* f_ = nullptr;
  PcapMeta meta_;
  bool truncated_ = false;
  u64 records_ = 0;
  std::string error_;
};

/// Streaming writer: header on create, records appended one by one (each
/// write hits the stream, so a crashed process leaves a readable prefix —
/// exactly the truncated-tail case the reader tolerates).
class PcapWriter {
 public:
  PcapWriter() = default;
  ~PcapWriter();
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Create/truncate `path` and write the file header.
  [[nodiscard]] bool create(const std::string& path, const PcapMeta& meta);
  /// Reopen an existing capture for append: the on-disk header supplies the
  /// meta (so appended records match the file's dialect). False when the
  /// file is missing or not a classic pcap.
  [[nodiscard]] bool append_to(const std::string& path);

  /// Append one record. False once the stream has failed (drops are the
  /// caller's ledger — see CaptureTap).
  [[nodiscard]] bool write(const PcapRecord& rec);
  void flush();
  void close();

  [[nodiscard]] bool is_open() const { return f_ != nullptr; }
  [[nodiscard]] const PcapMeta& meta() const { return meta_; }
  [[nodiscard]] u64 records_written() const { return records_; }
  [[nodiscard]] u64 bytes_written() const { return bytes_; }

 private:
  std::FILE* f_ = nullptr;
  PcapMeta meta_;
  u64 records_ = 0;
  u64 bytes_ = 0;  ///< record payload octets (not headers)
};

}  // namespace p5::net::capture
