#include "sonet/scrambler.hpp"

#include <algorithm>
#include <array>

#include "fastpath/scrambler_tables.hpp"

namespace p5::sonet {

namespace {

// Bulk path for the frame-synchronous scrambler: the x^7+x^6+1 keystream is
// data-independent and, stepping 8 bits per octet over the 127 nonzero LFSR
// states (127 is prime, so the walk visits all of them), repeats every 127
// octets. Applying it is a periodic XOR — precompute one period plus the
// state<->position maps and the per-octet table walk disappears from the
// per-frame cost.
struct FrameKeystream {
  std::array<u8, 127> ks{};        ///< keystream from the all-ones seed
  std::array<u8, 128> idx_of{};    ///< LFSR state -> position in the cycle
  std::array<u8, 127> state_of{};  ///< position -> LFSR state
  FrameKeystream() {
    const auto& table = fastpath::frame_scrambler_steps();
    u8 s = 0x7F;
    for (std::size_t i = 0; i < 127; ++i) {
      state_of[i] = s;
      idx_of[s] = static_cast<u8>(i);
      ks[i] = table[s].keystream;
      s = table[s].next;
    }
  }
};

const FrameKeystream& frame_keystream() {
  static const FrameKeystream k;
  return k;
}

}  // namespace

u8 FrameScrambler::next_keystream() {
  const auto& step = fastpath::frame_scrambler_steps()[state_];
  state_ = step.next;
  return step.keystream;
}

void FrameScrambler::apply(Bytes& data, std::size_t begin, std::size_t end) {
  const auto& k = frame_keystream();
  std::size_t i = begin;
  const std::size_t stop = std::min(end, data.size());
  std::size_t idx = k.idx_of[state_];
  while (i < stop) {
    const std::size_t run = std::min<std::size_t>(127 - idx, stop - i);
    u8* __restrict__ d = data.data() + i;
    const u8* __restrict__ s = k.ks.data() + idx;
    for (std::size_t j = 0; j < run; ++j) d[j] ^= s[j];
    i += run;
    idx += run;
    if (idx == 127) idx = 0;
  }
  state_ = k.state_of[idx];
}

Bytes SelfSyncScrambler43::scramble(BytesView data) {
  Bytes out;
  out.reserve(data.size());
  for (const u8 b : data) out.push_back(scramble(b));
  return out;
}

Bytes SelfSyncScrambler43::descramble(BytesView data) {
  Bytes out;
  out.reserve(data.size());
  for (const u8 b : data) out.push_back(descramble(b));
  return out;
}

// Bulk x^43+1 paths. The 43-bit delay is 5 octets + 3 bits, so the keystream
// octet at position i is a bit-splice of the stream octets at i-6 and i-5:
//   K[i] = (s[i-6] << 5) | (s[i-5] >> 3)
// where s is the *output* stream when scrambling and the *received* stream
// when descrambling (self-synchronous). That turns the serial 64-bit history
// shift — a loop-carried dependency every octet — into plain array reads:
// descrambling has no dependency at all (run backward so the raw lookback
// octets survive in place), scrambling's dependency is 5 octets away, far
// enough for the CPU to overlap iterations. The first 6 octets still splice
// against the pre-call history, and the history register is reconstituted
// from the stream tail afterwards, so state across calls is bit-identical to
// the per-octet path.

void SelfSyncScrambler43::scramble_in_place(Bytes& data) {
  const std::size_t n = data.size();
  if (n < 12) {
    for (u8& b : data) b = scramble(b);
    return;
  }
  for (std::size_t i = 0; i < 6; ++i) data[i] = scramble(data[i]);
  u8* d = data.data();
  for (std::size_t i = 6; i < n; ++i)
    d[i] = static_cast<u8>(d[i] ^ static_cast<u8>((d[i - 6] << 5) | (d[i - 5] >> 3)));
  u64 h = 0;
  for (std::size_t i = n - 6; i < n; ++i) h = (h << 8) | d[i];
  history_ = h & kMask;
}

void SelfSyncScrambler43::descramble_in_place(Bytes& data) {
  const std::size_t n = data.size();
  if (n < 12) {
    for (u8& b : data) b = descramble(b);
    return;
  }
  u8* d = data.data();
  u64 h = 0;
  for (std::size_t i = n - 6; i < n; ++i) h = (h << 8) | d[i];  // raw tail, pre-overwrite
  for (std::size_t i = n; i-- > 6;)
    d[i] = static_cast<u8>(d[i] ^ static_cast<u8>((d[i - 6] << 5) | (d[i - 5] >> 3)));
  for (std::size_t i = 0; i < 6; ++i) d[i] = descramble(d[i]);  // pre-call history
  history_ = h & kMask;
}

}  // namespace p5::sonet
