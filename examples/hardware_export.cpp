// Hardware export: dump every P5 block as synthesisable structural Verilog
// plus a VCD waveform of the cycle model under load — the artefacts you
// would hand to an FPGA flow (Yosys/Vivado) and a waveform viewer (GTKWave)
// to take this reproduction back onto real silicon.
//
//   build/examples/hardware_export [output_dir]   (default ./p5_export)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"
#include "crc/crc_spec.hpp"
#include "netlist/circuits/control_circuits.hpp"
#include "netlist/circuits/crc_circuit.hpp"
#include "netlist/circuits/escape_circuits.hpp"
#include "netlist/circuits/oam_circuit.hpp"
#include "netlist/lut_mapper.hpp"
#include "netlist/verilog.hpp"
#include "p5/p5.hpp"

int main(int argc, char** argv) {
  using namespace p5;
  namespace fs = std::filesystem;

  const fs::path dir = argc > 1 ? argv[1] : "p5_export";
  fs::create_directories(dir);

  // ---- Verilog for every block, both widths ----
  std::vector<netlist::Netlist> blocks;
  for (const unsigned lanes : {1u, 4u}) {
    blocks.push_back(netlist::circuits::make_escape_generate_circuit(lanes));
    blocks.push_back(netlist::circuits::make_escape_detect_circuit(lanes));
    blocks.push_back(netlist::circuits::make_crc_unit_circuit(crc::kFcs32, lanes));
    blocks.push_back(netlist::circuits::make_tx_control_circuit(lanes));
    blocks.push_back(netlist::circuits::make_rx_control_circuit(lanes));
    blocks.push_back(netlist::circuits::make_flag_inserter_circuit(lanes));
    blocks.push_back(netlist::circuits::make_flag_delineator_circuit(lanes));
  }
  blocks.push_back(netlist::circuits::make_oam_circuit(32));

  std::printf("%-28s %10s %8s %8s  %s\n", "block", "verilog B", "LUTs", "FFs", "file");
  for (const auto& nl : blocks) {
    const std::string v = netlist::to_verilog(nl);
    const fs::path file = dir / (nl.name() + ".v");
    std::ofstream(file) << v;
    const auto m = netlist::map_to_luts(nl);
    std::printf("%-28s %10zu %8zu %8zu  %s\n", nl.name().c_str(), v.size(), m.luts, m.ffs,
                file.string().c_str());
  }

  // ---- VCD waveform of the 32-bit device swallowing an escape-dense burst ----
  core::P5Config cfg;
  cfg.lanes = 4;
  core::P5 dev(cfg);
  rtl::VcdWriter vcd("p5_32bit", 1000.0 / cfg.clock_mhz);
  dev.attach_trace(&vcd);
  dev.set_rx_sink([](core::RxDelivery) {});
  Xoshiro256 rng(3);
  for (int i = 0; i < 6; ++i) {
    Bytes p = rng.bytes(200);
    for (int k = 0; k < 40; ++k) p[rng.below(p.size())] = 0x7E;  // escape-dense
    dev.submit_datagram(0x0021, p);
  }
  for (int k = 0; k < 600; ++k) dev.phy_push_rx(dev.phy_pull_tx(4));
  dev.drain_rx(100);

  const fs::path wave = dir / "p5_32bit.vcd";
  if (!vcd.write_file(wave.string())) {
    std::printf("failed to write %s\n", wave.string().c_str());
    return 1;
  }
  std::printf("\nwaveform: %s (%zu signals, open with gtkwave)\n", wave.string().c_str(),
              vcd.signal_count());
  return 0;
}
