file(REMOVE_RECURSE
  "CMakeFiles/p5_net.dir/capture.cpp.o"
  "CMakeFiles/p5_net.dir/capture.cpp.o.d"
  "CMakeFiles/p5_net.dir/ipv4.cpp.o"
  "CMakeFiles/p5_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/p5_net.dir/mapos.cpp.o"
  "CMakeFiles/p5_net.dir/mapos.cpp.o.d"
  "CMakeFiles/p5_net.dir/traffic.cpp.o"
  "CMakeFiles/p5_net.dir/traffic.cpp.o.d"
  "libp5_net.a"
  "libp5_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
