file(REMOVE_RECURSE
  "libp5_common.a"
)
