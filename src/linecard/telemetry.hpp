// Per-channel line-card telemetry: the counters an operator's SNMP poll or a
// bench harness wants, updated from the channel's worker thread with relaxed
// atomics (each counter has exactly one writer) and read from any thread via
// a stabilising double-read snapshot.
//
// Each channel's counter block is cache-line aligned and padded so two
// workers hammering their own counters never share a line (the same false-
// sharing discipline as the SPSC ring indices).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "linecard/spsc_ring.hpp"

namespace p5::linecard {

/// Plain-value copy of one channel's counters (or an aggregate roll-up).
struct ChannelSnapshot {
  u64 frames_in = 0;   ///< descriptors accepted into the channel's link
  u64 frames_out = 0;  ///< datagrams delivered out of the link
  u64 bytes_in = 0;    ///< payload octets in (headers/FCS/flags excluded)
  u64 bytes_out = 0;   ///< payload octets delivered
  u64 fcs_errors = 0;  ///< far-end receiver junk events (FCS/abort/filter/overflow)
  /// Admitted descriptors written off as undeliverable. Loss accounting is
  /// exact: at idle, frames_in == frames_out + frames_lost — every admitted
  /// descriptor is either delivered or counted here, never both.
  u64 frames_lost = 0;
  u64 ring_full_stalls = 0;  ///< descriptor pushes that found a ring/device full
  u64 ingress_hwm = 0;       ///< peak source+fabric ring occupancy observed
  u64 egress_hwm = 0;        ///< peak egress ring (+spill) occupancy observed
  /// Escape-engine dispatch-tier selections for this channel's fabric-side
  /// re-framing: how many stuff/destuff calls ran scalar (small frames),
  /// SWAR, or SIMD. Totals mirrored from the arena engine after each burst.
  u64 escape_scalar = 0;
  u64 escape_swar = 0;
  u64 escape_simd = 0;

  bool operator==(const ChannelSnapshot&) const = default;
  ChannelSnapshot& operator+=(const ChannelSnapshot& o);
};

/// Live counters for one channel. Single writer (the channel's worker),
/// any number of readers.
class alignas(kCacheLineBytes) ChannelTelemetry {
 public:
  void on_ingress(std::size_t payload_bytes) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  void on_egress(std::size_t payload_bytes) {
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    bytes_out_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  void add_fcs_errors(u64 n) {
    if (n) fcs_errors_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_frames_lost(u64 n) {
    if (n) frames_lost_.fetch_add(n, std::memory_order_relaxed);
  }
  void ring_full_stall() { ring_full_stalls_.fetch_add(1, std::memory_order_relaxed); }
  void note_ingress_depth(std::size_t depth) { raise(ingress_hwm_, depth); }
  void note_egress_depth(std::size_t depth) { raise(egress_hwm_, depth); }
  /// Mirror the fabric arena engine's cumulative tier counters (stores, not
  /// adds: the engine already accumulates; single writer = fabric context).
  void set_escape_tiers(u64 scalar, u64 swar, u64 simd) {
    escape_scalar_.store(scalar, std::memory_order_relaxed);
    escape_swar_.store(swar, std::memory_order_relaxed);
    escape_simd_.store(simd, std::memory_order_relaxed);
  }

  /// Consistent point-in-time copy: reads the block twice until two
  /// consecutive reads agree (bounded retries; the counters are monotonic,
  /// so even the fallback is a valid momentary mixture, never garbage).
  [[nodiscard]] ChannelSnapshot snapshot() const;

 private:
  static void raise(std::atomic<u64>& hwm, u64 v) {
    u64 cur = hwm.load(std::memory_order_relaxed);
    while (v > cur && !hwm.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] ChannelSnapshot read_once() const;

  std::atomic<u64> frames_in_{0};
  std::atomic<u64> frames_out_{0};
  std::atomic<u64> bytes_in_{0};
  std::atomic<u64> bytes_out_{0};
  std::atomic<u64> fcs_errors_{0};
  std::atomic<u64> frames_lost_{0};
  std::atomic<u64> ring_full_stalls_{0};
  std::atomic<u64> ingress_hwm_{0};
  std::atomic<u64> egress_hwm_{0};
  std::atomic<u64> escape_scalar_{0};
  std::atomic<u64> escape_swar_{0};
  std::atomic<u64> escape_simd_{0};
};

/// The line card's counter file: one padded block per channel plus an
/// aggregate roll-up (sums for flows, max for high-water marks).
class Telemetry {
 public:
  explicit Telemetry(std::size_t channels);

  [[nodiscard]] std::size_t channels() const { return per_channel_.size(); }
  [[nodiscard]] ChannelTelemetry& channel(std::size_t i) { return *per_channel_[i]; }
  [[nodiscard]] const ChannelTelemetry& channel(std::size_t i) const { return *per_channel_[i]; }
  [[nodiscard]] ChannelSnapshot snapshot(std::size_t i) const;
  [[nodiscard]] ChannelSnapshot aggregate() const;

 private:
  std::vector<std::unique_ptr<ChannelTelemetry>> per_channel_;
};

}  // namespace p5::linecard
