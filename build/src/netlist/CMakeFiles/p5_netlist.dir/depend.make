# Empty dependencies file for p5_netlist.
# This may be replaced when dependencies are built.
