#include "fastpath/scalar_ref.hpp"

namespace p5::fastpath::scalar {

Bytes stuff(BytesView data, const hdlc::Accm& accm) {
  Bytes out;
  out.reserve(data.size() + data.size() / 8);
  for (const u8 b : data) {
    if (accm.must_escape(b)) {
      out.push_back(hdlc::kEscape);
      out.push_back(static_cast<u8>(b ^ hdlc::kXor));
    } else {
      out.push_back(b);
    }
  }
  return out;
}

std::pair<Bytes, bool> destuff(BytesView data) {
  Bytes out;
  out.reserve(data.size());
  bool pending_escape = false;
  for (const u8 b : data) {
    if (pending_escape) {
      out.push_back(static_cast<u8>(b ^ hdlc::kXor));
      pending_escape = false;
    } else if (b == hdlc::kEscape) {
      pending_escape = true;
    } else {
      out.push_back(b);
    }
  }
  return {std::move(out), !pending_escape};
}

u8 frame_keystream_bitserial(u8& state) {
  u8 out = 0;
  for (int i = 0; i < 8; ++i) {
    const u8 bit = static_cast<u8>((state >> 6) & 1u);
    out = static_cast<u8>((out << 1) | bit);
    const u8 fb = static_cast<u8>(((state >> 6) ^ (state >> 5)) & 1u);
    state = static_cast<u8>(((state << 1) | fb) & 0x7F);
  }
  return out;
}

u8 selfsync_scramble_bitserial(u64& history, u8 in) {
  u8 out = 0;
  for (int bit = 7; bit >= 0; --bit) {
    const u8 in_bit = static_cast<u8>((in >> bit) & 1u);
    const u8 delayed = static_cast<u8>((history >> 42) & 1u);
    const u8 out_bit = static_cast<u8>(in_bit ^ delayed);
    out = static_cast<u8>((out << 1) | out_bit);
    history = ((history << 1) | out_bit) & ((u64{1} << 43) - 1);
  }
  return out;
}

u8 selfsync_descramble_bitserial(u64& history, u8 in) {
  u8 out = 0;
  for (int bit = 7; bit >= 0; --bit) {
    const u8 in_bit = static_cast<u8>((in >> bit) & 1u);
    const u8 delayed = static_cast<u8>((history >> 42) & 1u);
    const u8 out_bit = static_cast<u8>(in_bit ^ delayed);
    out = static_cast<u8>((out << 1) | out_bit);
    history = ((history << 1) | in_bit) & ((u64{1} << 43) - 1);
  }
  return out;
}

}  // namespace p5::fastpath::scalar
