# Empty dependencies file for mapos_lan.
# This may be replaced when dependencies are built.
