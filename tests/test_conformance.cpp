// Differential conformance: the same seeded packet stream through all three
// datapath engines — scalar reference, SWAR fast path, cycle-level P5
// pipeline — with byte-exact agreement enforced at every layer by the
// DiffOracle. Any failure prints its case seed; replay with
//   P5_TEST_SEED=0x... ctest -R <test>      (see TESTING.md)
#include <gtest/gtest.h>

#include "hdlc/stuffing.hpp"
#include "testing/diff_oracle.hpp"
#include "testing/property.hpp"

namespace p5::testing {
namespace {

// The headline sweep: 100k seeded packets (smoke mode) encoded and decoded
// through every engine, byte-exact end to end. P5_TEST_CASES scales it up
// for soak runs.
TEST(Conformance, HundredThousandPacketSmokeSweep) {
  DiffOracle oracle;  // default framing (FCS-32, uncompressed), 4 lanes
  PropertyOptions opt;
  opt.cases = 100'000;
  opt.seed = 0xC0FFEE01ull;
  opt.min_size = 0;
  opt.max_size = 64;
  const auto res = check_property("conformance_smoke", opt, [&](CaseContext& c) {
    const u16 protocol = gen_protocol(c.rng);
    const Bytes payload = gen_payload(c.rng, c.size);

    const auto enc = oracle.encode(protocol, payload);
    if (!enc.agree) return c.fail("encode: " + enc.diagnosis);

    const auto dec = oracle.decode(enc.stuffed);
    if (!dec.agree) return c.fail("decode: " + dec.diagnosis);
    if (!dec.ok) return c.fail("clean frame flagged as dangling-escape abort");
    if (dec.recovered != enc.content)
      return c.fail("round-trip did not restore the frame content");
  });
  EXPECT_TRUE(res.ok) << res.message;
  EXPECT_GE(res.cases_run, resolved_cases(100'000));
}

// Sweep the programmability knobs: every framing config (ACFC/PFC/FCS/ACCM)
// and datapath width the paper's OAM exposes, fresh oracle per case.
TEST(Conformance, FramingConfigAndLaneWidthSweep) {
  PropertyOptions opt;
  opt.cases = 800;
  opt.seed = 0xC0FFEE02ull;
  opt.min_size = 0;
  opt.max_size = 192;
  constexpr unsigned kLaneChoices[] = {1, 2, 4, 8};
  const auto res = check_property("conformance_configs", opt, [&](CaseContext& c) {
    const hdlc::FrameConfig cfg = gen_frame_config(c.rng);
    const unsigned lanes = kLaneChoices[c.rng.below(4)];
    DiffOracle oracle(cfg, lanes);

    const u16 protocol = gen_protocol(c.rng);
    const Bytes payload = gen_payload(c.rng, c.size);
    const auto enc = oracle.encode(protocol, payload);
    if (!enc.agree) return c.fail("encode: " + enc.diagnosis);
    const auto dec = oracle.decode(enc.stuffed);
    if (!dec.agree) return c.fail("decode: " + dec.diagnosis);
    if (!dec.ok || dec.recovered != enc.content)
      return c.fail("round-trip did not restore the frame content");
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// A stuffed body ending in a bare escape is RFC 1662's invalid sequence;
// every receive engine must call it an abort, and they must agree.
TEST(Conformance, DanglingEscapeVerdictIsUnanimous) {
  DiffOracle oracle;
  PropertyOptions opt;
  opt.cases = 2'000;
  opt.seed = 0xC0FFEE03ull;
  opt.max_size = 96;
  const auto res = check_property("conformance_dangling_escape", opt, [&](CaseContext& c) {
    Bytes stuffed = hdlc::stuff(gen_payload(c.rng, c.size));
    stuffed.push_back(hdlc::kEscape);
    const auto dec = oracle.decode(stuffed);
    if (!dec.agree) return c.fail(dec.diagnosis);
    if (dec.ok) return c.fail("dangling escape was not reported as an abort");
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// Whole clean wire streams — many frames, random inter-frame fill — must
// yield the identical accepted-frame sequence from the software stacks and
// the cycle-accurate P5 receiver, and nothing may be dropped.
TEST(Conformance, CleanMultiFrameStreamsDeliverEverythingEverywhere) {
  DiffOracle oracle;
  PropertyOptions opt;
  opt.cases = 300;
  opt.seed = 0xC0FFEE04ull;
  opt.min_size = 0;
  opt.max_size = 128;
  const auto res = check_property("conformance_receive", opt, [&](CaseContext& c) {
    Bytes wire(1 + c.rng.below(4), hdlc::kFlag);
    std::vector<DiffOracle::Delivery> sent;
    const std::size_t frames = 1 + c.rng.below(8);
    for (std::size_t f = 0; f < frames; ++f) {
      const u16 protocol = gen_protocol(c.rng);
      const Bytes payload = gen_payload(c.rng, c.size);
      append(wire, hdlc::build_wire_frame(oracle.config(), protocol, payload));
      sent.push_back({protocol, payload});
      for (u64 fill = c.rng.below(3); fill > 0; --fill) wire.push_back(hdlc::kFlag);
    }
    const auto rx = oracle.receive(wire);
    if (!rx.agree) return c.fail(rx.diagnosis);
    if (rx.delivered != sent)
      return c.fail("clean stream: delivered " + std::to_string(rx.delivered.size()) +
                    " frames, sent " + std::to_string(sent.size()));
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// The oracle itself must be deterministic: the same base seed replays the
// identical stream (this is what makes P5_TEST_SEED reproduction trustworthy).
TEST(Conformance, SameSeedReplaysTheIdenticalStream) {
  auto run = [](u64 seed) {
    Xoshiro256 rng(seed);
    DiffOracle oracle;
    Bytes transcript;
    for (int i = 0; i < 50; ++i) {
      const auto enc = oracle.encode(gen_protocol(rng), gen_payload(rng, 1 + rng.below(64)));
      append(transcript, enc.wire);
    }
    return transcript;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace p5::testing
