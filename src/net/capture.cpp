#include "net/capture.hpp"

#include <cstdio>
#include <fstream>

#include "common/hexdump.hpp"

namespace p5::net {

void Capture::record(u64 cycle, Direction dir, u16 protocol, BytesView payload) {
  CapturedFrame f;
  f.cycle = cycle;
  f.direction = dir;
  f.protocol = protocol;
  f.payload.assign(payload.begin(), payload.end());
  frames_.push_back(std::move(f));
}

std::size_t Capture::total_octets() const {
  std::size_t n = 0;
  for (const auto& f : frames_) n += f.payload.size();
  return n;
}

namespace {
void put_le64(Bytes& b, u64 v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<u8>(v >> (8 * i)));
}
u64 get_le64(BytesView b, std::size_t off) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(b[off + i]) << (8 * i);
  return v;
}
}  // namespace

Bytes Capture::serialize() const {
  Bytes out;
  put_le32(out, kMagic);
  out.push_back(static_cast<u8>(kVersion));
  out.push_back(static_cast<u8>(kVersion >> 8));
  put_le32(out, static_cast<u32>(frames_.size()));
  for (const auto& f : frames_) {
    put_le64(out, f.cycle);
    out.push_back(static_cast<u8>(f.direction));
    out.push_back(static_cast<u8>(f.protocol));
    out.push_back(static_cast<u8>(f.protocol >> 8));
    put_le32(out, static_cast<u32>(f.payload.size()));
    append(out, f.payload);
  }
  return out;
}

std::optional<Capture> Capture::parse(BytesView data) {
  if (data.size() < 10) return std::nullopt;
  if (get_le32(data, 0) != kMagic) return std::nullopt;
  const u16 version = static_cast<u16>(data[4] | (data[5] << 8));
  if (version != kVersion) return std::nullopt;
  const u32 count = get_le32(data, 6);
  std::size_t off = 10;
  Capture cap;
  for (u32 i = 0; i < count; ++i) {
    if (off + 15 > data.size()) return std::nullopt;
    CapturedFrame f;
    f.cycle = get_le64(data, off);
    off += 8;
    if (data[off] > 1) return std::nullopt;
    f.direction = static_cast<Direction>(data[off]);
    off += 1;
    f.protocol = static_cast<u16>(data[off] | (data[off + 1] << 8));
    off += 2;
    const u32 len = get_le32(data, off);
    off += 4;
    if (off + len > data.size()) return std::nullopt;
    f.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                     data.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    cap.frames_.push_back(std::move(f));
  }
  if (off != data.size()) return std::nullopt;  // trailing garbage
  return cap;
}

bool Capture::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const Bytes data = serialize();
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(f);
}

std::optional<Capture> Capture::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  return parse(data);
}

std::string Capture::summary(std::size_t max_frames) const {
  std::string out;
  char line[160];
  const std::size_t n = std::min(max_frames, frames_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& f = frames_[i];
    std::snprintf(line, sizeof line, "#%06llu %s proto=0x%04x len=%zu  %s\n",
                  static_cast<unsigned long long>(f.cycle),
                  f.direction == Direction::kTx ? "TX" : "RX", f.protocol, f.payload.size(),
                  hex_line(f.payload, 12).c_str());
    out += line;
  }
  if (frames_.size() > n) {
    std::snprintf(line, sizeof line, "... %zu more frames\n", frames_.size() - n);
    out += line;
  }
  return out;
}

}  // namespace p5::net
