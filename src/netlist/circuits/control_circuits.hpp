// Gate-level Transmitter/Receiver Control units and flag framing circuits.
//
// The paper's Control units "accommodate the control path for the framing
// procedure": a finite state machine sequencing header / payload / FCS /
// flag phases, length counters, programmable header registers (the MAPOS
// address), and the per-lane datapath multiplexers that steer header, data
// and FCS octets onto the bus. The receiver side adds the address filter,
// protocol-field capture and the FCS residue comparator.
//
// Flag framing at W bits is itself a sorting problem (frames are not
// word-aligned), so the 32-bit flag inserter / delineator instantiate the
// same resynchronisation-queue structure as the escape units — this is the
// "extra decisional logic involved in the ... data reordering mechanisms"
// the paper credits for part of the 11x size ratio.
//
// These circuits are area/timing models: structurally faithful (every
// comparator, counter, register and mux is real and mapped), but their FSM
// encodings are not driven cycle-accurately by the netlist tests — the
// cycle-accurate behaviour lives in src/p5 and is tested there.
#pragma once

#include "netlist/netlist.hpp"

namespace p5::netlist::circuits {

[[nodiscard]] Netlist make_tx_control_circuit(unsigned lanes);
[[nodiscard]] Netlist make_rx_control_circuit(unsigned lanes);
[[nodiscard]] Netlist make_flag_inserter_circuit(unsigned lanes);
[[nodiscard]] Netlist make_flag_delineator_circuit(unsigned lanes);

}  // namespace p5::netlist::circuits
