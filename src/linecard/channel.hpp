// One tributary of the line card: a full P5 <-> SDH/SONET <-> P5 link
// (src/p5/sonet_link) plus the SPSC rings that connect it to its traffic
// source and to the MAPOS fabric, and a FrameArena so the fabric-side
// re-framing of its deliveries allocates nothing in steady state.
//
//   source ring  --\                          /--> egress ring --> fabric
//                   >--> P5(A) ~~SONET~~ P5(B)
//   fabric ring --/
//
// All link work happens inside step(), which is designed to be driven two
// ways with identical results:
//   * deterministic mode — the LineCard calls step() round-robin from one
//     thread (tests, byte-exact reproducibility);
//   * threaded mode — a dedicated worker calls step() in a loop.
// A step is one bounded slice: admit at most one descriptor, exchange at
// most one SONET frame in each direction, reap every finished delivery.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "hdlc/frame.hpp"
#include "linecard/frame_desc.hpp"
#include "linecard/spsc_ring.hpp"
#include "linecard/telemetry.hpp"
#include "p5/sonet_link.hpp"

namespace p5::linecard {

struct ChannelConfig {
  core::P5Config p5;                    ///< applied to both ends of the link
  sonet::StsSpec sts = sonet::kSts3c;   ///< tributary pipe (STS-3c, -12c, -48c)
  sonet::LineConfig line;               ///< optical line model (seed offset per channel)
  /// Datapath tier for both link ends (default-selection point: the
  /// P5_DEVICE_TIER environment override applies here).
  core::DeviceTier tier = core::DeviceTier::kCycle;
  std::size_t ring_capacity = 256;      ///< each of source/fabric/egress rings
  /// SONET exchanges tolerated with traffic in flight but nothing delivered
  /// before the in-flight count is written off (line errors eat frames;
  /// without this a lossy channel would pump its line forever).
  u64 flush_bound = 64;
};

class Channel {
 public:
  Channel(unsigned index, const ChannelConfig& cfg, ChannelTelemetry& telemetry);

  /// One bounded slice of work; returns false when there was nothing to do
  /// (idle channels cost a few ring loads per call, not a SONET exchange).
  bool step();

  /// Nothing queued toward the link and nothing in flight inside it. The
  /// egress ring may still hold frames for the fabric — that is the
  /// fabric's business, not the channel's.
  [[nodiscard]] bool idle() const;

  [[nodiscard]] SpscRing<FrameDesc>& source_ring() { return source_; }
  [[nodiscard]] SpscRing<FrameDesc>& fabric_ring() { return fabric_; }
  [[nodiscard]] SpscRing<FrameDesc>& egress_ring() { return egress_; }

  // Fabric-edge taps for an external transport (transport::Tunnel) that
  // extends the MAPOS fabric across processes: the tunnel plays the fabric's
  // role on these rings, so the SPSC discipline holds as long as nothing
  // else consumes egress_/produces into fabric_ on this channel.
  /// Take one delivered frame off the egress ring (what the fabric would
  /// forward). nullopt when none is waiting.
  [[nodiscard]] std::optional<FrameDesc> egress_take() { return egress_.try_pop(); }
  /// Offer one frame toward this channel's link, exactly as the fabric
  /// would. False = ring full; the caller owns the backpressure decision.
  [[nodiscard]] bool ingress_offer(FrameDesc&& d) { return fabric_.try_push(std::move(d)); }
  /// Frames waiting on the egress ring (approximate, exact at quiescence).
  [[nodiscard]] std::size_t egress_pending() const { return egress_.size_approx(); }

  [[nodiscard]] core::P5SonetLink& link() { return *link_; }
  [[nodiscard]] const core::P5SonetLink& link() const { return *link_; }
  /// Scratch for the fabric's zero-alloc MAPOS encode of this channel's
  /// deliveries. Owned here so each fabric edge has its own arena; touched
  /// only from the fabric context.
  [[nodiscard]] hdlc::FrameArena& arena() { return arena_; }

  [[nodiscard]] unsigned index() const { return index_; }
  /// Saturating: a stale far-end junk notice can otherwise race a real
  /// delivery and briefly over-advance delivered_ under heavy line noise.
  [[nodiscard]] u64 in_flight() const {
    return submitted_ > delivered_ ? submitted_ - delivered_ : 0;
  }
  [[nodiscard]] const ChannelConfig& config() const { return cfg_; }

  /// Where the fabric should forward this channel's deliveries (set by the
  /// LineCard once NSP has assigned addresses; default broadcast).
  void set_egress_dest(u8 address) { egress_dest_ = address; }
  [[nodiscard]] u8 egress_dest() const { return egress_dest_; }

 private:
  void reap();

  unsigned index_;
  ChannelConfig cfg_;
  ChannelTelemetry& tel_;
  std::unique_ptr<core::P5SonetLink> link_;

  SpscRing<FrameDesc> source_;  ///< traffic source -> worker
  SpscRing<FrameDesc> fabric_;  ///< fabric -> worker (frames switched down this tributary)
  SpscRing<FrameDesc> egress_;  ///< worker -> fabric

  hdlc::FrameArena arena_;
  std::optional<FrameDesc> pending_;     ///< admitted but device tx ring was full
  std::deque<FrameDesc> egress_spill_;   ///< egress ring was full; retried first
  /// The link carries protocol+payload only, so each in-flight frame's
  /// fabric destination waits here; deliveries are in-order, pairing is FIFO.
  std::deque<u8> inflight_dest_;
  u8 egress_dest_ = 0xFF;

  u64 submitted_ = 0;
  u64 delivered_ = 0;
  u64 losses_seen_ = 0;      ///< far-end drop counters at last check
  u64 stale_exchanges_ = 0;  ///< exchanges since the last delivery
};

}  // namespace p5::linecard
