// PPP Link Quality Monitoring (RFC 1989) — the quantitative version of
// LCP's mandate to "test the data-link connection" (paper Section 2).
//
// Each side periodically emits a Link-Quality-Report carrying its transmit
// counters and an echo of the peer's; comparing "what the peer says it sent"
// with "what we actually received" over a measurement window yields the
// inbound loss rate, without any probe traffic. A configurable k-out-of-n
// hysteresis turns the rate into a link-good/link-bad decision the way RFC
// 1989 §2.5 suggests.
//
// The LQR counter layout follows RFC 1989 §3 (48-octet data field, all
// fields 32-bit big-endian); the optional LastOut* echo mechanism is
// implemented, the SaveNew/SaveOld state machine is folded into one
// measurement-window delta computation.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "common/types.hpp"

namespace p5::ppp {

/// Counters a PPP implementation keeps per direction (RFC 1989 §2.2).
struct LqmCounters {
  u32 out_lqrs = 0;
  u32 out_packets = 0;
  u32 out_octets = 0;
  u32 in_lqrs = 0;
  u32 in_packets = 0;
  u32 in_discards = 0;  ///< good frames dropped for local reasons
  u32 in_errors = 0;    ///< FCS failures / aborts
  u32 in_octets = 0;    ///< octets in good frames
};

/// Wire image of one Link-Quality-Report (RFC 1989 §3).
struct LqrPacket {
  u32 magic = 0;
  // Copied from our save-registers when transmitting.
  u32 last_out_lqrs = 0;
  u32 last_out_packets = 0;
  u32 last_out_octets = 0;
  // The peer's view of its own receive side, echoed back to us.
  u32 peer_in_lqrs = 0;
  u32 peer_in_packets = 0;
  u32 peer_in_discards = 0;
  u32 peer_in_errors = 0;
  u32 peer_in_octets = 0;
  // The peer's transmit side at the moment it sent this LQR.
  u32 peer_out_lqrs = 0;
  u32 peer_out_packets = 0;
  u32 peer_out_octets = 0;

  static constexpr std::size_t kWireBytes = 48;
  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<LqrPacket> parse(BytesView wire);
};

struct LqmConfig {
  bool emit_reports = true;       ///< transmit LQRs (false: measure only)
  unsigned reporting_ticks = 4;   ///< emit an LQR every N tick()s
  double max_loss = 0.10;         ///< per-window inbound loss to call "bad"
  unsigned window_n = 5;          ///< policy window: n most recent periods
  unsigned window_k = 3;          ///< link is bad when >= k of n are bad
};

class LqmMonitor {
 public:
  /// `tx_lqr` transmits a serialized LQR in a frame with protocol 0xC025.
  LqmMonitor(const LqmConfig& cfg, u32 magic, std::function<void(BytesView)> tx_lqr);

  // ---- datapath accounting hooks ----
  void count_tx(std::size_t octets);        ///< we transmitted a data frame
  void count_rx_good(std::size_t octets);   ///< good frame received
  void count_rx_error();                    ///< FCS error / abort observed
  void count_rx_discard();                  ///< good frame locally dropped

  /// Timer: emits an LQR every reporting period.
  void tick();

  /// Feed a received protocol-0xC025 information field.
  void on_lqr(BytesView wire);

  // ---- measurement ----
  /// Inbound loss rate over the last completed measurement window
  /// (peer-sent vs locally-received packets); nullopt before two LQRs.
  [[nodiscard]] std::optional<double> inbound_loss() const { return last_loss_; }
  /// k-out-of-n policy verdict; starts optimistic.
  [[nodiscard]] bool link_good() const;

  [[nodiscard]] const LqmCounters& counters() const { return counters_; }
  [[nodiscard]] u32 lqrs_sent() const { return counters_.out_lqrs; }
  [[nodiscard]] u32 lqrs_received() const { return counters_.in_lqrs; }

 private:
  void emit_lqr();

  LqmConfig cfg_;
  u32 magic_;
  std::function<void(BytesView)> tx_lqr_;
  LqmCounters counters_;

  unsigned ticks_until_report_;
  // Peer state from the previous LQR, for window deltas.
  std::optional<LqrPacket> previous_;
  u32 in_packets_at_prev_lqr_ = 0;
  std::optional<double> last_loss_;
  std::deque<bool> bad_history_;  ///< most recent windows, true = bad
};

}  // namespace p5::ppp
