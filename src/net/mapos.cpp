#include "net/mapos.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "crc/crc_table.hpp"
#include "hdlc/stuffing.hpp"

namespace p5::net {

namespace {

/// Destuffed MAPOS frame content: Address | Control | Protocol(2) | payload | FCS32.
struct Fields {
  u8 address;
  u16 protocol;
  BytesView payload;
};

std::optional<Fields> parse_content(BytesView content) {
  if (content.size() < 4 + 4) return std::nullopt;
  if (!crc::fcs32().check(content)) return std::nullopt;
  Fields f;
  f.address = content[0];
  f.protocol = get_be16(content, 2);
  f.payload = content.subspan(4, content.size() - 8);
  return f;
}

Bytes build_wire(u8 address, u16 protocol, BytesView payload) {
  Bytes content;
  content.reserve(payload.size() + 8);
  content.push_back(address);
  content.push_back(hdlc::kDefaultControl);
  put_be16(content, protocol);
  append(content, payload);
  const u32 fcs = crc::fcs32().crc(content);
  put_le32(content, fcs);

  Bytes wire;
  wire.push_back(hdlc::kFlag);
  const Bytes stuffed = hdlc::stuff(content);
  append(wire, stuffed);
  wire.push_back(hdlc::kFlag);
  return wire;
}

}  // namespace

// ---------------- switch ----------------

MaposSwitch::MaposSwitch(unsigned ports) {
  P5_EXPECTS(ports >= 1 && ports < 120);  // 7-bit address space / 2
  ports_.resize(ports);
  for (unsigned p = 0; p < ports; ++p) {
    ports_[p].delineator = std::make_unique<hdlc::Delineator>(
        [this, p](BytesView f) { on_frame(p, f); });
  }
}

void MaposSwitch::attach(unsigned port, std::function<void(BytesView)> tx) {
  P5_EXPECTS(port < ports_.size());
  ports_[port].tx = std::move(tx);
}

void MaposSwitch::rx(unsigned port, BytesView octets) {
  P5_EXPECTS(port < ports_.size());
  ports_[port].delineator->push(octets);
}

void MaposSwitch::on_frame(unsigned port, BytesView stuffed) {
  const auto destuffed = hdlc::destuff(stuffed);
  if (!destuffed.ok) {
    ++stats_.fcs_dropped;
    return;
  }
  const auto fields = parse_content(destuffed.data);
  if (!fields) {
    ++stats_.fcs_dropped;  // a real switch port drops bad-FCS frames
    return;
  }

  // NSP terminates at the switch.
  if (fields->protocol == kMaposProtoNsp) {
    if (!fields->payload.empty() && fields->payload[0] == kNspAddressRequest) {
      ++stats_.nsp_assignments;
      const u8 assigned = mapos_port_address(port);
      const Bytes reply_payload{kNspAddressAssign, assigned};
      if (ports_[port].tx)
        ports_[port].tx(build_wire(assigned, kMaposProtoNsp, reply_payload));
    }
    return;
  }

  if (fields->address == kMaposBroadcast) {
    ++stats_.frames_flooded;
    const Bytes wire = build_wire(fields->address, fields->protocol, fields->payload);
    for (unsigned p = 0; p < ports_.size(); ++p)
      if (p != port && ports_[p].tx) ports_[p].tx(wire);
    return;
  }

  // Unicast: the fixed port-address mapping inverts directly.
  const unsigned target = static_cast<unsigned>(fields->address >> 1);
  if ((fields->address & 1u) == 0 || target == 0 || target > ports_.size() ||
      !ports_[target - 1].tx) {
    ++stats_.unknown_destination;
    return;
  }
  ++stats_.frames_forwarded;
  ports_[target - 1].tx(build_wire(fields->address, fields->protocol, fields->payload));
}

// ---------------- node ----------------

MaposNode::MaposNode(std::function<void(BytesView)> wire_tx)
    : wire_tx_(std::move(wire_tx)),
      delineator_([this](BytesView f) { on_frame(f); }) {}

void MaposNode::request_address() {
  const Bytes payload{kNspAddressRequest};
  wire_tx_(build_wire(kMaposNullAddress, kMaposProtoNsp, payload));
}

bool MaposNode::send(u8 destination, u16 protocol, BytesView payload) {
  if (!address_) return false;  // must complete NSP first
  wire_tx_(build_wire(destination, protocol, payload));
  return true;
}

bool MaposNode::send(hdlc::FrameArena& arena, u8 destination, u16 protocol, BytesView payload) {
  if (!address_) return false;
  // The MAPOS wire format is exactly the default HDLC frame layout with the
  // destination in the Address octet: [dest][0x03][proto:2][payload][FCS32]
  // between flags — so the fused zero-alloc encoder produces an image
  // byte-identical to build_wire().
  hdlc::FrameConfig cfg;
  cfg.address = destination;
  cfg.max_payload = payload.size();  // MRU policing is the receiver's job here
  wire_tx_(hdlc::encode_into(arena, cfg, protocol, payload));
  return true;
}

std::size_t MaposNode::send_batch(hdlc::FrameArena& arena,
                                  std::span<const hdlc::BatchFrame> frames) {
  if (!address_ || frames.empty()) return 0;
  hdlc::FrameConfig cfg;
  cfg.address = kMaposBroadcast;  // frames without an override flood
  for (const hdlc::BatchFrame& f : frames)
    cfg.max_payload = std::max(cfg.max_payload, f.payload.size());
  wire_tx_(hdlc::encode_batch_into(arena, cfg, frames));
  return frames.size();
}

void MaposNode::rx(BytesView octets) { delineator_.push(octets); }

void MaposNode::on_frame(BytesView stuffed) {
  const auto destuffed = hdlc::destuff(stuffed);
  if (!destuffed.ok) return;
  const auto fields = parse_content(destuffed.data);
  if (!fields) return;

  if (fields->protocol == kMaposProtoNsp) {
    if (fields->payload.size() >= 2 && fields->payload[0] == kNspAddressAssign)
      address_ = fields->payload[1];
    return;
  }

  // Address filter: ours or broadcast.
  if (address_ && fields->address != *address_ && fields->address != kMaposBroadcast) return;
  if (sink_) {
    Received r;
    r.protocol = fields->protocol;
    r.payload.assign(fields->payload.begin(), fields->payload.end());
    sink_(r);
  }
}

}  // namespace p5::net
