// p5_tun — live kernel IP over the P⁵ tunnel.
//
// Each process owns one TUN interface and one end of a socketed
// PPP-over-SONET link:
//
//   kernel ⇄ p5tun0 ⇄ TunBridge ⇄ P5 endpoint ⇄ Tunnel ⇄ socket ⇄ ... peer
//
// Every datagram the kernel routes into the interface is HDLC-framed,
// FCS-protected, scrambled into an STS-3c byte stream and carried across
// the socket; the far process recovers it and writes it into its own TUN,
// where the peer kernel picks it up. `ping` and `iperf` between the two
// tunnel addresses exercise the paper's entire datapath with real traffic.
//
// Two-process run — NOTE: both ends in one network namespace short-circuit
// (the kernel sees both addresses as local and never routes via the tun),
// so put one end in its own netns. Recipe (root):
//
//   ip netns add p5peer
//   ip link add veth0 type veth peer name veth1
//   ip link set veth1 netns p5peer
//   ip addr add 192.168.77.1/24 dev veth0 && ip link set veth0 up
//   ip netns exec p5peer ip addr add 192.168.77.2/24 dev veth1
//   ip netns exec p5peer ip link set veth1 up
//   ip netns exec p5peer ip link set lo up
//
//   # terminal 1 (the peer namespace listens):
//   ip netns exec p5peer ./p5_tun --listen 9600 --local 10.77.0.2 --peer 10.77.0.1
//   # terminal 2 (default namespace connects over the veth):
//   ./p5_tun --connect 192.168.77.2:9600 --local 10.77.0.1 --peer 10.77.0.2
//   # terminal 3: live IP over the paper's datapath
//   ping 10.77.0.2
//
// --vj enables VJ TCP header compression (both ends!), --pcap-out records
// every datagram delivered to the kernel as a raw-IP pcap, --tier picks the
// device model (fast default, cycle for the full pipeline — expect dial-up
// era throughput and ping times, which is its own kind of demo).
//
// Without TUN access (no /dev/net/tun, or not root/CAP_NET_ADMIN) the
// binary exits 77 — the ctest SKIP convention — so unprivileged CI skips
// rather than fails. `--probe` only performs that check.
//
// Usage:
//   p5_tun (--listen PORT | --connect HOST:PORT) --local A.B.C.D --peer A.B.C.D
//          [--ifname NAME] [--mtu N] [--tier cycle|fast] [--udp] [--vj]
//          [--pcap-out PATH] [--duration SEC] [--stats-ms MS] [--probe]
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "net/capture/tap.hpp"
#include "net/tunif/tun_bridge.hpp"
#include "net/tunif/tun_device.hpp"
#include "p5/endpoint.hpp"
#include "transport/event_loop.hpp"
#include "transport/tunnel.hpp"

namespace {

constexpr int kSkipExit = 77;  // ctest SKIP_RETURN_CODE

volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) { g_interrupted = 1; }

struct Options {
  bool listen = false;
  bool udp = false;
  bool vj = false;
  bool probe = false;
  std::string host = "127.0.0.1";
  p5::u16 port = 0;
  std::string ifname = "p5tun%d";
  std::string local;
  std::string peer;
  p5::u32 mtu = 1400;  // headroom under the veth MTU for framing expansion
  std::string pcap_out;
  p5::u64 duration_s = 0;
  p5::u64 stats_ms = 2000;
  p5::core::DeviceTier tier =
      p5::core::resolve_device_tier(p5::core::DeviceTier::kFast);
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--listen") == 0) {
      const char* v = need("--listen");
      if (!v) return false;
      opt.listen = true;
      opt.port = static_cast<p5::u16>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      const char* v = need("--connect");
      if (!v) return false;
      const auto addr = p5::transport::parse_addr(v);
      if (!addr) {
        std::fprintf(stderr, "error: bad address '%s'\n", v);
        return false;
      }
      opt.host = addr->host;
      opt.port = addr->port;
    } else if (std::strcmp(argv[i], "--local") == 0) {
      const char* v = need("--local");
      if (!v) return false;
      opt.local = v;
    } else if (std::strcmp(argv[i], "--peer") == 0) {
      const char* v = need("--peer");
      if (!v) return false;
      opt.peer = v;
    } else if (std::strcmp(argv[i], "--ifname") == 0) {
      const char* v = need("--ifname");
      if (!v) return false;
      opt.ifname = v;
    } else if (std::strcmp(argv[i], "--mtu") == 0) {
      const char* v = need("--mtu");
      if (!v) return false;
      opt.mtu = static_cast<p5::u32>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--pcap-out") == 0) {
      const char* v = need("--pcap-out");
      if (!v) return false;
      opt.pcap_out = v;
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      const char* v = need("--duration");
      if (!v) return false;
      opt.duration_s = static_cast<p5::u64>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--stats-ms") == 0) {
      const char* v = need("--stats-ms");
      if (!v) return false;
      opt.stats_ms = static_cast<p5::u64>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--tier") == 0) {
      const char* v = need("--tier");
      if (!v) return false;
      if (std::strcmp(v, "cycle") == 0) {
        opt.tier = p5::core::DeviceTier::kCycle;
      } else if (std::strcmp(v, "fast") == 0) {
        opt.tier = p5::core::DeviceTier::kFast;
      } else {
        std::fprintf(stderr, "error: --tier must be 'cycle' or 'fast'\n");
        return false;
      }
    } else if (std::strcmp(argv[i], "--udp") == 0) {
      opt.udp = true;
    } else if (std::strcmp(argv[i], "--vj") == 0) {
      opt.vj = true;
    } else if (std::strcmp(argv[i], "--probe") == 0) {
      opt.probe = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return false;
    }
  }
  if (opt.probe) return true;
  if (opt.port == 0 || opt.local.empty() || opt.peer.empty()) {
    std::fprintf(stderr,
                 "usage: p5_tun (--listen PORT | --connect HOST:PORT) --local A.B.C.D\n"
                 "              --peer A.B.C.D [--ifname NAME] [--mtu N] [--tier cycle|fast]\n"
                 "              [--udp] [--vj] [--pcap-out PATH] [--duration SEC]\n"
                 "              [--stats-ms MS] [--probe]\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p5;
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  if (!net::tunif::TunDevice::available()) {
    std::fprintf(stderr,
                 "p5_tun: SKIP — /dev/net/tun is unavailable (missing node or no"
                 " privilege; needs root or CAP_NET_ADMIN)\n");
    return kSkipExit;
  }
  if (opt.probe) {
    std::printf("p5_tun: TUN available\n");
    return 0;
  }
  std::signal(SIGINT, on_sigint);

  net::tunif::TunDevice tun;
  if (!tun.open(opt.ifname)) {
    std::fprintf(stderr, "p5_tun: cannot open TUN: %s\n", tun.error().c_str());
    return 1;
  }
  if (!tun.configure_ipv4(opt.local, opt.peer, opt.mtu)) {
    std::fprintf(stderr, "p5_tun: cannot configure %s: %s\n", tun.name().c_str(),
                 tun.error().c_str());
    return 1;
  }

  transport::EventLoop loop;
  auto ep = core::make_sonet_endpoint(opt.tier, {}, sonet::kSts3c);
  transport::TunnelConfig cfg;
  cfg.listen = opt.listen;
  cfg.udp = opt.udp;
  // Listeners accept from any interface — the documented demo crosses a
  // netns boundary over a veth, where loopback binding would be unreachable.
  cfg.host = opt.listen ? "0.0.0.0" : opt.host;
  cfg.port = opt.port;
  cfg.keepalive_ms = 20;
  transport::Tunnel tunnel(loop, transport::TunnelBinding::endpoint(*ep), cfg);
  tunnel.start();

  net::tunif::TunBridgeConfig bcfg;
  bcfg.vj = opt.vj;
  net::tunif::TunBridge bridge(loop, tun, *ep, bcfg);

  net::capture::CaptureTap tap({.nsec = true, .linktype = net::capture::kLinkRawIp});
  if (!opt.pcap_out.empty()) {
    if (!tap.open(opt.pcap_out)) {
      std::fprintf(stderr, "p5_tun: cannot create %s\n", opt.pcap_out.c_str());
      return 1;
    }
    tap.use_wall_clock();
    bridge.set_delivered_tap([&tap](BytesView d) { tap.record(d); });
  }

  std::printf("p5_tun: %s is up (%s ⇄ %s, mtu %u), %s %s:%u, %s, tier %s%s%s\n",
              tun.name().c_str(), opt.local.c_str(), opt.peer.c_str(), opt.mtu,
              opt.listen ? "listening on" : "connecting to", opt.host.c_str(),
              opt.port, opt.udp ? "udp" : "tcp", core::to_string(opt.tier),
              opt.vj ? ", vj" : "",
              opt.pcap_out.empty() ? "" : (", recording " + opt.pcap_out).c_str());

  u64 last_stats = loop.now_ms();
  const u64 deadline_ms =
      opt.duration_s > 0 ? loop.now_ms() + opt.duration_s * 1000 : 0;
  bool draining = false;
  while (true) {
    bridge.pump();
    tunnel.pump();
    loop.run_once(1);

    if (opt.stats_ms > 0 && loop.now_ms() - last_stats >= opt.stats_ms) {
      last_stats = loop.now_ms();
      const auto& b = bridge.stats();
      const auto s = tunnel.stats();
      std::printf(
          "[%s %s] kernel→p5 %llu pkts (%llu B, backlog %zu, dropped %llu) | "
          "p5→kernel %llu pkts (%llu B, write_fail %llu) | chunks in=%llu "
          "out=%llu lost=%llu | rx bad=%llu resync=%llu\n",
          tun.name().c_str(), transport::to_string(tunnel.state()),
          static_cast<unsigned long long>(b.tun_rx_packets),
          static_cast<unsigned long long>(b.tun_rx_bytes), bridge.backlog(),
          static_cast<unsigned long long>(b.dropped_backlog),
          static_cast<unsigned long long>(b.delivered_packets),
          static_cast<unsigned long long>(b.delivered_bytes),
          static_cast<unsigned long long>(b.tun_write_failures),
          static_cast<unsigned long long>(s.frames_in),
          static_cast<unsigned long long>(s.frames_out),
          static_cast<unsigned long long>(s.frames_lost),
          static_cast<unsigned long long>(ep->rx_counters().frames_bad),
          static_cast<unsigned long long>(ep->rx_stats().resyncs));
    }

    if (!draining &&
        (g_interrupted || (deadline_ms != 0 && loop.now_ms() >= deadline_ms))) {
      std::printf("\n%s: draining...\n", g_interrupted ? "SIGINT" : "--duration elapsed");
      draining = true;
      tunnel.request_drain();
    }
    if (draining && tunnel.finished()) break;
  }

  const auto& b = bridge.stats();
  const auto s = tunnel.stats();
  const bool invariant = s.frames_in == s.frames_out + s.frames_lost;
  std::printf("\nfinal: kernel→p5 %llu pkts, p5→kernel %llu pkts, chunk invariant %s"
              " (in=%llu out=%llu lost=%llu)\n",
              static_cast<unsigned long long>(b.tun_rx_packets),
              static_cast<unsigned long long>(b.delivered_packets),
              invariant ? "OK" : "VIOLATED",
              static_cast<unsigned long long>(s.frames_in),
              static_cast<unsigned long long>(s.frames_out),
              static_cast<unsigned long long>(s.frames_lost));
  if (!opt.pcap_out.empty()) {
    const auto t = tap.stats();
    tap.close();
    std::printf("pcap: %s — %llu records, %llu bytes, %llu drops at tap\n",
                opt.pcap_out.c_str(), static_cast<unsigned long long>(t.records),
                static_cast<unsigned long long>(t.bytes),
                static_cast<unsigned long long>(t.drops));
  }
  return invariant ? 0 : 1;
}
