// Table-driven CRC: the software fast path used by the protocol-layer code
// (src/hdlc, src/ppp, src/net) and an independent cross-check of the bitwise
// reference.
//
// Since the word-parallel fast path landed, `update` runs slicing-by-8 —
// eight interleaved tables, eight octets per iteration (fastpath/slice_crc) —
// instead of the seed's one-table byte loop. The seed loop is preserved as
// fastpath::scalar::ByteTableCrc for differential tests and benches.
#pragma once

#include "common/types.hpp"
#include "crc/crc_spec.hpp"
#include "fastpath/slice_crc.hpp"

namespace p5::crc {

class TableCrc {
 public:
  explicit constexpr TableCrc(const CrcSpec& spec) : slicer_(spec) {}

  [[nodiscard]] const CrcSpec& spec() const { return slicer_.spec(); }

  [[nodiscard]] u32 update(u32 state, BytesView data) const { return slicer_.update(state, data); }

  [[nodiscard]] u32 crc(BytesView data) const { return update(spec().init, data) ^ spec().xorout; }

  [[nodiscard]] bool check(BytesView data_with_fcs) const {
    return update(spec().init, data_with_fcs) == spec().residue;
  }

  /// The underlying slicing engine (for fused kernels that interleave the
  /// CRC with other per-octet work).
  [[nodiscard]] const fastpath::SliceCrc& slicer() const { return slicer_; }

 private:
  fastpath::SliceCrc slicer_;
};

/// Process-wide instances for the two PPP checks.
[[nodiscard]] const TableCrc& fcs16();
[[nodiscard]] const TableCrc& fcs32();

}  // namespace p5::crc
