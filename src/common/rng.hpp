// Deterministic, seedable PRNG (xoshiro256**) used by workload generators,
// error-injection models and property tests. Deterministic seeds make every
// experiment in EXPERIMENTS.md exactly reproducible.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace p5 {

class Xoshiro256 {
 public:
  explicit Xoshiro256(u64 seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the four lanes of state.
    u64 x = seed;
    for (auto& lane : s_) {
      x += 0x9E3779B97F4A7C15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      lane = z ^ (z >> 31);
    }
  }

  u64 next() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 means the full 64-bit range.
  u64 below(u64 bound) {
    if (bound == 0) return next();
    // Rejection-free Lemire-style reduction is overkill here; modulo bias is
    // negligible for the bounds used by workloads (<2^32).
    return next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  u8 byte() { return static_cast<u8>(next() >> 56); }

  /// true with probability p (p in [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  Bytes bytes(std::size_t n) {
    Bytes out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(byte());
    return out;
  }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = u64;
  static constexpr u64 min() { return 0; }
  static constexpr u64 max() { return ~0ull; }
  u64 operator()() { return next(); }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 s_[4]{};
};

}  // namespace p5
