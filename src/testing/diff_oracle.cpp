#include "testing/diff_oracle.hpp"

#include <iomanip>
#include <sstream>

#include "fastpath/stuff_fast.hpp"
#include "hdlc/delineation.hpp"
#include "hdlc/stuffing.hpp"
#include "p5/p5.hpp"

namespace p5::testing {

namespace {

std::string hex_octet(u8 b) {
  std::ostringstream o;
  o << "0x" << std::hex << std::setw(2) << std::setfill('0') << static_cast<unsigned>(b);
  return o.str();
}

/// First-divergence diagnosis between two engines' byte streams.
std::string diff_bytes(std::string_view label_a, BytesView a, std::string_view label_b,
                       BytesView b) {
  if (std::equal(a.begin(), a.end(), b.begin(), b.end())) return {};
  std::ostringstream o;
  o << label_a << " (" << a.size() << " octets) != " << label_b << " (" << b.size()
    << " octets)";
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      o << "; first divergence at offset " << i << ": " << hex_octet(a[i]) << " vs "
        << hex_octet(b[i]);
      return o.str();
    }
  }
  o << "; one is a prefix of the other";
  return o.str();
}

constexpr u64 kCyclesPerOctet = 4;  ///< generous bound for either byte sorter
constexpr u64 kCycleSlack = 64;

}  // namespace

// ---- persistent cycle-level rigs --------------------------------------

namespace detail {

struct GenRig {
  rtl::Fifo<rtl::Word> in{"oracle_gen_in", 1};
  rtl::Fifo<rtl::Word> out{"oracle_gen_out", 2};
  core::EscapeGenerate unit;
  rtl::Simulator sim;

  GenRig(unsigned lanes, hdlc::Accm accm) : unit("oracle_gen", lanes, in, out, accm) {
    sim.add(unit);
    sim.add_channel(in);
    sim.add_channel(out);
  }

  /// Stream one frame through; returns nullopt when the unit never emitted
  /// EOF within the cycle budget (itself a reportable failure).
  std::optional<Bytes> run(BytesView content, unsigned lanes) {
    Bytes got;
    std::size_t off = 0;
    bool done = false;
    const u64 budget = kCycleSlack + kCyclesPerOctet * (content.size() + lanes);
    for (u64 cycle = 0; cycle < budget && !done; ++cycle) {
      if (off < content.size() && in.can_push()) {
        const std::size_t n = std::min<std::size_t>(lanes, content.size() - off);
        rtl::Word w = rtl::Word::of(content.subspan(off, n));
        w.sof = off == 0;
        w.eof = off + n >= content.size();
        in.push(w);
        off += n;
      }
      sim.step();
      while (out.can_pop()) {
        const rtl::Word w = out.pop();
        for (std::size_t i = 0; i < w.count(); ++i) got.push_back(w.lane(i));
        if (w.eof) done = true;
      }
    }
    if (!done) return std::nullopt;
    return got;
  }
};

struct DetRig {
  rtl::Fifo<rtl::Word> in{"oracle_det_in", 1};
  rtl::Fifo<rtl::Word> out{"oracle_det_out", 2};
  core::EscapeDetect unit;
  rtl::Simulator sim;

  explicit DetRig(unsigned lanes) : unit("oracle_det", lanes, in, out) {
    sim.add(unit);
    sim.add_channel(in);
    sim.add_channel(out);
  }

  std::optional<DetectStreamResult> run(BytesView stuffed, unsigned lanes) {
    DetectStreamResult res;
    std::size_t off = 0;
    bool done = false;
    const u64 budget = kCycleSlack + kCyclesPerOctet * (stuffed.size() + lanes);
    for (u64 cycle = 0; cycle < budget && !done; ++cycle) {
      if (off < stuffed.size() && in.can_push()) {
        const std::size_t n = std::min<std::size_t>(lanes, stuffed.size() - off);
        rtl::Word w = rtl::Word::of(stuffed.subspan(off, n));
        w.sof = off == 0;
        w.eof = off + n >= stuffed.size();
        in.push(w);
        off += n;
      }
      sim.step();
      while (out.can_pop()) {
        const rtl::Word w = out.pop();
        for (std::size_t i = 0; i < w.count(); ++i) res.data.push_back(w.lane(i));
        if (w.eof) {
          res.abort = w.abort;
          done = true;
        }
      }
    }
    if (!done) return std::nullopt;
    return res;
  }
};

}  // namespace detail

Bytes escape_generate_stream(unsigned lanes, BytesView content, const hdlc::Accm& accm) {
  detail::GenRig rig(lanes, accm);
  auto got = rig.run(content, lanes);
  return got ? std::move(*got) : Bytes{};
}

DetectStreamResult escape_detect_stream(unsigned lanes, BytesView stuffed) {
  detail::DetRig rig(lanes);
  auto got = rig.run(stuffed, lanes);
  return got ? std::move(*got) : DetectStreamResult{};
}

// ---- oracle ------------------------------------------------------------

DiffOracle::DiffOracle(hdlc::FrameConfig cfg, unsigned lanes)
    : cfg_(cfg),
      lanes_(lanes),
      scalar_crc16_(crc::kFcs16),
      scalar_crc32_(crc::kFcs32),
      simd_tx_(cfg.accm),
      simd_rx_(hdlc::Accm::sonet()),
      gen_(std::make_unique<detail::GenRig>(lanes, cfg.accm)),
      det_(std::make_unique<detail::DetRig>(lanes)) {}

DiffOracle::~DiffOracle() = default;

Bytes DiffOracle::scalar_encapsulate(u16 protocol, BytesView payload) const {
  // Independent re-implementation of the header/FCS assembly on purpose:
  // sharing hdlc::encapsulate here would let a framing bug hide from the
  // differential comparison.
  Bytes content;
  if (!cfg_.acfc) {
    content.push_back(cfg_.address);
    content.push_back(cfg_.control);
  }
  if (cfg_.pfc && protocol <= 0xFF && (protocol & 1u)) {
    content.push_back(static_cast<u8>(protocol));
  } else {
    put_be16(content, protocol);
  }
  append(content, payload);
  const bool wide = cfg_.fcs == hdlc::FcsKind::kFcs32;
  const u32 fcs = wide ? scalar_crc32_.crc(content) : scalar_crc16_.crc(content);
  // Least-significant octet first (RFC 1662 §C), both widths.
  for (std::size_t i = 0; i < cfg_.fcs_bytes(); ++i)
    content.push_back(static_cast<u8>(fcs >> (8 * i)));
  return content;
}

DiffOracle::EncodeResult DiffOracle::encode(u16 protocol, BytesView payload) {
  EncodeResult r;
  auto flunk = [&](std::string why) {
    if (r.agree) r.diagnosis = std::move(why);
    r.agree = false;
  };

  // Layer 1: frame content (header + payload + FCS), scalar vs fastpath CRC.
  r.content = scalar_encapsulate(protocol, payload);
  const Bytes content_fast = hdlc::encapsulate(cfg_, protocol, payload);
  if (auto d = diff_bytes("scalar content", r.content, "fastpath content", content_fast);
      !d.empty())
    flunk(std::move(d));

  // Layer 2: stuffed image — scalar vs SWAR (pinned) vs dispatched SIMD
  // engine vs cycle-level Escape Generate.
  r.stuffed = fastpath::scalar::stuff(r.content, cfg_.accm);
  Bytes stuffed_fast;
  stuffed_fast.reserve(2 * r.content.size() + fastpath::kStuffSlack);
  fastpath::stuff_append(stuffed_fast, r.content, cfg_.accm);
  if (auto d = diff_bytes("scalar stuffed", r.stuffed, "SWAR stuffed", stuffed_fast);
      !d.empty())
    flunk(std::move(d));

  Bytes stuffed_simd;
  stuffed_simd.reserve(2 * r.content.size() + fastpath::kStuffSlack);
  simd_tx_.stuff_append(stuffed_simd, r.content);
  if (auto d = diff_bytes("scalar stuffed", r.stuffed,
                          std::string("SIMD(") + fastpath::to_string(simd_tx_.tier()) +
                              ") stuffed",
                          stuffed_simd);
      !d.empty())
    flunk(std::move(d));

  auto stuffed_p5 = gen_->run(r.content, lanes_);
  if (!stuffed_p5) {
    flunk("EscapeGenerate never emitted EOF within the cycle budget");
  } else if (auto d = diff_bytes("scalar stuffed", r.stuffed, "p5 EscapeGenerate", *stuffed_p5);
             !d.empty()) {
    flunk(std::move(d));
  }

  // Layer 3: the fused zero-alloc encoder's whole wire image.
  const BytesView wire = hdlc::encode_into(arena_, cfg_, protocol, payload);
  r.wire.assign(wire.begin(), wire.end());
  if (r.wire.size() < 2 || r.wire.front() != hdlc::kFlag || r.wire.back() != hdlc::kFlag) {
    flunk("fused encoder wire image is not flag-delimited");
  } else if (auto d = diff_bytes("scalar stuffed", r.stuffed, "fused encode_into body",
                                 BytesView(r.wire).subspan(1, r.wire.size() - 2));
             !d.empty()) {
    flunk(std::move(d));
  }
  return r;
}

DiffOracle::DecodeResult DiffOracle::decode(BytesView stuffed) {
  DecodeResult r;
  auto flunk = [&](std::string why) {
    if (r.agree) r.diagnosis = std::move(why);
    r.agree = false;
  };

  auto [scalar_data, scalar_ok] = fastpath::scalar::destuff(stuffed);
  r.recovered = std::move(scalar_data);
  r.ok = scalar_ok;

  Bytes swar_data;
  swar_data.reserve(stuffed.size() + fastpath::kStuffSlack);
  const bool swar_ok = fastpath::destuff_append(swar_data, stuffed);
  if (swar_ok != scalar_ok)
    flunk(std::string("dangling-escape verdicts differ: scalar ") +
          (scalar_ok ? "ok" : "abort") + ", SWAR " + (swar_ok ? "ok" : "abort"));
  if (auto d = diff_bytes("scalar destuffed", r.recovered, "SWAR destuffed", swar_data);
      !d.empty())
    flunk(std::move(d));

  const std::string simd_label = std::string("SIMD(") + fastpath::to_string(simd_rx_.tier()) + ")";
  Bytes simd_data;
  simd_data.reserve(stuffed.size() + fastpath::kStuffSlack);
  const bool simd_ok = simd_rx_.destuff_append(simd_data, stuffed);
  if (simd_ok != scalar_ok)
    flunk(std::string("dangling-escape verdicts differ: scalar ") +
          (scalar_ok ? "ok" : "abort") + ", " + simd_label + " " + (simd_ok ? "ok" : "abort"));
  if (auto d = diff_bytes("scalar destuffed", r.recovered, simd_label + " destuffed", simd_data);
      !d.empty())
    flunk(std::move(d));

  if (stuffed.empty()) return r;  // the byte sorter needs at least one octet
  auto det = det_->run(stuffed, lanes_);
  if (!det) {
    flunk("EscapeDetect never emitted EOF within the cycle budget");
    return r;
  }
  if (det->abort == r.ok)
    flunk(std::string("dangling-escape verdicts differ: scalar ") +
          (scalar_ok ? "ok" : "abort") + ", p5 EscapeDetect " +
          (det->abort ? "abort" : "ok"));
  if (auto d = diff_bytes("scalar destuffed", r.recovered, "p5 EscapeDetect", det->data);
      !d.empty())
    flunk(std::move(d));
  return r;
}

DiffOracle::ReceiveResult DiffOracle::receive(BytesView raw_wire) {
  ReceiveResult r;
  if (cfg_.acfc || cfg_.pfc) {
    r.agree = false;
    r.diagnosis = "receive() requires uncompressed headers (the P5 has no ACFC/PFC)";
    return r;
  }

  // The P5's PHY interface moves whole `lanes`-octet words, so a stream tail
  // shorter than one word would sit in its spill buffer unseen. Pad with
  // inter-frame flag fill to a word boundary — and give the *same* padded
  // image to every engine, so a truncated trailing frame is closed (and then
  // FCS-rejected) identically everywhere.
  Bytes padded(raw_wire.begin(), raw_wire.end());
  while (padded.size() % lanes_) padded.push_back(hdlc::kFlag);
  const BytesView wire(padded);

  // Software stack, parameterised by destuff engine.
  enum class Engine { kScalar, kSwar, kSimd };
  auto software = [&](Engine engine) {
    std::vector<Delivery> good;
    hdlc::Delineator d([&](BytesView f) {
      Bytes data;
      bool ok = false;
      switch (engine) {
        case Engine::kScalar: {
          auto res = fastpath::scalar::destuff(f);
          data = std::move(res.first);
          ok = res.second;
          break;
        }
        case Engine::kSwar:
          data.reserve(f.size() + fastpath::kStuffSlack);
          ok = fastpath::destuff_append(data, f);
          break;
        case Engine::kSimd:
          data.reserve(f.size() + fastpath::kStuffSlack);
          ok = simd_rx_.destuff_append(data, f);
          break;
      }
      if (!ok) return;
      auto parsed = hdlc::parse(cfg_, data);
      if (parsed.ok())
        good.push_back({parsed.frame->protocol, std::move(parsed.frame->payload)});
    });
    d.push(wire);
    return good;
  };
  const std::vector<Delivery> sw_scalar = software(Engine::kScalar);
  const std::vector<Delivery> sw_swar = software(Engine::kSwar);
  const std::vector<Delivery> sw_simd = software(Engine::kSimd);

  // Cycle-accurate receiver: a whole P5 device configured to match.
  core::P5Config pc;
  pc.lanes = lanes_;
  pc.address = cfg_.address;
  pc.control = cfg_.control;
  pc.fcs32 = cfg_.fcs == hdlc::FcsKind::kFcs32;
  pc.max_payload = cfg_.max_payload;
  pc.accm = cfg_.accm;
  core::P5 dev(pc);
  std::vector<Delivery> hw;
  dev.set_rx_sink([&](core::RxDelivery d) { hw.push_back({d.protocol, std::move(d.payload)}); });
  dev.phy_push_rx(wire);
  dev.drain_rx(10000);

  auto compare = [&](const char* label, const std::vector<Delivery>& other) {
    if (sw_scalar == other) return;
    if (!r.agree) return;  // keep the first divergence
    std::ostringstream o;
    o << "scalar engine accepted " << sw_scalar.size() << " frames, " << label << " accepted "
      << other.size();
    const std::size_t n = std::min(sw_scalar.size(), other.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!(sw_scalar[i] == other[i])) {
        o << "; first divergence at frame " << i;
        break;
      }
    }
    r.agree = false;
    r.diagnosis = o.str();
  };
  compare("SWAR engine", sw_swar);
  compare("dispatched SIMD engine", sw_simd);
  compare("p5 device", hw);
  r.delivered = sw_scalar;
  return r;
}

}  // namespace p5::testing
