// IP Control Protocol (RFC 1332) — the NCP that brings IPv4 up over the
// link, demonstrating the paper's "family of Network Control Protocols"
// component. Options implemented: IP-Address (3), including address
// assignment by Nak for a 0.0.0.0 requester, and IP-Compression-Protocol
// (2) negotiating Van Jacobson TCP/IP header compression (RFC 1332 §4).
#pragma once

#include <functional>

#include "ppp/fsm.hpp"
#include "ppp/vj.hpp"

namespace p5::ppp {

inline constexpr u8 kOptIpCompression = 2;
inline constexpr u8 kOptIpAddress = 3;

struct IpcpConfig {
  u32 local_address = 0;       ///< 0 = ask the peer to assign one
  u32 assign_peer_address = 0; ///< address to hand a 0.0.0.0 peer (0 = refuse)

  // VJ compression: `request_vj` asks the peer to *send us* compressed TCP
  // (sizing our decompressor); `accept_vj` lets the peer ask the reverse
  // (sizing our compressor). Slot parameters per RFC 1332 §4 / RFC 1144 §5.
  bool request_vj = false;
  bool accept_vj = true;
  u8 vj_max_slot_id = 15;
  bool vj_comp_slot_id = true;
};

/// Outcome of the IP-Compression-Protocol negotiation, per direction.
struct VjNegotiation {
  bool rx = false;          ///< peer may send us VJ-compressed TCP
  vj::VjConfig rx_config;   ///< parameters our decompressor must honor
  bool tx = false;          ///< we may send the peer VJ-compressed TCP
  vj::VjConfig tx_config;   ///< parameters our compressor must honor
};

class Ipcp final : public Fsm {
 public:
  using TxHook = std::function<void(u16 protocol, const Packet&)>;
  using UpHook = std::function<void(u32 local, u32 peer)>;

  Ipcp(const IpcpConfig& cfg, TxHook tx, Timeouts timeouts = Timeouts());

  void set_up_hook(UpHook h) { up_hook_ = std::move(h); }

  [[nodiscard]] u32 local_address() const { return cfg_.local_address; }
  [[nodiscard]] u32 peer_address() const { return peer_address_; }
  [[nodiscard]] const VjNegotiation& vj() const { return vj_; }

 protected:
  std::vector<Option> build_configure_options() override;
  ConfigureVerdict judge_configure_request(const std::vector<Option>& options) override;
  void on_configure_ack(const std::vector<Option>& options) override;
  void on_configure_nak(const std::vector<Option>& options) override;
  void on_configure_reject(const std::vector<Option>& options) override;
  void this_layer_up() override;
  void send_packet(const Packet& pkt) override;

 private:
  IpcpConfig cfg_;
  TxHook tx_;
  UpHook up_hook_;
  u32 peer_address_ = 0;
  bool ask_address_ = true;
  bool ask_vj_ = false;
  VjNegotiation vj_;
};

}  // namespace p5::ppp
