// P5 device configuration — the knobs the paper exposes through the
// Protocol OAM register map (programmable address for MAPOS, control octet,
// FCS selection) plus the datapath width that distinguishes the 8-bit P5
// (625 Mbps) from the 32-bit P5 (2.5 Gbps).
#pragma once

#include "common/types.hpp"
#include "crc/crc_spec.hpp"
#include "hdlc/accm.hpp"
#include "hdlc/frame.hpp"

namespace p5::core {

struct P5Config {
  unsigned lanes = 4;  ///< datapath octets per clock: 1 (8-bit) .. 8 (64-bit)

  u8 address = hdlc::kDefaultAddress;  ///< programmable (MAPOS, RFC 2171)
  u8 control = hdlc::kDefaultControl;
  bool fcs32 = true;  ///< paper: 32-bit CRC "for accuracy purposes"
  std::size_t max_payload = 1500;
  /// Async-Control-Character-Map: SONET links escape only 0x7E/0x7D; async
  /// links additionally escape selected control octets (RFC 1662 §7.1).
  hdlc::Accm accm = hdlc::Accm::sonet();

  /// Nominal clock for Gbps conversions: 2.5 Gbps / 32 bits (paper §5).
  double clock_mhz = 78.125;

  [[nodiscard]] const crc::CrcSpec& crc_spec() const {
    return fcs32 ? crc::kFcs32 : crc::kFcs16;
  }
  [[nodiscard]] std::size_t fcs_bytes() const { return fcs32 ? 4 : 2; }
  [[nodiscard]] unsigned width_bits() const { return lanes * 8; }
  [[nodiscard]] double line_gbps() const {
    return clock_mhz * 1e6 * width_bits() / 1e9;
  }
};

}  // namespace p5::core
