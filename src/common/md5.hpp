// MD5 message digest (RFC 1321), implemented from the specification.
//
// Cryptographically broken for signatures, but exactly what CHAP (RFC 1994)
// mandates: the response value is MD5(identifier ‖ secret ‖ challenge).
// Incremental update() interface so the CHAP layer can hash the three parts
// without concatenating them first.
#pragma once

#include <array>
#include <string>

#include "common/types.hpp"

namespace p5 {

class Md5 {
 public:
  using Digest = std::array<u8, 16>;

  Md5() { reset(); }

  void reset();
  void update(BytesView data);
  void update(const u8* data, std::size_t len) { update(BytesView(data, len)); }

  /// Finalize and return the 16-octet digest. The object must be reset()
  /// before further use.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest digest(BytesView data) {
    Md5 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const u8* block);

  std::array<u32, 4> state_{};
  u64 length_ = 0;               ///< total message octets so far
  std::array<u8, 64> buffer_{};  ///< partial block
  std::size_t buffered_ = 0;
};

/// Lowercase hex rendering of a digest (test vectors, failure messages).
[[nodiscard]] std::string md5_hex(const Md5::Digest& d);

}  // namespace p5
