// PPP authentication suite: MD5 pinned to the RFC 1321 test vectors, CHAP
// response values pinned to hand-computed golden vectors, the PAP/CHAP
// machines' retry/timeout/reject discipline, and full endpoints negotiating
// the Authentication-Protocol option and running the auth phase end to end
// (success, wrong secret, unknown identity, peer refusing to authenticate).
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/md5.hpp"
#include "ppp/auth.hpp"
#include "ppp/endpoint.hpp"
#include "ppp/lcp.hpp"
#include "ppp/protocols.hpp"

namespace p5::ppp {
namespace {

// ---- MD5 / golden CHAP vectors ----

TEST(Md5, Rfc1321TestSuite) {
  const auto hex = [](const char* s) {
    return md5_hex(Md5::digest(BytesView(reinterpret_cast<const u8*>(s), std::string(s).size())));
  };
  // RFC 1321 §A.5, verbatim.
  EXPECT_EQ(hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(hex("abcdefghijklmnopqrstuvwxyz"), "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(hex("12345678901234567890123456789012345678901234567890123456789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  Bytes msg;
  for (int i = 0; i < 1000; ++i) msg.push_back(static_cast<u8>(i * 37));
  const auto whole = Md5::digest(msg);
  Md5 h;
  // Uneven split straddling the 64-octet block boundary.
  h.update(BytesView(msg.data(), 63));
  h.update(BytesView(msg.data() + 63, 2));
  h.update(BytesView(msg.data() + 65, msg.size() - 65));
  EXPECT_EQ(h.finish(), whole);
}

std::string chap_hex(u8 id, const std::string& secret, const Bytes& challenge) {
  const Bytes r = chap_md5_response(id, secret, challenge);
  Md5::Digest d{};
  std::copy(r.begin(), r.end(), d.begin());
  return md5_hex(d);
}

TEST(Chap, GoldenResponseVectors) {
  // Hand-computed MD5(id ‖ secret ‖ challenge) — independent of the Md5
  // class under test (python hashlib).
  Bytes ascending;
  for (u8 i = 0; i < 16; ++i) ascending.push_back(i);
  EXPECT_EQ(chap_hex(0x01, "secret123", ascending), "97164b93fcada5b4b41b7479c17235c7");
  EXPECT_EQ(chap_hex(0x23, "open sesame", Bytes(16, 0xAA)), "e00eaedccf034133a2ddf39790ad091e");
}

TEST(Chap, ClientEmitsGoldenResponsePacket) {
  // Drive a ChapClient with a fixed challenge and pin the whole wire packet.
  std::vector<Packet> sent;
  ChapClient client("alice", "secret123", [&](u16 proto, const Packet& p) {
    EXPECT_EQ(proto, kProtoChap);
    sent.push_back(p);
  });
  Bytes challenge_value;
  for (u8 i = 0; i < 16; ++i) challenge_value.push_back(i);
  Packet challenge;
  challenge.code = kChapChallenge;
  challenge.identifier = 0x01;
  challenge.data.push_back(16);
  append(challenge.data, challenge_value);
  const std::string server_name = "bras";
  challenge.data.insert(challenge.data.end(), server_name.begin(), server_name.end());

  client.receive(challenge);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].code, kChapResponse);
  EXPECT_EQ(sent[0].identifier, 0x01);
  ASSERT_GE(sent[0].data.size(), 17u + 5u);
  EXPECT_EQ(sent[0].data[0], 16);  // Value-Size
  Md5::Digest got{};
  std::copy(sent[0].data.begin() + 1, sent[0].data.begin() + 17, got.begin());
  EXPECT_EQ(md5_hex(got), "97164b93fcada5b4b41b7479c17235c7");
  const std::string name(sent[0].data.begin() + 17, sent[0].data.end());
  EXPECT_EQ(name, "alice");
}

// ---- machine-level wiring ----

AuthPolicy table_policy(std::map<std::string, std::string> accounts, unsigned bad_budget = 0,
                        unsigned rechallenge = 0) {
  AuthPolicy p;
  p.lookup = [accounts = std::move(accounts)](const std::string& id) -> std::optional<std::string> {
    const auto it = accounts.find(id);
    if (it == accounts.end()) return std::nullopt;
    return it->second;
  };
  p.max_bad_attempts = bad_budget;
  p.rechallenge_ticks = rechallenge;
  return p;
}

/// Wire two auth machines through queues (store-and-forward, like a link).
struct AuthPair {
  std::unique_ptr<AuthMachine> client, server;
  std::deque<Packet> to_client, to_server;

  void connect_pap(const std::string& id, const std::string& pw, AuthPolicy policy,
                   AuthTimeouts t = AuthTimeouts()) {
    client = std::make_unique<PapClient>(
        id, pw, [this](u16, const Packet& p) { to_server.push_back(p); }, t);
    server = std::make_unique<PapServer>(std::move(policy),
                                         [this](u16, const Packet& p) { to_client.push_back(p); });
  }
  void connect_chap(const std::string& id, const std::string& pw, AuthPolicy policy,
                    AuthTimeouts t = AuthTimeouts()) {
    client = std::make_unique<ChapClient>(
        id, pw, [this](u16, const Packet& p) { to_server.push_back(p); });
    server = std::make_unique<ChapServer>(
        "bras", std::move(policy), [this](u16, const Packet& p) { to_client.push_back(p); }, t);
  }
  void pump() {
    for (int round = 0; round < 50 && (!to_client.empty() || !to_server.empty()); ++round) {
      std::deque<Packet> qc, qs;
      std::swap(qc, to_client);
      std::swap(qs, to_server);
      for (const Packet& p : qs) server->receive(p);
      for (const Packet& p : qc) client->receive(p);
    }
  }
};

TEST(Pap, HappyPath) {
  AuthPair pair;
  pair.connect_pap("alice", "pw", table_policy({{"alice", "pw"}}));
  pair.client->start();
  pair.server->start();
  pair.pump();
  EXPECT_EQ(pair.client->result(), AuthResult::kSuccess);
  EXPECT_EQ(pair.server->result(), AuthResult::kSuccess);
  EXPECT_EQ(pair.server->peer_identity(), "alice");
  EXPECT_EQ(pair.server->counters().bad_attempts, 0u);
}

TEST(Pap, WrongSecretRejected) {
  AuthPair pair;
  pair.connect_pap("alice", "WRONG", table_policy({{"alice", "pw"}}));
  pair.client->start();
  pair.pump();
  EXPECT_EQ(pair.client->result(), AuthResult::kFailed);
  EXPECT_EQ(pair.server->result(), AuthResult::kFailed);
  EXPECT_TRUE(pair.server->peer_identity().empty());
  EXPECT_EQ(pair.server->counters().bad_attempts, 1u);
}

TEST(Pap, UnknownIdentityRejected) {
  AuthPair pair;
  pair.connect_pap("mallory", "pw", table_policy({{"alice", "pw"}}));
  pair.client->start();
  pair.pump();
  EXPECT_EQ(pair.client->result(), AuthResult::kFailed);
  EXPECT_EQ(pair.server->result(), AuthResult::kFailed);
}

TEST(Pap, RetryExhaustionFailsClosed) {
  // No authenticator on the other end: the client retransmits its budget,
  // then fails (RFC 1334 "the authentication fails" on exhaustion).
  unsigned requests = 0;
  AuthTimeouts t;
  t.max_retries = 3;
  t.retry_ticks = 2;
  PapClient client("alice", "pw", [&](u16, const Packet&) { ++requests; }, t);
  client.start();
  for (int i = 0; i < 100 && client.result() == AuthResult::kPending; ++i) client.tick();
  EXPECT_EQ(client.result(), AuthResult::kFailed);
  EXPECT_EQ(requests, 4u);  // initial + 3 retries
  EXPECT_EQ(client.counters().timeouts, 4u);
}

TEST(Pap, RetransmissionAnsweredConsistentlyAfterVerdict) {
  std::vector<Packet> replies;
  PapServer server(table_policy({{"alice", "pw"}}),
                   [&](u16, const Packet& p) { replies.push_back(p); });
  Packet req;
  req.code = kPapAuthRequest;
  req.identifier = 7;
  req.data = {5, 'a', 'l', 'i', 'c', 'e', 2, 'p', 'w'};
  server.receive(req);
  server.receive(req);  // duplicate (lost Ack): must re-Ack, not re-verify
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].code, kPapAuthAck);
  EXPECT_EQ(replies[1].code, kPapAuthAck);
  EXPECT_EQ(server.result(), AuthResult::kSuccess);
}

TEST(Pap, BadAttemptBudgetTolerates) {
  std::vector<Packet> replies;
  PapServer server(table_policy({{"alice", "pw"}}, /*bad_budget=*/1),
                   [&](u16, const Packet& p) { replies.push_back(p); });
  Packet bad;
  bad.code = kPapAuthRequest;
  bad.identifier = 1;
  bad.data = {5, 'a', 'l', 'i', 'c', 'e', 2, 'X', 'X'};
  server.receive(bad);
  EXPECT_EQ(server.result(), AuthResult::kPending);  // first miss tolerated
  Packet good = bad;
  good.identifier = 2;
  good.data = {5, 'a', 'l', 'i', 'c', 'e', 2, 'p', 'w'};
  server.receive(good);
  EXPECT_EQ(server.result(), AuthResult::kSuccess);  // retry with the right secret wins
  bad.identifier = 3;
  server.receive(bad);  // post-verdict retransmission cannot reopen it
  EXPECT_EQ(server.result(), AuthResult::kSuccess);
}

TEST(Chap, HappyPath) {
  AuthPair pair;
  pair.connect_chap("bob", "hunter2", table_policy({{"bob", "hunter2"}}));
  pair.server->start();
  pair.pump();
  EXPECT_EQ(pair.client->result(), AuthResult::kSuccess);
  EXPECT_EQ(pair.server->result(), AuthResult::kSuccess);
  EXPECT_EQ(pair.server->peer_identity(), "bob");
}

TEST(Chap, WrongSecretRejected) {
  AuthPair pair;
  pair.connect_chap("bob", "WRONG", table_policy({{"bob", "hunter2"}}));
  pair.server->start();
  pair.pump();
  EXPECT_EQ(pair.client->result(), AuthResult::kFailed);
  EXPECT_EQ(pair.server->result(), AuthResult::kFailed);
  EXPECT_EQ(pair.server->counters().bad_attempts, 1u);
}

TEST(Chap, UnknownIdentityRejected) {
  AuthPair pair;
  pair.connect_chap("ghost", "hunter2", table_policy({{"bob", "hunter2"}}));
  pair.server->start();
  pair.pump();
  EXPECT_EQ(pair.server->result(), AuthResult::kFailed);
}

TEST(Chap, ToleratedBadAttemptGetsFreshChallenge) {
  // Budget 1: the first wrong response draws a Failure *and* a fresh
  // challenge; a client that keeps using the wrong secret then exhausts the
  // budget on the re-answer.
  AuthPair pair;
  pair.connect_chap("bob", "WRONG", table_policy({{"bob", "hunter2"}}, /*bad_budget=*/1));
  pair.server->start();
  pair.pump();
  EXPECT_EQ(pair.server->result(), AuthResult::kFailed);
  EXPECT_EQ(pair.server->counters().bad_attempts, 2u);
}

TEST(Chap, SilentPeerExhaustsChallengesAndFailsClosed) {
  unsigned challenges = 0;
  AuthTimeouts t;
  t.max_retries = 2;
  t.retry_ticks = 3;
  ChapServer server("bras", table_policy({{"bob", "hunter2"}}),
                    [&](u16, const Packet&) { ++challenges; }, t);
  server.start();
  for (int i = 0; i < 100 && server.result() == AuthResult::kPending; ++i) server.tick();
  EXPECT_EQ(server.result(), AuthResult::kFailed);
  EXPECT_EQ(challenges, 3u);  // initial + 2 retries
}

TEST(Chap, StaleResponseIgnored) {
  std::vector<Packet> to_client;
  ChapServer server("bras", table_policy({{"bob", "hunter2"}}),
                    [&](u16, const Packet& p) { to_client.push_back(p); });
  server.start();
  ASSERT_EQ(to_client.size(), 1u);
  Packet stale;
  stale.code = kChapResponse;
  stale.identifier = static_cast<u8>(to_client[0].identifier + 100);
  stale.data = Bytes{16};
  stale.data.resize(17 + 3, 0);
  server.receive(stale);
  EXPECT_EQ(server.result(), AuthResult::kPending);  // neither verdict nor attempt burned
  EXPECT_EQ(server.counters().bad_attempts, 0u);
}

TEST(Chap, PeriodicRechallengeKeepsSessionHonest) {
  AuthPair pair;
  pair.connect_chap("bob", "hunter2",
                    table_policy({{"bob", "hunter2"}}, /*bad_budget=*/0, /*rechallenge=*/4));
  pair.server->start();
  pair.pump();
  ASSERT_EQ(pair.server->result(), AuthResult::kSuccess);
  auto* server = static_cast<ChapServer*>(pair.server.get());
  for (int t = 0; t < 9; ++t) {
    pair.server->tick();
    pair.pump();
  }
  EXPECT_GE(server->rechallenges(), 2u);
  EXPECT_EQ(pair.server->result(), AuthResult::kSuccess);  // re-verified, still good
}

TEST(Chap, ChallengeValuesVaryAcrossSessions) {
  // RFC 1994 §2.2: challenge values must vary. Distinct seeds (sessions)
  // must produce distinct challenges.
  Bytes first, second;
  const auto grab = [](Bytes& out) {
    return [&out](u16, const Packet& p) {
      if (p.code == kChapChallenge && !p.data.empty()) {
        out.assign(p.data.begin() + 1, p.data.begin() + 1 + p.data[0]);
      }
    };
  };
  ChapServer s1("bras", {}, grab(first), AuthTimeouts(), /*challenge_seed=*/1);
  ChapServer s2("bras", {}, grab(second), AuthTimeouts(), /*challenge_seed=*/2);
  s1.start();
  s2.start();
  ASSERT_EQ(first.size(), 16u);
  ASSERT_EQ(second.size(), 16u);
  EXPECT_NE(first, second);
}

// ---- endpoint-level: LCP option negotiation + auth phase ----

struct AuthedPair {
  std::unique_ptr<PppEndpoint> client, server;
  std::deque<Bytes> to_client, to_server;

  /// `server` demands `proto`; `client` presents identity/secret.
  void build(AuthProto proto, const std::string& id, const std::string& secret,
             std::map<std::string, std::string> accounts, bool client_allows_auth = true) {
    PppEndpoint::Config cc, cs;
    cc.ipcp.local_address = 0x0A000002;
    cc.auth.identity = id;
    cc.auth.secret = secret;
    cc.lcp.allow_pap = client_allows_auth;
    cc.lcp.allow_chap = client_allows_auth;
    cs.ipcp.local_address = 0x0A000001;
    cs.lcp.require_auth = proto;
    cs.auth.policy = table_policy(std::move(accounts));
    client = std::make_unique<PppEndpoint>(
        "cli", cc, [this](BytesView w) { to_server.emplace_back(w.begin(), w.end()); });
    server = std::make_unique<PppEndpoint>(
        "srv", cs, [this](BytesView w) { to_client.emplace_back(w.begin(), w.end()); });
  }
  void pump() {
    for (int round = 0; round < 100 && (!to_client.empty() || !to_server.empty()); ++round) {
      std::deque<Bytes> qc, qs;
      std::swap(qc, to_client);
      std::swap(qs, to_server);
      for (const Bytes& w : qs) server->wire_rx(w);
      for (const Bytes& w : qc) client->wire_rx(w);
    }
  }
  void run(int ticks = 40) {
    client->open();
    server->open();
    client->lower_up();
    server->lower_up();
    for (int i = 0; i < ticks; ++i) {
      pump();
      client->tick();
      server->tick();
    }
    pump();
  }
};

TEST(EndpointAuth, ChapSuccessReachesNetworkPhase) {
  AuthedPair pair;
  pair.build(AuthProto::kChap, "alice", "pw1", {{"alice", "pw1"}});
  pair.run();
  EXPECT_EQ(pair.server->phase(), Phase::kNetwork);
  EXPECT_EQ(pair.client->phase(), Phase::kNetwork);
  EXPECT_EQ(pair.server->auth_result(), AuthResult::kSuccess);
  EXPECT_EQ(pair.server->authenticated_peer(), "alice");
  EXPECT_TRUE(pair.server->ip_ready());
  EXPECT_TRUE(pair.client->ip_ready());
}

TEST(EndpointAuth, PapSuccessReachesNetworkPhase) {
  AuthedPair pair;
  pair.build(AuthProto::kPap, "alice", "pw1", {{"alice", "pw1"}});
  pair.run();
  EXPECT_EQ(pair.server->auth_result(), AuthResult::kSuccess);
  EXPECT_EQ(pair.server->authenticated_peer(), "alice");
  EXPECT_TRUE(pair.client->ip_ready());
}

TEST(EndpointAuth, ChapWrongSecretTearsLinkDown) {
  AuthedPair pair;
  pair.build(AuthProto::kChap, "alice", "WRONG", {{"alice", "pw1"}});
  pair.run();
  EXPECT_EQ(pair.server->auth_result(), AuthResult::kFailed);
  EXPECT_FALSE(pair.server->ip_ready());
  EXPECT_FALSE(pair.client->ip_ready());
  EXPECT_NE(pair.server->phase(), Phase::kNetwork);
}

TEST(EndpointAuth, PapUnknownIdentityTearsLinkDown) {
  AuthedPair pair;
  pair.build(AuthProto::kPap, "ghost", "pw1", {{"alice", "pw1"}});
  pair.run();
  EXPECT_EQ(pair.server->auth_result(), AuthResult::kFailed);
  EXPECT_FALSE(pair.client->ip_ready());
}

TEST(EndpointAuth, PeerRefusingAuthFailsClosedByDefault) {
  // Client Configure-Rejects the Authentication-Protocol option; the server
  // demanded it and did not mark it optional, so the link must not open.
  AuthedPair pair;
  pair.build(AuthProto::kChap, "alice", "pw1", {{"alice", "pw1"}},
             /*client_allows_auth=*/false);
  pair.run();
  EXPECT_EQ(pair.server->auth_result(), AuthResult::kFailed);
  EXPECT_FALSE(pair.server->ip_ready());
}

TEST(EndpointAuth, NakSteersPapDemandToChap) {
  // Server demands PAP; client disallows PAP but allows CHAP. The client
  // Naks the option toward CHAP and the server adopts it: the session still
  // authenticates, via CHAP.
  AuthedPair pair;
  PppEndpoint::Config cc, cs;
  cc.ipcp.local_address = 0x0A000002;
  cc.auth.identity = "alice";
  cc.auth.secret = "pw1";
  cc.lcp.allow_pap = false;
  cc.lcp.allow_chap = true;
  cs.ipcp.local_address = 0x0A000001;
  cs.lcp.require_auth = AuthProto::kPap;
  cs.auth.policy = table_policy({{"alice", "pw1"}});
  pair.client = std::make_unique<PppEndpoint>(
      "cli", cc, [&pair](BytesView w) { pair.to_server.emplace_back(w.begin(), w.end()); });
  pair.server = std::make_unique<PppEndpoint>(
      "srv", cs, [&pair](BytesView w) { pair.to_client.emplace_back(w.begin(), w.end()); });
  pair.run();
  EXPECT_EQ(pair.server->auth_result(), AuthResult::kSuccess);
  ASSERT_NE(pair.server->authenticator(), nullptr);
  EXPECT_EQ(pair.server->authenticator()->protocol(), kProtoChap);
  EXPECT_TRUE(pair.client->ip_ready());
}

TEST(EndpointAuth, MutualAuthentication) {
  // Both sides demand CHAP of each other; both must succeed before Network.
  AuthedPair pair;
  PppEndpoint::Config cc, cs;
  cc.ipcp.local_address = 0x0A000002;
  cc.lcp.require_auth = AuthProto::kChap;
  cc.auth.identity = "cli-id";
  cc.auth.secret = "cli-pw";
  cc.auth.policy = table_policy({{"srv-id", "srv-pw"}});
  cs.ipcp.local_address = 0x0A000001;
  cs.lcp.require_auth = AuthProto::kChap;
  cs.auth.identity = "srv-id";
  cs.auth.secret = "srv-pw";
  cs.auth.policy = table_policy({{"cli-id", "cli-pw"}});
  pair.client = std::make_unique<PppEndpoint>(
      "cli", cc, [&pair](BytesView w) { pair.to_server.emplace_back(w.begin(), w.end()); });
  pair.server = std::make_unique<PppEndpoint>(
      "srv", cs, [&pair](BytesView w) { pair.to_client.emplace_back(w.begin(), w.end()); });
  pair.run();
  EXPECT_EQ(pair.server->auth_result(), AuthResult::kSuccess);
  EXPECT_EQ(pair.client->auth_result(), AuthResult::kSuccess);
  EXPECT_EQ(pair.server->authenticated_peer(), "cli-id");
  EXPECT_EQ(pair.client->authenticated_peer(), "srv-id");
  EXPECT_TRUE(pair.server->ip_ready());
}

}  // namespace
}  // namespace p5::ppp
