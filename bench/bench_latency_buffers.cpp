// E6b — Pipeline latency and resynchronisation buffers.
//
// Paper Section 3: "for the 32-bit system, the process is divided up into 4
// pipelined stages with buffering and decisional mechanisms ... The first
// data transmitted is therefore delayed by 4 clock cycles, approximately
// 50ns. Subsequent data flow is continuous and efficient." And Section 1:
// "an extremely low resynchronisation buffer and backpressure scheme".
#include <cstdio>

#include "bench_util.hpp"
#include "p5/escape_generate.hpp"
#include "rtl/simulator.hpp"

using namespace p5;
using namespace p5::core;

namespace {

/// First-word latency through the Escape Generate unit at a given width.
u64 measure_latency(unsigned lanes) {
  rtl::Fifo<rtl::Word> in("in", 1);
  rtl::Fifo<rtl::Word> out("out", 2);
  EscapeGenerate gen("gen", lanes, in, out);
  rtl::Simulator sim;
  sim.add(gen);
  sim.add_channel(in);
  sim.add_channel(out);

  Bytes fill;
  for (unsigned i = 0; i < lanes; ++i) fill.push_back(static_cast<u8>(0x10 + i));
  rtl::Word first = rtl::Word::of(fill);
  first.sof = true;
  in.push(first);
  u64 cycles = 0;
  while (!out.can_pop()) {
    if (in.can_push()) in.push(rtl::Word::of(fill));
    sim.step();
    ++cycles;
    if (cycles > 64) break;
  }
  // Subtract the input-channel register the testbench itself adds.
  return cycles - 1;
}

}  // namespace

int main() {
  bench::banner("E6b / bench_latency_buffers — pipeline fill latency and buffer sizing",
                "Section 3: 4-stage escape pipeline, ~50ns first-word delay; "
                "'extremely low' resynchronisation buffer");

  bench::paper_says("32-bit Escape Generate: 4 pipeline stages, first data delayed 4 cycles "
                    "(~50 ns at 78.125 MHz); later words continuous.");

  const double clock_mhz = 78.125;
  std::printf("\n width | escape-gen latency | at %.3f MHz\n", clock_mhz);
  std::printf(" ------+--------------------+-------------\n");
  for (const unsigned lanes : {2u, 4u, 8u}) {
    const u64 lat = measure_latency(lanes);
    std::printf("  %2u-b | %7llu cycles     | %6.1f ns\n", lanes * 8,
                static_cast<unsigned long long>(lat),
                static_cast<double>(lat) * 1000.0 / clock_mhz);
  }

  std::printf("\nresynchronisation buffer occupancy under load (32-bit unit):\n");
  std::printf(" density | peak occupancy | capacity | backpressure cycles\n");
  std::printf(" --------+----------------+----------+--------------------\n");
  for (const double density : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    const auto r = bench::measure_tx_throughput(4, density, 10, 1500);
    std::printf("  %5.2f  | %8zu octets | %5u    | %15.1f%%\n", density, r.peak_queue, 12,
                100.0 * r.backpressure_frac);
  }
  std::printf("\nThe buffer never exceeds its 3*lanes = 12-octet capacity: the paper's\n"
              "'extremely low resynchronisation buffer' with backpressure absorbing the\n"
              "worst-case all-flags expansion.\n");
  return 0;
}
