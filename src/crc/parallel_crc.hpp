// Parallel W-bit CRC core — the P5 CRC unit (paper Section 3, citing
// Pei & Zukowski's parallel CRC construction).
//
// The bit-serial CRC register is a linear system over GF(2); consuming a
// whole W-bit data block in one clock is the linear map
//
//     next_state = M * [ state ; data_block ]
//
// where M is a width x (width+W) matrix obtained by symbolically executing W
// bit-steps of the serial LFSR. Each row of M is an XOR tree over state and
// data bits — exactly the combinational network the paper synthesises
// ("8 x 32-bit parallel matrix" for the 8-bit P5, "32 x 32-bit" for the
// 32-bit P5). The same matrix drives:
//   * the cycle-accurate model (ParallelCrc::advance), and
//   * the gate-level netlist generator (src/netlist/circuits/crc_circuit),
// so functional behaviour and area estimates share one source of truth.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "crc/crc_reference.hpp"
#include "crc/crc_spec.hpp"
#include "crc/gf2.hpp"

namespace p5::crc {

class ParallelCrc {
 public:
  /// Build the parallel update matrix for `data_bits` bits per clock
  /// (multiple of 8, up to 64 in the fast path).
  ParallelCrc(const CrcSpec& spec, unsigned data_bits);

  [[nodiscard]] const CrcSpec& spec() const { return spec_; }
  [[nodiscard]] unsigned data_bits() const { return data_bits_; }

  /// One clock: consume exactly data_bits/8 octets (wire order).
  [[nodiscard]] u32 advance(u32 state, BytesView block) const;

  /// Convenience: run a whole buffer, handling a non-multiple tail by falling
  /// back to byte-serial steps (what the hardware's CRC control unit does for
  /// partially-filled final words).
  [[nodiscard]] u32 update(u32 state, BytesView data) const;
  [[nodiscard]] u32 crc(BytesView data) const { return update(spec_.init, data) ^ spec_.xorout; }
  [[nodiscard]] bool check(BytesView data_with_fcs) const {
    return update(spec_.init, data_with_fcs) == spec_.residue;
  }

  /// The update matrix: rows = CRC width, cols = width + data_bits.
  /// Column layout: [0, width) state bits; [width, width+data_bits) data bits
  /// (data bit k = bit k%8 of octet k/8 — LSB-first, HDLC serial order).
  [[nodiscard]] const Gf2Matrix& matrix() const { return matrix_; }

  /// XOR-term count of row r (fan-in of output bit r's XOR tree).
  [[nodiscard]] std::size_t row_terms(std::size_t r) const { return matrix_.row(r).popcount(); }
  /// Total XOR terms — proportional to synthesised LUT area.
  [[nodiscard]] std::size_t total_terms() const { return matrix_.ones(); }
  /// Largest row fan-in — sets the XOR-tree depth (log2) on the critical path.
  [[nodiscard]] std::size_t max_row_terms() const;

 private:
  CrcSpec spec_;
  unsigned data_bits_;
  Gf2Matrix matrix_;
  // Fast-path per-row masks (valid when width<=32 and data_bits<=64).
  struct RowMasks {
    u32 state_mask;
    u64 data_mask;
  };
  std::vector<RowMasks> masks_;
};

}  // namespace p5::crc
