// PPP authentication phase: PAP (RFC 1334) and CHAP with MD5 (RFC 1994).
//
// Authentication is negotiated through the LCP Authentication-Protocol
// option (type 3): the side that *demands* authentication carries the option
// in its Configure-Request, and once LCP opens, runs the authenticator role
// here while the peer runs the corresponding responder. Each protocol is a
// small explicit state machine with the same deterministic tick()-driven
// retry/timeout discipline as the RFC 1661 automaton:
//
//   * PapClient       — retransmits Authenticate-Requests up to max_retries;
//   * PapServer       — checks id/secret against a lookup, Ack or Nak, with
//                       a configurable bad-attempt budget;
//   * ChapServer      — sends the challenge (retransmitted on timeout),
//                       verifies MD5(id ‖ secret ‖ challenge), Success or
//                       Failure, optional periodic rechallenge;
//   * ChapClient      — answers any challenge; outcome set by Success/Failure.
//
// All four report AuthResult::{kPending,kSuccess,kFailed} so the endpoint's
// auth phase and the SessionBroker ledger can classify sessions exactly.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "ppp/packet.hpp"

namespace p5::ppp {

enum class AuthProto : u8 { kNone = 0, kPap, kChap };
[[nodiscard]] const char* to_string(AuthProto p);

enum class AuthResult : u8 { kPending = 0, kSuccess, kFailed };
[[nodiscard]] const char* to_string(AuthResult r);

// PAP packet codes (RFC 1334 §2.1).
inline constexpr u8 kPapAuthRequest = 1;
inline constexpr u8 kPapAuthAck = 2;
inline constexpr u8 kPapAuthNak = 3;

// CHAP packet codes (RFC 1994 §4).
inline constexpr u8 kChapChallenge = 1;
inline constexpr u8 kChapResponse = 2;
inline constexpr u8 kChapSuccess = 3;
inline constexpr u8 kChapFailure = 4;

/// CHAP algorithm identifier carried in the LCP option (RFC 1994 §3).
inline constexpr u8 kChapAlgorithmMd5 = 5;

/// Shared timing/limits for every auth machine.
struct AuthTimeouts {
  unsigned max_retries = 4;  ///< request/challenge (re)transmission budget
  unsigned retry_ticks = 3;  ///< retransmission timer period, in tick() units
};

/// Authenticator-side policy: how id/secret pairs are checked and how many
/// bad attempts are tolerated before the peer is rejected for good.
struct AuthPolicy {
  /// Return the secret for `id`, or nullopt for an unknown identity.
  using SecretLookup = std::function<std::optional<std::string>(const std::string& id)>;
  SecretLookup lookup;
  /// Bad attempts (wrong secret / unknown id) tolerated before the final
  /// verdict. With 0, the first bad attempt fails the session outright —
  /// the "configurable reject behavior".
  unsigned max_bad_attempts = 0;
  /// CHAP only: re-challenge period in ticks once authenticated (0 = never).
  unsigned rechallenge_ticks = 0;
};

/// Common shape: feed received packets, drive time, observe the verdict.
class AuthMachine {
 public:
  using TxHook = std::function<void(u16 protocol, const Packet&)>;

  virtual ~AuthMachine() = default;

  virtual void start() = 0;
  virtual void tick() = 0;
  virtual void receive(const Packet& pkt) = 0;

  [[nodiscard]] AuthResult result() const { return result_; }
  [[nodiscard]] virtual u16 protocol() const = 0;

  /// Identity the peer authenticated as (authenticator-side machines only;
  /// empty until success).
  [[nodiscard]] const std::string& peer_identity() const { return peer_identity_; }

  struct Counters {
    u64 tx_requests = 0;   ///< requests/challenges/responses sent
    u64 timeouts = 0;      ///< retransmission timer firings
    u64 bad_attempts = 0;  ///< authenticator: failed verifications seen
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 protected:
  AuthResult result_ = AuthResult::kPending;
  Counters counters_;
  std::string peer_identity_;
};

// ---- PAP --------------------------------------------------------------

/// The peer being authenticated: sends Authenticate-Request until Ack/Nak
/// or retry exhaustion (exhaustion counts as failure, RFC 1334 §2.1.1).
class PapClient final : public AuthMachine {
 public:
  PapClient(std::string identity, std::string secret, TxHook tx,
            AuthTimeouts timeouts = AuthTimeouts());

  void start() override;
  void tick() override;
  void receive(const Packet& pkt) override;
  [[nodiscard]] u16 protocol() const override;

 private:
  void send_request();

  std::string identity_;
  std::string secret_;
  TxHook tx_;
  AuthTimeouts timeouts_;
  unsigned retries_left_ = 0;
  unsigned timer_ = 0;
  u8 request_id_ = 0;
};

/// The authenticator: validates Authenticate-Requests against the policy.
class PapServer final : public AuthMachine {
 public:
  PapServer(AuthPolicy policy, TxHook tx);

  void start() override {}
  void tick() override {}
  void receive(const Packet& pkt) override;
  [[nodiscard]] u16 protocol() const override;

 private:
  AuthPolicy policy_;
  TxHook tx_;
  unsigned bad_attempts_ = 0;
};

// ---- CHAP -------------------------------------------------------------

/// The authenticator: issues the challenge, verifies the MD5 response.
class ChapServer final : public AuthMachine {
 public:
  /// `name` is our system name carried in the Challenge (RFC 1994 §4.1);
  /// `challenge_seed` keeps challenge values deterministic per session.
  ChapServer(std::string name, AuthPolicy policy, TxHook tx,
             AuthTimeouts timeouts = AuthTimeouts(), u64 challenge_seed = 0xC4A11E46E5EEDull);

  void start() override;
  void tick() override;
  void receive(const Packet& pkt) override;
  [[nodiscard]] u16 protocol() const override;

  [[nodiscard]] u64 rechallenges() const { return rechallenges_; }

 private:
  void send_challenge(bool fresh_value);

  std::string name_;
  AuthPolicy policy_;
  TxHook tx_;
  AuthTimeouts timeouts_;
  Xoshiro256 rng_;
  Bytes challenge_;  ///< outstanding challenge value
  u8 challenge_id_ = 0;
  unsigned retries_left_ = 0;
  unsigned timer_ = 0;
  unsigned rechallenge_timer_ = 0;
  unsigned bad_attempts_ = 0;
  u64 rechallenges_ = 0;
};

/// The peer being authenticated: answers every Challenge with
/// MD5(identifier ‖ secret ‖ challenge-value) (RFC 1994 §2, §4.1).
class ChapClient final : public AuthMachine {
 public:
  ChapClient(std::string identity, std::string secret, TxHook tx);

  void start() override {}
  void tick() override {}
  void receive(const Packet& pkt) override;
  [[nodiscard]] u16 protocol() const override;

 private:
  std::string identity_;
  std::string secret_;
  TxHook tx_;
};

/// The CHAP/MD5 response value: MD5(id ‖ secret ‖ challenge). Exposed so
/// tests can pin golden vectors against an independent computation.
[[nodiscard]] Bytes chap_md5_response(u8 identifier, const std::string& secret,
                                      BytesView challenge);

}  // namespace p5::ppp
