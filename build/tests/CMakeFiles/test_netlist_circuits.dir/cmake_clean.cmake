file(REMOVE_RECURSE
  "CMakeFiles/test_netlist_circuits.dir/test_netlist_circuits.cpp.o"
  "CMakeFiles/test_netlist_circuits.dir/test_netlist_circuits.cpp.o.d"
  "test_netlist_circuits"
  "test_netlist_circuits.pdb"
  "test_netlist_circuits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
