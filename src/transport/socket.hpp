// Thin, RAII-safe wrappers over the BSD socket calls the transport uses.
//
// Everything here is nonblocking and IPv4 — the subsystem's job is carrying
// P5 SONET streams between processes on a LAN or loopback, not a general
// resolver stack. Hostnames are not resolved; addresses are dotted quads
// plus the "localhost" spelling.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"

namespace p5::transport {

/// RAII file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.release()) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() {
    const int f = fd_;
    fd_ = -1;
    return f;
  }
  void reset();

 private:
  int fd_ = -1;
};

struct SocketAddr {
  std::string host = "127.0.0.1";
  u16 port = 0;
};

/// Parse "host:port" (":port" and a bare "port" default the host to
/// loopback). Returns nullopt on a malformed port.
[[nodiscard]] std::optional<SocketAddr> parse_addr(const std::string& s);

[[nodiscard]] bool set_nonblocking(int fd);

/// Nonblocking TCP listener (SO_REUSEADDR). `reuseport` additionally sets
/// SO_REUSEPORT so N shards can each bind their own listener on one port
/// and let the kernel spread accepts across them. Invalid Fd on failure.
[[nodiscard]] Fd tcp_listen(const SocketAddr& addr, int backlog = 8, bool reuseport = false);
/// Accept one pending connection, nonblocking. Invalid Fd when none waits.
[[nodiscard]] Fd tcp_accept(int listen_fd);
/// Begin a nonblocking connect. `in_progress` reports EINPROGRESS (wait for
/// writability, then check connect_error) vs. immediately established.
[[nodiscard]] Fd tcp_connect(const SocketAddr& addr, bool& in_progress);
/// Connect-completion check once the fd polls writable: 0 = established,
/// otherwise the errno the connect failed with.
[[nodiscard]] int connect_error(int fd);

[[nodiscard]] Fd udp_bind(const SocketAddr& addr);
[[nodiscard]] Fd udp_connect(const SocketAddr& addr);

/// Port the kernel actually bound (for the port-0 "pick one for me" tests).
[[nodiscard]] u16 local_port(int fd);

}  // namespace p5::transport
