// Synthesis explorer: regenerate the paper's area/speed methodology for any
// datapath width — useful for sizing a P5 variant before committing to a
// device, the way Section 4 of the paper sizes the 8- and 32-bit builds.
//
//   build/examples/synthesis_report [width_bits ...]   (default: 8 16 32 64)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "netlist/circuits/p5_circuit.hpp"
#include "netlist/device.hpp"

int main(int argc, char** argv) {
  using namespace p5::netlist;

  std::vector<unsigned> widths;
  for (int i = 1; i < argc; ++i) widths.push_back(static_cast<unsigned>(std::atoi(argv[i])));
  if (widths.empty()) widths = {8, 16, 32, 64};

  for (const unsigned bits : widths) {
    if (bits % 8 || bits == 0 || bits > 64) {
      std::printf("skipping invalid width %u (need a multiple of 8, <= 64)\n", bits);
      continue;
    }
    const AreaReport report = circuits::p5_system_report(bits / 8);
    std::printf("%s\n", report.module_table().c_str());
    std::printf("%s", report.device_table(all_devices()).c_str());

    // Which devices can actually carry this width at its natural line rate?
    const double gbps = 0.078125 * bits;  // 78.125 MHz clock
    const double required = required_clock_mhz(gbps, bits);
    std::printf("  line rate at 78.125 MHz: %.3f Gbps (needs %.3f MHz)\n", gbps, required);
    for (const Device& d : all_devices()) {
      const bool fits = report.total_luts() <= d.luts && report.total_ffs() <= d.ffs;
      const bool fast = d.fmax_mhz(report.critical_depth(), true) >= required;
      std::printf("    %-12s %s\n", d.name.c_str(),
                  !fits ? "does not fit" : (fast ? "fits and meets timing" : "fits, misses timing"));
    }
    std::printf("\n");
  }
  return 0;
}
