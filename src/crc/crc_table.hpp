// Table-driven byte-at-a-time CRC: the conventional software implementation,
// used as the fast path by the protocol-layer code (src/hdlc, src/ppp) and as
// an independent cross-check of the bitwise reference.
#pragma once

#include <array>

#include "common/types.hpp"
#include "crc/crc_reference.hpp"
#include "crc/crc_spec.hpp"

namespace p5::crc {

class TableCrc {
 public:
  explicit constexpr TableCrc(const CrcSpec& spec) : spec_(spec) {
    for (u32 b = 0; b < 256; ++b) table_[b] = bitwise_step(spec, 0, static_cast<u8>(b));
  }

  [[nodiscard]] const CrcSpec& spec() const { return spec_; }

  [[nodiscard]] u32 update(u32 state, BytesView data) const {
    for (const u8 b : data)
      state = (state >> 8) ^ table_[(state ^ b) & 0xFFu];
    return state & spec_.mask();
  }

  [[nodiscard]] u32 crc(BytesView data) const { return update(spec_.init, data) ^ spec_.xorout; }

  [[nodiscard]] bool check(BytesView data_with_fcs) const {
    return update(spec_.init, data_with_fcs) == spec_.residue;
  }

 private:
  CrcSpec spec_;
  std::array<u32, 256> table_{};
};

/// Process-wide instances for the two PPP checks.
[[nodiscard]] const TableCrc& fcs16();
[[nodiscard]] const TableCrc& fcs32();

}  // namespace p5::crc
