// TunnelServer — the C10K termination point for P5-framed SONET streams.
//
// N shards (shard.hpp), each with its own EventLoop and its own slice of the
// accepted connections; connections arrive either through shared listeners
// on shard 0 with round-robin accept fan-out over the adoption rings, or —
// with `reuseport` — through per-shard SO_REUSEPORT listeners the kernel
// spreads accepts across. Every bound session terminates a fast-tier
// SonetEndpoint (the tier is a default-selection point: P5_DEVICE_TIER
// applies), and decoded datagrams are routed per RouteMode:
//
//   kEcho   — back down the same tunnel (client round-trip verification);
//   kSink   — counted and dropped (goodput measurement);
//   kUplink — cross-shard SpscRing handoff into the shared Uplink, where a
//             deficit-round-robin scheduler arbitrates tenants fairly.
//
// Tenancy: a listener may pin a tenant (port-based), or the first chunk is a
// hello naming one (hello.hpp). Admission = server-wide session cap, then
// the tenant's max_sessions, then the per-tenant byte-rate policer on every
// inbound chunk. Rejected connections are closed before any endpoint is
// allocated and the refusal is booked against the tenant.
//
// Ledgers, preserved across shard handoff (DESIGN.md §13):
//   * transport chunks: per-shard TransportTelemetry, frames_in ==
//     frames_out + frames_lost (+ queued), summed over shards;
//   * tenant datagrams: dgrams_in == echoed + uplinked + sunk + lost
//     (+ staged in the uplink), exact at quiescence — stop() flushes staged
//     residue into the lost column so a stopped server's books balance.
//
// Driving, mirroring LineCard: threaded (run()/stop(), one thread per
// shard) or deterministic (enable_manual_time() + step() from one thread —
// byte-reproducible regardless of shard count).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "p5/endpoint.hpp"
#include "server/hello.hpp"
#include "server/shard.hpp"
#include "server/tenant.hpp"

namespace p5::server {

struct ListenerSpec {
  u16 port = 0;               ///< 0 = kernel picks; read TunnelServer::port()
  std::optional<u32> tenant;  ///< pin every accept to this tenant; nullopt = hello
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::vector<ListenerSpec> listeners = {{}};
  std::size_t shards = 1;
  bool reuseport = false;  ///< per-shard listeners instead of accept fan-out

  RouteMode route = RouteMode::kEcho;
  core::DeviceTier tier = core::DeviceTier::kFast;  ///< resolved in the ctor
  core::P5Config device;
  sonet::StsSpec sts = sonet::kSts3c;

  transport::ConnConfig conn;
  std::size_t frames_per_pump = 8;
  int listen_backlog = 256;

  std::size_t max_sessions_total = 0;  ///< server-wide cap; 0 = unlimited
  TenantConfig tenant_defaults;        ///< limits for tenants never configure()d

  std::size_t adoption_ring = 256;   ///< per-shard pending-connection slots
  std::size_t uplink_ring = 1024;    ///< per-shard handoff slots
  std::size_t uplink_stage_frames = 256;  ///< per-tenant DRR staging bound
  std::size_t uplink_budget_bytes = 0;    ///< DRR bytes per step; 0 = unlimited
  u32 drr_quantum_bytes = 4096;      ///< default tenant quantum

  /// Post-delivery observation hook, invoked from shard threads for every
  /// decoded datagram before routing (thread-safe callee required — see
  /// SessionEnv::delivered_tap). Drives `--pcap-out` in p5_tunnel_server.
  std::function<void(u32 tenant, u16 protocol, BytesView payload)> delivered_tap;
};

/// Shared-uplink egress: single consumer of every shard's handoff ring,
/// deficit-round-robin across tenants. step() runs on shard 0's context
/// (its on_slice hook), so threaded and deterministic modes share one
/// consumer discipline.
class Uplink {
 public:
  struct Config {
    std::size_t stage_frames = 256;
    std::size_t budget_bytes = 0;
    u32 quantum_bytes = 4096;
    std::size_t intake_per_ring = 128;
  };
  using Sink = std::function<void(u32 tenant, u16 protocol, BytesView payload)>;

  Uplink(Config cfg, TenantRegistry& tenants) : cfg_(cfg), tenants_(tenants) {}

  void attach(Shard& shard) { rings_.push_back(&shard.uplink_ring()); }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// One intake + DRR pass. Uplink-consumer context only.
  std::size_t step();

  /// Shutdown bookkeeping (quiescent rings only — after shard join): every
  /// staged or still-ringed datagram is counted lost so the tenant ledgers
  /// balance exactly.
  void flush_lost();

  [[nodiscard]] u64 emitted() const { return emitted_.load(std::memory_order_relaxed); }
  [[nodiscard]] u64 emitted_bytes() const {
    return emitted_bytes_.load(std::memory_order_relaxed);
  }
  /// Datagrams staged in DRR queues (not counting shard rings).
  [[nodiscard]] std::size_t staged() const { return staged_.load(std::memory_order_relaxed); }

 private:
  struct Queue {
    std::deque<UplinkItem> items;
    u64 deficit = 0;
  };
  void stage(UplinkItem&& item);

  Config cfg_;
  TenantRegistry& tenants_;
  std::vector<linecard::SpscRing<UplinkItem>*> rings_;
  Sink sink_;
  std::map<u32, Queue> queues_;
  std::deque<u32> active_;  ///< round-robin order of nonempty queues
  std::atomic<u64> emitted_{0};
  std::atomic<u64> emitted_bytes_{0};
  std::atomic<std::size_t> staged_{0};
};

class TunnelServer {
 public:
  explicit TunnelServer(ServerConfig cfg);
  ~TunnelServer();
  TunnelServer(const TunnelServer&) = delete;
  TunnelServer& operator=(const TunnelServer&) = delete;

  /// Pre-register a tenant with explicit limits (otherwise first contact
  /// creates it with cfg.tenant_defaults).
  void register_tenant(TenantConfig cfg) { tenants_.configure(cfg); }

  /// Bind all listeners. False when any bind fails (the failed spec's port
  /// is reported via last_error()). Call before run()/step().
  [[nodiscard]] bool start();

  // ---- threaded driving ----
  void run();   ///< one thread per shard
  void stop();  ///< stop + join + flush uplink residue (idempotent)

  // ---- deterministic driving (one thread, byte-reproducible) ----
  /// Freeze every shard clock; call before start().
  void enable_manual_time();
  void advance_time(u64 ms);
  /// One slice of every shard (accepts, sockets, sessions, uplink). Returns
  /// total work units so callers can settle to quiescence.
  std::size_t step();

  // ---- introspection ----
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Shard& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] u16 port(std::size_t listener_idx = 0) const;
  [[nodiscard]] std::size_t sessions_active() const;
  [[nodiscard]] u64 accepts() const { return accepts_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

  [[nodiscard]] transport::TransportSnapshot transport_stats() const;  ///< all shards
  [[nodiscard]] TenantSnapshot tenant_stats(u32 tenant_id);
  [[nodiscard]] TenantSnapshot tenant_aggregate() const { return tenants_.aggregate(); }
  [[nodiscard]] TenantRegistry& tenants() { return tenants_; }
  [[nodiscard]] Uplink& uplink() { return uplink_; }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

 private:
  struct Listener {
    transport::Fd fd;
    std::size_t spec_index = 0;
    std::size_t shard_index = 0;
  };

  SessionEnv make_env();
  bool bind_listener(const ListenerSpec& spec, std::size_t spec_index, std::size_t shard_index);
  void on_acceptable(std::size_t listener_index);
  void dispatch(PendingConn pc, std::size_t accept_shard);

  ServerConfig cfg_;
  TenantRegistry tenants_;
  Uplink uplink_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Listener> listeners_;
  std::string last_error_;

  std::atomic<u64> accepts_{0};
  std::atomic<std::size_t> global_active_{0};
  std::size_t rr_next_ = 0;  ///< accept fan-out cursor (accept context only)
  bool started_ = false;
  bool running_ = false;
  bool stopped_ = false;
};

}  // namespace p5::server
