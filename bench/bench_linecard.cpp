// bench_linecard — aggregate throughput of the multi-channel line-card
// runtime: N parallel P5<->SONET tributaries behind the MAPOS fabric, swept
// across channel counts {1,2,4,8} x {IMIX, flag-dense} workloads.
//
// Two throughput figures per configuration:
//
//  * modelled Gbps — the repo's standard figure (cf. bench_throughput):
//    payload bits delivered per cycle-model clock at 78.125 MHz, summed
//    across channels. Channels are architecturally independent, so this is
//    the card's aggregate capacity and scales with the channel count by
//    construction — the bench verifies per-channel efficiency does NOT
//    degrade as channels are added (the scaling_vs_1ch column).
//
//  * wall MB/s — how fast this host actually simulates the card. With the
//    threaded runtime this scales with physical cores; on a single-core
//    host it stays flat (the hw_threads field in the JSON records which).
//
// Results go to stdout and BENCH_linecard.json (same machine-readable shape
// as BENCH_softpath.json).
//
// --pcap appends trace-driven rows: the bundled deterministic TCP trace
// (net/capture/trace_gen) as the per-channel workload, so the sweep also
// covers real packet-size and header dynamics rather than synthetic mixes
// alone.
//
// Usage: bench_linecard [--smoke] [--deterministic] [--pcap] [--frames N] [--out <path>]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "linecard/linecard.hpp"
#include "net/capture/trace_gen.hpp"
#include "net/traffic.hpp"

namespace p5::bench {
namespace {

struct Row {
  std::string workload;
  unsigned channels = 0;
  std::size_t frames_per_channel = 0;
  u64 payload_bytes = 0;
  std::vector<double> per_channel_gbps;
  double aggregate_gbps = 0.0;
  double scaling_vs_1ch = 0.0;  // filled once the 1-channel row is known
  double wall_seconds = 0.0;
  double wall_mb_s = 0.0;
  u64 ring_full_stalls = 0;
  u64 fcs_errors = 0;
};

std::vector<Bytes> make_frames(const std::string& workload, std::size_t count, u64 seed) {
  std::vector<Bytes> frames;
  frames.reserve(count);
  if (workload == "imix") {
    net::ImixGenerator gen(seed);
    for (std::size_t i = 0; i < count; ++i) frames.push_back(gen.next_datagram());
  } else if (workload == "pcap") {
    // Trace-driven: the bundled deterministic TCP trace (real sequence/ack
    // dynamics, real header entropy) instead of a synthetic mix.
    net::capture::TraceGenConfig cfg;
    cfg.packets = count;
    cfg.seed = seed;
    for (auto& rec : net::capture::synthesize_tcp_trace(cfg).records)
      frames.push_back(std::move(rec.data));
  } else {  // flag-dense: every fourth octet is an escape candidate
    net::TrafficSpec spec;
    spec.pattern = net::PayloadPattern::kFlagDense;
    spec.escape_density = 0.25;
    spec.seed = seed;
    net::TrafficGenerator gen(spec);
    for (std::size_t i = 0; i < count; ++i) frames.push_back(gen.next_datagram());
  }
  return frames;
}

Row run_config(const std::string& workload, unsigned channels, std::size_t frames_per_channel,
               bool deterministic) {
  Row row;
  row.workload = workload;
  row.channels = channels;
  row.frames_per_channel = frames_per_channel;

  linecard::LineCardConfig cfg;
  cfg.channels = channels;
  cfg.channel.p5.lanes = 4;  // the paper's 32-bit 2.5 Gbps datapath
  cfg.channel.ring_capacity = 64;
  linecard::LineCard lc(cfg);

  std::vector<std::vector<Bytes>> traffic(channels);
  for (unsigned c = 0; c < channels; ++c)
    traffic[c] = make_frames(workload, frames_per_channel, 1000 + 17ull * c);

  const u64 expected = static_cast<u64>(channels) * frames_per_channel;
  std::atomic<u64> received{0};
  lc.set_uplink_sink([&](unsigned, const net::MaposNode::Received&) {
    received.fetch_add(1, std::memory_order_relaxed);
  });

  const auto start = std::chrono::steady_clock::now();
  if (deterministic) {
    for (unsigned c = 0; c < channels; ++c)
      for (Bytes& p : traffic[c]) {
        linecard::FrameDesc d;
        d.payload = std::move(p);
        lc.inject_blocking(c, std::move(d));
      }
    (void)lc.run_until_idle(10'000'000);
  } else {
    lc.start();
    for (std::size_t f = 0; f < frames_per_channel; ++f)
      for (unsigned c = 0; c < channels; ++c) {
        linecard::FrameDesc d;
        d.payload = std::move(traffic[c][f]);
        lc.inject_blocking(c, std::move(d));
      }
    const auto deadline = start + std::chrono::seconds(300);
    while (received.load(std::memory_order_relaxed) < expected &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    lc.stop();
  }
  row.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (received.load(std::memory_order_relaxed) != expected)
    std::fprintf(stderr, "warning: %s x%u delivered %llu/%llu frames\n", workload.c_str(),
                 channels, static_cast<unsigned long long>(received.load()),
                 static_cast<unsigned long long>(expected));

  const double clock_hz = cfg.channel.p5.clock_mhz * 1e6;
  for (unsigned c = 0; c < channels; ++c) {
    const linecard::ChannelSnapshot s = lc.telemetry().snapshot(c);
    row.payload_bytes += s.bytes_out;
    row.ring_full_stalls += s.ring_full_stalls;
    row.fcs_errors += s.fcs_errors;
    const u64 cycles = lc.channel(c).link().a().cycle();
    const double gbps =
        cycles ? static_cast<double>(s.bytes_out) * 8.0 * clock_hz / static_cast<double>(cycles) / 1e9
               : 0.0;
    row.per_channel_gbps.push_back(gbps);
    row.aggregate_gbps += gbps;
  }
  row.wall_mb_s =
      row.wall_seconds > 0 ? static_cast<double>(row.payload_bytes) / row.wall_seconds / 1e6 : 0.0;
  return row;
}

void print_row(const Row& r) {
  double min_ch = 0.0, max_ch = 0.0;
  if (!r.per_channel_gbps.empty()) {
    min_ch = max_ch = r.per_channel_gbps[0];
    for (const double g : r.per_channel_gbps) {
      if (g < min_ch) min_ch = g;
      if (g > max_ch) max_ch = g;
    }
  }
  std::printf(
      "  %-10s %2u ch  %4zu fr/ch  agg %7.4f Gbps  per-ch %.4f..%.4f  x%.2f vs 1ch  wall %6.2fs "
      "%7.2f MB/s  stalls %llu\n",
      r.workload.c_str(), r.channels, r.frames_per_channel, r.aggregate_gbps, min_ch, max_ch,
      r.scaling_vs_1ch, r.wall_seconds, r.wall_mb_s,
      static_cast<unsigned long long>(r.ring_full_stalls));
}

bool write_json(const std::vector<Row>& rows, const std::string& path, bool deterministic) {
  JsonReport report("linecard");
  report.header.set("unit", "Gbps")
      .set("clock_mhz", 78.125)
      .set("mode", deterministic ? "deterministic" : "threaded")
      .set("hw_threads", std::thread::hardware_concurrency());
  for (const Row& r : rows) {
    report.row()
        .set("workload", r.workload)
        .set("channels", r.channels)
        .set("frames_per_channel", r.frames_per_channel)
        .set("payload_bytes", r.payload_bytes)
        .set("aggregate_gbps", r.aggregate_gbps)
        .set("scaling_vs_1ch", r.scaling_vs_1ch)
        .set_raw("per_channel_gbps", json_array(r.per_channel_gbps))
        .set("wall_seconds", r.wall_seconds)
        .set("wall_mb_s", r.wall_mb_s)
        .set("ring_full_stalls", r.ring_full_stalls)
        .set("fcs_errors", r.fcs_errors);
  }
  return report.write(path);
}

}  // namespace

int run(int argc, char** argv) {
  bool smoke = false, deterministic = false, pcap = false;
  std::size_t frames = 48;
  std::string out_path = "BENCH_linecard.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--deterministic") == 0) deterministic = true;
    if (std::strcmp(argv[i], "--pcap") == 0) pcap = true;
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc)
      frames = static_cast<std::size_t>(std::atol(argv[++i]));
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  if (smoke) frames = 4;

  banner("bench_linecard — N parallel P5<->SONET tributaries behind a MAPOS fabric",
         "channelised line-card scaling of the paper's single 2.5 Gbps P5 link");
  std::printf("mode: %s, %zu frames/channel, host hw_threads=%u\n\n",
              deterministic ? "deterministic step()" : "threaded", frames,
              std::thread::hardware_concurrency());

  std::vector<Row> rows;
  std::vector<std::string> workloads{"imix", "flagdense"};
  if (pcap) workloads.push_back("pcap");
  for (const std::string& workload : workloads) {
    double base = 0.0;
    for (const unsigned channels : {1u, 2u, 4u, 8u}) {
      Row r = run_config(workload, channels, frames, deterministic);
      if (channels == 1) base = r.aggregate_gbps;
      r.scaling_vs_1ch = base > 0 ? r.aggregate_gbps / base : 0.0;
      print_row(r);
      rows.push_back(std::move(r));
    }
    std::printf("\n");
  }

  if (!write_json(rows, out_path, deterministic)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)%s\n", out_path.c_str(), rows.size(),
              smoke ? " [smoke mode: timings are not meaningful]" : "");

  for (const Row& r : rows)
    if (r.workload == "imix" && r.channels == 4)
      we_measure("IMIX aggregate at 4 channels: " + std::to_string(r.aggregate_gbps) +
                 " Gbps modelled, " + std::to_string(r.scaling_vs_1ch) + "x the 1-channel card");
  return 0;
}

}  // namespace p5::bench

int main(int argc, char** argv) { return p5::bench::run(argc, argv); }
