#include "p5/crc_unit.hpp"

#include "common/check.hpp"

namespace p5::core {

namespace {
/// Emit up to `lanes` octets from staging into `out`, handling SOF/EOF tags.
/// Returns true if the flush completed (staging emptied while flushing).
template <typename Deque>
bool emit_from_staging(rtl::Fifo<rtl::Word>& out, Deque& staging, unsigned lanes, bool& sof_flag,
                       bool flushing, bool abort_flag, u64* frames) {
  const bool want_full = staging.size() >= lanes;
  const bool want_drain = flushing;
  if (!(want_full || want_drain) || !out.can_push()) return false;
  rtl::Word w;
  const std::size_t n = std::min<std::size_t>(lanes, staging.size());
  for (std::size_t i = 0; i < n; ++i) {
    w.push(staging.front());
    staging.pop_front();
  }
  w.sof = sof_flag;
  sof_flag = false;
  bool completed = false;
  if (flushing && staging.empty()) {
    w.eof = true;
    w.abort = abort_flag;
    completed = true;
    if (frames) ++*frames;
  }
  out.push(w);
  return completed;
}
}  // namespace

// ---------------- TxCrcUnit ----------------

TxCrcUnit::TxCrcUnit(std::string name, const P5Config& cfg, rtl::Fifo<rtl::Word>& in,
                     rtl::Fifo<rtl::Word>& out)
    : rtl::Module(std::move(name)),
      lanes_(cfg.lanes),
      fcs_bytes_(cfg.fcs_bytes()),
      core_(cfg.crc_spec(), cfg.lanes * 8),
      in_(in),
      out_(out),
      state_(cfg.crc_spec().init),
      state_next_(cfg.crc_spec().init) {}

void TxCrcUnit::eval() {
  state_next_ = state_;
  staging_next_ = staging_;
  staging_sof_next_ = staging_sof_;
  flushing_next_ = flushing_;

  const bool completed = emit_from_staging(out_, staging_next_, lanes_, staging_sof_next_,
                                           flushing_ && !staging_.empty() ? true : flushing_,
                                           false, &frames_);
  if (completed) flushing_next_ = false;

  // Accept one content word per cycle while staging has headroom and we are
  // not draining a sealed frame.
  if (!flushing_next_ && staging_next_.size() <= lanes_ && in_.can_pop()) {
    const rtl::Word w = in_.pop();
    if (w.sof) {
      state_next_ = core_.spec().init;
      if (staging_next_.empty()) staging_sof_next_ = true;
    }
    Bytes block;
    block.reserve(w.count());
    for (std::size_t i = 0; i < w.count(); ++i) block.push_back(w.lane(i));
    state_next_ = core_.update(state_next_, block);
    for (const u8 octet : block) staging_next_.push_back(octet);

    if (w.eof) {
      // Seal: append the complemented FCS, least-significant octet first.
      const u32 fcs = state_next_ ^ core_.spec().xorout;
      for (std::size_t i = 0; i < fcs_bytes_; ++i)
        staging_next_.push_back(static_cast<u8>(fcs >> (8 * i)));
      flushing_next_ = true;
    }
  }
}

void TxCrcUnit::commit() {
  state_ = state_next_;
  staging_ = std::move(staging_next_);
  staging_sof_ = staging_sof_next_;
  flushing_ = flushing_next_;
}

// ---------------- RxCrcChecker ----------------

RxCrcChecker::RxCrcChecker(std::string name, const P5Config& cfg, rtl::Fifo<rtl::Word>& in,
                           rtl::Fifo<rtl::Word>& out)
    : rtl::Module(std::move(name)),
      lanes_(cfg.lanes),
      fcs_bytes_(cfg.fcs_bytes()),
      core_(cfg.crc_spec(), cfg.lanes * 8),
      in_(in),
      out_(out),
      state_(cfg.crc_spec().init),
      state_next_(cfg.crc_spec().init) {}

void RxCrcChecker::eval() {
  state_next_ = state_;
  delay_next_ = delay_;
  staging_next_ = staging_;
  staging_sof_next_ = staging_sof_;
  flushing_next_ = flushing_;
  abort_next_ = abort_flag_;
  frame_octets_next_ = frame_octets_;

  const bool completed = emit_from_staging(out_, staging_next_, lanes_, staging_sof_next_,
                                           flushing_, abort_flag_, nullptr);
  if (completed) {
    flushing_next_ = false;
    abort_next_ = false;
  }

  if (!flushing_next_ && staging_next_.size() <= lanes_ && in_.can_pop()) {
    const rtl::Word w = in_.pop();
    if (w.sof) {
      state_next_ = core_.spec().init;
      delay_next_.clear();
      frame_octets_next_ = 0;
      if (staging_next_.empty()) staging_sof_next_ = true;
    }
    for (std::size_t i = 0; i < w.count(); ++i) {
      const u8 octet = w.lane(i);
      state_next_ = crc::bitwise_step(core_.spec(), state_next_, octet);
      delay_next_.push_back(octet);
      ++frame_octets_next_;
      if (delay_next_.size() > fcs_bytes_) {
        staging_next_.push_back(delay_next_.front());
        delay_next_.pop_front();
      }
    }
    if (w.eof) {
      const bool ok = !w.abort && frame_octets_next_ > fcs_bytes_ &&
                      state_next_ == core_.spec().residue;
      if (ok) {
        ++good_;
      } else {
        ++bad_;
        if (error_hook_) error_hook_();
      }
      abort_next_ = !ok;
      flushing_next_ = true;
      delay_next_.clear();  // the FCS octets are consumed, not forwarded
    }
  }
}

void RxCrcChecker::commit() {
  state_ = state_next_;
  delay_ = std::move(delay_next_);
  staging_ = std::move(staging_next_);
  staging_sof_ = staging_sof_next_;
  flushing_ = flushing_next_;
  abort_flag_ = abort_next_;
  frame_octets_ = frame_octets_next_;
}

}  // namespace p5::core
