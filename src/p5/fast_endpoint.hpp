// FastP5Endpoint — the production-tier software datapath (DeviceTier::kFast).
//
// The full PPP-over-SONET path as whole-frame batch operations with zero
// per-cycle stepping, built from the kernels the earlier PRs proved out:
//
//   TX: SharedMemory ring -> hdlc::encode_batch_into (fused slicing-by-8
//       FCS + SIMD escape engine, one worst-case reservation per batch)
//       -> inter-frame flag fill -> x^43+1 self-sync payload scrambler
//       -> sonet::SonetFramer (pointer generation, B1/B2/B3, table-driven
//       frame-synchronous scrambler)
//   RX: sonet::SonetDeframer (alignment recovery, pointer interpretation,
//       BIP checks) -> self-sync descrambler -> hdlc::Delineator (bulk
//       flag scan) -> SIMD destuff -> slicing-by-8 FCS residue check
//       -> header parse / MAPOS address filter -> SharedMemory ring.
//
// It produces and consumes the same SONET chunk byte stream as the
// cycle-accurate P5SonetEndpoint: the SONET layer is literally the same
// SonetFramer/SonetDeframer code, and the PPP layer is the batch encoder
// whose wire images the DiffOracle proves byte-identical to the cycle
// pipeline's. The only freedom the tiers have is *inter-frame flag-fill
// placement* (in the cycle model that encodes pipeline restart latency), so
// equivalence is stated canonically — identical delineated stuffed-frame
// sequences, identical deliveries, identical loss ledgers — and enforced by
// the DiffOracle tier leg, including under FaultSpec corruption.
//
// Receiver dispositions replicate the cycle chain exactly (DESIGN.md §12):
// delineator aborts/runts and FCS/length failures -> frames_bad; then
// content < 4 octets -> malformed; then the MAPOS address filter; then
// payload > MRU -> oversize; deliveries transit shared memory so pool
// exhaustion drops (rx_dropped) are accounted identically.
#pragma once

#include <vector>

#include "hdlc/delineation.hpp"
#include "hdlc/frame.hpp"
#include "p5/endpoint.hpp"
#include "p5/shared_memory.hpp"
#include "sonet/scrambler.hpp"
#include "sonet/spe.hpp"

namespace p5::core {

class FastP5Endpoint final : public SonetEndpoint {
 public:
  FastP5Endpoint(const P5Config& cfg, sonet::StsSpec sts);
  FastP5Endpoint(const FastP5Endpoint&) = delete;
  FastP5Endpoint& operator=(const FastP5Endpoint&) = delete;

  [[nodiscard]] DeviceTier tier() const override { return DeviceTier::kFast; }

  bool submit_datagram(u16 protocol, Bytes payload) override;
  bool submit_frame(TxRequest req) override { return memory_.post_tx(std::move(req)); }
  [[nodiscard]] bool tx_has_room(std::size_t payload_bytes) const override {
    return memory_.tx_has_room(payload_bytes);
  }
  [[nodiscard]] std::optional<RxDelivery> reap_datagram() override { return memory_.reap_rx(); }
  void set_rx_sink(std::function<void(RxDelivery)> sink) override {
    sink_ = std::move(sink);
  }

  [[nodiscard]] Bytes pull_frame() override;
  void push_line(BytesView octets) override;

  [[nodiscard]] bool tx_pending() const override {
    return memory_.tx_pending() > 0 || (tx_wire_is_data_ && tx_head_ < tx_wire_.size());
  }
  [[nodiscard]] std::size_t tx_queue_depth() const override { return memory_.tx_pending(); }
  [[nodiscard]] u64 frames_pulled() const override;
  [[nodiscard]] bool rx_in_sync() const override;
  [[nodiscard]] const sonet::DeframerStats& rx_stats() const override;
  [[nodiscard]] const sonet::StsSpec& sts() const override { return sts_; }
  [[nodiscard]] RxCounters rx_counters() const override;
  [[nodiscard]] u64 rx_overflow_drops() const override {
    return memory_.stats().rx_dropped;
  }

  /// The shared packet memory (same admission/overflow accounting the cycle
  /// device exposes through P5::memory()).
  [[nodiscard]] SharedMemory& memory() { return memory_; }
  [[nodiscard]] const hdlc::DelineatorStats& delineator_stats() const {
    return delineator_.stats();
  }

 private:
  /// Return exactly n octets of the continuous PPP TX stream (encoded
  /// frames back to back, flag fill when idle), scrambled x^43+1.
  Bytes tx_take(std::size_t n);
  /// Re-point tx_wire_ at fresh stream content: a batch encode of every
  /// queued datagram, or flag fill when the queue is idle.
  void tx_refill();
  /// Delineator sink: one stuffed frame body (flags stripped).
  void on_stuffed_frame(BytesView stuffed);

  P5Config cfg_;
  sonet::StsSpec sts_;
  hdlc::FrameConfig tx_fcfg_;  ///< header/FCS/ACCM from cfg_, MRU unenforced on TX

  SharedMemory memory_;
  std::function<void(RxDelivery)> sink_;

  // --- TX ---
  std::unique_ptr<sonet::SonetFramer> framer_;
  sonet::SelfSyncScrambler43 scr_tx_;
  hdlc::FrameArena tx_arena_;
  std::vector<TxRequest> batch_reqs_;       ///< payload storage for the batch views
  std::vector<hdlc::BatchFrame> batch_;
  Bytes idle_fill_;                         ///< one SPE of flag fill
  BytesView tx_wire_;                       ///< current stream source (arena or fill)
  bool tx_wire_is_data_ = false;            ///< tx_wire_ holds frames, not idle fill
  std::size_t tx_head_ = 0;                 ///< consumed prefix of tx_wire_
  Bytes tx_chunk_;                          ///< scratch for tx_take

  // --- RX ---
  std::unique_ptr<sonet::SonetDeframer> deframer_;
  sonet::SelfSyncScrambler43 scr_rx_;
  Bytes rx_scratch_;                        ///< descrambled SPE payload
  hdlc::Delineator delineator_;
  fastpath::EscapeEngine rx_engine_;
  Bytes destuffed_;                         ///< scratch for one destuffed frame
  RxCounters rx_counters_;                  ///< malformed/filter/oversize/ok classes
  u64 rx_crc_bad_ = 0;                      ///< FCS/length failures (-> frames_bad)
};

}  // namespace p5::core
