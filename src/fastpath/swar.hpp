// SWAR (SIMD-within-a-register) byte-scan primitives.
//
// The paper's P5 reaches 2.5 Gbps by widening the datapath to 32 bits and
// classifying four octets per clock. The host-side software stack mirrors the
// same width-scaling idea: these helpers classify eight octets per iteration
// with the classic zero-byte-detect bitmask, so the protocol reference paths
// (stuffing, CRC, framing) stop being the bottleneck of the cycle model.
//
// All predicates are endian-neutral: they only ask "does any byte in this
// word match", never "which bit position", so the same code is correct on
// little- and big-endian hosts. Locating the exact octet is done by a scalar
// re-scan of the (at most eight) flagged bytes.
#pragma once

#include <cstring>

#include "common/types.hpp"
#include "hdlc/accm.hpp"

namespace p5::fastpath {

inline constexpr u64 kSwarOnes = 0x0101010101010101ull;
inline constexpr u64 kSwarHighs = 0x8080808080808080ull;

/// Unaligned 8-byte load (compiles to a single mov on x86/ARM).
[[nodiscard]] inline u64 load_word(const u8* p) {
  u64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

[[nodiscard]] constexpr u64 broadcast(u8 b) { return kSwarOnes * b; }

/// Non-zero iff any byte of v is 0x00 (Mycroft's zero-byte detector).
[[nodiscard]] constexpr u64 zero_bytes(u64 v) { return (v - kSwarOnes) & ~v & kSwarHighs; }

/// Non-zero iff any byte of v equals b.
[[nodiscard]] constexpr u64 eq_bytes(u64 v, u8 b) { return zero_bytes(v ^ broadcast(b)); }

/// Non-zero iff any byte of v is < bound (valid for bound <= 0x80).
[[nodiscard]] constexpr u64 lt_bytes(u64 v, u8 bound) {
  return (v - broadcast(bound)) & ~v & kSwarHighs;
}

/// Index of the first octet in [i, n) that must be escaped per RFC 1662
/// (flag, escape, or ACCM-selected control character); n if the rest of the
/// buffer is escape-free. Clean 8-byte words are skipped with three SWAR
/// predicates; only words containing a candidate fall back to the exact
/// per-octet Accm check.
[[nodiscard]] inline std::size_t find_next_escape(const u8* p, std::size_t i, std::size_t n,
                                                  const hdlc::Accm& accm) {
  const bool controls = accm.map() != 0;
  while (i < n) {
    while (i + 8 <= n) {
      const u64 v = load_word(p + i);
      u64 m = eq_bytes(v, hdlc::kEscape) | eq_bytes(v, hdlc::kFlag);
      if (controls) m |= lt_bytes(v, 0x20);
      if (m != 0) break;
      i += 8;
    }
    // Either a flagged word (<= 8 candidate octets) or the unaligned tail:
    // resolve exactly, then resume the word loop if none were real escapes
    // (a control octet outside the programmed ACCM map is a false candidate).
    const std::size_t stop = i + 8 < n ? i + 8 : n;
    for (; i < stop; ++i)
      if (accm.must_escape(p[i])) return i;
  }
  return n;
}

/// Index of the first occurrence of `b` in [i, n); n if absent.
[[nodiscard]] inline std::size_t find_byte(const u8* p, std::size_t i, std::size_t n, u8 b) {
  if (i >= n) return n;
  const void* hit = std::memchr(p + i, b, n - i);
  return hit != nullptr ? static_cast<std::size_t>(static_cast<const u8*>(hit) - p) : n;
}

}  // namespace p5::fastpath
