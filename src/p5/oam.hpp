// Protocol OAM block (paper Figure 2): the programmable bridge between an
// external microprocessor and the Transmitter/Receiver datapaths.
//
// "The exchange of status information between a uP (host computer) is
// carried out via interrupts and a status/control register map" — this
// module implements that register map: configuration registers that
// reprogram the datapath (MAPOS address, control octet, FCS selection),
// read-only status/counter registers fed by the pipeline blocks, and an
// interrupt controller with per-source pending (write-one-to-clear) and
// mask bits.
#pragma once

#include <array>
#include <functional>
#include <string>

#include "common/types.hpp"
#include "p5/config.hpp"

namespace p5::core {

/// Register addresses (word-indexed).
enum class OamReg : u32 {
  kId = 0,          ///< RO: device id/version
  kConfig = 1,      ///< RW: [7:0] address, [15:8] control, [16] fcs32
  kIntPending = 2,  ///< R/W1C
  kIntMask = 3,     ///< RW
  kTxFrames = 4,    ///< RO
  kTxOctets = 5,    ///< RO
  kRxFramesOk = 6,  ///< RO
  kRxFcsErrors = 7, ///< RO
  kRxAddrDrops = 8, ///< RO
  kRxAborts = 9,    ///< RO
  kTxEscapes = 10,  ///< RO: escape octets inserted
  kRxEscapes = 11,  ///< RO: escape octets removed
  kMaxPayload = 12, ///< RW: MRU
  kAccm = 13,       ///< RW: async-control-character map (RFC 1662 §7.1)
};

/// Interrupt sources (bit positions in kIntPending / kIntMask).
enum class OamIrq : u32 {
  kRxFrame = 0,
  kRxError = 1,
  kTxDone = 2,
  kRxAddrDrop = 3,
};

inline constexpr u32 kOamDeviceId = 0x50350001;  // "P5", v1

class Oam {
 public:
  /// `reconfigure` is invoked when the host rewrites a configuration
  /// register — the hook through which the uP reprograms the datapath.
  explicit Oam(P5Config cfg) : cfg_(cfg) {}

  void set_reconfigure_hook(std::function<void(const P5Config&)> hook) {
    reconfigure_ = std::move(hook);
  }
  /// Counter providers, wired by the P5 top level.
  void set_counter_source(OamReg reg, std::function<u64()> getter);

  // ---- host (microprocessor) interface ----
  [[nodiscard]] u32 read(u32 reg_index) const;
  void write(u32 reg_index, u32 value);

  // ---- datapath interface ----
  void raise(OamIrq irq) { pending_ |= (u32{1} << static_cast<u32>(irq)); }
  [[nodiscard]] bool irq_line() const { return (pending_ & mask_) != 0; }

  [[nodiscard]] const P5Config& config() const { return cfg_; }

 private:
  P5Config cfg_;
  std::function<void(const P5Config&)> reconfigure_;
  std::array<std::function<u64()>, 16> counters_{};
  u32 pending_ = 0;
  u32 mask_ = 0;
};

}  // namespace p5::core
