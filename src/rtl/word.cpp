#include "rtl/word.hpp"

#include "common/hexdump.hpp"

namespace p5::rtl {

std::string Word::to_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < count_; ++i) {
    if (i) s.push_back(' ');
    const char* hex = "0123456789abcdef";
    s.push_back(hex[lanes_[i] >> 4]);
    s.push_back(hex[lanes_[i] & 0xF]);
  }
  s.push_back(']');
  if (sof) s += " SOF";
  if (eof) s += " EOF";
  if (abort) s += " ABORT";
  return s;
}

}  // namespace p5::rtl
