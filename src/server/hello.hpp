// Tenant hello codec: the first chunk a client sends on a multi-tenant
// listener names its tenant — magic "P5TS" plus a u32 BE tenant id, 8 octets
// total. A SONET chunk is always sts.frame_bytes() octets (2430 for STS-3c),
// so the hello is unambiguous on the wire; anything else first is a protocol
// error and the server closes the connection.
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "transport/tunnel.hpp"

namespace p5::server {

inline constexpr std::array<u8, 4> kHelloMagic{'P', '5', 'T', 'S'};
inline constexpr std::size_t kHelloBytes = 8;

[[nodiscard]] inline Bytes hello_chunk(u32 tenant_id) {
  Bytes b;
  b.reserve(kHelloBytes);
  b.insert(b.end(), kHelloMagic.begin(), kHelloMagic.end());
  put_be32(b, tenant_id);
  return b;
}

[[nodiscard]] inline std::optional<u32> parse_hello(BytesView chunk) {
  if (chunk.size() != kHelloBytes) return std::nullopt;
  for (std::size_t i = 0; i < kHelloMagic.size(); ++i) {
    if (chunk[i] != kHelloMagic[i]) return std::nullopt;
  }
  return get_be32(chunk, 4);
}

/// Client-side wrapper: emit the hello as the very first chunk, then defer
/// to the inner binding. For single-connection clients (fresh Tunnel per
/// connect) — the hello is not re-sent across a Tunnel's own reconnects, so
/// reconnecting fleets should use port-based tenancy instead.
[[nodiscard]] inline transport::TunnelBinding with_hello(transport::TunnelBinding inner,
                                                         u32 tenant_id) {
  auto sent = std::make_shared<bool>(false);
  transport::TunnelBinding b = inner;
  b.pull = [inner, sent, tenant_id]() -> Bytes {
    if (!*sent) {
      *sent = true;
      return hello_chunk(tenant_id);
    }
    return inner.pull ? inner.pull() : Bytes{};
  };
  b.ready = [inner, sent] {
    return !*sent || (inner.ready && inner.ready());
  };
  return b;
}

}  // namespace p5::server
