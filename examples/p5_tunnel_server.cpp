// p5_tunnel_server — the multi-tenant termination end for fleets of
// p5_tunnel clients.
//
// Where p5_tunnel runs ONE endpoint per process, this runs a sharded
// TunnelServer: N shard threads, each owning an event loop and a slice of
// the accepted connections, every connection terminating its own fast-tier
// P5 SONET endpoint. Point any number of `p5_tunnel --connect` senders at
// it:
//
//   ./p5_tunnel_server --listen 9500 --shards 4 --mode echo   # terminal 1
//   ./p5_tunnel --connect 127.0.0.1:9500 --frames 100000      # terminal 2..N
//
// Tenancy is per listener: `--listen 9500=42` books every connection on
// that port to tenant 42; a bare `--listen 9500` uses tenant 1; `--listen
// 9500=hello` expects each connection's first chunk to be a P5TS hello
// naming its tenant (see src/server/hello.hpp — p5_tunnel does not send
// one, so the hello form is for custom clients). Admission control:
// --max-per-tenant caps concurrent tunnels per tenant, --rate-cap polices
// per-tenant inbound bytes/s (excess chunks are dropped and counted, the
// connection stays up), --max-sessions caps the whole server.
//
// --mode picks the datagram route: echo (send each back down its tunnel —
// what p5_tunnel senders verify against), sink (count and drop), uplink
// (deficit-round-robin arbitration across tenants into one shared counted
// uplink — the line-card trunk picture).
//
// SIGINT stops the shards and prints the final books: per-tenant datagram
// ledgers and the summed per-shard chunk ledger, each with an exactness
// verdict. Exit status 0 iff every ledger closes exactly.
//
// --pcap-out PATH records every datagram the server decodes — all tenants,
// all shards — as one PPP-linktype pcap (records are ff 03 proto payload;
// the CaptureTap serialises its own writes, so shard concurrency is safe)
// and prints the tap's exact ledger with the final books.
//
// Usage:
//   p5_tunnel_server --listen PORT[=TENANT|=hello] [--listen ...]
//                    [--shards N] [--reuseport] [--tier cycle|fast]
//                    [--mode echo|sink|uplink] [--max-per-tenant N]
//                    [--rate-cap BYTES_PER_S] [--max-sessions N]
//                    [--stats-ms MS] [--pcap-out PATH]
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/capture/tap.hpp"
#include "server/server.hpp"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) { g_interrupted = 1; }

struct Options {
  std::vector<p5::server::ListenerSpec> listeners;
  std::size_t shards = 1;
  bool reuseport = false;
  p5::server::RouteMode mode = p5::server::RouteMode::kEcho;
  std::size_t max_per_tenant = 0;
  p5::u64 rate_cap = 0;
  std::size_t max_sessions = 0;
  p5::u64 stats_ms = 1000;
  std::string pcap_out;  // record every delivered datagram (all shards) here
  p5::core::DeviceTier tier =
      p5::core::resolve_device_tier(p5::core::DeviceTier::kFast);
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--listen") == 0) {
      const char* v = need("--listen");
      if (!v) return false;
      p5::server::ListenerSpec spec;
      spec.tenant = 1;  // bare port: one default tenant
      std::string s(v);
      const auto eq = s.find('=');
      if (eq != std::string::npos) {
        const std::string t = s.substr(eq + 1);
        s.resize(eq);
        if (t == "hello") {
          spec.tenant.reset();  // first chunk names the tenant
        } else {
          spec.tenant = static_cast<p5::u32>(std::atoll(t.c_str()));
        }
      }
      spec.port = static_cast<p5::u16>(std::atoi(s.c_str()));
      if (spec.port == 0) {
        std::fprintf(stderr, "error: bad --listen '%s'\n", v);
        return false;
      }
      opt.listeners.push_back(spec);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = need("--shards");
      if (!v) return false;
      opt.shards = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      const char* v = need("--mode");
      if (!v) return false;
      if (std::strcmp(v, "echo") == 0) {
        opt.mode = p5::server::RouteMode::kEcho;
      } else if (std::strcmp(v, "sink") == 0) {
        opt.mode = p5::server::RouteMode::kSink;
      } else if (std::strcmp(v, "uplink") == 0) {
        opt.mode = p5::server::RouteMode::kUplink;
      } else {
        std::fprintf(stderr, "error: --mode must be echo|sink|uplink, got '%s'\n", v);
        return false;
      }
    } else if (std::strcmp(argv[i], "--tier") == 0) {
      const char* v = need("--tier");
      if (!v) return false;
      if (std::strcmp(v, "cycle") == 0) {
        opt.tier = p5::core::DeviceTier::kCycle;
      } else if (std::strcmp(v, "fast") == 0) {
        opt.tier = p5::core::DeviceTier::kFast;
      } else {
        std::fprintf(stderr, "error: --tier must be 'cycle' or 'fast', got '%s'\n", v);
        return false;
      }
    } else if (std::strcmp(argv[i], "--max-per-tenant") == 0) {
      const char* v = need("--max-per-tenant");
      if (!v) return false;
      opt.max_per_tenant = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--rate-cap") == 0) {
      const char* v = need("--rate-cap");
      if (!v) return false;
      opt.rate_cap = static_cast<p5::u64>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--max-sessions") == 0) {
      const char* v = need("--max-sessions");
      if (!v) return false;
      opt.max_sessions = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--stats-ms") == 0) {
      const char* v = need("--stats-ms");
      if (!v) return false;
      opt.stats_ms = static_cast<p5::u64>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--pcap-out") == 0) {
      const char* v = need("--pcap-out");
      if (!v) return false;
      opt.pcap_out = v;
    } else if (std::strcmp(argv[i], "--reuseport") == 0) {
      opt.reuseport = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return false;
    }
  }
  if (opt.listeners.empty() || opt.shards == 0) {
    std::fprintf(stderr,
                 "usage: p5_tunnel_server --listen PORT[=TENANT|=hello] [--listen ...]\n"
                 "                        [--shards N] [--reuseport] [--tier cycle|fast]\n"
                 "                        [--mode echo|sink|uplink] [--max-per-tenant N]\n"
                 "                        [--rate-cap BYTES_PER_S] [--max-sessions N]\n"
                 "                        [--stats-ms MS] [--pcap-out PATH]\n");
    return false;
  }
  return true;
}

const char* mode_name(p5::server::RouteMode m) {
  switch (m) {
    case p5::server::RouteMode::kEcho: return "echo";
    case p5::server::RouteMode::kSink: return "sink";
    case p5::server::RouteMode::kUplink: return "uplink";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p5;
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  std::signal(SIGINT, on_sigint);

  server::ServerConfig cfg;
  cfg.listeners = opt.listeners;
  cfg.shards = opt.shards;
  cfg.reuseport = opt.reuseport;
  cfg.route = opt.mode;
  cfg.tier = opt.tier;
  cfg.max_sessions_total = opt.max_sessions;
  cfg.tenant_defaults.max_sessions = opt.max_per_tenant;
  cfg.tenant_defaults.rx_bytes_per_s = opt.rate_cap;

  // Server-wide delivered tap: sessions on every shard thread funnel into
  // one CaptureTap (internally mutexed), PPP linktype with wall-clock
  // timestamps so captures from concurrent tenants interleave honestly.
  net::capture::CaptureTap tap({.nsec = true, .linktype = net::capture::kLinkPpp});
  const bool recording = !opt.pcap_out.empty();
  if (recording) {
    if (!tap.open(opt.pcap_out)) {
      std::fprintf(stderr, "p5_tunnel_server: cannot create %s\n", opt.pcap_out.c_str());
      return 1;
    }
    tap.use_wall_clock();
    cfg.delivered_tap = [&tap](u32 /*tenant*/, u16 protocol, BytesView payload) {
      Bytes rec;
      rec.reserve(payload.size() + 4);
      rec.push_back(0xff);
      rec.push_back(0x03);
      rec.push_back(static_cast<u8>(protocol >> 8));
      rec.push_back(static_cast<u8>(protocol & 0xff));
      rec.insert(rec.end(), payload.begin(), payload.end());
      tap.record(rec);
    };
  }

  server::TunnelServer srv(cfg);
  if (!srv.start()) {
    std::fprintf(stderr, "p5_tunnel_server: %s\n", srv.last_error().c_str());
    return 1;
  }
  srv.run();

  std::printf("p5_tunnel_server: %zu shard%s (%s), mode %s, tier %s, %zu listener%s",
              opt.shards, opt.shards > 1 ? "s" : "", opt.reuseport ? "reuseport" : "fan-out",
              mode_name(opt.mode), core::to_string(srv.config().tier), opt.listeners.size(),
              opt.listeners.size() > 1 ? "s" : "");
  for (std::size_t i = 0; i < opt.listeners.size(); ++i) {
    std::printf("%s %u", i == 0 ? ":" : ",", srv.port(i));
  }
  if (recording) std::printf(", recording %s", opt.pcap_out.c_str());
  std::printf("\n");

  while (!g_interrupted) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.stats_ms > 0 ? opt.stats_ms : 1000));
    if (opt.stats_ms == 0) continue;
    const auto xs = srv.transport_stats();
    const auto agg = srv.tenant_aggregate();
    std::printf("[srv] sessions=%zu accepts=%llu | dgrams in=%llu echo=%llu up=%llu sunk=%llu"
                " lost=%llu policed=%llu | chunks in=%llu out=%llu lost=%llu rcvd=%llu\n",
                srv.sessions_active(), static_cast<unsigned long long>(srv.accepts()),
                static_cast<unsigned long long>(agg.dgrams_in),
                static_cast<unsigned long long>(agg.dgrams_echoed),
                static_cast<unsigned long long>(agg.dgrams_uplinked),
                static_cast<unsigned long long>(agg.dgrams_sunk),
                static_cast<unsigned long long>(agg.dgrams_lost),
                static_cast<unsigned long long>(agg.chunks_policed),
                static_cast<unsigned long long>(xs.frames_in),
                static_cast<unsigned long long>(xs.frames_out),
                static_cast<unsigned long long>(xs.frames_lost),
                static_cast<unsigned long long>(xs.frames_rcvd));
    std::printf("      io: %llu syscalls, %.1f chunks/syscall, pool recycled %llu\n",
                static_cast<unsigned long long>(xs.tx_syscalls + xs.rx_syscalls),
                xs.frames_per_syscall(), static_cast<unsigned long long>(xs.pool_recycled));
  }

  std::printf("\nSIGINT: stopping shards...\n");
  srv.stop();

  bool ok = true;
  std::printf("final:\n");
  for (const u32 id : srv.tenants().ids()) {
    const auto ts = srv.tenant_stats(id);
    const bool exact = ts.ledger_exact();
    ok = ok && exact;
    std::printf("[tenant %u] dgrams in=%llu echo=%llu up=%llu sunk=%llu lost=%llu"
                " | sessions adm=%llu rej=%llu | policed=%llu | ledger %s\n",
                id, static_cast<unsigned long long>(ts.dgrams_in),
                static_cast<unsigned long long>(ts.dgrams_echoed),
                static_cast<unsigned long long>(ts.dgrams_uplinked),
                static_cast<unsigned long long>(ts.dgrams_sunk),
                static_cast<unsigned long long>(ts.dgrams_lost),
                static_cast<unsigned long long>(ts.sessions_admitted),
                static_cast<unsigned long long>(ts.sessions_rejected),
                static_cast<unsigned long long>(ts.chunks_policed),
                exact ? "EXACT" : "VIOLATED");
  }
  const auto xs = srv.transport_stats();
  const bool chunk_ok = xs.frames_in == xs.frames_out + xs.frames_lost;
  ok = ok && chunk_ok;
  std::printf("[chunks] in=%llu out=%llu lost=%llu rcvd=%llu | ledger %s\n",
              static_cast<unsigned long long>(xs.frames_in),
              static_cast<unsigned long long>(xs.frames_out),
              static_cast<unsigned long long>(xs.frames_lost),
              static_cast<unsigned long long>(xs.frames_rcvd), chunk_ok ? "EXACT" : "VIOLATED");
  std::printf("[io] %llu syscalls, %.1f chunks/syscall, pool recycled %llu\n",
              static_cast<unsigned long long>(xs.tx_syscalls + xs.rx_syscalls),
              xs.frames_per_syscall(), static_cast<unsigned long long>(xs.pool_recycled));
  if (recording) {
    tap.close();
    const auto t = tap.stats();
    std::printf("pcap: %s — %llu records, %llu bytes, %llu drops at tap\n",
                opt.pcap_out.c_str(), static_cast<unsigned long long>(t.records),
                static_cast<unsigned long long>(t.bytes),
                static_cast<unsigned long long>(t.drops));
  }
  return ok ? 0 : 1;
}
