// Minimal IPv4 datagram synthesis/parse — the network-layer payloads the P5
// encapsulates ("the most efficient layer 2 protocol for encapsulating IP
// datagrams"). Header checksum is real so end-to-end integrity checks have
// two independent layers (IP checksum above, PPP FCS below).
#pragma once

#include <optional>

#include "common/types.hpp"

namespace p5::net {

struct Ipv4Header {
  u8 tos = 0;
  u16 total_length = 0;  ///< filled in by build()
  u16 identification = 0;
  u8 ttl = 64;
  u8 protocol = 17;  ///< UDP by default
  u32 src = 0;
  u32 dst = 0;
};

inline constexpr std::size_t kIpv4HeaderBytes = 20;

/// RFC 1071 ones-complement checksum over 16-bit words.
[[nodiscard]] u16 internet_checksum(BytesView data);

/// Serialise header + payload into one datagram (checksum computed).
[[nodiscard]] Bytes build_datagram(const Ipv4Header& hdr, BytesView payload);

struct ParsedDatagram {
  Ipv4Header header;
  Bytes payload;
};

/// Parse and validate (version, length, checksum). nullopt on any error.
[[nodiscard]] std::optional<ParsedDatagram> parse_datagram(BytesView data);

}  // namespace p5::net
