#include "server/session.hpp"

#include <utility>

#include "common/check.hpp"
#include "server/hello.hpp"

namespace p5::server {

Session::Session(SessionEnv env, std::unique_ptr<transport::Conn> conn,
                 std::optional<u32> fixed_tenant)
    : env_(std::move(env)), conn_(std::move(conn)) {
  P5_EXPECTS(env_.loop && env_.transport_tel && env_.tenants && env_.make_endpoint);
  P5_EXPECTS(conn_ != nullptr);
  conn_->set_on_frames([this](std::span<const BytesView> chunks) { on_chunks(chunks); });
  conn_->set_on_closed([this] { mark_dead(); });
  env_.transport_tel->on_connect(false);
  if (fixed_tenant) {
    if (bind_tenant(*fixed_tenant)) {
      ep_ = env_.make_endpoint();
    } else {
      conn_->close();  // fires on_closed -> mark_dead; shard sweeps us
    }
  } else {
    awaiting_hello_ = true;
  }
}

Session::~Session() { mark_dead(); }

bool Session::bind_tenant(u32 tenant_id) {
  TenantState& t = env_.tenants->ensure(tenant_id);
  if (env_.admit_global && !env_.admit_global()) {
    t.telemetry().on_rejected();  // server-wide cap, booked against the tenant
    return false;
  }
  global_slot_held_ = env_.admit_global != nullptr;
  if (!t.try_acquire_session()) {
    if (global_slot_held_ && env_.release_global) env_.release_global();
    global_slot_held_ = false;
    return false;
  }
  tenant_ = &t;
  return true;
}

void Session::on_chunks(std::span<const BytesView> chunks) {
  // Per-chunk decisions (hello, policer, push_line) happen in order exactly
  // as the frame-at-a-time path made them; the expensive device work —
  // drain_rx and the datagram reap — runs once for the whole burst.
  for (const BytesView& chunk : chunks) {
    if (!on_chunk(chunk)) return;
  }
  if (dead_ || tenant_ == nullptr || ep_ == nullptr) return;
  ep_->drain_rx();
  reap_and_route();
}

bool Session::on_chunk(BytesView chunk) {
  if (dead_) return false;
  if (awaiting_hello_) {
    const auto tenant_id = parse_hello(chunk);
    if (!tenant_id) {
      env_.transport_tel->proto_error();  // first chunk must name a tenant
      conn_->close();
      return false;
    }
    awaiting_hello_ = false;
    if (!bind_tenant(*tenant_id)) {
      conn_->close();
      return false;
    }
    ep_ = env_.make_endpoint();
    return true;  // the hello carries no line octets
  }
  if (tenant_ == nullptr || ep_ == nullptr) return true;  // closing; late chunk
  if (!tenant_->police_rx(chunk.size(), env_.loop->now_ms())) return true;  // shaped away
  ep_->push_line(chunk);
  return true;
}

void Session::reap_and_route() {
  TenantTelemetry& tel = tenant_->telemetry();
  while (auto d = ep_->reap_datagram()) {
    const std::size_t bytes = d->payload.size();
    tel.on_dgram_in(bytes);
    if (env_.delivered_tap) env_.delivered_tap(tenant_->id(), d->protocol, d->payload);
    switch (env_.route) {
      case RouteMode::kEcho:
        if (ep_->submit_datagram(d->protocol, std::move(d->payload))) {
          tel.on_echoed(bytes);
        } else {
          tel.add_dgrams_lost(1);  // echo refused: device TX pool full
        }
        break;
      case RouteMode::kSink:
        tel.on_sunk(bytes);
        break;
      case RouteMode::kUplink:
        // Counted uplinked only when the DRR scheduler actually emits it;
        // a full handoff ring is an accounted loss, never a silent one.
        if (!env_.uplink_offer ||
            !env_.uplink_offer(tenant_->id(), d->protocol, std::move(d->payload))) {
          tel.add_dgrams_lost(1);
        }
        break;
    }
  }
}

std::size_t Session::slice() {
  if (dead_ || ep_ == nullptr) return 0;
  std::size_t sent = 0;
  while (sent < env_.frames_per_pump) {
    if (!conn_->writable()) {
      // Watermark backpressure: frames stay in the device until the socket
      // drains, same coupling the Tunnel uses.
      if (ep_->tx_pending() || tx_linger_ > 0) env_.transport_tel->backpressure_stall();
      break;
    }
    Bytes frame;
    if (ep_->tx_pending()) {
      tx_linger_ = 2;  // flush trailing FCS/flag octets once TX goes idle
      frame = ep_->pull_frame();
    } else if (tx_linger_ > 0) {
      --tx_linger_;
      frame = ep_->pull_frame();
    } else {
      break;
    }
    if (!conn_->send_frame(frame)) break;  // write error closed us mid-slice
    ++sent;
  }
  if (conn_->open()) {
    conn_->flush();  // the whole slice rides one scatter-gather syscall
    env_.transport_tel->note_queue_depth(conn_->queued_bytes());
  }
  return sent;
}

void Session::mark_dead() {
  if (dead_) return;
  dead_ = true;
  env_.transport_tel->on_disconnect();
  if (tenant_ != nullptr) tenant_->release_session();
  if (global_slot_held_ && env_.release_global) env_.release_global();
  global_slot_held_ = false;
}

}  // namespace p5::server
