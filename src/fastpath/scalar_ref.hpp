// Seed-era scalar reference paths, preserved verbatim.
//
// These are the byte-at-a-time / bit-at-a-time implementations the protocol
// layer shipped with before the word-parallel fast path landed. They stay in
// the tree for two jobs:
//
//  * differential testing — every fast kernel must produce byte-identical
//    output (tests/test_fastpath.cpp);
//  * benchmarking — bench/bench_softpath.cpp reports old-vs-new throughput so
//    the speedup trajectory is tracked across PRs (BENCH_softpath.json).
//
// Do not "optimise" anything in this file; it is the baseline.
#pragma once

#include <array>
#include <utility>

#include "common/types.hpp"
#include "crc/crc_reference.hpp"
#include "crc/crc_spec.hpp"
#include "hdlc/accm.hpp"

namespace p5::fastpath::scalar {

/// The seed TableCrc: one 256-entry table, one octet per iteration.
class ByteTableCrc {
 public:
  explicit constexpr ByteTableCrc(const crc::CrcSpec& spec) : spec_(spec) {
    for (u32 b = 0; b < 256; ++b) table_[b] = crc::bitwise_step(spec, 0, static_cast<u8>(b));
  }

  [[nodiscard]] u32 update(u32 state, BytesView data) const {
    for (const u8 b : data) state = (state >> 8) ^ table_[(state ^ b) & 0xFFu];
    return state & spec_.mask();
  }

  [[nodiscard]] u32 crc(BytesView data) const { return update(spec_.init, data) ^ spec_.xorout; }

 private:
  crc::CrcSpec spec_;
  std::array<u32, 256> table_{};
};

/// Seed octet-at-a-time stuffer.
[[nodiscard]] Bytes stuff(BytesView data, const hdlc::Accm& accm = hdlc::Accm::sonet());

/// Seed octet-at-a-time destuffer; .second is false on a dangling escape.
[[nodiscard]] std::pair<Bytes, bool> destuff(BytesView data);

/// Seed bit-serial x^7+x^6+1 keystream generator (advances `state`).
[[nodiscard]] u8 frame_keystream_bitserial(u8& state);

/// Seed bit-serial x^43+1 scramble/descramble of one octet (advance `history`).
[[nodiscard]] u8 selfsync_scramble_bitserial(u64& history, u8 in);
[[nodiscard]] u8 selfsync_descramble_bitserial(u64& history, u8 in);

}  // namespace p5::fastpath::scalar
