#include "p5/sonet_link.hpp"

#include "common/check.hpp"

namespace p5::core {

P5SonetEndpoint::P5SonetEndpoint(const P5Config& cfg, sonet::StsSpec sts)
    : sts_(sts), dev_(std::make_unique<P5>(cfg)) {
  framer_ = std::make_unique<sonet::SonetFramer>(sts, [this](std::size_t n) {
    Bytes chunk = dev_->phy_pull_tx(n);
    scr_tx_.scramble_in_place(chunk);
    return chunk;
  });
  deframer_ = std::make_unique<sonet::SonetDeframer>(sts, [this](BytesView payload) {
    rx_scratch_.assign(payload.begin(), payload.end());
    scr_rx_.descramble_in_place(rx_scratch_);
    dev_->phy_push_rx(rx_scratch_);
  });
}

Bytes P5SonetEndpoint::pull_frame() { return framer_->next_frame(); }

void P5SonetEndpoint::push_line(BytesView octets) { deframer_->push(octets); }

bool P5SonetEndpoint::tx_pending() const { return dev_->tx_control().pending() > 0; }

P5SonetLink::P5SonetLink(const P5Config& cfg, sonet::StsSpec sts,
                         const sonet::LineConfig& line_cfg, DeviceTier tier)
    : P5SonetLink(cfg, cfg, sts, line_cfg, tier) {}

P5SonetLink::P5SonetLink(const P5Config& a_cfg, const P5Config& b_cfg, sonet::StsSpec sts,
                         const sonet::LineConfig& line_cfg, DeviceTier tier)
    : sts_(sts),
      tier_(tier),
      ep_a_(make_sonet_endpoint(tier, a_cfg, sts)),
      ep_b_(make_sonet_endpoint(tier, b_cfg, sts)),
      host_engine_(a_cfg.accm),
      line_ab_(line_cfg),
      line_ba_(sonet::LineConfig{line_cfg.bit_error_rate, line_cfg.burst_enter,
                                 line_cfg.burst_exit, line_cfg.burst_error_rate,
                                 line_cfg.seed + 1}) {}

P5& P5SonetLink::a() {
  P5_EXPECTS(tier_ == DeviceTier::kCycle);
  return static_cast<P5SonetEndpoint&>(*ep_a_).device();
}

P5& P5SonetLink::b() {
  P5_EXPECTS(tier_ == DeviceTier::kCycle);
  return static_cast<P5SonetEndpoint&>(*ep_b_).device();
}

void P5SonetLink::exchange_frames(std::size_t frames) {
  for (std::size_t i = 0; i < frames; ++i) {
    Bytes ab = line_ab_.transfer(ep_a_->pull_frame());
    if (tap_ab_) tap_ab_(ab);
    ep_b_->push_line(ab);
    Bytes ba = line_ba_.transfer(ep_b_->pull_frame());
    if (tap_ba_) tap_ba_(ba);
    ep_a_->push_line(ba);
  }
}

}  // namespace p5::core
