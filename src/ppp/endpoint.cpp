#include "ppp/endpoint.hpp"

#include "hdlc/stuffing.hpp"
#include "ppp/protocols.hpp"

namespace p5::ppp {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kDead: return "Dead";
    case Phase::kEstablish: return "Establish";
    case Phase::kAuth: return "Authenticate";
    case Phase::kNetwork: return "Network";
    case Phase::kTerminate: return "Terminate";
  }
  return "?";
}

PppEndpoint::PppEndpoint(std::string name, Config cfg, std::function<void(BytesView)> wire_tx)
    : name_(std::move(name)),
      wire_tx_(std::move(wire_tx)),
      delineator_([this](BytesView f) { on_frame(f); }) {
  init(std::move(cfg));
}

PppEndpoint::PppEndpoint(std::string name, Config cfg, PacketTx packet_tx)
    : name_(std::move(name)),
      packet_tx_(std::move(packet_tx)),
      delineator_([this](BytesView f) { on_frame(f); }) {
  init(std::move(cfg));
}

void PppEndpoint::init(Config cfg) {
  // RFC 1661 §6: LCP negotiation always runs over default framing — no
  // header compression, 16-bit FCS — so that the two ends can talk before
  // agreeing on anything.
  negotiating_frame_ = cfg.frame;
  negotiating_frame_.acfc = false;
  negotiating_frame_.pfc = false;
  negotiating_frame_.fcs = hdlc::FcsKind::kFcs16;
  frame_ = negotiating_frame_;

  // Distinct endpoints must have distinct magic numbers or every exchange
  // looks like a loopback; mix the endpoint identity into the seed while
  // keeping runs deterministic.
  cfg.lcp.magic_seed ^= std::hash<std::string>{}(name_);

  requested_lqr_period_ = cfg.lcp.request_lqr_period;
  auth_cfg_ = std::move(cfg.auth);

  lcp_ = std::make_unique<Lcp>(cfg.lcp,
                               [this](u16 proto, const Packet& p) { send_control(proto, p); },
                               cfg.fsm_timeouts);
  lcp_->set_up_hook([this](const LcpResult& r) { on_lcp_up(r); });
  lcp_->set_down_hook([this]() { on_lcp_down(); });
  ipcp_ = std::make_unique<Ipcp>(cfg.ipcp,
                                 [this](u16 proto, const Packet& p) { send_control(proto, p); },
                                 cfg.fsm_timeouts);
  ipcp_->set_up_hook([this](u32, u32) {
    // IPCP opened: instantiate the negotiated VJ engines, per direction.
    const VjNegotiation& vj = ipcp_->vj();
    vj_comp_ = vj.tx ? std::make_unique<vj::Compressor>(vj.tx_config) : nullptr;
    vj_decomp_ = vj.rx ? std::make_unique<vj::Decompressor>(vj.rx_config) : nullptr;
  });
}

void PppEndpoint::lower_up() {
  phase_ = Phase::kEstablish;
  lcp_->up();
}

void PppEndpoint::lower_down() {
  phase_ = Phase::kDead;
  ipcp_->down();
  lcp_->down();
  frame_ = negotiating_frame_;
}

void PppEndpoint::open() {
  lcp_->open();
  ipcp_->open();
}

void PppEndpoint::close() {
  ipcp_->close();
  lcp_->close();
}

void PppEndpoint::tick() {
  lcp_->tick();
  ipcp_->tick();
  if (lqm_) lqm_->tick();
  if (auth_server_) auth_server_->tick();
  if (auth_client_) auth_client_->tick();
  check_auth_progress();
}

void PppEndpoint::send_control(u16 protocol, const Packet& pkt) {
  send_frame(protocol, pkt.serialize());
}

void PppEndpoint::send_frame(u16 protocol, BytesView info) {
  ++stats_.frames_tx;
  if (packet_tx_) {
    // Packet mode: the device underneath owns framing and FCS.
    if (lqm_ && protocol != kProtoLqr) lqm_->count_tx(info.size() + 4);
    packet_tx_(protocol, info);
    return;
  }
  // LCP always travels in default framing; everything else uses the
  // currently negotiated configuration.
  const hdlc::FrameConfig& cfg = (protocol == kProtoLcp) ? negotiating_frame_ : frame_;
  // Zero-alloc fused encode: the arena's wire buffer is reused across frames.
  const BytesView wire = hdlc::encode_into(tx_arena_, cfg, protocol, info);
  if (lqm_ && protocol != kProtoLqr) lqm_->count_tx(wire.size());
  wire_tx_(wire);
}

bool PppEndpoint::send_ip(BytesView datagram) {
  if (phase_ != Phase::kNetwork || !ipcp_->is_opened()) {
    ++stats_.dropped_not_open;
    return false;
  }
  if (datagram.size() > frame_.max_payload) {
    ++stats_.dropped_not_open;
    return false;
  }
  ++stats_.datagrams_tx;
  if (vj_comp_) {
    const vj::Compressor::Result r = vj_comp_->compress(datagram);
    u16 protocol = kProtoIpv4;
    if (r.cls == vj::PacketClass::kCompressedTcp) protocol = kProtoVjComp;
    if (r.cls == vj::PacketClass::kUncompressedTcp) protocol = kProtoVjUncomp;
    send_frame(protocol, r.packet);
    return true;
  }
  send_frame(kProtoIpv4, datagram);
  return true;
}

void PppEndpoint::wire_rx(BytesView octets) { delineator_.push(octets); }

void PppEndpoint::deliver_packet(u16 protocol, BytesView info) {
  ++stats_.frames_rx;
  dispatch(protocol, info);
}

void PppEndpoint::on_frame(BytesView stuffed_content) {
  // Destuff into the endpoint-owned scratch through the endpoint's cached
  // escape engine: no per-frame allocation, no per-frame dispatch setup.
  rx_scratch_.clear();
  if (!rx_engine_.destuff_append(rx_scratch_, stuffed_content)) {
    ++stats_.fcs_errors;
    return;
  }

  // LCP frames may arrive in default framing even after negotiation; try the
  // active config first, then the default one.
  auto result = hdlc::parse(frame_, rx_scratch_);
  if (!result.ok() && !(frame_.fcs == negotiating_frame_.fcs && frame_.acfc == negotiating_frame_.acfc &&
                        frame_.pfc == negotiating_frame_.pfc)) {
    result = hdlc::parse(negotiating_frame_, rx_scratch_);
  }
  if (!result.ok()) {
    ++stats_.fcs_errors;
    if (lqm_) lqm_->count_rx_error();
    return;
  }
  ++stats_.frames_rx;
  dispatch(result.frame->protocol, result.frame->payload);
}

void PppEndpoint::dispatch(u16 protocol, BytesView info) {
  switch (protocol) {
    case kProtoLcp:
      lcp_->receive(info);
      break;
    case kProtoPap:
    case kProtoChap:
      deliver_auth(protocol, info);
      break;
    case kProtoIpcp:
      // NCP packets before the Network phase are silently discarded
      // (RFC 1661 §3.4) — this covers the Authentication phase too.
      if (phase_ == Phase::kNetwork) ipcp_->receive(info);
      break;
    case kProtoIpv4:
      if (phase_ == Phase::kNetwork && ipcp_->is_opened()) {
        ++stats_.datagrams_rx;
        if (lqm_) lqm_->count_rx_good(info.size());
        if (ip_sink_) ip_sink_(info);
      } else if (lqm_) {
        lqm_->count_rx_discard();
      }
      break;
    case kProtoVjComp:
    case kProtoVjUncomp: {
      if (phase_ != Phase::kNetwork || !ipcp_->is_opened() || !vj_decomp_) {
        ++stats_.vj_dropped;
        break;
      }
      const auto cls = protocol == kProtoVjComp ? vj::PacketClass::kCompressedTcp
                                                : vj::PacketClass::kUncompressedTcp;
      const auto datagram = vj_decomp_->decompress(cls, info);
      if (!datagram) {
        ++stats_.vj_dropped;
        break;
      }
      ++stats_.datagrams_rx;
      if (lqm_) lqm_->count_rx_good(datagram->size());
      if (ip_sink_) ip_sink_(*datagram);
      break;
    }
    case kProtoLqr:
      if (lqm_) lqm_->on_lqr(info);
      break;
    default: {
      // Protocol-Reject (RFC 1661 §5.7) — only while LCP is opened.
      ++stats_.unknown_protocols;
      if (lcp_->is_opened()) {
        Packet rej;
        rej.code = static_cast<u8>(Code::kProtocolReject);
        rej.identifier = 0x77;
        put_be16(rej.data, protocol);
        append(rej.data, info);
        send_control(kProtoLcp, rej);
      }
      break;
    }
  }
}

void PppEndpoint::deliver_auth(u16 protocol, BytesView info) {
  if (phase_ != Phase::kAuth && phase_ != Phase::kNetwork) return;
  const auto parsed = Packet::parse(info);
  if (!parsed) return;
  // Both directions can run the same protocol, so route by packet code, not
  // protocol number: requests/responses go to the authenticator, verdicts
  // and challenges to the authenticatee.
  const bool to_server = (protocol == kProtoPap && parsed->code == kPapAuthRequest) ||
                         (protocol == kProtoChap && parsed->code == kChapResponse);
  AuthMachine* m = to_server ? auth_server_.get() : auth_client_.get();
  if (!m || m->protocol() != protocol) return;
  m->receive(*parsed);
  check_auth_progress();
}

void PppEndpoint::on_lcp_up(const LcpResult& result) {
  // Bring up link-quality monitoring if either direction negotiated it:
  // emitting reports when the peer asked for them, measuring inbound loss
  // from the peer's reports when we asked.
  if (result.tx_lqr_period > 0 || requested_lqr_period_ > 0) {
    LqmConfig lc;
    lc.emit_reports = result.tx_lqr_period > 0;
    lc.reporting_ticks = std::max<u32>(1, result.tx_lqr_period);
    lqm_ = std::make_unique<LqmMonitor>(lc, lcp_->magic(), [this](BytesView w) {
      send_frame(kProtoLqr, w);
    });
  }
  // Program the "OAM registers": apply the negotiated framing.
  frame_ = negotiating_frame_;
  frame_.pfc = result.tx_pfc;
  frame_.acfc = result.tx_acfc;
  frame_.fcs = result.fcs32 ? hdlc::FcsKind::kFcs32 : hdlc::FcsKind::kFcs16;
  frame_.max_payload = result.peer_mru;

  // We demanded authentication but the peer refused the option outright:
  // unless configured as optional, that is a session failure (RFC 1661
  // §3.3: "the link SHOULD be terminated").
  if (lcp_->auth_refused_by_peer() && !auth_cfg_.auth_optional) {
    auth_result_ = AuthResult::kFailed;
    lcp_->close();
    return;
  }

  start_auth_phase(result);
}

void PppEndpoint::start_auth_phase(const LcpResult& result) {
  auth_server_.reset();
  auth_client_.reset();
  const auto tx = [this](u16 proto, const Packet& p) { send_control(proto, p); };

  if (result.auth_from_peer != AuthProto::kNone) {
    // Peer acked our demand: we are the authenticator.
    if (result.auth_from_peer == AuthProto::kChap) {
      // Challenge values stay deterministic per endpoint, distinct across them.
      const u64 seed = 0xC4A11E46ull ^ std::hash<std::string>{}(name_);
      auth_server_ = std::make_unique<ChapServer>(auth_cfg_.name, auth_cfg_.policy, tx,
                                                  auth_cfg_.timeouts, seed);
    } else {
      auth_server_ = std::make_unique<PapServer>(auth_cfg_.policy, tx);
    }
  }
  if (result.auth_to_peer != AuthProto::kNone) {
    // The peer demands we authenticate ourselves.
    if (result.auth_to_peer == AuthProto::kChap) {
      auth_client_ = std::make_unique<ChapClient>(auth_cfg_.identity, auth_cfg_.secret, tx);
    } else {
      auth_client_ = std::make_unique<PapClient>(auth_cfg_.identity, auth_cfg_.secret, tx,
                                                 auth_cfg_.timeouts);
    }
  }

  if (!auth_server_ && !auth_client_) {
    auth_result_ = AuthResult::kSuccess;
    enter_network_phase();
    return;
  }
  phase_ = Phase::kAuth;
  auth_result_ = AuthResult::kPending;
  if (auth_server_) auth_server_->start();
  if (auth_client_) auth_client_->start();
}

void PppEndpoint::check_auth_progress() {
  if (phase_ == Phase::kAuth) {
    const bool server_failed = auth_server_ && auth_server_->result() == AuthResult::kFailed;
    const bool client_failed = auth_client_ && auth_client_->result() == AuthResult::kFailed;
    if (server_failed || client_failed) {
      auth_result_ = AuthResult::kFailed;
      lcp_->close();
      return;
    }
    const bool server_done = !auth_server_ || auth_server_->result() == AuthResult::kSuccess;
    const bool client_done = !auth_client_ || auth_client_->result() == AuthResult::kSuccess;
    if (server_done && client_done) {
      auth_result_ = AuthResult::kSuccess;
      if (auth_server_) authenticated_peer_ = auth_server_->peer_identity();
      enter_network_phase();
    }
    return;
  }
  if (phase_ == Phase::kNetwork && auth_server_ &&
      auth_server_->result() == AuthResult::kFailed) {
    // A CHAP rechallenge of the live session failed: tear the link down.
    auth_result_ = AuthResult::kFailed;
    lcp_->close();
  }
}

void PppEndpoint::enter_network_phase() {
  phase_ = Phase::kNetwork;
  ipcp_->up();
}

void PppEndpoint::on_lcp_down() {
  if (phase_ == Phase::kNetwork || phase_ == Phase::kAuth) phase_ = Phase::kTerminate;
  lqm_.reset();
  auth_server_.reset();
  auth_client_.reset();
  vj_comp_.reset();
  vj_decomp_.reset();
  ipcp_->down();
  frame_ = negotiating_frame_;
}

}  // namespace p5::ppp
