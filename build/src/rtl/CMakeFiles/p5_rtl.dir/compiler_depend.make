# Empty compiler generated dependencies file for p5_rtl.
# This may be replaced when dependencies are built.
