file(REMOVE_RECURSE
  "CMakeFiles/test_p5_units.dir/test_p5_units.cpp.o"
  "CMakeFiles/test_p5_units.dir/test_p5_units.cpp.o.d"
  "test_p5_units"
  "test_p5_units.pdb"
  "test_p5_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p5_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
