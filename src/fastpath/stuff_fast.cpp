#include "fastpath/stuff_fast.hpp"

#include "fastpath/swar.hpp"

namespace p5::fastpath {

// All four kernels share one loop shape: skip clean 8-byte words with the
// SWAR predicates, bulk-copy the clean run, then process the (at most eight)
// octets of a flagged word — or the unaligned tail — with the exact scalar
// code. Dense-escape inputs therefore degrade to roughly the scalar loop
// (one word-load and one empty bulk-copy per eight octets of overhead)
// instead of paying a fresh scan per escape.

namespace {

/// Advance i over clean words; returns the first index whose word contains an
/// escape candidate (or a tail start past which < 8 octets remain).
inline std::size_t skip_clean_words(const u8* p, std::size_t i, std::size_t n, bool controls) {
  while (i + 8 <= n) {
    const u64 v = load_word(p + i);
    u64 m = eq_bytes(v, hdlc::kEscape) | eq_bytes(v, hdlc::kFlag);
    if (controls) m |= lt_bytes(v, 0x20);
    if (m != 0) break;
    i += 8;
  }
  return i;
}

}  // namespace

std::size_t count_escapes(BytesView data, const hdlc::Accm& accm) {
  const u8* p = data.data();
  const std::size_t n = data.size();
  const bool controls = accm.map() != 0;
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < n) {
    i = skip_clean_words(p, i, n, controls);
    const std::size_t stop = i + 8 < n ? i + 8 : n;
    for (; i < stop; ++i)
      if (accm.must_escape(p[i])) ++count;
  }
  return count;
}

void stuff_append(Bytes& out, BytesView data, const hdlc::Accm& accm) {
  const u8* p = data.data();
  const std::size_t n = data.size();
  const bool controls = accm.map() != 0;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t run = i;
    i = skip_clean_words(p, i, n, controls);
    if (i != run) out.insert(out.end(), p + run, p + i);
    const std::size_t stop = i + 8 < n ? i + 8 : n;
    for (; i < stop; ++i) {
      const u8 b = p[i];
      if (accm.must_escape(b)) {
        out.push_back(hdlc::kEscape);
        out.push_back(static_cast<u8>(b ^ hdlc::kXor));
      } else {
        out.push_back(b);
      }
    }
  }
}

bool destuff_append(Bytes& out, BytesView data) {
  const u8* p = data.data();
  const std::size_t n = data.size();
  std::size_t i = 0;
  while (i < n) {
    const std::size_t run = i;
    while (i + 8 <= n && eq_bytes(load_word(p + i), hdlc::kEscape) == 0) i += 8;
    if (i != run) out.insert(out.end(), p + run, p + i);
    const std::size_t stop = i + 8 < n ? i + 8 : n;
    for (; i < stop; ++i) {
      if (p[i] == hdlc::kEscape) {
        if (i + 1 == n) return false;  // dangling escape at end of frame
        // Lenient decode, matching the scalar reference: complement bit 6
        // whatever the escaped octet is (aborts never reach here — the
        // delineator splits on flags first). The escaped octet may live in
        // the next word; `stop` is only a scan hint, so stepping over it is
        // fine.
        ++i;
        out.push_back(static_cast<u8>(p[i] ^ hdlc::kXor));
      } else {
        out.push_back(p[i]);
      }
    }
  }
  return true;
}

u32 stuff_crc_append(Bytes& out, BytesView data, const hdlc::Accm& accm, const SliceCrc& crc,
                     u32 state) {
  const u8* p = data.data();
  const std::size_t n = data.size();
  const bool controls = accm.map() != 0;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t run = i;
    i = skip_clean_words(p, i, n, controls);
    state = crc.update(state, data.subspan(run, i - run));
    if (i != run) out.insert(out.end(), p + run, p + i);
    const std::size_t stop = i + 8 < n ? i + 8 : n;
    for (; i < stop; ++i) {
      const u8 b = p[i];
      state = crc.update_byte(state, b);
      if (accm.must_escape(b)) {
        out.push_back(hdlc::kEscape);
        out.push_back(static_cast<u8>(b ^ hdlc::kXor));
      } else {
        out.push_back(b);
      }
    }
  }
  return state & crc.spec().mask();
}

}  // namespace p5::fastpath
