file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_p5_8bit.dir/bench_table1_p5_8bit.cpp.o"
  "CMakeFiles/bench_table1_p5_8bit.dir/bench_table1_p5_8bit.cpp.o.d"
  "bench_table1_p5_8bit"
  "bench_table1_p5_8bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_p5_8bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
