file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_escape_detect_reorg.dir/bench_fig6_escape_detect_reorg.cpp.o"
  "CMakeFiles/bench_fig6_escape_detect_reorg.dir/bench_fig6_escape_detect_reorg.cpp.o.d"
  "bench_fig6_escape_detect_reorg"
  "bench_fig6_escape_detect_reorg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_escape_detect_reorg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
