// Full-stack integration: P5 devices joined by an SDH/SONET path — the
// "IP over SDH/SONET" of the paper's title.
//
//   P5(A).TX -> SPE framer -> scrambled STS-Nc frames -> optical line model
//            -> deframer -> P5(B).RX          (and the mirror direction)
//
// The x^43+1 self-synchronous payload scrambler (RFC 2615) runs over the
// PPP octet stream inside the SPE. The line model injects seeded bit
// errors, exercising the FCS/abort/delineation recovery paths end to end.
//
// The building block is P5SonetEndpoint — ONE end of the link: a P5 device
// plus the framer/deframer/scrambler set that turns its PHY word stream
// into the scrambled STS-Nc octet stream a line carries. P5SonetLink wires
// two endpoints back to back through the in-memory optical line model;
// transport::Tunnel (src/transport) binds a single endpoint to a real
// socket so the far end can live in another process.
#pragma once

#include <functional>
#include <memory>

#include "fastpath/escape_simd.hpp"
#include "p5/endpoint.hpp"
#include "p5/p5.hpp"
#include "sonet/line.hpp"
#include "sonet/scrambler.hpp"
#include "sonet/spe.hpp"

namespace p5::core {

/// One end of a PPP-over-SONET link at the cycle-accurate tier
/// (DeviceTier::kCycle): a P5 device behind the SONET framer/deframer,
/// exposing the tier-agnostic SonetEndpoint surface an external transport
/// binds to.
class P5SonetEndpoint final : public SonetEndpoint {
 public:
  P5SonetEndpoint(const P5Config& cfg, sonet::StsSpec sts);
  P5SonetEndpoint(const P5SonetEndpoint&) = delete;
  P5SonetEndpoint& operator=(const P5SonetEndpoint&) = delete;

  [[nodiscard]] DeviceTier tier() const override { return DeviceTier::kCycle; }

  [[nodiscard]] P5& device() { return *dev_; }
  [[nodiscard]] const P5& device() const { return *dev_; }

  // ---- host-side API (forwarded to the cycle device) ----
  bool submit_datagram(u16 protocol, Bytes payload) override {
    return dev_->submit_datagram(protocol, std::move(payload));
  }
  bool submit_frame(TxRequest req) override { return dev_->submit_frame(std::move(req)); }
  [[nodiscard]] bool tx_has_room(std::size_t payload_bytes) const override {
    return dev_->memory().tx_has_room(payload_bytes);
  }
  [[nodiscard]] std::optional<RxDelivery> reap_datagram() override {
    return dev_->reap_datagram();
  }
  void set_rx_sink(std::function<void(RxDelivery)> sink) override {
    dev_->set_rx_sink(std::move(sink));
  }

  /// Next scrambled SONET frame from the local transmitter — always exactly
  /// sts().frame_bytes() octets, advancing the device clock as the PHY
  /// would. The line never starves: idle cycles produce flag fill.
  [[nodiscard]] Bytes pull_frame() override;

  /// Feed received line octets (whole frames or arbitrary fragments) toward
  /// the local receiver. Frame alignment recovery, descrambling and HDLC
  /// delineation all happen downstream, so a mid-stream attach, a lost
  /// chunk or a reconnect costs a resync, never a crash — the x^43+1
  /// payload scrambler is self-synchronising by construction.
  void push_line(BytesView octets) override;

  void drain_rx() override { dev_->drain_rx(); }

  /// TX gate for paced pullers: true while datagrams are queued in shared
  /// memory or a frame is mid-transmission. After it goes false the
  /// pipeline still holds a handful of trailing octets (FCS, closing flag),
  /// so pullers should linger for roughly one more SONET frame.
  [[nodiscard]] bool tx_pending() const override;

  [[nodiscard]] std::size_t tx_queue_depth() const override {
    return dev_->memory().tx_pending();
  }
  [[nodiscard]] u64 frames_pulled() const override { return framer_->frames_built(); }
  [[nodiscard]] bool rx_in_sync() const override { return deframer_->in_sync(); }
  [[nodiscard]] const sonet::DeframerStats& rx_stats() const override {
    return deframer_->stats();
  }
  [[nodiscard]] const sonet::StsSpec& sts() const override { return sts_; }
  [[nodiscard]] RxCounters rx_counters() const override {
    return dev_->rx_control().counters();
  }
  [[nodiscard]] u64 rx_overflow_drops() const override {
    return dev_->memory().stats().rx_dropped;
  }

 private:
  sonet::StsSpec sts_;
  std::unique_ptr<P5> dev_;

  // Zero-alloc scrambling: TX scrambles the pulled chunk in place; RX reuses
  // a scratch buffer whose capacity stabilises after the first SONET frame.
  sonet::SelfSyncScrambler43 scr_tx_, scr_rx_;
  Bytes rx_scratch_;
  std::unique_ptr<sonet::SonetFramer> framer_;
  std::unique_ptr<sonet::SonetDeframer> deframer_;
};

class P5SonetLink {
 public:
  P5SonetLink(const P5Config& cfg, sonet::StsSpec sts, const sonet::LineConfig& line_cfg,
              DeviceTier tier = DeviceTier::kCycle);
  /// Asymmetric link: distinct configurations per end (e.g. a line-card
  /// tributary whose two ends carry different programmed MAPOS addresses).
  P5SonetLink(const P5Config& a_cfg, const P5Config& b_cfg, sonet::StsSpec sts,
              const sonet::LineConfig& line_cfg, DeviceTier tier = DeviceTier::kCycle);

  [[nodiscard]] DeviceTier tier() const { return tier_; }

  /// The cycle-level devices. Only valid on a kCycle link — tier-generic
  /// code goes through endpoint_a()/endpoint_b() instead.
  [[nodiscard]] P5& a();
  [[nodiscard]] P5& b();

  /// The endpoints themselves — the attach points transport::Tunnel binds
  /// to a socket (exchange_frames and a socket pump must not drive the same
  /// endpoint concurrently).
  [[nodiscard]] SonetEndpoint& endpoint_a() { return *ep_a_; }
  [[nodiscard]] SonetEndpoint& endpoint_b() { return *ep_b_; }

  /// Host-side software escape engine matching the A end's programmed ACCM:
  /// the dispatch tables are derived once here, at link construction (the
  /// software analogue of the OAM write that loads the P5's Escape Generate
  /// tables), so hosts that pre-frame or cross-check datagrams in software —
  /// the line-card fabric, the differential oracle — never pay table
  /// derivation per frame.
  [[nodiscard]] const fastpath::EscapeEngine& host_escape_engine() const {
    return host_engine_;
  }

  /// Move one SONET frame in each direction (A->B and B->A).
  void exchange_frames(std::size_t frames = 1);

  /// Optional per-direction mutation of each SONET frame *after* the line
  /// model and before the deframer — the insertion point for fault injection
  /// (testing::FaultyLine is directly callable as a tap). Either tap may be
  /// empty. A tap runs on whichever thread pumps exchange_frames, so give
  /// each direction its own stateful tap object.
  using LineTap = std::function<void(Bytes&)>;
  void set_line_tap(LineTap a_to_b, LineTap b_to_a) {
    tap_ab_ = std::move(a_to_b);
    tap_ba_ = std::move(b_to_a);
  }

  [[nodiscard]] const sonet::DeframerStats& a_to_b_stats() const { return ep_b_->rx_stats(); }
  [[nodiscard]] const sonet::DeframerStats& b_to_a_stats() const { return ep_a_->rx_stats(); }
  [[nodiscard]] const sonet::LineStats& line_ab_stats() const { return line_ab_.stats(); }
  [[nodiscard]] const sonet::StsSpec& sts() const { return sts_; }

 private:
  sonet::StsSpec sts_;
  DeviceTier tier_;
  std::unique_ptr<SonetEndpoint> ep_a_;
  std::unique_ptr<SonetEndpoint> ep_b_;
  fastpath::EscapeEngine host_engine_;  ///< derived once from the A-side ACCM
  sonet::Line line_ab_, line_ba_;
  LineTap tap_ab_, tap_ba_;
};

}  // namespace p5::core
