# Empty compiler generated dependencies file for p5_hdlc.
# This may be replaced when dependencies are built.
