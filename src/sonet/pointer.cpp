#include "sonet/pointer.hpp"

#include <bit>

#include "common/check.hpp"

namespace p5::sonet {

namespace {
constexpr u16 kNdfNormal = 0x6;   // 0110
constexpr u16 kNdfNewData = 0x9;  // 1001
constexpr u16 kPointerModulus = kMaxPointer + 1;

// Split a 10-bit value into its I (odd, from MSB) and D (even) bit groups.
// Bit 9 (MSB) is an I bit, bit 8 a D bit, and so on.
constexpr u16 i_mask = 0b1010101010;
constexpr u16 d_mask = 0b0101010101;
}  // namespace

u16 PointerWord::encode(bool invert_i, bool invert_d) const {
  P5_EXPECTS(value <= kMaxPointer);
  u16 v = value;
  if (invert_i) v ^= i_mask;
  if (invert_d) v ^= d_mask;
  const u16 nibble = ndf ? kNdfNewData : kNdfNormal;
  return static_cast<u16>((nibble << 12) | v);
}

std::optional<PointerWord> PointerWord::decode(u16 raw) {
  const u16 nibble = (raw >> 12) & 0xF;
  PointerWord p;
  if (nibble == kNdfNormal)
    p.ndf = false;
  else if (nibble == kNdfNewData)
    p.ndf = true;
  else
    return std::nullopt;
  p.value = raw & 0x3FF;
  if (p.value > kMaxPointer) return std::nullopt;
  return p;
}

PointerWord::Vote PointerWord::vote_against(u16 raw, u16 expected_value) {
  const u16 diff = (raw & 0x3FF) ^ expected_value;
  Vote v;
  v.i_inverted = static_cast<unsigned>(std::popcount(static_cast<unsigned>(diff & i_mask)));
  v.d_inverted = static_cast<unsigned>(std::popcount(static_cast<unsigned>(diff & d_mask)));
  return v;
}

// ---------------- generator ----------------

PointerGenerator::PointerGenerator(std::size_t capacity, double offset_ppm,
                                   std::function<Bytes(std::size_t)> payload_source)
    : capacity_(capacity), offset_ppm_(offset_ppm), source_(std::move(payload_source)) {
  P5_EXPECTS(capacity >= 4);
}

void PointerGenerator::new_data_jump(u16 new_pointer) {
  P5_EXPECTS(new_pointer <= kMaxPointer);
  pending_ndf_ = new_pointer;
}

PointeredFrame PointerGenerator::next_frame() {
  PointeredFrame f;
  f.capacity.resize(capacity_);

  if (pending_ndf_) {
    pointer_ = *pending_ndf_;
    pending_ndf_.reset();
    PointerWord w{pointer_, true};
    f.h1h2 = w.encode();
    f.capacity = source_(capacity_);
    return f;
  }

  // Clock-offset accumulation: positive ppm = the payload clock is slow, so
  // occasionally one capacity octet has nothing to carry (stuff it);
  // negative = payload fast, squeeze an extra octet through H3.
  drift_accum_ += offset_ppm_ * 1e-6 * static_cast<double>(capacity_);
  if (cooldown_ > 0) --cooldown_;

  if (drift_accum_ >= 1.0 && cooldown_ == 0) {
    drift_accum_ -= 1.0;
    cooldown_ = 3;
    ++pos_just_;
    PointerWord w{pointer_, false};
    f.h1h2 = w.encode(/*invert_i=*/true, false);
    const Bytes payload = source_(capacity_ - 1);
    f.capacity[0] = 0x00;  // stuff octet after H3
    std::copy(payload.begin(), payload.end(), f.capacity.begin() + 1);
    pointer_ = static_cast<u16>((pointer_ + 1) % kPointerModulus);
    return f;
  }
  if (drift_accum_ <= -1.0 && cooldown_ == 0) {
    drift_accum_ += 1.0;
    cooldown_ = 3;
    ++neg_just_;
    PointerWord w{pointer_, false};
    f.h1h2 = w.encode(false, /*invert_d=*/true);
    const Bytes payload = source_(capacity_ + 1);
    f.h3 = payload[0];  // H3 carries payload in a negative event
    std::copy(payload.begin() + 1, payload.end(), f.capacity.begin());
    pointer_ = static_cast<u16>((pointer_ + kPointerModulus - 1) % kPointerModulus);
    return f;
  }

  PointerWord w{pointer_, false};
  f.h1h2 = w.encode();
  f.capacity = source_(capacity_);
  return f;
}

// ---------------- interpreter ----------------

PointerInterpreter::PointerInterpreter(std::size_t capacity,
                                       std::function<void(BytesView)> payload_sink)
    : capacity_(capacity), sink_(std::move(payload_sink)) {}

void PointerInterpreter::push(const PointeredFrame& frame) {
  ++stats_.frames;

  // Justification signalling is detected on the raw bits *before* value
  // validation: an inverted I/D pattern can momentarily take the value field
  // out of range, and the event must still be honoured (GR-253 checks the
  // majority-of-inverted-bits pattern, not the value, in event frames).
  if (have_pointer_ && !lop_ && ((frame.h1h2 >> 12) & 0xF) == kNdfNormal) {
    const auto vote = PointerWord::vote_against(frame.h1h2, pointer_);
    if (vote.i_inverted >= 3 && vote.d_inverted <= 1) {
      ++stats_.positive_justifications;
      pointer_ = static_cast<u16>((pointer_ + 1) % kPointerModulus);
      consecutive_invalid_ = 0;
      sink_(BytesView(frame.capacity).subspan(1));
      return;
    }
    if (vote.d_inverted >= 3 && vote.i_inverted <= 1) {
      ++stats_.negative_justifications;
      pointer_ = static_cast<u16>((pointer_ + kPointerModulus - 1) % kPointerModulus);
      consecutive_invalid_ = 0;
      Bytes with_h3;
      with_h3.reserve(capacity_ + 1);
      with_h3.push_back(frame.h3);
      append(with_h3, frame.capacity);
      sink_(with_h3);
      return;
    }
  }

  const auto decoded = PointerWord::decode(frame.h1h2);

  if (!decoded) {
    ++stats_.invalid_pointers;
    if (++consecutive_invalid_ >= 8 && !lop_) {
      lop_ = true;
      ++stats_.lop_events;
    }
    return;  // no trustworthy payload while the pointer word is garbage
  }

  if (decoded->ndf) {
    // New Data Flag: accept immediately, clears any defect.
    pointer_ = decoded->value;
    have_pointer_ = true;
    lop_ = false;
    consecutive_invalid_ = 0;
    candidate_.reset();
    ++stats_.ndf_jumps;
    sink_(frame.capacity);
    return;
  }

  consecutive_invalid_ = 0;

  if (!have_pointer_ || lop_) {
    // Acquire: three consecutive identical normal pointers.
    if (candidate_ && *candidate_ == decoded->value) {
      if (++candidate_count_ >= 3) {
        pointer_ = decoded->value;
        have_pointer_ = true;
        lop_ = false;
        candidate_.reset();
      }
    } else {
      candidate_ = decoded->value;
      candidate_count_ = 1;
    }
    if (have_pointer_ && !lop_) sink_(frame.capacity);
    return;
  }

  if (decoded->value == pointer_) {
    candidate_.reset();
    sink_(frame.capacity);
    return;
  }

  // A different value without NDF: candidate for a silent re-point (three
  // consecutive identical values accept it); payload continues meanwhile.
  if (candidate_ && *candidate_ == decoded->value) {
    if (++candidate_count_ >= 3) {
      pointer_ = decoded->value;
      candidate_.reset();
    }
  } else {
    candidate_ = decoded->value;
    candidate_count_ = 1;
  }
  sink_(frame.capacity);
}

}  // namespace p5::sonet
