#include "server/server.hpp"

#include <utility>

#include "common/check.hpp"

namespace p5::server {

// ---------------------------------------------------------------- Uplink

void Uplink::stage(UplinkItem&& item) {
  Queue& q = queues_[item.tenant];
  if (q.items.size() >= cfg_.stage_frames) {
    // Staging bound: the slowest tenant cannot grow the scheduler without
    // limit; the overflow is an accounted loss on that tenant's ledger.
    tenants_.ensure(item.tenant).telemetry().add_dgrams_lost(1);
    return;
  }
  if (q.items.empty()) active_.push_back(item.tenant);
  q.items.push_back(std::move(item));
  staged_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Uplink::step() {
  for (auto* ring : rings_) {
    ring->drain(cfg_.intake_per_ring, [this](UplinkItem&& item) { stage(std::move(item)); });
  }
  if (active_.empty()) return 0;

  std::size_t emitted_now = 0;
  std::size_t budget = cfg_.budget_bytes;  // 0 = unlimited
  // One DRR round over the currently active tenants. Each visit tops the
  // tenant's deficit up by its quantum and emits head-of-line datagrams
  // while the deficit covers them; an emptied tenant forfeits its deficit
  // and leaves the active list (classic DRR, so a tenant cannot bank credit
  // while idle).
  std::size_t visits = active_.size();
  while (visits-- > 0) {
    const u32 tenant_id = active_.front();
    active_.pop_front();
    Queue& q = queues_[tenant_id];
    TenantState& t = tenants_.ensure(tenant_id);
    const u32 quantum =
        t.config().drr_quantum_bytes != 0 ? t.config().drr_quantum_bytes : cfg_.quantum_bytes;
    q.deficit += quantum;
    while (!q.items.empty()) {
      const std::size_t bytes = q.items.front().payload.size();
      if (q.deficit < bytes) break;
      if (cfg_.budget_bytes != 0 && budget < bytes) {
        active_.push_front(tenant_id);  // resume here next step, deficit kept
        return emitted_now;
      }
      UplinkItem item = std::move(q.items.front());
      q.items.pop_front();
      staged_.fetch_sub(1, std::memory_order_relaxed);
      q.deficit -= bytes;
      if (cfg_.budget_bytes != 0) budget -= bytes;
      if (sink_) sink_(item.tenant, item.protocol, item.payload);
      t.telemetry().on_uplinked(bytes);
      emitted_.fetch_add(1, std::memory_order_relaxed);
      emitted_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      ++emitted_now;
    }
    if (q.items.empty()) {
      q.deficit = 0;
    } else {
      active_.push_back(tenant_id);
    }
  }
  return emitted_now;
}

void Uplink::flush_lost() {
  for (auto* ring : rings_) {
    ring->drain(ring->capacity(), [this](UplinkItem&& item) {
      tenants_.ensure(item.tenant).telemetry().add_dgrams_lost(1);
    });
  }
  for (auto& [tenant_id, q] : queues_) {
    if (q.items.empty()) continue;
    tenants_.ensure(tenant_id).telemetry().add_dgrams_lost(q.items.size());
    staged_.fetch_sub(q.items.size(), std::memory_order_relaxed);
    q.items.clear();
    q.deficit = 0;
  }
  active_.clear();
}

// ---------------------------------------------------------- TunnelServer

TunnelServer::TunnelServer(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      tenants_(cfg_.tenant_defaults),
      uplink_(Uplink::Config{cfg_.uplink_stage_frames, cfg_.uplink_budget_bytes,
                             cfg_.drr_quantum_bytes, /*intake_per_ring=*/128},
              tenants_) {
  P5_EXPECTS(cfg_.shards >= 1);
  P5_EXPECTS(!cfg_.listeners.empty());
  cfg_.tier = core::resolve_device_tier(cfg_.tier);  // default-selection point
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    ShardConfig sc;
    sc.index = i;
    sc.adoption_ring = cfg_.adoption_ring;
    sc.uplink_ring = cfg_.uplink_ring;
    sc.conn = cfg_.conn;
    shards_.push_back(std::make_unique<Shard>(sc, make_env()));
    uplink_.attach(*shards_.back());
  }
  // The uplink's single consumer is shard 0's slice, in both driving modes.
  shards_[0]->set_on_slice([this] { uplink_.step(); });
}

TunnelServer::~TunnelServer() { stop(); }

SessionEnv TunnelServer::make_env() {
  SessionEnv env;  // loop/transport_tel/uplink_offer are filled by the Shard
  env.tenants = &tenants_;
  env.route = cfg_.route;
  env.frames_per_pump = cfg_.frames_per_pump;
  env.make_endpoint = [this] {
    return core::make_sonet_endpoint(cfg_.tier, cfg_.device, cfg_.sts);
  };
  env.delivered_tap = cfg_.delivered_tap;
  if (cfg_.max_sessions_total != 0) {
    env.admit_global = [this] {
      std::size_t cur = global_active_.load(std::memory_order_relaxed);
      while (cur < cfg_.max_sessions_total) {
        if (global_active_.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed)) {
          return true;
        }
      }
      return false;
    };
    env.release_global = [this] { global_active_.fetch_sub(1, std::memory_order_relaxed); };
  }
  return env;
}

bool TunnelServer::bind_listener(const ListenerSpec& spec, std::size_t spec_index,
                                 std::size_t shard_index) {
  transport::SocketAddr addr{cfg_.host, spec.port};
  // Per-shard reuseport listeners on a kernel-picked port must all share the
  // port the first bind got, not five fresh ones.
  if (cfg_.reuseport && spec.port == 0) {
    for (const Listener& l : listeners_) {
      if (l.spec_index == spec_index) {
        addr.port = transport::local_port(l.fd.get());
        break;
      }
    }
  }
  transport::Fd fd = transport::tcp_listen(addr, cfg_.listen_backlog, cfg_.reuseport);
  if (!fd.valid()) {
    last_error_ = "bind failed on " + addr.host + ":" + std::to_string(addr.port);
    return false;
  }
  const std::size_t listener_index = listeners_.size();
  listeners_.push_back(Listener{std::move(fd), spec_index, shard_index});
  shards_[shard_index]->loop().add_fd(listeners_.back().fd.get(), transport::kReadable,
                                      [this, listener_index](u32) {
                                        on_acceptable(listener_index);
                                      });
  return true;
}

bool TunnelServer::start() {
  P5_EXPECTS(!started_);
  listeners_.reserve(cfg_.listeners.size() * (cfg_.reuseport ? cfg_.shards : 1));
  for (std::size_t si = 0; si < cfg_.listeners.size(); ++si) {
    if (cfg_.reuseport) {
      for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
        if (!bind_listener(cfg_.listeners[si], si, sh)) return false;
      }
    } else {
      if (!bind_listener(cfg_.listeners[si], si, /*shard_index=*/0)) return false;
    }
  }
  started_ = true;
  return true;
}

void TunnelServer::on_acceptable(std::size_t listener_index) {
  const Listener& l = listeners_[listener_index];
  // Level-triggered loops accept everything pending; with fan-out the
  // batch is spread round-robin so a connect burst lands evenly.
  for (;;) {
    transport::Fd fd = transport::tcp_accept(l.fd.get());
    if (!fd.valid()) break;
    accepts_.fetch_add(1, std::memory_order_relaxed);
    dispatch(PendingConn{fd.release(), cfg_.listeners[l.spec_index].tenant}, l.shard_index);
  }
}

void TunnelServer::dispatch(PendingConn pc, std::size_t accept_shard) {
  std::size_t target = accept_shard;
  if (!cfg_.reuseport) {  // fan-out: the accepting shard spreads the load
    target = rr_next_;
    rr_next_ = (rr_next_ + 1) % shards_.size();
  }
  (void)shards_[target]->offer(std::move(pc), /*same_context=*/target == accept_shard);
}

void TunnelServer::run() {
  P5_EXPECTS(started_ && !running_);
  running_ = true;
  for (auto& s : shards_) s->start_thread();
}

void TunnelServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& s : shards_) s->stop();
  for (auto& s : shards_) s->join();
  running_ = false;
  // Shards are quiescent: close the books. Session teardown moves queued
  // chunks into frames_lost (exact chunk ledger), then whatever the uplink
  // never emitted is booked lost (exact tenant ledger).
  for (auto& s : shards_) s->teardown_sessions();
  uplink_.flush_lost();
}

void TunnelServer::enable_manual_time() {
  P5_EXPECTS(!started_ && !running_);
  for (auto& s : shards_) s->loop().enable_manual_time();
}

void TunnelServer::advance_time(u64 ms) {
  for (auto& s : shards_) s->loop().advance_time(ms);
}

std::size_t TunnelServer::step() {
  P5_EXPECTS(started_ && !running_);
  std::size_t work = 0;
  for (auto& s : shards_) work += s->slice(0);
  return work;
}

u16 TunnelServer::port(std::size_t listener_idx) const {
  for (const Listener& l : listeners_) {
    if (l.spec_index == listener_idx) return transport::local_port(l.fd.get());
  }
  return 0;
}

std::size_t TunnelServer::sessions_active() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->sessions_active();
  return n;
}

transport::TransportSnapshot TunnelServer::transport_stats() const {
  transport::TransportSnapshot sum;
  for (const auto& s : shards_) sum += s->transport_stats();
  return sum;
}

TenantSnapshot TunnelServer::tenant_stats(u32 tenant_id) {
  TenantState* t = tenants_.find(tenant_id);
  return t ? t->telemetry().snapshot() : TenantSnapshot{};
}

}  // namespace p5::server
