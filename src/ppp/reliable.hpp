// PPP Reliable Transmission (RFC 1663) — numbered mode.
//
// The paper (Section 2, Control field): "PPP may be configured via the LCP
// to use sequence numbers and acknowledgements for reliable data
// transmission. This is of particular use in noisy environments such as
// wireless networks." The P5's Control field is per-frame programmable, so
// the datapath carries numbered-mode frames unchanged; this module provides
// the LAPB-derived ARQ machine that fills that field.
//
// Implemented (modulo-8, the RFC 1663 default):
//   * I-frames        control = N(R)<<5 | P<<4 | N(S)<<1 | 0
//   * RR  (ack)       control = N(R)<<5 | P/F<<4 | 0x01
//   * REJ (go-back-N) control = N(R)<<5 | P/F<<4 | 0x09
// with a k-frame window, T1 retransmission timer, N2 retry limit, duplicate
// discard, and REJ-based go-back-N recovery. (RNR/SREJ and the XID
// handshake are out of scope — RFC 1663 makes them optional.)
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "common/types.hpp"

namespace p5::ppp {

// Control-octet codec (mod-8 numbered mode).
[[nodiscard]] constexpr bool is_i_frame(u8 control) { return (control & 0x01) == 0; }
[[nodiscard]] constexpr bool is_rr(u8 control) { return (control & 0x0F) == 0x01; }
[[nodiscard]] constexpr bool is_rej(u8 control) { return (control & 0x0F) == 0x09; }
[[nodiscard]] constexpr u8 i_frame_ns(u8 control) { return (control >> 1) & 0x07; }
[[nodiscard]] constexpr u8 frame_nr(u8 control) { return (control >> 5) & 0x07; }
[[nodiscard]] constexpr u8 make_i_frame(u8 ns, u8 nr) {
  return static_cast<u8>((nr << 5) | ((ns & 7) << 1));
}
[[nodiscard]] constexpr u8 make_rr(u8 nr) { return static_cast<u8>((nr << 5) | 0x01); }
[[nodiscard]] constexpr u8 make_rej(u8 nr) { return static_cast<u8>((nr << 5) | 0x09); }

struct ReliableConfig {
  unsigned window = 4;          ///< k: max outstanding I-frames (1..7)
  unsigned t1_ticks = 3;        ///< retransmission timer period
  unsigned max_retransmit = 10; ///< N2: give up after this many T1 expiries
};

struct ReliableStats {
  u64 data_sent = 0;         ///< distinct I-frames first transmitted
  u64 retransmissions = 0;   ///< I-frames re-sent (T1 or REJ)
  u64 delivered = 0;         ///< in-sequence payloads handed up
  u64 duplicates = 0;        ///< out-of-sequence/duplicate I-frames dropped
  u64 rejs_sent = 0;
  u64 acks_sent = 0;
};

class ReliableLink {
 public:
  /// `frame_tx(control, payload)` transmits one numbered-mode frame (the
  /// payload is empty for supervisory frames). `deliver` receives payloads
  /// exactly once, in order.
  ReliableLink(const ReliableConfig& cfg, std::function<void(u8, BytesView)> frame_tx,
               std::function<void(BytesView)> deliver);

  /// Queue a payload; transmitted as soon as the window allows.
  void send(Bytes payload);

  /// Feed a received frame (FCS-checked by the layer below).
  void on_frame(u8 control, BytesView payload);

  /// Advance the retransmission timer one unit.
  void tick();

  [[nodiscard]] const ReliableStats& stats() const { return stats_; }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::size_t unacked() const { return unacked_.size(); }
  [[nodiscard]] std::size_t backlog() const { return pending_.size(); }

 private:
  void pump();
  void process_ack(u8 nr);
  void transmit_i(u8 ns, const Bytes& payload);
  void arm_t1() { t1_remaining_ = cfg_.t1_ticks; }

  ReliableConfig cfg_;
  std::function<void(u8, BytesView)> frame_tx_;
  std::function<void(BytesView)> deliver_;

  u8 vs_ = 0;  ///< send state variable: next N(S) to use
  u8 va_ = 0;  ///< oldest unacknowledged N(S)
  u8 vr_ = 0;  ///< receive state variable: next expected N(S)

  std::deque<Bytes> pending_;  ///< not yet transmitted
  struct Outstanding {
    u8 ns;
    Bytes payload;
  };
  std::deque<Outstanding> unacked_;

  unsigned t1_remaining_ = 0;
  unsigned retries_ = 0;
  bool rej_outstanding_ = false;
  bool failed_ = false;

  ReliableStats stats_;
};

}  // namespace p5::ppp
