// The P5 device: Transmitter + Receiver + Protocol OAM wired into one
// cycle-accurate pipeline (paper Figure 2).
//
//   TX: TxControl -> TxCrcUnit -> EscapeGenerate -> FlagInserter -> PHY
//   RX: PHY -> FlagDelineator -> EscapeDetect -> RxCrcChecker -> RxControl
//
// The PHY boundary is a pair of word channels; adapters below convert to
// the continuous octet stream SDH/SONET carries. Every inter-stage channel
// is a registered pipeline stage, so first-word latencies and sustained
// words-per-cycle measured on this model are architectural properties, not
// software artefacts.
#pragma once

#include <memory>

#include "p5/config.hpp"
#include "p5/control.hpp"
#include "p5/crc_unit.hpp"
#include "p5/escape_detect.hpp"
#include "p5/escape_generate.hpp"
#include "p5/framer.hpp"
#include "p5/oam.hpp"
#include "p5/shared_memory.hpp"
#include "rtl/simulator.hpp"
#include "rtl/vcd.hpp"

namespace p5::core {

class P5 {
 public:
  explicit P5(const P5Config& cfg);

  // ---- host-side API (the shared-memory / uP interface) ----
  /// Buffer a datagram in shared memory for transmission; false when the
  /// transmit pool/ring is full (the host must back off, like any driver).
  bool submit_datagram(u16 protocol, Bytes payload);
  /// Full-control submission (per-frame Control override for numbered mode).
  bool submit_frame(TxRequest req) { return memory_.post_tx(std::move(req)); }
  /// Without an rx sink, received datagrams accumulate in shared memory and
  /// the host reaps them here (with a sink they are delivered immediately).
  [[nodiscard]] std::optional<RxDelivery> reap_datagram() { return memory_.reap_rx(); }
  [[nodiscard]] SharedMemory& memory() { return memory_; }
  void set_rx_sink(std::function<void(RxDelivery)> sink);
  [[nodiscard]] Oam& oam() { return oam_; }
  [[nodiscard]] const P5Config& config() const { return cfg_; }

  // ---- clock ----
  void step(u64 cycles = 1);
  [[nodiscard]] u64 cycle() const { return sim_.cycle(); }

  /// Attach a VCD waveform writer: registers the pipeline's key signals
  /// (queue occupancies, channel valids, counters) and samples them on
  /// every subsequent step(). Pass nullptr to detach.
  void attach_trace(rtl::VcdWriter* vcd);

  // ---- PHY-side API ----
  /// Pull exactly n transmit octets, advancing the clock as needed (the
  /// SONET framer's payload_source contract). The line never starves: idle
  /// cycles produce flag fill.
  [[nodiscard]] Bytes phy_pull_tx(std::size_t n);
  /// Push received octets toward the receiver, advancing the clock so the
  /// pipeline keeps pace with the line (lanes octets per cycle).
  void phy_push_rx(BytesView octets);
  /// Drain the receive pipeline (run until quiescent, bounded).
  void drain_rx(u64 max_cycles = 10000);

  // ---- introspection for the experiments ----
  [[nodiscard]] const TxControl& tx_control() const { return *tx_control_; }
  [[nodiscard]] const EscapeGenerate& escape_generate() const { return *escape_generate_; }
  [[nodiscard]] const EscapeDetect& escape_detect() const { return *escape_detect_; }
  [[nodiscard]] const FlagInserter& flag_inserter() const { return *flag_inserter_; }
  [[nodiscard]] const FlagDelineator& flag_delineator() const { return *flag_delineator_; }
  [[nodiscard]] const RxCrcChecker& rx_crc() const { return *rx_crc_; }
  [[nodiscard]] const RxControl& rx_control() const { return *rx_control_; }
  [[nodiscard]] TxControl& tx_control() { return *tx_control_; }

 private:
  P5Config cfg_;
  rtl::Simulator sim_;
  Oam oam_;
  SharedMemory memory_;
  bool have_user_sink_ = false;

  // Channels (registered pipeline stages).
  std::unique_ptr<rtl::Fifo<rtl::Word>> tx_c2crc_, tx_crc2esc_, tx_esc2flag_, tx_line_;
  std::unique_ptr<rtl::Fifo<rtl::Word>> rx_line_, rx_flag2esc_, rx_esc2crc_, rx_crc2c_;

  // Modules.
  std::unique_ptr<TxControl> tx_control_;
  std::unique_ptr<TxCrcUnit> tx_crc_;
  std::unique_ptr<EscapeGenerate> escape_generate_;
  std::unique_ptr<FlagInserter> flag_inserter_;
  std::unique_ptr<FlagDelineator> flag_delineator_;
  std::unique_ptr<EscapeDetect> escape_detect_;
  std::unique_ptr<RxCrcChecker> rx_crc_;
  std::unique_ptr<RxControl> rx_control_;

  Bytes rx_spill_;  ///< partial word being assembled from pushed octets
  Bytes tx_spill_;  ///< octets popped from the line but not yet pulled
  rtl::VcdWriter* vcd_ = nullptr;
};

}  // namespace p5::core
