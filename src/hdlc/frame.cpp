#include "hdlc/frame.hpp"

#include "common/check.hpp"
#include "crc/crc_table.hpp"
#include "hdlc/stuffing.hpp"

namespace p5::hdlc {

namespace {
const crc::TableCrc& engine(const FrameConfig& cfg) {
  return cfg.fcs == FcsKind::kFcs32 ? crc::fcs32() : crc::fcs16();
}
}  // namespace

Bytes encapsulate(const FrameConfig& cfg, u16 protocol, BytesView payload) {
  P5_EXPECTS(payload.size() <= cfg.max_payload);
  Bytes content;
  content.reserve(payload.size() + 8);
  if (!cfg.acfc) {
    content.push_back(cfg.address);
    content.push_back(cfg.control);
  }
  if (cfg.pfc && protocol <= 0xFF) {
    // PFC requires the low octet to be odd (RFC 1661 §2), which all
    // assigned protocols satisfy; fall back to two octets otherwise.
    if (protocol & 1u) {
      content.push_back(static_cast<u8>(protocol));
    } else {
      put_be16(content, protocol);
    }
  } else {
    put_be16(content, protocol);
  }
  append(content, payload);

  // FCS is computed over everything between the flags, and transmitted
  // least-significant octet first (RFC 1662 §C).
  const u32 fcs =
      engine(cfg).update(cfg.crc_spec().init, content) ^ cfg.crc_spec().xorout;
  if (cfg.fcs == FcsKind::kFcs32) {
    put_le32(content, fcs);
  } else {
    content.push_back(static_cast<u8>(fcs));
    content.push_back(static_cast<u8>(fcs >> 8));
  }
  return content;
}

Bytes build_wire_frame(const FrameConfig& cfg, u16 protocol, BytesView payload) {
  const Bytes content = encapsulate(cfg, protocol, payload);
  Bytes wire;
  wire.reserve(content.size() + 16);
  wire.push_back(kFlag);
  const Bytes stuffed = stuff(content, cfg.accm);
  append(wire, stuffed);
  wire.push_back(kFlag);
  return wire;
}

ParseResult parse(const FrameConfig& cfg, BytesView content) {
  ParseResult r;
  const std::size_t fcs_len = cfg.fcs_bytes();
  if (content.size() < fcs_len + 1) {
    r.error = ParseError::kTooShort;
    return r;
  }
  if (!engine(cfg).check(content)) {
    r.error = ParseError::kBadFcs;
    return r;
  }

  std::size_t off = 0;
  if (!cfg.acfc) {
    // Uncompressed header required. The address comparison doubles as the
    // MAPOS address filter: the P5's Address register is programmable and
    // frames for other stations are dropped here.
    if (content.size() - fcs_len < 2) {
      r.error = ParseError::kTooShort;
      return r;
    }
    if (content[0] != cfg.address && content[0] != kDefaultAddress) {
      // 0xFF stays valid as the all-stations (broadcast) address.
      r.error = ParseError::kBadAddress;
      return r;
    }
    if (content[1] != cfg.control) {
      r.error = ParseError::kBadControl;
      return r;
    }
    off = 2;
  } else if (content.size() - fcs_len >= 2 && content[0] == cfg.address &&
             content[1] == cfg.control) {
    // ACFC negotiated but the peer sent the header anyway — accept it
    // (RFC 1661 §6.6).
    off = 2;
  }

  if (off >= content.size() - fcs_len) {
    r.error = ParseError::kTooShort;
    return r;
  }

  ParsedFrame f;
  const u8 p0 = content[off];
  if (p0 & 1u) {
    // Compressed (single-octet) protocol: assigned values have an even
    // high octet and odd low octet, so an odd first octet means PFC.
    f.protocol = p0;
    off += 1;
  } else {
    if (off + 2 > content.size() - fcs_len) {
      r.error = ParseError::kTooShort;
      return r;
    }
    f.protocol = get_be16(content, off);
    off += 2;
  }

  const std::size_t payload_len = content.size() - fcs_len - off;
  if (payload_len > cfg.max_payload) {
    r.error = ParseError::kTooLong;
    return r;
  }
  f.payload.assign(content.begin() + static_cast<std::ptrdiff_t>(off),
                   content.end() - static_cast<std::ptrdiff_t>(fcs_len));
  r.frame = std::move(f);
  return r;
}

}  // namespace p5::hdlc
