// Tunnel: binds one side of a PPP-over-SONET simulation to a real socket so
// the other side can live in a different process.
//
// The bound object is abstracted as a TunnelBinding — four pull/push hooks
// plus an optional housekeeping step — with two stock flavours:
//   * endpoint() — a core::P5SonetEndpoint. Chunks are whole scrambled
//     STS-Nc frames; pull is paced by the endpoint's tx_pending() gate (with
//     a short linger so trailing FCS/flag octets flush) instead of letting
//     flag fill saturate the wire.
//   * channel() — a linecard::Channel's fabric edge. Chunks are encoded
//     FrameDescs ([u16 protocol BE][u8 fabric_dest][u8 source_channel]
//     [payload]), extending the MAPOS fabric across processes.
//
// Reconnect state machine (connector side):
//
//   kIdle -> kConnecting -> kConnected -> (loss) -> kBackoff -> kConnecting
//                \-> (refused) -> kBackoff -^            \-> budget spent
//                                                            -> kFailed
//   kConnected -> request_drain() -> kDraining -> kClosed
//
// Backoff is capped exponential with seeded jitter; a successful
// establishment resets the delay. The listener side stays in kListening
// between peers and adopts each new accept (latest wins).
//
// All Tunnel methods are loop-context only. Connection callbacks never
// destroy the connection from its own stack: teardown is bounced through a
// zero-delay timer, so the object that invoked us finishes its slice first.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "transport/conn.hpp"
#include "transport/event_loop.hpp"

namespace p5::core {
class SonetEndpoint;
}
namespace p5::linecard {
class Channel;
}

namespace p5::transport {

/// The hooks a Tunnel drives. `pull` returns the next chunk to transmit
/// (empty = nothing pending); `pull_raw`, when present, produces a chunk
/// unconditionally (keepalive fill for carriers that can always emit, like a
/// SONET transmitter); `ready` predicts whether pull would produce; `push`
/// delivers a received chunk and reports refusal (ring full); `push_batch`,
/// when present, takes a whole received burst in one call and returns how
/// many chunks the bound object accepted (refusals are counted as rx drops
/// regardless of position); `step`, when present, runs one housekeeping
/// slice per pump.
struct TunnelBinding {
  std::function<Bytes()> pull;
  std::function<Bytes()> pull_raw;
  std::function<bool()> ready;
  std::function<bool(BytesView)> push;
  std::function<std::size_t(std::span<const BytesView>)> push_batch;
  std::function<void()> step;

  /// Bind either device tier: cycle-accurate P5SonetEndpoint or the batch
  /// FastP5Endpoint — the binding only touches the SonetEndpoint surface.
  static TunnelBinding endpoint(core::SonetEndpoint& ep);
  static TunnelBinding channel(linecard::Channel& ch);
};

struct TunnelConfig {
  std::string host = "127.0.0.1";
  u16 port = 0;         ///< 0 with listen: kernel picks; read bound_port()
  bool listen = false;  ///< accept one peer vs. dial out
  bool udp = false;     ///< datagram carrier instead of stream

  u64 backoff_initial_ms = 50;
  u64 backoff_max_ms = 2000;
  double backoff_jitter = 0.25;  ///< +/- fraction applied to each delay
  u64 backoff_budget_ms = 0;     ///< cumulative backoff before kFailed; 0 = keep trying

  u64 idle_timeout_ms = 0;  ///< drop a peer after this much RX silence; 0 = off
  u64 keepalive_ms = 0;     ///< pull_raw fill when TX idles this long; 0 = off

  std::size_t frames_per_pump = 8;  ///< TX chunks per pump() slice
  std::size_t steps_per_pump = 1;   ///< binding.step() calls per pump()
  ConnConfig conn;                  ///< watermark / framing bounds
  u64 seed = 0x9E3779B97F4A7C15ull;  ///< backoff jitter stream
};

enum class TunnelState : u8 {
  kIdle,        ///< constructed, start() not called
  kListening,   ///< waiting for a peer
  kConnecting,  ///< TCP handshake in flight
  kBackoff,     ///< waiting out a reconnect delay
  kConnected,   ///< chunks flowing
  kDraining,    ///< flushing the send queue before goodbye
  kClosed,      ///< drained and done
  kFailed,      ///< reconnect budget exhausted
};

[[nodiscard]] const char* to_string(TunnelState s);

class Tunnel {
 public:
  Tunnel(EventLoop& loop, TunnelBinding binding, TunnelConfig cfg);
  ~Tunnel();
  Tunnel(const Tunnel&) = delete;
  Tunnel& operator=(const Tunnel&) = delete;

  void start();

  /// One TX slice: step the binding, then move up to frames_per_pump chunks
  /// from the binding into the connection — stopping (and counting a
  /// backpressure stall) the moment the write queue hits its watermark.
  /// Returns chunks handed to the connection.
  std::size_t pump();

  /// Graceful goodbye: stop pulling, flush the queue, half-close, kClosed.
  void request_drain();

  /// Test hook: sever the current connection as if the peer died. The
  /// reconnect machinery reacts exactly as for a real loss.
  void kill_connection();

  [[nodiscard]] TunnelState state() const { return state_; }
  [[nodiscard]] bool established() const { return state_ == TunnelState::kConnected; }
  [[nodiscard]] bool finished() const {
    return state_ == TunnelState::kClosed || state_ == TunnelState::kFailed;
  }
  /// Listener: the port actually bound (resolves port 0).
  [[nodiscard]] u16 bound_port() const;

  [[nodiscard]] TransportSnapshot stats() const { return tel_.snapshot(); }
  [[nodiscard]] TransportTelemetry& telemetry() { return tel_; }
  /// The chunk pool every connection of this tunnel draws from — reconnects
  /// inherit the warmed free list.
  [[nodiscard]] ChunkPool::Counters pool_counters() const { return pool_.counters(); }

  /// Mutate each received chunk before it reaches the binding — the hook a
  /// testing::FaultyLine plugs into (it is directly callable). A tap that
  /// clears the chunk drops it entirely, modelling datagram loss without a
  /// lossy network.
  void set_rx_tap(std::function<void(Bytes&)> tap) { rx_tap_ = std::move(tap); }

 private:
  void begin_listen();
  void begin_connect();
  void adopt(std::unique_ptr<Conn> conn);
  void on_established();
  void on_conn_closed();
  void schedule_reconnect();
  void arm_idle_timer();
  void idle_check();
  void finish_drain();
  void deliver(std::span<const BytesView> chunks);

  EventLoop& loop_;
  TunnelBinding binding_;
  TunnelConfig cfg_;
  TransportTelemetry tel_;
  /// Shared by every conn this tunnel ever adopts; declared before conn_ so
  /// queued ChunkRefs release into a live pool at destruction.
  ChunkPool pool_{&tel_};
  Xoshiro256 rng_;
  /// Deferred-teardown timers capture this flag, not a bare `this`, so a
  /// timer that outlives the Tunnel fizzles instead of dangling.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  TunnelState state_ = TunnelState::kIdle;
  Fd listen_fd_;
  u16 bound_port_ = 0;
  std::unique_ptr<Conn> conn_;

  bool ever_connected_ = false;
  u64 backoff_ms_ = 0;        ///< next reconnect delay (0 = fresh sequence)
  u64 backoff_spent_ms_ = 0;  ///< cumulative this outage, against budget
  u64 last_tx_ms_ = 0;        ///< keepalive reference
  EventLoop::TimerId idle_timer_ = 0;
  std::function<void(Bytes&)> rx_tap_;
  std::vector<Bytes> tap_scratch_;       ///< tap-mutated copies, one per chunk
  std::vector<BytesView> tap_survivors_; ///< the burst minus tap-eaten chunks
};

}  // namespace p5::transport
