// TunBridge — kernel IP ↔ SonetEndpoint.
//
// The glue that makes the example topology
//
//   kernel IP stack ⇄ TUN fd ⇄ TunBridge ⇄ SonetEndpoint ⇄ Tunnel ⇄ socket
//
// carry live traffic: the bridge registers the TUN fd on the transport
// EventLoop and, on readability, drains kernel-originated datagrams into
// the endpoint's submit path; pump() (called alongside Tunnel::pump in the
// driver loop) reaps endpoint deliveries and writes them back to the
// kernel. The endpoint tier is whatever the caller built — cycle-accurate
// P5 or the fast batch datapath — the bridge neither knows nor cares.
//
// Optional VJ header compression (RFC 1144) rides the same protocol
// numbers the PPP session layer uses (0x0021/0x002d/0x002f): enable it on
// both ends or the TCP deliveries arrive under a protocol the far bridge
// drops. IP datagrams that are not TCP pass through VJ untouched
// (PacketClass::kIp), exactly as in ppp::PppEndpoint.
//
// Backpressure: an endpoint refusal (TX ring full) parks the datagram in a
// bounded FIFO that is re-offered each pump; past the bound the bridge
// drops new kernel packets and counts them — the kernel's own protocols
// (TCP retransmit, ping loss) recover, which is the honest behaviour for a
// congested device. The ledger (tun_rx == submitted + backlog + dropped)
// stays exact.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "common/types.hpp"
#include "net/tunif/tun_device.hpp"
#include "p5/endpoint.hpp"
#include "ppp/vj.hpp"
#include "transport/event_loop.hpp"

namespace p5::net::tunif {

struct TunBridgeConfig {
  bool vj = false;               ///< VJ TCP header compression (both ends!)
  std::size_t backlog_limit = 64;  ///< parked datagrams before drop-new
};

struct TunBridgeStats {
  u64 tun_rx_packets = 0;  ///< datagrams read from the kernel
  u64 tun_rx_bytes = 0;
  u64 submitted = 0;       ///< accepted by the endpoint
  u64 dropped_backlog = 0; ///< kernel packets dropped at the full backlog
  u64 delivered_packets = 0;  ///< endpoint deliveries written to the kernel
  u64 delivered_bytes = 0;
  u64 tun_write_failures = 0;
  u64 dropped_non_ip = 0;  ///< deliveries under a protocol the bridge has no mapping for
  u64 vj_tossed = 0;       ///< VJ decompression failures (dropped; TCP recovers)
};

class TunBridge {
 public:
  /// The fd is registered on `loop` immediately (loop context — construct
  /// on the loop thread). `tun` and `ep` must outlive the bridge.
  TunBridge(transport::EventLoop& loop, TunDevice& tun, core::SonetEndpoint& ep,
            TunBridgeConfig cfg = {});
  ~TunBridge();
  TunBridge(const TunBridge&) = delete;
  TunBridge& operator=(const TunBridge&) = delete;

  /// One driver-loop slice: re-offer the parked backlog, then reap endpoint
  /// deliveries into the kernel. Returns datagrams written to the TUN fd.
  std::size_t pump();

  /// Read every queued kernel datagram into the endpoint (or the backlog).
  /// This is the readability callback; tests call it directly to drive the
  /// bridge without a live loop iteration. Returns datagrams read.
  std::size_t drain_tun();

  /// Observe datagrams as they are written to the kernel (post-VJ — real
  /// IP), e.g. CaptureTap::line_tap-compatible recording.
  void set_delivered_tap(std::function<void(BytesView)> tap) { delivered_tap_ = std::move(tap); }
  /// Observe datagrams as they arrive from the kernel (pre-VJ — real IP).
  void set_tun_rx_tap(std::function<void(BytesView)> tap) { tun_rx_tap_ = std::move(tap); }

  [[nodiscard]] const TunBridgeStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t backlog() const { return backlog_.size(); }

 private:
  /// Submit toward the endpoint (VJ applied); false parks/drops per policy.
  bool offer(Bytes&& datagram);
  void deliver_to_kernel(u16 protocol, BytesView payload);

  transport::EventLoop& loop_;
  TunDevice& tun_;
  core::SonetEndpoint& ep_;
  TunBridgeConfig cfg_;
  TunBridgeStats stats_;

  struct Parked {
    u16 protocol;
    Bytes packet;
  };
  std::deque<Parked> backlog_;

  std::unique_ptr<ppp::vj::Compressor> vj_comp_;
  std::unique_ptr<ppp::vj::Decompressor> vj_decomp_;

  std::function<void(BytesView)> delivered_tap_;
  std::function<void(BytesView)> tun_rx_tap_;
  bool fd_registered_ = false;
};

}  // namespace p5::net::tunif
