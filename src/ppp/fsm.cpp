#include "ppp/fsm.hpp"

#include "common/check.hpp"

namespace p5::ppp {

const char* to_string(State s) {
  switch (s) {
    case State::kInitial: return "Initial";
    case State::kStarting: return "Starting";
    case State::kClosed: return "Closed";
    case State::kStopped: return "Stopped";
    case State::kClosing: return "Closing";
    case State::kStopping: return "Stopping";
    case State::kReqSent: return "Req-Sent";
    case State::kAckRcvd: return "Ack-Rcvd";
    case State::kAckSent: return "Ack-Sent";
    case State::kOpened: return "Opened";
  }
  return "?";
}

Fsm::Fsm(std::string name, u16 protocol, Timeouts timeouts)
    : name_(std::move(name)), protocol_(protocol), timeouts_(timeouts) {}

void Fsm::enter(State s) {
  state_ = s;
  // The restart timer runs only in Closing/Stopping/Req-Sent/Ack-Rcvd/Ack-Sent.
  if (s == State::kInitial || s == State::kStarting || s == State::kClosed ||
      s == State::kStopped || s == State::kOpened) {
    stop_timer();
    // Leaving active negotiation (converged or gave up) re-arms Max-Failure.
    naks_received_ = 0;
    naks_sent_ = 0;
  }
}

void Fsm::emit(Code code, u8 identifier, Bytes data) {
  Packet p;
  p.code = static_cast<u8>(code);
  p.identifier = identifier;
  p.data = std::move(data);
  send_packet(p);
}

// ---- actions ----

void Fsm::action_irc(TimeoutKind kind) {
  restart_counter_ =
      kind == TimeoutKind::kTerminate ? timeouts_.max_terminate : timeouts_.max_configure;
  timeout_kind_ = kind;
  timer_remaining_ = timeouts_.restart_ticks;
}

void Fsm::action_zrc() {
  restart_counter_ = 0;
  // zrc arms the restart timer so the state it guards (Stopping after a peer
  // Terminate-Request) can expire. Entered from Opened the timer is stopped,
  // so without setting the kind here the timeout would never fire and the
  // automaton would hang in Stopping (RFC 1661 §4.4, zrc = "zero restart
  // counter *and start timer*").
  timeout_kind_ = TimeoutKind::kTerminate;
  timer_remaining_ = timeouts_.restart_ticks;
}

void Fsm::action_scr() {
  P5_ASSERT(restart_counter_ > 0);
  --restart_counter_;
  timer_remaining_ = timeouts_.restart_ticks;
  current_request_id_ = next_identifier_++;
  ++counters_.tx_configure_requests;
  emit(Code::kConfigureRequest, current_request_id_, serialize_options(build_configure_options()));
}

void Fsm::action_str() {
  P5_ASSERT(restart_counter_ > 0);
  --restart_counter_;
  timer_remaining_ = timeouts_.restart_ticks;
  emit(Code::kTerminateRequest, next_identifier_++, {});
}

void Fsm::action_sta(u8 identifier) { emit(Code::kTerminateAck, identifier, {}); }

void Fsm::action_scj(const Packet& bad) {
  ++counters_.code_rejects_sent;
  emit(Code::kCodeReject, next_identifier_++, bad.serialize());
}

// ---- administrative events (RFC 1661 §4.4 state table) ----

void Fsm::up() {
  switch (state_) {
    case State::kInitial:
      enter(State::kClosed);
      break;
    case State::kStarting:
      action_irc(TimeoutKind::kConfigure);
      action_scr();
      enter(State::kReqSent);
      break;
    default:
      // Already up: the RFC marks this "should not happen"; tolerate it.
      break;
  }
}

void Fsm::down() {
  switch (state_) {
    case State::kClosed:
      enter(State::kInitial);
      break;
    case State::kStopped:
      this_layer_started();
      enter(State::kStarting);
      break;
    case State::kClosing:
      enter(State::kInitial);
      break;
    case State::kStopping:
    case State::kReqSent:
    case State::kAckRcvd:
    case State::kAckSent:
      enter(State::kStarting);
      break;
    case State::kOpened:
      this_layer_down();
      enter(State::kStarting);
      break;
    default:
      break;
  }
}

void Fsm::open() {
  switch (state_) {
    case State::kInitial:
      this_layer_started();
      enter(State::kStarting);
      break;
    case State::kStarting:
      break;
    case State::kClosed:
      action_irc(TimeoutKind::kConfigure);
      action_scr();
      enter(State::kReqSent);
      break;
    case State::kClosing:
      enter(State::kStopping);
      break;
    default:
      // Stopped/Stopping/ReqSent/AckRcvd/AckSent/Opened: remain (no
      // restart option implemented).
      break;
  }
}

void Fsm::close() {
  switch (state_) {
    case State::kInitial:
      break;
    case State::kStarting:
      this_layer_finished();
      enter(State::kInitial);
      break;
    case State::kClosed:
    case State::kClosing:
      break;
    case State::kStopped:
      enter(State::kClosed);
      break;
    case State::kStopping:
      enter(State::kClosing);
      break;
    case State::kReqSent:
    case State::kAckRcvd:
    case State::kAckSent:
      action_irc(TimeoutKind::kTerminate);
      action_str();
      enter(State::kClosing);
      break;
    case State::kOpened:
      this_layer_down();
      action_irc(TimeoutKind::kTerminate);
      action_str();
      enter(State::kClosing);
      break;
  }
}

void Fsm::tick() {
  if (timeout_kind_ == TimeoutKind::kNone) return;
  if (timer_remaining_ > 1) {
    --timer_remaining_;
    return;
  }
  ++counters_.timeouts;
  event_timeout();
}

void Fsm::event_timeout() {
  const bool counter_positive = restart_counter_ > 0;
  switch (state_) {
    case State::kClosing:
      if (counter_positive) {
        action_str();
      } else {
        this_layer_finished();
        enter(State::kClosed);
      }
      break;
    case State::kStopping:
      if (counter_positive) {
        action_str();
      } else {
        this_layer_finished();
        enter(State::kStopped);
      }
      break;
    case State::kReqSent:
    case State::kAckSent:
      if (counter_positive) {
        action_scr();
      } else {
        this_layer_finished();
        enter(State::kStopped);
      }
      break;
    case State::kAckRcvd:
      if (counter_positive) {
        action_scr();
        enter(State::kReqSent);
      } else {
        this_layer_finished();
        enter(State::kStopped);
      }
      break;
    default:
      stop_timer();
      break;
  }
}

// ---- receive dispatch ----

void Fsm::receive(BytesView packet_bytes) {
  const auto parsed = Packet::parse(packet_bytes);
  if (!parsed) return;  // silently discard malformed packets (RFC 1661 §5)
  const Packet& pkt = *parsed;

  if (on_extra_packet(pkt)) return;

  switch (static_cast<Code>(pkt.code)) {
    case Code::kConfigureRequest:
      rcv_configure_request(pkt);
      break;
    case Code::kConfigureAck:
      rcv_configure_ack(pkt);
      break;
    case Code::kConfigureNak:
    case Code::kConfigureReject:
      rcv_configure_nak_rej(pkt);
      break;
    case Code::kTerminateRequest:
      rcv_terminate_request(pkt);
      break;
    case Code::kTerminateAck:
      rcv_terminate_ack();
      break;
    case Code::kCodeReject:
      // RXJ+: the rejected code was not essential; no state change needed
      // for the codes this implementation emits.
      break;
    case Code::kEchoRequest:
    case Code::kEchoReply:
    case Code::kDiscardRequest:
      rcv_echo_discard(pkt);
      break;
    default:
      rcv_unknown_code(pkt);
      break;
  }
}

void Fsm::rcv_configure_request(const Packet& pkt) {
  ++counters_.rx_configure_requests;
  const auto options = parse_options(pkt.data);
  if (!options) return;  // malformed: silently discard

  switch (state_) {
    case State::kInitial:
    case State::kStarting:
      return;  // lower layer not up
    case State::kClosed:
      action_sta(pkt.identifier);
      return;
    case State::kClosing:
    case State::kStopping:
      return;  // ignore while terminating
    default:
      break;
  }

  ConfigureVerdict verdict = judge_configure_request(*options);

  // Max-Failure (RFC 1661 §4.6): after `max_failure` consecutive Naks the
  // peer is clearly not converging toward our hints — escalate to
  // Configure-Reject so it drops the contested options instead of looping.
  if (!verdict.ack && verdict.response_code == Code::kConfigureNak) {
    if (naks_sent_ >= timeouts_.max_failure) {
      ++counters_.nak_loops_broken;
      verdict.response_code = Code::kConfigureReject;
    } else {
      ++naks_sent_;
    }
  } else if (verdict.ack) {
    naks_sent_ = 0;
  }

  if (state_ == State::kStopped) action_irc(TimeoutKind::kConfigure);

  // RFC 1661's Opened-row action order is tld, scr, THEN sca/scn: when a
  // renegotiation begins, our new Configure-Request must precede the
  // Ack/Nak on the wire. Answer-first looks harmless but livelocks: the
  // peer (in Ack-Sent) processes our Ack, opens, and then treats our
  // trailing Configure-Request as yet another renegotiation — two Opened
  // peers ping-pong down/up forever off a single spurious request.
  if (state_ == State::kOpened) {
    this_layer_down();
    action_irc(TimeoutKind::kConfigure);
    action_scr();
  }

  if (verdict.ack) {
    // sca: echo the request's options back in a Configure-Ack.
    emit(Code::kConfigureAck, pkt.identifier, Bytes(pkt.data));
    switch (state_) {
      case State::kStopped:
        action_scr();
        enter(State::kAckSent);
        break;
      case State::kReqSent:
      case State::kAckSent:
        enter(State::kAckSent);
        break;
      case State::kAckRcvd:
        this_layer_up();
        enter(State::kOpened);
        break;
      case State::kOpened:
        enter(State::kAckSent);
        break;
      default:
        break;
    }
  } else {
    emit(verdict.response_code, pkt.identifier, serialize_options(verdict.response_options));
    switch (state_) {
      case State::kStopped:
        action_scr();
        enter(State::kReqSent);
        break;
      case State::kReqSent:
      case State::kAckRcvd:
        break;  // remain
      case State::kAckSent:
      case State::kOpened:
        enter(State::kReqSent);
        break;
      default:
        break;
    }
  }
}

void Fsm::rcv_configure_ack(const Packet& pkt) {
  if (pkt.identifier != current_request_id_) return;  // not our request
  const auto options = parse_options(pkt.data);
  if (!options) return;

  switch (state_) {
    case State::kClosed:
    case State::kStopped:
      action_sta(pkt.identifier);
      break;
    case State::kReqSent:
      on_configure_ack(*options);
      action_irc(TimeoutKind::kConfigure);
      enter(State::kAckRcvd);
      break;
    case State::kAckRcvd:
      // Crossed Ack (x): restart.
      action_scr();
      enter(State::kReqSent);
      break;
    case State::kAckSent:
      on_configure_ack(*options);
      action_irc(TimeoutKind::kConfigure);
      this_layer_up();
      enter(State::kOpened);
      break;
    case State::kOpened:
      this_layer_down();
      action_irc(TimeoutKind::kConfigure);
      action_scr();
      enter(State::kReqSent);
      break;
    default:
      break;
  }
}

void Fsm::rcv_configure_nak_rej(const Packet& pkt) {
  if (pkt.identifier != current_request_id_) return;
  const auto options = parse_options(pkt.data);
  if (!options) return;

  const bool is_nak = static_cast<Code>(pkt.code) == Code::kConfigureNak;

  // Max-Failure, receive side: every Nak re-initializes the restart counter,
  // so a peer that Naks forever would otherwise keep this automaton spinning
  // with no bound at all. Give up and stop after `max_failure` of them.
  if (is_nak && (state_ == State::kReqSent || state_ == State::kAckRcvd ||
                 state_ == State::kAckSent)) {
    if (++naks_received_ > timeouts_.max_failure) {
      ++counters_.nak_loops_broken;
      this_layer_finished();
      enter(State::kStopped);
      return;
    }
  }

  switch (state_) {
    case State::kClosed:
    case State::kStopped:
      action_sta(pkt.identifier);
      return;
    case State::kReqSent:
      if (is_nak)
        on_configure_nak(*options);
      else
        on_configure_reject(*options);
      action_irc(TimeoutKind::kConfigure);
      action_scr();
      enter(State::kReqSent);
      return;
    case State::kAckRcvd:
      action_scr();
      enter(State::kReqSent);
      return;
    case State::kAckSent:
      if (is_nak)
        on_configure_nak(*options);
      else
        on_configure_reject(*options);
      action_irc(TimeoutKind::kConfigure);
      action_scr();
      enter(State::kAckSent);
      return;
    case State::kOpened:
      this_layer_down();
      action_irc(TimeoutKind::kConfigure);
      action_scr();
      enter(State::kReqSent);
      return;
    default:
      return;
  }
}

void Fsm::rcv_terminate_request(const Packet& pkt) {
  switch (state_) {
    case State::kClosed:
    case State::kStopped:
    case State::kClosing:
    case State::kStopping:
      action_sta(pkt.identifier);
      break;
    case State::kReqSent:
    case State::kAckRcvd:
    case State::kAckSent:
      action_sta(pkt.identifier);
      enter(State::kReqSent);
      break;
    case State::kOpened:
      this_layer_down();
      action_zrc();
      action_sta(pkt.identifier);
      enter(State::kStopping);
      break;
    default:
      break;
  }
}

void Fsm::rcv_terminate_ack() {
  switch (state_) {
    case State::kClosing:
      this_layer_finished();
      enter(State::kClosed);
      break;
    case State::kStopping:
      this_layer_finished();
      enter(State::kStopped);
      break;
    case State::kAckRcvd:
      enter(State::kReqSent);
      break;
    case State::kOpened:
      this_layer_down();
      action_irc(TimeoutKind::kConfigure);
      action_scr();
      enter(State::kReqSent);
      break;
    default:
      break;
  }
}

void Fsm::rcv_unknown_code(const Packet& pkt) {
  switch (state_) {
    case State::kInitial:
    case State::kStarting:
      break;
    default:
      action_scj(pkt);
      break;
  }
}

void Fsm::rcv_echo_discard(const Packet& pkt) {
  // RXR: only meaningful in Opened; Echo-Request gets a reply.
  if (state_ != State::kOpened) return;
  if (static_cast<Code>(pkt.code) == Code::kEchoRequest) {
    emit(Code::kEchoReply, pkt.identifier, Bytes(pkt.data));
  }
  // Echo-Reply / Discard-Request: consumed silently here; LCP overrides
  // on_extra_packet for magic-number loopback detection.
}

}  // namespace p5::ppp
