# Empty dependencies file for test_lqm.
# This may be replaced when dependencies are built.
