// Per-connection transport telemetry, following the linecard::Telemetry
// discipline: relaxed atomics with exactly one writer (the event-loop
// thread), read from any thread via a stabilising double-read snapshot.
//
// Loss accounting is exact at the wire-chunk level:
//
//     frames_in == frames_out + frames_lost + (chunks still queued)
//
// Every chunk the tunnel accepts from its bound object (frames_in) is
// either fully written to the socket (frames_out) or counted lost
// (frames_lost: dropped with the write queue at disconnect, or a datagram
// the kernel refused). Once the connection is drained the queue term is
// zero and the invariant holds with equality — the transport never loses a
// chunk silently.
#pragma once

#include <atomic>

#include "common/types.hpp"

namespace p5::transport {

/// Plain-value copy of one connection's counters (or an aggregate roll-up).
struct TransportSnapshot {
  // TX path: bound object -> send queue -> wire.
  u64 frames_in = 0;   ///< chunks accepted for transmission
  u64 bytes_in = 0;    ///< their payload octets (length prefix excluded)
  u64 frames_out = 0;  ///< chunks fully written to the socket
  u64 bytes_out = 0;
  u64 frames_lost = 0;  ///< accepted chunks dropped before full transmission

  // RX path: wire -> bound object.
  u64 frames_rcvd = 0;
  u64 bytes_rcvd = 0;
  u64 rx_drops = 0;  ///< received chunks the bound object refused (ring full)

  // Connection lifecycle.
  u64 connects = 0;       ///< first-time establishments (connect or accept)
  u64 reconnects = 0;     ///< re-establishments after a drop
  u64 disconnects = 0;    ///< connection losses (error, EOF, idle, kill)
  u64 backoff_waits = 0;  ///< reconnect backoff sleeps taken
  u64 idle_timeouts = 0;  ///< connections dropped for receive silence

  // Flow control and framing health.
  u64 backpressure_stalls = 0;  ///< pump deferred: write queue at watermark
  u64 send_queue_hwm = 0;       ///< peak queued send bytes observed
  u64 proto_errors = 0;         ///< bad length prefixes / unusable datagrams

  // Batched-I/O amortisation (scatter-gather TX, recvmmsg RX, ChunkPool).
  u64 tx_syscalls = 0;    ///< send/sendmsg/sendmmsg calls that reached the kernel
  u64 rx_syscalls = 0;    ///< recv/recvmmsg calls that returned data
  u64 pool_recycled = 0;  ///< chunk buffers served from the pool free list

  /// Wire chunks moved per socket syscall, both directions — the figure the
  /// batching exists to raise (1.0 is the old frame-at-a-time transport).
  [[nodiscard]] double frames_per_syscall() const {
    const u64 io = tx_syscalls + rx_syscalls;
    const u64 frames = frames_out + frames_rcvd;
    return io == 0 ? 0.0 : static_cast<double>(frames) / static_cast<double>(io);
  }

  bool operator==(const TransportSnapshot&) const = default;
  TransportSnapshot& operator+=(const TransportSnapshot& o);
};

/// Live counters for one tunnel/connection. Single writer (the loop
/// thread), any number of readers.
class TransportTelemetry {
 public:
  void on_send_enqueued(std::size_t payload_bytes) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  void on_sent(std::size_t payload_bytes) {
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    bytes_out_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  void add_frames_lost(u64 n) {
    if (n) frames_lost_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_received(std::size_t payload_bytes) {
    frames_rcvd_.fetch_add(1, std::memory_order_relaxed);
    bytes_rcvd_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  void rx_drop() { rx_drops_.fetch_add(1, std::memory_order_relaxed); }
  void on_connect(bool reconnect) {
    (reconnect ? reconnects_ : connects_).fetch_add(1, std::memory_order_relaxed);
  }
  void on_disconnect() { disconnects_.fetch_add(1, std::memory_order_relaxed); }
  void backoff_wait() { backoff_waits_.fetch_add(1, std::memory_order_relaxed); }
  void idle_timeout() { idle_timeouts_.fetch_add(1, std::memory_order_relaxed); }
  void backpressure_stall() { backpressure_stalls_.fetch_add(1, std::memory_order_relaxed); }
  void note_queue_depth(std::size_t bytes) { raise(send_queue_hwm_, bytes); }
  void proto_error() { proto_errors_.fetch_add(1, std::memory_order_relaxed); }
  void tx_syscall() { tx_syscalls_.fetch_add(1, std::memory_order_relaxed); }
  void rx_syscall() { rx_syscalls_.fetch_add(1, std::memory_order_relaxed); }
  void pool_recycled() { pool_recycled_.fetch_add(1, std::memory_order_relaxed); }

  /// Consistent point-in-time copy: reads the block twice until two
  /// consecutive reads agree (bounded retries; the counters are monotonic,
  /// so even the fallback is a valid momentary mixture, never garbage).
  [[nodiscard]] TransportSnapshot snapshot() const;

 private:
  static void raise(std::atomic<u64>& hwm, u64 v) {
    u64 cur = hwm.load(std::memory_order_relaxed);
    while (v > cur && !hwm.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] TransportSnapshot read_once() const;

  std::atomic<u64> frames_in_{0};
  std::atomic<u64> bytes_in_{0};
  std::atomic<u64> frames_out_{0};
  std::atomic<u64> bytes_out_{0};
  std::atomic<u64> frames_lost_{0};
  std::atomic<u64> frames_rcvd_{0};
  std::atomic<u64> bytes_rcvd_{0};
  std::atomic<u64> rx_drops_{0};
  std::atomic<u64> connects_{0};
  std::atomic<u64> reconnects_{0};
  std::atomic<u64> disconnects_{0};
  std::atomic<u64> backoff_waits_{0};
  std::atomic<u64> idle_timeouts_{0};
  std::atomic<u64> backpressure_stalls_{0};
  std::atomic<u64> send_queue_hwm_{0};
  std::atomic<u64> proto_errors_{0};
  std::atomic<u64> tx_syscalls_{0};
  std::atomic<u64> rx_syscalls_{0};
  std::atomic<u64> pool_recycled_{0};
};

}  // namespace p5::transport
