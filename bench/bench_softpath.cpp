// Old-vs-new throughput of the word-parallel software fast path
// (src/fastpath) against the seed-era scalar reference paths preserved in
// fastpath/scalar_ref.hpp:
//
//   * CRC FCS-16/FCS-32: byte-at-a-time table loop vs slicing-by-8;
//   * HDLC stuffing/destuffing: octet loop vs the runtime-dispatched escape
//     engine (scalar / SWAR / SSE2 / SSSE3 / AVX2), with one row per tier
//     this host can pin plus the production auto-dispatch row;
//   * framing: encapsulate+stuff+copy (3 allocations) vs fused zero-alloc
//     encode_into, and a 32-frame batched encode (encode_batch_into) that
//     amortises per-frame setup — the small-frame case;
//   * SONET scramblers: bit-serial loops vs table / byte-parallel stepping.
//
// Swept across escape densities {0, 1/128, 0.25, 1.0} and payload sizes
// {64 B, 1500 B, 9 KB}. Results go to stdout and to a machine-readable
// BENCH_softpath.json (format documented in README.md) so future PRs can
// track the perf trajectory; scripts/bench_compare.py gates regressions
// against the committed baseline.
//
// Row semantics: `frame_bytes` is always the *payload* size; `wire_bytes`
// is the stuffed/framed size the kernel actually moves (destuff throughput
// is measured over wire octets consumed). `dispatch` names the escape-engine
// tier the row ran; `pinned` rows force a lower tier for diagnosis — the
// speedup guarantees apply to the auto-dispatch rows only (a pinned SWAR
// row at high density is *expected* to trail the scalar seed; that regression
// is exactly why the dispatcher exists).
//
// Usage: bench_softpath [--smoke] [--quick] [--out <path>]
//   --smoke  tiny iteration counts (CI bit-rot check, label `bench`)
//   --quick  short timed windows (~10x faster full sweep; used by the
//            check.sh / CI bench_compare gate, where the *ratios* matter)
//   --out    JSON output path (default BENCH_softpath.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crc/crc_table.hpp"
#include "fastpath/escape_simd.hpp"
#include "fastpath/scalar_ref.hpp"
#include "hdlc/frame.hpp"
#include "hdlc/stuffing.hpp"
#include "sonet/scrambler.hpp"

namespace p5::bench {
namespace {

struct Row {
  std::string kernel;        // e.g. "crc32", "stuff", "frame_batch"
  std::size_t frame_bytes;   // payload size driven through the kernel
  double escape_density;     // fraction of escape-class octets in the payload
  std::string dispatch;      // engine/tier that produced new_mb_s
  bool pinned = false;       // true: tier forced below auto-dispatch (diagnostic)
  std::size_t wire_bytes;    // stuffed/framed size the kernel moves
  double old_mb_s;           // seed scalar path
  double new_mb_s;           // fastpath
  [[nodiscard]] double speedup() const { return old_mb_s > 0 ? new_mb_s / old_mb_s : 0.0; }
};

double g_min_seconds = 0.04;  // per window; --smoke drops it to ~0
int g_repeats = 3;            // best-of-N windows; --smoke drops to 1

/// Run `fn` (which processes `bytes_per_call` octets) in g_repeats timed
/// windows and return the best MB/s (1e6 bytes per second). Best-of-N damps
/// scheduler/frequency noise symmetrically for the old and new paths, so the
/// reported speedups are stable run to run.
double measure_mb_s(std::size_t bytes_per_call, const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  // Warm-up run (also wakes lazily-built tables).
  fn();
  double best = 0.0;
  for (int rep = 0; rep < g_repeats; ++rep) {
    u64 calls = 0;
    const auto start = clock::now();
    double elapsed = 0.0;
    do {
      fn();
      ++calls;
      elapsed = std::chrono::duration<double>(clock::now() - start).count();
    } while (elapsed < g_min_seconds);
    const double mb_s =
        static_cast<double>(calls) * static_cast<double>(bytes_per_call) / elapsed / 1e6;
    if (mb_s > best) best = mb_s;
  }
  return best;
}

void print_row(const Row& r) {
  std::printf("  %-12s %6zu B (wire %6zu)  density %-8.4g  %-10s old %9.1f MB/s  new %9.1f MB/s  %5.2fx%s\n",
              r.kernel.c_str(), r.frame_bytes, r.wire_bytes, r.escape_density,
              r.dispatch.c_str(), r.old_mb_s, r.new_mb_s, r.speedup(),
              r.pinned ? "  [pinned]" : "");
}

bool write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"softpath\",\n  \"unit\": \"MB/s\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"frame_bytes\": " << r.frame_bytes
        << ", \"escape_density\": " << r.escape_density << ", \"dispatch\": \"" << r.dispatch
        << "\", \"pinned\": " << (r.pinned ? "true" : "false")
        << ", \"wire_bytes\": " << r.wire_bytes << ", \"old_mb_s\": " << r.old_mb_s
        << ", \"new_mb_s\": " << r.new_mb_s << ", \"speedup\": " << r.speedup() << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

volatile u32 g_sink;  // defeat dead-code elimination without perturbing loops

}  // namespace

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_softpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_min_seconds = 0.01;
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  if (smoke) {
    g_min_seconds = 0.0;  // one timed call per window
    g_repeats = 1;
  }

  banner("bench_softpath — word-parallel software fast path, old vs new",
         "host-side acceleration (no paper artifact); mirrors the paper's 8->32-bit "
         "width-scaling idea in software");
  std::printf("escape-engine dispatch: detected %s, auto tier %s\n",
              fastpath::to_string(fastpath::detected_tier()),
              fastpath::to_string(fastpath::best_tier()));

  const fastpath::scalar::ByteTableCrc old_crc32(crc::kFcs32);
  const fastpath::scalar::ByteTableCrc old_crc16(crc::kFcs16);
  const hdlc::Accm accm = hdlc::Accm::sonet();
  const fastpath::EscapeTier auto_tier = fastpath::best_tier();
  const std::size_t sizes[] = {64, 1500, 9216};
  const double densities[] = {0.0, 1.0 / 128, 0.25, 1.0};
  std::vector<Row> rows;

  for (const std::size_t size : sizes) {
    for (const double density : densities) {
      const Bytes payload = density_payload(size, density, 42);
      const Bytes stuffed = hdlc::stuff(payload);

      // --- CRC (input-independent of density, but swept uniformly so every
      // row of the JSON has the same shape) ---
      rows.push_back({"crc32", size, density, "slice8", false, size,
                      measure_mb_s(size, [&] { g_sink = old_crc32.crc(payload); }),
                      measure_mb_s(size, [&] { g_sink = crc::fcs32().crc(payload); })});
      rows.push_back({"crc16", size, density, "slice8", false, size,
                      measure_mb_s(size, [&] { g_sink = old_crc16.crc(payload); }),
                      measure_mb_s(size, [&] { g_sink = crc::fcs16().crc(payload); })});

      // --- stuffing (throughput in *payload* octets in, wire octets out):
      // one auto-dispatch row plus one pinned row per lower tier ---
      const double stuff_old = measure_mb_s(
          size, [&] { g_sink = static_cast<u32>(fastpath::scalar::stuff(payload).size()); });
      const double destuff_old = measure_mb_s(stuffed.size(), [&] {
        g_sink = static_cast<u32>(fastpath::scalar::destuff(stuffed).first.size());
      });
      for (const fastpath::EscapeTier tier : fastpath::available_tiers()) {
        const bool pinned = tier != auto_tier;
        const fastpath::EscapeEngine eng(accm, tier);
        rows.push_back({"stuff", size, density, fastpath::to_string(tier), pinned,
                        stuffed.size(), stuff_old, measure_mb_s(size, [&] {
                          Bytes out;
                          out.reserve(2 * payload.size() + fastpath::kStuffSlack);
                          eng.stuff_append(out, payload);
                          g_sink = static_cast<u32>(out.size());
                        })});
        rows.push_back({"destuff", size, density, fastpath::to_string(tier), pinned,
                        stuffed.size(), destuff_old, measure_mb_s(stuffed.size(), [&] {
                          Bytes out;
                          out.reserve(stuffed.size() + fastpath::kStuffSlack);
                          g_sink = eng.destuff_append(out, stuffed) ? 1u : 0u;
                          g_sink = static_cast<u32>(out.size());
                        })});
      }

      // --- full framer: seed three-buffer path vs fused zero-alloc path ---
      hdlc::FrameConfig cfg;
      cfg.max_payload = 9216;
      hdlc::FrameArena arena;
      const std::size_t frame_wire = hdlc::build_wire_frame(cfg, 0x0021, payload).size();
      rows.push_back(
          {"frame", size, density, fastpath::to_string(auto_tier), false, frame_wire,
           measure_mb_s(size,
                        [&] {
                          const Bytes content = hdlc::encapsulate(cfg, 0x0021, payload);
                          Bytes wire;
                          wire.reserve(content.size() + 16);
                          wire.push_back(hdlc::kFlag);
                          const Bytes st = fastpath::scalar::stuff(content, cfg.accm);
                          append(wire, st);
                          wire.push_back(hdlc::kFlag);
                          g_sink = static_cast<u32>(wire.size());
                        }),
           measure_mb_s(size, [&] {
             g_sink = static_cast<u32>(hdlc::encode_into(arena, cfg, 0x0021, payload).size());
           })});

      // --- batched framer: 32 frames per call through encode_batch_into,
      // one reservation + one engine/CRC setup for the burst — the
      // small-frame amortisation the line-card fabric uses ---
      constexpr std::size_t kBurst = 32;
      std::vector<Bytes> burst;
      std::vector<hdlc::BatchFrame> bframes;
      for (std::size_t f = 0; f < kBurst; ++f) {
        burst.push_back(density_payload(size, density, 500 + f));
        bframes.push_back({0x0021, burst.back(), {}, {}});
      }
      hdlc::FrameArena batch_arena;
      const std::size_t batch_wire = hdlc::encode_batch_into(batch_arena, cfg, bframes).size();
      rows.push_back(
          {"frame_batch", size, density, fastpath::to_string(auto_tier), false, batch_wire,
           measure_mb_s(kBurst * size,
                        [&] {
                          u32 total = 0;
                          for (const Bytes& p : burst) {
                            const Bytes content = hdlc::encapsulate(cfg, 0x0021, p);
                            Bytes wire;
                            wire.reserve(content.size() + 16);
                            wire.push_back(hdlc::kFlag);
                            const Bytes st = fastpath::scalar::stuff(content, cfg.accm);
                            append(wire, st);
                            wire.push_back(hdlc::kFlag);
                            total += static_cast<u32>(wire.size());
                          }
                          g_sink = total;
                        }),
           measure_mb_s(kBurst * size, [&] {
             g_sink = static_cast<u32>(hdlc::encode_batch_into(batch_arena, cfg, bframes).size());
           })});
    }

    // --- scramblers (density-independent: one row per size) ---
    Bytes buf = density_payload(size, 0.0, 7);
    u8 lfsr = 0x7F;
    sonet::FrameScrambler frame_scr;
    rows.push_back({"scramble_x7", size, 0.0, "table", false, size,
                    measure_mb_s(size,
                                 [&] {
                                   for (u8& b : buf)
                                     b ^= fastpath::scalar::frame_keystream_bitserial(lfsr);
                                 }),
                    measure_mb_s(size, [&] { frame_scr.apply(buf, 0, buf.size()); })});
    u64 hist = 0;
    sonet::SelfSyncScrambler43 selfsync;
    rows.push_back({"scramble_x43", size, 0.0, "byte-parallel", false, size,
                    measure_mb_s(size,
                                 [&] {
                                   for (u8& b : buf)
                                     b = fastpath::scalar::selfsync_scramble_bitserial(hist, b);
                                 }),
                    measure_mb_s(size, [&] { selfsync.scramble_in_place(buf); })});
  }

  for (const Row& r : rows) print_row(r);
  if (!write_json(rows, out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)%s\n", out_path.c_str(), rows.size(),
              smoke ? " [smoke mode: timings are not meaningful]" : "");

  // Headline numbers the acceptance criteria track.
  for (const Row& r : rows) {
    if (r.pinned) continue;
    if (r.frame_bytes == 1500 && r.escape_density > 0.0 && r.escape_density < 0.01 &&
        (r.kernel == "crc32" || r.kernel == "stuff"))
      we_measure(r.kernel + " speedup at 1500 B, density 1/128: " +
                 std::to_string(r.speedup()) + "x");
    if (r.frame_bytes == 1500 && r.escape_density == 0.25 && r.kernel == "destuff")
      we_measure("destuff speedup at 1500 B, density 0.25 (" + r.dispatch +
                 "): " + std::to_string(r.speedup()) + "x");
  }
  return 0;
}

}  // namespace p5::bench

int main(int argc, char** argv) { return p5::bench::run(argc, argv); }
