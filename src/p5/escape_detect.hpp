// Cycle-accurate Escape Detect unit — the receive-side byte sorter (paper
// Section 3, Figure 6). Escape markers are deleted and the following octet
// is XORed with 0x20; the resulting "bubbles" on the channel are closed by
// compacting the survivors through a 2*lanes-octet resynchronisation queue.
// An escape marker in the last lane straddles the word boundary via the
// pending flip-flop. A dangling escape at EOF marks the frame aborted
// (RFC 1662: an invalid escape sequence kills the frame).
#pragma once

#include <deque>

#include "common/types.hpp"
#include "rtl/fifo.hpp"
#include "rtl/module.hpp"
#include "rtl/stats.hpp"
#include "rtl/word.hpp"

namespace p5::core {

class EscapeDetect final : public rtl::Module {
 public:
  EscapeDetect(std::string name, unsigned lanes, rtl::Fifo<rtl::Word>& in,
               rtl::Fifo<rtl::Word>& out);

  void eval() override;
  void commit() override;

  [[nodiscard]] const rtl::StageStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_capacity() const { return 2u * lanes_; }
  [[nodiscard]] std::size_t peak_queue_occupancy() const { return peak_occ_; }
  /// Current queue occupancy (for cycle-by-cycle traces).
  [[nodiscard]] std::size_t queue_occupancy() const { return queue_.size(); }
  [[nodiscard]] u64 escapes_removed() const { return escapes_; }
  [[nodiscard]] u64 aborted_frames() const { return aborts_; }

 private:
  struct Stage {
    rtl::Word word;
    bool valid = false;
  };

  unsigned lanes_;
  rtl::Fifo<rtl::Word>& in_;
  rtl::Fifo<rtl::Word>& out_;

  Stage s1_, s2_;
  bool pending_ = false;  ///< escape marker seen as the last octet of a word
  std::deque<u8> queue_;
  bool queue_sof_ = false;
  bool draining_eof_ = false;
  bool abort_at_eof_ = false;

  Stage s1_next_, s2_next_;
  bool pending_next_ = false;
  std::deque<u8> queue_next_;
  bool queue_sof_next_ = false;
  bool draining_next_ = false;
  bool abort_next_ = false;

  rtl::StageStats stats_;
  std::size_t peak_occ_ = 0;
  u64 escapes_ = 0;
  u64 aborts_ = 0;
};

}  // namespace p5::core
