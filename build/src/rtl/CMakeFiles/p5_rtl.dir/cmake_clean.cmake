file(REMOVE_RECURSE
  "CMakeFiles/p5_rtl.dir/vcd.cpp.o"
  "CMakeFiles/p5_rtl.dir/vcd.cpp.o.d"
  "CMakeFiles/p5_rtl.dir/word.cpp.o"
  "CMakeFiles/p5_rtl.dir/word.cpp.o.d"
  "libp5_rtl.a"
  "libp5_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
