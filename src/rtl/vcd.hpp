// Value-Change-Dump (IEEE 1364 §18) waveform writer for the cycle-accurate
// model: registered signals are sampled once per clock and written in
// standard VCD so any waveform viewer (GTKWave etc.) can inspect P5 pipeline
// behaviour — occupancies, valids, handshakes — the way the paper's authors
// would have eyeballed their RTL simulations.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace p5::rtl {

class VcdWriter {
 public:
  /// `timescale_ns`: nanoseconds per clock cycle (12.8 ns at 78.125 MHz).
  explicit VcdWriter(std::string top_module = "p5", double timescale_ns = 12.8);

  /// Register a signal before the first sample. `getter` is invoked at each
  /// sample point; only changes are written.
  void add_signal(const std::string& name, unsigned width, std::function<u64()> getter);

  /// Sample all signals at the given cycle.
  void sample(u64 cycle);

  /// Complete VCD text (header + value changes so far).
  [[nodiscard]] std::string str() const;

  /// Write to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  [[nodiscard]] std::size_t signal_count() const { return signals_.size(); }

 private:
  struct Signal {
    std::string name;
    unsigned width;
    std::function<u64()> getter;
    std::string id;     ///< VCD short identifier
    u64 last = ~u64{0};
    bool ever_sampled = false;
  };

  static std::string make_id(std::size_t index);

  std::string top_;
  double timescale_ns_;
  std::vector<Signal> signals_;
  std::ostringstream body_;
  bool header_done_ = false;
};

}  // namespace p5::rtl
