# Empty dependencies file for p5_crc.
# This may be replaced when dependencies are built.
