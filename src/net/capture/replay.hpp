// TraceSource — a pcap as a workload.
//
// Replays the records of a classic pcap into any of the stack's submission
// paths, so measured packet mixes (or this repo's own recorded runs) drive
// the pipeline instead of synthetic IMIX. The sink is a plain callable
// `bool(u16 protocol, BytesView payload)` returning false on backpressure;
// adapters below wrap the three real submission surfaces:
//
//   * make_endpoint_sink — SonetEndpoint::submit_datagram (cycle P5 and
//     FastP5Endpoint alike, and therefore Tunnel-bound endpoints: replaying
//     into a tunnel IS replaying into its endpoint).
//   * make_channel_sink — a standalone linecard::Channel's source ring.
//
// Two pacings: kAfap offers records as fast as the sink takes them (the
// bench posture), kTimed replays the trace's own inter-packet gaps scaled
// by time_scale (the interop posture — a 10s capture replays in 10s, or in
// 1s at time_scale 10). A record the sink refuses parks in a one-record
// pending slot and is re-offered first on the next pump, so backpressure
// delays the trace rather than dropping from it — delivery stays exact and
// in order, which the replay-vs-direct-injection equivalence test relies on.
//
// The trace can be an in-memory record vector or a streaming PcapFileReader
// (bounded memory: one parked record plus one in flight, regardless of
// trace size).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "linecard/frame_desc.hpp"
#include "net/capture/pcap.hpp"

namespace p5::net::capture {

enum class Pacing {
  kAfap,   ///< offer as fast as the sink accepts
  kTimed,  ///< honour the trace's inter-record gaps (scaled)
};

struct ReplayStats {
  u64 offered = 0;    ///< sink invocations (including re-offers)
  u64 delivered = 0;  ///< records the sink accepted
  u64 deferred = 0;   ///< refusals parked for re-offer (never dropped)
  u64 malformed = 0;  ///< records too short for their linktype framing
};

class TraceSource {
 public:
  /// `bool(protocol, payload)` — false means "not now", the record is
  /// re-offered on the next pump.
  using Sink = std::function<bool(u16 protocol, BytesView payload)>;

  /// Replay an in-memory trace (e.g. CaptureTap::take_records()).
  TraceSource(PcapMeta meta, std::vector<PcapRecord> records);
  TraceSource() = default;

  /// Stream the trace from a file instead. False: unreadable / not a pcap.
  [[nodiscard]] bool open(const std::string& path);

  void set_pacing(Pacing p) { pacing_ = p; }
  /// kTimed speed-up factor: 10.0 replays a 10 s capture in 1 s.
  void set_time_scale(double s) { time_scale_ = s > 0.0 ? s : 1.0; }

  /// Offer due records to `sink`, at most `budget` deliveries. `now_ns` is
  /// the caller's clock (monotonic; only deltas matter — the first pump
  /// anchors the trace's epoch). Returns records delivered this call.
  std::size_t pump(u64 now_ns, std::size_t budget, const Sink& sink);

  /// Trace exhausted and nothing parked.
  [[nodiscard]] bool done() const { return exhausted_ && !pending_; }

  [[nodiscard]] const ReplayStats& stats() const { return stats_; }
  [[nodiscard]] const PcapMeta& meta() const { return meta_; }

  /// How a record's bytes become (protocol, payload) for this linktype:
  /// kLinkPpp strips the ff-03 address/control (if present) and the be16
  /// protocol field; raw-IP and everything else pass through as IPv4/IPv6
  /// by version nibble. Exposed so direct-injection tests share the exact
  /// mapping replay uses.
  [[nodiscard]] static std::optional<std::pair<u16, BytesView>> classify(
      u32 linktype, BytesView data);

 private:
  struct Pending {
    u16 protocol = 0;
    u64 ts_ns = 0;
    Bytes payload;
  };

  [[nodiscard]] bool load_next();  ///< fill pending_ from the trace

  PcapMeta meta_;
  std::vector<PcapRecord> records_;
  std::size_t index_ = 0;
  PcapFileReader reader_;
  bool streaming_ = false;
  bool exhausted_ = false;

  Pacing pacing_ = Pacing::kAfap;
  double time_scale_ = 1.0;
  bool anchored_ = false;
  u64 epoch_now_ns_ = 0;    ///< caller clock at first pump
  u64 epoch_trace_ns_ = 0;  ///< first record's timestamp

  std::optional<Pending> pending_;
  ReplayStats stats_;
};

/// Sink adapter: any endpoint with `bool submit_datagram(u16, Bytes)` —
/// the SonetEndpoint interface at either tier, bound to a Tunnel or not.
template <class Endpoint>
[[nodiscard]] inline TraceSource::Sink make_endpoint_sink(Endpoint& ep) {
  return [&ep](u16 protocol, BytesView payload) {
    return ep.submit_datagram(protocol, Bytes(payload.begin(), payload.end()));
  };
}

/// Sink adapter: a standalone linecard::Channel's source ring. The ring
/// refusing (full) is the backpressure signal TraceSource parks on.
template <class Channel>
[[nodiscard]] inline TraceSource::Sink make_channel_sink(Channel& ch, u8 fabric_dest = 0,
                                                         u8 source_channel = 0) {
  return [&ch, fabric_dest, source_channel](u16 protocol, BytesView payload) {
    linecard::FrameDesc d;
    d.protocol = protocol;
    d.fabric_dest = fabric_dest;
    d.source_channel = source_channel;
    d.payload.assign(payload.begin(), payload.end());
    return ch.source_ring().try_push(std::move(d));
  };
}

}  // namespace p5::net::capture
