#include "netlist/circuits/p5_circuit.hpp"

#include <string>

#include "crc/crc_spec.hpp"
#include "netlist/circuits/control_circuits.hpp"
#include "netlist/circuits/crc_circuit.hpp"
#include "netlist/circuits/escape_circuits.hpp"
#include "netlist/circuits/oam_circuit.hpp"
#include "netlist/lut_mapper.hpp"

namespace p5::netlist::circuits {

AreaReport p5_system_report(unsigned lanes) {
  const unsigned width = lanes * 8;
  AreaReport report("P5 " + std::to_string(width) + "-bit system");

  auto add = [&report](const Netlist& nl) { report.add(nl.name(), map_to_luts(nl)); };

  // Transmitter: Control -> CRC unit -> Escape Generate -> flag insertion.
  add(make_tx_control_circuit(lanes));
  add(make_crc_unit_circuit(crc::kFcs32, lanes));
  add(make_escape_generate_circuit(lanes));
  add(make_flag_inserter_circuit(lanes));

  // Receiver: delineation -> Escape Detect -> CRC unit -> Control.
  add(make_flag_delineator_circuit(lanes));
  add(make_escape_detect_circuit(lanes));
  {
    // The RX CRC unit is a second instance of the same structure.
    Netlist rx_crc = make_crc_unit_circuit(crc::kFcs32, lanes);
    report.add("rx_" + rx_crc.name(), map_to_luts(rx_crc));
  }
  add(make_rx_control_circuit(lanes));

  // Protocol OAM: host bus width follows the datapath width.
  add(make_oam_circuit(width == 8 ? 8 : 32));

  return report;
}

AreaReport escape_generate_report(unsigned lanes) {
  const unsigned width = lanes * 8;
  AreaReport report("Escape Generate " + std::to_string(width) + "-bit module");
  const Netlist nl = make_escape_generate_circuit(lanes);
  report.add(nl.name(), map_to_luts(nl));
  return report;
}

}  // namespace p5::netlist::circuits
