// Differential conformance: the same seeded packet stream through all four
// datapath engines — scalar reference, SWAR fast path, runtime-dispatched
// SIMD escape engine, cycle-level P5 pipeline — with byte-exact agreement
// enforced at every layer by the DiffOracle. Any failure prints its case
// seed; replay with
//   P5_TEST_SEED=0x... ctest -R <test>      (see TESTING.md)
#include <gtest/gtest.h>

#include "fastpath/escape_simd.hpp"
#include "hdlc/stuffing.hpp"
#include "testing/diff_oracle.hpp"
#include "testing/property.hpp"

namespace p5::testing {
namespace {

// The headline sweep: 100k seeded packets (smoke mode) encoded and decoded
// through every engine, byte-exact end to end. P5_TEST_CASES scales it up
// for soak runs.
TEST(Conformance, HundredThousandPacketSmokeSweep) {
  DiffOracle oracle;  // default framing (FCS-32, uncompressed), 4 lanes
  PropertyOptions opt;
  opt.cases = 100'000;
  opt.seed = 0xC0FFEE01ull;
  opt.min_size = 0;
  opt.max_size = 64;
  const auto res = check_property("conformance_smoke", opt, [&](CaseContext& c) {
    const u16 protocol = gen_protocol(c.rng);
    const Bytes payload = gen_payload(c.rng, c.size);

    const auto enc = oracle.encode(protocol, payload);
    if (!enc.agree) return c.fail("encode: " + enc.diagnosis);

    const auto dec = oracle.decode(enc.stuffed);
    if (!dec.agree) return c.fail("decode: " + dec.diagnosis);
    if (!dec.ok) return c.fail("clean frame flagged as dangling-escape abort");
    if (dec.recovered != enc.content)
      return c.fail("round-trip did not restore the frame content");
  });
  EXPECT_TRUE(res.ok) << res.message;
  EXPECT_GE(res.cases_run, resolved_cases(100'000));
}

// Sweep the programmability knobs: every framing config (ACFC/PFC/FCS/ACCM)
// and datapath width the paper's OAM exposes, fresh oracle per case.
TEST(Conformance, FramingConfigAndLaneWidthSweep) {
  PropertyOptions opt;
  opt.cases = 800;
  opt.seed = 0xC0FFEE02ull;
  opt.min_size = 0;
  opt.max_size = 192;
  constexpr unsigned kLaneChoices[] = {1, 2, 4, 8};
  const auto res = check_property("conformance_configs", opt, [&](CaseContext& c) {
    const hdlc::FrameConfig cfg = gen_frame_config(c.rng);
    const unsigned lanes = kLaneChoices[c.rng.below(4)];
    DiffOracle oracle(cfg, lanes);

    const u16 protocol = gen_protocol(c.rng);
    const Bytes payload = gen_payload(c.rng, c.size);
    const auto enc = oracle.encode(protocol, payload);
    if (!enc.agree) return c.fail("encode: " + enc.diagnosis);
    const auto dec = oracle.decode(enc.stuffed);
    if (!dec.agree) return c.fail("decode: " + dec.diagnosis);
    if (!dec.ok || dec.recovered != enc.content)
      return c.fail("round-trip did not restore the frame content");
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// A stuffed body ending in a bare escape is RFC 1662's invalid sequence;
// every receive engine must call it an abort, and they must agree.
TEST(Conformance, DanglingEscapeVerdictIsUnanimous) {
  DiffOracle oracle;
  PropertyOptions opt;
  opt.cases = 2'000;
  opt.seed = 0xC0FFEE03ull;
  opt.max_size = 96;
  const auto res = check_property("conformance_dangling_escape", opt, [&](CaseContext& c) {
    Bytes stuffed = hdlc::stuff(gen_payload(c.rng, c.size));
    stuffed.push_back(hdlc::kEscape);
    const auto dec = oracle.decode(stuffed);
    if (!dec.agree) return c.fail(dec.diagnosis);
    if (dec.ok) return c.fail("dangling escape was not reported as an abort");
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// Whole clean wire streams — many frames, random inter-frame fill — must
// yield the identical accepted-frame sequence from the software stacks and
// the cycle-accurate P5 receiver, and nothing may be dropped.
TEST(Conformance, CleanMultiFrameStreamsDeliverEverythingEverywhere) {
  DiffOracle oracle;
  PropertyOptions opt;
  opt.cases = 300;
  opt.seed = 0xC0FFEE04ull;
  opt.min_size = 0;
  opt.max_size = 128;
  const auto res = check_property("conformance_receive", opt, [&](CaseContext& c) {
    Bytes wire(1 + c.rng.below(4), hdlc::kFlag);
    std::vector<DiffOracle::Delivery> sent;
    const std::size_t frames = 1 + c.rng.below(8);
    for (std::size_t f = 0; f < frames; ++f) {
      const u16 protocol = gen_protocol(c.rng);
      const Bytes payload = gen_payload(c.rng, c.size);
      append(wire, hdlc::build_wire_frame(oracle.config(), protocol, payload));
      sent.push_back({protocol, payload});
      for (u64 fill = c.rng.below(3); fill > 0; --fill) wire.push_back(hdlc::kFlag);
    }
    const auto rx = oracle.receive(wire);
    if (!rx.agree) return c.fail(rx.diagnosis);
    if (rx.delivered != sent)
      return c.fail("clean stream: delivered " + std::to_string(rx.delivered.size()) +
                    " frames, sent " + std::to_string(sent.size()));
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// The density estimator tiers per 16/32-byte window (clean / sparse /
// dense), so the adversarial input is a frame that flips density mid-frame:
// a clean head followed by an all-escape tail forces the kernel to cross
// from bulk-copy windows into fully-expanding ones (and vice versa) inside
// one frame, with the flip placed on, just before, and just after the
// window boundaries. Every such frame must round-trip byte-exact through
// all four engines.
TEST(Conformance, DensityFlipAdversarialFramesAgreeAcrossAllEngines) {
  DiffOracle oracle;

  std::vector<Bytes> payloads;
  // Flip points straddling the 16B SSE window, the 32B AVX2 window, the 64B
  // SSE2 dirty-window hysteresis run, and the SWAR word, inside frames up to
  // a little over two windows past the flip.
  constexpr std::size_t kFlips[] = {1, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65};
  constexpr u8 kDense[] = {hdlc::kFlag, hdlc::kEscape};
  for (const std::size_t flip : kFlips) {
    for (const std::size_t total : {flip + 1, flip + 16, flip + 80}) {
      for (const u8 dense : kDense) {
        // Clean head, dense tail.
        Bytes head_clean(total, 0x42);
        for (std::size_t i = flip; i < total; ++i) head_clean[i] = dense;
        payloads.push_back(std::move(head_clean));
        // Dense head, clean tail.
        Bytes head_dense(total, dense);
        for (std::size_t i = flip; i < total; ++i) head_dense[i] = 0x42;
        payloads.push_back(std::move(head_dense));
      }
      // Alternating 0x7E/0x7D burst tail after a clean head: consecutive
      // escape-class octets exercise the marker-chain resolution.
      Bytes burst(total, 0x13);
      for (std::size_t i = flip; i < total; ++i) burst[i] = (i & 1) ? hdlc::kEscape : hdlc::kFlag;
      payloads.push_back(std::move(burst));
    }
  }

  for (const Bytes& payload : payloads) {
    const auto enc = oracle.encode(0x0021, payload);
    ASSERT_TRUE(enc.agree) << "encode (" << payload.size() << "B): " << enc.diagnosis;
    const auto dec = oracle.decode(enc.stuffed);
    ASSERT_TRUE(dec.agree) << "decode (" << payload.size() << "B): " << dec.diagnosis;
    ASSERT_TRUE(dec.ok);
    ASSERT_EQ(dec.recovered, enc.content) << "round-trip failed at " << payload.size() << "B";
  }
}

// The same adversarial shapes through every tier this host can dispatch
// (scalar, SWAR, SSE2, SSSE3, AVX2 as available): each pinned-tier engine
// must reproduce the scalar reference byte-for-byte on both directions.
TEST(Conformance, DensityFlipFramesAgreeAtEveryDispatchTier) {
  const hdlc::Accm accm = hdlc::Accm::sonet();
  for (const fastpath::EscapeTier tier : fastpath::available_tiers()) {
    fastpath::EscapeEngine eng(accm, tier);
    for (const std::size_t flip : {3u, 16u, 29u, 64u}) {
      for (const u8 fill : {u8(hdlc::kFlag), u8(0x00)}) {
        Bytes payload(flip + 48, fill);
        for (std::size_t i = 0; i < flip; ++i) payload[i] = u8(0x40 + i);

        const Bytes want = fastpath::scalar::stuff(payload, accm);
        Bytes got;
        got.reserve(2 * payload.size() + fastpath::kStuffSlack);
        eng.stuff_append(got, payload);
        ASSERT_EQ(got, want) << "stuff tier " << fastpath::to_string(tier);

        const auto [back, ok] = fastpath::scalar::destuff(want);
        Bytes simd_back;
        simd_back.reserve(want.size() + fastpath::kStuffSlack);
        ASSERT_TRUE(eng.destuff_append(simd_back, want))
            << "destuff verdict, tier " << fastpath::to_string(tier);
        ASSERT_TRUE(ok);
        ASSERT_EQ(simd_back, back) << "destuff tier " << fastpath::to_string(tier);
        ASSERT_EQ(simd_back, payload);
      }
    }
  }
}

// ---- fifth leg: whole-endpoint device-tier equivalence ------------------

// A mixed-density packet batch for the tier-equivalence legs: uniform
// random, escape-saturated (worst case for the SIMD escape engine), clean
// ASCII (zero escapes — the fast path's best case), and byte-noise, with an
// occasional numbered-mode Control override thrown in.
std::vector<DiffOracle::TierPacket> gen_tier_batch(Xoshiro256& rng, std::size_t packets,
                                                   std::size_t max_size) {
  std::vector<DiffOracle::TierPacket> batch;
  batch.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    DiffOracle::TierPacket p;
    p.protocol = gen_protocol(rng);
    const std::size_t n = rng.below(max_size + 1);
    switch (rng.below(4)) {
      case 0:
        p.payload = gen_payload(rng, n);
        break;
      case 1:  // every octet needs stuffing
        p.payload.resize(n);
        for (auto& b : p.payload) b = rng.below(2) ? hdlc::kFlag : hdlc::kEscape;
        break;
      case 2:  // zero escapes
        p.payload.resize(n);
        for (auto& b : p.payload) b = static_cast<u8>(0x20 + rng.below(95));
        break;
      default:
        p.payload.resize(n);
        for (auto& b : p.payload) b = static_cast<u8>(rng.below(256));
        break;
    }
    if (rng.below(8) == 0) p.control = static_cast<u8>(rng.below(256));
    batch.push_back(std::move(p));
  }
  return batch;
}

// The tentpole guarantee: the batch FastP5Endpoint and the cycle-accurate
// P5SonetEndpoint are interchangeable on the wire. Every case transmits a
// mixed-density batch through both tiers and requires (a) the identical
// delineated stuffed-frame sequence on the SONET path, (b) identical
// deliveries and loss ledgers when each stream is cross-decoded by BOTH
// tiers' receivers, and (c) deliveries that match the submitted packets.
// Together with the fault sweep below this drives ~100k packets through
// whole endpoints of both tiers per run; P5_TEST_CASES scales it for soaks.
TEST(Conformance, DeviceTierEquivalenceCleanSweep) {
  PropertyOptions opt;
  opt.cases = 350;
  opt.seed = 0xC0FFEE10ull;
  opt.min_size = 0;
  opt.max_size = 300;
  constexpr std::size_t kPacketsPerCase = 250;
  u64 packets_run = 0;
  const auto res = check_property("tier_equivalence_clean", opt, [&](CaseContext& c) {
    const core::P5Config cfg;  // stock framing: FCS-32, MAPOS defaults
    const auto batch = gen_tier_batch(c.rng, kPacketsPerCase, std::min(c.size, cfg.max_payload));
    const auto r = DiffOracle::tier_equivalence(cfg, sonet::kSts3c, batch);
    packets_run += batch.size();
    if (!r.agree) return c.fail("tier equivalence: " + r.diagnosis);
    if (r.delivered.size() != batch.size())
      return c.fail("clean run delivered a different packet count than submitted");
    const auto& led = r.clean_ledger;
    if (led.counters.frames_bad + led.counters.addr_filtered + led.counters.malformed +
            led.counters.oversize + led.rx_overflow_drops !=
        0)
      return c.fail("clean run charged the loss ledger");
  });
  EXPECT_TRUE(res.ok) << res.message;
  EXPECT_GE(packets_run, resolved_cases(350) * kPacketsPerCase);
}

// Fault parity: a corrupted chunk stream fed identically to both tiers'
// receivers must produce the identical deliveries, the identical junk/abort
// verdicts and the identical resync points — the ledgers match field for
// field. Sweeps BER, byte slips, HDLC-abort overwrites, truncations,
// pointer-adjustment events and whole-chunk drops.
TEST(Conformance, DeviceTierEquivalenceUnderFaults) {
  PropertyOptions opt;
  opt.cases = 100;
  opt.seed = 0xC0FFEE11ull;
  opt.min_size = 0;
  opt.max_size = 300;
  constexpr std::size_t kPacketsPerCase = 150;
  const auto res = check_property("tier_equivalence_faults", opt, [&](CaseContext& c) {
    const core::P5Config cfg;
    const auto batch = gen_tier_batch(c.rng, kPacketsPerCase, std::min(c.size, cfg.max_payload));
    FaultSpec spec;
    spec.seed = c.seed ^ 0x5EEDull;
    switch (c.rng.below(6)) {
      case 0: spec.bit_error_rate = 1e-5 * static_cast<double>(1 + c.rng.below(20)); break;
      case 1: spec.slip_insert_rate = 0.05; spec.slip_delete_rate = 0.05; break;
      case 2: spec.abort_rate = 0.2; break;
      case 3: spec.truncate_rate = 0.05; break;
      case 4: spec.pointer_event_rate = 0.1; spec.sts = sonet::kSts3c; break;
      default:
        spec.drop_rate = 0.1;
        spec.bit_error_rate = 5e-5;
        break;
    }
    const auto r = DiffOracle::tier_equivalence(cfg, sonet::kSts3c, batch, &spec);
    if (!r.agree) return c.fail("tier equivalence under faults: " + r.diagnosis);
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// The oracle itself must be deterministic: the same base seed replays the
// identical stream (this is what makes P5_TEST_SEED reproduction trustworthy).
TEST(Conformance, SameSeedReplaysTheIdenticalStream) {
  auto run = [](u64 seed) {
    Xoshiro256 rng(seed);
    DiffOracle oracle;
    Bytes transcript;
    for (int i = 0; i < 50; ++i) {
      const auto enc = oracle.encode(gen_protocol(rng), gen_payload(rng, 1 + rng.below(64)));
      append(transcript, enc.wire);
    }
    return transcript;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace p5::testing
