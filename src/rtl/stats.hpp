// Cycle-level counters shared by pipeline stages: throughput, stalls, and
// latency tracking used by the E6 experiments.
#pragma once

#include "common/types.hpp"

namespace p5::rtl {

struct StageStats {
  u64 cycles = 0;          ///< cycles observed
  u64 busy_cycles = 0;     ///< cycles the stage moved data
  u64 stall_cycles = 0;    ///< cycles the stage had data but downstream was full
  u64 starve_cycles = 0;   ///< cycles the stage had no input
  u64 bytes = 0;           ///< payload octets moved

  [[nodiscard]] double utilisation() const {
    return cycles ? static_cast<double>(busy_cycles) / static_cast<double>(cycles) : 0.0;
  }
  [[nodiscard]] double bytes_per_cycle() const {
    return cycles ? static_cast<double>(bytes) / static_cast<double>(cycles) : 0.0;
  }
  /// Throughput in Gbps at the given clock (MHz).
  [[nodiscard]] double gbps(double clock_mhz) const {
    return bytes_per_cycle() * 8.0 * clock_mhz * 1e6 / 1e9;
  }

  void reset() { *this = StageStats{}; }
};

}  // namespace p5::rtl
