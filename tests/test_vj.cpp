// VJ header compression (RFC 1144): golden wire vectors for the change-mask
// encodings (special-D/special-I, explicit deltas, the 0x00 escape), slot
// sync and toss discipline, the compress→decompress identity pinned as a
// seeded property over realistic TCP flows, and the DiffOracle round-trip
// leg's loss guarantee (a desynced delivery must fail the TCP checksum).
// Finishes with two full endpoints negotiating VJ through IPCP and moving
// compressed TCP end to end.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "ppp/endpoint.hpp"
#include "ppp/protocols.hpp"
#include "ppp/vj.hpp"
#include "testing/diff_oracle.hpp"
#include "testing/property.hpp"

namespace p5::ppp::vj {
namespace {

constexpr u32 kSrc = 0x0A000001;  // 10.0.0.1
constexpr u32 kDst = 0x0A800001;  // 10.128.0.1

Bytes flow_packet(u16 ip_id, u32 seq, u32 ack, u16 window, u8 flags, BytesView payload) {
  TcpFields t;
  t.src_port = 1000;
  t.dst_port = 2000;
  t.seq = seq;
  t.ack = ack;
  t.flags = flags;
  t.window = window;
  return build_tcp_datagram(kSrc, kDst, ip_id, 64, t, payload);
}

Bytes ascii(const char* s) {
  const std::string str(s);
  return Bytes(str.begin(), str.end());
}

/// Validate the TCP checksum of an IPv4+TCP datagram (RFC 793 pseudo-header).
bool tcp_checksum_ok(const Bytes& dg) {
  const std::size_t ihl = static_cast<std::size_t>(dg[0] & 0x0F) * 4;
  u32 sum = 0;
  const auto add16 = [&](std::size_t off, std::size_t len) {
    std::size_t i = off;
    for (; i + 1 < off + len; i += 2) sum += static_cast<u32>((dg[i] << 8) | dg[i + 1]);
    if (i < off + len) sum += static_cast<u32>(dg[i]) << 8;
  };
  add16(12, 8);  // src + dst
  sum += 6;      // zero ‖ protocol
  sum += static_cast<u32>(dg.size() - ihl);
  add16(ihl, dg.size() - ihl);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<u16>(~sum) == 0;
}

TEST(VjSynthesis, DatagramHasValidChecksums) {
  const Bytes dg = flow_packet(100, 1000, 2000, 8192, kTcpAck, ascii("hello"));
  ASSERT_EQ(dg.size(), 45u);
  EXPECT_TRUE(tcp_checksum_ok(dg));
  // IP header checksum: the ones-complement sum of the header must be ~0.
  u32 sum = 0;
  for (std::size_t i = 0; i < 20; i += 2) sum += static_cast<u32>((dg[i] << 8) | dg[i + 1]);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  EXPECT_EQ(static_cast<u16>(sum), 0xFFFF);
}

// ---- golden wire vectors ----

TEST(VjGolden, FirstPacketIsUncompressedSlotSync) {
  Compressor comp;
  const Bytes dg = flow_packet(100, 1000, 2000, 8192, kTcpAck, ascii("hello"));
  const auto out = comp.compress(dg);
  EXPECT_EQ(out.cls, PacketClass::kUncompressedTcp);
  ASSERT_EQ(out.packet.size(), dg.size());
  // RFC 1144 §3.2.1: the original datagram, IP protocol field = slot id.
  EXPECT_EQ(out.packet[9], 0);  // slot 0
  Bytes restored = out.packet;
  restored[9] = 6;
  EXPECT_EQ(restored, dg);
}

TEST(VjGolden, UnidirectionalDataIsSpecialDMaskOnly) {
  Compressor comp;
  (void)comp.compress(flow_packet(100, 1000, 2000, 8192, kTcpAck, ascii("hello")));
  // Next segment: seq advanced by exactly the previous payload, ip_id by 1 —
  // the RFC's unidirectional-transfer special: one mask octet, the two TCP
  // checksum octets, payload. Nothing else.
  const Bytes dg2 = flow_packet(101, 1005, 2000, 8192, kTcpAck, ascii("world"));
  const auto out = comp.compress(dg2);
  ASSERT_EQ(out.cls, PacketClass::kCompressedTcp);
  ASSERT_EQ(out.packet.size(), 3u + 5u);
  EXPECT_EQ(out.packet[0], kSpecialD);  // 0x0F, no C bit (same slot as last)
  EXPECT_EQ(out.packet[1], dg2[20 + 16]);  // TCP checksum rides unmodified
  EXPECT_EQ(out.packet[2], dg2[20 + 17]);
  EXPECT_EQ(Bytes(out.packet.begin() + 3, out.packet.end()), ascii("world"));
}

TEST(VjGolden, EchoedInteractiveIsSpecialI) {
  Compressor comp;
  (void)comp.compress(flow_packet(100, 1000, 2000, 8192, kTcpAck, ascii("ab")));
  // seq and ack both advance by the previous payload length (2): terminal
  // echo. Special-I, again mask + checksum + payload only.
  const auto out = comp.compress(flow_packet(101, 1002, 2002, 8192, kTcpAck, ascii("cd")));
  ASSERT_EQ(out.cls, PacketClass::kCompressedTcp);
  ASSERT_EQ(out.packet.size(), 3u + 2u);
  EXPECT_EQ(out.packet[0], kSpecialI);  // 0x0B
}

TEST(VjGolden, PureAckCarriesOneByteAckDelta) {
  Compressor comp;
  (void)comp.compress(flow_packet(100, 1000, 2000, 8192, kTcpAck, ascii("hello")));
  const auto out = comp.compress(flow_packet(101, 1005, 2100, 8192, kTcpAck, {}));
  ASSERT_EQ(out.cls, PacketClass::kCompressedTcp);
  // seq advanced by the old payload (5) AND ack moved: S+A, not a special
  // (dseq != dack), so explicit deltas: ack first, then seq (RFC order
  // U, W, A, S as emitted; decoded the same way).
  ASSERT_EQ(out.packet.size(), 5u);
  EXPECT_EQ(out.packet[0], kNewS | kNewA);
  EXPECT_EQ(out.packet[3], 100);  // dack
  EXPECT_EQ(out.packet[4], 5);    // dseq
}

TEST(VjGolden, LargeDeltaUsesZeroEscape) {
  Compressor comp;
  (void)comp.compress(flow_packet(100, 1000, 2000, 8192, kTcpAck, {}));
  // Window jump of 1000: one-octet deltas only reach 255, so the encoding
  // escapes with 0x00 + 16-bit big-endian value (RFC 1144 §3.2.2).
  const auto out = comp.compress(flow_packet(101, 1000, 2000, 9192, kTcpAck, {}));
  ASSERT_EQ(out.cls, PacketClass::kCompressedTcp);
  ASSERT_EQ(out.packet.size(), 6u);
  EXPECT_EQ(out.packet[0], kNewW);
  EXPECT_EQ(out.packet[3], 0x00);
  EXPECT_EQ(out.packet[4], 0x03);
  EXPECT_EQ(out.packet[5], 0xE8);
}

TEST(VjGolden, PushBitTravelsInMask) {
  Compressor comp;
  (void)comp.compress(flow_packet(100, 1000, 2000, 8192, kTcpAck, ascii("hello")));
  const auto out =
      comp.compress(flow_packet(101, 1005, 2000, 8192, kTcpAck | kTcpPsh, ascii("xyz")));
  ASSERT_EQ(out.cls, PacketClass::kCompressedTcp);
  EXPECT_EQ(out.packet[0], kSpecialD | kPush);
}

TEST(VjGolden, SlotChangeCarriesConnectionByte) {
  Compressor comp;
  TcpFields other;
  other.src_port = 3000;
  other.dst_port = 4000;
  other.seq = 50;
  other.ack = 60;
  (void)comp.compress(flow_packet(100, 1000, 2000, 8192, kTcpAck, ascii("aa")));
  (void)comp.compress(build_tcp_datagram(kSrc + 1, kDst, 7, 64, other, ascii("bb")));
  // Back to the first flow: different slot than the last compressed packet,
  // so the C bit and the slot octet must appear.
  const auto out = comp.compress(flow_packet(101, 1002, 2000, 8192, kTcpAck, ascii("cc")));
  ASSERT_EQ(out.cls, PacketClass::kCompressedTcp);
  EXPECT_EQ(out.packet[0] & kNewC, kNewC);
  EXPECT_EQ(out.packet[1], 0);  // first flow lives in slot 0
}

TEST(VjGolden, CompSlotIdOffAlwaysCarriesConnectionByte) {
  VjConfig cfg;
  cfg.comp_slot_id = false;
  Compressor comp(cfg);
  (void)comp.compress(flow_packet(100, 1000, 2000, 8192, kTcpAck, ascii("aa")));
  const auto out = comp.compress(flow_packet(101, 1002, 2000, 8192, kTcpAck, ascii("bb")));
  ASSERT_EQ(out.cls, PacketClass::kCompressedTcp);
  EXPECT_EQ(out.packet[0] & kNewC, kNewC);
}

// ---- fallback discipline ----

TEST(VjFallback, ConnectionManagementGoesAsPlainIp) {
  Compressor comp;
  const auto syn = comp.compress(flow_packet(1, 0, 0, 8192, kTcpSyn, {}));
  EXPECT_EQ(syn.cls, PacketClass::kIp);
  const auto fin = comp.compress(flow_packet(2, 9, 9, 8192, kTcpFin | kTcpAck, {}));
  EXPECT_EQ(fin.cls, PacketClass::kIp);
  const auto rst = comp.compress(flow_packet(3, 9, 9, 8192, kTcpRst, {}));
  EXPECT_EQ(rst.cls, PacketClass::kIp);
  EXPECT_EQ(comp.stats().passthrough, 3u);
}

TEST(VjFallback, NonTcpGoesAsPlainIp) {
  Compressor comp;
  Bytes udp = flow_packet(1, 0, 0, 8192, kTcpAck, {});
  udp[9] = 17;  // protocol: UDP
  const auto out = comp.compress(udp);
  EXPECT_EQ(out.cls, PacketClass::kIp);
  EXPECT_EQ(out.packet, udp);
}

TEST(VjFallback, RetransmissionResyncsUncompressed) {
  Compressor comp;
  const Bytes dg = flow_packet(100, 1000, 2000, 8192, kTcpAck, ascii("hello"));
  (void)comp.compress(dg);
  // Identical header progression (nothing moved): must go uncompressed so a
  // receiver that missed the original re-syncs (RFC 1144 §3.2.2 rule).
  const auto out = comp.compress(dg);
  EXPECT_EQ(out.cls, PacketClass::kUncompressedTcp);
}

TEST(VjFallback, HugeSeqJumpResyncsUncompressed) {
  Compressor comp;
  (void)comp.compress(flow_packet(100, 1000, 2000, 8192, kTcpAck, {}));
  const auto out = comp.compress(flow_packet(101, 1000 + 0x20000, 2000, 8192, kTcpAck, {}));
  EXPECT_EQ(out.cls, PacketClass::kUncompressedTcp);
}

TEST(VjDecompress, TossesUntilExplicitSlot) {
  Decompressor decomp;
  // A mask-only compressed packet with no C bit arrives before any sync.
  const auto out = decomp.decompress(PacketClass::kCompressedTcp, Bytes{kSpecialD, 0, 0});
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(decomp.stats().tossed, 1u);
}

TEST(VjDecompress, MalformedCompressedPacketIsAnError) {
  Compressor comp;
  Decompressor decomp;
  const Bytes sync = comp.compress(flow_packet(100, 1000, 2000, 8192, kTcpAck, {})).packet;
  ASSERT_TRUE(decomp.decompress(PacketClass::kUncompressedTcp, sync).has_value());
  // Truncated: mask promises a window delta that is not there.
  const auto out = decomp.decompress(PacketClass::kCompressedTcp, Bytes{kNewW, 0, 0});
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(decomp.stats().errors, 1u);
}

// ---- round-trip identity ----

TEST(VjRoundTrip, GoldenSequenceIdentity) {
  Compressor comp;
  Decompressor decomp;
  const std::vector<Bytes> stream = {
      flow_packet(100, 1000, 2000, 8192, kTcpAck, ascii("hello")),
      flow_packet(101, 1005, 2000, 8192, kTcpAck, ascii("world")),
      flow_packet(102, 1010, 2000, 8192, kTcpAck | kTcpPsh, ascii("!")),
      flow_packet(103, 1011, 2100, 9192, kTcpAck, {}),
      flow_packet(104, 1011, 2100, 9192, kTcpAck, ascii("again")),
  };
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto out = comp.compress(stream[i]);
    const auto back = decomp.decompress(out.cls, out.packet);
    ASSERT_TRUE(back.has_value()) << "packet " << i;
    EXPECT_EQ(*back, stream[i]) << "packet " << i;
  }
  EXPECT_GT(comp.stats().compressed, 0u);
}

TEST(VjRoundTrip, PropertyIdentityOverSyntheticFlows) {
  testing::PropertyOptions opt;
  opt.cases = testing::resolved_cases(60);
  opt.seed = testing::resolved_seed(0x76ACC0DE);
  const auto result = testing::check_property("vj-roundtrip-identity", opt, [](testing::CaseContext& c) {
    VjConfig cfg;
    cfg.max_slot_id = static_cast<u8>(1 + c.rng.below(16));
    cfg.comp_slot_id = c.rng.chance(0.5);
    Compressor comp(cfg);
    Decompressor decomp(cfg);
    TcpFlowGen gen(1 + static_cast<unsigned>(c.rng.below(6)), c.rng.next(), 64);
    const std::size_t n = 2 + c.size;
    for (std::size_t i = 0; i < n; ++i) {
      const Bytes dg = gen.next();
      const auto out = comp.compress(dg);
      const auto back = decomp.decompress(out.cls, out.packet);
      if (!back.has_value()) {
        c.fail("packet " + std::to_string(i) + " tossed on a clean wire");
        return;
      }
      if (*back != dg) {
        c.fail("packet " + std::to_string(i) + " round-trip mismatch");
        return;
      }
    }
  });
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(VjRoundTrip, BulkFlowCompressesHeadersHard) {
  Compressor comp;
  Decompressor decomp;
  TcpFields t;
  t.src_port = 1000;
  t.dst_port = 443;
  t.seq = 1;
  t.ack = 1;
  u16 id = 1;
  const Bytes payload(512, 0x55);
  for (int i = 0; i < 200; ++i) {
    const Bytes dg = build_tcp_datagram(kSrc, kDst, id++, 64, t, payload);
    const auto out = comp.compress(dg);
    ASSERT_EQ(*decomp.decompress(out.cls, out.packet), dg);
    t.seq += static_cast<u32>(payload.size());
  }
  const auto& s = comp.stats();
  // Steady-state bulk transfer: 40-octet headers become 3-octet masks.
  EXPECT_GE(s.compressed, 198u);
  EXPECT_LT(s.header_bytes_out * 10, s.header_bytes_in);
}

TEST(VjRoundTrip, DiffOracleCleanWire) {
  std::vector<Bytes> stream;
  vj::TcpFlowGen gen(4, 0xFEED, 128);
  for (int i = 0; i < 400; ++i) stream.push_back(gen.next());
  const auto r = testing::DiffOracle::vj_roundtrip(VjConfig(), stream);
  EXPECT_TRUE(r.agree) << r.diagnosis;
  EXPECT_EQ(r.delivered, 400u);
  EXPECT_EQ(r.stale_delivered, 0u);
  EXPECT_EQ(r.dropped_on_wire, 0u);
  EXPECT_LT(r.header_bytes_out, r.header_bytes_in);
}

TEST(VjRoundTrip, DiffOracleLossyWireNeverSilentlyCorrupts) {
  // RFC 1144 §4: after a drop the decompressor may emit wrong datagrams
  // until the next sync, but every one of them must fail the TCP checksum.
  testing::PropertyOptions opt;
  opt.cases = testing::resolved_cases(30);
  opt.seed = testing::resolved_seed(0x76ACC0DF);
  const auto result = testing::check_property("vj-lossy-honesty", opt, [](testing::CaseContext& c) {
    std::vector<Bytes> stream;
    vj::TcpFlowGen gen(1 + static_cast<unsigned>(c.rng.below(4)), c.rng.next(), 96);
    const std::size_t n = 16 + c.size;
    for (std::size_t i = 0; i < n; ++i) stream.push_back(gen.next());
    const auto r = testing::DiffOracle::vj_roundtrip(VjConfig(), stream,
                                                     /*drop_chance=*/0.15, c.rng.next());
    if (!r.agree) c.fail(r.diagnosis);
  });
  EXPECT_TRUE(result.ok) << result.message;
}

// ---- endpoint integration: IPCP-negotiated VJ ----

struct VjEndpointPair {
  std::unique_ptr<PppEndpoint> a, b;
  std::vector<Bytes> a_rx, b_rx;
  std::deque<Bytes> to_a, to_b;

  VjEndpointPair() {
    PppEndpoint::Config ca, cb;
    ca.ipcp.local_address = 0x0A000001;
    ca.ipcp.request_vj = true;
    cb.ipcp.local_address = 0x0A000002;
    cb.ipcp.request_vj = true;
    a = std::make_unique<PppEndpoint>(
        "A", ca, [this](BytesView w) { to_b.emplace_back(w.begin(), w.end()); });
    b = std::make_unique<PppEndpoint>(
        "B", cb, [this](BytesView w) { to_a.emplace_back(w.begin(), w.end()); });
    a->set_ip_sink([this](BytesView d) { a_rx.emplace_back(d.begin(), d.end()); });
    b->set_ip_sink([this](BytesView d) { b_rx.emplace_back(d.begin(), d.end()); });
  }
  void pump() {
    for (int round = 0; round < 100 && (!to_a.empty() || !to_b.empty()); ++round) {
      std::deque<Bytes> qa, qb;
      std::swap(qa, to_a);
      std::swap(qb, to_b);
      for (const Bytes& w : qb) b->wire_rx(w);
      for (const Bytes& w : qa) a->wire_rx(w);
    }
  }
  void bring_up() {
    a->open();
    b->open();
    a->lower_up();
    b->lower_up();
    for (int i = 0; i < 20 && !(a->ip_ready() && b->ip_ready()); ++i) {
      pump();
      a->tick();
      b->tick();
    }
    pump();
  }
};

TEST(VjEndpoint, NegotiatedAndTransparent) {
  VjEndpointPair pair;
  pair.bring_up();
  ASSERT_TRUE(pair.a->ip_ready());
  ASSERT_NE(pair.a->vj_compressor(), nullptr);
  ASSERT_NE(pair.a->vj_decompressor(), nullptr);
  EXPECT_TRUE(pair.a->ipcp().vj().tx);
  EXPECT_TRUE(pair.a->ipcp().vj().rx);

  vj::TcpFlowGen gen(2, 0xBEEF, 64);
  std::vector<Bytes> sent;
  for (int i = 0; i < 100; ++i) {
    sent.push_back(gen.next());
    ASSERT_TRUE(pair.a->send_ip(sent.back()));
  }
  pair.pump();
  ASSERT_EQ(pair.b_rx.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(pair.b_rx[i], sent[i]) << i;
  // It actually ran compressed on the wire, not as plain IP.
  EXPECT_GT(pair.a->vj_compressor()->stats().compressed, 50u);
  EXPECT_EQ(pair.b->vj_decompressor()->stats().tossed, 0u);
  EXPECT_EQ(pair.b->stats().vj_dropped, 0u);
}

TEST(VjEndpoint, OneSidedRefusalStaysPlainIp) {
  VjEndpointPair pair;
  PppEndpoint::Config ca, cb;
  ca.ipcp.local_address = 0x0A000001;
  ca.ipcp.request_vj = true;   // A wants compressed TCP from B
  cb.ipcp.local_address = 0x0A000002;
  cb.ipcp.request_vj = false;  // B neither asks...
  cb.ipcp.accept_vj = false;   // ...nor accepts
  pair.a = std::make_unique<PppEndpoint>(
      "A", ca, [&pair](BytesView w) { pair.to_b.emplace_back(w.begin(), w.end()); });
  pair.b = std::make_unique<PppEndpoint>(
      "B", cb, [&pair](BytesView w) { pair.to_a.emplace_back(w.begin(), w.end()); });
  pair.b->set_ip_sink([&pair](BytesView d) { pair.b_rx.emplace_back(d.begin(), d.end()); });
  pair.bring_up();
  ASSERT_TRUE(pair.a->ip_ready());
  EXPECT_EQ(pair.a->vj_compressor(), nullptr);
  EXPECT_FALSE(pair.a->ipcp().vj().tx);

  // TCP still flows, as plain 0x0021 IP.
  const Bytes dg = flow_packet(1, 10, 20, 8192, kTcpAck, ascii("plain"));
  ASSERT_TRUE(pair.a->send_ip(dg));
  pair.pump();
  ASSERT_EQ(pair.b_rx.size(), 1u);
  EXPECT_EQ(pair.b_rx[0], dg);
}

TEST(VjEndpoint, SlotParametersNakDownToResponder) {
  // A asks for 64 slots; B only supports 8. B Naks the option down and the
  // agreed decompressor size on A's side must honor B's limit.
  VjEndpointPair pair;
  PppEndpoint::Config ca, cb;
  ca.ipcp.local_address = 0x0A000001;
  ca.ipcp.request_vj = true;
  ca.ipcp.vj_max_slot_id = 63;
  cb.ipcp.local_address = 0x0A000002;
  cb.ipcp.request_vj = false;
  cb.ipcp.vj_max_slot_id = 7;
  pair.a = std::make_unique<PppEndpoint>(
      "A", ca, [&pair](BytesView w) { pair.to_b.emplace_back(w.begin(), w.end()); });
  pair.b = std::make_unique<PppEndpoint>(
      "B", cb, [&pair](BytesView w) { pair.to_a.emplace_back(w.begin(), w.end()); });
  pair.bring_up();
  ASSERT_TRUE(pair.a->ip_ready());
  ASSERT_TRUE(pair.a->ipcp().vj().rx);
  EXPECT_EQ(pair.a->ipcp().vj().rx_config.max_slot_id, 7);
  ASSERT_TRUE(pair.b->ipcp().vj().tx);
  EXPECT_EQ(pair.b->ipcp().vj().tx_config.max_slot_id, 7);
}

}  // namespace
}  // namespace p5::ppp::vj
