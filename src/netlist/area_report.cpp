#include "netlist/area_report.hpp"

#include <cstdio>

namespace p5::netlist {

std::size_t AreaReport::total_luts() const {
  std::size_t n = 0;
  for (const auto& r : rows_) n += r.map.luts;
  return n;
}

std::size_t AreaReport::total_ffs() const {
  std::size_t n = 0;
  for (const auto& r : rows_) n += r.map.ffs;
  return n;
}

std::size_t AreaReport::critical_depth() const {
  std::size_t d = 0;
  for (const auto& r : rows_) d = std::max(d, r.map.depth);
  return d;
}

std::string AreaReport::module_table() const {
  std::string out = title_ + " — module breakdown\n";
  char buf[160];
  std::snprintf(buf, sizeof buf, "  %-28s %8s %8s %8s %8s\n", "module", "LUTs", "FFs",
                "depth", "gates");
  out += buf;
  for (const auto& r : rows_) {
    std::snprintf(buf, sizeof buf, "  %-28s %8zu %8zu %8zu %8zu\n", r.module.c_str(),
                  r.map.luts, r.map.ffs, r.map.depth, r.map.gates);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "  %-28s %8zu %8zu %8zu\n", "TOTAL", total_luts(), total_ffs(),
                critical_depth());
  out += buf;
  return out;
}

std::string AreaReport::device_table(const std::vector<Device>& devices) const {
  const std::size_t luts = total_luts();
  const std::size_t ffs = total_ffs();
  const std::size_t depth = critical_depth();

  std::string out = title_ + " — device utilisation (pre-layout / post-layout)\n";
  char buf[200];
  std::snprintf(buf, sizeof buf, "  %-12s %16s %16s %12s %12s\n", "device", "LUTs (util)",
                "FFs (util)", "fmax pre", "fmax post");
  out += buf;
  for (const Device& d : devices) {
    std::snprintf(buf, sizeof buf, "  %-12s %8zu (%3.0f%%) %8zu (%3.0f%%) %8.1f MHz %8.1f MHz\n",
                  d.name.c_str(), luts, d.lut_utilisation(luts), ffs, d.ff_utilisation(ffs),
                  d.fmax_mhz(depth, false), d.fmax_mhz(depth, true));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "  critical path: %zu LUT levels\n", depth);
  out += buf;
  return out;
}

}  // namespace p5::netlist
