file(REMOVE_RECURSE
  "CMakeFiles/p5_ppp.dir/endpoint.cpp.o"
  "CMakeFiles/p5_ppp.dir/endpoint.cpp.o.d"
  "CMakeFiles/p5_ppp.dir/fsm.cpp.o"
  "CMakeFiles/p5_ppp.dir/fsm.cpp.o.d"
  "CMakeFiles/p5_ppp.dir/ipcp.cpp.o"
  "CMakeFiles/p5_ppp.dir/ipcp.cpp.o.d"
  "CMakeFiles/p5_ppp.dir/lcp.cpp.o"
  "CMakeFiles/p5_ppp.dir/lcp.cpp.o.d"
  "CMakeFiles/p5_ppp.dir/lqm.cpp.o"
  "CMakeFiles/p5_ppp.dir/lqm.cpp.o.d"
  "CMakeFiles/p5_ppp.dir/packet.cpp.o"
  "CMakeFiles/p5_ppp.dir/packet.cpp.o.d"
  "CMakeFiles/p5_ppp.dir/reliable.cpp.o"
  "CMakeFiles/p5_ppp.dir/reliable.cpp.o.d"
  "libp5_ppp.a"
  "libp5_ppp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5_ppp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
