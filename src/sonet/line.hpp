// Optical line model: the physical medium between two PHYs.
//
// The paper's testbed is a 2.5 Gbps optical link; we substitute a seeded
// stochastic octet pipe with independent bit errors (optionally bursty, a
// two-state Gilbert-Elliott channel) so that FCS-error, B1/B3 and
// delineation-loss paths are genuinely exercised.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace p5::sonet {

struct LineConfig {
  double bit_error_rate = 0.0;  ///< per-bit flip probability in the good state
  // Gilbert-Elliott burst model; burst_error_rate applies in the bad state.
  double burst_enter = 0.0;     ///< P(good -> bad) per octet
  double burst_exit = 0.1;      ///< P(bad -> good) per octet
  double burst_error_rate = 0.01;
  u64 seed = 42;
};

struct LineStats {
  u64 octets = 0;
  u64 bit_errors = 0;
  u64 octets_hit = 0;  ///< octets with at least one flipped bit
};

class Line {
 public:
  explicit Line(const LineConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

  /// Pass one octet through the channel.
  [[nodiscard]] u8 transfer(u8 octet);
  [[nodiscard]] Bytes transfer(BytesView octets);

  [[nodiscard]] const LineStats& stats() const { return stats_; }
  [[nodiscard]] double measured_ber() const {
    return stats_.octets ? static_cast<double>(stats_.bit_errors) /
                               (8.0 * static_cast<double>(stats_.octets))
                         : 0.0;
  }

 private:
  LineConfig cfg_;
  Xoshiro256 rng_;
  LineStats stats_;
  bool bad_state_ = false;
};

}  // namespace p5::sonet
