// Contract-check macros in the spirit of the C++ Core Guidelines Expects/Ensures.
// Violations throw (never UB) so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace p5 {

class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " + file + ":" +
                          std::to_string(line));
}

}  // namespace p5

#define P5_EXPECTS(cond) \
  ((cond) ? static_cast<void>(0) : ::p5::contract_fail("precondition", #cond, __FILE__, __LINE__))
#define P5_ENSURES(cond) \
  ((cond) ? static_cast<void>(0) : ::p5::contract_fail("postcondition", #cond, __FILE__, __LINE__))
#define P5_ASSERT(cond) \
  ((cond) ? static_cast<void>(0) : ::p5::contract_fail("invariant", #cond, __FILE__, __LINE__))
