# Empty compiler generated dependencies file for test_pointer.
# This may be replaced when dependencies are built.
