// One shard of the TunnelServer: an EventLoop, a slice of the accepted
// sessions, and the two lock-free edges that connect it to the rest of the
// server — an adoption ring (connections fanned out to it) and an uplink
// handoff ring (datagrams it forwards to the shared uplink).
//
// Both edges are linecard::SpscRing and both are single-producer/
// single-consumer by construction:
//   * adoption: produced by the accept context (shard 0's loop thread, or
//     the stepping thread in deterministic mode), consumed by this shard;
//   * uplink:   produced by this shard's sessions, consumed by the uplink
//     owner (shard 0 / the stepping thread).
//
// A slice is the shard's unit of work, mirroring LineCard::step():
// run_once() dispatches sockets, then adoptions are drained (bounded), every
// session gets a TX slice, and dead sessions are swept — sweeping happens
// strictly after run_once() returns so a conn is never destroyed from its
// own callback stack. Telemetry: all of a shard's conns write into one
// TransportTelemetry (single writer = the shard thread), and per-shard
// snapshots sum across shards with the usual operator+=.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "linecard/spsc_ring.hpp"
#include "server/session.hpp"
#include "transport/event_loop.hpp"
#include "transport/stats.hpp"

namespace p5::server {

/// A connection in flight from the accept context to its owning shard.
/// Carries the raw fd (ownership moves with the struct) — the StreamConn is
/// only built on the owning shard's loop, so no Conn ever migrates loops.
struct PendingConn {
  int fd = -1;
  std::optional<u32> tenant;  ///< listener-port tenancy; nullopt = hello
};

/// One decoded datagram crossing from a shard to the shared uplink.
struct UplinkItem {
  u32 tenant = 0;
  u16 protocol = 0;
  Bytes payload;
};

struct ShardConfig {
  std::size_t index = 0;
  std::size_t adoption_ring = 256;
  std::size_t uplink_ring = 1024;
  std::size_t adoptions_per_slice = 64;
  transport::ConnConfig conn;
};

class Shard {
 public:
  Shard(ShardConfig cfg, SessionEnv env_template);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  [[nodiscard]] transport::EventLoop& loop() { return loop_; }
  [[nodiscard]] std::size_t index() const { return cfg_.index; }

  // ---- accept-context edge (producer side) ----
  /// Hand a connection to this shard. From the shard's own context the
  /// session is built immediately; cross-shard it rides the adoption ring.
  /// False = ring full: the fd has been closed and the overflow counted.
  bool offer(PendingConn pc, bool same_context);

  // ---- uplink edge ----
  /// Session-side producer hook (bound into SessionEnv by the server).
  [[nodiscard]] bool uplink_push(UplinkItem&& item) { return uplink_ring_.try_push(std::move(item)); }
  /// Consumer side, for the uplink owner only.
  [[nodiscard]] linecard::SpscRing<UplinkItem>& uplink_ring() { return uplink_ring_; }

  // ---- driving ----
  /// One bounded slice (loop dispatch + adoptions + session TX + sweep).
  /// Returns callbacks+chunks dispatched, so idle detection can settle.
  std::size_t slice(int timeout_ms);
  /// Threaded mode: slice(1) until stop() — with a drain_posted() once the
  /// stop flag trips (the EventLoop shutdown-ordering contract).
  void start_thread();
  void stop();
  void join();
  /// Destroy every session (stopped shard only — after join, or between
  /// steps). Conn teardown books still-queued chunks into frames_lost, so
  /// the shard's chunk ledger closes exactly: in == out + lost.
  void teardown_sessions();

  // ---- introspection ----
  [[nodiscard]] std::size_t sessions_active() const {
    return sessions_active_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 adopted_total() const { return adopted_.load(std::memory_order_relaxed); }
  [[nodiscard]] u64 adoption_overflows() const {
    return adoption_overflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 slices() const { return slices_.load(std::memory_order_relaxed); }
  [[nodiscard]] transport::TransportSnapshot transport_stats() const { return tel_.snapshot(); }
  [[nodiscard]] transport::TransportTelemetry& transport_telemetry() { return tel_; }
  [[nodiscard]] transport::ChunkPool::Counters pool_counters() const { return pool_.counters(); }

  /// Visit live sessions (shard context only).
  template <typename Fn>
  void for_each_session(Fn&& fn) {
    for (auto& s : sessions_) fn(*s);
  }

  /// Extra per-slice work on this shard's context — the server hangs the
  /// accept fan-out and (on shard 0) the uplink DRR pass here, so they run
  /// on the shard thread in threaded mode and on the stepping thread in
  /// deterministic mode, without a second consumer ever touching the rings.
  void set_on_slice(std::function<void()> hook) { on_slice_ = std::move(hook); }

 private:
  void adopt_now(PendingConn pc);
  void drain_adoptions();
  void sweep_dead();

  ShardConfig cfg_;
  SessionEnv env_template_;
  transport::EventLoop loop_;
  transport::TransportTelemetry tel_;
  /// One pool for every session conn the shard ever adopts — session churn
  /// recycles chunk buffers instead of round-tripping the heap. Declared
  /// before sessions_ so queued ChunkRefs release into a live pool.
  transport::ChunkPool pool_{&tel_};
  linecard::SpscRing<PendingConn> adoption_ring_;
  linecard::SpscRing<UplinkItem> uplink_ring_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::function<void()> on_slice_;
  std::thread thread_;
  std::atomic<bool> stop_{false};

  std::atomic<std::size_t> sessions_active_{0};
  std::atomic<u64> adopted_{0};
  std::atomic<u64> adoption_overflow_{0};
  std::atomic<u64> slices_{0};
};

}  // namespace p5::server
