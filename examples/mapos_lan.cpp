// MAPOS-style multi-access over SONET (RFC 2171) — the reason the paper
// makes the PPP Address field programmable: "this implementation allows
// this field to be programmable so that it is compatible with MAPOS
// systems."
//
// One transmitting P5 plays a MAPOS frame switch port, addressing frames to
// individual stations by rewriting its Address register through the OAM
// (exactly what a host CPU would do per-destination). Three receiving P5s
// with distinct programmed addresses share the same wire; each station's
// address filter accepts only its own frames.
//
//   build/examples/mapos_lan
#include <cstdio>
#include <memory>
#include <vector>

#include "p5/p5.hpp"

int main() {
  using namespace p5;
  using core::OamReg;

  constexpr u8 kStationAddr[3] = {0x04, 0x08, 0x0C};  // MAPOS unicast addresses

  // The switch-port transmitter.
  core::P5Config tx_cfg;
  tx_cfg.lanes = 4;
  core::P5 tx(tx_cfg);

  // Three stations on the shared medium.
  std::vector<std::unique_ptr<core::P5>> stations;
  std::vector<std::vector<Bytes>> inbox(3);
  for (int s = 0; s < 3; ++s) {
    core::P5Config cfg;
    cfg.lanes = 4;
    cfg.address = kStationAddr[s];
    stations.push_back(std::make_unique<core::P5>(cfg));
    stations[s]->set_rx_sink(
        [&inbox, s](core::RxDelivery d) { inbox[s].push_back(std::move(d.payload)); });
  }

  std::printf("MAPOS LAN: 1 switch port, 3 stations (addresses 0x04, 0x08, 0x0c)\n\n");

  // Send two datagrams to each station, reprogramming the TX address
  // register between bursts via the OAM — and draining the pipeline before
  // each reprogram, since the Address register applies to whole frames.
  for (int s = 0; s < 3; ++s) {
    const u32 config_word = static_cast<u32>(kStationAddr[s]) | (0x03u << 8) | (1u << 16);
    tx.oam().write(static_cast<u32>(OamReg::kConfig), config_word);
    std::printf("switch: OAM CONFIG <= 0x%06x (address 0x%02x)\n", config_word, kStationAddr[s]);

    for (int n = 0; n < 2; ++n) {
      Bytes payload{static_cast<u8>('A' + s), static_cast<u8>('0' + n)};
      payload.resize(40, static_cast<u8>(s * 16 + n));
      tx.submit_datagram(0x0021, payload);
    }
    // Broadcast the octet stream to every station (shared medium).
    for (int k = 0; k < 200; ++k) {
      const Bytes chunk = tx.phy_pull_tx(4);
      for (auto& st : stations) st->phy_push_rx(chunk);
    }
  }
  for (auto& st : stations) st->drain_rx(200);

  std::printf("\ndelivery matrix:\n");
  bool ok = true;
  for (int s = 0; s < 3; ++s) {
    const auto& ctr = stations[s]->rx_control().counters();
    std::printf("  station 0x%02x: delivered %zu, filtered %llu (expect 2 delivered, 4 filtered)\n",
                kStationAddr[s], inbox[s].size(),
                static_cast<unsigned long long>(ctr.addr_filtered));
    ok = ok && inbox[s].size() == 2 && ctr.addr_filtered == 4;
    for (const Bytes& p : inbox[s])
      std::printf("    got \"%c%c...\" (%zu octets)\n", p[0], p[1], p.size());
  }
  std::printf("\n%s\n", ok ? "OK: the programmable address field gives MAPOS-style unicast."
                           : "FAIL: address filtering misbehaved");
  return ok ? 0 : 1;
}
