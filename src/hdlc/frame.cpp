#include "hdlc/frame.hpp"

#include "common/check.hpp"
#include "crc/crc_table.hpp"
#include "fastpath/stuff_fast.hpp"
#include "hdlc/stuffing.hpp"

namespace p5::hdlc {

namespace {
const crc::TableCrc& engine(const FrameConfig& cfg) {
  return cfg.fcs == FcsKind::kFcs32 ? crc::fcs32() : crc::fcs16();
}

/// Header octets preceding the payload: [address control] protocol (1 or 2
/// octets). Shared by encapsulate and the fused encoder so the two paths
/// cannot drift.
std::size_t fill_header(const FrameConfig& cfg, u16 protocol, u8 (&hdr)[4]) {
  std::size_t n = 0;
  if (!cfg.acfc) {
    hdr[n++] = cfg.address;
    hdr[n++] = cfg.control;
  }
  // PFC requires the low octet to be odd (RFC 1661 §2), which all assigned
  // protocols satisfy; fall back to two octets otherwise.
  if (cfg.pfc && protocol <= 0xFF && (protocol & 1u)) {
    hdr[n++] = static_cast<u8>(protocol);
  } else {
    hdr[n++] = static_cast<u8>(protocol >> 8);
    hdr[n++] = static_cast<u8>(protocol);
  }
  return n;
}

/// Append flag + stuff(content) + flag for one frame. Shared by the single
/// and batched encoders so the two wire paths cannot drift.
void encode_append(Bytes& wire, const fastpath::EscapeEngine& eng, const fastpath::SliceCrc& crc,
                   const FrameConfig& cfg, u16 protocol, BytesView payload) {
  wire.push_back(kFlag);

  u8 hdr[4];
  const std::size_t hn = fill_header(cfg, protocol, hdr);

  // One fused scan per region: the FCS register advances over the unstuffed
  // octets while the stuffed image is appended — no intermediate buffers.
  u32 state = cfg.crc_spec().init;
  state = eng.stuff_crc_append(wire, BytesView(hdr, hn), crc, state);
  state = eng.stuff_crc_append(wire, payload, crc, state);

  // FCS, least-significant octet first (RFC 1662 §C), stuffed like any other
  // content octets.
  const u32 fcs = (state ^ cfg.crc_spec().xorout) & cfg.crc_spec().mask();
  u8 tail[4];
  const std::size_t fn = cfg.fcs_bytes();
  for (std::size_t i = 0; i < fn; ++i) tail[i] = static_cast<u8>(fcs >> (8 * i));
  eng.stuff_append(wire, BytesView(tail, fn));

  wire.push_back(kFlag);
}
}  // namespace

Bytes encapsulate(const FrameConfig& cfg, u16 protocol, BytesView payload) {
  P5_EXPECTS(payload.size() <= cfg.max_payload);
  Bytes content;
  content.reserve(payload.size() + 8);
  u8 hdr[4];
  const std::size_t hn = fill_header(cfg, protocol, hdr);
  content.insert(content.end(), hdr, hdr + hn);
  append(content, payload);

  // FCS is computed over everything between the flags, and transmitted
  // least-significant octet first (RFC 1662 §C).
  const u32 fcs =
      engine(cfg).update(cfg.crc_spec().init, content) ^ cfg.crc_spec().xorout;
  if (cfg.fcs == FcsKind::kFcs32) {
    put_le32(content, fcs);
  } else {
    content.push_back(static_cast<u8>(fcs));
    content.push_back(static_cast<u8>(fcs >> 8));
  }
  return content;
}

BytesView encode_into(FrameArena& arena, const FrameConfig& cfg, u16 protocol,
                      BytesView payload) {
  P5_EXPECTS(payload.size() <= cfg.max_payload);
  const fastpath::SliceCrc& crc = engine(cfg).slicer();
  const fastpath::EscapeEngine& eng = arena.escape_engine(cfg.accm);

  Bytes& wire = arena.wire_;
  wire.clear();
  // Worst case every content octet escapes (2x), plus two flags, plus the
  // vector kernels' overhang slack. Reserving the worst case up front keeps
  // the hot loop free of reallocation checks; the capacity is retained
  // across frames, so steady state never allocates.
  wire.reserve(2 * (4 + payload.size() + cfg.fcs_bytes()) + 2 + fastpath::kStuffSlack);
  encode_append(wire, eng, crc, cfg, protocol, payload);
  return wire;
}

BytesView encode_batch_into(FrameArena& arena, const FrameConfig& cfg,
                            std::span<const BatchFrame> frames) {
  const fastpath::SliceCrc& crc = engine(cfg).slicer();
  const fastpath::EscapeEngine& eng = arena.escape_engine(cfg.accm);

  Bytes& wire = arena.wire_;
  wire.clear();
  arena.spans_.clear();
  arena.oks_.clear();

  // One worst-case reservation for the whole batch — the per-frame setup
  // (ACCM tables, CRC slicer, allocation headroom) is amortised across all
  // frames, which is where small-frame throughput goes.
  std::size_t worst = fastpath::kStuffSlack;
  for (const BatchFrame& f : frames) {
    P5_EXPECTS(f.payload.size() <= cfg.max_payload);
    worst += 2 * (4 + f.payload.size() + cfg.fcs_bytes()) + 2;
  }
  wire.reserve(worst);

  FrameConfig fcfg = cfg;
  for (const BatchFrame& f : frames) {
    fcfg.address = f.address ? *f.address : cfg.address;
    fcfg.control = f.control ? *f.control : cfg.control;
    const std::size_t start = wire.size();
    encode_append(wire, eng, crc, fcfg, f.protocol, f.payload);
    arena.spans_.emplace_back(start, wire.size());
  }
  return wire;
}

void decode_batch_into(FrameArena& arena, std::span<const BytesView> stuffed) {
  const fastpath::EscapeEngine& eng = arena.rx_escape_engine();

  Bytes& wire = arena.wire_;
  wire.clear();
  arena.spans_.clear();
  arena.oks_.clear();

  std::size_t total = fastpath::kStuffSlack;
  for (const BytesView& s : stuffed) total += s.size();
  wire.reserve(total);

  for (const BytesView& s : stuffed) {
    const std::size_t start = wire.size();
    const bool ok = eng.destuff_append(wire, s);
    arena.spans_.emplace_back(start, wire.size());
    arena.oks_.push_back(ok ? 1 : 0);
  }
}

Bytes build_wire_frame(const FrameConfig& cfg, u16 protocol, BytesView payload) {
  FrameArena arena;
  (void)encode_into(arena, cfg, protocol, payload);
  return std::move(arena.wire_);
}

ParseResult parse(const FrameConfig& cfg, BytesView content) {
  ParseResult r;
  const std::size_t fcs_len = cfg.fcs_bytes();
  if (content.size() < fcs_len + 1) {
    r.error = ParseError::kTooShort;
    return r;
  }
  if (!engine(cfg).check(content)) {
    r.error = ParseError::kBadFcs;
    return r;
  }

  std::size_t off = 0;
  if (!cfg.acfc) {
    // Uncompressed header required. The address comparison doubles as the
    // MAPOS address filter: the P5's Address register is programmable and
    // frames for other stations are dropped here.
    if (content.size() - fcs_len < 2) {
      r.error = ParseError::kTooShort;
      return r;
    }
    if (content[0] != cfg.address && content[0] != kDefaultAddress) {
      // 0xFF stays valid as the all-stations (broadcast) address.
      r.error = ParseError::kBadAddress;
      return r;
    }
    if (content[1] != cfg.control) {
      r.error = ParseError::kBadControl;
      return r;
    }
    off = 2;
  } else if (content.size() - fcs_len >= 2 && content[0] == cfg.address &&
             content[1] == cfg.control) {
    // ACFC negotiated but the peer sent the header anyway — accept it
    // (RFC 1661 §6.6).
    off = 2;
  }

  if (off >= content.size() - fcs_len) {
    r.error = ParseError::kTooShort;
    return r;
  }

  ParsedFrame f;
  const u8 p0 = content[off];
  if (p0 & 1u) {
    // Compressed (single-octet) protocol: assigned values have an even
    // high octet and odd low octet, so an odd first octet means PFC.
    f.protocol = p0;
    off += 1;
  } else {
    if (off + 2 > content.size() - fcs_len) {
      r.error = ParseError::kTooShort;
      return r;
    }
    f.protocol = get_be16(content, off);
    off += 2;
  }

  const std::size_t payload_len = content.size() - fcs_len - off;
  if (payload_len > cfg.max_payload) {
    r.error = ParseError::kTooLong;
    return r;
  }
  f.payload.assign(content.begin() + static_cast<std::ptrdiff_t>(off),
                   content.end() - static_cast<std::ptrdiff_t>(fcs_len));
  r.frame = std::move(f);
  return r;
}

}  // namespace p5::hdlc
