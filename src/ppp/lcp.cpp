#include "ppp/lcp.hpp"

#include "ppp/protocols.hpp"

namespace p5::ppp {

namespace {
Option mru_option(u16 mru) {
  Option o;
  o.type = kOptMru;
  put_be16(o.data, mru);
  return o;
}
Option magic_option(u32 magic) {
  Option o;
  o.type = kOptMagic;
  put_be32(o.data, magic);
  return o;
}
Option flag_option(u8 type) {
  Option o;
  o.type = type;
  return o;
}
Option fcs_option(u8 mask) {
  Option o;
  o.type = kOptFcsAlternatives;
  o.data.push_back(mask);
  return o;
}
Option quality_option(u32 period) {
  // RFC 1989 §2.1: Quality-Protocol (0xC025) + Reporting-Period.
  Option o;
  o.type = kOptQualityProtocol;
  put_be16(o.data, kProtoLqr);
  put_be32(o.data, period);
  return o;
}
Option numbered_option(u8 window) {
  // RFC 1663 §4: window (1..7); the optional address field is omitted.
  Option o;
  o.type = kOptNumberedMode;
  o.data.push_back(window);
  return o;
}
Option auth_option(AuthProto proto) {
  // Authentication-Protocol (RFC 1661 §6.2): 2-octet protocol number, plus
  // the algorithm octet for CHAP (RFC 1994 §3: 5 = MD5).
  Option o;
  o.type = kOptAuthProtocol;
  put_be16(o.data, proto == AuthProto::kChap ? kProtoChap : kProtoPap);
  if (proto == AuthProto::kChap) o.data.push_back(kChapAlgorithmMd5);
  return o;
}
/// Decode an Authentication-Protocol option payload; kNone = unsupported.
AuthProto parse_auth_option(const Option& o) {
  if (o.data.size() < 2) return AuthProto::kNone;
  const u16 proto = get_be16(o.data, 0);
  if (proto == kProtoPap && o.data.size() == 2) return AuthProto::kPap;
  if (proto == kProtoChap && o.data.size() == 3 && o.data[2] == kChapAlgorithmMd5)
    return AuthProto::kChap;
  return AuthProto::kNone;
}
}  // namespace

Lcp::Lcp(const LcpConfig& cfg, TxHook tx, Timeouts timeouts)
    : Fsm("LCP", kProtoLcp, timeouts), cfg_(cfg), tx_(std::move(tx)), rng_(cfg.magic_seed) {
  magic_ = static_cast<u32>(rng_.next());
  ask_pfc_ = cfg_.request_pfc;
  ask_acfc_ = cfg_.request_acfc;
  ask_fcs32_ = cfg_.request_fcs32;
  ask_lqm_ = cfg_.request_lqr_period != 0;
  ask_numbered_ = cfg_.request_numbered_window != 0;
  ask_auth_ = cfg_.require_auth != AuthProto::kNone;
}

void Lcp::send_packet(const Packet& pkt) { tx_(kProtoLcp, pkt); }

std::vector<Option> Lcp::build_configure_options() {
  std::vector<Option> opts;
  if (ask_mru_ && cfg_.mru != 1500) opts.push_back(mru_option(cfg_.mru));
  if (ask_magic_) opts.push_back(magic_option(magic_));
  if (ask_pfc_) opts.push_back(flag_option(kOptPfc));
  if (ask_acfc_) opts.push_back(flag_option(kOptAcfc));
  if (ask_fcs32_) opts.push_back(fcs_option(kFcsAlt32));
  if (ask_auth_) opts.push_back(auth_option(cfg_.require_auth));
  if (ask_lqm_) opts.push_back(quality_option(cfg_.request_lqr_period));
  if (ask_numbered_) opts.push_back(numbered_option(cfg_.request_numbered_window));
  return opts;
}

ConfigureVerdict Lcp::judge_configure_request(const std::vector<Option>& options) {
  std::vector<Option> rejected;
  std::vector<Option> naked;

  for (const Option& o : options) {
    switch (o.type) {
      case kOptMru: {
        if (o.data.size() != 2) {
          rejected.push_back(o);
          break;
        }
        const u16 mru = get_be16(o.data, 0);
        if (mru < cfg_.min_acceptable_mru) {
          naked.push_back(mru_option(cfg_.min_acceptable_mru));
        }
        break;
      }
      case kOptMagic: {
        if (o.data.size() != 4) {
          rejected.push_back(o);
          break;
        }
        const u32 peer_magic = get_be32(o.data, 0);
        if (peer_magic == magic_ || peer_magic == 0) {
          // Same magic: probable loopback — Nak with a fresh random value.
          ++loopbacks_;
          naked.push_back(magic_option(static_cast<u32>(rng_.next())));
        }
        break;
      }
      case kOptPfc:
      case kOptAcfc:
        // Always willing to receive compressed headers.
        break;
      case kOptAuthProtocol: {
        // The peer demands we authenticate ourselves. Accept an allowed
        // protocol; steer a disallowed/unknown one toward our preference;
        // reject when we are not willing to authenticate at all.
        const AuthProto proto = parse_auth_option(o);
        const bool acceptable = (proto == AuthProto::kPap && cfg_.allow_pap) ||
                                (proto == AuthProto::kChap && cfg_.allow_chap);
        if (acceptable) break;
        if (cfg_.allow_chap)
          naked.push_back(auth_option(AuthProto::kChap));
        else if (cfg_.allow_pap)
          naked.push_back(auth_option(AuthProto::kPap));
        else
          rejected.push_back(o);
        break;
      }
      case kOptQualityProtocol: {
        if (o.data.size() != 6 || get_be16(o.data, 0) != kProtoLqr || !cfg_.accept_lqm) {
          rejected.push_back(o);
        }
        break;
      }
      case kOptNumberedMode: {
        if (o.data.size() != 1 || !cfg_.accept_numbered_mode) {
          rejected.push_back(o);
          break;
        }
        const u8 window = o.data[0];
        if (window < 1 || window > 7) {
          Option nak;
          nak.type = kOptNumberedMode;
          nak.data.push_back(4);  // steer to a sane window
          naked.push_back(nak);
        }
        break;
      }
      case kOptFcsAlternatives: {
        if (o.data.size() != 1) {
          rejected.push_back(o);
          break;
        }
        const u8 mask = o.data[0];
        if (mask != kFcsAlt16 && mask != kFcsAlt32) {
          // We implement exactly one FCS at a time; steer to 32-bit.
          naked.push_back(fcs_option(kFcsAlt32));
        }
        break;
      }
      default:
        rejected.push_back(o);
        break;
    }
  }

  ConfigureVerdict v;
  if (!rejected.empty()) {
    v.response_code = Code::kConfigureReject;
    v.response_options = std::move(rejected);
  } else if (!naked.empty()) {
    v.response_code = Code::kConfigureNak;
    v.response_options = std::move(naked);
  } else {
    v.ack = true;
    // Record what the peer's request grants *us* on transmit.
    for (const Option& o : options) {
      switch (o.type) {
        case kOptMru:
          result_.peer_mru = get_be16(o.data, 0);
          break;
        case kOptPfc:
          result_.tx_pfc = true;
          break;
        case kOptAcfc:
          result_.tx_acfc = true;
          break;
        case kOptAuthProtocol:
          result_.auth_to_peer = parse_auth_option(o);
          break;
        case kOptFcsAlternatives:
          result_.fcs32 = o.data[0] == kFcsAlt32;
          break;
        case kOptQualityProtocol:
          // The peer wants to *receive* LQRs: we must transmit them.
          result_.tx_lqr_period = get_be32(o.data, 2);
          break;
        case kOptNumberedMode:
          result_.numbered_window = o.data[0];
          break;
        default:
          break;
      }
    }
  }
  return v;
}

void Lcp::on_configure_ack(const std::vector<Option>& options) {
  // The peer accepted our whole request; our receive-side settings hold.
  for (const Option& o : options) {
    if (o.type == kOptFcsAlternatives && o.data.size() == 1)
      result_.fcs32 = o.data[0] == kFcsAlt32;
    if (o.type == kOptNumberedMode && o.data.size() == 1)
      result_.numbered_window = o.data[0];
    if (o.type == kOptAuthProtocol) result_.auth_from_peer = parse_auth_option(o);
  }
}

void Lcp::on_configure_nak(const std::vector<Option>& options) {
  for (const Option& o : options) {
    switch (o.type) {
      case kOptMru:
        if (o.data.size() == 2) cfg_.mru = get_be16(o.data, 0);
        break;
      case kOptMagic:
        // Loopback suspicion from the peer: pick a new magic.
        magic_ = static_cast<u32>(rng_.next());
        break;
      case kOptFcsAlternatives:
        if (o.data.size() == 1 && o.data[0] == kFcsAlt16) ask_fcs32_ = false;
        break;
      case kOptAuthProtocol: {
        // The peer steers us toward a protocol it is willing to speak; adopt
        // it when we implement it (the authenticator may still refuse later).
        const AuthProto suggested = parse_auth_option(o);
        if (suggested != AuthProto::kNone) cfg_.require_auth = suggested;
        break;
      }
      case kOptNumberedMode:
        if (o.data.size() == 1 && o.data[0] >= 1 && o.data[0] <= 7)
          cfg_.request_numbered_window = o.data[0];
        break;
      default:
        break;
    }
  }
}

void Lcp::on_configure_reject(const std::vector<Option>& options) {
  for (const Option& o : options) {
    switch (o.type) {
      case kOptMru: ask_mru_ = false; break;
      case kOptMagic: ask_magic_ = false; break;
      case kOptPfc: ask_pfc_ = false; break;
      case kOptAcfc: ask_acfc_ = false; break;
      case kOptFcsAlternatives: ask_fcs32_ = false; break;
      case kOptAuthProtocol:
        ask_auth_ = false;
        auth_refused_ = true;
        break;
      case kOptQualityProtocol: ask_lqm_ = false; break;
      case kOptNumberedMode: ask_numbered_ = false; break;
      default: break;
    }
  }
}

bool Lcp::on_extra_packet(const Packet& pkt) {
  if (static_cast<Code>(pkt.code) == Code::kEchoReply && is_opened()) {
    if (pkt.data.size() >= 4 && get_be32(pkt.data, 0) == magic_ && magic_ != 0) {
      // Our own echo came back with our magic: loopback.
      ++loopbacks_;
    } else {
      ++echo_replies_;
    }
    return true;
  }
  if (static_cast<Code>(pkt.code) == Code::kEchoRequest && is_opened()) {
    if (pkt.data.size() >= 4 && get_be32(pkt.data, 0) == magic_ && magic_ != 0) ++loopbacks_;
    // Reply with *our* magic number (RFC 1661 §5.8).
    Bytes reply;
    put_be32(reply, magic_);
    if (pkt.data.size() > 4) reply.insert(reply.end(), pkt.data.begin() + 4, pkt.data.end());
    emit(Code::kEchoReply, pkt.identifier, std::move(reply));
    return true;
  }
  return false;
}

void Lcp::send_echo_request() {
  if (!is_opened()) return;
  Bytes data;
  put_be32(data, magic_);
  emit(Code::kEchoRequest, ++echo_id_, std::move(data));
}

void Lcp::this_layer_up() {
  if (up_hook_) up_hook_(result_);
}

void Lcp::this_layer_down() {
  if (down_hook_) down_hook_();
}

}  // namespace p5::ppp
