file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_buffers.dir/bench_latency_buffers.cpp.o"
  "CMakeFiles/bench_latency_buffers.dir/bench_latency_buffers.cpp.o.d"
  "bench_latency_buffers"
  "bench_latency_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
