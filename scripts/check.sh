#!/usr/bin/env bash
# Repo health check, in labeled stages:
#   tier-1    configure + build + full ctest          (build/)
#   fault     the fault-injection/conformance label    (build/, ctest -L fault)
#   asan      ASan+UBSan build + full ctest            (build-asan/)
#   tsan      TSan build + the threaded suites         (build-tsan/)
#   bench     smoke run of every registered bench      (build/, ctest -L bench)
#
# Usage: scripts/check.sh [stage...]   (default: all stages in order)
#   e.g. scripts/check.sh tier-1 fault     # skip the sanitizer rebuilds
# Seed reproduction for any failing property test: see TESTING.md
# (P5_TEST_SEED / P5_TEST_CASES pass straight through this script).
set -euo pipefail
cd "$(dirname "$0")/.."

STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(tier-1 fault asan tsan bench)

want() {
  local s
  for s in "${STAGES[@]}"; do [ "$s" = "$1" ] && return 0; done
  return 1
}

if want tier-1; then
  echo "== tier-1: configure + build + ctest =="
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest --output-on-failure -j)
fi

if want fault; then
  echo
  echo "== fault: deterministic fault-injection + conformance (ctest -L fault) =="
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest -L fault --output-on-failure -j)
fi

if want asan; then
  echo
  echo "== asan: address+undefined sanitizers, full ctest (build-asan) =="
  cmake -B build-asan -S . -DP5_SANITIZE=address,undefined
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j)
fi

if want tsan; then
  echo
  echo "== tsan: thread sanitizer, threaded + fault suites (build-tsan) =="
  cmake -B build-tsan -S . -DP5_SANITIZE=thread
  cmake --build build-tsan -j
  # TSan's value is the threaded runtime; run the suites that spin threads
  # plus the whole fault label (cheap, and proves the harness is race-free).
  (cd build-tsan && ctest -R 'LineCard|SpscRing|SharedMemory' --output-on-failure -j)
  (cd build-tsan && ctest -L fault --output-on-failure -j)
fi

if want bench; then
  echo
  echo "== bench smoke: ctest -L bench =="
  (cd build && ctest -L bench --output-on-failure -j)
fi

echo
echo "check.sh: all green"
