// A complete PPP session with the software protocol stack: LCP option
// negotiation (MRU, magic numbers, FCS-Alternatives steering both ends to
// the paper's 32-bit FCS), IPCP address assignment, echo keep-alives, IP
// traffic, and a clean administrative teardown — the Link Control Protocol
// machinery the paper's Section 2 describes around the datapath.
//
//   build/examples/ppp_session
#include <cstdio>
#include <deque>

#include "net/ipv4.hpp"
#include "ppp/endpoint.hpp"

int main() {
  using namespace p5;
  using namespace p5::ppp;

  std::deque<Bytes> to_a, to_b;
  PppEndpoint::Config ca, cb;
  ca.lcp.mru = 1400;  // A asks for a smaller MRU
  ca.lcp.request_lqr_period = 2;  // A wants link-quality reports from B
  ca.ipcp.local_address = 0;  // A has no address; B assigns one
  cb.ipcp.local_address = 0x0A000001;
  cb.ipcp.assign_peer_address = 0x0A000063;  // 10.0.0.99

  PppEndpoint a("left", ca, [&](BytesView w) { to_b.emplace_back(w.begin(), w.end()); });
  PppEndpoint b("right", cb, [&](BytesView w) { to_a.emplace_back(w.begin(), w.end()); });

  int a_got = 0, b_got = 0;
  a.set_ip_sink([&](BytesView) { ++a_got; });
  b.set_ip_sink([&](BytesView) { ++b_got; });

  auto pump = [&] {
    for (int i = 0; i < 50 && (!to_a.empty() || !to_b.empty()); ++i) {
      std::deque<Bytes> qa, qb;
      std::swap(qa, to_a);
      std::swap(qb, to_b);
      for (const Bytes& w : qb) b.wire_rx(w);
      for (const Bytes& w : qa) a.wire_rx(w);
    }
  };
  auto show = [&](const char* when) {
    std::printf("%-22s left: LCP=%-9s phase=%-9s | right: LCP=%-9s phase=%-9s\n", when,
                to_string(a.lcp().state()), to_string(a.phase()), to_string(b.lcp().state()),
                to_string(b.phase()));
  };

  show("initial");
  a.open();
  b.open();
  a.lower_up();
  b.lower_up();
  pump();
  show("after LCP");
  pump();
  show("after IPCP");

  std::printf("\nnegotiated: FCS-%d, MRU %zu, left addr 10.0.0.%u, right addr 10.0.0.%u\n",
              a.frame_config().fcs == hdlc::FcsKind::kFcs32 ? 32 : 16,
              a.frame_config().max_payload, a.ipcp().local_address() & 0xFF,
              b.ipcp().local_address() & 0xFF);

  // Link-quality probes: LCP echo plus RFC 1989 LQRs from the right side.
  a.lcp().send_echo_request();
  pump();
  std::printf("echo replies at left: %llu\n",
              static_cast<unsigned long long>(a.lcp().echo_replies()));
  for (int t = 0; t < 6; ++t) {
    a.tick();
    b.tick();
    pump();
  }
  if (b.lqm() && a.lqm() && a.lqm()->inbound_loss()) {
    std::printf("LQRs sent by right: %u; left measures inbound loss: %.1f%%\n",
                b.lqm()->lqrs_sent(), 100.0 * *a.lqm()->inbound_loss());
  }

  // IP traffic both ways.
  for (int i = 0; i < 5; ++i) {
    net::Ipv4Header h;
    h.src = a.ipcp().local_address();
    h.dst = b.ipcp().local_address();
    a.send_ip(net::build_datagram(h, Bytes(100 + i, 0x7E)));
    std::swap(h.src, h.dst);
    b.send_ip(net::build_datagram(h, Bytes(60 + i, 0x42)));
    pump();
  }
  std::printf("datagrams delivered: left %d, right %d\n", a_got, b_got);

  // Clean teardown.
  a.close();
  pump();
  show("after Close");

  const bool ok = a_got == 5 && b_got == 5 && a.lcp().state() == State::kClosed;
  std::printf("\n%s\n", ok ? "OK: full LCP/IPCP lifecycle completed."
                           : "FAIL: session did not complete cleanly");
  return ok ? 0 : 1;
}
