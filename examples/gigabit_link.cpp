// Gigabit IP over SDH/SONET — the paper's title scenario, end to end.
//
// Two P5 devices (32-bit datapath) are joined by an STS-48c path (2.488 Gbps
// line rate): PPP octet stream -> x^43+1 payload scrambling -> SPE mapping
// -> frame-synchronous scrambling -> an optical line with injected bit
// errors -> deframing -> the peer P5's receive pipeline. IMIX traffic runs
// both ways and the error accounting at every layer is reported.
//
//   build/examples/gigabit_link [ber]    (default ber = 1e-6)
#include <cstdio>
#include <cstdlib>
#include <set>

#include "net/capture.hpp"
#include "net/traffic.hpp"
#include "p5/sonet_link.hpp"

int main(int argc, char** argv) {
  using namespace p5;

  const double ber = argc > 1 ? std::atof(argv[1]) : 1e-6;

  core::P5Config cfg;
  cfg.lanes = 4;
  sonet::LineConfig line;
  line.bit_error_rate = ber;
  line.seed = 2026;
  core::P5SonetLink link(cfg, sonet::kSts48c, line);

  std::printf("IP over SONET: STS-48c, line %.2f Mbps, PPP payload %.2f Mbps, BER %.1e\n",
              link.sts().line_rate_mbps(), link.sts().payload_rate_mbps(), ber);

  // Sinks checking payload integrity against what was sent; B also records
  // a frame capture for offline inspection.
  std::set<Bytes> outstanding_ab, outstanding_ba;
  u64 delivered_ab = 0, delivered_ba = 0, corrupted = 0;
  net::Capture capture;
  link.b().set_rx_sink([&](core::RxDelivery d) {
    ++delivered_ab;
    capture.record(link.b().cycle(), net::Direction::kRx, d.protocol, d.payload);
    if (outstanding_ab.erase(d.payload) == 0) ++corrupted;
  });
  link.a().set_rx_sink([&](core::RxDelivery d) {
    ++delivered_ba;
    if (outstanding_ba.erase(d.payload) == 0) ++corrupted;
  });

  // IMIX traffic in both directions.
  net::ImixGenerator gen_a(1), gen_b(2);
  u64 sent = 0, sent_octets = 0;
  for (int i = 0; i < 200; ++i) {
    Bytes da = gen_a.next_datagram();
    Bytes db = gen_b.next_datagram();
    sent_octets += da.size() + db.size();
    outstanding_ab.insert(da);
    outstanding_ba.insert(db);
    link.a().submit_datagram(0x0021, da);
    link.b().submit_datagram(0x0021, db);
    sent += 2;
  }

  // Move SONET frames until the queues drain (each frame carries ~37 kB).
  link.exchange_frames(12);
  link.a().drain_rx(2000);
  link.b().drain_rx(2000);

  std::printf("\ntraffic: %llu datagrams (%llu octets) sent, %llu delivered, %llu corrupt\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(sent_octets),
              static_cast<unsigned long long>(delivered_ab + delivered_ba),
              static_cast<unsigned long long>(corrupted));

  const auto& ls = link.line_ab_stats();
  std::printf("\nline A->B: %llu octets, %llu bit errors (measured BER %.2e)\n",
              static_cast<unsigned long long>(ls.octets),
              static_cast<unsigned long long>(ls.bit_errors),
              ls.octets ? static_cast<double>(ls.bit_errors) / (8.0 * ls.octets) : 0.0);

  const auto& ds = link.a_to_b_stats();
  std::printf("SONET B (rx): %llu frames in sync, %llu resyncs, B1 errs %llu, B3 errs %llu\n",
              static_cast<unsigned long long>(ds.frames_in_sync),
              static_cast<unsigned long long>(ds.resyncs),
              static_cast<unsigned long long>(ds.b1_errors),
              static_cast<unsigned long long>(ds.b3_errors));

  auto report_p5 = [](const char* name, core::P5& dev) {
    std::printf("%s: frames ok %llu, fcs bad %llu, aborts %llu, runts %llu, "
                "escapes tx/rx %llu/%llu\n",
                name,
                static_cast<unsigned long long>(dev.rx_control().counters().frames_ok),
                static_cast<unsigned long long>(dev.rx_crc().bad_frames()),
                static_cast<unsigned long long>(dev.flag_delineator().counters().aborts),
                static_cast<unsigned long long>(dev.flag_delineator().counters().runts),
                static_cast<unsigned long long>(dev.escape_generate().escapes_inserted()),
                static_cast<unsigned long long>(dev.escape_detect().escapes_removed()));
  };
  report_p5("P5 A", link.a());
  report_p5("P5 B", link.b());

  capture.save("gigabit_link.p5ca");
  std::printf("\nfirst frames at B (capture saved to gigabit_link.p5ca):\n%s",
              capture.summary(5).c_str());

  if (corrupted != 0) {
    std::printf("\nFAIL: corrupted datagrams slipped through the FCS\n");
    return 1;
  }
  std::printf("\nOK: every delivered datagram was bit-exact; losses were FCS-detected.\n");
  return 0;
}
