file(REMOVE_RECURSE
  "CMakeFiles/p5_netlist.dir/area_report.cpp.o"
  "CMakeFiles/p5_netlist.dir/area_report.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/builder.cpp.o"
  "CMakeFiles/p5_netlist.dir/builder.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/circuits/control_circuits.cpp.o"
  "CMakeFiles/p5_netlist.dir/circuits/control_circuits.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/circuits/crc_circuit.cpp.o"
  "CMakeFiles/p5_netlist.dir/circuits/crc_circuit.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/circuits/escape_circuits.cpp.o"
  "CMakeFiles/p5_netlist.dir/circuits/escape_circuits.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/circuits/oam_circuit.cpp.o"
  "CMakeFiles/p5_netlist.dir/circuits/oam_circuit.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/circuits/p5_circuit.cpp.o"
  "CMakeFiles/p5_netlist.dir/circuits/p5_circuit.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/circuits/sorter_common.cpp.o"
  "CMakeFiles/p5_netlist.dir/circuits/sorter_common.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/device.cpp.o"
  "CMakeFiles/p5_netlist.dir/device.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/equiv.cpp.o"
  "CMakeFiles/p5_netlist.dir/equiv.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/lut_mapper.cpp.o"
  "CMakeFiles/p5_netlist.dir/lut_mapper.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/netlist.cpp.o"
  "CMakeFiles/p5_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/p5_netlist.dir/verilog.cpp.o"
  "CMakeFiles/p5_netlist.dir/verilog.cpp.o.d"
  "libp5_netlist.a"
  "libp5_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
