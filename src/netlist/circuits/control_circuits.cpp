#include "netlist/circuits/control_circuits.hpp"

#include <bit>
#include <string>

#include "hdlc/accm.hpp"
#include "netlist/circuits/sorter_common.hpp"

namespace p5::netlist::circuits {

namespace {

using hdlc::kFlag;

constexpr std::size_t kStateBits = 3;    // IDLE/HEADER/PAYLOAD/FCS/FLAG/FILL
constexpr std::size_t kLenBits = 11;     // frame lengths up to 2047 octets
constexpr std::size_t kFcsBits = 32;

/// Generic state register + next-state mux network driven by `conditions`:
/// a schematic-level FSM of the given size.
Bus build_fsm(Builder& b, const std::vector<NodeId>& conditions) {
  const Bus state = b.dff_bus(kStateBits);
  // Next state: a decision tree over the condition inputs — each condition
  // selects between "advance" (state+1) and specific jumps, modelling the
  // one-hot/priority structure a real control FSM synthesises into.
  const Bus advance = trunc_bus(b.add(state, b.constant_bus(1, kStateBits)), kStateBits);
  Bus next = advance;
  std::size_t jump = 0;
  for (const NodeId c : conditions) {
    const Bus target = b.constant_bus(jump++ % (1u << kStateBits), kStateBits);
    next = b.mux_bus(c, next, target);
  }
  b.wire_dff_bus(state, next);
  return state;
}

/// Length down-counter with load, plus zero comparator.
struct Counter {
  Bus value;
  NodeId is_zero;
};

Counter build_down_counter(Builder& b, const Bus& load_value, NodeId load, NodeId enable,
                           u64 step) {
  Netlist& nl = b.netlist();
  const std::size_t w = load_value.size();
  const Bus reg = b.dff_bus(w);
  const u64 mask = (w >= 64) ? ~u64{0} : ((u64{1} << w) - 1);
  const Bus dec = trunc_bus(b.add(reg, b.constant_bus((~step + 1) & mask, w)), w);
  const Bus stepped = b.mux_bus(enable, reg, dec);
  b.wire_dff_bus(reg, b.mux_bus(load, stepped, load_value));
  Counter c;
  c.value = reg;
  c.is_zero = nl.not_(b.reduce_or(reg));
  return c;
}

}  // namespace

Netlist make_tx_control_circuit(unsigned lanes) {
  Netlist nl("tx_control_" + std::to_string(lanes * 8));
  Builder b(nl);

  // Programmable header registers (OAM-written): MAPOS-capable address,
  // control, 2-octet protocol.
  const Bus cfg_data = b.input_bus("cfg_d", 8);
  const NodeId cfg_we = nl.input("cfg_we");
  const Bus cfg_addr = b.input_bus("cfg_a", 2);
  const Bus reg_address = b.dff_bus(8);
  const Bus reg_control = b.dff_bus(8);
  const Bus reg_proto_hi = b.dff_bus(8);
  const Bus reg_proto_lo = b.dff_bus(8);
  const std::vector<Bus> header_regs{reg_address, reg_control, reg_proto_hi, reg_proto_lo};
  for (std::size_t r = 0; r < header_regs.size(); ++r) {
    const NodeId sel = b.eq_const(cfg_addr, r);
    const NodeId we = nl.and_(cfg_we, sel);
    b.wire_dff_bus(header_regs[r], b.mux_bus(we, header_regs[r], cfg_data));
  }

  // Frame sequencing: start strobe + length from the shared-memory DMA.
  const NodeId start = nl.input("start");
  const Bus frame_len = b.input_bus("len", kLenBits);
  const NodeId payload_valid = nl.input("payload_valid");
  const NodeId downstream_ready = nl.input("ds_ready");

  const NodeId advance = nl.and_(payload_valid, downstream_ready);
  const Counter remaining = build_down_counter(b, frame_len, start, advance, lanes);

  // FCS input from the CRC unit, registered for the append phase.
  const Bus fcs_in = b.input_bus("fcs", kFcsBits);
  const Bus fcs_reg = b.dff_bus(kFcsBits);
  const NodeId fcs_capture = nl.input("fcs_capture");
  b.wire_dff_bus(fcs_reg, b.mux_bus(fcs_capture, fcs_reg, fcs_in));

  const Bus state = build_fsm(b, {start, remaining.is_zero, nl.not_(payload_valid)});

  // Per-lane datapath: steer header octet / payload octet / FCS octet.
  const Bus payload = b.input_bus("pay", 8 * lanes);
  const std::vector<Bus> pay_lanes = split_lanes(payload, lanes);
  const NodeId in_header = b.eq_const(state, 1);
  const NodeId in_fcs = b.eq_const(state, 3);
  for (unsigned i = 0; i < lanes; ++i) {
    // Header source for this lane (rotates with alignment — modelled as a
    // mux over the four header registers selected by the low counter bits).
    const Bus hsel = Bus(remaining.value.begin(), remaining.value.begin() + 2);
    Bus header_byte = b.onehot_mux(
        {b.eq_const(hsel, 0), b.eq_const(hsel, 1), b.eq_const(hsel, 2), b.eq_const(hsel, 3)},
        header_regs);
    Bus fcs_byte(fcs_reg.begin() + (i % 4) * 8, fcs_reg.begin() + (i % 4 + 1) * 8);
    Bus lane = b.mux_bus(in_header, pay_lanes[i], header_byte);
    lane = b.mux_bus(in_fcs, lane, fcs_byte);
    b.output_bus(lane, "out" + std::to_string(i) + "_");
  }
  nl.output(b.eq_const(state, 2), "crc_enable");
  nl.output(remaining.is_zero, "frame_done");
  return nl;
}

Netlist make_rx_control_circuit(unsigned lanes) {
  Netlist nl("rx_control_" + std::to_string(lanes * 8));
  Builder b(nl);

  // Programmable expected-address register (the MAPOS filter).
  const Bus cfg_data = b.input_bus("cfg_d", 8);
  const NodeId cfg_we = nl.input("cfg_we");
  const Bus reg_address = b.dff_bus(8);
  b.wire_dff_bus(reg_address, b.mux_bus(cfg_we, reg_address, cfg_data));

  const Bus data = b.input_bus("in", 8 * lanes);
  const NodeId in_valid = nl.input("in_valid");
  const NodeId sof = nl.input("sof");
  const NodeId eof = nl.input("eof");
  const std::vector<Bus> in_lanes = split_lanes(data, lanes);

  // Address filter + header capture.
  const NodeId addr_ok = b.eq_bus(in_lanes[0], reg_address);
  const Bus proto_reg = b.dff_bus(16);
  const NodeId capture_proto = nl.and_(sof, in_valid);
  Bus proto_src;
  if (lanes >= 4) {
    proto_src.insert(proto_src.end(), in_lanes[3].begin(), in_lanes[3].end());
    proto_src.insert(proto_src.end(), in_lanes[2].begin(), in_lanes[2].end());
  } else {
    proto_src.insert(proto_src.end(), in_lanes[lanes - 1].begin(), in_lanes[lanes - 1].end());
    proto_src.insert(proto_src.end(), in_lanes[0].begin(), in_lanes[0].end());
  }
  b.wire_dff_bus(proto_reg, b.mux_bus(capture_proto, proto_reg, proto_src));

  // Received-length up-counter (for the status registers / MRU check).
  const Bus len = b.dff_bus(kLenBits);
  const Bus len_inc = trunc_bus(b.add(len, b.constant_bus(lanes, kLenBits)), kLenBits);
  const Bus len_next = b.mux_bus(in_valid, len, len_inc);
  b.wire_dff_bus(len, b.mux_bus(sof, len_next, b.constant_bus(lanes, kLenBits)));
  const NodeId oversize = b.ge_const(len, 1504 + 8);

  // FCS residue comparator — the "good frame" decision.
  const Bus crc_state = b.input_bus("crc", kFcsBits);
  const NodeId fcs_good = b.eq_const(crc_state, 0xDEBB20E3ull);

  const Bus state = build_fsm(b, {sof, eof, nl.not_(addr_ok)});

  // Status flops toward the OAM block.
  const NodeId frame_ok = nl.dff(nl.and_(nl.and_(eof, fcs_good), addr_ok));
  const NodeId frame_err = nl.dff(nl.and_(eof, nl.not_(fcs_good)));
  const NodeId drop_addr = nl.dff(nl.and_(sof, nl.not_(addr_ok)));
  nl.output(frame_ok, "frame_ok");
  nl.output(frame_err, "frame_err");
  nl.output(drop_addr, "addr_drop");
  nl.output(oversize, "oversize");
  b.output_bus(proto_reg, "proto");
  b.output_bus(state, "state");
  return nl;
}

Netlist make_flag_inserter_circuit(unsigned lanes) {
  Netlist nl("flag_inserter_" + std::to_string(lanes * 8));
  Builder b(nl);

  const Bus in = b.input_bus("in", 8 * lanes);
  const NodeId in_valid = nl.input("in_valid");
  const NodeId eof = nl.input("eof");

  if (lanes == 1) {
    // 8-bit: a mux that injects the flag during inter-frame cycles.
    const NodeId idle = nl.not_(in_valid);
    const NodeId inject = nl.or_(idle, eof);
    const Bus flag = b.constant_bus(kFlag, 8);
    const Bus out = b.mux_bus(inject, in, flag);
    Bus reg = b.dff_bus(8);
    b.wire_dff_bus(reg, out);
    b.output_bus(reg, "out");
    nl.output(nl.dff(nl.constant(true)), "out_valid");
    return nl;
  }

  // Wide datapath: closing-flag insertion shifts the tail of the frame —
  // another expansion sorter, one extra slot for the flag octet.
  const std::vector<Bus> in_lanes = split_lanes(in, lanes);
  const Bus valid_lanes = b.input_bus("lane_en", lanes);  // partial final word

  std::vector<Bus> slots;
  const Bus flag = b.constant_bus(kFlag, 8);
  // Slot j: data lane j while enabled, else the flag (at the boundary).
  for (unsigned j = 0; j < lanes + 1; ++j) {
    if (j < lanes) {
      slots.push_back(b.mux_bus(valid_lanes[j], flag, in_lanes[j]));
    } else {
      slots.push_back(flag);
    }
  }
  // Count = popcount(lane_en) + (eof ? 1 : 0).
  Bus count = b.popcount(valid_lanes);
  count = trunc_bus(b.add_bit(count, eof), bits_for(lanes + 1));
  const QueueResult q = build_resync_queue(b, lanes, 2 * lanes + 2, slots, count, in_valid);
  nl.output(q.accept, "in_ready");
  b.output_bus(q.out_word, "out");
  nl.output(q.out_valid, "out_valid");
  return nl;
}

Netlist make_flag_delineator_circuit(unsigned lanes) {
  Netlist nl("flag_delineator_" + std::to_string(lanes * 8));
  Builder b(nl);

  const Bus in = b.input_bus("in", 8 * lanes);
  const NodeId in_valid = nl.input("in_valid");
  const std::vector<Bus> in_lanes = split_lanes(in, lanes);

  if (lanes == 1) {
    const NodeId is_flag = b.eq_const(in, kFlag);
    const NodeId in_frame = nl.dff();
    nl.set_dff_input(in_frame, nl.mux(in_valid, in_frame, nl.or_(is_flag, in_frame)));
    Bus reg = b.dff_bus(8);
    b.wire_dff_bus(reg, in);
    b.output_bus(reg, "out");
    nl.output(nl.dff(nl.and_(in_valid, nl.not_(is_flag))), "out_valid");
    nl.output(nl.dff(is_flag), "boundary");
    return nl;
  }

  // Wide datapath: flags can sit in any lane, so surviving octets must be
  // compacted and realigned — a compaction sorter keyed on the flag
  // comparators, structurally the Escape Detect queue without the XOR.
  Bus keep;
  std::vector<NodeId> flag_here;
  for (unsigned i = 0; i < lanes; ++i) {
    const NodeId f = b.eq_const(in_lanes[i], kFlag);
    flag_here.push_back(f);
    keep.push_back(nl.not_(f));
  }

  // Compaction positions via prefix sums (registered descriptor stage).
  const std::size_t pos_bits = bits_for(lanes - 1);
  const std::size_t cnt_bits = bits_for(lanes);
  const Bus s_word = b.dff_bus(8 * lanes);
  const Bus s_keep = b.dff_bus(lanes);
  std::vector<Bus> s_pos;
  for (unsigned i = 0; i < lanes; ++i) s_pos.push_back(b.dff_bus(pos_bits));
  const Bus s_count = b.dff_bus(cnt_bits);
  const NodeId s_valid = nl.dff();

  std::vector<Bus> pos_now;
  for (unsigned i = 0; i < lanes; ++i) {
    if (i == 0) {
      pos_now.push_back(b.constant_bus(0, pos_bits));
      continue;
    }
    const Bus before(keep.begin(), keep.begin() + i);
    pos_now.push_back(b.table_bus(
        before, [](u64 v) { return static_cast<u64>(std::popcount(v)); }, pos_bits));
  }
  const Bus prefix = b.table_bus(
      keep, [](u64 v) { return static_cast<u64>(std::popcount(v)); }, cnt_bits);

  const std::vector<Bus> s_lanes = split_lanes(s_word, lanes);
  std::vector<Bus> slots;
  for (unsigned j = 0; j < lanes; ++j) {
    std::vector<NodeId> sels;
    std::vector<Bus> choices;
    for (unsigned i = j; i < lanes; ++i) {
      sels.push_back(nl.and_(b.eq_const(s_pos[i], j), s_keep[i]));
      choices.push_back(s_lanes[i]);
    }
    slots.push_back(b.onehot_mux(sels, choices));
  }
  const QueueResult q = build_resync_queue(b, lanes, 2 * lanes, slots, s_count, s_valid);

  const NodeId s_can_load = nl.or_(nl.not_(s_valid), q.accept);
  b.wire_dff_bus(s_word, b.mux_bus(s_can_load, s_word, in));
  b.wire_dff_bus(s_keep, b.mux_bus(s_can_load, s_keep, keep));
  for (unsigned i = 0; i < lanes; ++i)
    b.wire_dff_bus(s_pos[i], b.mux_bus(s_can_load, s_pos[i], pos_now[i]));
  b.wire_dff_bus(s_count, b.mux_bus(s_can_load, s_count, prefix));
  nl.set_dff_input(s_valid, nl.mux(s_can_load, s_valid, in_valid));

  nl.output(s_can_load, "in_ready");
  b.output_bus(q.out_word, "out");
  nl.output(q.out_valid, "out_valid");
  nl.output(nl.dff(b.reduce_or(flag_here)), "boundary");
  return nl;
}

}  // namespace p5::netlist::circuits
