file(REMOVE_RECURSE
  "CMakeFiles/test_ppp.dir/test_ppp.cpp.o"
  "CMakeFiles/test_ppp.dir/test_ppp.cpp.o.d"
  "test_ppp"
  "test_ppp.pdb"
  "test_ppp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
