// Gate-level Protocol OAM block: the microprocessor-facing register file
// with write decode, read multiplexer, and the interrupt controller
// (per-source pending + mask, one IRQ line) through which "control and
// status information [is] exchanged between an external microcontroller and
// the internal Receiver and Transmitter blocks" (paper Section 3).
//
// Parameterised on the host-bus width: the 8-bit P5 exposes an 8-bit
// register file, the 32-bit P5 a 32-bit one.
#pragma once

#include "netlist/netlist.hpp"

namespace p5::netlist::circuits {

[[nodiscard]] Netlist make_oam_circuit(unsigned bus_bits, unsigned num_registers = 8,
                                       unsigned num_irqs = 8);

}  // namespace p5::netlist::circuits
