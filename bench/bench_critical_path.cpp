// E7 — Paper Section 4 timing analysis: "the critical path is the same for
// each device and in each case passes through 6 [LUTs]. The delay at each
// LUT is slightly greater with Virtex technology ... this speed-up is not
// achieved by a more efficient placement and routing process but [is due] to
// the technological advantage Virtex II offers over Virtex."
#include <cstdio>

#include "bench_util.hpp"
#include "crc/parallel_crc.hpp"
#include "netlist/circuits/control_circuits.hpp"
#include "netlist/circuits/crc_circuit.hpp"
#include "netlist/circuits/escape_circuits.hpp"
#include "netlist/circuits/p5_circuit.hpp"
#include "netlist/device.hpp"
#include "netlist/lut_mapper.hpp"

int main() {
  using namespace p5::netlist;
  p5::bench::banner("E7 / bench_critical_path — LUT-level depth and per-device fmax",
                    "Section 4: 6-LUT critical path; Virtex-II faster purely per-LUT");

  p5::bench::paper_says("critical path ~6 LUT levels on both families; the Virtex-II "
                        "speed-up comes from smaller per-level delay, not from layout.");

  std::printf("\nper-module critical depth (32-bit P5):\n");
  std::printf("  %-28s %8s\n", "module", "depth");
  struct Row {
    const char* name;
    Netlist nl;
  };
  std::vector<Row> rows;
  rows.push_back({"escape_generate_32", circuits::make_escape_generate_circuit(4)});
  rows.push_back({"escape_detect_32", circuits::make_escape_detect_circuit(4)});
  rows.push_back({"crc_unit32x32", circuits::make_crc_unit_circuit(p5::crc::kFcs32, 4)});
  rows.push_back({"flag_delineator_32", circuits::make_flag_delineator_circuit(4)});
  rows.push_back({"tx_control_32", circuits::make_tx_control_circuit(4)});
  std::size_t depth = 0;
  for (auto& r : rows) {
    const MapResult m = map_to_luts(r.nl);
    depth = std::max(depth, m.depth);
    std::printf("  %-28s %8zu\n", r.name, m.depth);
  }

  const AreaReport r32 = circuits::p5_system_report(4);
  const AreaReport r8 = circuits::p5_system_report(1);
  std::printf("\nsystem critical path: 32-bit = %zu LUT levels, 8-bit = %zu LUT levels "
              "(paper: ~6)\n",
              r32.critical_depth(), r8.critical_depth());

  std::printf("\nfmax at the 32-bit system depth (%zu levels):\n", r32.critical_depth());
  std::printf("  %-12s %12s %12s\n", "device", "pre-layout", "post-layout");
  for (const Device& d : all_devices()) {
    std::printf("  %-12s %9.1f MHz %9.1f MHz\n", d.name.c_str(),
                d.fmax_mhz(r32.critical_depth(), false), d.fmax_mhz(r32.critical_depth(), true));
  }

  // The paper's observation: same depth on both families, speed-up from the
  // per-LUT delay alone.
  const double virtex = xcv600_4().fmax_mhz(r32.critical_depth(), true);
  const double virtex2 = xc2v1000_6().fmax_mhz(r32.critical_depth(), true);
  std::printf("\nVirtex-II / Virtex speed-up at identical depth: %.2fx\n", virtex2 / virtex);
  const double required = required_clock_mhz(2.5, 32);
  std::printf("2.5 Gbps requires %.3f MHz: Virtex %s, Virtex-II %s\n", required,
              virtex >= required ? "meets" : "misses", virtex2 >= required ? "meets" : "misses");
  return 0;
}
