# Empty compiler generated dependencies file for test_mapos.
# This may be replaced when dependencies are built.
