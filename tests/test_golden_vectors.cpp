// Table-driven golden vectors: RFC 1662 FCS check values and residues,
// canonical octet-stuffing transformations, and full hardcoded wire frames.
//
// Every vector here was computed independently of this codebase (catalogue
// CRC check values; frames assembled by hand per RFC 1662 §3/§4 and checked
// against zlib's CRC-32), so these tests anchor all three datapath engines —
// scalar reference, SWAR fast path, and the cycle-level byte sorters — to
// the standard rather than to each other.
#include <gtest/gtest.h>

#include "crc/crc_reference.hpp"
#include "crc/crc_table.hpp"
#include "fastpath/scalar_ref.hpp"
#include "hdlc/frame.hpp"
#include "hdlc/stuffing.hpp"
#include "testing/diff_oracle.hpp"

namespace p5::testing {
namespace {

Bytes bytes_of(std::initializer_list<int> v) {
  Bytes out;
  for (const int b : v) out.push_back(static_cast<u8>(b));
  return out;
}

Bytes ascii(const char* s) {
  Bytes out;
  for (; *s; ++s) out.push_back(static_cast<u8>(*s));
  return out;
}

// ---- FCS check values ---------------------------------------------------

struct CrcVector {
  const char* name;
  const crc::CrcSpec& spec;
  Bytes data;
  u32 expect;
};

class CrcGolden : public ::testing::TestWithParam<CrcVector> {};

TEST_P(CrcGolden, TableSlicingAndBitwiseAllMatchTheCatalogueValue) {
  const CrcVector& v = GetParam();
  // Slicing-by-8 production path.
  const crc::TableCrc table(v.spec);
  EXPECT_EQ(table.crc(v.data), v.expect) << v.name;
  // Seed byte-at-a-time path.
  const fastpath::scalar::ByteTableCrc scalar(v.spec);
  EXPECT_EQ(scalar.crc(v.data), v.expect) << v.name;
  // Bit-at-a-time reference.
  u32 state = v.spec.init;
  for (const u8 b : v.data) state = crc::bitwise_step(v.spec, state, b);
  EXPECT_EQ((state ^ v.spec.xorout) & v.spec.mask(), v.expect) << v.name;
}

TEST_P(CrcGolden, AppendingTheFcsLsbFirstYieldsTheMagicResidue) {
  const CrcVector& v = GetParam();
  const crc::TableCrc table(v.spec);
  Bytes with_fcs = v.data;
  const u32 fcs = table.crc(v.data);
  for (unsigned i = 0; i < v.spec.width / 8; ++i)
    with_fcs.push_back(static_cast<u8>(fcs >> (8 * i)));
  EXPECT_EQ(table.update(v.spec.init, with_fcs), v.spec.residue) << v.name;
  EXPECT_TRUE(table.check(with_fcs)) << v.name;
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1662, CrcGolden,
    ::testing::Values(
        // CRC catalogue check inputs ("123456789").
        CrcVector{"fcs16_check", crc::kFcs16, ascii("123456789"), 0x906Eu},
        CrcVector{"fcs32_check", crc::kFcs32, ascii("123456789"), 0xCBF43926u},
        // Empty input: init ^ xorout.
        CrcVector{"fcs16_empty", crc::kFcs16, {}, 0x0000u},
        CrcVector{"fcs32_empty", crc::kFcs32, {}, 0x00000000u},
        // A default PPP IPv4 frame header+payload, FCS computed by hand.
        CrcVector{"fcs16_frame", crc::kFcs16,
                  bytes_of({0xFF, 0x03, 0x00, 0x21, 0x45, 0x00, 0x7E, 0x7D, 0x20}), 0x1046u},
        CrcVector{"fcs32_frame", crc::kFcs32,
                  bytes_of({0xFF, 0x03, 0x00, 0x21, 0x45, 0x00, 0x7E, 0x7D, 0x20}),
                  0x82BA7C85u}),
    [](const auto& info) { return info.param.name; });

TEST(CrcResidues, MagicValuesMatchRfc1662) {
  EXPECT_EQ(crc::kFcs16.residue, 0xF0B8u);
  EXPECT_EQ(crc::kFcs32.residue, 0xDEBB20E3u);
}

// ---- canonical stuffing transformations (RFC 1662 §4.2) -----------------

struct StuffVector {
  const char* name;
  hdlc::Accm accm;
  Bytes raw;
  Bytes stuffed;
};

class StuffGolden : public ::testing::TestWithParam<StuffVector> {};

TEST_P(StuffGolden, AllThreeTransmitEnginesEmitTheCanonicalImage) {
  const StuffVector& v = GetParam();
  EXPECT_EQ(hdlc::stuff(v.raw, v.accm), v.stuffed) << v.name;
  EXPECT_EQ(fastpath::scalar::stuff(v.raw, v.accm), v.stuffed) << v.name;
  for (const unsigned lanes : {1u, 4u})
    EXPECT_EQ(escape_generate_stream(lanes, v.raw, v.accm), v.stuffed)
        << v.name << " lanes " << lanes;
}

TEST_P(StuffGolden, BothReceiveEnginesInvertIt) {
  const StuffVector& v = GetParam();
  const auto sw = hdlc::destuff(v.stuffed);
  EXPECT_TRUE(sw.ok) << v.name;
  EXPECT_EQ(sw.data, v.raw) << v.name;
  const auto scalar = fastpath::scalar::destuff(v.stuffed);
  EXPECT_TRUE(scalar.second) << v.name;
  EXPECT_EQ(scalar.first, v.raw) << v.name;
  const auto hw = escape_detect_stream(4, v.stuffed);
  EXPECT_FALSE(hw.abort) << v.name;
  EXPECT_EQ(hw.data, v.raw) << v.name;
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1662, StuffGolden,
    ::testing::Values(
        StuffVector{"flag", hdlc::Accm::sonet(), bytes_of({0x7E}), bytes_of({0x7D, 0x5E})},
        StuffVector{"escape", hdlc::Accm::sonet(), bytes_of({0x7D}), bytes_of({0x7D, 0x5D})},
        StuffVector{"plain_7f", hdlc::Accm::sonet(), bytes_of({0x7F}), bytes_of({0x7F})},
        // On SONET links control characters pass through...
        StuffVector{"sonet_control", hdlc::Accm::sonet(), bytes_of({0x00, 0x1F, 0x11}),
                    bytes_of({0x00, 0x1F, 0x11})},
        // ...on async links the default ACCM escapes every one of them.
        StuffVector{"async_control", hdlc::Accm::async_default(), bytes_of({0x00, 0x1F, 0x11}),
                    bytes_of({0x7D, 0x20, 0x7D, 0x3F, 0x7D, 0x31})},
        StuffVector{"mixed", hdlc::Accm::sonet(), bytes_of({0x41, 0x7D, 0x42, 0x7E, 0x43}),
                    bytes_of({0x41, 0x7D, 0x5D, 0x42, 0x7D, 0x5E, 0x43})},
        StuffVector{"back_to_back", hdlc::Accm::sonet(), bytes_of({0x7E, 0x7E, 0x7D, 0x7D}),
                    bytes_of({0x7D, 0x5E, 0x7D, 0x5E, 0x7D, 0x5D, 0x7D, 0x5D})}),
    [](const auto& info) { return info.param.name; });

// ---- full wire frames ---------------------------------------------------

// Default framing (address FF, control 03), protocol 0x0021 (IPv4), payload
// 45 00 7E 7D 20. Assembled by hand: FCS over FF 03 00 21 45 00 7E 7D 20,
// appended LSB-first, then 7E/7D stuffed, flags added.
const Bytes kGoldenPayload = bytes_of({0x45, 0x00, 0x7E, 0x7D, 0x20});

TEST(WireGolden, Fcs32FrameMatchesTheHandAssembledImage) {
  const Bytes expect =
      bytes_of({0x7E, 0xFF, 0x03, 0x00, 0x21, 0x45, 0x00, 0x7D, 0x5E, 0x7D, 0x5D, 0x20, 0x85,
                0x7C, 0xBA, 0x82, 0x7E});
  hdlc::FrameConfig cfg;  // defaults: FCS-32, no compression
  EXPECT_EQ(hdlc::build_wire_frame(cfg, 0x0021, kGoldenPayload), expect);

  DiffOracle oracle(cfg);
  const auto enc = oracle.encode(0x0021, kGoldenPayload);
  EXPECT_TRUE(enc.agree) << enc.diagnosis;
  EXPECT_EQ(enc.wire, expect);
}

TEST(WireGolden, Fcs16FrameMatchesTheHandAssembledImage) {
  const Bytes expect = bytes_of(
      {0x7E, 0xFF, 0x03, 0x00, 0x21, 0x45, 0x00, 0x7D, 0x5E, 0x7D, 0x5D, 0x20, 0x46, 0x10, 0x7E});
  hdlc::FrameConfig cfg;
  cfg.fcs = hdlc::FcsKind::kFcs16;
  EXPECT_EQ(hdlc::build_wire_frame(cfg, 0x0021, kGoldenPayload), expect);

  DiffOracle oracle(cfg);
  const auto enc = oracle.encode(0x0021, kGoldenPayload);
  EXPECT_TRUE(enc.agree) << enc.diagnosis;
  EXPECT_EQ(enc.wire, expect);
}

TEST(WireGolden, GoldenFramesRoundTripThroughEveryReceiveEngine) {
  for (const auto kind : {hdlc::FcsKind::kFcs32, hdlc::FcsKind::kFcs16}) {
    hdlc::FrameConfig cfg;
    cfg.fcs = kind;
    DiffOracle oracle(cfg);
    const auto enc = oracle.encode(0x0021, kGoldenPayload);
    ASSERT_TRUE(enc.agree) << enc.diagnosis;
    const auto dec = oracle.decode(enc.stuffed);
    EXPECT_TRUE(dec.agree) << dec.diagnosis;
    EXPECT_TRUE(dec.ok);
    EXPECT_EQ(dec.recovered, enc.content);
  }
}

}  // namespace
}  // namespace p5::testing
