// Gate-level parallel CRC core: the W-bit-per-clock XOR-matrix datapath the
// paper synthesises ("8 x 32-bit parallel matrix" / "32 x 32-bit parallel
// matrix", after Pei & Zukowski).
//
// Interface (netlist primary I/O):
//   inputs : data[W], enable, init
//   outputs: state[width]
// Per clock: init loads the spec's preset value; otherwise enable consumes
// one W-bit block through the matrix; idle cycles hold state.
//
// The XOR trees are generated straight from crc::ParallelCrc::matrix(), so
// the structural circuit and the behavioural model cannot diverge.
#pragma once

#include "crc/parallel_crc.hpp"
#include "netlist/netlist.hpp"

namespace p5::netlist::circuits {

[[nodiscard]] Netlist make_crc_circuit(const crc::ParallelCrc& crc);

/// The complete CRC *unit* for a multi-lane datapath: frame lengths are not
/// multiples of the bus width, so the final word may carry 1..lanes octets.
/// Sustaining line rate requires a parallel matrix for every partial width
/// (8, 16, ..., 8*lanes bits) and a lane-count-steered selection between
/// them — the "extra decisional logic involved in the CRC" the paper notes.
/// Inputs: data[8*lanes], lane_count[...], enable, init; outputs: state.
[[nodiscard]] Netlist make_crc_unit_circuit(const crc::CrcSpec& spec, unsigned lanes);

}  // namespace p5::netlist::circuits
