// Cycle-accurate CRC units (paper Section 3: "The CRC unit co-ordinates and
// synchronises data being fed into the CRC core").
//
// Both directions drive the same parallel matrix core (crc::ParallelCrc,
// the 8x32 / 32x32 XOR matrix) and add the coordination logic around it:
//
//  * TxCrcUnit: accumulates the FCS across a frame's content words — using
//    the partial-width matrices for a non-full final word — then appends the
//    complemented FCS octets (least-significant first, RFC 1662) behind the
//    frame, re-packing the tail across word boundaries.
//
//  * RxCrcChecker: runs every received octet through the core; because the
//    FCS is the final octets of the frame, a fcs-octet delay line separates
//    payload from checksum. At EOF the register must hold the spec's magic
//    residue; a bad check (or an upstream abort) tags the frame's EOF word
//    with the abort flag.
#pragma once

#include <deque>
#include <functional>

#include "common/types.hpp"
#include "crc/parallel_crc.hpp"
#include "p5/config.hpp"
#include "rtl/fifo.hpp"
#include "rtl/module.hpp"
#include "rtl/word.hpp"

namespace p5::core {

class TxCrcUnit final : public rtl::Module {
 public:
  TxCrcUnit(std::string name, const P5Config& cfg, rtl::Fifo<rtl::Word>& in,
            rtl::Fifo<rtl::Word>& out);

  void eval() override;
  void commit() override;

  [[nodiscard]] u64 frames_sealed() const { return frames_; }

 private:
  unsigned lanes_;
  std::size_t fcs_bytes_;
  crc::ParallelCrc core_;
  rtl::Fifo<rtl::Word>& in_;
  rtl::Fifo<rtl::Word>& out_;

  u32 state_;
  std::deque<u8> staging_;
  bool staging_sof_ = false;
  bool flushing_ = false;  ///< FCS appended; drain staging to EOF

  u32 state_next_;
  std::deque<u8> staging_next_;
  bool staging_sof_next_ = false;
  bool flushing_next_ = false;

  u64 frames_ = 0;
};

class RxCrcChecker final : public rtl::Module {
 public:
  RxCrcChecker(std::string name, const P5Config& cfg, rtl::Fifo<rtl::Word>& in,
               rtl::Fifo<rtl::Word>& out);

  void eval() override;
  void commit() override;

  [[nodiscard]] u64 good_frames() const { return good_; }
  [[nodiscard]] u64 bad_frames() const { return bad_; }
  /// Invoked on every FCS failure / aborted frame (drives the RxError IRQ).
  void set_error_hook(std::function<void()> hook) { error_hook_ = std::move(hook); }

 private:
  unsigned lanes_;
  std::size_t fcs_bytes_;
  crc::ParallelCrc core_;
  rtl::Fifo<rtl::Word>& in_;
  rtl::Fifo<rtl::Word>& out_;

  u32 state_;
  std::deque<u8> delay_;    ///< last fcs_bytes octets (candidate checksum)
  std::deque<u8> staging_;  ///< payload octets ready to leave
  bool staging_sof_ = false;
  bool flushing_ = false;
  bool abort_flag_ = false;
  std::size_t frame_octets_ = 0;

  u32 state_next_;
  std::deque<u8> delay_next_;
  std::deque<u8> staging_next_;
  bool staging_sof_next_ = false;
  bool flushing_next_ = false;
  bool abort_next_ = false;
  std::size_t frame_octets_next_ = 0;

  u64 good_ = 0;
  u64 bad_ = 0;
  std::function<void()> error_hook_;
};

}  // namespace p5::core
