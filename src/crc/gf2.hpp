// Dense linear algebra over GF(2), sized for CRC state-transition matrices
// (tens to a few hundred columns). Rows are packed into 64-bit words.
//
// This is the mathematical core of the paper's parallel CRC unit: the W-bit
// parallel CRC is a GF(2) linear map from (state, data-block) to next state,
// and each matrix row is exactly the XOR tree synthesised in hardware.
#pragma once

#include <bit>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace p5::crc {

/// Dynamic bit vector over GF(2).
class Gf2Vec {
 public:
  Gf2Vec() = default;
  explicit Gf2Vec(std::size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  /// Unit vector e_i of the given length.
  static Gf2Vec unit(std::size_t bits, std::size_t i) {
    Gf2Vec v(bits);
    v.set(i, true);
    return v;
  }

  [[nodiscard]] std::size_t size() const { return bits_; }

  [[nodiscard]] bool get(std::size_t i) const {
    P5_EXPECTS(i < bits_);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }
  void set(std::size_t i, bool v) {
    P5_EXPECTS(i < bits_);
    const u64 mask = u64{1} << (i % 64);
    if (v)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  Gf2Vec& operator^=(const Gf2Vec& o) {
    P5_EXPECTS(bits_ == o.bits_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= o.words_[w];
    return *this;
  }

  /// parity(this AND other) — the GF(2) inner product.
  [[nodiscard]] bool dot(const Gf2Vec& o) const {
    P5_EXPECTS(bits_ == o.bits_);
    u64 acc = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) acc ^= words_[w] & o.words_[w];
    return (std::popcount(acc) & 1) != 0;
  }

  [[nodiscard]] std::size_t popcount() const {
    std::size_t n = 0;
    for (const u64 w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  [[nodiscard]] bool any() const {
    for (const u64 w : words_)
      if (w) return true;
    return false;
  }

  bool operator==(const Gf2Vec&) const = default;

 private:
  std::size_t bits_ = 0;
  std::vector<u64> words_;
};

/// Dense GF(2) matrix (rows x cols).
class Gf2Matrix {
 public:
  Gf2Matrix() = default;
  Gf2Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows, Gf2Vec(cols)) {}

  static Gf2Matrix identity(std::size_t n) {
    Gf2Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.data_[i].set(i, true);
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] const Gf2Vec& row(std::size_t r) const {
    P5_EXPECTS(r < rows_);
    return data_[r];
  }
  Gf2Vec& row(std::size_t r) {
    P5_EXPECTS(r < rows_);
    return data_[r];
  }

  [[nodiscard]] bool get(std::size_t r, std::size_t c) const { return row(r).get(c); }
  void set(std::size_t r, std::size_t c, bool v) { row(r).set(c, v); }

  /// y = M * x.
  [[nodiscard]] Gf2Vec mul(const Gf2Vec& x) const {
    P5_EXPECTS(x.size() == cols_);
    Gf2Vec y(rows_);
    for (std::size_t r = 0; r < rows_; ++r) y.set(r, data_[r].dot(x));
    return y;
  }

  /// C = this * B.
  [[nodiscard]] Gf2Matrix mul(const Gf2Matrix& b) const {
    P5_EXPECTS(cols_ == b.rows_);
    Gf2Matrix c(rows_, b.cols_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t k = 0; k < cols_; ++k)
        if (data_[r].get(k)) c.data_[r] ^= b.data_[k];
    return c;
  }

  /// this^e (square matrices only).
  [[nodiscard]] Gf2Matrix pow(u64 e) const {
    P5_EXPECTS(rows_ == cols_);
    Gf2Matrix result = identity(rows_);
    Gf2Matrix base = *this;
    while (e) {
      if (e & 1) result = result.mul(base);
      base = base.mul(base);
      e >>= 1;
    }
    return result;
  }

  [[nodiscard]] Gf2Matrix transpose() const {
    Gf2Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c)
        if (get(r, c)) t.set(c, r, true);
    return t;
  }

  /// Rank by Gaussian elimination (destroys a copy).
  [[nodiscard]] std::size_t rank() const;

  /// Total number of ones — proportional to the XOR-tree area of a parallel
  /// CRC implementation of this matrix.
  [[nodiscard]] std::size_t ones() const {
    std::size_t n = 0;
    for (const auto& r : data_) n += r.popcount();
    return n;
  }

  bool operator==(const Gf2Matrix&) const = default;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<Gf2Vec> data_;
};

}  // namespace p5::crc
