// E2 — Paper Table 2: "P5 32-bit Implementation", pre/post-layout synthesis
// on XCV600-4 and XC2V1000-6, plus the paper's headline area claim:
// "the 32-bit version ... is approximately 11 times bigger" than the 8-bit
// system, driven by the byte-sorter decision logic.
#include <cstdio>

#include "bench_util.hpp"
#include "netlist/circuits/p5_circuit.hpp"
#include "netlist/device.hpp"

int main() {
  using namespace p5::netlist;
  p5::bench::banner("E2 / bench_table2_p5_32bit — full 32-bit P5 synthesis model",
                    "Table 2: P5 32-bit implementation on XCV600-4 and XC2V1000-6");

  p5::bench::paper_says(
      "32-bit P5 ~11x the 8-bit system (not 4x); ~25% of an XC2V1000; meets "
      "78.125 MHz (2.5 Gbps) on Virtex-II but not on Virtex.");

  const AreaReport r32 = circuits::p5_system_report(4);
  const AreaReport r8 = circuits::p5_system_report(1);

  std::printf("\n%s\n", r32.module_table().c_str());
  std::printf("%s\n", r32.device_table({xcv600_4(), xc2v1000_6()}).c_str());

  const double lut_ratio =
      static_cast<double>(r32.total_luts()) / static_cast<double>(r8.total_luts());
  const double ff_ratio =
      static_cast<double>(r32.total_ffs()) / static_cast<double>(r8.total_ffs());
  std::printf("32-bit vs 8-bit system area ratio: %.1fx LUTs, %.1fx FFs (naive scaling: 4x)\n",
              lut_ratio, ff_ratio);

  const double required = required_clock_mhz(2.5, 32);
  std::printf("required clock for 2.5 Gbps over 32 bits: %.3f MHz\n", required);
  for (const Device& d : {xcv600_4(), xc2v1000_6()}) {
    const double post = d.fmax_mhz(r32.critical_depth(), true);
    std::printf("  %-12s post-layout %6.1f MHz -> %s\n", d.name.c_str(), post,
                post >= required ? "MEETS 2.5 Gbps" : "misses 2.5 Gbps");
  }
  std::printf("XC2V1000 LUT utilisation: %.0f%% (paper: ~25%%, leaving room for a MicroBlaze)\n",
              xc2v1000_6().lut_utilisation(r32.total_luts()));
  return 0;
}
