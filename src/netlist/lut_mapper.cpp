#include "netlist/lut_mapper.hpp"

#include <algorithm>

namespace p5::netlist {

namespace {

struct Leaf {
  NodeId id;     ///< real node id, or kInvalidNode for a virtual (split) LUT
  u32 level;     ///< LUT depth at this leaf's output
};

bool is_source(Op op) {
  return op == Op::kInput || op == Op::kDff || op == Op::kConst0 || op == Op::kConst1;
}
bool is_const(Op op) { return op == Op::kConst0 || op == Op::kConst1; }

/// Merge a leaf into a set (dedup by real id; virtual leaves are unique).
void add_leaf(std::vector<Leaf>& set, Leaf leaf) {
  if (leaf.id != kInvalidNode) {
    for (const Leaf& l : set)
      if (l.id == leaf.id) return;
  }
  set.push_back(leaf);
}

}  // namespace

MapResult map_to_luts(const Netlist& nl, unsigned k) {
  P5_EXPECTS(k >= 2);
  MapResult result;
  result.ffs = nl.num_ffs();

  const std::vector<u32> fanout = nl.fanout_counts();

  // A node must become a LUT root if a DFF or output consumes it, or if it
  // has multiple consumers.
  std::vector<u8> must_root(nl.size(), 0);
  for (NodeId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.at(id);
    if (g.op == Op::kDff && !g.fanin.empty()) must_root[g.fanin[0]] = 1;
    if (fanout[id] > 1) must_root[id] = 1;
  }
  for (const NodeId o : nl.outputs()) must_root[o] = 1;

  // Topological walk via the simulator's ordering logic: recompute here to
  // avoid exposing it — simple DFS.
  std::vector<NodeId> topo;
  {
    std::vector<u8> mark(nl.size(), 0);
    std::vector<std::pair<NodeId, std::size_t>> stack;
    for (NodeId root = 0; root < nl.size(); ++root) {
      if (mark[root] || is_source(nl.at(root).op)) continue;
      stack.emplace_back(root, 0);
      mark[root] = 1;
      while (!stack.empty()) {
        auto& [node, idx] = stack.back();
        const Gate& g = nl.at(node);
        if (idx < g.fanin.size()) {
          const NodeId f = g.fanin[idx++];
          if (mark[f] || is_source(nl.at(f).op)) continue;
          mark[f] = 1;
          stack.emplace_back(f, 0);
        } else {
          mark[node] = 2;
          topo.push_back(node);
          stack.pop_back();
        }
      }
    }
  }
  result.gates = topo.size();

  // Per-node cone description: the leaf set if this node is absorbed into
  // its consumer, and the node's own LUT level when used as a root.
  std::vector<std::vector<Leaf>> cone(nl.size());
  std::vector<u32> root_level(nl.size(), 0);

  auto seal = [&](std::vector<Leaf>& set) -> Leaf {
    // Turn the accumulated leaves into one LUT; returns the virtual leaf.
    u32 level = 0;
    for (const Leaf& l : set) level = std::max(level, l.level);
    ++result.luts;
    const Leaf v{kInvalidNode, level + 1};
    set.clear();
    return v;
  };

  for (const NodeId id : topo) {
    const Gate& g = nl.at(id);

    // Collect candidate leaves from fanins.
    std::vector<Leaf> leaves;
    for (const NodeId f : g.fanin) {
      const Op fop = nl.at(f).op;
      if (is_const(fop)) continue;  // constants fold into the LUT mask
      if (is_source(fop)) {
        add_leaf(leaves, Leaf{f, 0});
      } else if (must_root[f]) {
        add_leaf(leaves, Leaf{f, root_level[f]});
      } else {
        for (const Leaf& l : cone[f]) add_leaf(leaves, l);
      }
    }

    // Inverters are free: pass the cone through.
    if (g.op == Op::kNot && leaves.size() <= 1) {
      cone[id] = leaves;
      if (must_root[id]) {
        // A multiply-used inverter still materialises as a (1-input) LUT.
        u32 level = leaves.empty() ? 0 : leaves[0].level;
        ++result.luts;
        ++result.roots;
        root_level[id] = level + 1;
      }
      continue;
    }

    // Decompose oversized cones: greedily seal groups of k leaves into
    // intermediate LUTs until the set fits.
    while (leaves.size() > k) {
      // Seal the k shallowest leaves to keep the tree balanced.
      std::sort(leaves.begin(), leaves.end(),
                [](const Leaf& a, const Leaf& b) { return a.level < b.level; });
      std::vector<Leaf> group(leaves.begin(), leaves.begin() + k);
      leaves.erase(leaves.begin(), leaves.begin() + k);
      const Leaf v = seal(group);
      add_leaf(leaves, v);
    }

    cone[id] = leaves;
    if (must_root[id]) {
      u32 level = 0;
      for (const Leaf& l : leaves) level = std::max(level, l.level);
      ++result.luts;
      ++result.roots;
      root_level[id] = level + 1;
      result.depth = std::max<std::size_t>(result.depth, root_level[id]);
    }
  }

  // Cones that end exactly at a root were counted; depth also needs roots
  // reachable only through DFF D-inputs, which the loop already covered.
  return result;
}

}  // namespace p5::netlist
