// Human-readable byte dumps for examples, traces and failure messages.
#pragma once

#include <string>

#include "common/types.hpp"

namespace p5 {

/// "7e ff 03 00 21 ..." single-line dump, capped at max_bytes (0 = no cap).
[[nodiscard]] std::string hex_line(BytesView data, std::size_t max_bytes = 0);

/// Classic offset + hex + ASCII multi-line dump.
[[nodiscard]] std::string hex_dump(BytesView data, std::size_t bytes_per_line = 16);

}  // namespace p5
