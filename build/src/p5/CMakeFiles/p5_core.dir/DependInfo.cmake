
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p5/control.cpp" "src/p5/CMakeFiles/p5_core.dir/control.cpp.o" "gcc" "src/p5/CMakeFiles/p5_core.dir/control.cpp.o.d"
  "/root/repo/src/p5/crc_unit.cpp" "src/p5/CMakeFiles/p5_core.dir/crc_unit.cpp.o" "gcc" "src/p5/CMakeFiles/p5_core.dir/crc_unit.cpp.o.d"
  "/root/repo/src/p5/escape_detect.cpp" "src/p5/CMakeFiles/p5_core.dir/escape_detect.cpp.o" "gcc" "src/p5/CMakeFiles/p5_core.dir/escape_detect.cpp.o.d"
  "/root/repo/src/p5/escape_generate.cpp" "src/p5/CMakeFiles/p5_core.dir/escape_generate.cpp.o" "gcc" "src/p5/CMakeFiles/p5_core.dir/escape_generate.cpp.o.d"
  "/root/repo/src/p5/escape_generate8.cpp" "src/p5/CMakeFiles/p5_core.dir/escape_generate8.cpp.o" "gcc" "src/p5/CMakeFiles/p5_core.dir/escape_generate8.cpp.o.d"
  "/root/repo/src/p5/framer.cpp" "src/p5/CMakeFiles/p5_core.dir/framer.cpp.o" "gcc" "src/p5/CMakeFiles/p5_core.dir/framer.cpp.o.d"
  "/root/repo/src/p5/oam.cpp" "src/p5/CMakeFiles/p5_core.dir/oam.cpp.o" "gcc" "src/p5/CMakeFiles/p5_core.dir/oam.cpp.o.d"
  "/root/repo/src/p5/p5.cpp" "src/p5/CMakeFiles/p5_core.dir/p5.cpp.o" "gcc" "src/p5/CMakeFiles/p5_core.dir/p5.cpp.o.d"
  "/root/repo/src/p5/shared_memory.cpp" "src/p5/CMakeFiles/p5_core.dir/shared_memory.cpp.o" "gcc" "src/p5/CMakeFiles/p5_core.dir/shared_memory.cpp.o.d"
  "/root/repo/src/p5/sonet_link.cpp" "src/p5/CMakeFiles/p5_core.dir/sonet_link.cpp.o" "gcc" "src/p5/CMakeFiles/p5_core.dir/sonet_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p5_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/p5_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/crc/CMakeFiles/p5_crc.dir/DependInfo.cmake"
  "/root/repo/build/src/hdlc/CMakeFiles/p5_hdlc.dir/DependInfo.cmake"
  "/root/repo/build/src/sonet/CMakeFiles/p5_sonet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
