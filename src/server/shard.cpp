#include "server/shard.hpp"

#include <unistd.h>

#include <utility>

#include "common/check.hpp"

namespace p5::server {

Shard::Shard(ShardConfig cfg, SessionEnv env_template)
    : cfg_(cfg),
      env_template_(std::move(env_template)),
      adoption_ring_(cfg.adoption_ring),
      uplink_ring_(cfg.uplink_ring) {
  env_template_.loop = &loop_;
  env_template_.transport_tel = &tel_;
  // Sessions hand decoded datagrams to *their own shard's* ring — this shard
  // is the single producer, the uplink owner the single consumer.
  env_template_.uplink_offer = [this](u32 tenant, u16 protocol, Bytes&& payload) {
    return uplink_push(UplinkItem{tenant, protocol, std::move(payload)});
  };
}

Shard::~Shard() {
  stop();
  join();
  sessions_.clear();  // conns deregister from loop_ before it dies
}

bool Shard::offer(PendingConn pc, bool same_context) {
  if (same_context) {
    adopt_now(std::move(pc));
    return true;
  }
  const int fd = pc.fd;
  if (!adoption_ring_.try_push(std::move(pc))) {
    // The ring bounds adoption latency; an overflow is a refused connection,
    // counted here and visible to the acceptor — never a leaked fd.
    ::close(fd);
    adoption_overflow_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Shard::adopt_now(PendingConn pc) {
  auto conn = std::make_unique<transport::StreamConn>(loop_, tel_, cfg_.conn,
                                                      transport::Fd(pc.fd), false, &pool_);
  sessions_.push_back(std::make_unique<Session>(env_template_, std::move(conn), pc.tenant));
  adopted_.fetch_add(1, std::memory_order_relaxed);
  sessions_active_.store(sessions_.size(), std::memory_order_relaxed);
}

void Shard::drain_adoptions() {
  adoption_ring_.drain(cfg_.adoptions_per_slice,
                       [this](PendingConn&& pc) { adopt_now(std::move(pc)); });
}

void Shard::sweep_dead() {
  std::size_t w = 0;
  for (std::size_t r = 0; r < sessions_.size(); ++r) {
    if (!sessions_[r]->dead()) {
      if (w != r) sessions_[w] = std::move(sessions_[r]);
      ++w;
    }
  }
  if (w != sessions_.size()) {
    sessions_.resize(w);
    sessions_active_.store(w, std::memory_order_relaxed);
  }
}

std::size_t Shard::slice(int timeout_ms) {
  std::size_t work = loop_.run_once(timeout_ms);
  drain_adoptions();
  for (auto& s : sessions_) work += s->slice();
  if (on_slice_) on_slice_();
  sweep_dead();
  slices_.fetch_add(1, std::memory_order_relaxed);
  return work;
}

void Shard::start_thread() {
  P5_EXPECTS(!thread_.joinable());
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) slice(1);
    loop_.drain_posted();  // tasks accepted before the stop still run
    // Final adoption sweep: connections fanned out while we were stopping
    // are closed (counted as overflow), not leaked.
    adoption_ring_.drain(adoption_ring_.capacity(), [this](PendingConn&& pc) {
      ::close(pc.fd);
      adoption_overflow_.fetch_add(1, std::memory_order_relaxed);
    });
  });
}

void Shard::stop() {
  stop_.store(true, std::memory_order_release);
  loop_.stop();  // wakes a blocked run_once
}

void Shard::join() {
  if (thread_.joinable()) thread_.join();
}

void Shard::teardown_sessions() {
  sessions_.clear();
  sessions_active_.store(0, std::memory_order_relaxed);
}

}  // namespace p5::server
