file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_p5_32bit.dir/bench_table2_p5_32bit.cpp.o"
  "CMakeFiles/bench_table2_p5_32bit.dir/bench_table2_p5_32bit.cpp.o.d"
  "bench_table2_p5_32bit"
  "bench_table2_p5_32bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_p5_32bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
