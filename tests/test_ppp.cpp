// PPP protocol suite tests: control-packet codec, the RFC 1661 automaton's
// transition table, LCP option negotiation (including loopback detection and
// the FCS-Alternatives option), IPCP address assignment, and two software
// endpoints negotiating a live link end to end.
#include <gtest/gtest.h>

#include <deque>

#include "ppp/endpoint.hpp"
#include "ppp/fsm.hpp"
#include "ppp/ipcp.hpp"
#include "ppp/lcp.hpp"
#include "ppp/packet.hpp"
#include "ppp/protocols.hpp"

namespace p5::ppp {
namespace {

// ---- codec ----

TEST(Packet, SerializeParseRoundTrip) {
  Packet p;
  p.code = static_cast<u8>(Code::kConfigureRequest);
  p.identifier = 42;
  p.data = {1, 2, 3};
  const Bytes wire = p.serialize();
  EXPECT_EQ(wire.size(), 7u);
  EXPECT_EQ(get_be16(wire, 2), 7);
  const auto q = Packet::parse(wire);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->code, p.code);
  EXPECT_EQ(q->identifier, 42);
  EXPECT_EQ(q->data, p.data);
}

TEST(Packet, ParseDropsPadding) {
  Packet p;
  p.code = 1;
  p.data = {9};
  Bytes wire = p.serialize();
  wire.push_back(0xEE);  // inter-frame padding
  const auto q = Packet::parse(wire);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->data, (Bytes{9}));
}

TEST(Packet, ParseRejectsBadLength) {
  EXPECT_FALSE(Packet::parse(Bytes{1, 2}).has_value());
  EXPECT_FALSE(Packet::parse(Bytes{1, 2, 0x00, 0x02}).has_value());   // len < 4
  EXPECT_FALSE(Packet::parse(Bytes{1, 2, 0x00, 0x09, 0}).has_value());  // len > buf
}

TEST(Options, RoundTrip) {
  std::vector<Option> opts;
  opts.push_back(Option{1, {0x05, 0xDC}});
  opts.push_back(Option{5, {1, 2, 3, 4}});
  opts.push_back(Option{7, {}});
  const Bytes wire = serialize_options(opts);
  const auto parsed = parse_options(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, opts);
}

TEST(Options, MalformedRejected) {
  EXPECT_FALSE(parse_options(Bytes{1}).has_value());          // truncated header
  EXPECT_FALSE(parse_options(Bytes{1, 1}).has_value());       // length < 2
  EXPECT_FALSE(parse_options(Bytes{1, 9, 0}).has_value());    // overruns buffer
}

TEST(Protocols, Classification) {
  EXPECT_TRUE(is_network_layer(kProtoIpv4));
  EXPECT_TRUE(is_network_layer(kProtoIpx));
  EXPECT_FALSE(is_network_layer(kProtoLcp));
  EXPECT_TRUE(is_control(kProtoIpcp));
  EXPECT_TRUE(is_valid_protocol(kProtoIpv4));
  EXPECT_FALSE(is_valid_protocol(0x0100));
}

// ---- FSM conformance harness ----

/// Minimal concrete protocol: one no-op option set, records callbacks.
class TestProto final : public Fsm {
 public:
  explicit TestProto(Timeouts t = Timeouts()) : Fsm("TEST", 0xC021, t) {}

  std::vector<Packet> sent;
  int up_calls = 0, down_calls = 0, started = 0, finished = 0;
  bool accept_requests = true;

  using Fsm::receive;

 protected:
  std::vector<Option> build_configure_options() override { return {}; }
  ConfigureVerdict judge_configure_request(const std::vector<Option>&) override {
    ConfigureVerdict v;
    v.ack = accept_requests;
    v.response_code = Code::kConfigureReject;
    return v;
  }
  void on_configure_ack(const std::vector<Option>&) override {}
  void on_configure_nak(const std::vector<Option>&) override {}
  void on_configure_reject(const std::vector<Option>&) override {}
  void this_layer_up() override { ++up_calls; }
  void this_layer_down() override { ++down_calls; }
  void this_layer_started() override { ++started; }
  void this_layer_finished() override { ++finished; }
  void send_packet(const Packet& p) override { sent.push_back(p); }
};

Packet make_pkt(Code code, u8 id, Bytes data = {}) {
  Packet p;
  p.code = static_cast<u8>(code);
  p.identifier = id;
  p.data = std::move(data);
  return p;
}

TEST(Fsm, InitialUpOpenReachesReqSent) {
  TestProto f;
  EXPECT_EQ(f.state(), State::kInitial);
  f.up();
  EXPECT_EQ(f.state(), State::kClosed);
  f.open();
  EXPECT_EQ(f.state(), State::kReqSent);
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].code, static_cast<u8>(Code::kConfigureRequest));
}

TEST(Fsm, OpenThenUpAlsoReachesReqSent) {
  TestProto f;
  f.open();
  EXPECT_EQ(f.state(), State::kStarting);
  EXPECT_EQ(f.started, 1);
  f.up();
  EXPECT_EQ(f.state(), State::kReqSent);
}

TEST(Fsm, FullHandshakeViaAckSent) {
  TestProto f;
  f.up();
  f.open();
  const u8 our_id = f.sent[0].identifier;
  // Peer's Configure-Request arrives: we ack it (Ack-Sent).
  f.receive(make_pkt(Code::kConfigureRequest, 7).serialize());
  EXPECT_EQ(f.state(), State::kAckSent);
  // Peer acks our request: Opened.
  f.receive(make_pkt(Code::kConfigureAck, our_id).serialize());
  EXPECT_EQ(f.state(), State::kOpened);
  EXPECT_EQ(f.up_calls, 1);
}

TEST(Fsm, FullHandshakeViaAckRcvd) {
  TestProto f;
  f.up();
  f.open();
  const u8 our_id = f.sent[0].identifier;
  f.receive(make_pkt(Code::kConfigureAck, our_id).serialize());
  EXPECT_EQ(f.state(), State::kAckRcvd);
  f.receive(make_pkt(Code::kConfigureRequest, 9).serialize());
  EXPECT_EQ(f.state(), State::kOpened);
}

TEST(Fsm, StaleAckIgnored) {
  TestProto f;
  f.up();
  f.open();
  const u8 our_id = f.sent[0].identifier;
  f.receive(make_pkt(Code::kConfigureAck, static_cast<u8>(our_id + 5)).serialize());
  EXPECT_EQ(f.state(), State::kReqSent);  // wrong id: no transition
}

TEST(Fsm, TimeoutRetransmitsUpToMaxConfigure) {
  Fsm::Timeouts t;
  t.max_configure = 3;
  t.restart_ticks = 1;
  TestProto f(t);
  f.up();
  f.open();
  EXPECT_EQ(f.sent.size(), 1u);
  for (int i = 0; i < 10; ++i) f.tick();
  // initial + (max_configure - 1) retransmissions, then give up.
  EXPECT_EQ(f.counters().tx_configure_requests, 3u);
  EXPECT_EQ(f.state(), State::kStopped);
  EXPECT_EQ(f.finished, 1);
}

TEST(Fsm, TerminateHandshake) {
  TestProto f;
  f.up();
  f.open();
  f.receive(make_pkt(Code::kConfigureRequest, 7).serialize());
  f.receive(make_pkt(Code::kConfigureAck, f.sent[0].identifier).serialize());
  ASSERT_EQ(f.state(), State::kOpened);
  f.close();
  EXPECT_EQ(f.state(), State::kClosing);
  EXPECT_EQ(f.down_calls, 1);
  // Peer's Terminate-Ack finishes the teardown.
  f.receive(make_pkt(Code::kTerminateAck, 0).serialize());
  EXPECT_EQ(f.state(), State::kClosed);
}

TEST(Fsm, PeerTerminateFromOpened) {
  TestProto f;
  f.up();
  f.open();
  f.receive(make_pkt(Code::kConfigureRequest, 7).serialize());
  f.receive(make_pkt(Code::kConfigureAck, f.sent[0].identifier).serialize());
  ASSERT_EQ(f.state(), State::kOpened);
  f.sent.clear();
  f.receive(make_pkt(Code::kTerminateRequest, 3).serialize());
  EXPECT_EQ(f.state(), State::kStopping);
  ASSERT_FALSE(f.sent.empty());
  EXPECT_EQ(f.sent.back().code, static_cast<u8>(Code::kTerminateAck));
}

TEST(Fsm, RequestWhileClosedGetsTerminateAck) {
  TestProto f;
  f.up();  // Closed, no Open
  f.sent.clear();
  f.receive(make_pkt(Code::kConfigureRequest, 1).serialize());
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].code, static_cast<u8>(Code::kTerminateAck));
  EXPECT_EQ(f.state(), State::kClosed);
}

TEST(Fsm, UnknownCodeGetsCodeReject) {
  TestProto f;
  f.up();
  f.open();
  f.sent.clear();
  f.receive(make_pkt(static_cast<Code>(99), 1).serialize());
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].code, static_cast<u8>(Code::kCodeReject));
  EXPECT_EQ(f.counters().code_rejects_sent, 1u);
}

TEST(Fsm, DownFromOpenedSignalsLayerDown) {
  TestProto f;
  f.up();
  f.open();
  f.receive(make_pkt(Code::kConfigureRequest, 7).serialize());
  f.receive(make_pkt(Code::kConfigureAck, f.sent[0].identifier).serialize());
  ASSERT_EQ(f.state(), State::kOpened);
  f.down();
  EXPECT_EQ(f.state(), State::kStarting);
  EXPECT_EQ(f.down_calls, 1);
}

TEST(Fsm, ReconfigureFromOpened) {
  TestProto f;
  f.up();
  f.open();
  f.receive(make_pkt(Code::kConfigureRequest, 7).serialize());
  f.receive(make_pkt(Code::kConfigureAck, f.sent[0].identifier).serialize());
  ASSERT_EQ(f.state(), State::kOpened);
  // A new Configure-Request reopens negotiation.
  f.receive(make_pkt(Code::kConfigureRequest, 8).serialize());
  EXPECT_EQ(f.state(), State::kAckSent);
  EXPECT_EQ(f.down_calls, 1);
}

TEST(Fsm, MalformedPacketSilentlyDiscarded) {
  TestProto f;
  f.up();
  f.open();
  const auto before = f.state();
  f.receive(Bytes{0xFF});
  EXPECT_EQ(f.state(), before);
}

// ---- RFC 1661 §4.6 restart-counter / Max-Failure discipline ----

TEST(Fsm, StoppingAfterPeerTerminateTimesOutToStopped) {
  // RFC 1661 §4.3 Opened + RTR: zrc must *arm* the restart timer with the
  // counter at zero, so one timeout period later tlf fires and the automaton
  // lands in Stopped. (Regression pin: zrc used to zero the counter without
  // arming the timer, hanging Stopping forever.)
  Fsm::Timeouts t;
  t.restart_ticks = 3;
  TestProto f(t);
  f.up();
  f.open();
  f.receive(make_pkt(Code::kConfigureRequest, 7).serialize());
  f.receive(make_pkt(Code::kConfigureAck, f.sent[0].identifier).serialize());
  ASSERT_EQ(f.state(), State::kOpened);
  f.receive(make_pkt(Code::kTerminateRequest, 3).serialize());
  ASSERT_EQ(f.state(), State::kStopping);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(f.state(), State::kStopping);
    f.tick();
  }
  EXPECT_EQ(f.state(), State::kStopped);
  EXPECT_EQ(f.finished, 1);
}

TEST(Fsm, SpuriousRequestWhileOpenedRenegotiatesOnce) {
  // RFC 1661's Opened + RCR action order is tld, scr, sca — the new
  // Configure-Request must precede the Ack on the wire. With the Ack first,
  // the peer (waiting in Ack-Sent) opens on the Ack and then treats the
  // trailing Request as yet another renegotiation: two Opened automatons
  // ping-pong down/up forever off one duplicated request. (Regression pin:
  // found as a broker-storm livelock under line truncation.)
  TestProto a, b;
  a.up();
  a.open();
  b.up();
  b.open();
  // In-order wire pump: each side's sent vector is the wire.
  const auto pump = [&]() {
    int rounds = 0;
    while ((!a.sent.empty() || !b.sent.empty()) && rounds < 50) {
      ++rounds;
      std::vector<Packet> qa, qb;
      qa.swap(a.sent);
      qb.swap(b.sent);
      for (const Packet& p : qa) b.receive(p.serialize());
      for (const Packet& p : qb) a.receive(p.serialize());
    }
    return rounds;
  };
  pump();
  ASSERT_EQ(a.state(), State::kOpened);
  ASSERT_EQ(b.state(), State::kOpened);
  const u64 baseline_tx = a.counters().tx_configure_requests;

  // A stale duplicate of a's last Configure-Request arrives at b.
  b.receive(make_pkt(Code::kConfigureRequest, 99).serialize());
  const int rounds = pump();
  EXPECT_LT(rounds, 50);  // converged, not the cap
  EXPECT_EQ(a.state(), State::kOpened);
  EXPECT_EQ(b.state(), State::kOpened);
  // One renegotiation: each side sent exactly one more Configure-Request.
  EXPECT_EQ(a.counters().tx_configure_requests, baseline_tx + 1);
  EXPECT_EQ(b.counters().tx_configure_requests, baseline_tx + 1);
  EXPECT_EQ(a.down_calls, 1);
  EXPECT_EQ(b.down_calls, 1);
}

TEST(Fsm, ReceivedNakFloodStopsTheAutomaton) {
  // A peer that Naks every Configure-Request re-initializes the restart
  // counter each round, so Max-Configure alone never fires. The §4.6
  // Max-Failure budget on *received* Naks must stop the loop.
  Fsm::Timeouts t;
  t.max_failure = 3;
  TestProto f(t);
  f.up();
  f.open();
  for (int round = 0; round < 10 && f.state() != State::kStopped; ++round) {
    const u8 id = f.sent.back().identifier;
    f.receive(make_pkt(Code::kConfigureNak, id, Bytes{}).serialize());
  }
  EXPECT_EQ(f.state(), State::kStopped);
  EXPECT_EQ(f.counters().nak_loops_broken, 1u);
  EXPECT_EQ(f.finished, 1);
  // The budget allows exactly max_failure Naks before giving up: the initial
  // request plus one retransmission per tolerated Nak.
  EXPECT_EQ(f.counters().tx_configure_requests, 1u + t.max_failure);
}

/// Judge hook that Naks every request (suggesting an empty option list).
class NakkingProto final : public Fsm {
 public:
  explicit NakkingProto(Timeouts t = Timeouts()) : Fsm("NAK", 0xC021, t) {}
  std::vector<Packet> sent;
  using Fsm::receive;

 protected:
  std::vector<Option> build_configure_options() override { return {}; }
  ConfigureVerdict judge_configure_request(const std::vector<Option>& opts) override {
    ConfigureVerdict v;
    v.ack = false;
    v.response_code = Code::kConfigureNak;
    v.response_options = opts;
    return v;
  }
  void on_configure_ack(const std::vector<Option>&) override {}
  void on_configure_nak(const std::vector<Option>&) override {}
  void on_configure_reject(const std::vector<Option>&) override {}
  void send_packet(const Packet& p) override { sent.push_back(p); }
};

TEST(Fsm, SentNakBudgetEscalatesToReject) {
  // The transmit-side half of §4.6: after max_failure Naks of the same
  // conversation, stop hinting and Configure-Reject instead, so the peer's
  // automaton gets a definitive verdict it can converge on.
  Fsm::Timeouts t;
  t.max_failure = 3;
  NakkingProto f(t);
  f.up();
  f.open();
  const std::vector<Option> opts{Option{1, {0x05, 0xDC}}};
  for (u8 id = 1; id <= 5; ++id) {
    f.receive(make_pkt(Code::kConfigureRequest, id, serialize_options(opts)).serialize());
  }
  unsigned naks = 0, rejects = 0;
  for (const Packet& p : f.sent) {
    if (p.code == static_cast<u8>(Code::kConfigureNak)) ++naks;
    if (p.code == static_cast<u8>(Code::kConfigureReject)) ++rejects;
  }
  EXPECT_EQ(naks, 3u);
  EXPECT_EQ(rejects, 2u);
  EXPECT_GE(f.counters().nak_loops_broken, 1u);
}

// ---- paired-FSM convergence ----

/// Wire two TestProtos through queues and pump until quiescent.
void pump(TestProto& a, TestProto& b) {
  for (int round = 0; round < 20; ++round) {
    std::vector<Packet> from_a, from_b;
    std::swap(from_a, a.sent);
    std::swap(from_b, b.sent);
    if (from_a.empty() && from_b.empty()) return;
    for (const auto& p : from_a) b.receive(p.serialize());
    for (const auto& p : from_b) a.receive(p.serialize());
  }
}

TEST(Fsm, TwoAutomataConverge) {
  TestProto a, b;
  a.up();
  b.up();
  a.open();
  b.open();
  pump(a, b);
  EXPECT_EQ(a.state(), State::kOpened);
  EXPECT_EQ(b.state(), State::kOpened);
}

TEST(Fsm, CleanShutdownOfConvergedPair) {
  TestProto a, b;
  a.up();
  b.up();
  a.open();
  b.open();
  pump(a, b);
  a.close();
  pump(a, b);
  EXPECT_EQ(a.state(), State::kClosed);
  EXPECT_EQ(b.state(), State::kStopping);  // waits for its own finish
}

// ---- LCP ----

struct LcpPair {
  std::vector<std::pair<u16, Packet>> a_out, b_out;
  LcpConfig ca, cb;
  std::unique_ptr<Lcp> a, b;

  explicit LcpPair(LcpConfig a_cfg = {}, LcpConfig b_cfg = {}) : ca(a_cfg), cb(b_cfg) {
    cb.magic_seed = ca.magic_seed + 99;
    a = std::make_unique<Lcp>(ca, [this](u16 pr, const Packet& p) { a_out.emplace_back(pr, p); });
    b = std::make_unique<Lcp>(cb, [this](u16 pr, const Packet& p) { b_out.emplace_back(pr, p); });
  }
  void pump() {
    for (int round = 0; round < 30; ++round) {
      auto fa = std::move(a_out);
      auto fb = std::move(b_out);
      a_out.clear();
      b_out.clear();
      if (fa.empty() && fb.empty()) return;
      for (auto& [pr, p] : fa) b->receive(p.serialize());
      for (auto& [pr, p] : fb) a->receive(p.serialize());
    }
  }
};

TEST(Lcp, NegotiatesToOpened) {
  LcpPair pair;
  pair.a->up();
  pair.b->up();
  pair.a->open();
  pair.b->open();
  pair.pump();
  EXPECT_TRUE(pair.a->is_opened());
  EXPECT_TRUE(pair.b->is_opened());
  EXPECT_TRUE(pair.a->result().fcs32);  // FCS-Alternatives agreed at 32-bit
  EXPECT_TRUE(pair.b->result().fcs32);
}

TEST(Lcp, MruBelowMinimumGetsNaked) {
  LcpConfig tiny;
  tiny.mru = 32;  // below the peer's min_acceptable_mru (64)
  LcpPair pair(tiny, LcpConfig{});
  pair.a->up();
  pair.b->up();
  pair.a->open();
  pair.b->open();
  pair.pump();
  EXPECT_TRUE(pair.a->is_opened());
  EXPECT_TRUE(pair.b->is_opened());
  EXPECT_GE(pair.b->result().peer_mru, 64);  // a's request was steered up
}

TEST(Lcp, PfcAcfcGranted) {
  LcpConfig want;
  want.request_pfc = true;
  want.request_acfc = true;
  LcpPair pair(want, LcpConfig{});
  pair.a->up();
  pair.b->up();
  pair.a->open();
  pair.b->open();
  pair.pump();
  ASSERT_TRUE(pair.a->is_opened());
  EXPECT_TRUE(pair.b->result().tx_pfc);   // b learned a accepts compressed
  EXPECT_TRUE(pair.b->result().tx_acfc);  // (a requested, so a receives them)
}

TEST(Lcp, LoopbackDetectedBySameMagic) {
  // A talking to itself: same magic number comes back.
  std::vector<Packet> wire;
  LcpConfig cfg;
  auto lcp = std::make_unique<Lcp>(cfg, [&wire](u16, const Packet& p) { wire.push_back(p); });
  lcp->up();
  lcp->open();
  // Loop our own Configure-Request straight back.
  ASSERT_FALSE(wire.empty());
  const Packet own = wire[0];
  lcp->receive(own.serialize());
  EXPECT_GE(lcp->loopbacks_detected(), 1u);
}

TEST(Lcp, EchoRequestAnswered) {
  LcpPair pair;
  pair.a->up();
  pair.b->up();
  pair.a->open();
  pair.b->open();
  pair.pump();
  ASSERT_TRUE(pair.a->is_opened());
  pair.a->send_echo_request();
  pair.pump();
  EXPECT_EQ(pair.a->echo_replies(), 1u);
}

TEST(Lcp, UnknownOptionRejectedAndDropped) {
  // Hand-craft a Configure-Request with an unknown option type 0x55.
  std::vector<std::pair<u16, Packet>> out;
  Lcp lcp(LcpConfig{}, [&out](u16 pr, const Packet& p) { out.emplace_back(pr, p); });
  lcp.up();
  lcp.open();
  out.clear();
  Packet req = make_pkt(Code::kConfigureRequest, 1,
                        serialize_options({Option{0x55, {1, 2}}}));
  lcp.receive(req.serialize());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().second.code, static_cast<u8>(Code::kConfigureReject));
  const auto opts = parse_options(out.back().second.data);
  ASSERT_TRUE(opts.has_value());
  ASSERT_EQ(opts->size(), 1u);
  EXPECT_EQ((*opts)[0].type, 0x55);
}


TEST(Lcp, QualityProtocolNegotiated) {
  LcpConfig want;
  want.request_lqr_period = 8;  // we want to RECEIVE LQRs every 8 ticks
  LcpPair pair(want, LcpConfig{});
  pair.a->up();
  pair.b->up();
  pair.a->open();
  pair.b->open();
  pair.pump();
  ASSERT_TRUE(pair.a->is_opened());
  ASSERT_TRUE(pair.b->is_opened());
  // b must now transmit LQRs with the period a asked for.
  EXPECT_EQ(pair.b->result().tx_lqr_period, 8u);
  EXPECT_EQ(pair.a->result().tx_lqr_period, 0u);  // a never got asked
}

TEST(Lcp, QualityProtocolRejectedWhenUnsupported) {
  LcpConfig want;
  want.request_lqr_period = 8;
  LcpConfig refuse;
  refuse.accept_lqm = false;
  LcpPair pair(want, refuse);
  pair.a->up();
  pair.b->up();
  pair.a->open();
  pair.b->open();
  pair.pump();
  ASSERT_TRUE(pair.a->is_opened());  // converges without the option
  EXPECT_EQ(pair.b->result().tx_lqr_period, 0u);
}

TEST(Lcp, NumberedModeNegotiated) {
  LcpConfig want;
  want.request_numbered_window = 5;
  LcpPair pair(want, LcpConfig{});
  pair.a->up();
  pair.b->up();
  pair.a->open();
  pair.b->open();
  pair.pump();
  ASSERT_TRUE(pair.a->is_opened());
  EXPECT_EQ(pair.a->result().numbered_window, 5u);  // peer acked our window
  EXPECT_EQ(pair.b->result().numbered_window, 5u);  // peer saw the request
}

TEST(Lcp, NumberedModeWindowZeroGetsNaked) {
  // Hand-craft a Configure-Request with an invalid window of 0.
  std::vector<std::pair<u16, Packet>> out;
  Lcp lcp(LcpConfig{}, [&out](u16 pr, const Packet& p) { out.emplace_back(pr, p); });
  lcp.up();
  lcp.open();
  out.clear();
  Packet req = make_pkt(Code::kConfigureRequest, 1,
                        serialize_options({Option{kOptNumberedMode, {0}}}));
  lcp.receive(req.serialize());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().second.code, static_cast<u8>(Code::kConfigureNak));
  const auto opts = parse_options(out.back().second.data);
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ((*opts)[0].data[0], 4);  // steered to window 4
}


// ---- IPCP ----

TEST(Ipcp, AddressAssignmentViaNak) {
  std::vector<std::pair<u16, Packet>> a_out, b_out;
  IpcpConfig ca;  // no address: ask the peer
  ca.local_address = 0;
  IpcpConfig cb;
  cb.local_address = 0x0A000001;
  cb.assign_peer_address = 0x0A000002;
  Ipcp a(ca, [&a_out](u16 pr, const Packet& p) { a_out.emplace_back(pr, p); });
  Ipcp b(cb, [&b_out](u16 pr, const Packet& p) { b_out.emplace_back(pr, p); });
  a.up();
  b.up();
  a.open();
  b.open();
  for (int round = 0; round < 30; ++round) {
    auto fa = std::move(a_out);
    auto fb = std::move(b_out);
    a_out.clear();
    b_out.clear();
    if (fa.empty() && fb.empty()) break;
    for (auto& [pr, p] : fa) b.receive(p.serialize());
    for (auto& [pr, p] : fb) a.receive(p.serialize());
  }
  EXPECT_TRUE(a.is_opened());
  EXPECT_TRUE(b.is_opened());
  EXPECT_EQ(a.local_address(), 0x0A000002u);  // assigned by b's Nak
  EXPECT_EQ(b.peer_address(), 0x0A000002u);
}

// ---- full endpoint ----

struct EndpointPair {
  std::unique_ptr<PppEndpoint> a, b;
  std::vector<Bytes> a_rx, b_rx;
  // Queued wires: synchronous delivery would recurse endpoint-to-endpoint
  // through the whole negotiation; a real link is store-and-forward.
  std::deque<Bytes> to_a, to_b;

  EndpointPair() {
    PppEndpoint::Config ca, cb;
    ca.ipcp.local_address = 0x0A000001;
    cb.ipcp.local_address = 0x0A000002;
    a = std::make_unique<PppEndpoint>(
        "A", ca, [this](BytesView w) { to_b.emplace_back(w.begin(), w.end()); });
    b = std::make_unique<PppEndpoint>(
        "B", cb, [this](BytesView w) { to_a.emplace_back(w.begin(), w.end()); });
    a->set_ip_sink([this](BytesView d) { a_rx.emplace_back(d.begin(), d.end()); });
    b->set_ip_sink([this](BytesView d) { b_rx.emplace_back(d.begin(), d.end()); });
  }
  void pump() {
    for (int round = 0; round < 100 && (!to_a.empty() || !to_b.empty()); ++round) {
      std::deque<Bytes> qa, qb;
      std::swap(qa, to_a);
      std::swap(qb, to_b);
      for (const Bytes& w : qb) b->wire_rx(w);
      for (const Bytes& w : qa) a->wire_rx(w);
    }
  }
  void bring_up() {
    a->open();
    b->open();
    a->lower_up();
    b->lower_up();
    for (int i = 0; i < 10 && !(a->ip_ready() && b->ip_ready()); ++i) {
      pump();
      a->tick();
      b->tick();
    }
    pump();
  }
};

TEST(Endpoint, NegotiatesToNetworkPhase) {
  EndpointPair pair;
  pair.bring_up();
  EXPECT_EQ(pair.a->phase(), Phase::kNetwork);
  EXPECT_EQ(pair.b->phase(), Phase::kNetwork);
  EXPECT_TRUE(pair.a->ip_ready());
  EXPECT_TRUE(pair.b->ip_ready());
  // FCS-32 agreed: frames now carry 4-octet checks.
  EXPECT_EQ(pair.a->frame_config().fcs, hdlc::FcsKind::kFcs32);
}

TEST(Endpoint, IpDatagramsFlowBothWays) {
  EndpointPair pair;
  pair.bring_up();
  const Bytes d1{1, 2, 3, 4, 5};
  const Bytes d2{9, 8, 7};
  EXPECT_TRUE(pair.a->send_ip(d1));
  EXPECT_TRUE(pair.b->send_ip(d2));
  pair.pump();
  ASSERT_EQ(pair.b_rx.size(), 1u);
  ASSERT_EQ(pair.a_rx.size(), 1u);
  EXPECT_EQ(pair.b_rx[0], d1);
  EXPECT_EQ(pair.a_rx[0], d2);
}

TEST(Endpoint, SendBeforeOpenDropped) {
  EndpointPair pair;
  EXPECT_FALSE(pair.a->send_ip(Bytes{1, 2, 3}));
  EXPECT_EQ(pair.a->stats().dropped_not_open, 1u);
}

TEST(Endpoint, CorruptedFrameCountedNotDelivered) {
  EndpointPair pair;
  pair.bring_up();
  // Replace b's wire with a corrupting one for a single datagram.
  PppEndpoint::Config ca;
  // Simpler: feed b a corrupted wire image directly.
  const Bytes wire = hdlc::build_wire_frame(pair.a->frame_config(), kProtoIpv4, Bytes{1, 2, 3});
  Bytes bad = wire;
  bad[4] ^= 0x10;
  const auto before = pair.b->stats().fcs_errors;
  pair.b->wire_rx(bad);
  EXPECT_EQ(pair.b->stats().fcs_errors, before + 1);
  EXPECT_TRUE(pair.b_rx.empty());
}

TEST(Endpoint, UnknownProtocolGetsProtocolReject) {
  EndpointPair pair;
  pair.bring_up();
  const Bytes wire =
      hdlc::build_wire_frame(pair.a->frame_config(), 0x3B3B /*unassigned*/, Bytes{1});
  pair.b->wire_rx(wire);
  pair.pump();
  EXPECT_EQ(pair.b->stats().unknown_protocols, 1u);
  // No crash on a's side receiving the Protocol-Reject.
  EXPECT_TRUE(pair.a->ip_ready());
}

TEST(Endpoint, OversizePayloadRefused) {
  EndpointPair pair;
  pair.bring_up();
  EXPECT_FALSE(pair.a->send_ip(Bytes(3000, 0)));
}

TEST(Endpoint, LowerDownResetsToDead) {
  EndpointPair pair;
  pair.bring_up();
  pair.a->lower_down();
  EXPECT_EQ(pair.a->phase(), Phase::kDead);
  EXPECT_FALSE(pair.a->send_ip(Bytes{1}));
}

TEST(Endpoint, LqmComesUpWithNegotiation) {
  EndpointPair pair;
  // Recreate A asking for link-quality reports from B.
  PppEndpoint::Config ca, cb;
  ca.lcp.request_lqr_period = 2;
  ca.ipcp.local_address = 0x0A000001;
  cb.ipcp.local_address = 0x0A000002;
  pair.a = std::make_unique<PppEndpoint>(
      "A", ca, [&pair](BytesView w) { pair.to_b.emplace_back(w.begin(), w.end()); });
  pair.b = std::make_unique<PppEndpoint>(
      "B", cb, [&pair](BytesView w) { pair.to_a.emplace_back(w.begin(), w.end()); });
  pair.bring_up();
  ASSERT_TRUE(pair.a->ip_ready());

  // B transmits LQRs (it was asked to); A only listens.
  ASSERT_NE(pair.b->lqm(), nullptr);
  for (int t = 0; t < 8; ++t) {
    pair.a->tick();
    pair.b->tick();
    pair.pump();
  }
  EXPECT_GE(pair.b->lqm()->lqrs_sent(), 3u);
}

}  // namespace
}  // namespace p5::ppp
