#include "netlist/circuits/escape_circuits.hpp"

#include <bit>
#include <string>

#include "hdlc/accm.hpp"
#include "netlist/builder.hpp"
#include "netlist/circuits/sorter_common.hpp"

namespace p5::netlist::circuits {

namespace {

using hdlc::kEscape;
using hdlc::kFlag;

Netlist make_generate_8bit() {
  Netlist nl("escape_generate_8");
  Builder b(nl);

  const Bus in = b.input_bus("in", 8);
  const NodeId in_valid = nl.input("in_valid");

  const NodeId pending = nl.dff();

  const NodeId is_flag = b.eq_const(in, kFlag);
  const NodeId is_esc = b.eq_const(in, kEscape);
  const NodeId must = nl.or_(is_flag, is_esc);

  // pending: we emitted 0x7D this cycle and stalled the input; next cycle we
  // emit the XORed octet itself.
  const NodeId start_escape = nl.and_(nl.and_(in_valid, must), nl.not_(pending));
  // An invalid input cycle holds pending (upstream keeps data stable while
  // !in_ready, AXI-stream style).
  nl.set_dff_input(pending, nl.mux(in_valid, pending, nl.and_(must, nl.not_(pending))));

  const NodeId in_ready = nl.not_(start_escape);
  nl.output(in_ready, "in_ready");

  const Bus escape_char = b.constant_bus(kEscape, 8);
  const Bus xored = flip_bit5(nl, in);
  const Bus normal_or_esc = b.mux_bus(start_escape, in, escape_char);
  const Bus chosen = b.mux_bus(pending, normal_or_esc, xored);

  const NodeId out_valid = nl.dff(in_valid);
  Bus out = b.dff_bus(8);
  b.wire_dff_bus(out, chosen);
  b.output_bus(out, "out");
  nl.output(out_valid, "out_valid");
  return nl;
}

Netlist make_detect_8bit() {
  Netlist nl("escape_detect_8");
  Builder b(nl);

  const Bus in = b.input_bus("in", 8);
  const NodeId in_valid = nl.input("in_valid");

  const NodeId pending = nl.dff();

  const NodeId is_esc = b.eq_const(in, kEscape);
  const NodeId marker = nl.and_(is_esc, nl.not_(pending));  // delete this octet
  const NodeId drop = nl.and_(in_valid, marker);

  nl.set_dff_input(pending, nl.mux(in_valid, pending, marker));

  nl.output(nl.constant(true), "in_ready");  // 8-bit detect never stalls

  const Bus xored = flip_bit5(nl, in);
  const Bus chosen = b.mux_bus(pending, in, xored);

  const NodeId out_valid = nl.dff(nl.and_(in_valid, nl.not_(drop)));
  Bus out = b.dff_bus(8);
  b.wire_dff_bus(out, chosen);
  b.output_bus(out, "out");
  nl.output(out_valid, "out_valid");
  return nl;
}

Netlist make_generate_wide(unsigned lanes) {
  Netlist nl("escape_generate_" + std::to_string(lanes * 8));
  Builder b(nl);

  const unsigned slots_n = 2 * lanes;
  const std::size_t cells = generate_buffer_cells(lanes);
  const std::size_t pos_bits = bits_for(slots_n - 1);
  const std::size_t cnt_bits = bits_for(slots_n);

  const Bus in = b.input_bus("in", 8 * lanes);
  const NodeId in_valid = nl.input("in_valid");
  const std::vector<Bus> in_lanes = split_lanes(in, lanes);

  // ---- Stage 1 registers: classified input word ----
  const Bus s1_word = b.dff_bus(8 * lanes);
  const Bus s1_must = b.dff_bus(lanes);
  const NodeId s1_valid = nl.dff();

  // ---- Stage 2 registers: routing descriptors ----
  const Bus s2_word = b.dff_bus(8 * lanes);
  const Bus s2_must = b.dff_bus(lanes);
  std::vector<Bus> s2_pos;
  for (unsigned i = 0; i < lanes; ++i) s2_pos.push_back(b.dff_bus(pos_bits));
  const Bus s2_count = b.dff_bus(cnt_bits);
  const NodeId s2_valid = nl.dff();

  // ---- Stage 2 -> queue: the slot-decision crossbar ----
  const std::vector<Bus> s2_lanes = split_lanes(s2_word, lanes);
  const Bus escape_char = b.constant_bus(kEscape, 8);
  std::vector<Bus> slots;
  slots.reserve(slots_n);
  for (unsigned j = 0; j < slots_n; ++j) {
    std::vector<NodeId> sels;
    std::vector<Bus> choices;
    for (unsigned i = 0; i < lanes; ++i) {
      // pos range for lane i is [i, i+lanes]; skip impossible matches.
      if (j + 1 >= i) {
        if (j >= i && j <= i + lanes) {
          const NodeId at_j = b.eq_const(s2_pos[i], j);
          // marker (0x7D) when escaping, the plain octet otherwise.
          sels.push_back(nl.and_(at_j, s2_must[i]));
          choices.push_back(escape_char);
          sels.push_back(nl.and_(at_j, nl.not_(s2_must[i])));
          choices.push_back(s2_lanes[i]);
        }
        if (j >= 1 && j - 1 >= i && j - 1 <= i + lanes) {
          // the XORed octet right after its marker.
          const NodeId at_prev = b.eq_const(s2_pos[i], j - 1);
          sels.push_back(nl.and_(at_prev, s2_must[i]));
          choices.push_back(flip_bit5(nl, s2_lanes[i]));
        }
      }
    }
    slots.push_back(b.onehot_mux(sels, choices));
  }

  const QueueResult q = build_resync_queue(b, lanes, cells, slots, s2_count, s2_valid);

  // ---- handshake chain ----
  const NodeId s2_can_load = nl.or_(nl.not_(s2_valid), q.accept);
  const NodeId s1_can_load = nl.or_(nl.not_(s1_valid), s2_can_load);
  nl.output(s1_can_load, "in_ready");

  // ---- Stage 1 next-state: classify ----
  Bus must_now;
  for (unsigned i = 0; i < lanes; ++i) {
    const NodeId f = b.eq_const(in_lanes[i], kFlag);
    const NodeId e = b.eq_const(in_lanes[i], kEscape);
    must_now.push_back(nl.or_(f, e));
  }
  b.wire_dff_bus(s1_word, b.mux_bus(s1_can_load, s1_word, in));
  b.wire_dff_bus(s1_must, b.mux_bus(s1_can_load, s1_must, must_now));
  nl.set_dff_input(s1_valid, nl.mux(s1_can_load, s1_valid, in_valid));

  // ---- Stage 2 next-state: prefix-sum positions ----
  // pos_i = i + (escapes among lanes 0..i-1): a small function of the must
  // flags, built as two-level logic (single LUTs after mapping).
  std::vector<Bus> pos_now;
  for (unsigned i = 0; i < lanes; ++i) {
    if (i == 0) {
      pos_now.push_back(b.constant_bus(0, pos_bits));
      continue;
    }
    const Bus before(s1_must.begin(), s1_must.begin() + i);
    pos_now.push_back(b.table_bus(
        before, [i](u64 v) { return i + static_cast<u64>(std::popcount(v)); }, pos_bits));
  }
  const Bus count_now = b.table_bus(
      s1_must, [lanes](u64 v) { return lanes + static_cast<u64>(std::popcount(v)); }, cnt_bits);

  b.wire_dff_bus(s2_word, b.mux_bus(s2_can_load, s2_word, s1_word));
  b.wire_dff_bus(s2_must, b.mux_bus(s2_can_load, s2_must, s1_must));
  for (unsigned i = 0; i < lanes; ++i)
    b.wire_dff_bus(s2_pos[i], b.mux_bus(s2_can_load, s2_pos[i], pos_now[i]));
  b.wire_dff_bus(s2_count, b.mux_bus(s2_can_load, s2_count, count_now));
  nl.set_dff_input(s2_valid, nl.mux(s2_can_load, s2_valid, s1_valid));

  // ---- outputs ----
  b.output_bus(q.out_word, "out");
  nl.output(q.out_valid, "out_valid");
  b.output_bus(q.occ, "occ");
  return nl;
}

Netlist make_detect_wide(unsigned lanes) {
  Netlist nl("escape_detect_" + std::to_string(lanes * 8));
  Builder b(nl);

  const std::size_t cells = detect_buffer_cells(lanes);
  const std::size_t pos_bits = bits_for(lanes == 1 ? 1 : lanes - 1);
  const std::size_t cnt_bits = bits_for(lanes);

  const Bus in = b.input_bus("in", 8 * lanes);
  const NodeId in_valid = nl.input("in_valid");
  const std::vector<Bus> in_lanes = split_lanes(in, lanes);

  const NodeId pending = nl.dff();  // escape marker straddles the word gap

  // ---- Stage 1 registers: destuffed lanes + keep flags ----
  const Bus s1_word = b.dff_bus(8 * lanes);
  const Bus s1_keep = b.dff_bus(lanes);
  const NodeId s1_valid = nl.dff();

  // ---- Stage 2 registers: compaction descriptors ----
  const Bus s2_word = b.dff_bus(8 * lanes);
  const Bus s2_keep = b.dff_bus(lanes);
  std::vector<Bus> s2_pos;
  for (unsigned i = 0; i < lanes; ++i) s2_pos.push_back(b.dff_bus(pos_bits));
  const Bus s2_count = b.dff_bus(cnt_bits);
  const NodeId s2_valid = nl.dff();

  // ---- compaction crossbar (S2 -> queue) ----
  const std::vector<Bus> s2_lanes = split_lanes(s2_word, lanes);
  std::vector<Bus> slots;
  for (unsigned j = 0; j < lanes; ++j) {
    std::vector<NodeId> sels;
    std::vector<Bus> choices;
    for (unsigned i = j; i < lanes; ++i) {  // pos_i <= i
      const NodeId at_j = b.eq_const(s2_pos[i], j);
      sels.push_back(nl.and_(at_j, s2_keep[i]));
      choices.push_back(s2_lanes[i]);
    }
    slots.push_back(b.onehot_mux(sels, choices));
  }

  const QueueResult q = build_resync_queue(b, lanes, cells, slots, s2_count, s2_valid);

  const NodeId s2_can_load = nl.or_(nl.not_(s2_valid), q.accept);
  const NodeId s1_can_load = nl.or_(nl.not_(s1_valid), s2_can_load);
  nl.output(s1_can_load, "in_ready");

  // ---- Stage 1 next-state: classify + destuff ----
  // covered_i: lane i is the data octet of an escape (gets XORed, kept).
  // marker_i: lane i is an escape marker (deleted).
  Bus keep_now;
  Bus x_now;
  NodeId covered = pending;
  NodeId last_marker = nl.constant(false);
  for (unsigned i = 0; i < lanes; ++i) {
    const NodeId is_esc = b.eq_const(in_lanes[i], kEscape);
    const NodeId marker = nl.and_(is_esc, nl.not_(covered));
    keep_now.push_back(nl.not_(marker));
    const Bus xored = flip_bit5(nl, in_lanes[i]);
    const Bus lane_out = b.mux_bus(covered, in_lanes[i], xored);
    x_now.insert(x_now.end(), lane_out.begin(), lane_out.end());
    last_marker = marker;
    covered = marker;
  }
  const NodeId input_taken = nl.and_(s1_can_load, in_valid);
  nl.set_dff_input(pending, nl.mux(input_taken, pending, last_marker));

  b.wire_dff_bus(s1_word, b.mux_bus(s1_can_load, s1_word, x_now));
  b.wire_dff_bus(s1_keep, b.mux_bus(s1_can_load, s1_keep, keep_now));
  nl.set_dff_input(s1_valid, nl.mux(s1_can_load, s1_valid, in_valid));

  // ---- Stage 2 next-state: prefix-sum of keep flags (two-level form) ----
  std::vector<Bus> pos_now;
  for (unsigned i = 0; i < lanes; ++i) {
    if (i == 0) {
      pos_now.push_back(b.constant_bus(0, pos_bits));
      continue;
    }
    const Bus before(s1_keep.begin(), s1_keep.begin() + i);
    pos_now.push_back(b.table_bus(
        before, [](u64 v) { return static_cast<u64>(std::popcount(v)); }, pos_bits));
  }
  const Bus count_now = b.table_bus(
      s1_keep, [](u64 v) { return static_cast<u64>(std::popcount(v)); }, cnt_bits);

  b.wire_dff_bus(s2_word, b.mux_bus(s2_can_load, s2_word, s1_word));
  b.wire_dff_bus(s2_keep, b.mux_bus(s2_can_load, s2_keep, s1_keep));
  for (unsigned i = 0; i < lanes; ++i)
    b.wire_dff_bus(s2_pos[i], b.mux_bus(s2_can_load, s2_pos[i], pos_now[i]));
  b.wire_dff_bus(s2_count, b.mux_bus(s2_can_load, s2_count, count_now));
  nl.set_dff_input(s2_valid, nl.mux(s2_can_load, s2_valid, s1_valid));

  b.output_bus(q.out_word, "out");
  nl.output(q.out_valid, "out_valid");
  b.output_bus(q.occ, "occ");
  return nl;
}

}  // namespace

Netlist make_escape_generate_circuit(unsigned lanes) {
  P5_EXPECTS(lanes == 1 || lanes == 2 || lanes == 4 || lanes == 8);
  return lanes == 1 ? make_generate_8bit() : make_generate_wide(lanes);
}

Netlist make_escape_detect_circuit(unsigned lanes) {
  P5_EXPECTS(lanes == 1 || lanes == 2 || lanes == 4 || lanes == 8);
  return lanes == 1 ? make_detect_8bit() : make_detect_wide(lanes);
}

}  // namespace p5::netlist::circuits
