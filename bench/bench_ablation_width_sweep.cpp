// E8 (ours) — Width-scaling ablation: why is the wide P5 so much bigger than
// naive scaling predicts? The paper attributes the ~11x jump to the byte
// sorters ("heavy in combinational logic"). This ablation sweeps the
// datapath width over 8/16/32/64 bits and separates the scaling of each
// subsystem: the sorters scale super-linearly (crossbar area ~ width^2),
// the CRC matrices scale ~linearly in XOR terms, and control/OAM are flat.
#include <cstdio>

#include "bench_util.hpp"
#include "crc/parallel_crc.hpp"
#include "netlist/circuits/escape_circuits.hpp"
#include "netlist/circuits/crc_circuit.hpp"
#include "netlist/circuits/p5_circuit.hpp"
#include "netlist/lut_mapper.hpp"

int main() {
  using namespace p5::netlist;
  p5::bench::banner("E8 / bench_ablation_width_sweep — area scaling by subsystem",
                    "ablation of the paper's 11x / 25x area observations");

  p5::bench::paper_says("size increase is 'mainly due to the byte sorter and buffering "
                        "mechanisms ... heavy in combinational logic'.");

  std::printf("\nwhole system:\n");
  std::printf("  width |   LUTs |   FFs | depth | LUTs vs 8-bit\n");
  std::printf("  ------+--------+-------+-------+--------------\n");
  double base_luts = 0;
  for (const unsigned lanes : {1u, 2u, 4u, 8u}) {
    const AreaReport r = circuits::p5_system_report(lanes);
    if (lanes == 1) base_luts = static_cast<double>(r.total_luts());
    std::printf("  %3u-b | %6zu | %5zu | %5zu | %10.1fx\n", lanes * 8, r.total_luts(),
                r.total_ffs(), r.critical_depth(),
                static_cast<double>(r.total_luts()) / base_luts);
  }

  std::printf("\nescape generate module alone:\n");
  std::printf("  width |   LUTs |   FFs | LUTs vs 8-bit | FFs vs 8-bit\n");
  std::printf("  ------+--------+-------+---------------+-------------\n");
  double base_el = 0, base_ef = 0;
  for (const unsigned lanes : {1u, 2u, 4u, 8u}) {
    const MapResult m = map_to_luts(circuits::make_escape_generate_circuit(lanes));
    if (lanes == 1) {
      base_el = static_cast<double>(m.luts);
      base_ef = static_cast<double>(m.ffs);
    }
    std::printf("  %3u-b | %6zu | %5zu | %11.1fx | %10.1fx\n", lanes * 8, m.luts, m.ffs,
                static_cast<double>(m.luts) / base_el, static_cast<double>(m.ffs) / base_ef);
  }

  std::printf("\nescape detect module alone:\n");
  std::printf("  width |   LUTs |   FFs\n");
  for (const unsigned lanes : {1u, 2u, 4u, 8u}) {
    const MapResult m = map_to_luts(circuits::make_escape_detect_circuit(lanes));
    std::printf("  %3u-b | %6zu | %5zu\n", lanes * 8, m.luts, m.ffs);
  }

  std::printf("\nparallel CRC-32 core (single matrix, no partial-width mux):\n");
  std::printf("  width | XOR terms | max row fan-in | mapped LUTs | depth\n");
  for (const unsigned bits : {8u, 16u, 32u, 64u}) {
    const p5::crc::ParallelCrc pc(p5::crc::kFcs32, bits);
    const MapResult m = map_to_luts(circuits::make_crc_circuit(pc));
    std::printf("  %3u-b | %9zu | %14zu | %11zu | %5zu\n", bits, pc.total_terms(),
                pc.max_row_terms(), m.luts, m.depth);
  }

  std::printf("\nfull CRC unit (with the partial-width matrices a real frame tail needs):\n");
  std::printf("  width | mapped LUTs | vs single matrix\n");
  for (const unsigned lanes : {1u, 2u, 4u}) {
    const MapResult unit = map_to_luts(circuits::make_crc_unit_circuit(p5::crc::kFcs32, lanes));
    const p5::crc::ParallelCrc pc(p5::crc::kFcs32, lanes * 8);
    const MapResult single = map_to_luts(circuits::make_crc_circuit(pc));
    std::printf("  %3u-b | %11zu | %13.2fx\n", lanes * 8, unit.luts,
                static_cast<double>(unit.luts) / static_cast<double>(single.luts));
  }

  std::printf("\nmapper sensitivity — escape generate (32-bit) under different LUT sizes\n"
              "(K=4 is Virtex/Virtex-II; larger K approximates later families and shows\n"
              "how much of the absolute count is mapping, not logic):\n");
  std::printf("  K |   LUTs | depth\n");
  {
    const Netlist nl = circuits::make_escape_generate_circuit(4);
    for (const unsigned k : {4u, 5u, 6u}) {
      const MapResult m = map_to_luts(nl, k);
      std::printf("  %u | %6zu | %5zu\n", k, m.luts, m.depth);
    }
  }

  std::printf("\nconclusion: the sorter crossbars dominate wide-datapath cost (super-linear),\n"
              "matching the paper's account of the 11x system and 25x escape-module ratios.\n");
  return 0;
}
