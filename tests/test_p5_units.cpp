// Cycle-accurate P5 unit tests: each pipeline block driven standalone
// against the RFC 1662 golden models, plus the paper's architectural
// numbers (4-stage escape latency, resynchronisation buffer bounds,
// backpressure behaviour).
#include <gtest/gtest.h>

#include <utility>

#include "common/rng.hpp"
#include "crc/crc_table.hpp"
#include "hdlc/stuffing.hpp"
#include "p5/control.hpp"
#include "p5/crc_unit.hpp"
#include "p5/escape_detect.hpp"
#include "p5/escape_generate.hpp"
#include "p5/escape_generate8.hpp"
#include "p5/framer.hpp"
#include "p5/oam.hpp"
#include "rtl/simulator.hpp"

namespace p5::core {
namespace {

/// Chop a byte buffer into lane-wide words with SOF/EOF marks.
std::vector<rtl::Word> to_frame_words(BytesView bytes, unsigned lanes) {
  std::vector<rtl::Word> words;
  for (std::size_t off = 0; off < bytes.size(); off += lanes) {
    const std::size_t n = std::min<std::size_t>(lanes, bytes.size() - off);
    rtl::Word w = rtl::Word::of(bytes.subspan(off, n));
    w.sof = off == 0;
    w.eof = off + n >= bytes.size();
    words.push_back(w);
  }
  return words;
}

/// Feeds queued words into a channel during eval — evaluated after the unit
/// under test so a capacity-1 channel flows through at one word per cycle,
/// exactly like the upstream pipeline stage would.
class Feeder final : public rtl::Module {
 public:
  explicit Feeder(rtl::Fifo<rtl::Word>& out) : rtl::Module("feeder"), out_(out) {}
  void eval() override {
    if (next_ < words_.size() && out_.can_push()) out_.push(words_[next_++]);
  }
  void commit() override {}
  std::vector<rtl::Word> words_;
  std::size_t next_ = 0;

 private:
  rtl::Fifo<rtl::Word>& out_;
};

/// Drains the output channel every cycle, splitting frames on EOF words.
class Collector final : public rtl::Module {
 public:
  explicit Collector(rtl::Fifo<rtl::Word>& in) : rtl::Module("collector"), in_(in) {}
  void eval() override {
    while (in_.can_pop()) {
      const rtl::Word w = in_.pop();
      progressed_ = true;
      for (std::size_t i = 0; i < w.count(); ++i) current_.push_back(w.lane(i));
      if (w.eof) {
        frames_.push_back(std::move(current_));
        aborted_.push_back(w.abort);
        current_.clear();
      }
    }
  }
  void commit() override {}
  bool take_progress() { return std::exchange(progressed_, false); }

  std::vector<Bytes> frames_;
  std::vector<bool> aborted_;
  Bytes current_;

 private:
  rtl::Fifo<rtl::Word>& in_;
  bool progressed_ = false;
};

/// Drive one module standalone: feed `frames` (each a byte buffer), collect
/// emitted frames (split on EOF words). Returns per-frame output buffers.
template <typename ModuleT>
struct Harness {
  rtl::Fifo<rtl::Word> in{"in", 1};
  rtl::Fifo<rtl::Word> out{"out", 2};
  Collector collector{out};
  ModuleT mod;
  Feeder feeder{in};
  rtl::Simulator sim;

  template <typename... Args>
  explicit Harness(Args&&... args) : mod("mod", std::forward<Args>(args)..., in, out) {
    // Sink-first evaluation order: collector, unit, feeder.
    sim.add(collector);
    sim.add(mod);
    sim.add(feeder);
    sim.add_channel(in);
    sim.add_channel(out);
  }

  struct Result {
    std::vector<Bytes> frames;
    std::vector<bool> aborted;
    u64 cycles = 0;
  };

  Result run(const std::vector<Bytes>& frames, unsigned lanes, u64 max_cycles = 200000) {
    for (const Bytes& f : frames) {
      auto words = to_frame_words(f, lanes);
      feeder.words_.insert(feeder.words_.end(), words.begin(), words.end());
    }
    Result r;
    u64 idle = 0;
    while (r.cycles < max_cycles) {
      sim.step();
      ++r.cycles;
      const bool progressed = collector.take_progress() || feeder.next_ < feeder.words_.size();
      idle = progressed ? 0 : idle + 1;
      if (feeder.next_ >= feeder.words_.size() && idle > 32) break;
    }
    r.frames = collector.frames_;
    r.aborted.assign(collector.aborted_.begin(), collector.aborted_.end());
    return r;
  }
};

// Harness template needs (lanes) or (cfg) before fifos; specialise per type.
struct GenHarness : Harness<EscapeGenerate> {
  explicit GenHarness(unsigned lanes) : Harness<EscapeGenerate>(lanes) {}
};
struct DetHarness : Harness<EscapeDetect> {
  explicit DetHarness(unsigned lanes) : Harness<EscapeDetect>(lanes) {}
};

class EscapeLanes : public ::testing::TestWithParam<unsigned> {};

TEST_P(EscapeLanes, GenerateMatchesGoldenPerFrame) {
  const unsigned lanes = GetParam();
  Xoshiro256 rng(lanes);
  for (const double density : {0.0, 0.05, 0.5, 1.0}) {
    GenHarness h(lanes);
    std::vector<Bytes> frames;
    for (int f = 0; f < 8; ++f) {
      Bytes b;
      const std::size_t len = rng.range(1, 120);
      for (std::size_t i = 0; i < len; ++i)
        b.push_back(rng.chance(density) ? (rng.chance(0.5) ? hdlc::kFlag : hdlc::kEscape)
                                        : rng.byte());
      frames.push_back(std::move(b));
    }
    const auto r = h.run(frames, lanes);
    ASSERT_EQ(r.frames.size(), frames.size()) << "density " << density;
    for (std::size_t f = 0; f < frames.size(); ++f)
      EXPECT_EQ(r.frames[f], hdlc::stuff(frames[f])) << "frame " << f;
  }
}

TEST_P(EscapeLanes, DetectInvertsGenerate) {
  const unsigned lanes = GetParam();
  Xoshiro256 rng(100 + lanes);
  DetHarness h(lanes);
  std::vector<Bytes> stuffed;
  std::vector<Bytes> originals;
  for (int f = 0; f < 10; ++f) {
    Bytes b = rng.bytes(rng.range(1, 150));
    // salt with escape-worthy octets
    for (int k = 0; k < 6; ++k) b[rng.below(b.size())] = rng.chance(0.5) ? 0x7E : 0x7D;
    originals.push_back(b);
    stuffed.push_back(hdlc::stuff(b));
  }
  const auto r = h.run(stuffed, lanes);
  ASSERT_EQ(r.frames.size(), originals.size());
  for (std::size_t f = 0; f < originals.size(); ++f) {
    EXPECT_EQ(r.frames[f], originals[f]) << "frame " << f;
    EXPECT_FALSE(r.aborted[f]);
  }
}

TEST_P(EscapeLanes, DetectFlagsDanglingEscapeAsAbort) {
  const unsigned lanes = GetParam();
  DetHarness h(lanes);
  const auto r = h.run({Bytes{0x11, 0x22, hdlc::kEscape}}, lanes);
  ASSERT_EQ(r.aborted.size(), 1u);
  EXPECT_TRUE(r.aborted[0]);
  EXPECT_EQ(h.mod.aborted_frames(), 1u);
}

TEST_P(EscapeLanes, GenerateQueueNeverExceedsCapacity) {
  const unsigned lanes = GetParam();
  GenHarness h(lanes);
  const Bytes worst(200, hdlc::kFlag);
  (void)h.run({worst}, lanes);
  EXPECT_LE(h.mod.peak_queue_occupancy(), h.mod.queue_capacity());
  EXPECT_EQ(h.mod.escapes_inserted(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Lanes, EscapeLanes, ::testing::Values(1u, 2u, 4u, 8u));

TEST(EscapeGenerate, FourCyclePipelineLatency) {
  // Paper: "the process is divided up into 4 pipelined stages ... the first
  // data transmitted is therefore delayed by 4 clock cycles".
  rtl::Fifo<rtl::Word> in("in", 1);
  rtl::Fifo<rtl::Word> out("out", 2);
  EscapeGenerate gen("gen", 4, in, out);
  rtl::Simulator sim;
  sim.add(gen);
  sim.add_channel(in);
  sim.add_channel(out);

  rtl::Word w = rtl::Word::of(Bytes{1, 2, 3, 4});
  w.sof = true;
  in.push(w);  // presented at cycle 0
  u64 cycles = 0;
  while (!out.can_pop()) {
    // Keep the frame going so the queue reaches a full word.
    if (in.can_push()) in.push(rtl::Word::of(Bytes{5, 6, 7, 8}));
    sim.step();
    ++cycles;
    ASSERT_LT(cycles, 20u);
  }
  // 4 pipeline stages (classify, route, merge, output register); the input
  // channel register adds the 5th edge the testbench observes.
  EXPECT_EQ(cycles, 5u);
}

TEST(EscapeGenerate, SustainsFullRateWithoutEscapes) {
  GenHarness h(4);
  Xoshiro256 rng(5);
  Bytes clean;
  for (int i = 0; i < 4000; ++i) {
    u8 b = rng.byte();
    while (b == 0x7E || b == 0x7D) b = rng.byte();
    clean.push_back(b);
  }
  const auto r = h.run({clean}, 4);
  ASSERT_EQ(r.frames.size(), 1u);
  // 4000 octets at 4 octets/cycle = 1000 cycles + small pipeline overhead.
  EXPECT_LT(r.cycles, 1100u);
  EXPECT_GT(h.mod.stats().bytes_per_cycle(), 3.5);
}

TEST(EscapeGenerate, AllFlagsHalvesThroughputViaBackpressure) {
  GenHarness h(4);
  const Bytes worst(4000, hdlc::kFlag);
  const auto r = h.run({worst}, 4);
  ASSERT_EQ(r.frames.size(), 1u);
  EXPECT_EQ(r.frames[0].size(), 8000u);
  // Output is the bottleneck at 4 octets/cycle -> >= 2000 cycles, and the
  // input sees backpressure roughly every other cycle.
  EXPECT_GE(r.cycles, 2000u);
  EXPECT_GT(h.mod.backpressure_cycles(), 500u);
}


// ---- the paper's faithful 8-bit stall design ----

TEST(EscapeGenerate8, MatchesGoldenStuffer) {
  Xoshiro256 rng(55);
  for (const double density : {0.0, 0.2, 1.0}) {
    rtl::Fifo<rtl::Word> in("in", 4);
    rtl::Fifo<rtl::Word> out("out", 4);
    EscapeGenerate8 gen("gen8", in, out);
    rtl::Simulator sim;
    sim.add(gen);
    sim.add_channel(in);
    sim.add_channel(out);

    Bytes payload;
    for (int i = 0; i < 150; ++i)
      payload.push_back(rng.chance(density) ? (rng.chance(0.5) ? hdlc::kFlag : hdlc::kEscape)
                                            : rng.byte());
    std::size_t off = 0;
    Bytes got;
    for (int cycle = 0; cycle < 2000; ++cycle) {
      if (off < payload.size() && in.can_push()) {
        rtl::Word w;
        w.push(payload[off]);
        w.sof = off == 0;
        w.eof = off + 1 == payload.size();
        in.push(w);
        ++off;
      }
      sim.step();
      while (out.can_pop()) {
        const rtl::Word w = out.pop();
        for (std::size_t i = 0; i < w.count(); ++i) got.push_back(w.lane(i));
      }
      if (off >= payload.size() && got.size() >= hdlc::stuff(payload).size()) break;
    }
    EXPECT_EQ(got, hdlc::stuff(payload)) << "density " << density;
  }
}

TEST(EscapeGenerate8, SingleCycleLatencyUnlikeTheSorter) {
  // The paper's architectural contrast: the 8-bit stall design forwards a
  // transparent octet on the very next edge (1 stage), where the sorter
  // takes its 4 pipeline stages.
  rtl::Fifo<rtl::Word> in("in", 1);
  rtl::Fifo<rtl::Word> out("out", 2);
  EscapeGenerate8 gen("gen8", in, out);
  rtl::Simulator sim;
  sim.add(gen);
  sim.add_channel(in);
  sim.add_channel(out);

  rtl::Word w;
  w.push(0x42);
  in.push(w);
  u64 cycles = 0;
  while (!out.can_pop()) {
    sim.step();
    ++cycles;
    ASSERT_LT(cycles, 10u);
  }
  // One cycle for the input channel register + one through the unit.
  EXPECT_EQ(cycles, 2u);
}

TEST(EscapeGenerate8, EscapeCostsExactlyOneStall) {
  rtl::Fifo<rtl::Word> in("in", 8);
  rtl::Fifo<rtl::Word> out("out", 8);
  EscapeGenerate8 gen("gen8", in, out);
  rtl::Simulator sim;
  sim.add(gen);
  sim.add_channel(in);
  sim.add_channel(out);

  for (const u8 b : {u8{0x11}, u8{0x7E}, u8{0x22}}) {
    rtl::Word w;
    w.push(b);
    in.push(w);
  }
  sim.run(10);
  Bytes got;
  while (out.can_pop()) {
    const rtl::Word w = out.pop();
    got.push_back(w.lane(0));
  }
  EXPECT_EQ(got, (Bytes{0x11, 0x7D, 0x5E, 0x22}));
  EXPECT_EQ(gen.stall_cycles(), 1u);
  EXPECT_EQ(gen.escapes_inserted(), 1u);
}

// ---- CRC units ----

TEST(TxCrcUnit, AppendsCorrectFcs32) {
  Harness<TxCrcUnit> h{(P5Config{})};
  Xoshiro256 rng(6);
  std::vector<Bytes> frames;
  for (int f = 0; f < 6; ++f) frames.push_back(rng.bytes(rng.range(1, 100)));
  const auto r = h.run(frames, 4);
  ASSERT_EQ(r.frames.size(), frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    ASSERT_EQ(r.frames[f].size(), frames[f].size() + 4);
    // content prefix preserved
    EXPECT_TRUE(std::equal(frames[f].begin(), frames[f].end(), r.frames[f].begin()));
    // sealed frame passes the RFC 1662 check
    EXPECT_TRUE(crc::fcs32().check(r.frames[f]));
  }
  EXPECT_EQ(h.mod.frames_sealed(), frames.size());
}

TEST(RxCrcChecker, StripsFcsAndValidates) {
  P5Config cfg;
  Harness<RxCrcChecker> h{cfg};
  Xoshiro256 rng(7);
  std::vector<Bytes> contents;
  std::vector<Bytes> sealed;
  for (int f = 0; f < 6; ++f) {
    Bytes c = rng.bytes(rng.range(1, 100));
    Bytes s = c;
    const u32 fcs = crc::fcs32().crc(c);
    for (int i = 0; i < 4; ++i) s.push_back(static_cast<u8>(fcs >> (8 * i)));
    contents.push_back(std::move(c));
    sealed.push_back(std::move(s));
  }
  const auto r = h.run(sealed, 4);
  ASSERT_EQ(r.frames.size(), contents.size());
  for (std::size_t f = 0; f < contents.size(); ++f) {
    EXPECT_EQ(r.frames[f], contents[f]);
    EXPECT_FALSE(r.aborted[f]);
  }
  EXPECT_EQ(h.mod.good_frames(), contents.size());
}

TEST(RxCrcChecker, CorruptFrameAborted) {
  P5Config cfg;
  Harness<RxCrcChecker> h{cfg};
  Bytes c{1, 2, 3, 4, 5, 6, 7};
  Bytes s = c;
  const u32 fcs = crc::fcs32().crc(c);
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<u8>(fcs >> (8 * i)));
  s[2] ^= 0x80;
  const auto r = h.run({s}, 4);
  ASSERT_EQ(r.aborted.size(), 1u);
  EXPECT_TRUE(r.aborted[0]);
  EXPECT_EQ(h.mod.bad_frames(), 1u);
}

TEST(RxCrcChecker, Fcs16Mode) {
  P5Config cfg;
  cfg.fcs32 = false;
  Harness<RxCrcChecker> h{cfg};
  Bytes c{0xAA, 0xBB, 0xCC};
  Bytes s = c;
  const u32 fcs = crc::fcs16().crc(c);
  s.push_back(static_cast<u8>(fcs));
  s.push_back(static_cast<u8>(fcs >> 8));
  const auto r = h.run({s}, 4);
  ASSERT_EQ(r.frames.size(), 1u);
  EXPECT_EQ(r.frames[0], c);
  EXPECT_FALSE(r.aborted[0]);
}

TEST(RxCrcChecker, RuntFrameAborted) {
  P5Config cfg;
  Harness<RxCrcChecker> h{cfg};
  const auto r = h.run({Bytes{1, 2}}, 4);  // shorter than the FCS itself
  ASSERT_EQ(r.aborted.size(), 1u);
  EXPECT_TRUE(r.aborted[0]);
}

// ---- framer ----

TEST(FlagInserter, WrapsFramesAndFills) {
  Harness<FlagInserter> h{4u};
  const auto r = h.run({Bytes{1, 2, 3, 4, 5}}, 4);
  // Output is a continuous stream (no EOF words), so frames come back as
  // one blob once idle; collect the raw bytes instead.
  Bytes all;
  for (const auto& f : r.frames) append(all, f);
  // run() only splits on EOF which the inserter never sets; gather from the
  // harness' residual current buffer via a fresh manual drive instead.
  rtl::Fifo<rtl::Word> in("in", 1);
  rtl::Fifo<rtl::Word> out("out", 2);
  FlagInserter ins("ins", 4, in, out);
  rtl::Simulator sim;
  sim.add(ins);
  sim.add_channel(in);
  sim.add_channel(out);
  auto words = to_frame_words(Bytes{1, 2, 3, 4, 5}, 4);
  std::size_t next = 0;
  Bytes stream;
  for (int cycle = 0; cycle < 40; ++cycle) {
    if (next < words.size() && in.can_push()) in.push(words[next++]);
    sim.step();
    while (out.can_pop()) {
      const rtl::Word w = out.pop();
      for (std::size_t i = 0; i < w.count(); ++i) stream.push_back(w.lane(i));
    }
  }
  // Expect: fill flags, opening flag, 5 octets, closing flag, fill flags.
  std::size_t first_data = 0;
  while (first_data < stream.size() && stream[first_data] == hdlc::kFlag) ++first_data;
  ASSERT_LT(first_data, stream.size());
  EXPECT_EQ(stream[first_data - 1], hdlc::kFlag);
  EXPECT_EQ(Bytes(stream.begin() + first_data, stream.begin() + first_data + 5),
            (Bytes{1, 2, 3, 4, 5}));
  EXPECT_EQ(stream[first_data + 5], hdlc::kFlag);
  for (std::size_t i = first_data + 6; i < stream.size(); ++i)
    EXPECT_EQ(stream[i], hdlc::kFlag);
  EXPECT_EQ(ins.frames(), 1u);
}

TEST(FlagDelineator, RecoversFramesAtAnyAlignment) {
  for (unsigned shift = 0; shift < 4; ++shift) {
    rtl::Fifo<rtl::Word> in("in", 1);
    rtl::Fifo<rtl::Word> out("out", 2);
    FlagDelineator del("del", 4, in, out);
    rtl::Simulator sim;
    sim.add(del);
    sim.add_channel(in);
    sim.add_channel(out);

    Bytes stream(shift, hdlc::kFlag);  // shift the alignment
    const Bytes f1{1, 2, 3, 4, 5, 6, 7};
    const Bytes f2{8, 9, 10, 11, 12};
    stream.push_back(hdlc::kFlag);
    append(stream, f1);
    stream.push_back(hdlc::kFlag);
    append(stream, f2);
    stream.push_back(hdlc::kFlag);
    while (stream.size() % 4) stream.push_back(hdlc::kFlag);

    std::size_t off = 0;
    std::vector<Bytes> got;
    Bytes current;
    for (int cycle = 0; cycle < 100; ++cycle) {
      if (off < stream.size() && in.can_push()) {
        in.push(rtl::Word::of(BytesView(stream).subspan(off, 4)));
        off += 4;
      }
      sim.step();
      while (out.can_pop()) {
        const rtl::Word w = out.pop();
        for (std::size_t i = 0; i < w.count(); ++i) current.push_back(w.lane(i));
        if (w.eof) {
          got.push_back(std::move(current));
          current.clear();
        }
      }
    }
    ASSERT_EQ(got.size(), 2u) << "shift " << shift;
    EXPECT_EQ(got[0], f1);
    EXPECT_EQ(got[1], f2);
    EXPECT_EQ(del.counters().frames, 2u);
  }
}

TEST(FlagDelineator, CountsAbortsAndRunts) {
  rtl::Fifo<rtl::Word> in("in", 1);
  rtl::Fifo<rtl::Word> out("out", 4);
  FlagDelineator del("del", 4, in, out);
  rtl::Simulator sim;
  sim.add(del);
  sim.add_channel(in);
  sim.add_channel(out);

  Bytes stream{hdlc::kFlag, 1, 2, 3, 4, 0x7D, hdlc::kFlag};  // abort
  append(stream, Bytes{5, 6, hdlc::kFlag});                   // runt
  append(stream, Bytes{1, 2, 3, 4, 5, hdlc::kFlag});          // good
  while (stream.size() % 4) stream.push_back(hdlc::kFlag);

  std::size_t off = 0;
  int eofs = 0, aborts = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    if (off < stream.size() && in.can_push()) {
      in.push(rtl::Word::of(BytesView(stream).subspan(off, 4)));
      off += 4;
    }
    sim.step();
    while (out.can_pop()) {
      const rtl::Word w = out.pop();
      if (w.eof) {
        ++eofs;
        if (w.abort) ++aborts;
      }
    }
  }
  EXPECT_EQ(del.counters().aborts, 1u);
  EXPECT_EQ(del.counters().runts, 1u);
  EXPECT_EQ(del.counters().frames, 1u);
  EXPECT_EQ(eofs, 3);
  EXPECT_EQ(aborts, 2);  // abort + runt both junked downstream
}

// ---- control ----

TEST(TxControl, EmitsHeaderAndPayload) {
  rtl::Fifo<rtl::Word> out("out", 2);
  P5Config cfg;
  cfg.address = 0x04;  // MAPOS style
  TxControl tx("tx", cfg, out);
  rtl::Simulator sim;
  sim.add(tx);
  sim.add_channel(out);

  tx.submit(TxRequest{0x0021, Bytes{0xDE, 0xAD}, std::nullopt});
  Bytes content;
  for (int cycle = 0; cycle < 20; ++cycle) {
    sim.step();
    while (out.can_pop()) {
      const rtl::Word w = out.pop();
      for (std::size_t i = 0; i < w.count(); ++i) content.push_back(w.lane(i));
    }
  }
  EXPECT_EQ(content, (Bytes{0x04, 0x03, 0x00, 0x21, 0xDE, 0xAD}));
  EXPECT_EQ(tx.frames_started(), 1u);
}

TEST(RxControl, FiltersAddressAndDelivers) {
  rtl::Fifo<rtl::Word> in("in", 2);
  P5Config cfg;
  RxControl rx("rx", cfg, in);
  rtl::Simulator sim;
  sim.add(rx);
  sim.add_channel(in);
  std::vector<RxDelivery> got;
  rx.set_sink([&](RxDelivery d) { got.push_back(std::move(d)); });

  auto feed_frame = [&](Bytes content, bool abort = false) {
    auto words = to_frame_words(content, 4);
    words.back().abort = abort;
    for (const auto& w : words) {
      while (!in.can_push()) sim.step();
      in.push(w);
      sim.step();
    }
    sim.run(4);
  };

  feed_frame(Bytes{0xFF, 0x03, 0x00, 0x21, 1, 2, 3});      // good
  feed_frame(Bytes{0x08, 0x03, 0x00, 0x21, 9});            // wrong address
  feed_frame(Bytes{0xFF, 0x03, 0x00, 0x57, 7, 7}, true);   // aborted upstream
  feed_frame(Bytes{0xFF, 0x03});                           // malformed header

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].protocol, 0x0021);
  EXPECT_EQ(got[0].payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(rx.counters().frames_ok, 1u);
  EXPECT_EQ(rx.counters().addr_filtered, 1u);
  EXPECT_EQ(rx.counters().frames_bad, 1u);
  EXPECT_EQ(rx.counters().malformed, 1u);
}

// ---- OAM ----

TEST(Oam, RegisterMapReadsConfig) {
  P5Config cfg;
  cfg.address = 0x42;
  cfg.control = 0x03;
  Oam oam(cfg);
  EXPECT_EQ(oam.read(static_cast<u32>(OamReg::kId)), kOamDeviceId);
  const u32 c = oam.read(static_cast<u32>(OamReg::kConfig));
  EXPECT_EQ(c & 0xFF, 0x42u);
  EXPECT_EQ((c >> 8) & 0xFF, 0x03u);
  EXPECT_TRUE((c >> 16) & 1u);
}

TEST(Oam, WriteConfigInvokesReconfigure) {
  Oam oam(P5Config{});
  P5Config seen;
  bool called = false;
  oam.set_reconfigure_hook([&](const P5Config& c) {
    seen = c;
    called = true;
  });
  oam.write(static_cast<u32>(OamReg::kConfig), 0x0004 | (0x0F << 8));
  ASSERT_TRUE(called);
  EXPECT_EQ(seen.address, 0x04);
  EXPECT_EQ(seen.control, 0x0F);
  EXPECT_FALSE(seen.fcs32);
}

TEST(Oam, InterruptPendingMaskClear) {
  Oam oam(P5Config{});
  oam.raise(OamIrq::kRxFrame);
  EXPECT_FALSE(oam.irq_line());  // masked by default
  oam.write(static_cast<u32>(OamReg::kIntMask), 0x1);
  EXPECT_TRUE(oam.irq_line());
  oam.write(static_cast<u32>(OamReg::kIntPending), 0x1);  // W1C
  EXPECT_FALSE(oam.irq_line());
}

TEST(Oam, CounterSources) {
  Oam oam(P5Config{});
  u64 counter = 17;
  oam.set_counter_source(OamReg::kTxFrames, [&counter] { return counter; });
  EXPECT_EQ(oam.read(static_cast<u32>(OamReg::kTxFrames)), 17u);
  counter = 18;
  EXPECT_EQ(oam.read(static_cast<u32>(OamReg::kTxFrames)), 18u);
}

}  // namespace
}  // namespace p5::core
