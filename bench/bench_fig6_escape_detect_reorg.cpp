// E5 — Paper Figure 6: "Escape Detect Data Organisation Problem".
//
// The inverse scenario: a received word [7D 5E ..] collapses to one octet
// fewer ("there are suddenly only 3 bytes and there is effectively a bubble
// appearing on the channel. Therefore 1 byte of the next set of incoming
// bytes must be inserted into this bubble.") This bench replays it through
// the cycle-accurate 32-bit Escape Detect unit.
#include <cstdio>

#include "bench_util.hpp"
#include "p5/escape_detect.hpp"
#include "rtl/simulator.hpp"

using namespace p5;
using namespace p5::core;

int main() {
  bench::banner("E5 / bench_fig6_escape_detect_reorg — byte-sorter compaction trace",
                "Figure 6: Escape Detect data organisation problem");
  bench::paper_says(
      "input word [7d 5e a1 a2] collapses to 3 octets [7e a1 a2]; the bubble is filled "
      "by the first octet of the next incoming word.");

  rtl::Fifo<rtl::Word> in("in", 8);
  rtl::Fifo<rtl::Word> out("out", 2);
  EscapeDetect det("det", 4, in, out);
  rtl::Simulator sim;
  sim.add(det);
  sim.add_channel(in);
  sim.add_channel(out);

  const std::vector<Bytes> words = {
      {0x7D, 0x5E, 0xA1, 0xA2}, {0xB1, 0xB2, 0xB3, 0xB4}, {0xC1, 0xC2, 0xC3, 0xC4},
      {0xD1, 0xD2, 0xD3, 0xD4},
  };

  // Pre-load the input channel so the trace shows the unit's own pacing,
  // not the testbench's.
  for (std::size_t i = 0; i < words.size(); ++i) {
    rtl::Word w = rtl::Word::of(words[i]);
    w.sof = i == 0;
    w.eof = i + 1 == words.size();
    in.push(w);
  }
  in.commit();

  std::printf("\ncycle | input pending | queue occ | output word\n");
  std::printf("------+---------------+-----------+----------------------\n");
  for (int cycle = 0; cycle < 12; ++cycle) {
    const std::size_t pending = in.size();
    sim.step();
    std::string out_str = "-";
    while (out.can_pop()) out_str = out.pop().to_string();
    std::string in_str = std::to_string(pending) + " words";
    std::printf("%5d | %-13s | %6zu/8  | %s\n", cycle, in_str.c_str(),
                det.queue_occupancy(), out_str.c_str());
  }

  std::printf("\nescapes removed: %llu\n",
              static_cast<unsigned long long>(det.escapes_removed()));
  std::printf("first output word is [7e a1 a2 b1] — the restored flag octet plus the bubble\n"
              "filled from the following word, exactly the Figure 6 reorganisation.\n");
  return 0;
}
