// Clocked-module protocol for the cycle-accurate model.
//
// Each hardware block implements eval() (combinational work for the current
// cycle: read channel fronts, compute, queue pushes/pops, stage next register
// values) and commit() (latch registers on the clock edge). The simulator
// guarantees every module's eval() runs exactly once per cycle, then every
// module's and channel's commit().
#pragma once

#include <string>

namespace p5::rtl {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual void eval() = 0;
  virtual void commit() = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace p5::rtl
