// Shared helpers for the experiment benches: paper-vs-measured banner
// formatting and the standard workload drive for the cycle-accurate model.
#pragma once

#include <cstdio>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "hdlc/accm.hpp"
#include "p5/p5.hpp"

namespace p5::bench {

inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("==============================================================================\n");
}

inline void paper_says(const char* claim) { std::printf("paper:    %s\n", claim); }
inline void we_measure(const std::string& s) { std::printf("measured: %s\n", s.c_str()); }

/// Payload generator at a controlled escape density (fraction of octets that
/// are 0x7E/0x7D and therefore double on the wire).
inline Bytes density_payload(std::size_t len, double density, u64 seed) {
  Xoshiro256 rng(seed);
  Bytes p;
  p.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (density >= 1.0 || (density > 0.0 && rng.chance(density))) {
      p.push_back(rng.chance(0.5) ? hdlc::kFlag : hdlc::kEscape);
    } else {
      u8 b = rng.byte();
      while (b == hdlc::kFlag || b == hdlc::kEscape) b = rng.byte();
      p.push_back(b);
    }
  }
  return p;
}

struct ThroughputResult {
  u64 cycles = 0;
  u64 payload_octets = 0;
  u64 wire_octets = 0;
  double backpressure_frac = 0.0;
  std::size_t peak_queue = 0;

  [[nodiscard]] double payload_bytes_per_cycle() const {
    return cycles ? static_cast<double>(payload_octets) / static_cast<double>(cycles) : 0.0;
  }
  [[nodiscard]] double payload_gbps(double clock_mhz) const {
    return payload_bytes_per_cycle() * 8.0 * clock_mhz / 1000.0;
  }
};

/// Full-device TX measurement: submit datagrams, pull the line at exactly
/// `lanes` octets per cycle until everything has left, count cycles.
inline ThroughputResult measure_tx_throughput(unsigned lanes, double density,
                                              std::size_t datagrams = 20,
                                              std::size_t dgram_len = 1500) {
  core::P5Config cfg;
  cfg.lanes = lanes;
  core::P5 dev(cfg);

  u64 payload = 0;
  for (std::size_t i = 0; i < datagrams; ++i) {
    Bytes p = density_payload(dgram_len, density, 1000 + i);
    payload += p.size() + 4 /*hdr*/ + cfg.fcs_bytes();
    dev.submit_datagram(0x0021, p);
  }

  ThroughputResult r;
  // Pull until the transmitter is drained: frame data has been seen, the
  // shared-memory queue is empty, and the line has gone back to flag fill.
  u64 flag_run = 0;
  bool seen_data = false;
  while (!(seen_data && flag_run >= 64 && dev.tx_control().pending() == 0)) {
    const Bytes chunk = dev.phy_pull_tx(lanes);
    for (const u8 b : chunk) {
      ++r.wire_octets;
      if (b == hdlc::kFlag) {
        ++flag_run;
      } else {
        flag_run = 0;
        seen_data = true;
      }
    }
  }
  r.cycles = dev.cycle();
  r.payload_octets = payload;
  const auto& gen = dev.escape_generate();
  r.peak_queue = gen.peak_queue_occupancy();
  r.backpressure_frac = gen.stats().cycles
                            ? static_cast<double>(gen.backpressure_cycles()) /
                                  static_cast<double>(gen.stats().cycles)
                            : 0.0;
  return r;
}

}  // namespace p5::bench
