#include "net/ipv4.hpp"

#include "common/check.hpp"

namespace p5::net {

u16 internet_checksum(BytesView data) {
  u32 sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) sum += static_cast<u32>((data[i] << 8) | data[i + 1]);
  if (i < data.size()) sum += static_cast<u32>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xFFFFu) + (sum >> 16);
  return static_cast<u16>(~sum & 0xFFFFu);
}

Bytes build_datagram(const Ipv4Header& hdr, BytesView payload) {
  P5_EXPECTS(payload.size() + kIpv4HeaderBytes <= 65535);
  Bytes d;
  d.reserve(kIpv4HeaderBytes + payload.size());
  d.push_back(0x45);  // version 4, IHL 5
  d.push_back(hdr.tos);
  put_be16(d, static_cast<u16>(kIpv4HeaderBytes + payload.size()));
  put_be16(d, hdr.identification);
  put_be16(d, 0);  // flags/fragment offset: unfragmented
  d.push_back(hdr.ttl);
  d.push_back(hdr.protocol);
  put_be16(d, 0);  // checksum placeholder
  put_be32(d, hdr.src);
  put_be32(d, hdr.dst);
  const u16 csum = internet_checksum(BytesView(d).subspan(0, kIpv4HeaderBytes));
  d[10] = static_cast<u8>(csum >> 8);
  d[11] = static_cast<u8>(csum);
  append(d, payload);
  return d;
}

std::optional<ParsedDatagram> parse_datagram(BytesView data) {
  if (data.size() < kIpv4HeaderBytes) return std::nullopt;
  if ((data[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(data[0] & 0xF) * 4;
  if (ihl < kIpv4HeaderBytes || data.size() < ihl) return std::nullopt;
  const u16 total = get_be16(data, 2);
  if (total < ihl || total > data.size()) return std::nullopt;
  if (internet_checksum(data.subspan(0, ihl)) != 0) return std::nullopt;

  ParsedDatagram p;
  p.header.tos = data[1];
  p.header.total_length = total;
  p.header.identification = get_be16(data, 4);
  p.header.ttl = data[8];
  p.header.protocol = data[9];
  p.header.src = get_be32(data, 12);
  p.header.dst = get_be32(data, 16);
  p.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(ihl),
                   data.begin() + total);
  return p;
}

}  // namespace p5::net
