#include "ppp/ipcp.hpp"

#include <optional>

#include "ppp/protocols.hpp"

namespace p5::ppp {

namespace {
Option address_option(u32 addr) {
  Option o;
  o.type = kOptIpAddress;
  put_be32(o.data, addr);
  return o;
}
Option vj_option(u8 max_slot_id, bool comp_slot_id) {
  // RFC 1332 §4: IP-Compression-Protocol (2-octet protocol number) followed
  // by the RFC 1144 §5 parameters Max-Slot-Id and Comp-Slot-Id.
  Option o;
  o.type = kOptIpCompression;
  put_be16(o.data, kProtoVjComp);
  o.data.push_back(max_slot_id);
  o.data.push_back(comp_slot_id ? 1 : 0);
  return o;
}
/// Decode a VJ IP-Compression-Protocol option; nullopt = not VJ / malformed.
std::optional<vj::VjConfig> parse_vj_option(const Option& o) {
  if (o.data.size() != 4 || get_be16(o.data, 0) != kProtoVjComp) return std::nullopt;
  vj::VjConfig cfg;
  cfg.max_slot_id = o.data[2];
  cfg.comp_slot_id = o.data[3] != 0;
  return cfg;
}
}  // namespace

Ipcp::Ipcp(const IpcpConfig& cfg, TxHook tx, Timeouts timeouts)
    : Fsm("IPCP", kProtoIpcp, timeouts), cfg_(cfg), tx_(std::move(tx)) {
  ask_vj_ = cfg_.request_vj;
}

void Ipcp::send_packet(const Packet& pkt) { tx_(kProtoIpcp, pkt); }

std::vector<Option> Ipcp::build_configure_options() {
  std::vector<Option> opts;
  if (ask_vj_) opts.push_back(vj_option(cfg_.vj_max_slot_id, cfg_.vj_comp_slot_id));
  if (ask_address_) opts.push_back(address_option(cfg_.local_address));
  return opts;
}

ConfigureVerdict Ipcp::judge_configure_request(const std::vector<Option>& options) {
  std::vector<Option> rejected;
  std::vector<Option> naked;
  u32 requested = 0;
  std::optional<vj::VjConfig> peer_vj;

  for (const Option& o : options) {
    if (o.type == kOptIpAddress && o.data.size() == 4) {
      requested = get_be32(o.data, 0);
      if (requested == 0) {
        if (cfg_.assign_peer_address != 0) {
          naked.push_back(address_option(cfg_.assign_peer_address));
        } else {
          rejected.push_back(o);  // we cannot assign addresses
        }
      } else if (requested == cfg_.local_address) {
        // Peer wants our address; push it elsewhere if we can.
        if (cfg_.assign_peer_address != 0) {
          naked.push_back(address_option(cfg_.assign_peer_address));
        } else {
          rejected.push_back(o);
        }
      }
    } else if (o.type == kOptIpCompression) {
      // The peer asks to *receive* compressed TCP: this option sizes our
      // compressor. Steer oversized slot tables down to what we offer.
      const auto vj_cfg = parse_vj_option(o);
      if (!vj_cfg || !cfg_.accept_vj) {
        rejected.push_back(o);
      } else if (vj_cfg->max_slot_id > cfg_.vj_max_slot_id) {
        naked.push_back(vj_option(cfg_.vj_max_slot_id, vj_cfg->comp_slot_id));
      } else {
        peer_vj = vj_cfg;
      }
    } else {
      rejected.push_back(o);
    }
  }

  ConfigureVerdict v;
  if (!rejected.empty()) {
    v.response_code = Code::kConfigureReject;
    v.response_options = std::move(rejected);
  } else if (!naked.empty()) {
    v.response_code = Code::kConfigureNak;
    v.response_options = std::move(naked);
  } else {
    v.ack = true;
    peer_address_ = requested;
    if (peer_vj) {
      vj_.tx = true;
      vj_.tx_config = *peer_vj;
    }
  }
  return v;
}

void Ipcp::on_configure_ack(const std::vector<Option>& options) {
  for (const Option& o : options) {
    if (o.type == kOptIpCompression) {
      if (const auto vj_cfg = parse_vj_option(o)) {
        vj_.rx = true;
        vj_.rx_config = *vj_cfg;
      }
    }
  }
}

void Ipcp::on_configure_nak(const std::vector<Option>& options) {
  for (const Option& o : options) {
    if (o.type == kOptIpAddress && o.data.size() == 4) {
      const u32 suggested = get_be32(o.data, 0);
      if (suggested != 0) cfg_.local_address = suggested;
    }
    if (o.type == kOptIpCompression) {
      // Adopt the peer's (smaller) slot table suggestion.
      if (const auto vj_cfg = parse_vj_option(o)) {
        cfg_.vj_max_slot_id = vj_cfg->max_slot_id;
        cfg_.vj_comp_slot_id = vj_cfg->comp_slot_id;
      } else {
        ask_vj_ = false;
      }
    }
  }
}

void Ipcp::on_configure_reject(const std::vector<Option>& options) {
  for (const Option& o : options) {
    if (o.type == kOptIpAddress) ask_address_ = false;
    if (o.type == kOptIpCompression) ask_vj_ = false;
  }
}

void Ipcp::this_layer_up() {
  if (up_hook_) up_hook_(cfg_.local_address, peer_address_);
}

}  // namespace p5::ppp
