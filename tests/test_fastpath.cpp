// Differential and property tests for the word-parallel software fast path
// (src/fastpath): every fast kernel must be byte-identical to the seed-era
// scalar reference it replaced, across randomized inputs including all-escape
// payloads and every boundary length 1..16 where SWAR word/tail handling
// changes shape.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crc/crc_reference.hpp"
#include "crc/crc_table.hpp"
#include "fastpath/scalar_ref.hpp"
#include "fastpath/scrambler_tables.hpp"
#include "fastpath/slice_crc.hpp"
#include "fastpath/stuff_fast.hpp"
#include "fastpath/swar.hpp"
#include "hdlc/frame.hpp"
#include "hdlc/stuffing.hpp"
#include "sonet/scrambler.hpp"

namespace p5::fastpath {
namespace {

using hdlc::Accm;

/// Payload mix that stresses the SWAR scan: escape-free runs, flags, escapes,
/// and control characters in random proportions.
Bytes escape_mix(Xoshiro256& rng, std::size_t len, double density) {
  Bytes p;
  p.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (density >= 1.0 || (density > 0.0 && rng.chance(density))) {
      switch (rng.below(3)) {
        case 0: p.push_back(hdlc::kFlag); break;
        case 1: p.push_back(hdlc::kEscape); break;
        default: p.push_back(static_cast<u8>(rng.below(0x20))); break;
      }
    } else {
      p.push_back(rng.byte());
    }
  }
  return p;
}

// ---------------------------------------------------------------- CRC

TEST(SliceCrc, MatchesBitwiseReferenceAllLengths) {
  Xoshiro256 rng(1);
  const SliceCrc s32(crc::kFcs32), s16(crc::kFcs16);
  for (std::size_t len = 0; len <= 64; ++len) {
    const Bytes data = rng.bytes(len);
    EXPECT_EQ(s32.update(crc::kFcs32.init, data), crc::bitwise_update(crc::kFcs32, crc::kFcs32.init, data))
        << "len " << len;
    EXPECT_EQ(s16.update(crc::kFcs16.init, data), crc::bitwise_update(crc::kFcs16, crc::kFcs16.init, data))
        << "len " << len;
  }
}

TEST(SliceCrc, MatchesSeedByteTableOnLargeRandomBuffers) {
  Xoshiro256 rng(2);
  const scalar::ByteTableCrc old32(crc::kFcs32), old16(crc::kFcs16);
  for (int trial = 0; trial < 20; ++trial) {
    const Bytes data = rng.bytes(rng.range(1, 9000));
    EXPECT_EQ(crc::fcs32().crc(data), old32.crc(data));
    EXPECT_EQ(crc::fcs16().crc(data), old16.crc(data));
  }
}

TEST(SliceCrc, IncrementalSplitsAtArbitraryOffsets) {
  // Slicing must be split-transparent: state carried across any boundary
  // (including mid-word) equals the whole-buffer result.
  Xoshiro256 rng(3);
  const Bytes data = rng.bytes(1500);
  const u32 whole = crc::fcs32().update(crc::kFcs32.init, data);
  for (int trial = 0; trial < 50; ++trial) {
    u32 state = crc::kFcs32.init;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t n = std::min<std::size_t>(rng.range(1, 23), data.size() - off);
      state = crc::fcs32().update(state, BytesView(data).subspan(off, n));
      off += n;
    }
    EXPECT_EQ(state, whole);
  }
}

TEST(SliceCrc, ResidueCheckStillHolds) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Bytes data = rng.bytes(rng.range(1, 300));
    const u32 fcs = crc::fcs32().crc(data);
    for (int i = 0; i < 4; ++i) data.push_back(static_cast<u8>(fcs >> (8 * i)));
    EXPECT_TRUE(crc::fcs32().check(data));
    data[0] ^= 1;
    EXPECT_FALSE(crc::fcs32().check(data));
  }
}

// ---------------------------------------------------------------- SWAR scan

TEST(Swar, PredicatesFlagExactBytes) {
  for (const u8 b : {0x00, 0x01, 0x1F, 0x20, 0x7C, 0x7D, 0x7E, 0x7F, 0x80, 0xFF}) {
    u8 buf[8] = {0x42, 0x42, 0x42, 0x42, 0x42, 0x42, 0x42, 0x42};
    buf[3] = b;
    const u64 v = load_word(buf);
    EXPECT_EQ(eq_bytes(v, hdlc::kEscape) != 0, b == hdlc::kEscape);
    EXPECT_EQ(eq_bytes(v, hdlc::kFlag) != 0, b == hdlc::kFlag);
    EXPECT_EQ(lt_bytes(v, 0x20) != 0, b < 0x20);
  }
}

TEST(Swar, FindNextEscapeMatchesScalarScan) {
  Xoshiro256 rng(5);
  for (const Accm accm : {Accm::sonet(), Accm::async_default(), Accm(0x000A0005u)}) {
    for (int trial = 0; trial < 200; ++trial) {
      const Bytes data = escape_mix(rng, rng.range(0, 64), 0.15);
      std::size_t expected = data.size();
      for (std::size_t i = 0; i < data.size(); ++i)
        if (accm.must_escape(data[i])) {
          expected = i;
          break;
        }
      EXPECT_EQ(find_next_escape(data.data(), 0, data.size(), accm), expected);
    }
  }
}

// ---------------------------------------------------------------- stuffing

class StuffDensity : public ::testing::TestWithParam<double> {};

TEST_P(StuffDensity, SwarStuffByteIdenticalToScalar) {
  const double density = GetParam();
  Xoshiro256 rng(6);
  for (const Accm accm : {Accm::sonet(), Accm::async_default()}) {
    // Every boundary length 1..16, then a spread of larger sizes.
    for (std::size_t len = 1; len <= 16; ++len) {
      const Bytes p = escape_mix(rng, len, density);
      EXPECT_EQ(hdlc::stuff(p, accm), scalar::stuff(p, accm)) << "len " << len;
    }
    for (const std::size_t len : {64u, 255u, 1500u, 9000u}) {
      const Bytes p = escape_mix(rng, len, density);
      const Bytes fast = hdlc::stuff(p, accm);
      EXPECT_EQ(fast, scalar::stuff(p, accm)) << "len " << len;
      EXPECT_EQ(fast.size(), p.size() + hdlc::stuffing_expansion(p, accm));

      // Round trip back through the SWAR destuffer.
      const auto rt = hdlc::destuff(fast);
      EXPECT_TRUE(rt.ok);
      EXPECT_EQ(rt.data, p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, StuffDensity, ::testing::Values(0.0, 1.0 / 128, 0.25, 1.0));

TEST(Stuff, RandomAccmMasksByteIdenticalToScalar) {
  // The SWAR stuffer takes a different path when the negotiated ACCM maps
  // any control characters (accm.map() != 0): the word scan must then flag
  // bytes < 0x20 and filter them through the mask, not just flag/escape.
  // Fuzz that branch across random masks, plus the two extremes: the empty
  // map (PPP-over-SONET, no controls escaped) and the all-controls map.
  Xoshiro256 rng(20);
  std::vector<Accm> masks = {Accm(0), Accm(0xFFFFFFFFu)};
  for (int i = 0; i < 14; ++i) masks.emplace_back(static_cast<u32>(rng.next()));
  for (const Accm accm : masks) {
    for (int trial = 0; trial < 40; ++trial) {
      // High control-character density so random masks actually get hits.
      const Bytes p = escape_mix(rng, rng.range(0, 300), 0.35);
      const Bytes expected = scalar::stuff(p, accm);

      const Bytes fast = hdlc::stuff(p, accm);
      EXPECT_EQ(fast, expected) << "map 0x" << std::hex << accm.map();
      EXPECT_EQ(p.size() + hdlc::stuffing_expansion(p, accm), expected.size())
          << "count_escapes disagrees with scalar, map 0x" << std::hex << accm.map();

      // The fused CRC+stuff pass shares the same escape scan.
      Bytes fused;
      const u32 state =
          stuff_crc_append(fused, p, accm, crc::fcs32().slicer(), crc::kFcs32.init);
      EXPECT_EQ(fused, expected);
      EXPECT_EQ(state, crc::fcs32().update(crc::kFcs32.init, p));

      // Destuffing is mask-independent; any stuffed stream must round-trip.
      const auto rt = hdlc::destuff(fast);
      EXPECT_TRUE(rt.ok);
      EXPECT_EQ(rt.data, p);
    }
  }
}

TEST(Stuff, AllControlsMaskEscapesEveryControlByte) {
  // Deterministic spot-check at the byte level: with the full map every
  // value below 0x20 is escaped, with the empty map none are.
  Bytes controls;
  for (u8 b = 0; b < 0x20; ++b) controls.push_back(b);
  EXPECT_EQ(hdlc::stuff(controls, Accm(0xFFFFFFFFu)).size(), 2 * controls.size());
  EXPECT_EQ(hdlc::stuff(controls, Accm(0)).size(), controls.size());
  // A one-bit map escapes exactly its own character.
  const Bytes once = hdlc::stuff(controls, Accm(1u << 17));
  EXPECT_EQ(once.size(), controls.size() + 1);
  EXPECT_EQ(once, scalar::stuff(controls, Accm(1u << 17)));
}

TEST(Destuff, MatchesScalarIncludingMalformedInput) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    // Raw random bytes (no flags): arbitrary escape placement, including
    // trailing and doubled escapes.
    Bytes data = escape_mix(rng, rng.range(1, 40), 0.3);
    if (rng.chance(0.3)) data.push_back(hdlc::kEscape);  // force dangling case
    const auto fast = hdlc::destuff(data);
    const auto [ref, ok] = scalar::destuff(data);
    EXPECT_EQ(fast.data, ref);
    EXPECT_EQ(fast.ok, ok);
  }
}

TEST(Stuff, AllEscapePayloadReservesExactly) {
  // The seed under-reserved (size + size/8) and reallocated mid-loop on
  // all-escape payloads; the fast path reserves exactly once.
  const Bytes p(4096, hdlc::kFlag);
  const Bytes out = hdlc::stuff(p);
  EXPECT_EQ(out.size(), 2 * p.size());
  EXPECT_EQ(hdlc::stuffing_expansion(p), p.size());
}

// ---------------------------------------------------------------- fused framer

std::vector<hdlc::FrameConfig> config_matrix() {
  std::vector<hdlc::FrameConfig> cfgs;
  for (const bool acfc : {false, true})
    for (const bool pfc : {false, true})
      for (const auto fcs : {hdlc::FcsKind::kFcs16, hdlc::FcsKind::kFcs32})
        for (const Accm accm : {Accm::sonet(), Accm::async_default()}) {
          hdlc::FrameConfig cfg;
          cfg.acfc = acfc;
          cfg.pfc = pfc;
          cfg.fcs = fcs;
          cfg.accm = accm;
          cfg.max_payload = 9216;
          cfgs.push_back(cfg);
        }
  return cfgs;
}

TEST(EncodeInto, WireIdenticalToSeedEncapsulateThenStuff) {
  Xoshiro256 rng(8);
  hdlc::FrameArena arena;
  for (const auto& cfg : config_matrix()) {
    for (const u16 protocol : {u16{0x0021}, u16{0xC021}, u16{0x8021}}) {
      for (const std::size_t len : {0u, 1u, 2u, 7u, 8u, 9u, 15u, 16u, 64u, 1500u}) {
        const Bytes payload = escape_mix(rng, len, 0.2);
        // Seed path: encapsulate (header+payload+FCS) then scalar stuff,
        // then flags.
        Bytes expected;
        expected.push_back(hdlc::kFlag);
        append(expected, scalar::stuff(hdlc::encapsulate(cfg, protocol, payload), cfg.accm));
        expected.push_back(hdlc::kFlag);

        const BytesView wire = hdlc::encode_into(arena, cfg, protocol, payload);
        EXPECT_EQ(Bytes(wire.begin(), wire.end()), expected)
            << "len " << len << " proto " << protocol;
      }
    }
  }
}

TEST(EncodeInto, BuildWireFrameStaysEquivalent) {
  Xoshiro256 rng(9);
  hdlc::FrameArena arena;
  hdlc::FrameConfig cfg;
  for (int trial = 0; trial < 50; ++trial) {
    const Bytes payload = escape_mix(rng, rng.range(1, 1500), 0.1);
    const BytesView wire = hdlc::encode_into(arena, cfg, 0x0021, payload);
    EXPECT_EQ(hdlc::build_wire_frame(cfg, 0x0021, payload), Bytes(wire.begin(), wire.end()));
  }
}

TEST(EncodeInto, SteadyStateDoesNotReallocate) {
  Xoshiro256 rng(10);
  hdlc::FrameArena arena;
  hdlc::FrameConfig cfg;
  // Warm the arena with the worst-case frame for this size.
  (void)hdlc::encode_into(arena, cfg, 0x0021, Bytes(1500, hdlc::kFlag));
  const u8* data = arena.wire().data();
  const std::size_t cap = arena.wire().capacity();
  for (int frame = 0; frame < 100; ++frame) {
    const Bytes payload = escape_mix(rng, 1500, 0.3);
    (void)hdlc::encode_into(arena, cfg, 0x0021, payload);
    ASSERT_EQ(arena.wire().data(), data) << "arena reallocated on frame " << frame;
    ASSERT_EQ(arena.wire().capacity(), cap);
  }
}

TEST(StuffCrcAppend, FusedStateMatchesSeparatePasses) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const Bytes data = escape_mix(rng, rng.range(0, 600), 0.2);
    Bytes fused_out;
    const u32 fused_state = stuff_crc_append(fused_out, data, Accm::sonet(),
                                             crc::fcs32().slicer(), crc::kFcs32.init);
    EXPECT_EQ(fused_out, scalar::stuff(data));
    EXPECT_EQ(fused_state, crc::fcs32().update(crc::kFcs32.init, data));
  }
}

// ---------------------------------------------------------------- scramblers

TEST(FrameScramblerTable, MatchesBitSerialReference) {
  sonet::FrameScrambler fast;
  fast.reset();
  u8 state = 0x7F;
  for (int i = 0; i < 1000; ++i)
    ASSERT_EQ(fast.next_keystream(), scalar::frame_keystream_bitserial(state)) << "byte " << i;
}

TEST(FrameScramblerTable, EveryStateTransitionMatchesBitSerial) {
  const auto& table = frame_scrambler_steps();
  for (u32 s = 0; s < 128; ++s) {
    u8 state = static_cast<u8>(s);
    const u8 out = scalar::frame_keystream_bitserial(state);
    EXPECT_EQ(table[s].keystream, out) << "state " << s;
    EXPECT_EQ(table[s].next, state) << "state " << s;
  }
}

TEST(SelfSync43, ByteParallelMatchesBitSerialBothDirections) {
  Xoshiro256 rng(12);
  sonet::SelfSyncScrambler43 fast_scr, fast_dscr;
  u64 ref_scr = 0, ref_dscr = 0;
  for (int i = 0; i < 5000; ++i) {
    const u8 b = rng.byte();
    ASSERT_EQ(fast_scr.scramble(b), scalar::selfsync_scramble_bitserial(ref_scr, b)) << i;
    ASSERT_EQ(fast_dscr.descramble(b), scalar::selfsync_descramble_bitserial(ref_dscr, b)) << i;
  }
}

TEST(SelfSync43, InPlaceRoundTripAndMidStreamResync) {
  Xoshiro256 rng(13);
  sonet::SelfSyncScrambler43 scr, dscr;
  Bytes data = rng.bytes(2000);
  const Bytes original = data;
  scr.scramble_in_place(data);
  EXPECT_NE(data, original);

  // Descrambler that joins mid-stream recovers after 43 bits (6 octets).
  Bytes tail(data.begin() + 100, data.end());
  dscr.descramble_in_place(tail);
  EXPECT_TRUE(std::equal(tail.begin() + 6, tail.end(), original.begin() + 106));
}

// ---------------------------------------------------------------- escape engine

// Every tier this host can dispatch must be byte-identical to the scalar
// reference on both directions, across densities, ACCMs, and the window
// boundary lengths where the vector kernels switch modes.
TEST(EscapeEngine, EveryAvailableTierMatchesScalarAcrossDensities) {
  Xoshiro256 rng(21);
  for (const EscapeTier tier : available_tiers()) {
    for (const Accm accm : {Accm::sonet(), Accm::async_default()}) {
      const EscapeEngine eng(accm, tier);
      ASSERT_EQ(eng.tier(), tier);
      for (const double density : {0.0, 1.0 / 128, 0.25, 1.0}) {
        for (const std::size_t len : {1u, 15u, 16u, 17u, 31u, 32u, 33u, 64u, 255u, 1500u}) {
          const Bytes p = escape_mix(rng, len, density);
          const Bytes want = scalar::stuff(p, accm);
          Bytes got;
          got.reserve(2 * p.size() + kStuffSlack);
          eng.stuff_append(got, p);
          ASSERT_EQ(got, want) << to_string(tier) << " stuff len " << len;

          Bytes back;
          back.reserve(got.size() + kStuffSlack);
          ASSERT_TRUE(eng.destuff_append(back, got)) << to_string(tier);
          ASSERT_EQ(back, p) << to_string(tier) << " destuff len " << len;
        }
      }
    }
  }
}

// Dangling-escape verdicts (and the partial output retained before the
// abort) must be tier-independent.
TEST(EscapeEngine, DanglingEscapeVerdictMatchesScalarAtEveryTier) {
  Xoshiro256 rng(22);
  for (const EscapeTier tier : available_tiers()) {
    const EscapeEngine eng(Accm::sonet(), tier);
    for (int i = 0; i < 50; ++i) {
      Bytes stuffed = hdlc::stuff(escape_mix(rng, rng.below(96), 0.1));
      stuffed.push_back(hdlc::kEscape);
      const auto [want, want_ok] = scalar::destuff(stuffed);
      Bytes got;
      got.reserve(stuffed.size() + kStuffSlack);
      const bool got_ok = eng.destuff_append(got, stuffed);
      ASSERT_EQ(got_ok, want_ok) << to_string(tier);
      ASSERT_EQ(got, want) << to_string(tier);
    }
  }
}

// The fused stuff+CRC kernel must leave the same CRC state and wire bytes
// as separate passes, at every tier.
TEST(EscapeEngine, FusedStuffCrcMatchesSeparatePassesAtEveryTier) {
  Xoshiro256 rng(23);
  const SliceCrc crc(crc::kFcs32);
  for (const EscapeTier tier : available_tiers()) {
    const EscapeEngine eng(Accm::sonet(), tier);
    for (const std::size_t len : {3u, 17u, 64u, 700u}) {
      const Bytes p = escape_mix(rng, len, 0.2);
      Bytes fused;
      fused.reserve(2 * p.size() + kStuffSlack);
      const u32 state = eng.stuff_crc_append(fused, p, crc, crc::kFcs32.init);
      EXPECT_EQ(state, crc.update(crc::kFcs32.init, p)) << to_string(tier);
      EXPECT_EQ(fused, scalar::stuff(p, Accm::sonet())) << to_string(tier);
    }
  }
}

// Dispatch-tier bookkeeping: sub-cutoff inputs take the scalar path and the
// counters attribute each call to the tier that actually ran.
TEST(EscapeEngine, SmallFrameCutoffRoutesToScalarAndCountersTrack) {
  const EscapeEngine eng(Accm::sonet());
  eng.reset_counters();
  Bytes out;
  const Bytes tiny(kSmallFrameCutoff - 1, 0x7E);
  eng.stuff_append(out, tiny);
  EXPECT_EQ(eng.counters().scalar_calls, 1u);

  const Bytes big(1500, 0x42);
  out.clear();
  out.reserve(2 * big.size() + kStuffSlack);
  eng.stuff_append(out, big);
  const TierCounters& c = eng.counters();
  if (eng.tier() == EscapeTier::kScalar) {
    EXPECT_EQ(c.scalar_calls, 2u);
  } else if (eng.tier() == EscapeTier::kSwar) {
    EXPECT_EQ(c.swar_calls, 1u);
  } else {
    EXPECT_EQ(c.simd_calls, 1u);
    EXPECT_GT(c.clean_windows, 0u);  // the all-clean 1500B frame
  }
}

// Batched framing: the concatenated batch must be frame-for-frame identical
// to the single-frame fused encoder, including per-frame address overrides.
TEST(EscapeEngine, EncodeBatchMatchesPerFrameEncode) {
  Xoshiro256 rng(24);
  hdlc::FrameConfig cfg;
  std::vector<Bytes> payloads;
  std::vector<hdlc::BatchFrame> frames;
  for (int i = 0; i < 12; ++i) {
    payloads.push_back(escape_mix(rng, 1 + rng.below(200), 0.1));
    hdlc::BatchFrame f;
    f.protocol = 0x0021;
    f.payload = payloads.back();
    if (i % 3 == 0) f.address = static_cast<u8>(0x03 + 2 * i);
    frames.push_back(f);
  }

  hdlc::FrameArena batch_arena;
  const BytesView stream = hdlc::encode_batch_into(batch_arena, cfg, frames);
  ASSERT_EQ(batch_arena.frame_count(), frames.size());

  hdlc::FrameArena single_arena;
  std::size_t off = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    hdlc::FrameConfig fcfg = cfg;
    if (frames[i].address) fcfg.address = *frames[i].address;
    const BytesView want = hdlc::encode_into(single_arena, fcfg, frames[i].protocol,
                                             payloads[i]);
    const BytesView got = batch_arena.frame(i);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end())) << "frame " << i;
    ASSERT_TRUE(std::equal(got.begin(), got.end(), stream.begin() + off)) << "span " << i;
    off += got.size();
  }
  EXPECT_EQ(off, stream.size());
}

// Batched destuffing: per-chunk spans, contents, and dangling-escape
// verdicts must match hdlc::destuff chunk by chunk.
TEST(EscapeEngine, DecodeBatchMatchesPerChunkDestuff) {
  Xoshiro256 rng(25);
  std::vector<Bytes> chunks;
  for (int i = 0; i < 10; ++i) {
    chunks.push_back(hdlc::stuff(escape_mix(rng, rng.below(150), 0.3)));
    if (i % 4 == 3) chunks.back().push_back(hdlc::kEscape);  // dangling abort
  }
  std::vector<BytesView> views(chunks.begin(), chunks.end());

  hdlc::FrameArena arena;
  hdlc::decode_batch_into(arena, views);
  ASSERT_EQ(arena.frame_count(), chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const auto want = hdlc::destuff(chunks[i]);
    EXPECT_EQ(arena.frame_ok(i), want.ok) << i;
    const BytesView got = arena.frame(i);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.data.begin(), want.data.end())) << i;
  }
}

}  // namespace
}  // namespace p5::fastpath
