#include "hdlc/stuffing.hpp"

#include "fastpath/stuff_fast.hpp"

namespace p5::hdlc {

Bytes stuff(BytesView data, const Accm& accm) {
  Bytes out;
  // Worst-case reservation (every octet escapes, 2x): never reallocates
  // mid-loop, unlike the old "+ size/8" guess which did at high escape
  // density — and needs no counting pre-pass.
  out.reserve(2 * data.size());
  fastpath::stuff_append(out, data, accm);
  return out;
}

std::size_t stuffing_expansion(BytesView data, const Accm& accm) {
  return fastpath::count_escapes(data, accm);
}

DestuffResult destuff(BytesView data) {
  DestuffResult r;
  r.data.reserve(data.size());
  // Lenient decode: complement bit 6 whatever the escaped octet is. A
  // 0x7D-0x7E (escape-then-flag) abort never reaches here because the
  // delineator splits frames on the flag first and reports the abort itself.
  r.ok = fastpath::destuff_append(r.data, data);
  return r;
}

}  // namespace p5::hdlc
