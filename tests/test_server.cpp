// server:: — the sharded multi-tenant TunnelServer (ctest -L server).
//
//   * Determinism: the same client scenario through 1, 2 and 4 shards under
//     enable_manual_time delivers the identical payload multiset with exact
//     tenant ledgers — shard count is a capacity knob, never a behaviour
//     knob.
//   * Cross-shard handoff: every datagram offered to the uplink is emitted
//     exactly once or counted lost (ring-full / staging overflow), and the
//     per-tenant ledger dgrams_in == echoed + uplinked + sunk + lost holds
//     exactly once the server stops.
//   * Admission: max_sessions rejections and the server-wide cap are
//     accounted per tenant; the byte-rate policer drops chunks, not
//     connections; hello-based tenancy binds and rejects identically.
//   * Churn: kill/reconnect waves to 1k+ accepts (P5_SERVER_CHURN overrides
//     the target) leave zero leaked sessions and balanced books.
//   * Threaded: run()/stop() under live echo traffic, TSan/ASan clean.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "p5/endpoint.hpp"
#include "server/hello.hpp"
#include "server/server.hpp"
#include "transport/tunnel.hpp"

namespace p5::server {
namespace {

using transport::EventLoop;
using transport::Fd;
using transport::SocketAddr;
using transport::TransportSnapshot;
using transport::Tunnel;
using transport::TunnelBinding;
using transport::TunnelConfig;

Bytes stamped_payload(u32 client, u32 seq, std::size_t len, Xoshiro256& rng) {
  Bytes p;
  p.reserve(len);
  put_be32(p, client);
  put_be32(p, seq);
  while (p.size() < len) p.push_back(static_cast<u8>(rng.next()));
  return p;
}

/// One tunnel client on a (shared) loop, fast tier unless overridden.
struct Client {
  std::unique_ptr<core::SonetEndpoint> ep;
  std::unique_ptr<Tunnel> tun;

  Client(EventLoop& loop, u16 port, std::optional<u32> hello_tenant = std::nullopt,
         TunnelConfig extra = {},
         core::DeviceTier tier = core::resolve_device_tier(core::DeviceTier::kFast))
      : ep(core::make_sonet_endpoint(tier, {}, sonet::kSts3c)) {
    TunnelConfig c = extra;
    c.listen = false;
    c.port = port;
    TunnelBinding b = TunnelBinding::endpoint(*ep);
    if (hello_tenant) b = with_hello(b, *hello_tenant);
    tun = std::make_unique<Tunnel>(loop, std::move(b), c);
    tun->start();
  }
};

/// Deterministic co-driver: one manual-time client loop + a manual-time
/// server, advanced in lockstep 1 ms per iteration.
struct DetDriver {
  TunnelServer& srv;
  EventLoop& cloop;
  std::vector<Client*> clients;

  void iterate(int n = 1) {
    for (int i = 0; i < n; ++i) {
      cloop.run_once(0);
      for (Client* c : clients) c->tun->pump();
      srv.step();
      srv.advance_time(1);
      cloop.advance_time(1);
    }
  }

  bool drive_until(int guard, const std::function<bool()>& done) {
    for (int g = 0; g < guard; ++g) {
      if (done()) return true;
      iterate();
    }
    return done();
  }
};

// ---- raw-socket helpers (clients that speak the chunk framing directly) --

Fd raw_connect(u16 port) {
  bool in_progress = false;
  Fd fd = transport::tcp_connect(SocketAddr{"127.0.0.1", port}, in_progress);
  return fd;
}

void raw_send_chunk(int fd, BytesView payload) {
  Bytes buf;
  put_be32(buf, static_cast<u32>(payload.size()));
  append(buf, payload);
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::send(fd, buf.data() + off, buf.size() - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      ::usleep(200);
    } else {
      return;  // peer closed us; the test asserts on the server's counters
    }
  }
}

/// True when the peer has closed (EOF observed); false while still open.
bool raw_saw_eof(int fd) {
  pollfd p{fd, POLLIN, 0};
  if (::poll(&p, 1, 0) <= 0) return false;
  if (p.revents & (POLLERR | POLLHUP)) return true;
  char buf[256];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
  return n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK);
}

// ----------------------------------------------------------- determinism

struct EchoRunResult {
  std::vector<Bytes> delivered;  ///< every echoed payload, all clients
  TenantSnapshot tenant;
  u64 accepts = 0;
};

EchoRunResult run_echo_scenario(std::size_t shards) {
  constexpr u32 kClients = 6;
  constexpr u32 kPerClient = 8;

  ServerConfig cfg;
  cfg.shards = shards;
  cfg.listeners = {{0, 42u}};
  cfg.route = RouteMode::kEcho;
  TunnelServer srv(cfg);
  srv.enable_manual_time();
  EXPECT_TRUE(srv.start());

  EventLoop cloop;
  cloop.enable_manual_time();
  std::vector<std::unique_ptr<Client>> clients;
  DetDriver drv{srv, cloop, {}};

  // Sequential establishment keeps the accept order — and with it the
  // round-robin shard assignment — identical for every shard count.
  for (u32 i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<Client>(cloop, srv.port()));
    drv.clients.push_back(clients.back().get());
    EXPECT_TRUE(drv.drive_until(4000, [&] { return clients.back()->tun->established(); }));
  }

  std::vector<std::vector<Bytes>> sent(kClients);
  for (u32 c = 0; c < kClients; ++c) {
    Xoshiro256 rng(1000 + c);
    for (u32 s = 0; s < kPerClient; ++s) {
      sent[c].push_back(stamped_payload(c, s, 64 + 16 * (s % 5), rng));
      EXPECT_TRUE(clients[c]->ep->submit_datagram(0x0021, sent[c].back()));
    }
  }

  EchoRunResult res;
  std::vector<std::vector<Bytes>> got(kClients);
  drv.drive_until(20000, [&] {
    std::size_t total = 0;
    for (u32 c = 0; c < kClients; ++c) {
      while (auto d = clients[c]->ep->reap_datagram()) got[c].push_back(std::move(d->payload));
      total += got[c].size();
    }
    return total >= kClients * kPerClient;
  });

  for (u32 c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], sent[c]) << "client " << c << " shards " << shards;
    for (Bytes& b : got[c]) res.delivered.push_back(std::move(b));
  }
  res.tenant = srv.tenant_stats(42);
  res.accepts = srv.accepts();
  std::sort(res.delivered.begin(), res.delivered.end());
  srv.stop();
  return res;
}

TEST(ServerShard, DeterministicShardCountInvariance) {
  const EchoRunResult one = run_echo_scenario(1);
  ASSERT_EQ(one.delivered.size(), 48u);
  EXPECT_EQ(one.accepts, 6u);
  EXPECT_EQ(one.tenant.dgrams_in, 48u);
  EXPECT_EQ(one.tenant.dgrams_echoed, 48u);
  EXPECT_EQ(one.tenant.dgrams_lost, 0u);
  EXPECT_TRUE(one.tenant.ledger_exact());

  for (std::size_t shards : {2u, 4u}) {
    const EchoRunResult n = run_echo_scenario(shards);
    // Shard count is capacity, not behaviour: identical payload multiset,
    // identical ledger.
    EXPECT_EQ(n.delivered, one.delivered) << shards << " shards";
    EXPECT_EQ(n.tenant, one.tenant) << shards << " shards";
  }
}

// ------------------------------------------------- cross-shard handoff

TEST(ServerUplink, CrossShardHandoffExactlyOnceLedger) {
  constexpr u32 kClients = 4;
  constexpr u32 kPerClient = 24;

  ServerConfig cfg;
  cfg.shards = 2;
  cfg.listeners = {{0, 7u}};
  cfg.route = RouteMode::kUplink;
  TunnelServer srv(cfg);
  srv.enable_manual_time();
  ASSERT_TRUE(srv.start());

  std::set<std::pair<u32, u32>> seen;  // (client, seq) — exactly-once check
  u64 dup = 0;
  srv.uplink().set_sink([&](u32 tenant, u16, BytesView payload) {
    EXPECT_EQ(tenant, 7u);
    ASSERT_GE(payload.size(), 8u);
    if (!seen.emplace(get_be32(payload, 0), get_be32(payload, 4)).second) ++dup;
  });

  EventLoop cloop;
  cloop.enable_manual_time();
  std::vector<std::unique_ptr<Client>> clients;
  DetDriver drv{srv, cloop, {}};
  for (u32 i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<Client>(cloop, srv.port()));
    drv.clients.push_back(clients.back().get());
    ASSERT_TRUE(drv.drive_until(4000, [&] { return clients.back()->tun->established(); }));
  }

  Xoshiro256 rng(7);
  for (u32 c = 0; c < kClients; ++c) {
    for (u32 s = 0; s < kPerClient; ++s) {
      ASSERT_TRUE(clients[c]->ep->submit_datagram(0x0021, stamped_payload(c, s, 120, rng)));
    }
  }

  drv.drive_until(20000, [&] { return seen.size() >= kClients * kPerClient; });
  EXPECT_EQ(seen.size(), kClients * kPerClient);
  EXPECT_EQ(dup, 0u);

  srv.stop();  // flushes any staged residue into the lost column
  const TenantSnapshot t = srv.tenant_stats(7);
  EXPECT_EQ(t.dgrams_in, kClients * kPerClient);
  EXPECT_EQ(t.dgrams_uplinked, seen.size());
  EXPECT_TRUE(t.ledger_exact()) << "in=" << t.dgrams_in << " out=" << t.dgrams_out()
                                << " lost=" << t.dgrams_lost;
}

TEST(ServerUplink, StagingOverflowIsCountedLostNeverSilent) {
  ServerConfig cfg;
  cfg.shards = 1;
  cfg.listeners = {{0, 9u}};
  cfg.route = RouteMode::kUplink;
  cfg.uplink_stage_frames = 4;   // tiny staging bound
  cfg.uplink_budget_bytes = 1;   // smaller than any datagram: nothing emits
  TunnelServer srv(cfg);
  srv.enable_manual_time();
  ASSERT_TRUE(srv.start());

  EventLoop cloop;
  cloop.enable_manual_time();
  Client cl(cloop, srv.port());
  DetDriver drv{srv, cloop, {&cl}};
  ASSERT_TRUE(drv.drive_until(4000, [&] { return cl.tun->established(); }));

  Xoshiro256 rng(9);
  constexpr u32 kSent = 32;
  for (u32 s = 0; s < kSent; ++s) {
    ASSERT_TRUE(cl.ep->submit_datagram(0x0021, stamped_payload(0, s, 100, rng)));
  }
  drv.drive_until(8000, [&] { return srv.tenant_stats(9).dgrams_in >= kSent; });

  srv.stop();
  const TenantSnapshot t = srv.tenant_stats(9);
  EXPECT_EQ(t.dgrams_in, kSent);
  EXPECT_EQ(t.dgrams_uplinked, 0u);  // the 1-byte budget never covers a frame
  EXPECT_EQ(t.dgrams_lost, kSent);   // overflowed staging + flushed residue
  EXPECT_TRUE(t.ledger_exact());
}

// ----------------------------------------------------------- admission

TEST(ServerAdmission, MaxTunnelsRejectionAccounting) {
  ServerConfig cfg;
  cfg.shards = 2;
  cfg.listeners = {{0, 5u}};
  TunnelServer srv(cfg);
  TenantConfig tc;
  tc.id = 5;
  tc.max_sessions = 2;
  srv.register_tenant(tc);
  srv.enable_manual_time();
  ASSERT_TRUE(srv.start());

  std::vector<Fd> conns;
  for (int i = 0; i < 5; ++i) conns.push_back(raw_connect(srv.port()));
  for (int g = 0; g < 200; ++g) {
    srv.step();
    srv.advance_time(1);
  }

  EXPECT_EQ(srv.accepts(), 5u);
  EXPECT_EQ(srv.sessions_active(), 2u);
  const TenantSnapshot t = srv.tenant_stats(5);
  EXPECT_EQ(t.sessions_admitted, 2u);
  EXPECT_EQ(t.sessions_rejected, 3u);

  // Exactly the three rejected sockets see EOF.
  int eofs = 0;
  for (auto& fd : conns) eofs += raw_saw_eof(fd.get()) ? 1 : 0;
  EXPECT_EQ(eofs, 3);
  srv.stop();
}

TEST(ServerAdmission, ServerWideCapRejectsAcrossTenants) {
  ServerConfig cfg;
  cfg.shards = 2;
  cfg.listeners = {{0, 1u}, {0, 2u}};
  cfg.max_sessions_total = 3;
  TunnelServer srv(cfg);
  srv.enable_manual_time();
  ASSERT_TRUE(srv.start());

  std::vector<Fd> conns;
  for (int i = 0; i < 3; ++i) conns.push_back(raw_connect(srv.port(0)));
  for (int i = 0; i < 2; ++i) conns.push_back(raw_connect(srv.port(1)));
  for (int g = 0; g < 200; ++g) {
    srv.step();
    srv.advance_time(1);
  }

  EXPECT_EQ(srv.sessions_active(), 3u);
  const TenantSnapshot agg = srv.tenant_aggregate();
  EXPECT_EQ(agg.sessions_admitted, 3u);
  EXPECT_EQ(agg.sessions_rejected, 2u);
  srv.stop();
}

TEST(ServerAdmission, RateCapPolicesChunksNotConnections) {
  ServerConfig cfg;
  cfg.shards = 1;
  cfg.listeners = {{0, 3u}};
  cfg.route = RouteMode::kSink;
  TunnelServer srv(cfg);
  TenantConfig tc;
  tc.id = 3;
  tc.rx_bytes_per_s = 8 * 1024;  // ~3 SONET chunks/s
  tc.rx_burst_bytes = 8 * 1024;
  srv.register_tenant(tc);
  srv.enable_manual_time();
  ASSERT_TRUE(srv.start());

  EventLoop cloop;
  cloop.enable_manual_time();
  Client cl(cloop, srv.port());
  DetDriver drv{srv, cloop, {&cl}};
  ASSERT_TRUE(drv.drive_until(4000, [&] { return cl.tun->established(); }));

  Xoshiro256 rng(3);
  u32 seq = 0;
  // Offer far beyond the cap: top the TX ring back up every iteration.
  drv.drive_until(2000, [&] {
    while (cl.ep->tx_has_room(200) && seq < 4000) {
      if (!cl.ep->submit_datagram(0x0021, stamped_payload(0, seq, 180, rng))) break;
      ++seq;
    }
    return srv.tenant_stats(3).chunks_policed >= 10;
  });

  const TenantSnapshot t = srv.tenant_stats(3);
  EXPECT_GE(t.chunks_policed, 10u);
  EXPECT_GT(t.bytes_policed, 0u);
  EXPECT_GT(t.dgrams_in, 0u);             // the connection kept carrying traffic
  EXPECT_EQ(t.sessions_closed, 0u);       // policing shapes, never disconnects
  EXPECT_EQ(srv.sessions_active(), 1u);
  EXPECT_TRUE(cl.tun->established());
  srv.stop();
}

// ------------------------------------------------------------- fairness

TEST(ServerFairness, DrrSharesUplinkEvenlyUnderUnequalOfferedLoad) {
  ServerConfig cfg;
  cfg.shards = 2;
  cfg.listeners = {{0, 1u}, {0, 2u}};
  cfg.route = RouteMode::kUplink;
  cfg.uplink_budget_bytes = 800;  // the bottleneck: ~4 frames per step
  cfg.uplink_stage_frames = 64;
  cfg.drr_quantum_bytes = 400;
  TunnelServer srv(cfg);
  srv.enable_manual_time();
  ASSERT_TRUE(srv.start());

  EventLoop cloop;
  cloop.enable_manual_time();
  Client heavy(cloop, srv.port(0));  // tenant 1: offers ~3x
  Client light(cloop, srv.port(1));  // tenant 2
  DetDriver drv{srv, cloop, {&heavy, &light}};
  ASSERT_TRUE(drv.drive_until(4000, [&] {
    return heavy.tun->established() && light.tun->established();
  }));

  Xoshiro256 rng(17);
  u32 hs = 0, ls = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    for (int k = 0; k < 6; ++k) {
      if (heavy.ep->tx_has_room(200)) {
        (void)heavy.ep->submit_datagram(0x0021, stamped_payload(1, hs++, 180, rng));
      }
    }
    for (int k = 0; k < 3; ++k) {  // still above its DRR fair share
      if (light.ep->tx_has_room(200)) {
        (void)light.ep->submit_datagram(0x0021, stamped_payload(2, ls++, 180, rng));
      }
    }
    drv.iterate();
  }

  const u64 a = srv.tenant_stats(1).bytes_uplinked;
  const u64 b = srv.tenant_stats(2).bytes_uplinked;
  ASSERT_GT(a, 0u);
  ASSERT_GT(b, 0u);
  // Equal quanta => near-equal egress shares while both stay backlogged,
  // despite the 3x offered-load imbalance.
  const double ratio = static_cast<double>(std::min(a, b)) / static_cast<double>(std::max(a, b));
  EXPECT_GT(ratio, 0.7) << "uplinked bytes heavy=" << a << " light=" << b;
  srv.stop();
}

// ---------------------------------------------------------------- hello

TEST(ServerHello, HelloBindsTenantAndRejectsOverCap) {
  ServerConfig cfg;
  cfg.shards = 1;
  cfg.listeners = {{0, std::nullopt}};  // tenancy from the hello chunk
  TunnelServer srv(cfg);
  TenantConfig tc;
  tc.id = 77;
  tc.max_sessions = 1;
  srv.register_tenant(tc);
  srv.enable_manual_time();
  ASSERT_TRUE(srv.start());

  Fd first = raw_connect(srv.port());
  Fd second = raw_connect(srv.port());
  for (int g = 0; g < 100; ++g) {
    srv.step();
    srv.advance_time(1);
  }
  raw_send_chunk(first.get(), hello_chunk(77));
  raw_send_chunk(second.get(), hello_chunk(77));
  for (int g = 0; g < 300; ++g) {
    srv.step();
    srv.advance_time(1);
  }

  EXPECT_EQ(srv.sessions_active(), 1u);
  const TenantSnapshot t = srv.tenant_stats(77);
  EXPECT_EQ(t.sessions_admitted, 1u);
  EXPECT_EQ(t.sessions_rejected, 1u);
  EXPECT_FALSE(raw_saw_eof(first.get()));
  EXPECT_TRUE(raw_saw_eof(second.get()));
  srv.stop();
}

TEST(ServerHello, MalformedFirstChunkIsProtoErrorAndClose) {
  ServerConfig cfg;
  cfg.shards = 1;
  cfg.listeners = {{0, std::nullopt}};
  TunnelServer srv(cfg);
  srv.enable_manual_time();
  ASSERT_TRUE(srv.start());

  Fd fd = raw_connect(srv.port());
  for (int g = 0; g < 100; ++g) {
    srv.step();
    srv.advance_time(1);
  }
  const Bytes junk = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  raw_send_chunk(fd.get(), junk);
  for (int g = 0; g < 300; ++g) {
    srv.step();
    srv.advance_time(1);
  }

  EXPECT_EQ(srv.sessions_active(), 0u);
  EXPECT_GE(srv.transport_stats().proto_errors, 1u);
  EXPECT_TRUE(raw_saw_eof(fd.get()));
  srv.stop();
}

// ------------------------------------------------------------ reuseport

TEST(ServerReuseport, AcceptsOnPerShardListeners) {
  ServerConfig cfg;
  cfg.shards = 2;
  cfg.reuseport = true;
  cfg.listeners = {{0, 11u}};
  TunnelServer srv(cfg);
  srv.enable_manual_time();
  ASSERT_TRUE(srv.start());
  ASSERT_NE(srv.port(), 0u);

  std::vector<Fd> conns;
  for (int i = 0; i < 8; ++i) conns.push_back(raw_connect(srv.port()));
  for (int g = 0; g < 400; ++g) {
    srv.step();
    srv.advance_time(1);
  }
  EXPECT_EQ(srv.accepts(), 8u);
  EXPECT_EQ(srv.sessions_active(), 8u);
  EXPECT_EQ(srv.tenant_stats(11).sessions_admitted, 8u);
  srv.stop();
}

// ----------------------------------------------------- churn (real time)

TEST(ServerChurn, KillReconnectChurnLeavesExactLedgers) {
  std::size_t target = 1000;
  if (const char* env = std::getenv("P5_SERVER_CHURN")) {
    target = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }

  ServerConfig cfg;
  cfg.shards = 4;
  cfg.listeners = {{0, 6u}};
  cfg.route = RouteMode::kEcho;
  TunnelServer srv(cfg);
  ASSERT_TRUE(srv.start());
  srv.run();  // threaded: 4 shard threads churning against this thread

  // Waves of raw connections (accept/admit/sweep churn) plus one long-lived
  // echo client proving traffic keeps flowing throughout.
  EventLoop cloop;
  Client echo(cloop, srv.port());
  for (int g = 0; g < 2000 && !echo.tun->established(); ++g) {
    echo.tun->pump();
    cloop.run_once(1);
  }
  ASSERT_TRUE(echo.tun->established());

  Xoshiro256 rng(6);
  u32 seq = 0;
  std::size_t echoed = 0;
  const std::size_t wave = 50;
  const std::size_t max_waves = (target / wave) * 4 + 8;
  for (std::size_t w = 0; w < max_waves && srv.accepts() < target + 1; ++w) {
    std::vector<Fd> conns;
    conns.reserve(wave);
    for (std::size_t i = 0; i < wave; ++i) conns.push_back(raw_connect(srv.port()));
    // Interleave echo traffic while the wave connects and dies.
    for (int g = 0; g < 40; ++g) {
      if (echo.ep->tx_has_room(200)) {
        (void)echo.ep->submit_datagram(0x0021, stamped_payload(0, seq++, 120, rng));
      }
      echo.tun->pump();
      cloop.run_once(1);
      while (echo.ep->reap_datagram()) ++echoed;
    }
    conns.clear();  // the kill: every socket in the wave drops at once
  }

  // Drain: stop submitting, let the echo tail flush, then let the server
  // sweep the dead waves.
  for (int g = 0; g < 2000 && srv.sessions_active() > 1; ++g) {
    echo.tun->pump();
    cloop.run_once(1);
    while (echo.ep->reap_datagram()) ++echoed;
  }
  EXPECT_LE(srv.sessions_active(), 1u);  // only the echo client survives
  EXPECT_GT(echoed, 0u);

  srv.stop();
  const TenantSnapshot t = srv.tenant_stats(6);
  EXPECT_GE(srv.accepts(), target);
  EXPECT_TRUE(t.ledger_exact()) << "in=" << t.dgrams_in << " out=" << t.dgrams_out()
                                << " lost=" << t.dgrams_lost;
  // Transport chunk ledger, summed across all four shards: every accepted
  // chunk was written or counted lost when its conn died.
  const TransportSnapshot ts = srv.transport_stats();
  EXPECT_EQ(ts.frames_in, ts.frames_out + ts.frames_lost);
  u64 overflows = 0;
  for (std::size_t s = 0; s < srv.shard_count(); ++s) overflows += srv.shard(s).adoption_overflows();
  EXPECT_EQ(ts.connects + overflows, srv.accepts());
}

// ------------------------------------------------------------- threaded

TEST(ServerThreaded, RunStopUnderLiveEchoTraffic) {
  ServerConfig cfg;
  cfg.shards = 2;
  cfg.listeners = {{0, 8u}};
  cfg.route = RouteMode::kEcho;
  TunnelServer srv(cfg);
  ASSERT_TRUE(srv.start());
  srv.run();

  EventLoop cloop;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 4; ++i) clients.push_back(std::make_unique<Client>(cloop, srv.port()));
  for (int g = 0; g < 4000; ++g) {
    bool all = true;
    for (auto& c : clients) {
      c->tun->pump();
      all = all && c->tun->established();
    }
    cloop.run_once(1);
    if (all) break;
  }

  Xoshiro256 rng(8);
  u32 seq = 0;
  std::size_t echoed = 0;
  for (int g = 0; g < 4000 && echoed < 200; ++g) {
    for (auto& c : clients) {
      if (c->ep->tx_has_room(200)) {
        (void)c->ep->submit_datagram(0x0021, stamped_payload(0, seq++, 150, rng));
      }
      c->tun->pump();
      while (c->ep->reap_datagram()) ++echoed;
    }
    cloop.run_once(1);
  }
  EXPECT_GE(echoed, 200u);

  // Quiesce the TX side so the chunk ledger's queue term is zero, then stop
  // mid-flight anyway — whatever was still queued must land in frames_lost.
  srv.stop();
  const TransportSnapshot ts = srv.transport_stats();
  EXPECT_EQ(ts.frames_in, ts.frames_out + ts.frames_lost + 0u);
  const TenantSnapshot t = srv.tenant_stats(8);
  EXPECT_TRUE(t.ledger_exact()) << "in=" << t.dgrams_in << " out=" << t.dgrams_out()
                                << " lost=" << t.dgrams_lost;
}

}  // namespace
}  // namespace p5::server
