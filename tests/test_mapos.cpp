// MAPOS substrate tests (RFC 2171): port addressing, NSP address
// assignment, unicast forwarding, broadcast flooding, FCS policing at the
// switch, and interoperability with the P5 datapath's programmable address.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/mapos.hpp"
#include "p5/p5.hpp"

namespace p5::net {
namespace {

TEST(MaposAddress, PortAddressFormat) {
  // EA bit always set; distinct per port; never broadcast/null.
  for (unsigned p = 0; p < 16; ++p) {
    const u8 a = mapos_port_address(p);
    EXPECT_EQ(a & 1u, 1u);
    EXPECT_NE(a, kMaposBroadcast);
    EXPECT_NE(a, kMaposNullAddress);
    for (unsigned q = 0; q < p; ++q) EXPECT_NE(a, mapos_port_address(q));
  }
}

/// A switch with three directly-wired nodes.
struct Lan {
  MaposSwitch sw{3};
  std::vector<std::unique_ptr<MaposNode>> nodes;
  std::vector<std::vector<MaposNode::Received>> inbox{3};

  Lan() {
    for (unsigned p = 0; p < 3; ++p) {
      nodes.push_back(
          std::make_unique<MaposNode>([this, p](BytesView w) { sw.rx(p, w); }));
      sw.attach(p, [this, p](BytesView w) { nodes[p]->rx(w); });
      nodes[p]->set_sink([this, p](const MaposNode::Received& r) { inbox[p].push_back(r); });
    }
  }
};

TEST(Mapos, NspAssignsPortAddresses) {
  Lan lan;
  for (auto& n : lan.nodes) n->request_address();
  for (unsigned p = 0; p < 3; ++p) {
    ASSERT_TRUE(lan.nodes[p]->address().has_value());
    EXPECT_EQ(*lan.nodes[p]->address(), mapos_port_address(p));
  }
  EXPECT_EQ(lan.sw.stats().nsp_assignments, 3u);
}

TEST(Mapos, SendRequiresAddress) {
  Lan lan;
  EXPECT_FALSE(lan.nodes[0]->send(mapos_port_address(1), kMaposProtoIp, Bytes{1}));
  lan.nodes[0]->request_address();
  EXPECT_TRUE(lan.nodes[0]->send(mapos_port_address(1), kMaposProtoIp, Bytes{1}));
}

TEST(Mapos, UnicastReachesOnlyDestination) {
  Lan lan;
  for (auto& n : lan.nodes) n->request_address();
  const Bytes msg{0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(lan.nodes[0]->send(mapos_port_address(2), kMaposProtoIp, msg));
  EXPECT_TRUE(lan.inbox[0].empty());
  EXPECT_TRUE(lan.inbox[1].empty());
  ASSERT_EQ(lan.inbox[2].size(), 1u);
  EXPECT_EQ(lan.inbox[2][0].payload, msg);
  EXPECT_EQ(lan.inbox[2][0].protocol, kMaposProtoIp);
  EXPECT_EQ(lan.sw.stats().frames_forwarded, 1u);
}

TEST(Mapos, BroadcastFloodsAllButSource) {
  Lan lan;
  for (auto& n : lan.nodes) n->request_address();
  ASSERT_TRUE(lan.nodes[1]->send(kMaposBroadcast, kMaposProtoIp, Bytes{7}));
  EXPECT_EQ(lan.inbox[0].size(), 1u);
  EXPECT_TRUE(lan.inbox[1].empty());  // not reflected to the sender
  EXPECT_EQ(lan.inbox[2].size(), 1u);
  EXPECT_EQ(lan.sw.stats().frames_flooded, 1u);
}

TEST(Mapos, UnknownDestinationDropped) {
  Lan lan;
  for (auto& n : lan.nodes) n->request_address();
  // Port 7 does not exist on a 3-port switch.
  ASSERT_TRUE(lan.nodes[0]->send(mapos_port_address(7), kMaposProtoIp, Bytes{1}));
  EXPECT_EQ(lan.sw.stats().unknown_destination, 1u);
  for (const auto& box : lan.inbox) EXPECT_TRUE(box.empty());
}

TEST(Mapos, SwitchPolicesFcs) {
  Lan lan;
  for (auto& n : lan.nodes) n->request_address();
  // Inject a corrupted frame directly into a switch port.
  Bytes wire{hdlc::kFlag, mapos_port_address(1), 0x03, 0x00, 0x21, 1, 2, 3, 4, 5, 6,
             hdlc::kFlag};
  lan.sw.rx(0, wire);  // FCS is garbage
  EXPECT_GE(lan.sw.stats().fcs_dropped, 1u);
  EXPECT_TRUE(lan.inbox[1].empty());
}

TEST(Mapos, ManyFramesBothDirections) {
  Lan lan;
  for (auto& n : lan.nodes) n->request_address();
  Xoshiro256 rng(4);
  for (int i = 0; i < 50; ++i) {
    const unsigned from = static_cast<unsigned>(rng.below(3));
    unsigned to = static_cast<unsigned>(rng.below(3));
    if (to == from) to = (to + 1) % 3;
    ASSERT_TRUE(lan.nodes[from]->send(mapos_port_address(to), kMaposProtoIp,
                                      rng.bytes(rng.range(1, 200))));
  }
  std::size_t delivered = 0;
  for (const auto& box : lan.inbox) delivered += box.size();
  EXPECT_EQ(delivered, 50u);
  EXPECT_EQ(lan.sw.stats().fcs_dropped, 0u);
}

TEST(Mapos, P5TransmitterFeedsMaposSwitch) {
  // A P5 with its Address register programmed to a MAPOS unicast address
  // produces wire frames the switch forwards like any node's.
  MaposSwitch sw(2);
  std::vector<MaposNode::Received> inbox;
  MaposNode receiver([&sw](BytesView w) { sw.rx(1, w); });
  sw.attach(1, [&receiver](BytesView w) { receiver.rx(w); });
  receiver.set_sink([&inbox](const MaposNode::Received& r) { inbox.push_back(r); });
  receiver.request_address();
  ASSERT_TRUE(receiver.address().has_value());

  core::P5Config cfg;
  cfg.lanes = 4;
  cfg.address = *receiver.address();  // the OAM-programmable Address register
  core::P5 dev(cfg);
  sw.attach(0, [](BytesView) {});  // nothing listens behind the P5

  dev.submit_datagram(0x0021, Bytes{9, 8, 7, 6});
  for (int k = 0; k < 200; ++k) sw.rx(0, dev.phy_pull_tx(4));

  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload, (Bytes{9, 8, 7, 6}));
  EXPECT_EQ(sw.stats().frames_forwarded, 1u);
}

}  // namespace
}  // namespace p5::net
