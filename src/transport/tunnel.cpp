#include "transport/tunnel.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "linecard/channel.hpp"
#include "p5/endpoint.hpp"

namespace p5::transport {

// ------------------------------------------------------------ TunnelBinding

TunnelBinding TunnelBinding::endpoint(core::SonetEndpoint& ep) {
  // Pacing: pull only while the endpoint has traffic queued, then linger for
  // two more SONET frames so the trailing FCS/closing-flag octets flush.
  // Without the gate an idle endpoint would saturate the wire with flag fill.
  auto linger = std::make_shared<unsigned>(0);
  TunnelBinding b;
  b.pull = [&ep, linger]() -> Bytes {
    if (ep.tx_pending()) {
      *linger = 2;
      return ep.pull_frame();
    }
    if (*linger > 0) {
      --*linger;
      return ep.pull_frame();
    }
    return {};
  };
  b.pull_raw = [&ep] { return ep.pull_frame(); };
  b.ready = [&ep, linger] { return ep.tx_pending() || *linger > 0; };
  b.push = [&ep](BytesView v) {
    ep.push_line(v);
    return true;
  };
  // One call per received burst: the line interface takes arbitrary octet
  // runs, so a burst is just consecutive push_line calls — the batch-capable
  // FastP5Endpoint deframes the whole run before the tunnel regains control.
  b.push_batch = [&ep](std::span<const BytesView> burst) {
    for (const BytesView& v : burst) ep.push_line(v);
    return burst.size();
  };
  return b;
}

TunnelBinding TunnelBinding::channel(linecard::Channel& ch) {
  // Chunk codec for fabric extension: [u16 protocol BE][u8 fabric_dest]
  // [u8 source_channel][payload].
  TunnelBinding b;
  b.pull = [&ch]() -> Bytes {
    auto d = ch.egress_take();
    if (!d) return {};
    Bytes out;
    out.reserve(4 + d->payload.size());
    put_be16(out, d->protocol);
    out.push_back(d->fabric_dest);
    out.push_back(d->source_channel);
    append(out, d->payload);
    return out;
  };
  b.ready = [&ch] { return ch.egress_pending() > 0; };
  b.push = [&ch](BytesView v) -> bool {
    if (v.size() < 4) return false;
    linecard::FrameDesc d;
    d.protocol = get_be16(v, 0);
    d.fabric_dest = v[2];
    d.source_channel = v[3];
    d.payload.assign(v.begin() + 4, v.end());
    return ch.ingress_offer(std::move(d));
  };
  b.push_batch = [push = b.push](std::span<const BytesView> burst) {
    std::size_t accepted = 0;
    for (const BytesView& v : burst) {
      if (push(v)) ++accepted;
    }
    return accepted;
  };
  b.step = [&ch] { (void)ch.step(); };
  return b;
}

const char* to_string(TunnelState s) {
  switch (s) {
    case TunnelState::kIdle: return "idle";
    case TunnelState::kListening: return "listening";
    case TunnelState::kConnecting: return "connecting";
    case TunnelState::kBackoff: return "backoff";
    case TunnelState::kConnected: return "connected";
    case TunnelState::kDraining: return "draining";
    case TunnelState::kClosed: return "closed";
    case TunnelState::kFailed: return "failed";
  }
  return "?";
}

// ------------------------------------------------------------------- Tunnel

Tunnel::Tunnel(EventLoop& loop, TunnelBinding binding, TunnelConfig cfg)
    : loop_(loop), binding_(std::move(binding)), cfg_(std::move(cfg)), rng_(cfg_.seed) {}

Tunnel::~Tunnel() {
  *alive_ = false;
  if (idle_timer_) loop_.cancel_timer(idle_timer_);
  if (listen_fd_.valid()) loop_.remove_fd(listen_fd_.get());
  // conn_ destructs with notify=false: no callbacks fire from here.
}

void Tunnel::start() {
  P5_EXPECTS(state_ == TunnelState::kIdle);
  if (cfg_.listen) {
    begin_listen();
  } else {
    begin_connect();
  }
}

u16 Tunnel::bound_port() const { return bound_port_; }

void Tunnel::begin_listen() {
  const SocketAddr addr{cfg_.host, cfg_.port};
  if (cfg_.udp) {
    Fd fd = udp_bind(addr);
    P5_ENSURES(fd.valid());
    bound_port_ = local_port(fd.get());
    state_ = TunnelState::kListening;
    adopt(std::make_unique<DgramConn>(loop_, tel_, cfg_.conn, std::move(fd),
                                      /*learn_peer=*/true, &pool_));
    return;
  }
  listen_fd_ = tcp_listen(addr);
  P5_ENSURES(listen_fd_.valid());
  bound_port_ = local_port(listen_fd_.get());
  state_ = TunnelState::kListening;
  loop_.add_fd(listen_fd_.get(), kReadable, [this](u32) {
    Fd c = tcp_accept(listen_fd_.get());
    if (!c.valid()) return;
    // Latest peer wins: a reconnecting far end replaces a stale connection.
    adopt(std::make_unique<StreamConn>(loop_, tel_, cfg_.conn, std::move(c),
                                       /*connecting=*/false, &pool_));
  });
}

void Tunnel::begin_connect() {
  state_ = TunnelState::kConnecting;
  if (cfg_.udp) {
    Fd fd = udp_connect(SocketAddr{cfg_.host, cfg_.port});
    if (!fd.valid()) {
      schedule_reconnect();
      return;
    }
    adopt(std::make_unique<DgramConn>(loop_, tel_, cfg_.conn, std::move(fd),
                                      /*learn_peer=*/false, &pool_));
    return;
  }
  bool in_progress = false;
  Fd fd = tcp_connect(SocketAddr{cfg_.host, cfg_.port}, in_progress);
  if (!fd.valid()) {
    schedule_reconnect();
    return;
  }
  adopt(std::make_unique<StreamConn>(loop_, tel_, cfg_.conn, std::move(fd), in_progress, &pool_));
}

void Tunnel::adopt(std::unique_ptr<Conn> conn) {
  if (conn_ && conn_->open()) conn_->close();  // not on conn_'s stack here
  Conn* raw = conn.get();
  raw->set_on_open([this] { on_established(); });
  raw->set_on_closed([this] {
    // Runs on the connection's own stack — account, then bounce the
    // teardown through the loop so the conn finishes its slice first.
    tel_.on_disconnect();
    loop_.add_timer(0, [this, alive = alive_] {
      if (*alive) on_conn_closed();
    });
  });
  raw->set_on_drained([this] {
    loop_.add_timer(0, [this, alive = alive_] {
      if (*alive) finish_drain();
    });
  });
  raw->set_on_frames([this](std::span<const BytesView> burst) { deliver(burst); });
  conn_ = std::move(conn);
}

void Tunnel::on_established() {
  state_ = TunnelState::kConnected;
  tel_.on_connect(/*reconnect=*/ever_connected_);
  ever_connected_ = true;
  backoff_ms_ = 0;  // a fresh outage restarts the exponential ladder
  backoff_spent_ms_ = 0;
  last_tx_ms_ = loop_.now_ms();
  arm_idle_timer();
  pump();  // opportunistic first slice cuts establishment latency
}

void Tunnel::on_conn_closed() {
  if (conn_ && conn_->open()) return;  // already replaced by a fresh peer
  conn_.reset();
  if (idle_timer_) {
    loop_.cancel_timer(idle_timer_);
    idle_timer_ = 0;
  }
  if (state_ == TunnelState::kDraining || state_ == TunnelState::kClosed) {
    state_ = TunnelState::kClosed;
    return;
  }
  if (state_ == TunnelState::kFailed) return;
  if (cfg_.listen) {
    if (cfg_.udp) {
      begin_listen();  // re-bind and wait for the next talker
    } else {
      state_ = TunnelState::kListening;
    }
    return;
  }
  schedule_reconnect();
}

void Tunnel::schedule_reconnect() {
  if (backoff_ms_ == 0) backoff_ms_ = std::max<u64>(1, cfg_.backoff_initial_ms);
  u64 delay = backoff_ms_;
  if (cfg_.backoff_jitter > 0.0) {
    const double unit = static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;  // [0,1)
    const double factor = 1.0 + cfg_.backoff_jitter * (2.0 * unit - 1.0);
    delay = std::max<u64>(1, static_cast<u64>(static_cast<double>(delay) * factor));
  }
  if (cfg_.backoff_budget_ms != 0 && backoff_spent_ms_ + delay > cfg_.backoff_budget_ms) {
    state_ = TunnelState::kFailed;
    return;
  }
  backoff_spent_ms_ += delay;
  backoff_ms_ = std::min(backoff_ms_ * 2, std::max<u64>(1, cfg_.backoff_max_ms));
  tel_.backoff_wait();
  state_ = TunnelState::kBackoff;
  loop_.add_timer(delay, [this, alive = alive_] {
    if (*alive && state_ == TunnelState::kBackoff) begin_connect();
  });
}

void Tunnel::arm_idle_timer() {
  if (cfg_.idle_timeout_ms == 0) return;
  const u64 check = std::max<u64>(1, cfg_.idle_timeout_ms / 2);
  idle_timer_ = loop_.add_timer(check, [this, alive = alive_] {
    if (*alive) idle_check();
  });
}

void Tunnel::idle_check() {
  idle_timer_ = 0;
  if (state_ != TunnelState::kConnected || !conn_ || !conn_->open()) return;
  const u64 silent = loop_.now_ms() - conn_->last_rx_ms();
  if (silent >= cfg_.idle_timeout_ms) {
    tel_.idle_timeout();
    conn_->close();  // timer context, not the conn's stack
    return;
  }
  arm_idle_timer();
}

std::size_t Tunnel::pump() {
  for (std::size_t i = 0; i < cfg_.steps_per_pump; ++i) {
    if (binding_.step) binding_.step();
  }
  if (state_ != TunnelState::kConnected || !conn_) return 0;
  std::size_t sent = 0;
  while (sent < cfg_.frames_per_pump) {
    if (!conn_->writable()) {
      // The watermark is the coupling point: chunks stay in the binding's
      // rings (SpscRing flow control) instead of ballooning the socket queue.
      if (binding_.ready && binding_.ready()) tel_.backpressure_stall();
      break;
    }
    Bytes chunk = binding_.pull ? binding_.pull() : Bytes{};
    if (chunk.empty()) {
      if (cfg_.keepalive_ms != 0 && binding_.pull_raw &&
          loop_.now_ms() - last_tx_ms_ >= cfg_.keepalive_ms) {
        chunk = binding_.pull_raw();
      }
      if (chunk.empty()) break;
    }
    if (!conn_->send_frame(chunk)) break;  // write error closed us mid-slice
    last_tx_ms_ = loop_.now_ms();
    ++sent;
  }
  if (conn_) {
    conn_->flush();  // the whole slice rides one scatter-gather syscall
    tel_.note_queue_depth(conn_->queued_bytes());
  }
  return sent;
}

void Tunnel::deliver(std::span<const BytesView> chunks) {
  if (rx_tap_) {
    // The tap mutates (and sometimes eats) chunks; materialise each into
    // reusable scratch storage, preserving per-chunk tap order so seeded
    // fault sequences are identical whether delivery is batched or not.
    tap_scratch_.resize(std::max(tap_scratch_.size(), chunks.size()));
    tap_survivors_.clear();
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      Bytes& copy = tap_scratch_[i];
      copy.assign(chunks[i].begin(), chunks[i].end());
      rx_tap_(copy);
      if (copy.empty()) continue;  // the tap ate it: injected loss
      tap_survivors_.emplace_back(copy.data(), copy.size());
    }
    chunks = tap_survivors_;
  }
  if (chunks.empty()) return;
  if (binding_.push_batch) {
    const std::size_t accepted = binding_.push_batch(chunks);
    for (std::size_t i = accepted; i < chunks.size(); ++i) tel_.rx_drop();
  } else if (binding_.push) {
    for (const BytesView& v : chunks) {
      if (!binding_.push(v)) tel_.rx_drop();
    }
  }
}

void Tunnel::request_drain() {
  if (finished() || state_ == TunnelState::kDraining) return;
  state_ = TunnelState::kDraining;
  if (listen_fd_.valid()) {
    loop_.remove_fd(listen_fd_.get());
    listen_fd_.reset();
  }
  if (!conn_ || !conn_->open()) {
    conn_.reset();
    state_ = TunnelState::kClosed;
    return;
  }
  conn_->request_drain();
}

void Tunnel::finish_drain() {
  if (state_ != TunnelState::kDraining) return;
  state_ = TunnelState::kClosed;
  if (conn_) {
    conn_->set_on_closed(nullptr);  // a drained goodbye is not a disconnect
    conn_->close();
    conn_.reset();
  }
}

void Tunnel::kill_connection() {
  if (conn_ && conn_->open()) conn_->close();
}

}  // namespace p5::transport
