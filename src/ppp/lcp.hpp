// Link Control Protocol (RFC 1661 §6, plus the FCS-Alternatives option of
// RFC 1570) — the "extensible Link Protocol to establish, configure, and
// test the data-link connection" the paper lists as PPP's second component.
//
// Options implemented: MRU (1), Magic-Number (5) with loopback detection,
// Protocol-Field-Compression (7), Address-and-Control-Field-Compression (8),
// FCS-Alternatives (9). The negotiated result maps directly onto the P5's
// OAM registers (frame configuration).
#pragma once

#include <functional>
#include <optional>

#include "common/rng.hpp"
#include "ppp/auth.hpp"
#include "ppp/fsm.hpp"

namespace p5::ppp {

// LCP option type codes.
inline constexpr u8 kOptMru = 1;
inline constexpr u8 kOptAuthProtocol = 3;     ///< RFC 1334/1994: PAP or CHAP
inline constexpr u8 kOptQualityProtocol = 4;  ///< RFC 1989: LQR + period
inline constexpr u8 kOptMagic = 5;
inline constexpr u8 kOptPfc = 7;
inline constexpr u8 kOptAcfc = 8;
inline constexpr u8 kOptFcsAlternatives = 9;
inline constexpr u8 kOptNumberedMode = 11;    ///< RFC 1663: reliable transmission

// FCS-Alternatives bitmask (RFC 1570 §2.2).
inline constexpr u8 kFcsAltNull = 0x01;
inline constexpr u8 kFcsAlt16 = 0x02;
inline constexpr u8 kFcsAlt32 = 0x04;

struct LcpConfig {
  u16 mru = 1500;
  bool request_pfc = false;
  bool request_acfc = false;
  bool request_fcs32 = true;  ///< paper: "the system will incorporate 32-bit CRC"
  u16 min_acceptable_mru = 64;
  u64 magic_seed = 0xBEEFCAFE;

  // RFC 1989 link-quality monitoring: ask the peer to send LQRs every
  // `lqr_period` (arbitrary units carried opaquely); 0 = don't request.
  u32 request_lqr_period = 0;
  bool accept_lqm = true;  ///< willing to send LQRs if the peer asks

  // RFC 1663 numbered mode: request reliable transmission with this window
  // (1..7); 0 = don't request.
  u8 request_numbered_window = 0;
  bool accept_numbered_mode = true;

  // Authentication-Protocol (option 3). `require_auth` carries the option in
  // our Configure-Request: the peer must authenticate itself to us with that
  // protocol once LCP opens. The allow_* flags govern the other direction —
  // which protocols we are willing to run as the authenticatee when the peer
  // demands (unallowed ones are Nak'd toward an allowed one, or Rejected).
  AuthProto require_auth = AuthProto::kNone;
  bool allow_pap = true;
  bool allow_chap = true;
};

/// What both sides agreed on once LCP reaches Opened.
struct LcpResult {
  u16 peer_mru = 1500;   ///< largest information field the peer will receive
  bool tx_pfc = false;   ///< we may compress the protocol field on transmit
  bool tx_acfc = false;  ///< we may omit address/control on transmit
  bool fcs32 = false;    ///< 32-bit FCS in effect (both directions)
  u32 tx_lqr_period = 0; ///< the peer asked us to emit LQRs this often (0 = no)
  u8 numbered_window = 0;///< numbered mode agreed with this window (0 = UI mode)
  AuthProto auth_to_peer = AuthProto::kNone;    ///< we must authenticate ourselves
  AuthProto auth_from_peer = AuthProto::kNone;  ///< the peer must authenticate to us
};

class Lcp final : public Fsm {
 public:
  using TxHook = std::function<void(u16 protocol, const Packet&)>;
  using UpHook = std::function<void(const LcpResult&)>;
  using DownHook = std::function<void()>;

  Lcp(const LcpConfig& cfg, TxHook tx, Timeouts timeouts = Timeouts());

  void set_up_hook(UpHook h) { up_hook_ = std::move(h); }
  void set_down_hook(DownHook h) { down_hook_ = std::move(h); }

  [[nodiscard]] const LcpResult& result() const { return result_; }
  [[nodiscard]] u32 magic() const { return magic_; }
  [[nodiscard]] u64 loopbacks_detected() const { return loopbacks_; }
  /// The peer Configure-Rejected our authentication demand (the owner
  /// decides whether the link may continue unauthenticated).
  [[nodiscard]] bool auth_refused_by_peer() const { return auth_refused_; }

  /// Send an LCP Echo-Request carrying our magic number (link quality probe).
  void send_echo_request();
  [[nodiscard]] u64 echo_replies() const { return echo_replies_; }

 protected:
  std::vector<Option> build_configure_options() override;
  ConfigureVerdict judge_configure_request(const std::vector<Option>& options) override;
  void on_configure_ack(const std::vector<Option>& options) override;
  void on_configure_nak(const std::vector<Option>& options) override;
  void on_configure_reject(const std::vector<Option>& options) override;
  bool on_extra_packet(const Packet& pkt) override;
  void this_layer_up() override;
  void this_layer_down() override;
  void send_packet(const Packet& pkt) override;

 private:
  LcpConfig cfg_;
  TxHook tx_;
  UpHook up_hook_;
  DownHook down_hook_;
  Xoshiro256 rng_;
  u32 magic_ = 0;

  // Which options we still include in our Configure-Request.
  bool ask_mru_ = true;
  bool ask_magic_ = true;
  bool ask_pfc_ = false;
  bool ask_acfc_ = false;
  bool ask_fcs32_ = false;
  bool ask_lqm_ = false;
  bool ask_numbered_ = false;
  bool ask_auth_ = false;
  bool auth_refused_ = false;

  LcpResult result_;
  u64 loopbacks_ = 0;
  u64 echo_replies_ = 0;
  u8 echo_id_ = 0;
};

}  // namespace p5::ppp
