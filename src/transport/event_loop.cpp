#include "transport/event_loop.hpp"

#include <poll.h>
#include <sys/epoll.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/check.hpp"

namespace p5::transport {

namespace {

u64 monotonic_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<u64>(ts.tv_sec) * 1'000'000'000ull + static_cast<u64>(ts.tv_nsec);
}

u32 from_epoll(u32 ev) {
  u32 out = 0;
  if (ev & (EPOLLIN | EPOLLRDHUP)) out |= kReadable;
  if (ev & EPOLLOUT) out |= kWritable;
  if (ev & (EPOLLERR | EPOLLHUP)) out |= kIoError;
  return out;
}

u32 to_epoll(u32 interest) {
  u32 ev = EPOLLRDHUP;  // half-close surfaces as readable EOF
  if (interest & kReadable) ev |= EPOLLIN;
  if (interest & kWritable) ev |= EPOLLOUT;
  return ev;
}

short to_poll(u32 interest) {
  short ev = 0;
  if (interest & kReadable) ev |= POLLIN;
  if (interest & kWritable) ev |= POLLOUT;
  return ev;
}

u32 from_poll(short rev) {
  u32 out = 0;
  if (rev & (POLLIN | POLLRDHUP)) out |= kReadable;
  if (rev & POLLOUT) out |= kWritable;
  if (rev & (POLLERR | POLLHUP | POLLNVAL)) out |= kIoError;
  return out;
}

}  // namespace

EventLoop::EventLoop(Backend backend) {
  int pipe_fds[2] = {-1, -1};
  P5_ENSURES(::pipe(pipe_fds) == 0);
  wake_rd_ = Fd(pipe_fds[0]);
  wake_wr_ = Fd(pipe_fds[1]);
  P5_ENSURES(set_nonblocking(wake_rd_.get()) && set_nonblocking(wake_wr_.get()));
  if (backend != Backend::kPoll) {
    epoll_fd_ = Fd(::epoll_create1(0));
    P5_ENSURES(backend != Backend::kEpoll || epoll_fd_.valid());
  }
  epoch_ns_ = monotonic_ns();
  add_fd(wake_rd_.get(), kReadable, [this](u32) { drain_wakeup(); });
}

EventLoop::~EventLoop() = default;

bool EventLoop::using_epoll() const { return epoll_fd_.valid(); }

void EventLoop::add_fd(int fd, u32 interest, IoCallback cb) {
  P5_EXPECTS(fd >= 0 && cb != nullptr);
  P5_EXPECTS(fds_.find(fd) == fds_.end());
  if (using_epoll()) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    P5_ENSURES(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) == 0);
  }
  fds_[fd] = FdEntry{interest, ++gen_counter_, std::move(cb)};
}

void EventLoop::modify_fd(int fd, u32 interest) {
  auto it = fds_.find(fd);
  P5_EXPECTS(it != fds_.end());
  if (it->second.interest == interest) return;
  it->second.interest = interest;
  if (using_epoll()) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    P5_ENSURES(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) == 0);
  }
}

void EventLoop::remove_fd(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  if (using_epoll()) (void)::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(it);
}

EventLoop::TimerId EventLoop::add_timer(u64 delay_ms, std::function<void()> cb) {
  P5_EXPECTS(cb != nullptr);
  const TimerId id = next_timer_id_++;
  timers_.emplace(now_ms() + delay_ms, std::make_pair(id, std::move(cb)));
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.first == id) {
      timers_.erase(it);
      return;
    }
  }
}

u64 EventLoop::now_ms() const {
  if (manual_time_) return manual_now_ms_;
  return (monotonic_ns() - epoch_ns_) / 1'000'000ull;
}

void EventLoop::enable_manual_time() {
  P5_EXPECTS(timers_.empty());  // deadlines already stamped would misfire
  manual_time_ = true;
  manual_now_ms_ = 0;
}

void EventLoop::advance_time(u64 ms) {
  P5_EXPECTS(manual_time_);
  manual_now_ms_ += ms;
}

int EventLoop::wait_budget_ms(int timeout_ms) const {
  if (manual_time_) return 0;  // never block the deterministic driver
  if (timeout_ms <= 0) return 0;
  int budget = timeout_ms;
  if (!timers_.empty()) {
    const u64 now = now_ms();
    const u64 due = timers_.begin()->first;
    const u64 until = due > now ? due - now : 0;
    if (until < static_cast<u64>(budget)) budget = static_cast<int>(until);
  }
  return budget;
}

void EventLoop::collect_ready(int wait_ms) {
  ready_.clear();
  if (using_epoll()) {
    epoll_event evs[64];
    int n = ::epoll_wait(epoll_fd_.get(), evs, 64, wait_ms);
    if (n < 0 && errno != EINTR) P5_ASSERT(false);
    for (int i = 0; i < n; ++i) {
      auto it = fds_.find(evs[i].data.fd);
      if (it == fds_.end()) continue;
      ready_.push_back(Ready{it->first, it->second.gen, from_epoll(evs[i].events)});
    }
    return;
  }
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const auto& [fd, entry] : fds_) pfds.push_back(pollfd{fd, to_poll(entry.interest), 0});
  int n = ::poll(pfds.data(), pfds.size(), wait_ms);
  if (n < 0 && errno != EINTR) P5_ASSERT(false);
  if (n <= 0) return;
  for (const auto& p : pfds) {
    if (p.revents == 0) continue;
    auto it = fds_.find(p.fd);
    if (it == fds_.end()) continue;
    ready_.push_back(Ready{p.fd, it->second.gen, from_poll(p.revents)});
  }
}

void EventLoop::drain_wakeup() {
  char buf[64];
  while (::read(wake_rd_.get(), buf, sizeof(buf)) > 0) {
  }
}

std::size_t EventLoop::run_once(int timeout_ms) {
  std::size_t dispatched = 0;

  collect_ready(wait_budget_ms(timeout_ms));
  for (const Ready& r : ready_) {
    // A callback may close fds and accept new ones, letting the kernel hand
    // the same number back mid-slice; the generation stamp rejects events
    // harvested for the previous owner.
    auto it = fds_.find(r.fd);
    if (it == fds_.end() || it->second.gen != r.gen) continue;
    const u32 wanted = r.events & (it->second.interest | kIoError);
    if (wanted == 0) continue;
    IoCallback cb = it->second.cb;  // copy: callback may remove_fd(itself)
    cb(wanted);
    ++dispatched;
  }

  const u64 now = now_ms();
  while (!timers_.empty() && timers_.begin()->first <= now) {
    auto fn = std::move(timers_.begin()->second.second);
    timers_.erase(timers_.begin());
    fn();
    ++dispatched;
  }

  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks.swap(tasks_);
  }
  for (auto& fn : tasks) {
    fn();
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::run() {
  while (!stopped_.load(std::memory_order_acquire)) run_once(100);
  // A post() that won the race against stop() has already enqueued its task
  // but run_once may never see it; drain here so "post returned true" always
  // means "the task ran" (the shutdown-ordering contract in the header).
  drain_posted();
}

void EventLoop::stop() {
  {
    // Taking the task lock linearizes stop() against concurrent post():
    // every post() either completed its enqueue before this store (run()'s
    // final drain executes it) or observes stopped_ and rejects.
    std::lock_guard<std::mutex> lock(task_mu_);
    stopped_.store(true, std::memory_order_release);
  }
  const char byte = 0;
  (void)!::write(wake_wr_.get(), &byte, 1);
}

bool EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    if (stopped_.load(std::memory_order_acquire)) return false;
    tasks_.push_back(std::move(fn));
  }
  const char byte = 0;
  (void)!::write(wake_wr_.get(), &byte, 1);
  return true;
}

std::size_t EventLoop::drain_posted() {
  std::size_t ran = 0;
  // Loop: a drained task may itself post (its post still succeeds only
  // pre-stop; after stop the enqueue is rejected, so this terminates).
  for (;;) {
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(task_mu_);
      tasks.swap(tasks_);
    }
    if (tasks.empty()) return ran;
    for (auto& fn : tasks) {
      fn();
      ++ran;
    }
  }
}

}  // namespace p5::transport
