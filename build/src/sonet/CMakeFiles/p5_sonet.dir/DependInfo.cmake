
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sonet/line.cpp" "src/sonet/CMakeFiles/p5_sonet.dir/line.cpp.o" "gcc" "src/sonet/CMakeFiles/p5_sonet.dir/line.cpp.o.d"
  "/root/repo/src/sonet/pointer.cpp" "src/sonet/CMakeFiles/p5_sonet.dir/pointer.cpp.o" "gcc" "src/sonet/CMakeFiles/p5_sonet.dir/pointer.cpp.o.d"
  "/root/repo/src/sonet/scrambler.cpp" "src/sonet/CMakeFiles/p5_sonet.dir/scrambler.cpp.o" "gcc" "src/sonet/CMakeFiles/p5_sonet.dir/scrambler.cpp.o.d"
  "/root/repo/src/sonet/spe.cpp" "src/sonet/CMakeFiles/p5_sonet.dir/spe.cpp.o" "gcc" "src/sonet/CMakeFiles/p5_sonet.dir/spe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p5_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
