// bench_session — the PPP session plane under load: VJ header compression
// throughput and broker-driven negotiation storms.
//
// Rows, all wall-clock (this bench measures control-plane and header-path
// software, not the cycle model's clock):
//
//  * vj_compress — Compressor alone over the synthetic TCP flow mix
//    (TcpFlowGen: bulk + interactive flows with realistic seq/ack/window
//    progressions). Reports MB/s of datagrams in and the header compression
//    ratio actually achieved — the RFC 1144 payoff the paper's PPP engine
//    banks on for interactive traffic.
//  * vj_roundtrip — compress + decompress back to back with byte-identity
//    checked on every delivery; the full header-path cost per datagram.
//  * storm_chap — negotiation storm: sessions through LCP → CHAP → IPCP
//    (with VJ negotiated) against the broker to quiescence on clean wires.
//    Reports sessions/s brought to ip_ready — the BRAS-style churn figure.
//  * storm_chap_flap — the same storm with renegotiation flaps (every open
//    subscriber redials up to twice), gating the re-open path.
//
// Results go to stdout and BENCH_session.json; gate with
//   scripts/bench_compare.py BENCH_session.json <baseline> --metric new_mb_s
// (storm rows report sessions/s in the same metric column — the comparison
// is within-row, so units only need to be stable per kernel).
//
// Usage: bench_session [--smoke] [--quick] [--out <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ppp/broker.hpp"
#include "ppp/vj.hpp"

namespace p5::bench {
namespace {

using ppp::broker::run_negotiation_storm;
using ppp::broker::StormConfig;
using ppp::broker::StormReport;
using ppp::vj::Compressor;
using ppp::vj::Decompressor;
using ppp::vj::PacketClass;
using ppp::vj::TcpFlowGen;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Row {
  std::string kernel;
  std::size_t items = 0;       ///< datagrams or sessions
  u64 bytes = 0;               ///< datagram octets in (0 for storm rows)
  double wall_seconds = 0.0;
  double rate = 0.0;           ///< MB/s (vj rows) or sessions/s (storm rows)
  double header_ratio = 0.0;   ///< header_bytes_out / header_bytes_in
};

Row bench_vj(bool roundtrip, std::size_t datagrams) {
  TcpFlowGen gen(12, 0xbe9c5e55, 512);
  std::vector<Bytes> work;
  work.reserve(datagrams);
  u64 bytes = 0;
  for (std::size_t i = 0; i < datagrams; ++i) {
    work.push_back(gen.next());
    bytes += work.back().size();
  }

  Compressor comp;
  Decompressor decomp;
  u64 sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Bytes& dg : work) {
    auto out = comp.compress(dg);
    if (!roundtrip) {
      sink += out.packet.size();
      continue;
    }
    const auto back = decomp.decompress(out.cls, out.packet);
    // Clean wire: every delivery must reconstruct exactly.
    if (!back || *back != dg) {
      std::fprintf(stderr, "fatal: VJ round-trip mismatch\n");
      std::abort();
    }
    sink += back->size();
  }
  Row r;
  r.kernel = roundtrip ? "vj_roundtrip" : "vj_compress";
  r.items = datagrams;
  r.bytes = bytes;
  r.wall_seconds = seconds_since(t0);
  r.rate = r.wall_seconds > 0.0 ? static_cast<double>(bytes) / 1e6 / r.wall_seconds : 0.0;
  const auto& st = comp.stats();
  r.header_ratio = st.header_bytes_in
                       ? static_cast<double>(st.header_bytes_out) /
                             static_cast<double>(st.header_bytes_in)
                       : 0.0;
  (void)sink;
  return r;
}

Row bench_storm(bool flaps, unsigned sessions) {
  StormConfig cfg;
  cfg.sessions = sessions;
  cfg.admit_per_tick = std::max(1u, sessions / 10);
  cfg.seed = 0x5e551c4a;
  cfg.max_ticks = 2000;
  if (flaps) {
    cfg.flap_chance = 0.05;
    cfg.max_flaps_per_session = 2;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const StormReport rep = run_negotiation_storm(cfg);
  Row r;
  r.kernel = flaps ? "storm_chap_flap" : "storm_chap";
  r.items = sessions;
  r.wall_seconds = seconds_since(t0);
  if (!rep.ledger.closed() || rep.ledger.negotiated != sessions) {
    std::fprintf(stderr, "fatal: storm did not converge (negotiated %llu of %u)\n",
                 static_cast<unsigned long long>(rep.ledger.negotiated), sessions);
    std::abort();
  }
  r.rate = r.wall_seconds > 0.0
               ? static_cast<double>(rep.ledger.negotiated) / r.wall_seconds
               : 0.0;
  return r;
}

int run(int argc, char** argv) {
  bool smoke = false, quick = false;
  std::string out_path = "BENCH_session.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  const std::size_t dgrams = smoke ? 2000 : quick ? 100000 : 400000;
  const unsigned sessions = smoke ? 60 : quick ? 400 : 1000;

  banner("bench_session — PPP session plane: VJ header path and CHAP churn",
         "the paper's programmable PPP engine terminating subscriber sessions");
  paper_says("per-session option negotiation in software; headers squeezed on the wire");

  std::vector<Row> rows;
  rows.push_back(bench_vj(false, dgrams));
  rows.push_back(bench_vj(true, dgrams));
  rows.push_back(bench_storm(false, sessions));
  rows.push_back(bench_storm(true, sessions));

  for (const Row& r : rows) {
    const bool storm = r.bytes == 0;
    std::printf("%-16s %8zu %-9s  %8.3fs  %10.2f %s", r.kernel.c_str(), r.items,
                storm ? "sessions" : "datagrams", r.wall_seconds, r.rate,
                storm ? "sessions/s" : "MB/s");
    if (!storm) std::printf("  (header ratio %.3f)", r.header_ratio);
    std::printf("\n");
  }

  JsonReport report("session");
  report.header.set("unit", "MB/s or sessions/s")
      .set("mode", smoke ? "smoke" : quick ? "quick" : "full");
  for (const Row& r : rows) {
    report.row()
        .set("kernel", r.kernel)
        .set("frame_bytes", std::size_t{0})
        .set("escape_density", 0.0)
        .set("dispatch", "inproc")
        .set("pinned", false)
        .set("items", static_cast<u64>(r.items))
        .set("bytes", r.bytes)
        .set("wall_seconds", r.wall_seconds)
        .set("header_ratio", r.header_ratio)
        .set("new_mb_s", r.rate);
  }
  if (!report.write(out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)%s\n", out_path.c_str(), rows.size(),
              smoke ? " [smoke mode: timings are not meaningful]" : "");
  we_measure("VJ round-trip " + std::to_string(rows[1].rate) + " MB/s at header ratio " +
             std::to_string(rows[1].header_ratio) + "; CHAP storm " +
             std::to_string(rows[2].rate) + " sessions/s");
  return 0;
}

}  // namespace
}  // namespace p5::bench

int main(int argc, char** argv) { return p5::bench::run(argc, argv); }
