#include "p5/fast_endpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "crc/crc_table.hpp"
#include "p5/sonet_link.hpp"

namespace p5::core {

const char* to_string(DeviceTier tier) {
  switch (tier) {
    case DeviceTier::kCycle: return "cycle";
    case DeviceTier::kFast: return "fast";
  }
  return "?";
}

DeviceTier resolve_device_tier(DeviceTier configured) {
  const char* env = std::getenv("P5_DEVICE_TIER");
  if (env) {
    if (std::strcmp(env, "cycle") == 0) return DeviceTier::kCycle;
    if (std::strcmp(env, "fast") == 0) return DeviceTier::kFast;
  }
  return configured;
}

std::unique_ptr<SonetEndpoint> make_sonet_endpoint(DeviceTier tier, const P5Config& cfg,
                                                   sonet::StsSpec sts) {
  if (tier == DeviceTier::kFast) return std::make_unique<FastP5Endpoint>(cfg, sts);
  return std::make_unique<P5SonetEndpoint>(cfg, sts);
}

namespace {
hdlc::FrameConfig tx_frame_config(const P5Config& cfg) {
  hdlc::FrameConfig f;
  f.address = cfg.address;
  f.control = cfg.control;
  f.acfc = false;  // the P5 always transmits Address|Control (no ACFC/PFC)
  f.pfc = false;
  f.fcs = cfg.fcs32 ? hdlc::FcsKind::kFcs32 : hdlc::FcsKind::kFcs16;
  f.accm = cfg.accm;
  // The MRU is a *receive* check in the cycle pipeline (TxControl transmits
  // whatever the host posted); lift the encoder's transmit-side assert so
  // oversize submissions produce the same far-end `oversize` disposition.
  f.max_payload = std::numeric_limits<std::size_t>::max() / 4;
  return f;
}

/// Delineation bound for the batch receiver. The cycle pipeline accumulates
/// without limit (backpressure bounds it physically), so this only exists as
/// a memory-safety backstop: scrambled garbage shows a flag octet every ~256
/// positions, making a megabyte flag-free run unreachable, and clean frames
/// are bounded by the 64 KiB transmit pool. Classification parity holds at
/// the bound anyway: an oversize discard lands in frames_bad exactly where
/// the cycle model's guaranteed FCS failure for such a frame would.
constexpr std::size_t kMaxDelineatedFrame = std::size_t{1} << 20;
}  // namespace

FastP5Endpoint::FastP5Endpoint(const P5Config& cfg, sonet::StsSpec sts)
    : cfg_(cfg),
      sts_(sts),
      tx_fcfg_(tx_frame_config(cfg)),
      idle_fill_(sts.payload_bytes_per_frame(), hdlc::kFlag),
      delineator_([this](BytesView stuffed) { on_stuffed_frame(stuffed); },
                  /*min_frame=*/4, kMaxDelineatedFrame),
      rx_engine_(hdlc::Accm::sonet()) {
  // Prime the TX escape engine (ACCM table derivation) at construction, the
  // same config-change-time hoist the cycle device's OAM write performs.
  (void)tx_arena_.escape_engine(cfg.accm);
  framer_ = std::make_unique<sonet::SonetFramer>(
      sts, [this](std::size_t n) { return tx_take(n); });
  deframer_ = std::make_unique<sonet::SonetDeframer>(sts, [this](BytesView payload) {
    // Fused copy+descramble: one vectorized pass from the SPE payload into
    // the scratch buffer (the x^43+1 keystream is the received stream, so
    // the descramble loop carries no dependency).
    scr_rx_.descramble_to(rx_scratch_, payload);
    delineator_.push(BytesView(rx_scratch_));
  });
}

bool FastP5Endpoint::submit_datagram(u16 protocol, Bytes payload) {
  TxRequest req;
  req.protocol = protocol;
  req.payload = std::move(payload);
  return memory_.post_tx(std::move(req));
}

Bytes FastP5Endpoint::pull_frame() { return framer_->next_frame(); }

void FastP5Endpoint::push_line(BytesView octets) { deframer_->push(octets); }

u64 FastP5Endpoint::frames_pulled() const { return framer_->frames_built(); }

bool FastP5Endpoint::rx_in_sync() const { return deframer_->in_sync(); }

const sonet::DeframerStats& FastP5Endpoint::rx_stats() const { return deframer_->stats(); }

RxCounters FastP5Endpoint::rx_counters() const {
  // Same ledger the cycle RxControl keeps: every aborted/runted/FCS-failed
  // frame is frames_bad (the delineator marks aborts and runts, the CRC
  // checker junks residue failures — one disposition per delineated frame).
  RxCounters c = rx_counters_;
  const hdlc::DelineatorStats& d = delineator_.stats();
  c.frames_bad = d.aborts + d.runts + d.oversize + rx_crc_bad_;
  return c;
}

Bytes FastP5Endpoint::tx_take(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    if (tx_head_ >= tx_wire_.size()) tx_refill();
    const std::size_t take = std::min(n - out.size(), tx_wire_.size() - tx_head_);
    // Fused copy+scramble straight out of the encode arena — the x^43+1
    // delay line stays continuous across frames and across wire pieces,
    // exactly as on the cycle endpoint's line.
    scr_tx_.scramble_append(out, BytesView(tx_wire_.data() + tx_head_, take));
    tx_head_ += take;
  }
  return out;
}

void FastP5Endpoint::tx_refill() {
  tx_head_ = 0;
  batch_reqs_.clear();
  while (auto req = memory_.fetch_tx()) batch_reqs_.push_back(std::move(*req));
  if (batch_reqs_.empty()) {
    // Idle line: continuous flag fill (RFC 1619 octet-synchronous stream).
    tx_wire_ = idle_fill_;
    tx_wire_is_data_ = false;
    return;
  }
  batch_.clear();
  batch_.reserve(batch_reqs_.size());
  for (const TxRequest& r : batch_reqs_) {
    hdlc::BatchFrame f;
    f.protocol = r.protocol;
    f.payload = r.payload;
    f.control = r.control;  // numbered-mode override, like the cycle TxControl
    batch_.push_back(f);
  }
  tx_wire_ = hdlc::encode_batch_into(tx_arena_, tx_fcfg_, batch_);
  tx_wire_is_data_ = true;
}

void FastP5Endpoint::on_stuffed_frame(BytesView stuffed) {
  destuffed_.clear();
  destuffed_.reserve(stuffed.size() + fastpath::kStuffSlack);
  if (!rx_engine_.destuff_append(destuffed_, stuffed)) {
    // Dangling escape — the delineator classifies trailing escapes as
    // aborts before they reach us, so this is a defensive mirror of the
    // cycle pipeline's junk verdict.
    ++rx_crc_bad_;
    return;
  }
  const std::size_t fcs_len = cfg_.fcs_bytes();
  const crc::TableCrc& crc = cfg_.fcs32 ? crc::fcs32() : crc::fcs16();
  // The cycle RxCrcChecker accepts only frames longer than the FCS whose
  // running remainder lands on the residue.
  if (destuffed_.size() <= fcs_len || !crc.check(destuffed_)) {
    ++rx_crc_bad_;
    return;
  }
  const std::size_t content = destuffed_.size() - fcs_len;
  // Dispositions in the cycle RxControl's order: header length, MAPOS
  // address filter (programmed station or all-stations), MRU.
  if (content < 4) {
    ++rx_counters_.malformed;
    return;
  }
  if (destuffed_[0] != cfg_.address && destuffed_[0] != hdlc::kDefaultAddress) {
    ++rx_counters_.addr_filtered;
    return;
  }
  const std::size_t payload_len = content - 4;
  if (payload_len > cfg_.max_payload) {
    ++rx_counters_.oversize;
    return;
  }
  RxDelivery d;
  d.protocol = get_be16(destuffed_, 2);
  d.control = destuffed_[1];
  d.payload.assign(destuffed_.begin() + 4,
                   destuffed_.begin() + static_cast<std::ptrdiff_t>(content));
  ++rx_counters_.frames_ok;
  // Deliveries transit shared memory (accounted) exactly like the cycle
  // device: pool exhaustion is an rx_dropped, sink or not.
  if (memory_.store_rx(std::move(d))) {
    if (sink_) {
      if (auto reaped = memory_.reap_rx()) sink_(std::move(*reaped));
    }
  }
}

}  // namespace p5::core
