file(REMOVE_RECURSE
  "CMakeFiles/p5_hdlc.dir/delineation.cpp.o"
  "CMakeFiles/p5_hdlc.dir/delineation.cpp.o.d"
  "CMakeFiles/p5_hdlc.dir/frame.cpp.o"
  "CMakeFiles/p5_hdlc.dir/frame.cpp.o.d"
  "CMakeFiles/p5_hdlc.dir/stuffing.cpp.o"
  "CMakeFiles/p5_hdlc.dir/stuffing.cpp.o.d"
  "libp5_hdlc.a"
  "libp5_hdlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5_hdlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
