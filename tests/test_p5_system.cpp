// Whole-device and full-stack tests: P5 loopback across datapath widths and
// traffic patterns, OAM register/interrupt integration, and two P5s joined
// by the SONET substrate with and without line errors.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hdlc/delineation.hpp"
#include "hdlc/frame.hpp"
#include "hdlc/stuffing.hpp"
#include "net/ipv4.hpp"
#include "net/traffic.hpp"
#include "p5/p5.hpp"
#include "p5/sonet_link.hpp"

namespace p5::core {
namespace {

struct LoopbackParam {
  unsigned lanes;
  net::PayloadPattern pattern;
  double density;
};

class P5Loopback : public ::testing::TestWithParam<LoopbackParam> {};

TEST_P(P5Loopback, DatagramsSurviveRoundTrip) {
  const auto param = GetParam();
  P5Config cfg;
  cfg.lanes = param.lanes;
  P5 dev(cfg);
  std::vector<RxDelivery> got;
  dev.set_rx_sink([&](RxDelivery d) { got.push_back(std::move(d)); });

  net::TrafficSpec spec;
  spec.pattern = param.pattern;
  spec.escape_density = param.density;
  spec.min_len = 21;
  spec.max_len = 400;
  spec.seed = 17 + param.lanes;
  net::TrafficGenerator gen(spec);

  std::vector<Bytes> sent;
  for (int i = 0; i < 25; ++i) {
    Bytes payload = gen.payload(gen.spec().min_len + i * 7);
    sent.push_back(payload);
    dev.submit_datagram(0x0021, payload);
  }
  for (int k = 0; k < 6000; ++k) dev.phy_push_rx(dev.phy_pull_tx(param.lanes));
  dev.drain_rx(300);

  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].protocol, 0x0021);
    EXPECT_EQ(got[i].payload, sent[i]) << "datagram " << i;
  }
  EXPECT_EQ(dev.rx_crc().bad_frames(), 0u);
  EXPECT_EQ(dev.escape_generate().escapes_inserted(), dev.escape_detect().escapes_removed());
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndPatterns, P5Loopback,
    ::testing::Values(LoopbackParam{1, net::PayloadPattern::kUniformRandom, 0},
                      LoopbackParam{2, net::PayloadPattern::kUniformRandom, 0},
                      LoopbackParam{4, net::PayloadPattern::kUniformRandom, 0},
                      LoopbackParam{8, net::PayloadPattern::kUniformRandom, 0},
                      LoopbackParam{4, net::PayloadPattern::kAscii, 0},
                      LoopbackParam{4, net::PayloadPattern::kFlagDense, 0.3},
                      LoopbackParam{4, net::PayloadPattern::kAllFlags, 0},
                      LoopbackParam{1, net::PayloadPattern::kAllFlags, 0},
                      LoopbackParam{4, net::PayloadPattern::kIncrementing, 0}));

TEST(P5System, OamCountersTrackTraffic) {
  P5Config cfg;
  P5 dev(cfg);
  int delivered = 0;
  dev.set_rx_sink([&](RxDelivery) { ++delivered; });
  for (int i = 0; i < 5; ++i) dev.submit_datagram(0x0021, Bytes(50, 0x7E));
  for (int k = 0; k < 1000; ++k) dev.phy_push_rx(dev.phy_pull_tx(4));
  dev.drain_rx(200);

  Oam& oam = dev.oam();
  EXPECT_EQ(oam.read(static_cast<u32>(OamReg::kTxFrames)), 5u);
  EXPECT_EQ(oam.read(static_cast<u32>(OamReg::kRxFramesOk)), 5u);
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(oam.read(static_cast<u32>(OamReg::kRxFcsErrors)), 0u);
  // 50 flag octets per datagram got escaped.
  EXPECT_EQ(oam.read(static_cast<u32>(OamReg::kTxEscapes)), 250u);
  EXPECT_EQ(oam.read(static_cast<u32>(OamReg::kRxEscapes)), 250u);
}

TEST(P5System, RxFrameInterruptRaised) {
  P5 dev(P5Config{});
  dev.set_rx_sink([](RxDelivery) {});
  dev.oam().write(static_cast<u32>(OamReg::kIntMask),
                  u32{1} << static_cast<u32>(OamIrq::kRxFrame));
  dev.submit_datagram(0x0021, Bytes{1, 2, 3});
  for (int k = 0; k < 200; ++k) dev.phy_push_rx(dev.phy_pull_tx(4));
  dev.drain_rx(100);
  EXPECT_TRUE(dev.oam().irq_line());
  dev.oam().write(static_cast<u32>(OamReg::kIntPending), ~u32{0});
  EXPECT_FALSE(dev.oam().irq_line());
}

TEST(P5System, MaposAddressFilterDropsForeignFrames) {
  // TX programmed with address 0x04, RX expecting 0x08: all frames dropped
  // by the address filter, none delivered.
  P5Config cfg;
  cfg.lanes = 4;
  cfg.address = 0x04;
  P5 tx_dev(cfg);
  P5Config rx_cfg = cfg;
  rx_cfg.address = 0x08;
  P5 rx_dev(rx_cfg);
  int delivered = 0;
  rx_dev.set_rx_sink([&](RxDelivery) { ++delivered; });

  tx_dev.submit_datagram(0x0021, Bytes(30, 1));
  tx_dev.submit_datagram(0x0021, Bytes(30, 2));
  for (int k = 0; k < 500; ++k) rx_dev.phy_push_rx(tx_dev.phy_pull_tx(4));
  rx_dev.drain_rx(100);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rx_dev.rx_control().counters().addr_filtered, 2u);
}

TEST(P5System, BackToBackFramesNoInterFrameGapNeeded) {
  P5 dev(P5Config{});
  std::vector<RxDelivery> got;
  dev.set_rx_sink([&](RxDelivery d) { got.push_back(std::move(d)); });
  // Many tiny datagrams back to back stress frame boundary handling.
  for (int i = 0; i < 60; ++i) dev.submit_datagram(0x0021, Bytes{static_cast<u8>(i)});
  for (int k = 0; k < 4000; ++k) dev.phy_push_rx(dev.phy_pull_tx(4));
  dev.drain_rx(200);
  ASSERT_EQ(got.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(got[i].payload, Bytes{static_cast<u8>(i)});
}

TEST(P5System, ThroughputScalesWithWidth) {
  // Same workload, widths 1 and 4: the 32-bit datapath finishes ~4x sooner
  // in cycles — the paper's 625 Mbps vs 2.5 Gbps at the same clock.
  auto cycles_for = [](unsigned lanes) {
    P5Config cfg;
    cfg.lanes = lanes;
    P5 dev(cfg);
    int done = 0;
    dev.set_rx_sink([&](RxDelivery) { ++done; });
    Xoshiro256 rng(3);
    for (int i = 0; i < 10; ++i) {
      Bytes p;
      for (int j = 0; j < 1000; ++j) {
        u8 b = rng.byte();
        while (b == 0x7E || b == 0x7D) b = rng.byte();
        p.push_back(b);
      }
      dev.submit_datagram(0x0021, p);
    }
    while (done < 10) dev.phy_push_rx(dev.phy_pull_tx(lanes));
    return dev.cycle();
  };
  const u64 c1 = cycles_for(1);
  const u64 c4 = cycles_for(4);
  const double speedup = static_cast<double>(c1) / static_cast<double>(c4);
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 5.0);
}

// ---- hardware/software interoperability ----

TEST(P5Interop, HardwareWireImageParsesWithSoftwareStack) {
  // The P5's transmit octet stream must be a conforming RFC 1662 stream:
  // the *independent* software delineator/destuffer/parser consumes it.
  P5Config cfg;
  cfg.lanes = 4;
  P5 dev(cfg);
  std::vector<Bytes> sent;
  Xoshiro256 rng(41);
  for (int i = 0; i < 10; ++i) {
    Bytes p = rng.bytes(rng.range(1, 300));
    sent.push_back(p);
    dev.submit_datagram(0x0021, p);
  }

  hdlc::FrameConfig sw;
  std::vector<Bytes> got;
  hdlc::Delineator delineator([&](BytesView f) {
    const auto destuffed = hdlc::destuff(f);
    ASSERT_TRUE(destuffed.ok);
    const auto parsed = hdlc::parse(sw, destuffed.data);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.frame->protocol, 0x0021);
    got.push_back(parsed.frame->payload);
  });
  for (int k = 0; k < 2500; ++k) delineator.push(dev.phy_pull_tx(4));
  EXPECT_EQ(got, sent);
}

TEST(P5Interop, SoftwareWireImageReceivedByHardware) {
  // And the converse: frames built by the software stack are accepted by
  // the P5 receive pipeline.
  P5Config cfg;
  cfg.lanes = 4;
  P5 dev(cfg);
  std::vector<RxDelivery> got;
  dev.set_rx_sink([&](RxDelivery d) { got.push_back(std::move(d)); });

  hdlc::FrameConfig sw;
  Xoshiro256 rng(42);
  Bytes stream(8, hdlc::kFlag);  // idle fill preamble
  std::vector<Bytes> sent;
  for (int i = 0; i < 10; ++i) {
    Bytes p = rng.bytes(rng.range(1, 300));
    sent.push_back(p);
    append(stream, hdlc::build_wire_frame(sw, 0x0021, p));
  }
  while (stream.size() % 4) stream.push_back(hdlc::kFlag);
  dev.phy_push_rx(stream);
  dev.drain_rx(300);

  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].protocol, 0x0021);
    EXPECT_EQ(got[i].payload, sent[i]);
  }
}

TEST(P5Interop, BroadcastAddressAcceptedByAllStations) {
  // A frame addressed 0xFF (all-stations) passes every MAPOS filter.
  P5Config cfg;
  cfg.lanes = 4;
  cfg.address = 0x04;  // station with a unicast address
  P5 dev(cfg);
  int delivered = 0;
  dev.set_rx_sink([&](RxDelivery) { ++delivered; });

  hdlc::FrameConfig bcast;
  bcast.address = 0xFF;
  Bytes stream(4, hdlc::kFlag);
  append(stream, hdlc::build_wire_frame(bcast, 0x0021, Bytes{1, 2, 3, 4, 5}));
  while (stream.size() % 4) stream.push_back(hdlc::kFlag);
  dev.phy_push_rx(stream);
  dev.drain_rx(100);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(dev.rx_control().counters().addr_filtered, 0u);
}

// ---- full stack over SONET ----

TEST(SonetStack, CleanLineDeliversEverything) {
  P5Config cfg;
  cfg.lanes = 4;
  P5SonetLink link(cfg, sonet::kSts3c, sonet::LineConfig{});
  std::vector<Bytes> got_b;
  link.b().set_rx_sink([&](RxDelivery d) { got_b.push_back(std::move(d.payload)); });
  std::vector<Bytes> got_a;
  link.a().set_rx_sink([&](RxDelivery d) { got_a.push_back(std::move(d.payload)); });

  net::TrafficGenerator gen(net::TrafficSpec{});
  std::vector<Bytes> sent_a, sent_b;
  for (int i = 0; i < 15; ++i) {
    Bytes da = gen.next_datagram();
    Bytes db = gen.next_datagram();
    sent_a.push_back(da);
    sent_b.push_back(db);
    link.a().submit_datagram(0x0021, da);
    link.b().submit_datagram(0x0021, db);
  }
  link.exchange_frames(40);
  link.a().drain_rx(500);
  link.b().drain_rx(500);

  EXPECT_EQ(got_b, sent_a);
  EXPECT_EQ(got_a, sent_b);
  EXPECT_EQ(link.a_to_b_stats().b1_errors, 0u);
  EXPECT_TRUE(link.a_to_b_stats().frames_in_sync >= 40u);
}

TEST(SonetStack, DatagramsAreRealIpv4) {
  P5Config cfg;
  P5SonetLink link(cfg, sonet::kSts3c, sonet::LineConfig{});
  int valid = 0;
  link.b().set_rx_sink([&](RxDelivery d) {
    if (net::parse_datagram(d.payload)) ++valid;
  });
  net::ImixGenerator gen(9);
  for (int i = 0; i < 10; ++i) link.a().submit_datagram(0x0021, gen.next_datagram());
  link.exchange_frames(60);
  link.b().drain_rx(500);
  EXPECT_EQ(valid, 10);
}

TEST(SonetStack, NoisyLineErrorsAreCountedNotDelivered) {
  P5Config cfg;
  sonet::LineConfig noisy;
  noisy.bit_error_rate = 2e-5;
  noisy.seed = 77;
  P5SonetLink link(cfg, sonet::kSts3c, noisy);
  std::vector<Bytes> delivered;
  link.b().set_rx_sink([&](RxDelivery d) { delivered.push_back(std::move(d.payload)); });

  std::vector<Bytes> sent;
  Xoshiro256 rng(5);
  for (int i = 0; i < 60; ++i) {
    Bytes p = rng.bytes(600);
    sent.push_back(p);
    link.a().submit_datagram(0x0021, p);
  }
  link.exchange_frames(80);
  link.b().drain_rx(500);

  // Some frames must be lost to FCS errors at this BER, none corrupted.
  EXPECT_GT(link.line_ab_stats().bit_errors, 0u);
  EXPECT_LT(delivered.size(), sent.size());
  const u64 bad = link.b().rx_crc().bad_frames() +
                  link.b().flag_delineator().counters().aborts +
                  link.b().flag_delineator().counters().runts;
  EXPECT_GT(bad, 0u);
  // Every delivered payload is bit-exact (FCS-32 let nothing corrupt slip).
  std::size_t si = 0;
  for (const Bytes& d : delivered) {
    while (si < sent.size() && sent[si] != d) ++si;
    EXPECT_LT(si, sent.size()) << "delivered datagram not among sent (corruption)";
    ++si;
  }
}

TEST(SonetStack, Sts48cCarriesGigabitPayload) {
  // One STS-48c frame carries ~37k payload octets at 8 kHz: 2.4 Gbps.
  P5Config cfg;
  P5SonetLink link(cfg, sonet::kSts48c, sonet::LineConfig{});
  int got = 0;
  link.b().set_rx_sink([&](RxDelivery) { ++got; });
  Xoshiro256 rng(6);
  for (int i = 0; i < 20; ++i) link.a().submit_datagram(0x0021, rng.bytes(1400));
  link.exchange_frames(3);
  link.b().drain_rx(500);
  EXPECT_EQ(got, 20);
  EXPECT_NEAR(link.sts().payload_rate_mbps(), 2396.0, 15.0);
}

}  // namespace
}  // namespace p5::core
