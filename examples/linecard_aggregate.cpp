// linecard_aggregate — a 4-channel line card aggregating four P5 <-> SONET
// tributaries through the MAPOS fabric onto one uplink, plus one hairpin
// frame switched from channel 0 straight down channel 2.
//
// Run in deterministic step() mode so the output is identical on every run.
#include <cstdio>
#include <map>

#include "linecard/linecard.hpp"
#include "net/traffic.hpp"

int main() {
  using namespace p5;

  linecard::LineCardConfig cfg;
  cfg.channels = 4;
  linecard::LineCard lc(cfg);

  std::printf("line card: %u tributaries, uplink MAPOS address 0x%02X\n", lc.channels(),
              lc.uplink_address());
  for (unsigned c = 0; c < lc.channels(); ++c)
    std::printf("  channel %u -> fabric address 0x%02X\n", c, lc.channel_address(c));

  std::map<unsigned, u64> uplink_frames, uplink_bytes;
  lc.set_uplink_sink([&](unsigned channel, const net::MaposNode::Received& r) {
    uplink_frames[channel]++;
    uplink_bytes[channel] += r.payload.size();
  });

  // 12 IMIX datagrams per tributary, all bound for the uplink.
  net::ImixGenerator gen(7);
  for (unsigned c = 0; c < lc.channels(); ++c)
    for (int i = 0; i < 12; ++i) {
      linecard::FrameDesc d;
      d.payload = gen.next_datagram();
      if (!lc.inject(c, std::move(d))) std::printf("  channel %u: source ring full\n", c);
    }

  // One hairpin: enters on channel 0, the fabric switches it down channel 2's
  // tributary instead of the uplink.
  linecard::FrameDesc hairpin;
  hairpin.fabric_dest = lc.channel_address(2);
  hairpin.payload = gen.next_datagram();
  (void)lc.inject(0, std::move(hairpin));

  const u64 steps = lc.run_until_idle();
  std::printf("\ndrained in %llu deterministic steps\n\n", static_cast<unsigned long long>(steps));

  std::printf("%-8s %10s %10s %10s %10s %8s %8s\n", "channel", "frames_in", "bytes_in",
              "frames_out", "bytes_out", "uplinked", "hwm");
  for (unsigned c = 0; c < lc.channels(); ++c) {
    const linecard::ChannelSnapshot s = lc.telemetry().snapshot(c);
    std::printf("%-8u %10llu %10llu %10llu %10llu %8llu %8llu\n", c,
                static_cast<unsigned long long>(s.frames_in),
                static_cast<unsigned long long>(s.bytes_in),
                static_cast<unsigned long long>(s.frames_out),
                static_cast<unsigned long long>(s.bytes_out),
                static_cast<unsigned long long>(uplink_frames[c]),
                static_cast<unsigned long long>(s.ingress_hwm));
  }
  const linecard::ChannelSnapshot agg = lc.telemetry().aggregate();
  std::printf("%-8s %10llu %10llu %10llu %10llu\n", "total",
              static_cast<unsigned long long>(agg.frames_in),
              static_cast<unsigned long long>(agg.bytes_in),
              static_cast<unsigned long long>(agg.frames_out),
              static_cast<unsigned long long>(agg.bytes_out));

  std::printf("\nfabric: %llu frames forwarded, %llu flooded\n",
              static_cast<unsigned long long>(lc.fabric_stats().frames_forwarded),
              static_cast<unsigned long long>(lc.fabric_stats().frames_flooded));
  std::printf("note: channel 2 carries one frame more than the others — the hairpin\n"
              "from channel 0 arrives on its fabric ring, crosses its tributary, and\n"
              "returns to the uplink as regular channel-2 traffic.\n");
  return 0;
}
