// SONET/SDH scramblers.
//
// Two distinct scramblers exist in a PPP-over-SONET link (RFC 2615 / GR-253):
//
//  * FrameScrambler — the frame-synchronous section scrambler, PRBS from
//    x^7 + x^6 + 1 reset to all-ones at the first payload byte of each frame.
//    Applied to the whole frame except the first-row framing bytes (A1/A2/J0).
//
//  * SelfSyncScrambler43 — the x^43 + 1 self-synchronous payload scrambler
//    RFC 2615 adds over the SPE payload so that a malicious PPP payload
//    cannot fake long runs of 0s/1s and break downstream clock recovery.
//    Self-synchronous: the descrambler needs no state alignment, it recovers
//    after 43 bits.
#pragma once

#include <array>

#include "common/types.hpp"

namespace p5::sonet {

/// Frame-synchronous x^7 + x^6 + 1 scrambler (a keystream generator).
class FrameScrambler {
 public:
  /// Reset to the all-ones seed — done at the start of every frame's
  /// scrambled region.
  void reset() { state_ = 0x7F; }

  /// Next keystream byte (MSB transmitted first).
  [[nodiscard]] u8 next_keystream();

  /// XOR a buffer in place with keystream.
  void apply(Bytes& data, std::size_t begin, std::size_t end);

 private:
  u8 state_ = 0x7F;  ///< 7-bit LFSR state
};

/// Self-synchronous x^43 + 1 scrambler/descrambler (RFC 2615 §6).
class SelfSyncScrambler43 {
 public:
  void reset() { history_ = {}; }

  /// Scramble one octet (MSB first): out = in XOR (stream delayed 43 bits),
  /// where the delayed stream is the *output* stream.
  [[nodiscard]] u8 scramble(u8 in);
  /// Descramble one octet: out = in XOR (received stream delayed 43 bits).
  [[nodiscard]] u8 descramble(u8 in);

  [[nodiscard]] Bytes scramble(BytesView data);
  [[nodiscard]] Bytes descramble(BytesView data);

 private:
  // 43-bit delay line stored in a 64-bit word; bit 42 is the oldest.
  u64 history_ = 0;
};

}  // namespace p5::sonet
