file(REMOVE_RECURSE
  "libp5_crc.a"
)
