#include "netlist/verilog.hpp"

#include <cctype>
#include <sstream>

#include "common/check.hpp"

namespace p5::netlist {

namespace {

std::string sanitize(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) out.insert(0, "s_");
  return out;
}

std::string wire(NodeId id) { return "n" + std::to_string(id); }

std::string join(const std::vector<NodeId>& fanin, const char* op) {
  std::string s;
  for (std::size_t i = 0; i < fanin.size(); ++i) {
    if (i) {
      s += ' ';
      s += op;
      s += ' ';
    }
    s += wire(fanin[i]);
  }
  return s;
}

}  // namespace

std::string to_verilog(const Netlist& nl) {
  std::ostringstream v;
  const std::string mod = sanitize(nl.name());

  // Port list.
  v << "// generated from p5::netlist::Netlist \"" << nl.name() << "\"\n";
  v << "module " << mod << " (\n  input wire clk";
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    v << ",\n  input wire " << sanitize(nl.input_label(i));
  for (std::size_t i = 0; i < nl.outputs().size(); ++i)
    v << ",\n  output wire " << sanitize(nl.output_label(i));
  v << "\n);\n\n";

  // Wire/reg declarations and input aliases.
  for (NodeId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.at(id);
    v << (g.op == Op::kDff ? "  reg  " : "  wire ") << wire(id) << ";\n";
  }
  v << '\n';
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    v << "  assign " << wire(nl.inputs()[i]) << " = " << sanitize(nl.input_label(i)) << ";\n";
  v << '\n';

  // Combinational assigns.
  for (NodeId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.at(id);
    switch (g.op) {
      case Op::kConst0:
        v << "  assign " << wire(id) << " = 1'b0;\n";
        break;
      case Op::kConst1:
        v << "  assign " << wire(id) << " = 1'b1;\n";
        break;
      case Op::kAnd:
        v << "  assign " << wire(id) << " = " << join(g.fanin, "&") << ";\n";
        break;
      case Op::kOr:
        v << "  assign " << wire(id) << " = " << join(g.fanin, "|") << ";\n";
        break;
      case Op::kXor:
        v << "  assign " << wire(id) << " = " << join(g.fanin, "^") << ";\n";
        break;
      case Op::kNot:
        v << "  assign " << wire(id) << " = ~" << wire(g.fanin[0]) << ";\n";
        break;
      case Op::kMux:
        v << "  assign " << wire(id) << " = " << wire(g.fanin[0]) << " ? " << wire(g.fanin[2])
          << " : " << wire(g.fanin[1]) << ";\n";
        break;
      default:
        break;
    }
  }

  // Registers.
  v << "\n  always @(posedge clk) begin\n";
  for (const NodeId d : nl.dffs()) {
    const Gate& g = nl.at(d);
    P5_ASSERT(!g.fanin.empty());
    v << "    " << wire(d) << " <= " << wire(g.fanin[0]) << ";\n";
  }
  v << "  end\n\n";

  // Output bindings.
  for (std::size_t i = 0; i < nl.outputs().size(); ++i)
    v << "  assign " << sanitize(nl.output_label(i)) << " = " << wire(nl.outputs()[i]) << ";\n";

  v << "\nendmodule\n";
  return v.str();
}

}  // namespace p5::netlist
