#include "hdlc/delineation.hpp"

#include <algorithm>
#include <cstring>

namespace p5::hdlc {

void Delineator::push(BytesView octets) {
  const u8* base = octets.data();
  const std::size_t n = octets.size();
  std::size_t i = 0;
  while (i < n) {
    const void* hit = std::memchr(base + i, kFlag, n - i);
    const std::size_t flag_at = hit ? static_cast<std::size_t>(static_cast<const u8*>(hit) - base) : n;
    if (const std::size_t span = flag_at - i; span > 0) {
      stats_.octets += span;
      if (in_frame_) {
        const std::size_t room = current_.size() >= max_frame_ ? 0 : max_frame_ - current_.size();
        const std::size_t take = std::min(span, room);
        current_.insert(current_.end(), base + i, base + i + take);
        if (take < span) overflowed_ = true;
      }
      i = flag_at;
    }
    if (i < n) {
      ++stats_.octets;
      end_frame();
      in_frame_ = true;
      ++i;
    }
  }
}

void Delineator::push(u8 octet) {
  ++stats_.octets;
  if (octet == kFlag) {
    end_frame();
    in_frame_ = true;  // this flag also opens the next frame
    return;
  }
  if (!in_frame_) return;  // hunting: discard octets until the first flag
  if (current_.size() >= max_frame_) {
    overflowed_ = true;
    return;  // keep discarding until the closing flag resynchronises us
  }
  current_.push_back(octet);
}

void Delineator::end_frame() {
  if (!in_frame_) return;
  if (overflowed_) {
    ++stats_.oversize;
  } else if (!current_.empty() && current_.back() == kEscape) {
    // 0x7D immediately before the closing flag: transmitter abort.
    ++stats_.aborts;
  } else if (current_.size() >= min_frame_) {
    ++stats_.frames;
    sink_(current_);
  } else if (!current_.empty()) {
    ++stats_.runts;
  }
  // empty current_: inter-frame fill / back-to-back flags — not an event.
  current_.clear();
  overflowed_ = false;
}

void Delineator::flush() {
  // Stream ended mid-frame: a partial frame can never be validated.
  if (in_frame_ && (!current_.empty() || overflowed_)) {
    if (overflowed_)
      ++stats_.oversize;
    else
      ++stats_.runts;
  }
  current_.clear();
  overflowed_ = false;
  in_frame_ = false;
}

}  // namespace p5::hdlc
