// Transmitter / Receiver Control units (paper Figures 3-4: the first and
// last pipeline stage of each direction).
//
//  * TxControl: fetches datagrams from the shared-memory transmit queue,
//    prepends the programmable Address/Control octets and the 2-octet
//    Protocol field, and streams the frame content at `lanes` octets per
//    clock with SOF/EOF sideband — the control path of the framing
//    procedure.
//
//  * RxControl: parses the header off the destuffed, CRC-checked stream,
//    applies the MAPOS address filter, strips Address/Control/Protocol and
//    delivers reassembled datagrams (with their protocol number) to the
//    shared-memory receive queue; every disposition is counted for the OAM
//    status registers.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "common/types.hpp"
#include "p5/config.hpp"
#include "rtl/fifo.hpp"
#include "rtl/module.hpp"
#include "rtl/word.hpp"

namespace p5::core {

struct TxRequest {
  u16 protocol = 0x0021;  ///< IPv4 by default
  Bytes payload;
  /// Per-frame Control field override — numbered mode (RFC 1663) carries
  /// sequence numbers here; nullopt uses the configured UI value (0x03).
  std::optional<u8> control;
};

class SharedMemory;

class TxControl final : public rtl::Module {
 public:
  TxControl(std::string name, const P5Config& cfg, rtl::Fifo<rtl::Word>& out);

  /// Fetch frames from the shared packet memory instead of the local queue
  /// (the paper's Figure 2 arrangement; wired by the P5 top level).
  void set_memory(SharedMemory* mem) { mem_ = mem; }
  /// Called whenever a frame's last word has left (drives the TxDone IRQ).
  void set_frame_done_hook(std::function<void()> hook) { frame_done_ = std::move(hook); }

  /// Enqueue a datagram locally (standalone/unit-test path).
  void submit(TxRequest req) { tx_queue_.push_back(std::move(req)); }
  [[nodiscard]] std::size_t pending() const;

  void eval() override;
  void commit() override;

  /// Reprogram the header registers (OAM write); applies to frames started
  /// after the call — in-flight frames keep their header.
  void set_config(const P5Config& cfg) { cfg_ = cfg; }

  [[nodiscard]] u64 frames_started() const { return frames_; }
  [[nodiscard]] u64 octets_sent() const { return octets_; }

 private:
  P5Config cfg_;
  rtl::Fifo<rtl::Word>& out_;
  SharedMemory* mem_ = nullptr;
  std::function<void()> frame_done_;

  std::deque<TxRequest> tx_queue_;
  Bytes current_;          ///< content octets of the in-flight frame
  std::size_t offset_ = 0;
  bool sending_ = false;

  // eval() stages its changes here; commit() applies them.
  bool start_next_ = false;
  bool finished_ = false;
  std::size_t offset_next_ = 0;

  u64 frames_ = 0;
  u64 octets_ = 0;
};

struct RxDelivery {
  u16 protocol = 0;
  u8 control = 0;  ///< received Control field (sequence numbers in numbered mode)
  Bytes payload;
};

struct RxCounters {
  u64 frames_ok = 0;
  u64 frames_bad = 0;       ///< CRC failure / abort (already junked upstream)
  u64 addr_filtered = 0;    ///< MAPOS address mismatch
  u64 malformed = 0;        ///< header too short
  u64 oversize = 0;         ///< payload above the negotiated maximum
  bool operator==(const RxCounters&) const = default;
};

class RxControl final : public rtl::Module {
 public:
  RxControl(std::string name, const P5Config& cfg, rtl::Fifo<rtl::Word>& in);

  /// Called once per good frame (from commit(), cycle-aligned).
  void set_sink(std::function<void(RxDelivery)> sink) { sink_ = std::move(sink); }

  void eval() override;
  void commit() override;

  /// Reprogram the address filter / MRU (OAM write).
  void set_config(const P5Config& cfg) { cfg_ = cfg; }

  [[nodiscard]] const RxCounters& counters() const { return counters_; }

 private:
  P5Config cfg_;
  rtl::Fifo<rtl::Word>& in_;
  std::function<void(RxDelivery)> sink_;

  Bytes assembling_;
  bool in_frame_ = false;
  bool junk_frame_ = false;

  Bytes assembling_next_;
  bool in_frame_next_ = false;
  bool junk_next_ = false;
  std::deque<RxDelivery> completed_;  ///< delivered at commit()

  RxCounters counters_;
};

}  // namespace p5::core
