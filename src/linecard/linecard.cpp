#include "linecard/linecard.hpp"

#include "common/check.hpp"

namespace p5::linecard {

LineCard::LineCard(const LineCardConfig& cfg)
    : cfg_(cfg), telemetry_(cfg.channels), fabric_(cfg.channels + 1) {
  P5_EXPECTS(cfg.channels >= 1);
  channels_.reserve(cfg.channels);
  nodes_.reserve(cfg.channels);

  for (unsigned i = 0; i < cfg.channels; ++i) {
    ChannelConfig cc = cfg.channel;
    cc.line.seed = cfg.channel.line.seed + 2ull * i;  // independent noise per tributary
    channels_.push_back(std::make_unique<Channel>(i, cc, telemetry_.channel(i)));

    nodes_.push_back(
        std::make_unique<net::MaposNode>([this, i](BytesView wire) { fabric_.rx(i, wire); }));
    fabric_.attach(i, [this, i](BytesView wire) { nodes_[i]->rx(wire); });
    // Frames the switch sends toward tributary i go down its link: the
    // fabric thread is the sole producer of the channel's fabric ring.
    nodes_[i]->set_sink([this, i](const net::MaposNode::Received& r) {
      FrameDesc d;
      d.protocol = r.protocol;
      d.source_channel = static_cast<u8>(i);
      d.payload = r.payload;
      if (!channels_[i]->fabric_ring().try_push(std::move(d)))
        telemetry_.channel(i).ring_full_stall();  // fabric-side drop, counted
    });
  }

  uplink_ = std::make_unique<net::MaposNode>(
      [this](BytesView wire) { fabric_.rx(cfg_.channels, wire); });
  fabric_.attach(cfg_.channels, [this](BytesView wire) { uplink_->rx(wire); });
  uplink_->set_sink([this](const net::MaposNode::Received& r) {
    if (uplink_sink_) uplink_sink_(fabric_current_channel_, r);
  });

  // NSP address acquisition, all synchronous through the switch: each node
  // sends Address-Request with the null address and the switch answers
  // Address-Assign for its port. Done here, before any worker exists.
  for (auto& node : nodes_) node->request_address();
  uplink_->request_address();
  P5_ENSURES(uplink_->address().has_value());
  for (auto& ch : channels_) {
    P5_ENSURES(nodes_[ch->index()]->address().has_value());
    ch->set_egress_dest(*uplink_->address());  // aggregation by default
  }
}

LineCard::~LineCard() { stop(); }

u8 LineCard::channel_address(unsigned i) const { return *nodes_[i]->address(); }

u8 LineCard::uplink_address() const { return *uplink_->address(); }

bool LineCard::inject(unsigned ch, FrameDesc d) {
  P5_EXPECTS(ch < channels_.size());
  if (!channels_[ch]->source_ring().try_push(std::move(d))) {
    telemetry_.channel(ch).ring_full_stall();
    return false;
  }
  return true;
}

void LineCard::inject_blocking(unsigned ch, FrameDesc d) {
  P5_EXPECTS(ch < channels_.size());
  channels_[ch]->source_ring().push(std::move(d));
}

std::size_t LineCard::fabric_round() {
  std::size_t forwarded = 0;
  for (unsigned i = 0; i < channels_.size(); ++i) {
    Channel& ch = *channels_[i];
    // Drain up to one burst of descriptors, then encode them as ONE batch
    // into the channel's arena: a single worst-case reservation and a single
    // escape-engine/CRC setup for the whole burst, which is where the
    // per-frame overhead goes on small-frame traffic.
    fabric_batch_.clear();
    while (fabric_batch_.size() < cfg_.fabric_burst) {
      auto d = ch.egress_ring().try_pop();
      if (!d) break;
      fabric_batch_.push_back(std::move(*d));
    }
    if (fabric_batch_.empty()) continue;

    fabric_batch_frames_.clear();
    for (const FrameDesc& d : fabric_batch_)
      fabric_batch_frames_.push_back({d.protocol, d.payload, d.fabric_dest, {}});

    // The switch delineates the concatenated stream and runs every sink it
    // triggers (uplink or another channel's fabric ring) synchronously in
    // this context, frame by frame, exactly as the per-frame sends did.
    fabric_current_channel_ = i;
    forwarded += nodes_[i]->send_batch(ch.arena(), fabric_batch_frames_);

    // Publish the engine's dispatch-tier selections for this tributary.
    if (const auto* eng = ch.arena().cached_tx_engine()) {
      const fastpath::TierCounters& c = eng->counters();
      telemetry_.channel(i).set_escape_tiers(c.scalar_calls, c.swar_calls, c.simd_calls);
    }
  }
  return forwarded;
}

bool LineCard::step() {
  P5_EXPECTS(!running());
  bool work = false;
  for (auto& ch : channels_) work = ch->step() || work;
  work = fabric_round() > 0 || work;
  return work;
}

u64 LineCard::run_until_idle(u64 max_steps) {
  u64 steps = 0;
  while (steps < max_steps) {
    ++steps;
    if (!step()) break;
  }
  return steps;
}

void LineCard::start() {
  if (running()) return;
  running_.store(true, std::memory_order_release);
  workers_.reserve(channels_.size());
  for (unsigned i = 0; i < channels_.size(); ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
  fabric_thread_ = std::thread([this] { fabric_main(); });
}

void LineCard::stop() {
  if (!running()) return;
  running_.store(false, std::memory_order_release);
  for (auto& w : workers_) w.join();
  workers_.clear();
  fabric_thread_.join();
}

void LineCard::worker_main(unsigned i) {
  Channel& ch = *channels_[i];
  while (running_.load(std::memory_order_acquire)) {
    if (!ch.step()) std::this_thread::yield();
  }
}

void LineCard::fabric_main() {
  while (running_.load(std::memory_order_acquire)) {
    if (fabric_round() == 0) std::this_thread::yield();
  }
  // Workers are not joined yet, but they only *push* to egress rings; one
  // final round drains what was already visible at shutdown.
  fabric_round();
}

}  // namespace p5::linecard
