#!/usr/bin/env bash
# Repo health check, in labeled stages:
#   tier-1    configure + build + full ctest          (build/)
#   fault     the fault-injection/conformance label    (build/, ctest -L fault)
#   transport the socket-transport label               (build/, ctest -L transport)
#   server    the sharded TunnelServer label           (build/, ctest -L server)
#             + a full-scale churn leg (P5_SERVER_CHURN=1000) of the
#             kill/reconnect test that tier-1 runs at its default
#   session   the PPP session plane label               (build/, ctest -L session)
#             auth FSMs, VJ compression, and the broker negotiation storms
#   capture   the pcap capture/replay + TUN bridge label (build/, ctest -L capture)
#             golden pcap vectors, replay equivalence, tap ledgers; TUN tests
#             SKIP without /dev/net/tun privileges. Plus the bench_tunnel
#             --pcap quick gate vs the committed BENCH_capture.json
#   tier      device-tier matrix: transport+conformance suites re-run with
#             P5_DEVICE_TIER forced to cycle, then fast, then fast with
#             P5_ESCAPE_TIER=scalar (fast tier on the scalar escape engine)
#   asan      ASan+UBSan build + full ctest            (build-asan/)
#   tsan      TSan build + the threaded suites         (build-tsan/)
#   bench     smoke run of every registered bench      (build/, ctest -L bench)
#             + bench_compare.py regression gates: --quick bench_softpath,
#             bench_tunnel, bench_server and bench_session sweeps diffed
#             against the committed BENCH_*.json
#
# Usage: scripts/check.sh [stage...]   (default: all stages in order)
#   e.g. scripts/check.sh tier-1 fault     # skip the sanitizer rebuilds
# Seed reproduction for any failing property test: see TESTING.md
# (P5_TEST_SEED / P5_TEST_CASES pass straight through this script).
set -euo pipefail
cd "$(dirname "$0")/.."

STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(tier-1 fault transport server session capture tier asan tsan bench)

want() {
  local s
  for s in "${STAGES[@]}"; do [ "$s" = "$1" ] && return 0; done
  return 1
}

if want tier-1; then
  echo "== tier-1: configure + build + ctest =="
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest --output-on-failure -j)
fi

if want fault; then
  echo
  echo "== fault: deterministic fault-injection + conformance (ctest -L fault) =="
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest -L fault --output-on-failure -j)
fi

if want transport; then
  echo
  echo "== transport: epoll socket transport suite (ctest -L transport) =="
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest -L transport --output-on-failure -j)
  # The batched-I/O legs default on; this leg proves the serial fallback
  # (P5_TX_BATCH=0) still carries the whole suite — same ledgers, same
  # delivery order — mirroring the P5_DEVICE_TIER env matrix.
  (cd build && P5_TX_BATCH=0 ctest -L transport --output-on-failure -j)
fi

if want server; then
  echo
  echo "== server: sharded TunnelServer suite (ctest -L server) =="
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest -L server --output-on-failure -j)
  (cd build && P5_TX_BATCH=0 ctest -L server --output-on-failure -j)
  # The churn test's full-default target already runs in tier-1; this leg
  # re-runs it explicitly so a `scripts/check.sh server` in isolation still
  # covers the kill/reconnect path at scale.
  (cd build && P5_SERVER_CHURN=1000 ctest -R 'ServerChurn' --output-on-failure)
fi

if want session; then
  echo
  echo "== session: PPP auth + VJ + broker storm suite (ctest -L session) =="
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest -L session --output-on-failure -j)
fi

if want capture; then
  echo
  echo "== capture: pcap capture/replay + TUN bridge suite (ctest -L capture) =="
  cmake -B build -S .
  cmake --build build -j
  # TUN-dependent tests and the p5_tun probe SKIP (exit 77) when the host
  # has no /dev/net/tun or no CAP_NET_ADMIN — a skip is green, a FAIL is not.
  (cd build && ctest -L capture --output-on-failure -j)
  echo
  echo "== capture gate: quick pcap-replay tunnel sweep vs committed baseline =="
  # Replay throughput is wall-clock like the tunnel gate (80% per-bench
  # tolerance); the bench itself exits nonzero if any chunk ledger fails to
  # close, so the gate only catches a collapsed replay path.
  ./build/bench/bench_tunnel --pcap --quick --out build/BENCH_capture.fresh.json > /dev/null
  python3 scripts/bench_compare.py build/BENCH_capture.fresh.json BENCH_capture.json \
    --metric new_mb_s
fi

if want tier; then
  echo
  echo "== tier: device-tier matrix over the transport + conformance suites =="
  cmake -B build -S .
  cmake --build build -j
  # Force every default-selected endpoint to each tier in turn. The suites
  # include the tier-pinned tests either way; the env legs prove the
  # default-selection points all route through resolve_device_tier() and
  # that the fast tier holds up with the escape engine clamped to scalar.
  (cd build && P5_DEVICE_TIER=cycle ctest -R 'Transport|Conformance' --output-on-failure -j)
  (cd build && P5_DEVICE_TIER=fast ctest -R 'Transport|Conformance' --output-on-failure -j)
  (cd build && P5_DEVICE_TIER=fast P5_ESCAPE_TIER=scalar \
    ctest -R 'Transport|Conformance' --output-on-failure -j)
fi

if want asan; then
  echo
  echo "== asan: address+undefined sanitizers, full ctest (build-asan) =="
  cmake -B build-asan -S . -DP5_SANITIZE=address,undefined
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j)
fi

if want tsan; then
  echo
  echo "== tsan: thread sanitizer, threaded + fault suites (build-tsan) =="
  cmake -B build-tsan -S . -DP5_SANITIZE=thread
  cmake --build build-tsan -j
  # TSan's value is the threaded runtime; run the suites that spin threads
  # (including the sharded broker storm) plus the whole fault label (cheap,
  # and proves the harness is race-free).
  (cd build-tsan && ctest -R 'LineCard|SpscRing|SharedMemory|Transport|Server|Broker|Capture|Tun|Replay|Pcap|TraceGen' --output-on-failure -j)
  (cd build-tsan && ctest -L fault --output-on-failure -j)
fi

if want bench; then
  echo
  echo "== bench smoke: ctest -L bench =="
  (cd build && ctest -L bench --output-on-failure -j)
  echo
  echo "== bench gate: quick softpath sweep vs committed baseline =="
  # The gate compares *speedup ratios* (new/old measured in the same run),
  # which survive host differences; the wide tolerance absorbs the noise of
  # --quick windows on shared runners while still catching a collapsed
  # dispatch tier (losing SIMD costs far more than 50%). For a careful
  # same-host check, run the bench without --quick and compare with the
  # default 15% tolerance.
  ./build/bench/bench_softpath --quick --out build/BENCH_softpath.fresh.json > /dev/null
  python3 scripts/bench_compare.py build/BENCH_softpath.fresh.json BENCH_softpath.json \
    --tolerance 0.5
  echo
  echo "== bench gate: quick tunnel sweep vs committed baseline =="
  # Wall-clock socket throughput on a shared host swings hard, so this gate
  # leans on the per-bench default tolerance (80%, see bench_compare.py):
  # it only trips when the transport collapses, not when the runner is busy.
  ./build/bench/bench_tunnel --quick --out build/BENCH_tunnel.fresh.json > /dev/null
  python3 scripts/bench_compare.py build/BENCH_tunnel.fresh.json BENCH_tunnel.json \
    --metric new_mb_s
  echo
  echo "== bench gate: quick server sweep vs committed baseline =="
  # Same reasoning as the tunnel gate (80% per-bench tolerance): the figure
  # is wall-clock socket+decode throughput and host-count dependent; the
  # gate exists to catch a collapsed termination path, and the bench itself
  # exits nonzero if any ledger fails to close.
  ./build/bench/bench_server --quick --out build/BENCH_server.fresh.json > /dev/null
  python3 scripts/bench_compare.py build/BENCH_server.fresh.json BENCH_server.json \
    --metric new_mb_s
  echo
  echo "== bench gate: quick session sweep vs committed baseline =="
  # Wall-clock like the tunnel/server gates (80% per-bench tolerance): the
  # rows are VJ MB/s and storm sessions/s, and the bench aborts on its own
  # if any storm ledger fails to close, so the gate only catches collapses.
  ./build/bench/bench_session --quick --out build/BENCH_session.fresh.json > /dev/null
  python3 scripts/bench_compare.py build/BENCH_session.fresh.json BENCH_session.json \
    --metric new_mb_s
fi

echo
echo "check.sh: all green"
