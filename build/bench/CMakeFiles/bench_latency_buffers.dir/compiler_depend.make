# Empty compiler generated dependencies file for bench_latency_buffers.
# This may be replaced when dependencies are built.
