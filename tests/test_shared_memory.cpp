// Shared packet memory tests (paper Figure 2): descriptor rings, pool
// accounting, backpressure toward the host, the reap-based receive path,
// and the TxDone / RxError interrupt plumbing.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hdlc/frame.hpp"
#include "hdlc/stuffing.hpp"
#include "p5/p5.hpp"
#include "p5/shared_memory.hpp"

namespace p5::core {
namespace {

TxRequest make_req(std::size_t bytes, u8 fill = 0x42) {
  TxRequest r;
  r.protocol = 0x0021;
  r.payload.assign(bytes, fill);
  return r;
}

TEST(SharedMemory, PostFetchFifoOrder) {
  SharedMemory mem;
  ASSERT_TRUE(mem.post_tx(make_req(10, 1)));
  ASSERT_TRUE(mem.post_tx(make_req(20, 2)));
  EXPECT_EQ(mem.tx_pending(), 2u);
  EXPECT_EQ(mem.tx_bytes_used(), 30u);
  auto a = mem.fetch_tx();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->payload[0], 1);
  auto b = mem.fetch_tx();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->payload[0], 2);
  EXPECT_FALSE(mem.fetch_tx().has_value());
  EXPECT_EQ(mem.tx_bytes_used(), 0u);
}

TEST(SharedMemory, TxPoolExhaustionRejects) {
  SharedMemoryConfig cfg;
  cfg.tx_pool_bytes = 100;
  SharedMemory mem(cfg);
  EXPECT_TRUE(mem.post_tx(make_req(60)));
  EXPECT_FALSE(mem.post_tx(make_req(60)));  // 120 > 100
  EXPECT_EQ(mem.stats().tx_rejected, 1u);
  (void)mem.fetch_tx();
  EXPECT_TRUE(mem.post_tx(make_req(60)));  // space reclaimed
}

TEST(SharedMemory, TxRingExhaustionRejects) {
  SharedMemoryConfig cfg;
  cfg.tx_ring_entries = 2;
  SharedMemory mem(cfg);
  EXPECT_TRUE(mem.post_tx(make_req(1)));
  EXPECT_TRUE(mem.post_tx(make_req(1)));
  EXPECT_FALSE(mem.post_tx(make_req(1)));
}

TEST(SharedMemory, RxDropCountedWhenFull) {
  SharedMemoryConfig cfg;
  cfg.rx_ring_entries = 1;
  SharedMemory mem(cfg);
  RxDelivery d;
  d.payload = {1, 2, 3};
  EXPECT_TRUE(mem.store_rx(d));
  EXPECT_FALSE(mem.store_rx(d));
  EXPECT_EQ(mem.stats().rx_dropped, 1u);
  ASSERT_TRUE(mem.reap_rx().has_value());
  EXPECT_TRUE(mem.store_rx(d));
}

TEST(SharedMemory, PeakWatermarksTracked) {
  SharedMemory mem;
  (void)mem.post_tx(make_req(100));
  (void)mem.post_tx(make_req(50));
  (void)mem.fetch_tx();
  EXPECT_EQ(mem.stats().tx_peak_bytes, 150u);
  EXPECT_EQ(mem.tx_bytes_used(), 50u);
}

// ---- through the device ----

TEST(P5Memory, ReapPathWithoutSink) {
  P5Config cfg;
  cfg.lanes = 4;
  P5 dev(cfg);  // no rx sink: frames accumulate in shared memory
  dev.submit_datagram(0x0021, Bytes{1, 2, 3});
  dev.submit_datagram(0x0021, Bytes{4, 5, 6});
  for (int k = 0; k < 400; ++k) dev.phy_push_rx(dev.phy_pull_tx(4));
  dev.drain_rx(200);

  EXPECT_EQ(dev.memory().rx_pending(), 2u);
  auto a = dev.reap_datagram();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->payload, (Bytes{1, 2, 3}));
  auto b = dev.reap_datagram();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->payload, (Bytes{4, 5, 6}));
  EXPECT_FALSE(dev.reap_datagram().has_value());
}

TEST(P5Memory, SubmitBackpressureWhenPoolFull) {
  P5Config cfg;
  cfg.lanes = 4;
  P5 dev(cfg);
  // Fill the 64 KiB default transmit pool with 1500-byte datagrams.
  int accepted = 0;
  while (dev.submit_datagram(0x0021, Bytes(1500, 0x11))) ++accepted;
  EXPECT_GT(accepted, 30);
  EXPECT_LT(accepted, 64);
  EXPECT_GE(dev.memory().stats().tx_rejected, 1u);
  // Draining the transmitter frees the pool.
  for (int k = 0; k < 2000 && dev.tx_control().pending() > 0; ++k)
    (void)dev.phy_pull_tx(4);
  EXPECT_TRUE(dev.submit_datagram(0x0021, Bytes(1500, 0x22)));
}

TEST(P5Memory, TxDoneInterrupt) {
  P5 dev(P5Config{});
  dev.oam().write(static_cast<u32>(OamReg::kIntMask),
                  u32{1} << static_cast<u32>(OamIrq::kTxDone));
  dev.submit_datagram(0x0021, Bytes{1, 2, 3});
  for (int k = 0; k < 100; ++k) (void)dev.phy_pull_tx(4);
  EXPECT_TRUE(dev.oam().irq_line());
  dev.oam().write(static_cast<u32>(OamReg::kIntPending), ~u32{0});
  EXPECT_FALSE(dev.oam().irq_line());
}

TEST(P5Memory, RxErrorInterruptOnBadFcs) {
  P5Config cfg;
  cfg.lanes = 4;
  P5 dev(cfg);
  dev.oam().write(static_cast<u32>(OamReg::kIntMask),
                  u32{1} << static_cast<u32>(OamIrq::kRxError));

  hdlc::FrameConfig sw;
  Bytes wire(4, hdlc::kFlag);
  Bytes frame = hdlc::build_wire_frame(sw, 0x0021, Bytes{9, 9, 9, 9, 9});
  frame[5] ^= 0x40;  // corrupt the content
  append(wire, frame);
  while (wire.size() % 4) wire.push_back(hdlc::kFlag);
  dev.phy_push_rx(wire);
  dev.drain_rx(200);

  EXPECT_GE(dev.rx_crc().bad_frames(), 1u);
  EXPECT_TRUE(dev.oam().irq_line());
}

TEST(P5Memory, StatsFlowThroughDevice) {
  P5 dev(P5Config{});
  std::vector<RxDelivery> got;
  dev.set_rx_sink([&](RxDelivery d) { got.push_back(std::move(d)); });
  for (int i = 0; i < 8; ++i) dev.submit_datagram(0x0021, Bytes(100, static_cast<u8>(i)));
  for (int k = 0; k < 1500; ++k) dev.phy_push_rx(dev.phy_pull_tx(4));
  dev.drain_rx(200);
  EXPECT_EQ(got.size(), 8u);
  const auto& st = dev.memory().stats();
  EXPECT_EQ(st.tx_posted, 8u);
  EXPECT_EQ(st.tx_completed, 8u);
  EXPECT_EQ(st.rx_stored, 8u);
  EXPECT_EQ(st.rx_reaped, 8u);  // immediately reaped into the sink
  EXPECT_EQ(dev.memory().tx_bytes_used(), 0u);
  EXPECT_EQ(dev.memory().rx_bytes_used(), 0u);
}

}  // namespace
}  // namespace p5::core
