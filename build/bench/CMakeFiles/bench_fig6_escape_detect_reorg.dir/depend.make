# Empty dependencies file for bench_fig6_escape_detect_reorg.
# This may be replaced when dependencies are built.
