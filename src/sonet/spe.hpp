// STS-Nc / SDH VC-4-Xc synchronous payload envelope framer and deframer.
//
// Geometry (GR-253 / G.707), concatenated payloads:
//   * a frame is 9 rows x (90*N) columns, 8 kHz frame rate;
//   * the first 3*N columns of every row are transport overhead (TOH);
//   * one column of path overhead (POH: J1,B3,C2,...) leads the SPE;
//   * concatenation adds N/3 - 1 fixed-stuff columns after the POH;
//   * the rest is payload: PPP's continuous octet stream (RFC 1619/2615).
//
// Modelling choices (documented substitutions, DESIGN.md §2):
//   * the payload pointer (H1/H2) is held at zero — the SPE is frame-aligned
//    and no justification events occur (the paper's P5 sits behind a PHY that
//    presents an already-aligned octet stream);
//   * overhead actually computed: A1/A2 framing, J0 section trace, B1
//     (section BIP-8, over the previous scrambled frame), B2 (line BIP-8xN),
//     B3 (path BIP-8 over the previous SPE), C2 path signal label
//     (0x16 = PPP with x^43+1 scrambling), G1 REI feedback;
//   * remaining overhead bytes transmit as zero.
//
// Rates: STS-N line rate is N x 51.84 Mbps; STS-48c carries the paper's
// 2.488 Gbps ("2.5 Gbps") and STS-12c the 622 Mbps ("625 Mbps") service.
#pragma once

#include <functional>
#include <optional>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sonet/scrambler.hpp"

namespace p5::sonet {

inline constexpr u8 kA1 = 0xF6;
inline constexpr u8 kA2 = 0x28;
inline constexpr u8 kC2PppScrambled = 0x16;  ///< RFC 2615 path signal label
inline constexpr std::size_t kRows = 9;

struct StsSpec {
  unsigned n;  ///< STS level (3, 12, 48 for concatenated payloads)

  [[nodiscard]] std::size_t columns() const { return 90u * n; }
  [[nodiscard]] std::size_t toh_columns() const { return 3u * n; }
  [[nodiscard]] std::size_t fixed_stuff_columns() const { return n / 3 - 1; }
  [[nodiscard]] std::size_t spe_columns() const { return columns() - toh_columns(); }
  [[nodiscard]] std::size_t payload_columns() const {
    return spe_columns() - 1 /*POH*/ - fixed_stuff_columns();
  }
  [[nodiscard]] std::size_t frame_bytes() const { return kRows * columns(); }
  [[nodiscard]] std::size_t payload_bytes_per_frame() const {
    return kRows * payload_columns();
  }
  [[nodiscard]] double line_rate_mbps() const { return 51.84 * n; }
  [[nodiscard]] double payload_rate_mbps() const {
    return static_cast<double>(payload_bytes_per_frame()) * 8.0 * 8000.0 / 1e6;
  }
};

inline constexpr StsSpec kSts3c{3};
inline constexpr StsSpec kSts12c{12};
inline constexpr StsSpec kSts48c{48};

/// Builds successive STS-Nc frames around a PPP octet stream.
class SonetFramer {
 public:
  /// `payload_source(n)` must return exactly n octets — PPP guarantees a
  /// continuous stream by inserting inter-frame flag fill.
  SonetFramer(StsSpec spec, std::function<Bytes(std::size_t)> payload_source);

  /// Serialise the next full frame (scrambled, ready for the line).
  [[nodiscard]] Bytes next_frame();

  [[nodiscard]] const StsSpec& spec() const { return spec_; }
  [[nodiscard]] u64 frames_built() const { return frames_; }

 private:
  StsSpec spec_;
  std::function<Bytes(std::size_t)> payload_source_;
  u64 frames_ = 0;
  u8 b1_ = 0;  ///< section BIP-8 computed over the previous scrambled frame
  u8 b3_ = 0;  ///< path BIP-8 over the previous SPE
};

struct DeframerStats {
  u64 frames_in_sync = 0;
  u64 resyncs = 0;          ///< HUNT->SYNC transitions after the first
  u64 b1_errors = 0;
  u64 b3_errors = 0;
  u64 discarded_octets = 0; ///< octets consumed while hunting
  bool operator==(const DeframerStats&) const = default;
};

/// Recovers frame alignment from a raw octet stream and extracts the PPP
/// payload. States: HUNT (searching A1...A2 pattern) -> SYNC; two consecutive
/// bad alignment words drop back to HUNT, modelling SONET's LOF behaviour.
class SonetDeframer {
 public:
  SonetDeframer(StsSpec spec, std::function<void(BytesView)> payload_sink);

  void push(BytesView octets);
  void push(u8 octet);

  [[nodiscard]] bool in_sync() const { return state_ == State::kSync; }
  [[nodiscard]] const DeframerStats& stats() const { return stats_; }

 private:
  void process_frame();

  enum class State : u8 { kHunt, kSync };

  StsSpec spec_;
  std::function<void(BytesView)> payload_sink_;
  State state_ = State::kHunt;
  Bytes window_;            ///< accumulating candidate frame
  bool ever_synced_ = false;
  unsigned bad_alignments_ = 0;
  u8 expected_b1_ = 0;
  u8 expected_b3_ = 0;
  bool have_b1_ref_ = false;
  DeframerStats stats_;
};

/// BIP-8: even parity per bit position over a span.
[[nodiscard]] u8 bip8(BytesView data);

}  // namespace p5::sonet
