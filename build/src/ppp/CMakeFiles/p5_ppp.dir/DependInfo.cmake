
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppp/endpoint.cpp" "src/ppp/CMakeFiles/p5_ppp.dir/endpoint.cpp.o" "gcc" "src/ppp/CMakeFiles/p5_ppp.dir/endpoint.cpp.o.d"
  "/root/repo/src/ppp/fsm.cpp" "src/ppp/CMakeFiles/p5_ppp.dir/fsm.cpp.o" "gcc" "src/ppp/CMakeFiles/p5_ppp.dir/fsm.cpp.o.d"
  "/root/repo/src/ppp/ipcp.cpp" "src/ppp/CMakeFiles/p5_ppp.dir/ipcp.cpp.o" "gcc" "src/ppp/CMakeFiles/p5_ppp.dir/ipcp.cpp.o.d"
  "/root/repo/src/ppp/lcp.cpp" "src/ppp/CMakeFiles/p5_ppp.dir/lcp.cpp.o" "gcc" "src/ppp/CMakeFiles/p5_ppp.dir/lcp.cpp.o.d"
  "/root/repo/src/ppp/lqm.cpp" "src/ppp/CMakeFiles/p5_ppp.dir/lqm.cpp.o" "gcc" "src/ppp/CMakeFiles/p5_ppp.dir/lqm.cpp.o.d"
  "/root/repo/src/ppp/packet.cpp" "src/ppp/CMakeFiles/p5_ppp.dir/packet.cpp.o" "gcc" "src/ppp/CMakeFiles/p5_ppp.dir/packet.cpp.o.d"
  "/root/repo/src/ppp/reliable.cpp" "src/ppp/CMakeFiles/p5_ppp.dir/reliable.cpp.o" "gcc" "src/ppp/CMakeFiles/p5_ppp.dir/reliable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p5_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hdlc/CMakeFiles/p5_hdlc.dir/DependInfo.cmake"
  "/root/repo/build/src/crc/CMakeFiles/p5_crc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
