#include "transport/stats.hpp"

namespace p5::transport {

TransportSnapshot& TransportSnapshot::operator+=(const TransportSnapshot& o) {
  frames_in += o.frames_in;
  bytes_in += o.bytes_in;
  frames_out += o.frames_out;
  bytes_out += o.bytes_out;
  frames_lost += o.frames_lost;
  frames_rcvd += o.frames_rcvd;
  bytes_rcvd += o.bytes_rcvd;
  rx_drops += o.rx_drops;
  connects += o.connects;
  reconnects += o.reconnects;
  disconnects += o.disconnects;
  backoff_waits += o.backoff_waits;
  idle_timeouts += o.idle_timeouts;
  backpressure_stalls += o.backpressure_stalls;
  send_queue_hwm = send_queue_hwm > o.send_queue_hwm ? send_queue_hwm : o.send_queue_hwm;
  proto_errors += o.proto_errors;
  tx_syscalls += o.tx_syscalls;
  rx_syscalls += o.rx_syscalls;
  pool_recycled += o.pool_recycled;
  return *this;
}

TransportSnapshot TransportTelemetry::read_once() const {
  TransportSnapshot s;
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.frames_lost = frames_lost_.load(std::memory_order_relaxed);
  s.frames_rcvd = frames_rcvd_.load(std::memory_order_relaxed);
  s.bytes_rcvd = bytes_rcvd_.load(std::memory_order_relaxed);
  s.rx_drops = rx_drops_.load(std::memory_order_relaxed);
  s.connects = connects_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.backoff_waits = backoff_waits_.load(std::memory_order_relaxed);
  s.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  s.backpressure_stalls = backpressure_stalls_.load(std::memory_order_relaxed);
  s.send_queue_hwm = send_queue_hwm_.load(std::memory_order_relaxed);
  s.proto_errors = proto_errors_.load(std::memory_order_relaxed);
  s.tx_syscalls = tx_syscalls_.load(std::memory_order_relaxed);
  s.rx_syscalls = rx_syscalls_.load(std::memory_order_relaxed);
  s.pool_recycled = pool_recycled_.load(std::memory_order_relaxed);
  return s;
}

TransportSnapshot TransportTelemetry::snapshot() const {
  TransportSnapshot prev = read_once();
  for (int i = 0; i < 8; ++i) {
    TransportSnapshot cur = read_once();
    if (cur == prev) return cur;
    prev = cur;
  }
  return prev;
}

}  // namespace p5::transport
