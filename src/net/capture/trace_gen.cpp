#include "net/capture/trace_gen.hpp"

#include "common/rng.hpp"
#include "ppp/vj.hpp"

namespace p5::net::capture {

PcapFile synthesize_tcp_trace(const TraceGenConfig& cfg) {
  PcapFile file;
  file.meta.nsec = true;
  file.meta.linktype = kLinkRawIp;
  ppp::vj::TcpFlowGen gen(cfg.flows, cfg.seed, cfg.max_payload);
  Xoshiro256 gaps(cfg.seed ^ 0xC0FFEEull);  // gap stream independent of payloads
  u64 ts = 0;
  file.records.reserve(cfg.packets);
  for (std::size_t i = 0; i < cfg.packets; ++i) {
    PcapRecord rec;
    rec.data = gen.next();
    rec.orig_len = static_cast<u32>(rec.data.size());
    rec.ts_sec = static_cast<u32>(ts / 1'000'000'000ull);
    rec.ts_nsec = static_cast<u32>(ts % 1'000'000'000ull);
    ts += gaps.range(cfg.mean_gap_ns / 2, cfg.mean_gap_ns + cfg.mean_gap_ns / 2);
    file.records.push_back(std::move(rec));
  }
  return file;
}

bool write_tcp_trace(const std::string& path, const TraceGenConfig& cfg) {
  const PcapFile file = synthesize_tcp_trace(cfg);
  PcapWriter w;
  if (!w.create(path, file.meta)) return false;
  for (const PcapRecord& rec : file.records)
    if (!w.write(rec)) return false;
  w.flush();
  return true;
}

}  // namespace p5::net::capture
