# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crc[1]_include.cmake")
include("/root/repo/build/tests/test_hdlc[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sonet[1]_include.cmake")
include("/root/repo/build/tests/test_ppp[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_netlist_circuits[1]_include.cmake")
include("/root/repo/build/tests/test_p5_units[1]_include.cmake")
include("/root/repo/build/tests/test_p5_system[1]_include.cmake")
include("/root/repo/build/tests/test_reliable[1]_include.cmake")
include("/root/repo/build/tests/test_tooling[1]_include.cmake")
include("/root/repo/build/tests/test_pointer[1]_include.cmake")
include("/root/repo/build/tests/test_lqm[1]_include.cmake")
include("/root/repo/build/tests/test_mapos[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_shared_memory[1]_include.cmake")
