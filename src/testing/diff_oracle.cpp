#include "testing/diff_oracle.hpp"

#include <iomanip>
#include <sstream>

#include "common/check.hpp"
#include "fastpath/stuff_fast.hpp"
#include "hdlc/delineation.hpp"
#include "hdlc/stuffing.hpp"
#include "p5/endpoint.hpp"
#include "p5/p5.hpp"
#include "sonet/scrambler.hpp"

namespace p5::testing {

namespace {

std::string hex_octet(u8 b) {
  std::ostringstream o;
  o << "0x" << std::hex << std::setw(2) << std::setfill('0') << static_cast<unsigned>(b);
  return o.str();
}

/// First-divergence diagnosis between two engines' byte streams.
std::string diff_bytes(std::string_view label_a, BytesView a, std::string_view label_b,
                       BytesView b) {
  if (std::equal(a.begin(), a.end(), b.begin(), b.end())) return {};
  std::ostringstream o;
  o << label_a << " (" << a.size() << " octets) != " << label_b << " (" << b.size()
    << " octets)";
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      o << "; first divergence at offset " << i << ": " << hex_octet(a[i]) << " vs "
        << hex_octet(b[i]);
      return o.str();
    }
  }
  o << "; one is a prefix of the other";
  return o.str();
}

constexpr u64 kCyclesPerOctet = 4;  ///< generous bound for either byte sorter
constexpr u64 kCycleSlack = 64;

}  // namespace

// ---- persistent cycle-level rigs --------------------------------------

namespace detail {

struct GenRig {
  rtl::Fifo<rtl::Word> in{"oracle_gen_in", 1};
  rtl::Fifo<rtl::Word> out{"oracle_gen_out", 2};
  core::EscapeGenerate unit;
  rtl::Simulator sim;

  GenRig(unsigned lanes, hdlc::Accm accm) : unit("oracle_gen", lanes, in, out, accm) {
    sim.add(unit);
    sim.add_channel(in);
    sim.add_channel(out);
  }

  /// Stream one frame through; returns nullopt when the unit never emitted
  /// EOF within the cycle budget (itself a reportable failure).
  std::optional<Bytes> run(BytesView content, unsigned lanes) {
    Bytes got;
    std::size_t off = 0;
    bool done = false;
    const u64 budget = kCycleSlack + kCyclesPerOctet * (content.size() + lanes);
    for (u64 cycle = 0; cycle < budget && !done; ++cycle) {
      if (off < content.size() && in.can_push()) {
        const std::size_t n = std::min<std::size_t>(lanes, content.size() - off);
        rtl::Word w = rtl::Word::of(content.subspan(off, n));
        w.sof = off == 0;
        w.eof = off + n >= content.size();
        in.push(w);
        off += n;
      }
      sim.step();
      while (out.can_pop()) {
        const rtl::Word w = out.pop();
        for (std::size_t i = 0; i < w.count(); ++i) got.push_back(w.lane(i));
        if (w.eof) done = true;
      }
    }
    if (!done) return std::nullopt;
    return got;
  }
};

struct DetRig {
  rtl::Fifo<rtl::Word> in{"oracle_det_in", 1};
  rtl::Fifo<rtl::Word> out{"oracle_det_out", 2};
  core::EscapeDetect unit;
  rtl::Simulator sim;

  explicit DetRig(unsigned lanes) : unit("oracle_det", lanes, in, out) {
    sim.add(unit);
    sim.add_channel(in);
    sim.add_channel(out);
  }

  std::optional<DetectStreamResult> run(BytesView stuffed, unsigned lanes) {
    DetectStreamResult res;
    std::size_t off = 0;
    bool done = false;
    const u64 budget = kCycleSlack + kCyclesPerOctet * (stuffed.size() + lanes);
    for (u64 cycle = 0; cycle < budget && !done; ++cycle) {
      if (off < stuffed.size() && in.can_push()) {
        const std::size_t n = std::min<std::size_t>(lanes, stuffed.size() - off);
        rtl::Word w = rtl::Word::of(stuffed.subspan(off, n));
        w.sof = off == 0;
        w.eof = off + n >= stuffed.size();
        in.push(w);
        off += n;
      }
      sim.step();
      while (out.can_pop()) {
        const rtl::Word w = out.pop();
        for (std::size_t i = 0; i < w.count(); ++i) res.data.push_back(w.lane(i));
        if (w.eof) {
          res.abort = w.abort;
          done = true;
        }
      }
    }
    if (!done) return std::nullopt;
    return res;
  }
};

}  // namespace detail

Bytes escape_generate_stream(unsigned lanes, BytesView content, const hdlc::Accm& accm) {
  detail::GenRig rig(lanes, accm);
  auto got = rig.run(content, lanes);
  return got ? std::move(*got) : Bytes{};
}

DetectStreamResult escape_detect_stream(unsigned lanes, BytesView stuffed) {
  detail::DetRig rig(lanes);
  auto got = rig.run(stuffed, lanes);
  return got ? std::move(*got) : DetectStreamResult{};
}

// ---- oracle ------------------------------------------------------------

DiffOracle::DiffOracle(hdlc::FrameConfig cfg, unsigned lanes)
    : cfg_(cfg),
      lanes_(lanes),
      scalar_crc16_(crc::kFcs16),
      scalar_crc32_(crc::kFcs32),
      simd_tx_(cfg.accm),
      simd_rx_(hdlc::Accm::sonet()),
      gen_(std::make_unique<detail::GenRig>(lanes, cfg.accm)),
      det_(std::make_unique<detail::DetRig>(lanes)) {}

DiffOracle::~DiffOracle() = default;

Bytes DiffOracle::scalar_encapsulate(u16 protocol, BytesView payload) const {
  // Independent re-implementation of the header/FCS assembly on purpose:
  // sharing hdlc::encapsulate here would let a framing bug hide from the
  // differential comparison.
  Bytes content;
  if (!cfg_.acfc) {
    content.push_back(cfg_.address);
    content.push_back(cfg_.control);
  }
  if (cfg_.pfc && protocol <= 0xFF && (protocol & 1u)) {
    content.push_back(static_cast<u8>(protocol));
  } else {
    put_be16(content, protocol);
  }
  append(content, payload);
  const bool wide = cfg_.fcs == hdlc::FcsKind::kFcs32;
  const u32 fcs = wide ? scalar_crc32_.crc(content) : scalar_crc16_.crc(content);
  // Least-significant octet first (RFC 1662 §C), both widths.
  for (std::size_t i = 0; i < cfg_.fcs_bytes(); ++i)
    content.push_back(static_cast<u8>(fcs >> (8 * i)));
  return content;
}

DiffOracle::EncodeResult DiffOracle::encode(u16 protocol, BytesView payload) {
  EncodeResult r;
  auto flunk = [&](std::string why) {
    if (r.agree) r.diagnosis = std::move(why);
    r.agree = false;
  };

  // Layer 1: frame content (header + payload + FCS), scalar vs fastpath CRC.
  r.content = scalar_encapsulate(protocol, payload);
  const Bytes content_fast = hdlc::encapsulate(cfg_, protocol, payload);
  if (auto d = diff_bytes("scalar content", r.content, "fastpath content", content_fast);
      !d.empty())
    flunk(std::move(d));

  // Layer 2: stuffed image — scalar vs SWAR (pinned) vs dispatched SIMD
  // engine vs cycle-level Escape Generate.
  r.stuffed = fastpath::scalar::stuff(r.content, cfg_.accm);
  Bytes stuffed_fast;
  stuffed_fast.reserve(2 * r.content.size() + fastpath::kStuffSlack);
  fastpath::stuff_append(stuffed_fast, r.content, cfg_.accm);
  if (auto d = diff_bytes("scalar stuffed", r.stuffed, "SWAR stuffed", stuffed_fast);
      !d.empty())
    flunk(std::move(d));

  Bytes stuffed_simd;
  stuffed_simd.reserve(2 * r.content.size() + fastpath::kStuffSlack);
  simd_tx_.stuff_append(stuffed_simd, r.content);
  if (auto d = diff_bytes("scalar stuffed", r.stuffed,
                          std::string("SIMD(") + fastpath::to_string(simd_tx_.tier()) +
                              ") stuffed",
                          stuffed_simd);
      !d.empty())
    flunk(std::move(d));

  auto stuffed_p5 = gen_->run(r.content, lanes_);
  if (!stuffed_p5) {
    flunk("EscapeGenerate never emitted EOF within the cycle budget");
  } else if (auto d = diff_bytes("scalar stuffed", r.stuffed, "p5 EscapeGenerate", *stuffed_p5);
             !d.empty()) {
    flunk(std::move(d));
  }

  // Layer 3: the fused zero-alloc encoder's whole wire image.
  const BytesView wire = hdlc::encode_into(arena_, cfg_, protocol, payload);
  r.wire.assign(wire.begin(), wire.end());
  if (r.wire.size() < 2 || r.wire.front() != hdlc::kFlag || r.wire.back() != hdlc::kFlag) {
    flunk("fused encoder wire image is not flag-delimited");
  } else if (auto d = diff_bytes("scalar stuffed", r.stuffed, "fused encode_into body",
                                 BytesView(r.wire).subspan(1, r.wire.size() - 2));
             !d.empty()) {
    flunk(std::move(d));
  }
  return r;
}

DiffOracle::DecodeResult DiffOracle::decode(BytesView stuffed) {
  DecodeResult r;
  auto flunk = [&](std::string why) {
    if (r.agree) r.diagnosis = std::move(why);
    r.agree = false;
  };

  auto [scalar_data, scalar_ok] = fastpath::scalar::destuff(stuffed);
  r.recovered = std::move(scalar_data);
  r.ok = scalar_ok;

  Bytes swar_data;
  swar_data.reserve(stuffed.size() + fastpath::kStuffSlack);
  const bool swar_ok = fastpath::destuff_append(swar_data, stuffed);
  if (swar_ok != scalar_ok)
    flunk(std::string("dangling-escape verdicts differ: scalar ") +
          (scalar_ok ? "ok" : "abort") + ", SWAR " + (swar_ok ? "ok" : "abort"));
  if (auto d = diff_bytes("scalar destuffed", r.recovered, "SWAR destuffed", swar_data);
      !d.empty())
    flunk(std::move(d));

  const std::string simd_label = std::string("SIMD(") + fastpath::to_string(simd_rx_.tier()) + ")";
  Bytes simd_data;
  simd_data.reserve(stuffed.size() + fastpath::kStuffSlack);
  const bool simd_ok = simd_rx_.destuff_append(simd_data, stuffed);
  if (simd_ok != scalar_ok)
    flunk(std::string("dangling-escape verdicts differ: scalar ") +
          (scalar_ok ? "ok" : "abort") + ", " + simd_label + " " + (simd_ok ? "ok" : "abort"));
  if (auto d = diff_bytes("scalar destuffed", r.recovered, simd_label + " destuffed", simd_data);
      !d.empty())
    flunk(std::move(d));

  if (stuffed.empty()) return r;  // the byte sorter needs at least one octet
  auto det = det_->run(stuffed, lanes_);
  if (!det) {
    flunk("EscapeDetect never emitted EOF within the cycle budget");
    return r;
  }
  if (det->abort == r.ok)
    flunk(std::string("dangling-escape verdicts differ: scalar ") +
          (scalar_ok ? "ok" : "abort") + ", p5 EscapeDetect " +
          (det->abort ? "abort" : "ok"));
  if (auto d = diff_bytes("scalar destuffed", r.recovered, "p5 EscapeDetect", det->data);
      !d.empty())
    flunk(std::move(d));
  return r;
}

DiffOracle::ReceiveResult DiffOracle::receive(BytesView raw_wire) {
  ReceiveResult r;
  if (cfg_.acfc || cfg_.pfc) {
    r.agree = false;
    r.diagnosis = "receive() requires uncompressed headers (the P5 has no ACFC/PFC)";
    return r;
  }

  // The P5's PHY interface moves whole `lanes`-octet words, so a stream tail
  // shorter than one word would sit in its spill buffer unseen. Pad with
  // inter-frame flag fill to a word boundary — and give the *same* padded
  // image to every engine, so a truncated trailing frame is closed (and then
  // FCS-rejected) identically everywhere.
  Bytes padded(raw_wire.begin(), raw_wire.end());
  while (padded.size() % lanes_) padded.push_back(hdlc::kFlag);
  const BytesView wire(padded);

  // Software stack, parameterised by destuff engine.
  enum class Engine { kScalar, kSwar, kSimd };
  auto software = [&](Engine engine) {
    std::vector<Delivery> good;
    hdlc::Delineator d([&](BytesView f) {
      Bytes data;
      bool ok = false;
      switch (engine) {
        case Engine::kScalar: {
          auto res = fastpath::scalar::destuff(f);
          data = std::move(res.first);
          ok = res.second;
          break;
        }
        case Engine::kSwar:
          data.reserve(f.size() + fastpath::kStuffSlack);
          ok = fastpath::destuff_append(data, f);
          break;
        case Engine::kSimd:
          data.reserve(f.size() + fastpath::kStuffSlack);
          ok = simd_rx_.destuff_append(data, f);
          break;
      }
      if (!ok) return;
      auto parsed = hdlc::parse(cfg_, data);
      if (parsed.ok())
        good.push_back({parsed.frame->protocol, std::move(parsed.frame->payload)});
    });
    d.push(wire);
    return good;
  };
  const std::vector<Delivery> sw_scalar = software(Engine::kScalar);
  const std::vector<Delivery> sw_swar = software(Engine::kSwar);
  const std::vector<Delivery> sw_simd = software(Engine::kSimd);

  // Cycle-accurate receiver: a whole P5 device configured to match.
  core::P5Config pc;
  pc.lanes = lanes_;
  pc.address = cfg_.address;
  pc.control = cfg_.control;
  pc.fcs32 = cfg_.fcs == hdlc::FcsKind::kFcs32;
  pc.max_payload = cfg_.max_payload;
  pc.accm = cfg_.accm;
  core::P5 dev(pc);
  std::vector<Delivery> hw;
  dev.set_rx_sink([&](core::RxDelivery d) { hw.push_back({d.protocol, std::move(d.payload)}); });
  dev.phy_push_rx(wire);
  dev.drain_rx(10000);

  auto compare = [&](const char* label, const std::vector<Delivery>& other) {
    if (sw_scalar == other) return;
    if (!r.agree) return;  // keep the first divergence
    std::ostringstream o;
    o << "scalar engine accepted " << sw_scalar.size() << " frames, " << label << " accepted "
      << other.size();
    const std::size_t n = std::min(sw_scalar.size(), other.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!(sw_scalar[i] == other[i])) {
        o << "; first divergence at frame " << i;
        break;
      }
    }
    r.agree = false;
    r.diagnosis = o.str();
  };
  compare("SWAR engine", sw_swar);
  compare("dispatched SIMD engine", sw_simd);
  compare("p5 device", hw);
  r.delivered = sw_scalar;
  return r;
}

// ---- fifth leg: whole-endpoint device-tier equivalence ------------------

namespace {

/// Drain a transmit endpoint: interleave submits with pull_frame so the
/// 64-entry device tx ring never wedges, then flush the tail (tx_pending
/// clears with the closing FCS/flag octets still inside the cycle pipeline;
/// three more SONET frames of line time flushes either tier).
Bytes tier_pull_stream(core::SonetEndpoint& ep,
                       std::span<const DiffOracle::TierPacket> packets) {
  Bytes stream;
  for (const auto& p : packets) {
    u64 guard = 0;
    while (!ep.tx_has_room(p.payload.size())) {
      append(stream, ep.pull_frame());
      P5_ASSERT(++guard < (u64{1} << 16));  // payload larger than the tx pool
    }
    core::TxRequest req;
    req.protocol = p.protocol;
    req.payload = p.payload;
    req.control = p.control;
    (void)ep.submit_frame(std::move(req));
  }
  while (ep.tx_pending()) append(stream, ep.pull_frame());
  for (int i = 0; i < 3; ++i) append(stream, ep.pull_frame());
  return stream;
}

/// Reduce a chunk stream to its canonical content: SONET-deframe,
/// descramble, HDLC-delineate. Inter-frame flag fill (where the cycle
/// pipeline's restart latency shows up) and scrambler state cancel out,
/// leaving exactly the stuffed-frame sequence the stream carries.
std::vector<Bytes> tier_canonical_frames(BytesView stream, sonet::StsSpec sts) {
  std::vector<Bytes> frames;
  hdlc::Delineator delin(
      [&frames](BytesView f) { frames.emplace_back(f.begin(), f.end()); },
      /*min_frame=*/4, /*max_frame_octets=*/std::size_t{1} << 20);
  sonet::SelfSyncScrambler43 descr;
  Bytes scratch;
  sonet::SonetDeframer deframer(sts, [&](BytesView payload) {
    scratch.assign(payload.begin(), payload.end());
    descr.descramble_in_place(scratch);
    delin.push(BytesView{scratch});
  });
  deframer.push(stream);
  return frames;
}

/// A receiver of one tier plus everything it reported about a stream.
struct TierRxRig {
  std::unique_ptr<core::SonetEndpoint> ep;
  std::vector<DiffOracle::TierDelivery> got;

  TierRxRig(core::DeviceTier tier, const core::P5Config& cfg, sonet::StsSpec sts)
      : ep(core::make_sonet_endpoint(tier, cfg, sts)) {
    ep->set_rx_sink([this](core::RxDelivery d) {
      got.push_back({d.protocol, d.control, std::move(d.payload)});
    });
  }
  void feed(const std::vector<Bytes>& chunks) {
    for (const Bytes& c : chunks) {
      if (!c.empty()) ep->push_line(c);  // an emptied chunk was dropped in flight
    }
    ep->drain_rx();
  }
  [[nodiscard]] DiffOracle::TierLedger ledger() const {
    return {ep->rx_counters(), ep->rx_overflow_drops(), ep->rx_stats()};
  }
};

std::string tier_delivery_diff(const std::vector<DiffOracle::TierDelivery>& a,
                               const std::vector<DiffOracle::TierDelivery>& b) {
  if (a == b) return {};
  std::ostringstream o;
  o << a.size() << " vs " << b.size() << " deliveries";
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) continue;
    o << "; first divergence at delivery " << i;
    if (a[i].protocol != b[i].protocol) {
      o << " (protocol " << a[i].protocol << " vs " << b[i].protocol << ")";
    } else if (a[i].control != b[i].control) {
      o << " (control " << hex_octet(a[i].control) << " vs " << hex_octet(b[i].control)
        << ")";
    } else {
      o << " (" << diff_bytes("payload a", a[i].payload, "payload b", b[i].payload) << ")";
    }
    break;
  }
  return o.str();
}

std::string tier_ledger_diff(const DiffOracle::TierLedger& a,
                             const DiffOracle::TierLedger& b) {
  std::ostringstream o;
  auto field = [&o](const char* name, u64 x, u64 y) {
    if (x != y) o << (o.tellp() > 0 ? "; " : "") << name << " " << x << " vs " << y;
  };
  field("frames_ok", a.counters.frames_ok, b.counters.frames_ok);
  field("frames_bad", a.counters.frames_bad, b.counters.frames_bad);
  field("addr_filtered", a.counters.addr_filtered, b.counters.addr_filtered);
  field("malformed", a.counters.malformed, b.counters.malformed);
  field("oversize", a.counters.oversize, b.counters.oversize);
  field("rx_overflow_drops", a.rx_overflow_drops, b.rx_overflow_drops);
  field("frames_in_sync", a.deframer.frames_in_sync, b.deframer.frames_in_sync);
  field("resyncs", a.deframer.resyncs, b.deframer.resyncs);
  field("b1_errors", a.deframer.b1_errors, b.deframer.b1_errors);
  field("b3_errors", a.deframer.b3_errors, b.deframer.b3_errors);
  field("discarded_octets", a.deframer.discarded_octets, b.deframer.discarded_octets);
  return o.str();
}

}  // namespace

DiffOracle::TierEquivalenceResult DiffOracle::tier_equivalence(
    const core::P5Config& cfg, sonet::StsSpec sts, std::span<const TierPacket> packets,
    const FaultSpec* fault) {
  TierEquivalenceResult r;
  auto flunk = [&r](std::string why) {
    if (r.agree) {
      r.agree = false;
      r.diagnosis = std::move(why);
    }
  };

  // Transmit the identical packet sequence through both tiers.
  auto cyc_tx = core::make_sonet_endpoint(core::DeviceTier::kCycle, cfg, sts);
  auto fast_tx = core::make_sonet_endpoint(core::DeviceTier::kFast, cfg, sts);
  const Bytes cyc_stream = tier_pull_stream(*cyc_tx, packets);
  const Bytes fast_stream = tier_pull_stream(*fast_tx, packets);

  // Leg A: canonical wire equality. The raw chunk streams may differ only in
  // inter-frame flag fill (and its knock-on scrambler state); the delineated
  // stuffed-frame sequences must match byte for byte.
  const std::vector<Bytes> cyc_frames = tier_canonical_frames(cyc_stream, sts);
  const std::vector<Bytes> fast_frames = tier_canonical_frames(fast_stream, sts);
  r.canonical_frames = fast_frames.size();
  if (cyc_frames.size() != fast_frames.size()) {
    std::ostringstream o;
    o << "canonical wire: cycle tier carries " << cyc_frames.size()
      << " stuffed frames, fast tier " << fast_frames.size();
    flunk(o.str());
  } else {
    for (std::size_t i = 0; i < cyc_frames.size(); ++i) {
      if (cyc_frames[i] == fast_frames[i]) continue;
      std::ostringstream o;
      o << "canonical wire frame " << i << ": "
        << diff_bytes("cycle tier", cyc_frames[i], "fast tier", fast_frames[i]);
      flunk(o.str());
      break;
    }
  }

  // Chunk each stream the way a transport carries it: whole SONET frames.
  auto chunked = [&sts](const Bytes& s) {
    std::vector<Bytes> chunks;
    const std::size_t n = sts.frame_bytes();
    for (std::size_t off = 0; off < s.size(); off += n) {
      const std::size_t take = std::min(n, s.size() - off);
      chunks.emplace_back(s.begin() + static_cast<std::ptrdiff_t>(off),
                          s.begin() + static_cast<std::ptrdiff_t>(off + take));
    }
    return chunks;
  };
  const std::vector<Bytes> stream_chunks[2] = {chunked(cyc_stream), chunked(fast_stream)};
  const char* stream_names[2] = {"cycle-tier stream", "fast-tier stream"};

  // Leg B: clean cross-decode — each tier's stream into BOTH tiers'
  // receivers; same-stream receiver pairs must agree on every delivery and
  // on the complete loss ledger, and the deliveries must be the submitted
  // packets, exactly.
  for (int s = 0; s < 2; ++s) {
    TierRxRig rc(core::DeviceTier::kCycle, cfg, sts);
    TierRxRig rf(core::DeviceTier::kFast, cfg, sts);
    rc.feed(stream_chunks[s]);
    rf.feed(stream_chunks[s]);
    if (std::string d = tier_delivery_diff(rc.got, rf.got); !d.empty()) {
      flunk(std::string("clean cross-decode of ") + stream_names[s] + ": " + d);
    }
    if (!(rc.ledger() == rf.ledger())) {
      flunk(std::string("clean cross-decode of ") + stream_names[s] +
            " ledgers: " + tier_ledger_diff(rc.ledger(), rf.ledger()));
    }
    if (s == 1) {
      r.delivered = rf.got;
      r.clean_ledger = rf.ledger();
      std::vector<TierDelivery> expected;
      expected.reserve(packets.size());
      for (const auto& p : packets) {
        expected.push_back({p.protocol, p.control.value_or(cfg.control), p.payload});
      }
      if (std::string d = tier_delivery_diff(expected, rf.got); !d.empty()) {
        flunk(std::string("clean deliveries vs submitted packets: ") + d);
      }
    }
  }

  // Leg C: fault parity — corrupt each stream ONCE, then feed the identical
  // corrupted chunks to both tiers' receivers. Junk/abort verdicts, resync
  // points and surviving deliveries must all match. (The two streams are
  // corrupted independently — the noise lands on different octets — so only
  // same-stream receiver pairs are comparable here.)
  if (fault != nullptr) {
    for (int s = 0; s < 2; ++s) {
      FaultyLine line(*fault);
      std::vector<Bytes> noisy = stream_chunks[s];
      for (Bytes& c : noisy) line.apply(c);
      TierRxRig rc(core::DeviceTier::kCycle, cfg, sts);
      TierRxRig rf(core::DeviceTier::kFast, cfg, sts);
      rc.feed(noisy);
      rf.feed(noisy);
      if (std::string d = tier_delivery_diff(rc.got, rf.got); !d.empty()) {
        flunk(std::string("faulted cross-decode of ") + stream_names[s] + ": " + d);
      }
      if (!(rc.ledger() == rf.ledger())) {
        flunk(std::string("faulted cross-decode of ") + stream_names[s] +
              " ledgers: " + tier_ledger_diff(rc.ledger(), rf.ledger()));
      }
      if (s == 1) r.fault_ledger = rf.ledger();
    }
  }
  return r;
}

// ---- VJ header-compression round-trip leg --------------------------------

namespace {

/// Ones-complement sum over `data` (RFC 1071), seeded with `sum`.
u32 ones_sum(BytesView data, u32 sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) sum += static_cast<u32>((data[i] << 8) | data[i + 1]);
  if (i < data.size()) sum += static_cast<u32>(data[i]) << 8;
  return sum;
}

/// Verify the TCP checksum of a parsed IPv4+TCP datagram (assumes geometry
/// was already validated by the compressor on the way in).
bool tcp_checksum_valid(BytesView datagram) {
  if (datagram.size() < 40) return false;
  const std::size_t ihl = static_cast<std::size_t>(datagram[0] & 0x0F) * 4;
  if (datagram.size() < ihl + 20) return false;
  const std::size_t tcp_len = datagram.size() - ihl;
  // Pseudo-header: src, dst, zero, proto, TCP length.
  u32 sum = 0;
  sum = ones_sum(datagram.subspan(12, 8), sum);  // src + dst
  sum += 6;                                      // zero + protocol
  sum += static_cast<u32>(tcp_len);
  sum = ones_sum(datagram.subspan(ihl), sum);  // TCP header (cksum included) + data
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<u16>(~sum) == 0;
}

}  // namespace

DiffOracle::VjRoundTripResult DiffOracle::vj_roundtrip(const ppp::vj::VjConfig& cfg,
                                                       std::span<const Bytes> datagrams,
                                                       double drop_chance, u64 seed) {
  using ppp::vj::PacketClass;
  VjRoundTripResult r;
  ppp::vj::Compressor comp(cfg);
  ppp::vj::Decompressor decomp(cfg);
  Xoshiro256 rng(seed);

  const auto flunk = [&r](std::string d) {
    if (r.agree) {
      r.agree = false;
      r.diagnosis = std::move(d);
    }
  };

  // Note: desync is NOT per-connection — a dropped packet that carried a
  // slot *switch* makes the decompressor misapply the next implicit-slot
  // deltas to a different connection's slot, corrupting it too. The honest
  // RFC 1144 §4 guarantee is therefore global: before the first drop every
  // delivery is exact; after any drop a wrong delivery is legal only if the
  // end-to-end TCP checksum catches it.
  bool any_drop = false;

  for (std::size_t i = 0; i < datagrams.size(); ++i) {
    const Bytes& in = datagrams[i];
    ++r.packets;
    const auto out = comp.compress(in);
    if (drop_chance > 0.0 && out.cls == PacketClass::kCompressedTcp && rng.chance(drop_chance)) {
      ++r.dropped_on_wire;
      any_drop = true;
      continue;
    }
    const auto back = decomp.decompress(out.cls, out.packet);
    if (!back) {
      // Tossed: legal only after loss has put the decompressor out of sync.
      if (!any_drop) flunk("packet " + std::to_string(i) + ": tossed on a clean wire");
      continue;
    }
    ++r.delivered;
    if (*back == in) continue;
    ++r.stale_delivered;
    if (!any_drop) {
      flunk("packet " + std::to_string(i) + ": wrong delivery with no loss in flight");
    } else if (out.cls == PacketClass::kUncompressedTcp) {
      // A full-header sync packet reconstructs exactly regardless of state.
      flunk("packet " + std::to_string(i) + ": uncompressed-TCP sync delivered wrong");
    } else if (tcp_checksum_valid(*back)) {
      flunk("packet " + std::to_string(i) +
            ": stale delivery carries a VALID TCP checksum (silent corruption)");
    }
  }

  r.header_bytes_in = comp.stats().header_bytes_in;
  r.header_bytes_out = comp.stats().header_bytes_out;
  return r;
}

}  // namespace p5::testing
