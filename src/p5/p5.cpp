#include "p5/p5.hpp"

#include "common/check.hpp"

namespace p5::core {

namespace {
constexpr std::size_t kStageDepth = 1;  ///< registered pipeline stage
constexpr std::size_t kLineDepth = 4;   ///< small PHY elastic buffer
}  // namespace

P5::P5(const P5Config& cfg) : cfg_(cfg), oam_(cfg) {
  P5_EXPECTS(cfg.lanes >= 1 && cfg.lanes <= rtl::Word::kMaxLanes);

  auto mk = [this](const char* name, std::size_t depth) {
    auto f = std::make_unique<rtl::Fifo<rtl::Word>>(name, depth);
    sim_.add_channel(*f);
    return f;
  };
  tx_c2crc_ = mk("tx.c2crc", kStageDepth);
  tx_crc2esc_ = mk("tx.crc2esc", kStageDepth);
  tx_esc2flag_ = mk("tx.esc2flag", kStageDepth);
  tx_line_ = mk("tx.line", kLineDepth);
  rx_line_ = mk("rx.line", kLineDepth);
  rx_flag2esc_ = mk("rx.flag2esc", kStageDepth);
  rx_esc2crc_ = mk("rx.esc2crc", kStageDepth);
  rx_crc2c_ = mk("rx.crc2c", kStageDepth);

  tx_control_ = std::make_unique<TxControl>("tx.control", cfg_, *tx_c2crc_);
  tx_crc_ = std::make_unique<TxCrcUnit>("tx.crc", cfg_, *tx_c2crc_, *tx_crc2esc_);
  escape_generate_ =
      std::make_unique<EscapeGenerate>("tx.escape_generate", cfg_.lanes, *tx_crc2esc_,
                                       *tx_esc2flag_, cfg_.accm);
  flag_inserter_ =
      std::make_unique<FlagInserter>("tx.flag_inserter", cfg_.lanes, *tx_esc2flag_, *tx_line_);

  flag_delineator_ =
      std::make_unique<FlagDelineator>("rx.flag_delineator", cfg_.lanes, *rx_line_,
                                       *rx_flag2esc_);
  escape_detect_ =
      std::make_unique<EscapeDetect>("rx.escape_detect", cfg_.lanes, *rx_flag2esc_, *rx_esc2crc_);
  rx_crc_ = std::make_unique<RxCrcChecker>("rx.crc", cfg_, *rx_esc2crc_, *rx_crc2c_);
  rx_control_ = std::make_unique<RxControl>("rx.control", cfg_, *rx_crc2c_);

  // Evaluation order: sinks before sources, so capacity-1 channels behave
  // as flow-through pipeline registers (see rtl::Fifo's contract).
  sim_.add(*flag_inserter_);
  sim_.add(*escape_generate_);
  sim_.add(*tx_crc_);
  sim_.add(*tx_control_);
  sim_.add(*rx_control_);
  sim_.add(*rx_crc_);
  sim_.add(*escape_detect_);
  sim_.add(*flag_delineator_);

  // Shared packet memory between the host and the datapath (Figure 2).
  tx_control_->set_memory(&memory_);
  tx_control_->set_frame_done_hook([this] { oam_.raise(OamIrq::kTxDone); });
  rx_crc_->set_error_hook([this] { oam_.raise(OamIrq::kRxError); });
  // Default receive path: buffer frames in shared memory until the host
  // reaps them (set_rx_sink switches to immediate delivery).
  rx_control_->set_sink([this](RxDelivery d) {
    oam_.raise(OamIrq::kRxFrame);
    memory_.store_rx(std::move(d));
  });

  // OAM writes reprogram the datapath (the MAPOS address register etc.).
  oam_.set_reconfigure_hook([this](const P5Config& c) {
    cfg_.address = c.address;
    cfg_.control = c.control;
    cfg_.max_payload = c.max_payload;
    cfg_.accm = c.accm;
    tx_control_->set_config(cfg_);
    rx_control_->set_config(cfg_);
    escape_generate_->set_accm(cfg_.accm);
  });

  // OAM counter plumbing.
  oam_.set_counter_source(OamReg::kTxFrames, [this] { return tx_control_->frames_started(); });
  oam_.set_counter_source(OamReg::kTxOctets, [this] { return tx_control_->octets_sent(); });
  oam_.set_counter_source(OamReg::kRxFramesOk,
                          [this] { return rx_control_->counters().frames_ok; });
  oam_.set_counter_source(OamReg::kRxFcsErrors, [this] { return rx_crc_->bad_frames(); });
  oam_.set_counter_source(OamReg::kRxAddrDrops,
                          [this] { return rx_control_->counters().addr_filtered; });
  oam_.set_counter_source(OamReg::kRxAborts,
                          [this] { return flag_delineator_->counters().aborts; });
  oam_.set_counter_source(OamReg::kTxEscapes,
                          [this] { return escape_generate_->escapes_inserted(); });
  oam_.set_counter_source(OamReg::kRxEscapes, [this] { return escape_detect_->escapes_removed(); });
}

void P5::step(u64 cycles) {
  for (u64 i = 0; i < cycles; ++i) {
    sim_.step();
    if (vcd_) vcd_->sample(sim_.cycle());
  }
}

void P5::attach_trace(rtl::VcdWriter* vcd) {
  vcd_ = vcd;
  if (!vcd) return;
  vcd->add_signal("tx_escgen_queue_occ", 8, [this] { return escape_generate_->queue_occupancy(); });
  vcd->add_signal("rx_escdet_queue_occ", 8, [this] { return escape_detect_->queue_occupancy(); });
  vcd->add_signal("tx_line_occ", 4, [this] { return tx_line_->size(); });
  vcd->add_signal("rx_line_occ", 4, [this] { return rx_line_->size(); });
  vcd->add_signal("tx_frames", 16, [this] { return tx_control_->frames_started(); });
  vcd->add_signal("rx_frames_ok", 16, [this] { return rx_control_->counters().frames_ok; });
  vcd->add_signal("tx_escapes", 16, [this] { return escape_generate_->escapes_inserted(); });
  vcd->add_signal("tx_backpressure", 16,
                  [this] { return escape_generate_->backpressure_cycles(); });
  vcd->add_signal("irq", 1, [this] { return oam_.irq_line() ? 1u : 0u; });
}

bool P5::submit_datagram(u16 protocol, Bytes payload) {
  TxRequest req;
  req.protocol = protocol;
  req.payload = std::move(payload);
  return memory_.post_tx(std::move(req));
}

void P5::set_rx_sink(std::function<void(RxDelivery)> sink) {
  have_user_sink_ = true;
  rx_control_->set_sink([this, sink = std::move(sink)](RxDelivery d) {
    oam_.raise(OamIrq::kRxFrame);
    // The frame transits shared memory (accounted), then goes to the host.
    if (memory_.store_rx(std::move(d))) {
      if (auto reaped = memory_.reap_rx()) sink(std::move(*reaped));
    }
  });
}

Bytes P5::phy_pull_tx(std::size_t n) {
  Bytes out;
  out.reserve(n);
  u64 guard = 0;
  while (out.size() < n) {
    if (!tx_spill_.empty()) {
      // Word boundaries need not align with what SONET asks for: consume the
      // spill from the previous pull first.
      const std::size_t take = std::min(n - out.size(), tx_spill_.size());
      out.insert(out.end(), tx_spill_.begin(),
                 tx_spill_.begin() + static_cast<std::ptrdiff_t>(take));
      tx_spill_.erase(tx_spill_.begin(), tx_spill_.begin() + static_cast<std::ptrdiff_t>(take));
      continue;
    }
    if (tx_line_->can_pop()) {
      const rtl::Word w = tx_line_->pop();
      for (std::size_t i = 0; i < w.count(); ++i) tx_spill_.push_back(w.lane(i));
    } else {
      step();
      P5_ASSERT(++guard < 1000000);
    }
  }
  return out;
}

void P5::phy_push_rx(BytesView octets) {
  for (const u8 b : octets) {
    rx_spill_.push_back(b);
    if (rx_spill_.size() == cfg_.lanes) {
      // Wait for channel space (line-rate pacing), then deliver the word.
      u64 guard = 0;
      while (!rx_line_->can_push()) {
        step();
        P5_ASSERT(++guard < 1000000);
      }
      rx_line_->push(rtl::Word::of(rx_spill_));
      rx_spill_.clear();
      step();
    }
  }
}

void P5::drain_rx(u64 max_cycles) { step(max_cycles); }

}  // namespace p5::core
