
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crc/crc_table.cpp" "src/crc/CMakeFiles/p5_crc.dir/crc_table.cpp.o" "gcc" "src/crc/CMakeFiles/p5_crc.dir/crc_table.cpp.o.d"
  "/root/repo/src/crc/gf2.cpp" "src/crc/CMakeFiles/p5_crc.dir/gf2.cpp.o" "gcc" "src/crc/CMakeFiles/p5_crc.dir/gf2.cpp.o.d"
  "/root/repo/src/crc/parallel_crc.cpp" "src/crc/CMakeFiles/p5_crc.dir/parallel_crc.cpp.o" "gcc" "src/crc/CMakeFiles/p5_crc.dir/parallel_crc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p5_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
