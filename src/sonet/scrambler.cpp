#include "sonet/scrambler.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "fastpath/scrambler_tables.hpp"

namespace p5::sonet {

namespace {

// Bulk path for the frame-synchronous scrambler: the x^7+x^6+1 keystream is
// data-independent and, stepping 8 bits per octet over the 127 nonzero LFSR
// states (127 is prime, so the walk visits all of them), repeats every 127
// octets. Applying it is a periodic XOR — precompute one period plus the
// state<->position maps and the per-octet table walk disappears from the
// per-frame cost.
struct FrameKeystream {
  /// XOR run length per inner-loop iteration of apply(). The keystream is
  /// periodic in 127, so replicating the period lets one contiguous XOR span
  /// many periods — long enough for the compiler's vector loop to dominate,
  /// short enough that the replica table stays cache-resident.
  static constexpr std::size_t kRun = 127 * 8;
  std::array<u8, 127> ks{};          ///< keystream from the all-ones seed
  std::array<u8, 128> idx_of{};      ///< LFSR state -> position in the cycle
  std::array<u8, 127> state_of{};    ///< position -> LFSR state
  std::array<u8, 127 + kRun> ext{};  ///< ks replicated: ext[i] = ks[i % 127]
  FrameKeystream() {
    const auto& table = fastpath::frame_scrambler_steps();
    u8 s = 0x7F;
    for (std::size_t i = 0; i < 127; ++i) {
      state_of[i] = s;
      idx_of[s] = static_cast<u8>(i);
      ks[i] = table[s].keystream;
      s = table[s].next;
    }
    for (std::size_t i = 0; i < ext.size(); ++i) ext[i] = ks[i % 127];
  }
};

const FrameKeystream& frame_keystream() {
  static const FrameKeystream k;
  return k;
}

}  // namespace

u8 FrameScrambler::next_keystream() {
  const auto& step = fastpath::frame_scrambler_steps()[state_];
  state_ = step.next;
  return step.keystream;
}

void FrameScrambler::apply(Bytes& data, std::size_t begin, std::size_t end) {
  const auto& k = frame_keystream();
  std::size_t i = begin;
  const std::size_t stop = std::min(end, data.size());
  std::size_t idx = k.idx_of[state_];
  // The replicated table is valid for kRun octets from any in-period offset,
  // so each iteration XORs a multi-period contiguous run instead of stopping
  // at the period boundary — one vectorized sweep per ~1 KiB.
  while (i < stop) {
    const std::size_t run = std::min<std::size_t>(FrameKeystream::kRun, stop - i);
    u8* __restrict__ d = data.data() + i;
    const u8* __restrict__ s = k.ext.data() + idx;
    for (std::size_t j = 0; j < run; ++j) d[j] ^= s[j];
    i += run;
    idx = (idx + run) % 127;
  }
  state_ = k.state_of[idx];
}

Bytes SelfSyncScrambler43::scramble(BytesView data) {
  Bytes out;
  out.reserve(data.size());
  for (const u8 b : data) out.push_back(scramble(b));
  return out;
}

Bytes SelfSyncScrambler43::descramble(BytesView data) {
  Bytes out;
  out.reserve(data.size());
  for (const u8 b : data) out.push_back(descramble(b));
  return out;
}

// Bulk x^43+1 paths. The 43-bit delay is 5 octets + 3 bits, so the keystream
// octet at position i is a bit-splice of the stream octets at i-6 and i-5:
//   K[i] = (s[i-6] << 5) | (s[i-5] >> 3)
// where s is the *output* stream when scrambling and the *received* stream
// when descrambling (self-synchronous). That turns the serial 64-bit history
// shift — a loop-carried dependency every octet — into plain array reads:
// descrambling has no dependency at all (run backward so the raw lookback
// octets survive in place), scrambling's dependency is 5 octets away, far
// enough for the CPU to overlap iterations. The first 6 octets still splice
// against the pre-call history, and the history register is reconstituted
// from the stream tail afterwards, so state across calls is bit-identical to
// the per-octet path.

namespace {

// Word-at-a-time x^43+1 scramble. Pack eight octets MSB-first into a u64
// (bit 63 = earliest stream bit); the keystream word is the output stream
// delayed 43 bit positions, i.e. the previous word's low 43 bits shifted up
// (w_prev << 21) followed by this word's own top 21 bits (out >> 43). The
// self-reference collapses: out's top 21 bits cannot depend on out itself
// (2*43 > 64), so with t = in ^ (w_prev << 21) the whole word is
//   out = t ^ (t >> 43)
// — a four-op dependence chain per eight octets instead of a store-forward
// per octet. `history_`'s 43 live bits are exactly w_prev's low 43 bits
// (bit 42 oldest in both), so the delay line enters and leaves the loop as
// a plain u64 copy.
inline u64 scramble43_words(u8* d, const u8* s, std::size_t words, u64 w_prev) {
  for (std::size_t k = 0; k < words; ++k) {
    u64 in;
    std::memcpy(&in, s + k * 8, 8);
    in = __builtin_bswap64(in);
    const u64 t = in ^ (w_prev << 21);
    const u64 out = t ^ (t >> 43);
    w_prev = out;
    const u64 be = __builtin_bswap64(out);
    std::memcpy(d + k * 8, &be, 8);
  }
  return w_prev;
}

}  // namespace

void SelfSyncScrambler43::scramble_in_place(Bytes& data) {
  const std::size_t n = data.size();
  if (n < 8) {
    for (u8& b : data) b = scramble(b);
    return;
  }
  u8* d = data.data();
  const std::size_t words = n / 8;
  history_ = scramble43_words(d, d, words, history_) & kMask;
  for (std::size_t i = words * 8; i < n; ++i) d[i] = scramble(d[i]);
}

void SelfSyncScrambler43::scramble_append(Bytes& out, BytesView in) {
  const std::size_t n = in.size();
  const std::size_t base = out.size();
  // Fused copy+scramble: words stream straight from `in` through the word
  // loop into the appended region (no zero-fill, no second pass).
  out.resize(base + n);
  u8* d = out.data() + base;
  const u8* s = in.data();
  if (n < 8) {
    for (std::size_t i = 0; i < n; ++i) d[i] = scramble(s[i]);
    return;
  }
  const std::size_t words = n / 8;
  history_ = scramble43_words(d, s, words, history_) & kMask;
  for (std::size_t i = words * 8; i < n; ++i) d[i] = scramble(s[i]);
}

void SelfSyncScrambler43::descramble_to(Bytes& out, BytesView in) {
  const std::size_t n = in.size();
  out.resize(n);
  u8* __restrict__ d = out.data();
  const u8* __restrict__ s = in.data();
  if (n < 12) {
    for (std::size_t i = 0; i < n; ++i) d[i] = descramble(s[i]);
    return;
  }
  for (std::size_t i = 0; i < 6; ++i) d[i] = descramble(s[i]);
  // Keystream comes from the raw received octets, untouched in `in`: no
  // loop-carried dependency, so this is a straight-line vector loop.
  for (std::size_t i = 6; i < n; ++i)
    d[i] = static_cast<u8>(s[i] ^ static_cast<u8>((s[i - 6] << 5) | (s[i - 5] >> 3)));
  u64 h = 0;
  for (std::size_t i = n - 6; i < n; ++i) h = (h << 8) | s[i];
  history_ = h & kMask;
}

void SelfSyncScrambler43::descramble_in_place(Bytes& data) {
  const std::size_t n = data.size();
  if (n < 12) {
    for (u8& b : data) b = descramble(b);
    return;
  }
  u8* d = data.data();
  u64 h = 0;
  for (std::size_t i = n - 6; i < n; ++i) h = (h << 8) | d[i];  // raw tail, pre-overwrite
  for (std::size_t i = n; i-- > 6;)
    d[i] = static_cast<u8>(d[i] ^ static_cast<u8>((d[i - 6] << 5) | (d[i - 5] >> 3)));
  for (std::size_t i = 0; i < 6; ++i) d[i] = descramble(d[i]);  // pre-call history
  history_ = h & kMask;
}

}  // namespace p5::sonet
