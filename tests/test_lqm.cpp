// Link Quality Monitoring tests (RFC 1989): LQR codec, loss measurement
// from counter deltas, and the k-out-of-n link-quality policy.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "ppp/lqm.hpp"

namespace p5::ppp {
namespace {

TEST(LqrPacket, SerializeParseRoundTrip) {
  LqrPacket p;
  p.magic = 0xCAFEBABE;
  p.last_out_lqrs = 3;
  p.last_out_packets = 100;
  p.last_out_octets = 5000;
  p.peer_in_lqrs = 2;
  p.peer_in_packets = 95;
  p.peer_in_discards = 1;
  p.peer_in_errors = 4;
  p.peer_in_octets = 4800;
  p.peer_out_lqrs = 3;
  p.peer_out_packets = 101;
  p.peer_out_octets = 5100;
  const Bytes wire = p.serialize();
  EXPECT_EQ(wire.size(), LqrPacket::kWireBytes);
  const auto q = LqrPacket::parse(wire);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->magic, p.magic);
  EXPECT_EQ(q->peer_in_errors, 4u);
  EXPECT_EQ(q->peer_out_packets, 101u);
}

TEST(LqrPacket, ParseRejectsShort) {
  EXPECT_FALSE(LqrPacket::parse(Bytes(47, 0)).has_value());
}

/// Two monitors joined by a channel with controllable packet loss.
struct LqmPair {
  std::deque<Bytes> a_to_b, b_to_a;
  std::unique_ptr<LqmMonitor> a, b;
  double drop_ab = 0.0;  ///< data-loss rate A->B that B should measure
  Xoshiro256 rng{11};

  explicit LqmPair(LqmConfig cfg = LqmConfig()) {
    a = std::make_unique<LqmMonitor>(cfg, 0xAAAA0001,
                                     [this](BytesView w) { a_to_b.emplace_back(w.begin(), w.end()); });
    b = std::make_unique<LqmMonitor>(cfg, 0xBBBB0002,
                                     [this](BytesView w) { b_to_a.emplace_back(w.begin(), w.end()); });
  }

  /// One "reporting period": A sends `data` frames toward B (some lost),
  /// both tick their timers, LQRs get through unharmed.
  void period(int data_frames) {
    for (int i = 0; i < data_frames; ++i) {
      a->count_tx(100);
      if (!rng.chance(drop_ab)) b->count_rx_good(100);
      else b->count_rx_error();
    }
    for (unsigned t = 0; t < 4; ++t) {
      a->tick();
      b->tick();
    }
    // Deliver LQRs (assumed protected / lucky).
    while (!a_to_b.empty()) {
      b->on_lqr(a_to_b.front());
      a_to_b.pop_front();
    }
    while (!b_to_a.empty()) {
      a->on_lqr(b_to_a.front());
      b_to_a.pop_front();
    }
  }
};

TEST(Lqm, EmitsOneLqrPerPeriod) {
  LqmConfig cfg;
  cfg.reporting_ticks = 4;
  LqmPair pair(cfg);
  for (int p = 0; p < 5; ++p) pair.period(10);
  EXPECT_EQ(pair.a->lqrs_sent(), 5u);
  EXPECT_EQ(pair.b->lqrs_received(), 5u);
}

TEST(Lqm, CleanLinkMeasuresZeroLoss) {
  LqmPair pair;
  for (int p = 0; p < 4; ++p) pair.period(50);
  ASSERT_TRUE(pair.b->inbound_loss().has_value());
  EXPECT_DOUBLE_EQ(*pair.b->inbound_loss(), 0.0);
  EXPECT_TRUE(pair.b->link_good());
}

TEST(Lqm, LossyLinkMeasuredAccurately) {
  LqmPair pair;
  pair.drop_ab = 0.30;
  double sum = 0;
  int samples = 0;
  for (int p = 0; p < 30; ++p) {
    pair.period(100);
    if (pair.b->inbound_loss()) {
      sum += *pair.b->inbound_loss();
      ++samples;
    }
  }
  ASSERT_GT(samples, 20);
  EXPECT_NEAR(sum / samples, 0.30, 0.05);
}

TEST(Lqm, PolicyDeclaresBadLinkAfterKofN) {
  LqmConfig cfg;
  cfg.max_loss = 0.10;
  cfg.window_n = 5;
  cfg.window_k = 3;
  LqmPair pair(cfg);
  pair.drop_ab = 0.5;
  // First windows: still optimistic until k bad periods accumulate.
  pair.period(100);
  pair.period(100);
  EXPECT_TRUE(pair.b->link_good());  // only 1 completed measurement so far
  pair.period(100);
  pair.period(100);
  EXPECT_FALSE(pair.b->link_good());
}

TEST(Lqm, PolicyRecoversWhenLinkHeals) {
  LqmConfig cfg;
  cfg.window_n = 4;
  cfg.window_k = 2;
  LqmPair pair(cfg);
  pair.drop_ab = 0.6;
  for (int p = 0; p < 6; ++p) pair.period(100);
  EXPECT_FALSE(pair.b->link_good());
  pair.drop_ab = 0.0;
  for (int p = 0; p < 6; ++p) pair.period(100);
  EXPECT_TRUE(pair.b->link_good());
}

TEST(Lqm, DirectionalityIsIndependent) {
  // Loss on A->B must not mark A's inbound (B->A) as bad.
  LqmPair pair;
  pair.drop_ab = 0.5;
  for (int p = 0; p < 8; ++p) pair.period(100);
  EXPECT_FALSE(pair.b->link_good());
  EXPECT_TRUE(pair.a->link_good());
  ASSERT_TRUE(pair.a->inbound_loss().has_value());
  EXPECT_LT(*pair.a->inbound_loss(), 0.05);
}

TEST(Lqm, CountersAdvance) {
  LqmPair pair;
  pair.period(7);
  EXPECT_EQ(pair.a->counters().out_packets, 7u + 1u);  // + the LQR
  EXPECT_EQ(pair.b->counters().in_packets, 7u + 1u);
  EXPECT_GT(pair.a->counters().out_octets, 700u);  // data + LQR octets
}

}  // namespace
}  // namespace p5::ppp
