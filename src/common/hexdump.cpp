#include "common/hexdump.hpp"

#include <cctype>

namespace p5 {

namespace {
constexpr char kHex[] = "0123456789abcdef";
void push_hex(std::string& s, u8 b) {
  s.push_back(kHex[b >> 4]);
  s.push_back(kHex[b & 0xF]);
}
}  // namespace

std::string hex_line(BytesView data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = (max_bytes == 0) ? data.size() : std::min(max_bytes, data.size());
  out.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out.push_back(' ');
    push_hex(out, data[i]);
  }
  if (n < data.size()) out += " ...";
  return out;
}

std::string hex_dump(BytesView data, std::size_t bytes_per_line) {
  std::string out;
  for (std::size_t off = 0; off < data.size(); off += bytes_per_line) {
    // offset column
    for (int shift = 12; shift >= 0; shift -= 4) out.push_back(kHex[(off >> shift) & 0xF]);
    out += "  ";
    const std::size_t n = std::min(bytes_per_line, data.size() - off);
    for (std::size_t i = 0; i < bytes_per_line; ++i) {
      if (i < n) {
        push_hex(out, data[off + i]);
        out.push_back(' ');
      } else {
        out += "   ";
      }
    }
    out += " |";
    for (std::size_t i = 0; i < n; ++i) {
      const u8 b = data[off + i];
      out.push_back(std::isprint(b) ? static_cast<char>(b) : '.');
    }
    out += "|\n";
  }
  return out;
}

}  // namespace p5
