// Deterministic, composable fault injection — the error model every
// robustness suite in this repo shares.
//
// A FaultyLine wraps any octet pipe in the stack and mutates each chunk
// passing through it according to a FaultSpec: independent bit flips at a
// configurable BER, single-octet insert/delete slips, tail truncation, HDLC
// abort injection (0x7D 0x7E overwrite), and SONET pointer-adjustment events
// (a geometry-aware justification slip). Every decision comes from one
// seeded xoshiro stream, so a failing case reproduces from its seed alone.
//
// Insertion points:
//   * under P5SonetLink — P5SonetLink::set_line_tap takes any
//     std::function<void(Bytes&)>; a FaultyLine is directly callable, so
//     `link.set_line_tap(std::ref(fault_ab), std::ref(fault_ba))` puts the
//     model on the optical line (chunks are whole scrambled SONET frames);
//   * under linecard::Channel — `card.channel(i).link().set_line_tap(...)`
//     before the card starts (each direction's FaultyLine is then touched
//     only by that channel's worker, so threaded mode stays race-free);
//   * on a raw HDLC wire stream — apply()/transfer() on the flag-delimited
//     octet stream before feeding it to a receiver. This is the layer where
//     abort_rate is meaningful as an *HDLC abort*; on a scrambled SONET
//     line the same overwrite is simply two corrupted octets.
//
// See TESTING.md for the full error-model reference.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sonet/spe.hpp"

namespace p5::testing {

struct FaultSpec {
  /// Independent per-bit flip probability over every octet of the chunk.
  double bit_error_rate = 0.0;
  /// Per-chunk probability of inserting one random octet at a random
  /// position (a byte slip in the fast direction).
  double slip_insert_rate = 0.0;
  /// Per-chunk probability of deleting one octet at a random position.
  double slip_delete_rate = 0.0;
  /// Per-chunk probability of truncating the chunk at a random offset
  /// (models a mid-frame loss of signal).
  double truncate_rate = 0.0;
  /// Per-chunk probability of overwriting two consecutive octets with the
  /// HDLC abort sequence 0x7D 0x7E at a random offset.
  double abort_rate = 0.0;
  /// Per-chunk probability of a SONET pointer-adjustment event: a one-octet
  /// positive (insert) or negative (delete) justification. When `sts` is
  /// set the slip lands just after the H3 octet of the frame, where a real
  /// justification moves payload; otherwise the position is random.
  double pointer_event_rate = 0.0;
  /// Per-chunk probability of dropping the chunk entirely (cleared to zero
  /// length). Models datagram loss on a packet transport; a transport rx
  /// tap treats an emptied chunk as never delivered.
  double drop_rate = 0.0;
  /// Frame geometry for pointer events (set when chunks are SONET frames).
  std::optional<sonet::StsSpec> sts;

  u64 seed = 1;
  /// Faults apply only to the first `active_chunks` chunks; later chunks
  /// pass through clean. Lets a test prove the receiver *recovers* once the
  /// noise stops.
  u64 active_chunks = ~u64{0};

  // --- presets for the common single-class experiments ---
  [[nodiscard]] static FaultSpec clean(u64 seed = 1);
  [[nodiscard]] static FaultSpec ber(double rate, u64 seed = 1);
  [[nodiscard]] static FaultSpec slips(double insert, double del, u64 seed = 1);
  [[nodiscard]] static FaultSpec truncation(double rate, u64 seed = 1);
  [[nodiscard]] static FaultSpec aborts(double rate, u64 seed = 1);
  [[nodiscard]] static FaultSpec pointer_events(double rate, sonet::StsSpec sts, u64 seed = 1);
  [[nodiscard]] static FaultSpec drop(double rate, u64 seed = 1);
};

struct FaultStats {
  u64 chunks = 0;          ///< chunks passed through (clean or not)
  u64 octets = 0;          ///< octets seen
  u64 faulted_chunks = 0;  ///< chunks at least one fault class touched
  u64 bit_flips = 0;
  u64 inserts = 0;
  u64 deletes = 0;
  u64 truncations = 0;
  u64 aborts_injected = 0;
  u64 pointer_events = 0;
  u64 drops = 0;  ///< chunks erased outright

  /// Total individual fault events of any class.
  [[nodiscard]] u64 events() const {
    return bit_flips + inserts + deletes + truncations + aborts_injected + pointer_events +
           drops;
  }
};

class FaultyLine {
 public:
  explicit FaultyLine(const FaultSpec& spec) : spec_(spec), rng_(spec.seed) {}

  /// Mutate one chunk in place (the std::function<void(Bytes&)> shape the
  /// P5SonetLink tap expects — a FaultyLine is directly callable).
  void apply(Bytes& chunk);
  void operator()(Bytes& chunk) { apply(chunk); }

  /// Copying convenience for callers that hold views.
  [[nodiscard]] Bytes transfer(BytesView chunk);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

 private:
  void flip_bits(Bytes& chunk, bool& touched);

  FaultSpec spec_;
  Xoshiro256 rng_;
  FaultStats stats_;
};

}  // namespace p5::testing
