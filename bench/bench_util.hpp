// Shared helpers for the experiment benches: paper-vs-measured banner
// formatting, the standard workload drive for the cycle-accurate model, and
// the BENCH_*.json emission every bench shares (scripts/bench_compare.py
// gates on these files, so the shape is part of the contract).
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "hdlc/accm.hpp"
#include "p5/p5.hpp"

namespace p5::bench {

/// Flat JSON object rendered in insertion order. Values are pre-rendered at
/// set() time, so the emitter is a dumb join — good enough for the flat
/// numeric rows BENCH files carry (no nesting, no string escaping beyond
/// what bench code never produces).
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, "\"" + v + "\"");
    return *this;
  }
  JsonObject& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }
  JsonObject& set(const std::string& key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonObject& set(const std::string& key, u64 v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonObject& set(const std::string& key, unsigned v) { return set(key, static_cast<u64>(v)); }
  JsonObject& set(const std::string& key, int v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonObject& set(const std::string& key, bool v) {
    fields_.emplace_back(key, v ? "true" : "false");
    return *this;
  }
  /// Pre-rendered value (arrays, nested literals).
  JsonObject& set_raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }

  /// `{"k": v, ...}` on one line.
  void render(std::ostream& out) const {
    out << "{";
    for (std::size_t i = 0; i < fields_.size(); ++i)
      out << (i ? ", " : "") << "\"" << fields_[i].first << "\": " << fields_[i].second;
    out << "}";
  }
  /// `"k": v,` lines (member-of-a-larger-object form), trailing comma on all.
  void render_fields(std::ostream& out, const char* indent) const {
    for (const auto& [key, value] : fields_) out << indent << "\"" << key << "\": " << value << ",\n";
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Render a numeric sequence as a JSON array literal for JsonObject::set_raw.
template <typename Seq>
inline std::string json_array(const Seq& values) {
  std::string s = "[";
  bool first = true;
  for (const auto v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", static_cast<double>(v));
    if (!first) s += ", ";
    s += buf;
    first = false;
  }
  return s + "]";
}

/// One BENCH_<name>.json document: header fields plus a results[] table of
/// rows. scripts/bench_compare.py keys rows by (kernel, frame_bytes,
/// escape_density, dispatch, pinned) and gates a chosen metric, so rows
/// meant for the gate should carry those fields.
struct JsonReport {
  JsonObject header;
  std::vector<JsonObject> results;

  explicit JsonReport(const std::string& bench) { header.set("bench", bench); }

  JsonObject& row() {
    results.emplace_back();
    return results.back();
  }

  [[nodiscard]] bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n";
    header.render_fields(out, "  ");
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      out << "    ";
      results[i].render(out);
      out << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    return out.good();
  }
};

inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("==============================================================================\n");
}

inline void paper_says(const char* claim) { std::printf("paper:    %s\n", claim); }
inline void we_measure(const std::string& s) { std::printf("measured: %s\n", s.c_str()); }

/// Payload generator at a controlled escape density (fraction of octets that
/// are 0x7E/0x7D and therefore double on the wire).
inline Bytes density_payload(std::size_t len, double density, u64 seed) {
  Xoshiro256 rng(seed);
  Bytes p;
  p.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (density >= 1.0 || (density > 0.0 && rng.chance(density))) {
      p.push_back(rng.chance(0.5) ? hdlc::kFlag : hdlc::kEscape);
    } else {
      u8 b = rng.byte();
      while (b == hdlc::kFlag || b == hdlc::kEscape) b = rng.byte();
      p.push_back(b);
    }
  }
  return p;
}

struct ThroughputResult {
  u64 cycles = 0;
  u64 payload_octets = 0;
  u64 wire_octets = 0;
  double backpressure_frac = 0.0;
  std::size_t peak_queue = 0;

  [[nodiscard]] double payload_bytes_per_cycle() const {
    return cycles ? static_cast<double>(payload_octets) / static_cast<double>(cycles) : 0.0;
  }
  [[nodiscard]] double payload_gbps(double clock_mhz) const {
    return payload_bytes_per_cycle() * 8.0 * clock_mhz / 1000.0;
  }
};

/// Full-device TX measurement: submit datagrams, pull the line at exactly
/// `lanes` octets per cycle until everything has left, count cycles.
inline ThroughputResult measure_tx_throughput(unsigned lanes, double density,
                                              std::size_t datagrams = 20,
                                              std::size_t dgram_len = 1500) {
  core::P5Config cfg;
  cfg.lanes = lanes;
  core::P5 dev(cfg);

  u64 payload = 0;
  for (std::size_t i = 0; i < datagrams; ++i) {
    Bytes p = density_payload(dgram_len, density, 1000 + i);
    payload += p.size() + 4 /*hdr*/ + cfg.fcs_bytes();
    dev.submit_datagram(0x0021, p);
  }

  ThroughputResult r;
  // Pull until the transmitter is drained: frame data has been seen, the
  // shared-memory queue is empty, and the line has gone back to flag fill.
  u64 flag_run = 0;
  bool seen_data = false;
  while (!(seen_data && flag_run >= 64 && dev.tx_control().pending() == 0)) {
    const Bytes chunk = dev.phy_pull_tx(lanes);
    for (const u8 b : chunk) {
      ++r.wire_octets;
      if (b == hdlc::kFlag) {
        ++flag_run;
      } else {
        flag_run = 0;
        seen_data = true;
      }
    }
  }
  r.cycles = dev.cycle();
  r.payload_octets = payload;
  const auto& gen = dev.escape_generate();
  r.peak_queue = gen.peak_queue_occupancy();
  r.backpressure_frac = gen.stats().cycles
                            ? static_cast<double>(gen.backpressure_cycles()) /
                                  static_cast<double>(gen.stats().cycles)
                            : 0.0;
  return r;
}

}  // namespace p5::bench
