file(REMOVE_RECURSE
  "libp5_ppp.a"
)
