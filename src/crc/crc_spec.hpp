// CRC parameterisation for the two checks PPP/HDLC uses (RFC 1662 appendix):
//   FCS-16: CRC-16/X.25  (reflected poly 0x8408, init/xorout 0xFFFF)
//   FCS-32: CRC-32/IEEE  (reflected poly 0xEDB88320, init/xorout 0xFFFFFFFF)
//
// Both are *reflected* CRCs: bits are shifted LSB-first, matching HDLC's
// least-significant-bit-first serial transmission order.
#pragma once

#include "common/types.hpp"

namespace p5::crc {

struct CrcSpec {
  unsigned width;  ///< 16 or 32 (any width up to 32 is supported)
  u32 poly;        ///< reflected polynomial
  u32 init;        ///< initial shift-register value
  u32 xorout;      ///< final complement
  u32 residue;     ///< magic value of the register after passing a good frame
                   ///< (data + transmitted FCS) through the checker, pre-xorout

  [[nodiscard]] constexpr u32 mask() const {
    return width == 32 ? 0xFFFFFFFFu : ((u32{1} << width) - 1u);
  }
};

/// FCS-16 per RFC 1662: "good FCS" register residue is 0xF0B8.
inline constexpr CrcSpec kFcs16{16, 0x8408u, 0xFFFFu, 0xFFFFu, 0xF0B8u};

/// FCS-32 per RFC 1662 / IEEE 802.3: residue 0xDEBB20E3.
inline constexpr CrcSpec kFcs32{32, 0xEDB88320u, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xDEBB20E3u};

}  // namespace p5::crc
