// E6a — Throughput: the paper's headline rates (625 Mbps for the 8-bit P5,
// 2.5 Gbps for the 32-bit P5 at 78.125 MHz) measured on the cycle-accurate
// model, swept across datapath widths and escape densities.
//
// Escape density is the stressor for the byte sorter: every escaped octet
// doubles on the wire, so at density d the payload rate cannot exceed
// width / (1 + d) bits per cycle — the bench shows the model tracking that
// bound while the backpressure scheme keeps the pipeline lossless.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace p5;
  bench::banner("E6a / bench_throughput — sustained rate vs width and escape density",
                "Section 1/5 rate claims: 8-bit P5 = 625 Mbps, 32-bit P5 = 2.5 Gbps");
  bench::paper_says(
      "one word per clock through every stage: 8 bits x 78.125 MHz = 625 Mbps; "
      "32 bits x 78.125 MHz = 2.5 Gbps. Escaped octets consume extra wire cycles.");

  const double clock_mhz = 78.125;
  std::printf("\nclock: %.3f MHz (2.5 Gbps / 32 bits)\n", clock_mhz);
  std::printf("\n width | density | payload B/cyc | payload Gbps | line util | backpress | peakQ\n");
  std::printf(" ------+---------+---------------+--------------+-----------+-----------+------\n");

  for (const unsigned lanes : {1u, 2u, 4u, 8u}) {
    for (const double density : {0.0, 1.0 / 128.0, 0.1, 0.25, 0.5, 1.0}) {
      const auto r = bench::measure_tx_throughput(lanes, density, 12, 1500);
      std::printf("  %2u-b | %6.3f  | %13.3f | %12.3f | %8.1f%% | %8.1f%% | %3zu/%zu\n",
                  lanes * 8, density, r.payload_bytes_per_cycle(),
                  r.payload_gbps(clock_mhz),
                  100.0 * static_cast<double>(r.payload_octets) /
                      static_cast<double>(r.wire_octets),
                  100.0 * r.backpressure_frac, r.peak_queue, 3 * lanes);
    }
    std::printf("\n");
  }

  // Paper-vs-measured summary rows at near-zero escape density.
  const auto r8 = bench::measure_tx_throughput(1, 0.0, 12, 1500);
  const auto r32 = bench::measure_tx_throughput(4, 0.0, 12, 1500);
  bench::paper_says("8-bit P5: 625 Mbps");
  bench::we_measure(std::to_string(r8.payload_gbps(clock_mhz) * 1000.0) + " Mbps payload");
  bench::paper_says("32-bit P5: 2.5 Gbps");
  bench::we_measure(std::to_string(r32.payload_gbps(clock_mhz)) + " Gbps payload");
  return 0;
}
