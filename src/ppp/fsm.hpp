// The RFC 1661 §4 option-negotiation automaton, shared by LCP and every NCP.
//
// The full ten-state transition table is implemented, including the restart
// timer/counter discipline (Max-Configure, Max-Terminate, Restart-Timer).
// Time is injected via tick() so tests and the cycle model can drive the
// timer deterministically.
//
// Protocol specifics (which options to request, how to judge a peer's
// Configure-Request) live in the derived class through the pure-virtual
// policy hooks; packet transmission goes through send_packet().
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "ppp/packet.hpp"

namespace p5::ppp {

enum class State : u8 {
  kInitial = 0,
  kStarting,
  kClosed,
  kStopped,
  kClosing,
  kStopping,
  kReqSent,
  kAckRcvd,
  kAckSent,
  kOpened,
};

[[nodiscard]] const char* to_string(State s);

/// Verdict on a received Configure-Request.
struct ConfigureVerdict {
  bool ack = false;
  /// When !ack: the response code (Nak or Reject) and its option list.
  Code response_code = Code::kConfigureNak;
  std::vector<Option> response_options;
};

struct FsmTimeouts {
  unsigned max_configure = 10;  ///< Configure-Request retransmission limit
  unsigned max_terminate = 2;
  unsigned restart_ticks = 3;   ///< restart timer period, in tick() units
  /// RFC 1661 §4.6 Max-Failure: bound on Configure-Naks before the
  /// negotiation is declared non-converging — Naks we *send* escalate to
  /// Configure-Reject, Naks we *receive* stop the automaton. Without this a
  /// peer that Naks every request resets the restart counter each round and
  /// the two ends ping-pong forever.
  unsigned max_failure = 5;
};

class Fsm {
 public:
  using Timeouts = FsmTimeouts;

  Fsm(std::string name, u16 protocol, Timeouts timeouts = Timeouts());
  virtual ~Fsm() = default;

  // ---- administrative events ----
  void up();     ///< lower layer is available
  void down();   ///< lower layer went away
  void open();   ///< administrative Open
  void close();  ///< administrative Close

  /// Advance the restart timer by one unit.
  void tick();

  /// Feed a received control packet (the frame's information field).
  void receive(BytesView packet_bytes);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool is_opened() const { return state_ == State::kOpened; }
  [[nodiscard]] u16 protocol() const { return protocol_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  struct Counters {
    u64 tx_configure_requests = 0;
    u64 rx_configure_requests = 0;
    u64 timeouts = 0;
    u64 code_rejects_sent = 0;
    u64 nak_loops_broken = 0;  ///< Max-Failure guard firings (either direction)
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 protected:
  // ---- policy hooks (protocol-specific) ----
  /// Options to put in our next Configure-Request.
  [[nodiscard]] virtual std::vector<Option> build_configure_options() = 0;
  /// Judge a peer's Configure-Request.
  [[nodiscard]] virtual ConfigureVerdict judge_configure_request(
      const std::vector<Option>& options) = 0;
  /// Peer acknowledged our request with these options.
  virtual void on_configure_ack(const std::vector<Option>& options) = 0;
  /// Peer Nak'd: adjust our desired options toward its hints.
  virtual void on_configure_nak(const std::vector<Option>& options) = 0;
  /// Peer rejected these options outright: stop requesting them.
  virtual void on_configure_reject(const std::vector<Option>& options) = 0;
  /// Non-Configure packets a subclass may want (Echo-Request data, etc.).
  /// Return true if handled; false lets the default processing run.
  virtual bool on_extra_packet(const Packet& pkt) { (void)pkt; return false; }

  // ---- layer callbacks ----
  virtual void this_layer_up() {}
  virtual void this_layer_down() {}
  virtual void this_layer_started() {}
  virtual void this_layer_finished() {}

  // ---- transmission (wired to the frame layer by the owner) ----
  /// Must emit `pkt` inside a frame carrying our protocol number.
  virtual void send_packet(const Packet& pkt) = 0;

  /// Used by subclasses (e.g. LCP echo) to emit packets directly.
  void emit(Code code, u8 identifier, Bytes data);

 private:
  enum class TimeoutKind : u8 { kNone, kConfigure, kTerminate };

  // RFC 1661 events.
  void event_timeout();
  void rcv_configure_request(const Packet& pkt);
  void rcv_configure_ack(const Packet& pkt);
  void rcv_configure_nak_rej(const Packet& pkt);
  void rcv_terminate_request(const Packet& pkt);
  void rcv_terminate_ack();
  void rcv_unknown_code(const Packet& pkt);
  void rcv_echo_discard(const Packet& pkt);

  // RFC 1661 actions.
  void action_irc(TimeoutKind kind);  ///< initialize restart counter
  void action_zrc();                  ///< zero restart counter
  void action_scr();                  ///< send Configure-Request
  void action_str();                  ///< send Terminate-Request
  void action_sta(u8 identifier);     ///< send Terminate-Ack
  void action_scj(const Packet& bad); ///< send Code-Reject

  void enter(State s);
  void stop_timer() { timeout_kind_ = TimeoutKind::kNone; }

  std::string name_;
  u16 protocol_;
  Timeouts timeouts_;
  State state_ = State::kInitial;

  unsigned restart_counter_ = 0;
  TimeoutKind timeout_kind_ = TimeoutKind::kNone;
  unsigned timer_remaining_ = 0;
  unsigned naks_received_ = 0;  ///< consecutive Configure-Naks from the peer
  unsigned naks_sent_ = 0;      ///< consecutive Configure-Naks we answered with

  u8 next_identifier_ = 1;
  u8 current_request_id_ = 0;  ///< identifier of our outstanding Configure-Request
  Counters counters_;
};

}  // namespace p5::ppp
