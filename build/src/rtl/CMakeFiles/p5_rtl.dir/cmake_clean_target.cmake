file(REMOVE_RECURSE
  "libp5_rtl.a"
)
