// Workload substrate tests: IPv4 codec and the traffic generators that
// drive the throughput/buffer experiments.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hdlc/accm.hpp"
#include "net/ipv4.hpp"
#include "net/capture.hpp"
#include "net/traffic.hpp"

namespace p5::net {
namespace {

TEST(Ipv4, ChecksumKnownVector) {
  // Classic RFC 1071 example words.
  const Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  const u16 sum = internet_checksum(data);
  // Verify the defining property instead of a magic constant: appending the
  // checksum makes the total sum 0xFFFF (ones-complement zero).
  Bytes with_sum = data;
  with_sum.push_back(static_cast<u8>(sum >> 8));
  with_sum.push_back(static_cast<u8>(sum));
  EXPECT_EQ(internet_checksum(with_sum), 0u);
}

TEST(Ipv4, BuildParseRoundTrip) {
  Xoshiro256 rng(1);
  for (int t = 0; t < 100; ++t) {
    Ipv4Header h;
    h.tos = rng.byte();
    h.identification = static_cast<u16>(rng.next());
    h.ttl = static_cast<u8>(rng.range(1, 255));
    h.protocol = rng.byte();
    h.src = static_cast<u32>(rng.next());
    h.dst = static_cast<u32>(rng.next());
    const Bytes payload = rng.bytes(rng.range(0, 1480));
    const Bytes dgram = build_datagram(h, payload);
    const auto parsed = parse_datagram(dgram);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.src, h.src);
    EXPECT_EQ(parsed->header.dst, h.dst);
    EXPECT_EQ(parsed->header.protocol, h.protocol);
    EXPECT_EQ(parsed->payload, payload);
  }
}

TEST(Ipv4, HeaderCorruptionRejected) {
  const Bytes dgram = build_datagram(Ipv4Header{}, Bytes{1, 2, 3});
  for (std::size_t i = 0; i < kIpv4HeaderBytes; ++i) {
    Bytes bad = dgram;
    bad[i] ^= 0x40;
    // Flipping any header bit must break version, length or checksum.
    EXPECT_FALSE(parse_datagram(bad).has_value()) << "byte " << i;
  }
}

TEST(Ipv4, TruncatedRejected) {
  const Bytes dgram = build_datagram(Ipv4Header{}, Bytes(100, 7));
  EXPECT_FALSE(parse_datagram(BytesView(dgram).subspan(0, 19)).has_value());
}

TEST(Ipv4, TotalLengthHonoured) {
  Bytes dgram = build_datagram(Ipv4Header{}, Bytes{1, 2, 3, 4});
  dgram.push_back(0xEE);  // trailing link-layer padding
  const auto parsed = parse_datagram(dgram);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload.size(), 4u);
}

// ---- traffic generators ----

TEST(Traffic, DeterministicAcrossRuns) {
  TrafficSpec spec;
  spec.seed = 99;
  TrafficGenerator a(spec), b(spec);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_datagram(), b.next_datagram());
}

TEST(Traffic, LengthsWithinBounds) {
  TrafficSpec spec;
  spec.min_len = 64;
  spec.max_len = 256;
  TrafficGenerator gen(spec);
  for (int i = 0; i < 200; ++i) {
    const Bytes d = gen.next_datagram();
    EXPECT_GE(d.size(), 64u);
    EXPECT_LE(d.size(), 256u);
    EXPECT_TRUE(parse_datagram(d).has_value());
  }
}

TEST(Traffic, AsciiPatternHasNoEscapes) {
  TrafficSpec spec;
  spec.pattern = PayloadPattern::kAscii;
  TrafficGenerator gen(spec);
  const Bytes p = gen.payload(5000);
  for (const u8 b : p) {
    EXPECT_NE(b, hdlc::kFlag);
    EXPECT_NE(b, hdlc::kEscape);
  }
}

TEST(Traffic, AllFlagsPattern) {
  TrafficSpec spec;
  spec.pattern = PayloadPattern::kAllFlags;
  TrafficGenerator gen(spec);
  for (const u8 b : gen.payload(100)) EXPECT_EQ(b, hdlc::kFlag);
}

TEST(Traffic, FlagDenseDensityApproximatelyMet) {
  for (const double density : {0.1, 0.5, 0.9}) {
    TrafficSpec spec;
    spec.pattern = PayloadPattern::kFlagDense;
    spec.escape_density = density;
    spec.seed = 7;
    TrafficGenerator gen(spec);
    const Bytes p = gen.payload(20000);
    std::size_t escapes = 0;
    for (const u8 b : p)
      if (b == hdlc::kFlag || b == hdlc::kEscape) ++escapes;
    EXPECT_NEAR(static_cast<double>(escapes) / p.size(), density, 0.03);
  }
}

TEST(Traffic, UniformEscapeDensityIsTwoIn256) {
  TrafficSpec spec;
  spec.seed = 3;
  TrafficGenerator gen(spec);
  const Bytes p = gen.payload(100000);
  std::size_t escapes = 0;
  for (const u8 b : p)
    if (b == hdlc::kFlag || b == hdlc::kEscape) ++escapes;
  EXPECT_NEAR(static_cast<double>(escapes) / p.size(), 2.0 / 256.0, 0.002);
}

TEST(Traffic, IncrementingPatternIsSequential) {
  TrafficSpec spec;
  spec.pattern = PayloadPattern::kIncrementing;
  TrafficGenerator gen(spec);
  const Bytes p = gen.payload(300);
  for (std::size_t i = 1; i < p.size(); ++i)
    EXPECT_EQ(p[i], static_cast<u8>(p[i - 1] + 1));
}

TEST(Traffic, ImixMixesThreeSizes) {
  ImixGenerator gen(5);
  std::size_t n40 = 0, n576 = 0, n1500 = 0;
  for (int i = 0; i < 1200; ++i) {
    const std::size_t len = gen.next_datagram().size();
    if (len == 40) ++n40;
    else if (len == 576) ++n576;
    else if (len == 1500) ++n1500;
    else FAIL() << "unexpected size " << len;
  }
  // 7:4:1 ratio, loose bounds.
  EXPECT_GT(n40, n576);
  EXPECT_GT(n576, n1500);
  EXPECT_GT(n1500, 0u);
}

TEST(Traffic, WorkloadAggregates) {
  TrafficSpec spec;
  spec.min_len = 100;
  spec.max_len = 100;
  const Workload w = make_workload(spec, 10);
  EXPECT_EQ(w.datagrams.size(), 10u);
  EXPECT_EQ(w.total_bytes, 1000u);
}

TEST(Traffic, PatternNames) {
  EXPECT_STREQ(to_string(PayloadPattern::kAllFlags).c_str(), "all-flags");
  EXPECT_STREQ(to_string(PayloadPattern::kUniformRandom).c_str(), "uniform");
}


// ---- frame capture ----

TEST(Capture, RecordAndSummary) {
  Capture cap;
  cap.record(100, Direction::kTx, 0x0021, Bytes{1, 2, 3});
  cap.record(150, Direction::kRx, 0xC021, Bytes{4});
  EXPECT_EQ(cap.size(), 2u);
  EXPECT_EQ(cap.total_octets(), 4u);
  const std::string s = cap.summary();
  EXPECT_NE(s.find("TX proto=0x0021 len=3"), std::string::npos);
  EXPECT_NE(s.find("RX proto=0xc021 len=1"), std::string::npos);
}

TEST(Capture, SerializeParseRoundTrip) {
  Xoshiro256 rng(3);
  Capture cap;
  for (int i = 0; i < 30; ++i)
    cap.record(rng.next(), rng.chance(0.5) ? Direction::kTx : Direction::kRx,
               static_cast<u16>(rng.next()), rng.bytes(rng.range(0, 100)));
  const auto reparsed = Capture::parse(cap.serialize());
  ASSERT_TRUE(reparsed.has_value());
  ASSERT_EQ(reparsed->size(), cap.size());
  for (std::size_t i = 0; i < cap.size(); ++i) {
    EXPECT_EQ(reparsed->frames()[i].cycle, cap.frames()[i].cycle);
    EXPECT_EQ(reparsed->frames()[i].protocol, cap.frames()[i].protocol);
    EXPECT_EQ(reparsed->frames()[i].payload, cap.frames()[i].payload);
  }
}

TEST(Capture, ParseRejectsCorruption) {
  Capture cap;
  cap.record(1, Direction::kTx, 1, Bytes{1, 2, 3});
  Bytes wire = cap.serialize();
  EXPECT_FALSE(Capture::parse(Bytes{1, 2, 3}).has_value());        // too short
  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(Capture::parse(bad_magic).has_value());
  Bytes truncated(wire.begin(), wire.end() - 2);
  EXPECT_FALSE(Capture::parse(truncated).has_value());
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(Capture::parse(trailing).has_value());
}

TEST(Capture, SaveLoadFile) {
  Capture cap;
  cap.record(7, Direction::kRx, 0x8021, Bytes{9, 8});
  const std::string path = "/tmp/p5_capture_test.p5ca";
  ASSERT_TRUE(cap.save(path));
  const auto loaded = Capture::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->frames()[0].payload, (Bytes{9, 8}));
}

TEST(Capture, SummaryCapsOutput) {
  Capture cap;
  for (int i = 0; i < 100; ++i) cap.record(i, Direction::kTx, 1, Bytes{});
  const std::string s = cap.summary(10);
  EXPECT_NE(s.find("... 90 more frames"), std::string::npos);
}

}  // namespace
}  // namespace p5::net
