#include "ppp/auth.hpp"

#include "common/md5.hpp"
#include "ppp/protocols.hpp"

namespace p5::ppp {

const char* to_string(AuthProto p) {
  switch (p) {
    case AuthProto::kNone: return "none";
    case AuthProto::kPap: return "PAP";
    case AuthProto::kChap: return "CHAP";
  }
  return "?";
}

const char* to_string(AuthResult r) {
  switch (r) {
    case AuthResult::kPending: return "pending";
    case AuthResult::kSuccess: return "success";
    case AuthResult::kFailed: return "failed";
  }
  return "?";
}

Bytes chap_md5_response(u8 identifier, const std::string& secret, BytesView challenge) {
  Md5 h;
  h.update(BytesView(&identifier, 1));
  h.update(BytesView(reinterpret_cast<const u8*>(secret.data()), secret.size()));
  h.update(challenge);
  const Md5::Digest d = h.finish();
  return Bytes(d.begin(), d.end());
}

namespace {

Bytes text_message(const char* msg) {
  // Ack/Nak/Success/Failure carry Msg-Length + Message (human-readable).
  Bytes b;
  const std::string s(msg);
  b.push_back(static_cast<u8>(s.size()));
  b.insert(b.end(), s.begin(), s.end());
  return b;
}

Packet make_packet(u8 code, u8 identifier, Bytes data) {
  Packet p;
  p.code = code;
  p.identifier = identifier;
  p.data = std::move(data);
  return p;
}

}  // namespace

// ---- PAP client --------------------------------------------------------

PapClient::PapClient(std::string identity, std::string secret, TxHook tx, AuthTimeouts timeouts)
    : identity_(std::move(identity)), secret_(std::move(secret)), tx_(std::move(tx)),
      timeouts_(timeouts) {}

u16 PapClient::protocol() const { return kProtoPap; }

void PapClient::start() {
  result_ = AuthResult::kPending;
  retries_left_ = timeouts_.max_retries;
  send_request();
}

void PapClient::send_request() {
  // Peer-ID-Length | Peer-Id | Passwd-Length | Passwd (RFC 1334 §2.1.1).
  Bytes data;
  data.push_back(static_cast<u8>(identity_.size()));
  data.insert(data.end(), identity_.begin(), identity_.end());
  data.push_back(static_cast<u8>(secret_.size()));
  data.insert(data.end(), secret_.begin(), secret_.end());
  ++counters_.tx_requests;
  timer_ = timeouts_.retry_ticks;
  tx_(kProtoPap, make_packet(kPapAuthRequest, ++request_id_, std::move(data)));
}

void PapClient::tick() {
  if (result_ != AuthResult::kPending || timer_ == 0) return;
  if (--timer_ > 0) return;
  ++counters_.timeouts;
  if (retries_left_ == 0) {
    // Retry exhaustion: the authenticator never answered.
    result_ = AuthResult::kFailed;
    return;
  }
  --retries_left_;
  send_request();
}

void PapClient::receive(const Packet& pkt) {
  if (pkt.identifier != request_id_) return;  // stale response
  if (pkt.code == kPapAuthAck) {
    result_ = AuthResult::kSuccess;
    timer_ = 0;
  } else if (pkt.code == kPapAuthNak) {
    result_ = AuthResult::kFailed;
    timer_ = 0;
  }
}

// ---- PAP server --------------------------------------------------------

PapServer::PapServer(AuthPolicy policy, TxHook tx)
    : policy_(std::move(policy)), tx_(std::move(tx)) {}

u16 PapServer::protocol() const { return kProtoPap; }

void PapServer::receive(const Packet& pkt) {
  if (pkt.code != kPapAuthRequest) return;
  // Parse Peer-ID-Length | Peer-Id | Passwd-Length | Passwd.
  const Bytes& d = pkt.data;
  if (d.size() < 2) return;
  const std::size_t id_len = d[0];
  if (1 + id_len + 1 > d.size()) return;
  const std::size_t pw_off = 1 + id_len + 1;
  const std::size_t pw_len = d[1 + id_len];
  if (pw_off + pw_len > d.size()) return;

  const std::string id(d.begin() + 1, d.begin() + 1 + id_len);
  const std::string pw(d.begin() + static_cast<long>(pw_off),
                       d.begin() + static_cast<long>(pw_off + pw_len));

  // After a final verdict, keep answering retransmissions consistently.
  if (result_ == AuthResult::kSuccess) {
    tx_(kProtoPap, make_packet(kPapAuthAck, pkt.identifier, text_message("welcome")));
    return;
  }
  if (result_ == AuthResult::kFailed) {
    tx_(kProtoPap, make_packet(kPapAuthNak, pkt.identifier, text_message("rejected")));
    return;
  }

  const auto secret = policy_.lookup ? policy_.lookup(id) : std::nullopt;
  if (secret.has_value() && *secret == pw) {
    peer_identity_ = id;
    result_ = AuthResult::kSuccess;
    tx_(kProtoPap, make_packet(kPapAuthAck, pkt.identifier, text_message("welcome")));
    return;
  }

  ++counters_.bad_attempts;
  if (++bad_attempts_ > policy_.max_bad_attempts) result_ = AuthResult::kFailed;
  tx_(kProtoPap, make_packet(kPapAuthNak, pkt.identifier, text_message("bad credentials")));
}

// ---- CHAP server -------------------------------------------------------

ChapServer::ChapServer(std::string name, AuthPolicy policy, TxHook tx, AuthTimeouts timeouts,
                       u64 challenge_seed)
    : name_(std::move(name)), policy_(std::move(policy)), tx_(std::move(tx)),
      timeouts_(timeouts), rng_(challenge_seed) {}

u16 ChapServer::protocol() const { return kProtoChap; }

void ChapServer::send_challenge(bool fresh_value) {
  if (fresh_value) {
    challenge_.clear();
    for (int i = 0; i < 16; ++i) challenge_.push_back(rng_.byte());
    ++challenge_id_;
  }
  // Value-Size | Value | Name (RFC 1994 §4.1).
  Bytes data;
  data.push_back(static_cast<u8>(challenge_.size()));
  append(data, challenge_);
  data.insert(data.end(), name_.begin(), name_.end());
  ++counters_.tx_requests;
  timer_ = timeouts_.retry_ticks;
  tx_(kProtoChap, make_packet(kChapChallenge, challenge_id_, std::move(data)));
}

void ChapServer::start() {
  result_ = AuthResult::kPending;
  retries_left_ = timeouts_.max_retries;
  send_challenge(/*fresh_value=*/true);
}

void ChapServer::tick() {
  if (result_ == AuthResult::kPending && timer_ > 0 && --timer_ == 0) {
    ++counters_.timeouts;
    if (retries_left_ == 0) {
      // The peer never produced a response: authentication fails closed.
      result_ = AuthResult::kFailed;
    } else {
      --retries_left_;
      send_challenge(/*fresh_value=*/false);
    }
  }
  // Periodic rechallenge keeps a long-lived session honest (RFC 1994 §2).
  if (result_ == AuthResult::kSuccess && policy_.rechallenge_ticks > 0) {
    if (++rechallenge_timer_ >= policy_.rechallenge_ticks) {
      rechallenge_timer_ = 0;
      ++rechallenges_;
      result_ = AuthResult::kPending;
      retries_left_ = timeouts_.max_retries;
      send_challenge(/*fresh_value=*/true);
    }
  }
}

void ChapServer::receive(const Packet& pkt) {
  if (pkt.code != kChapResponse) return;
  if (pkt.identifier != challenge_id_) return;  // response to a stale challenge
  if (result_ == AuthResult::kFailed) return;   // verdict already final
  const Bytes& d = pkt.data;
  if (d.empty()) return;
  const std::size_t value_size = d[0];
  if (1 + value_size > d.size()) return;
  const BytesView value(d.data() + 1, value_size);
  const std::string id(d.begin() + static_cast<long>(1 + value_size), d.end());

  const auto secret = policy_.lookup ? policy_.lookup(id) : std::nullopt;
  bool ok = false;
  if (secret.has_value() && value_size == 16) {
    const Bytes expected = chap_md5_response(pkt.identifier, *secret, challenge_);
    ok = std::equal(expected.begin(), expected.end(), value.begin());
  }

  if (ok) {
    peer_identity_ = id;
    result_ = AuthResult::kSuccess;
    timer_ = 0;
    rechallenge_timer_ = 0;
    tx_(kProtoChap, make_packet(kChapSuccess, pkt.identifier, text_message("ok")));
    return;
  }

  ++counters_.bad_attempts;
  tx_(kProtoChap, make_packet(kChapFailure, pkt.identifier, text_message("bad response")));
  if (++bad_attempts_ > policy_.max_bad_attempts) {
    result_ = AuthResult::kFailed;
    timer_ = 0;
  } else {
    // Tolerated attempt: issue a fresh challenge so the peer can retry.
    retries_left_ = timeouts_.max_retries;
    send_challenge(/*fresh_value=*/true);
  }
}

// ---- CHAP client -------------------------------------------------------

ChapClient::ChapClient(std::string identity, std::string secret, TxHook tx)
    : identity_(std::move(identity)), secret_(std::move(secret)), tx_(std::move(tx)) {}

u16 ChapClient::protocol() const { return kProtoChap; }

void ChapClient::receive(const Packet& pkt) {
  switch (pkt.code) {
    case kChapChallenge: {
      const Bytes& d = pkt.data;
      if (d.empty()) return;
      const std::size_t value_size = d[0];
      if (1 + value_size > d.size()) return;
      const BytesView value(d.data() + 1, value_size);
      // A fresh challenge reopens the verdict (rechallenge of a live session).
      result_ = AuthResult::kPending;
      Bytes response_value = chap_md5_response(pkt.identifier, secret_, value);
      Bytes data;
      data.push_back(static_cast<u8>(response_value.size()));
      append(data, response_value);
      data.insert(data.end(), identity_.begin(), identity_.end());
      ++counters_.tx_requests;
      tx_(kProtoChap, make_packet(kChapResponse, pkt.identifier, std::move(data)));
      break;
    }
    case kChapSuccess:
      result_ = AuthResult::kSuccess;
      break;
    case kChapFailure:
      result_ = AuthResult::kFailed;
      break;
    default:
      break;
  }
}

}  // namespace p5::ppp
