// Flag-based frame delineation state machine (RFC 1662 §4.3).
//
// Consumes a raw octet stream (possibly mid-frame at start-up, possibly
// corrupted) and emits frame *content* spans between flags:
//   * consecutive flags / inter-frame fill are skipped;
//   * a 0x7D immediately followed by 0x7E is a transmitter abort — the frame
//     is discarded and counted;
//   * runt fragments (shorter than the minimum FCS+protocol size) are
//     discarded silently, as the RFC requires;
//   * oversize accumulations (no closing flag within max_frame_octets) are
//     discarded and counted, so a broken stream cannot exhaust memory.
//
// This is the golden model the P5 receiver's cycle-accurate delineator is
// verified against, and is also used directly by the software protocol stack.
#pragma once

#include <functional>

#include "common/types.hpp"
#include "hdlc/accm.hpp"

namespace p5::hdlc {

struct DelineatorStats {
  u64 frames = 0;          ///< complete frames delivered
  u64 aborts = 0;          ///< transmitter aborts seen
  u64 runts = 0;           ///< inter-flag fragments too short to be frames
  u64 oversize = 0;        ///< frames dropped for exceeding max_frame_octets
  u64 octets = 0;          ///< raw octets consumed
};

class Delineator {
 public:
  /// `sink` receives each complete (still-stuffed) frame content, flags
  /// stripped. min_frame applies to the stuffed length.
  explicit Delineator(std::function<void(BytesView)> sink, std::size_t min_frame = 4,
                      std::size_t max_frame_octets = 65536)
      : sink_(std::move(sink)), min_frame_(min_frame), max_frame_(max_frame_octets) {}

  void push(u8 octet);
  /// Bulk push: memchr-scans between flags and appends whole spans, with
  /// byte-for-byte the same state transitions and stats as the octet loop.
  void push(BytesView octets);

  /// Treat the stream as ended: any partial frame is dropped.
  void flush();

  [[nodiscard]] const DelineatorStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DelineatorStats{}; }

 private:
  void end_frame();

  std::function<void(BytesView)> sink_;
  std::size_t min_frame_;
  std::size_t max_frame_;
  Bytes current_;
  bool in_frame_ = false;     ///< saw an opening flag
  bool overflowed_ = false;   ///< current frame exceeded max_frame_
  DelineatorStats stats_;
};

}  // namespace p5::hdlc
