// SONET/SDH scramblers.
//
// Two distinct scramblers exist in a PPP-over-SONET link (RFC 2615 / GR-253):
//
//  * FrameScrambler — the frame-synchronous section scrambler, PRBS from
//    x^7 + x^6 + 1 reset to all-ones at the first payload byte of each frame.
//    Applied to the whole frame except the first-row framing bytes (A1/A2/J0).
//
//  * SelfSyncScrambler43 — the x^43 + 1 self-synchronous payload scrambler
//    RFC 2615 adds over the SPE payload so that a malicious PPP payload
//    cannot fake long runs of 0s/1s and break downstream clock recovery.
//    Self-synchronous: the descrambler needs no state alignment, it recovers
//    after 43 bits.
//
// Both advance one *octet* per step (table lookup / shift respectively); the
// seed's per-bit loops survive as fastpath::scalar bit-serial references that
// the differential tests compare against.
#pragma once

#include <array>

#include "common/types.hpp"

namespace p5::sonet {

/// Frame-synchronous x^7 + x^6 + 1 scrambler (a keystream generator).
/// Table-driven: one 128-entry state-transition lookup produces 8 keystream
/// bits per step (fastpath/scrambler_tables).
class FrameScrambler {
 public:
  /// Reset to the all-ones seed — done at the start of every frame's
  /// scrambled region.
  void reset() { state_ = 0x7F; }

  /// Next keystream byte (MSB transmitted first).
  [[nodiscard]] u8 next_keystream();

  /// XOR a buffer in place with keystream.
  void apply(Bytes& data, std::size_t begin, std::size_t end);

 private:
  u8 state_ = 0x7F;  ///< 7-bit LFSR state
};

/// Self-synchronous x^43 + 1 scrambler/descrambler (RFC 2615 §6).
///
/// Byte-at-a-time state transition: because the delay is 43 (> 8) bits, none
/// of the bits produced within one octet feed back into that same octet, so
/// the eight delayed bits are simply history bits 42..35 and the whole octet
/// advances with one shift — no per-bit loop.
class SelfSyncScrambler43 {
 public:
  void reset() { history_ = {}; }

  /// Scramble one octet (MSB first): out = in XOR (stream delayed 43 bits),
  /// where the delayed stream is the *output* stream.
  [[nodiscard]] u8 scramble(u8 in) {
    const u8 out = static_cast<u8>(in ^ static_cast<u8>(history_ >> 35));
    history_ = ((history_ << 8) | out) & kMask;
    return out;
  }

  /// Descramble one octet: out = in XOR (received stream delayed 43 bits).
  [[nodiscard]] u8 descramble(u8 in) {
    const u8 out = static_cast<u8>(in ^ static_cast<u8>(history_ >> 35));
    // Self-synchronous: the delay line tracks the *received* (scrambled) bits.
    history_ = ((history_ << 8) | in) & kMask;
    return out;
  }

  [[nodiscard]] Bytes scramble(BytesView data);
  [[nodiscard]] Bytes descramble(BytesView data);

  /// Zero-allocation variants for hot paths (p5::core::P5SonetLink).
  void scramble_in_place(Bytes& data);
  void descramble_in_place(Bytes& data);

  /// Fused copy+scramble: append scramble(in) to `out`. One pass where a
  /// copy-then-scramble-in-place pair would take two.
  void scramble_append(Bytes& out, BytesView in);
  /// Fused copy+descramble: replace `out` with descramble(in). The keystream
  /// for descrambling is the *received* stream itself, so the bulk loop has
  /// no loop-carried dependency at all and vectorizes; `out` must not alias
  /// `in`.
  void descramble_to(Bytes& out, BytesView in);

 private:
  static constexpr u64 kMask = (u64{1} << 43) - 1;
  // 43-bit delay line stored in a 64-bit word; bit 42 is the oldest.
  u64 history_ = 0;
};

}  // namespace p5::sonet
