#include "server/tenant.hpp"

#include <algorithm>

namespace p5::server {

TenantSnapshot& TenantSnapshot::operator+=(const TenantSnapshot& o) {
  dgrams_in += o.dgrams_in;
  bytes_in += o.bytes_in;
  dgrams_echoed += o.dgrams_echoed;
  bytes_echoed += o.bytes_echoed;
  dgrams_uplinked += o.dgrams_uplinked;
  bytes_uplinked += o.bytes_uplinked;
  dgrams_sunk += o.dgrams_sunk;
  bytes_sunk += o.bytes_sunk;
  dgrams_lost += o.dgrams_lost;
  sessions_admitted += o.sessions_admitted;
  sessions_rejected += o.sessions_rejected;
  sessions_closed += o.sessions_closed;
  chunks_policed += o.chunks_policed;
  bytes_policed += o.bytes_policed;
  return *this;
}

TenantSnapshot TenantTelemetry::read_once() const {
  TenantSnapshot s;
  s.dgrams_in = dgrams_in_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.dgrams_echoed = dgrams_echoed_.load(std::memory_order_relaxed);
  s.bytes_echoed = bytes_echoed_.load(std::memory_order_relaxed);
  s.dgrams_uplinked = dgrams_uplinked_.load(std::memory_order_relaxed);
  s.bytes_uplinked = bytes_uplinked_.load(std::memory_order_relaxed);
  s.dgrams_sunk = dgrams_sunk_.load(std::memory_order_relaxed);
  s.bytes_sunk = bytes_sunk_.load(std::memory_order_relaxed);
  s.dgrams_lost = dgrams_lost_.load(std::memory_order_relaxed);
  s.sessions_admitted = sessions_admitted_.load(std::memory_order_relaxed);
  s.sessions_rejected = sessions_rejected_.load(std::memory_order_relaxed);
  s.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  s.chunks_policed = chunks_policed_.load(std::memory_order_relaxed);
  s.bytes_policed = bytes_policed_.load(std::memory_order_relaxed);
  return s;
}

TenantSnapshot TenantTelemetry::snapshot() const {
  TenantSnapshot prev = read_once();
  for (int i = 0; i < 4; ++i) {
    TenantSnapshot cur = read_once();
    if (cur == prev) return cur;
    prev = cur;
  }
  return prev;  // monotonic counters: still a valid momentary mixture
}

bool TenantState::try_acquire_session() {
  if (cfg_.max_sessions == 0) {
    active_.fetch_add(1, std::memory_order_relaxed);
    tel_.on_admitted();
    return true;
  }
  std::size_t cur = active_.load(std::memory_order_relaxed);
  while (cur < cfg_.max_sessions) {
    if (active_.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed)) {
      tel_.on_admitted();
      return true;
    }
  }
  tel_.on_rejected();
  return false;
}

void TenantState::release_session() {
  active_.fetch_sub(1, std::memory_order_relaxed);
  tel_.on_session_closed();
}

bool TenantState::police_rx(std::size_t bytes, u64 now_ms) {
  if (cfg_.rx_bytes_per_s == 0) return true;
  std::lock_guard<std::mutex> lock(bucket_mu_);
  const double depth = static_cast<double>(std::max<u64>(cfg_.rx_burst_bytes, 1));
  if (tokens_ < 0.0) {  // first chunk primes a full bucket
    tokens_ = depth;
    last_refill_ms_ = now_ms;
  }
  if (now_ms > last_refill_ms_) {  // skew across shard clocks refills nothing
    const double elapsed_s = static_cast<double>(now_ms - last_refill_ms_) / 1000.0;
    tokens_ = std::min(depth, tokens_ + elapsed_s * static_cast<double>(cfg_.rx_bytes_per_s));
    last_refill_ms_ = now_ms;
  }
  if (tokens_ < static_cast<double>(bytes)) {
    tel_.on_policed(bytes);
    return false;
  }
  tokens_ -= static_cast<double>(bytes);
  return true;
}

void TenantState::reconfigure(TenantConfig cfg) {
  std::lock_guard<std::mutex> lock(bucket_mu_);
  cfg_ = cfg;
  tokens_ = -1.0;  // re-prime the bucket under the new rate
}

void TenantRegistry::configure(TenantConfig cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(cfg.id);
  if (it == tenants_.end()) {
    tenants_.emplace(cfg.id, std::make_unique<TenantState>(cfg));
  } else {
    it->second->reconfigure(cfg);
  }
}

TenantState& TenantRegistry::ensure(u32 tenant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    TenantConfig cfg = defaults_;
    cfg.id = tenant_id;
    it = tenants_.emplace(tenant_id, std::make_unique<TenantState>(cfg)).first;
  }
  return *it->second;
}

TenantState* TenantRegistry::find(u32 tenant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::vector<u32> TenantRegistry::ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<u32> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) out.push_back(id);
  return out;
}

TenantSnapshot TenantRegistry::aggregate() const {
  std::lock_guard<std::mutex> lock(mu_);
  TenantSnapshot sum;
  for (const auto& [id, state] : tenants_) sum += state->telemetry().snapshot();
  return sum;
}

}  // namespace p5::server
