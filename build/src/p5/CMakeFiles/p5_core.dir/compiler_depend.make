# Empty compiler generated dependencies file for p5_core.
# This may be replaced when dependencies are built.
