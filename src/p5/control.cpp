#include "p5/control.hpp"

#include "common/check.hpp"
#include "hdlc/frame.hpp"
#include "p5/shared_memory.hpp"

namespace p5::core {

// ---------------- TxControl ----------------

TxControl::TxControl(std::string name, const P5Config& cfg, rtl::Fifo<rtl::Word>& out)
    : rtl::Module(std::move(name)), cfg_(cfg), out_(out) {}

std::size_t TxControl::pending() const {
  const std::size_t queued = mem_ ? mem_->tx_pending() : tx_queue_.size();
  return queued + (sending_ ? 1 : 0);
}

void TxControl::eval() {
  start_next_ = false;
  finished_ = false;
  offset_next_ = offset_;

  if (!sending_) {
    if (mem_ ? mem_->tx_pending() > 0 : !tx_queue_.empty()) start_next_ = true;
    return;
  }

  if (!out_.can_push()) return;  // downstream backpressure

  rtl::Word w;
  w.sof = offset_ == 0;
  const std::size_t n = std::min<std::size_t>(cfg_.lanes, current_.size() - offset_);
  for (std::size_t i = 0; i < n; ++i) w.push(current_[offset_ + i]);
  offset_next_ = offset_ + n;
  if (offset_next_ >= current_.size()) {
    w.eof = true;
    finished_ = true;
  }
  out_.push(w);
  octets_ += n;
}

void TxControl::commit() {
  if (start_next_) {
    TxRequest req;
    if (mem_) {
      auto fetched = mem_->fetch_tx();
      if (!fetched) return;  // raced away; try again next cycle
      req = std::move(*fetched);
    } else {
      P5_ASSERT(!tx_queue_.empty());
      req = std::move(tx_queue_.front());
      tx_queue_.pop_front();
    }
    // Frame content: Address | Control | Protocol(2) | payload. The FCS is
    // appended downstream by the CRC unit.
    current_.clear();
    current_.push_back(cfg_.address);
    current_.push_back(req.control.value_or(cfg_.control));
    put_be16(current_, req.protocol);
    append(current_, req.payload);
    offset_ = 0;
    sending_ = true;
    ++frames_;
    return;
  }
  offset_ = offset_next_;
  if (finished_) {
    sending_ = false;
    current_.clear();
    offset_ = 0;
    if (frame_done_) frame_done_();
  }
}

// ---------------- RxControl ----------------

RxControl::RxControl(std::string name, const P5Config& cfg, rtl::Fifo<rtl::Word>& in)
    : rtl::Module(std::move(name)), cfg_(cfg), in_(in) {}

void RxControl::eval() {
  assembling_next_ = assembling_;
  in_frame_next_ = in_frame_;
  junk_next_ = junk_frame_;

  if (!in_.can_pop()) return;
  const rtl::Word w = in_.pop();

  if (w.sof) {
    assembling_next_.clear();
    in_frame_next_ = true;
    junk_next_ = false;
  }
  if (!in_frame_next_) return;  // mid-stream garbage

  for (std::size_t i = 0; i < w.count(); ++i) assembling_next_.push_back(w.lane(i));

  if (!w.eof) return;
  in_frame_next_ = false;

  if (w.abort || junk_next_) {
    ++counters_.frames_bad;
    assembling_next_.clear();
    return;
  }
  // Header: Address | Control | Protocol(2).
  if (assembling_next_.size() < 4) {
    ++counters_.malformed;
    assembling_next_.clear();
    return;
  }
  // MAPOS filter: accept our programmed station address and the 0xFF
  // all-stations (broadcast) address.
  if (assembling_next_[0] != cfg_.address && assembling_next_[0] != hdlc::kDefaultAddress) {
    ++counters_.addr_filtered;
    assembling_next_.clear();
    return;
  }
  const u16 protocol = get_be16(assembling_next_, 2);
  const std::size_t payload_len = assembling_next_.size() - 4;
  if (payload_len > cfg_.max_payload) {
    ++counters_.oversize;
    assembling_next_.clear();
    return;
  }
  RxDelivery d;
  d.protocol = protocol;
  d.control = assembling_next_[1];
  d.payload.assign(assembling_next_.begin() + 4, assembling_next_.end());
  completed_.push_back(std::move(d));
  ++counters_.frames_ok;
  assembling_next_.clear();
}

void RxControl::commit() {
  assembling_ = std::move(assembling_next_);
  in_frame_ = in_frame_next_;
  junk_frame_ = junk_next_;
  while (!completed_.empty()) {
    if (sink_) sink_(std::move(completed_.front()));
    completed_.pop_front();
  }
}

}  // namespace p5::core
