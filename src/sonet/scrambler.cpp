#include "sonet/scrambler.hpp"

namespace p5::sonet {

u8 FrameScrambler::next_keystream() {
  u8 out = 0;
  for (int i = 0; i < 8; ++i) {
    // Feedback tap: x^7 + x^6 + 1 — new bit = s6 XOR s5 (0-indexed MSB=s6).
    const u8 bit = static_cast<u8>((state_ >> 6) & 1u);
    out = static_cast<u8>((out << 1) | bit);
    const u8 fb = static_cast<u8>(((state_ >> 6) ^ (state_ >> 5)) & 1u);
    state_ = static_cast<u8>(((state_ << 1) | fb) & 0x7F);
  }
  return out;
}

void FrameScrambler::apply(Bytes& data, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end && i < data.size(); ++i) data[i] ^= next_keystream();
}

u8 SelfSyncScrambler43::scramble(u8 in) {
  u8 out = 0;
  for (int bit = 7; bit >= 0; --bit) {
    const u8 in_bit = static_cast<u8>((in >> bit) & 1u);
    const u8 delayed = static_cast<u8>((history_ >> 42) & 1u);
    const u8 out_bit = in_bit ^ delayed;
    out = static_cast<u8>((out << 1) | out_bit);
    history_ = ((history_ << 1) | out_bit) & ((u64{1} << 43) - 1);
  }
  return out;
}

u8 SelfSyncScrambler43::descramble(u8 in) {
  u8 out = 0;
  for (int bit = 7; bit >= 0; --bit) {
    const u8 in_bit = static_cast<u8>((in >> bit) & 1u);
    const u8 delayed = static_cast<u8>((history_ >> 42) & 1u);
    const u8 out_bit = in_bit ^ delayed;
    out = static_cast<u8>((out << 1) | out_bit);
    // Self-synchronous: the delay line tracks the *received* (scrambled) bits.
    history_ = ((history_ << 1) | in_bit) & ((u64{1} << 43) - 1);
  }
  return out;
}

Bytes SelfSyncScrambler43::scramble(BytesView data) {
  Bytes out;
  out.reserve(data.size());
  for (const u8 b : data) out.push_back(scramble(b));
  return out;
}

Bytes SelfSyncScrambler43::descramble(BytesView data) {
  Bytes out;
  out.reserve(data.size());
  for (const u8 b : data) out.push_back(descramble(b));
  return out;
}

}  // namespace p5::sonet
