// Fundamental fixed-width integer aliases and byte-container helpers shared by
// every p5 library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace p5 {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Octet stream as moved between protocol layers.
using Bytes = std::vector<u8>;
using BytesView = std::span<const u8>;

/// Append a span of bytes to a vector.
inline void append(Bytes& dst, BytesView src) { dst.insert(dst.end(), src.begin(), src.end()); }

/// Little-endian / big-endian scalar packing used by frame codecs.
inline void put_be16(Bytes& b, u16 v) {
  b.push_back(static_cast<u8>(v >> 8));
  b.push_back(static_cast<u8>(v));
}
inline void put_be32(Bytes& b, u32 v) {
  b.push_back(static_cast<u8>(v >> 24));
  b.push_back(static_cast<u8>(v >> 16));
  b.push_back(static_cast<u8>(v >> 8));
  b.push_back(static_cast<u8>(v));
}
inline void put_le32(Bytes& b, u32 v) {
  b.push_back(static_cast<u8>(v));
  b.push_back(static_cast<u8>(v >> 8));
  b.push_back(static_cast<u8>(v >> 16));
  b.push_back(static_cast<u8>(v >> 24));
}
[[nodiscard]] inline u16 get_be16(BytesView b, std::size_t off) {
  return static_cast<u16>((b[off] << 8) | b[off + 1]);
}
[[nodiscard]] inline u32 get_be32(BytesView b, std::size_t off) {
  return (static_cast<u32>(b[off]) << 24) | (static_cast<u32>(b[off + 1]) << 16) |
         (static_cast<u32>(b[off + 2]) << 8) | static_cast<u32>(b[off + 3]);
}
[[nodiscard]] inline u32 get_le32(BytesView b, std::size_t off) {
  return static_cast<u32>(b[off]) | (static_cast<u32>(b[off + 1]) << 8) |
         (static_cast<u32>(b[off + 2]) << 16) | (static_cast<u32>(b[off + 3]) << 24);
}

}  // namespace p5
