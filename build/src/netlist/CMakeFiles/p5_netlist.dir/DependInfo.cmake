
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/area_report.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/area_report.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/area_report.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/builder.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/builder.cpp.o.d"
  "/root/repo/src/netlist/circuits/control_circuits.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/control_circuits.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/control_circuits.cpp.o.d"
  "/root/repo/src/netlist/circuits/crc_circuit.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/crc_circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/crc_circuit.cpp.o.d"
  "/root/repo/src/netlist/circuits/escape_circuits.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/escape_circuits.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/escape_circuits.cpp.o.d"
  "/root/repo/src/netlist/circuits/oam_circuit.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/oam_circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/oam_circuit.cpp.o.d"
  "/root/repo/src/netlist/circuits/p5_circuit.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/p5_circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/p5_circuit.cpp.o.d"
  "/root/repo/src/netlist/circuits/sorter_common.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/sorter_common.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/circuits/sorter_common.cpp.o.d"
  "/root/repo/src/netlist/device.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/device.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/device.cpp.o.d"
  "/root/repo/src/netlist/equiv.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/equiv.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/equiv.cpp.o.d"
  "/root/repo/src/netlist/lut_mapper.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/lut_mapper.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/lut_mapper.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/p5_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/p5_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p5_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crc/CMakeFiles/p5_crc.dir/DependInfo.cmake"
  "/root/repo/build/src/hdlc/CMakeFiles/p5_hdlc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
