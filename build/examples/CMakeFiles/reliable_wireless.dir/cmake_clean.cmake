file(REMOVE_RECURSE
  "CMakeFiles/reliable_wireless.dir/reliable_wireless.cpp.o"
  "CMakeFiles/reliable_wireless.dir/reliable_wireless.cpp.o.d"
  "reliable_wireless"
  "reliable_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
