// bench_server — C10K termination figures for the sharded TunnelServer.
//
// Rows, all wall-clock (the server and the load generator share this host,
// so every figure is end-to-end: client socket writes, epoll dispatch,
// fast-tier SONET decode, tenant accounting):
//
//  * server_goodput_{1,2,4}shard — N steady-state tunnels (1000 full / 200
//    quick / 32 smoke) each replaying a pre-encoded P5/SONET chunk stream
//    into a kSink-routed server for a fixed wall window. new_mb_s is decoded
//    datagram payload octets per second, summed over every tunnel; each row
//    also carries scaling_vs_1shard. NOTE: shard scaling is only visible
//    when the host has cores to give — on a single-core host the shard
//    threads time-slice one CPU and the ratio sits near 1.0 by construction
//    (the header records host_cpus so a reader can tell which case a JSON
//    was measured in). The row still gates what it can on any host: the
//    whole accept→adopt→decode→ledger path at C10K-scale connection counts.
//  * server_churn — kill/reconnect churn: raw connections arrive in bounded
//    waves (concurrency-capped), each writes two valid chunks and
//    disconnects. Reported as conns_per_s; the row is excluded from the
//    bench_compare gate (no new_mb_s), but the bench itself exits nonzero
//    if any ledger fails to close — per-tenant datagram books and the
//    summed per-shard chunk books must both balance exactly after stop().
//
// Results go to stdout and BENCH_server.json. Gate with
//   scripts/bench_compare.py BENCH_server.json <baseline> --metric new_mb_s
// (the server baseline tolerance is loose — see PER_BENCH_TOLERANCE).
//
// Usage: bench_server [--smoke] [--quick] [--out <path>]
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "p5/endpoint.hpp"
#include "server/server.hpp"
#include "transport/conn.hpp"
#include "transport/event_loop.hpp"

namespace p5::bench {
namespace {

using transport::ConnConfig;
using transport::EventLoop;
using transport::Fd;
using transport::SocketAddr;
using transport::StreamConn;
using transport::TransportTelemetry;

constexpr u32 kTenant = 7;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// C10K needs fds: lift the soft RLIMIT_NOFILE to the hard cap so the full
/// row (1000 tunnels = 2000+ sockets in this process) does not depend on the
/// shell's ulimit.
void raise_fd_limit() {
  struct rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &rl);
  }
}

/// Pre-encode one valid chunk stream: a fast-tier endpoint kept fed with
/// IMIX-ish datagrams, pulled for `chunks` SONET frames. Every client
/// connection replays this same stream from the top — a fresh server-side
/// endpoint accepts any prefix of a valid stream, so the load generator
/// spends its cycles on sockets, not on per-connection encoding.
std::vector<Bytes> encode_stream(std::size_t chunks, std::size_t dgram_len) {
  auto ep = core::make_sonet_endpoint(core::DeviceTier::kFast, {}, sonet::kSts3c);
  const Bytes payload = density_payload(dgram_len, 0.05, 11);
  std::vector<Bytes> out;
  out.reserve(chunks);
  while (out.size() < chunks) {
    while (ep->tx_has_room(payload.size()) && ep->submit_datagram(0x0021, payload)) {
    }
    out.push_back(ep->pull_frame());
  }
  return out;
}

/// Payload octets of `chunks` leading chunks once decoded — measured by
/// replaying them through a scratch endpoint (cheaper than deriving it from
/// framing math, and exact by construction).
u64 decoded_payload_bytes(const std::vector<Bytes>& stream) {
  auto ep = core::make_sonet_endpoint(core::DeviceTier::kFast, {}, sonet::kSts3c);
  u64 bytes = 0;
  for (const Bytes& c : stream) {
    ep->push_line(BytesView(c.data(), c.size()));
    while (auto d = ep->reap_datagram()) bytes += d->payload.size();
  }
  return bytes;
}

struct Row {
  std::string kernel;
  std::size_t frame_bytes = 0;
  std::size_t shards = 0;
  std::size_t conns = 0;
  u64 dgrams = 0;
  u64 payload_bytes = 0;
  double wall_seconds = 0.0;
  double mb_s = 0.0;
  double conns_per_s = 0.0;
  bool has_goodput = true;
  bool ledger_ok = true;
  u64 syscalls = 0;        ///< server-side socket send+recv calls
  u64 pool_recycled = 0;   ///< chunk buffers served from shard pool free lists
  double frames_per_syscall = 0.0;

  void set_io(const transport::TransportSnapshot& xs) {
    syscalls = xs.tx_syscalls + xs.rx_syscalls;
    pool_recycled = xs.pool_recycled;
    frames_per_syscall = xs.frames_per_syscall();
  }
};

/// Steady-state goodput: `conns` tunnels replay `stream` into a kSink server
/// for `target_seconds`, then drain. Returns decoded payload over the time
/// to the last tenant-ledger movement.
Row bench_goodput(std::size_t shards, std::size_t conns, double target_seconds,
                  const std::vector<Bytes>& stream, std::size_t dgram_len) {
  server::ServerConfig cfg;
  cfg.listeners = {{0, kTenant}};  // port tenancy: every chunk is data
  cfg.shards = shards;
  cfg.route = server::RouteMode::kSink;
  cfg.tier = core::DeviceTier::kFast;
  cfg.adoption_ring = 2048;  // a connect burst must never hit the overflow path
  server::TunnelServer srv(cfg);
  if (!srv.start()) {
    std::fprintf(stderr, "bench_server: %s\n", srv.last_error().c_str());
    std::exit(1);
  }
  const u16 port = srv.port();
  srv.run();

  EventLoop loop;
  TransportTelemetry ctel;
  ConnConfig ccfg;
  ccfg.send_watermark_bytes = 256 * 1024;
  std::vector<std::unique_ptr<StreamConn>> clients;
  std::vector<std::size_t> cursor(conns, 0);
  clients.reserve(conns);
  // Waves of 64 keep every connect inside the listen backlog.
  for (std::size_t opened = 0; opened < conns;) {
    const std::size_t wave = std::min<std::size_t>(64, conns - opened);
    for (std::size_t i = 0; i < wave; ++i) {
      bool in_progress = false;
      Fd fd = transport::tcp_connect(SocketAddr{"127.0.0.1", port}, in_progress);
      clients.push_back(std::make_unique<StreamConn>(loop, ctel, ccfg, std::move(fd), in_progress));
    }
    opened += wave;
    for (int spins = 0; spins < 20000; ++spins) {
      bool all_open = true;
      for (const auto& c : clients)
        if (!c->open()) all_open = false;
      if (all_open) break;
      loop.run_once(1);
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  while (seconds_since(t0) < target_seconds) {
    for (std::size_t i = 0; i < clients.size(); ++i) {
      StreamConn& c = *clients[i];
      while (cursor[i] < stream.size() && c.open() &&
             c.send_frame(BytesView(stream[cursor[i]].data(), stream[cursor[i]].size()))) {
        ++cursor[i];
      }
    }
    loop.run_once(0);
  }
  // Drain: flush every client queue, then wait for the tenant ledger to go
  // quiet. Goodput clock stops at the last observed movement.
  auto t_last = std::chrono::steady_clock::now();
  u64 last_bytes = srv.tenant_stats(kTenant).bytes_in;
  for (int quiet = 0; quiet < 50;) {
    bool flushed = true;
    for (const auto& c : clients)
      if (c->open() && c->queued_bytes() > 0) flushed = false;
    loop.run_once(1);
    const u64 now_bytes = srv.tenant_stats(kTenant).bytes_in;
    if (now_bytes != last_bytes) {
      last_bytes = now_bytes;
      t_last = std::chrono::steady_clock::now();
      quiet = 0;
    } else if (flushed) {
      ++quiet;
    }
  }
  clients.clear();  // EOF toward the server before stop()
  srv.stop();

  const server::TenantSnapshot ts = srv.tenant_stats(kTenant);
  const transport::TransportSnapshot xs = srv.transport_stats();
  Row r;
  r.kernel = "server_goodput_" + std::to_string(shards) + "shard";
  r.frame_bytes = dgram_len;
  r.shards = shards;
  r.conns = conns;
  r.dgrams = ts.dgrams_in;
  r.payload_bytes = ts.bytes_in;
  r.wall_seconds = std::chrono::duration<double>(t_last - t0).count();
  r.mb_s = r.wall_seconds > 0.0 ? static_cast<double>(ts.bytes_in) / 1e6 / r.wall_seconds : 0.0;
  r.ledger_ok = ts.ledger_exact() && xs.frames_in == xs.frames_out + xs.frames_lost;
  r.set_io(xs);
  if (!r.ledger_ok) {
    std::fprintf(stderr, "bench_server: LEDGER VIOLATION in %s\n", r.kernel.c_str());
  }
  return r;
}

bool write_chunk(int fd, const Bytes& chunk) {
  u8 hdr[4] = {static_cast<u8>(chunk.size() >> 24), static_cast<u8>(chunk.size() >> 16),
               static_cast<u8>(chunk.size() >> 8), static_cast<u8>(chunk.size())};
  Bytes wire(hdr, hdr + 4);
  append(wire, BytesView(chunk.data(), chunk.size()));
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;  // server refused the conn (e.g. ring overflow)
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Connection churn: `total` short-lived connections in waves of
/// `concurrency`, each writing the first two chunks of `stream` and
/// disconnecting. The rate is connections fully processed per second; the
/// verdict is that every ledger closes exactly after the storm.
Row bench_churn(std::size_t total, std::size_t concurrency, const std::vector<Bytes>& stream) {
  server::ServerConfig cfg;
  cfg.listeners = {{0, kTenant}};
  cfg.shards = 2;
  cfg.route = server::RouteMode::kSink;
  cfg.tier = core::DeviceTier::kFast;
  cfg.adoption_ring = 4096;
  server::TunnelServer srv(cfg);
  if (!srv.start()) {
    std::fprintf(stderr, "bench_server: %s\n", srv.last_error().c_str());
    std::exit(1);
  }
  const u16 port = srv.port();
  srv.run();

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t launched = 0;
  std::vector<int> fds;
  fds.reserve(concurrency);
  while (launched < total) {
    const std::size_t wave = std::min(concurrency, total - launched);
    fds.clear();
    for (std::size_t i = 0; i < wave; ++i) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) continue;
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_port = htons(port);
      sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
        ::close(fd);
        continue;
      }
      fds.push_back(fd);
    }
    for (const int fd : fds) {
      (void)(write_chunk(fd, stream[0]) && write_chunk(fd, stream[1]));
      ::close(fd);
    }
    launched += wave;
  }
  // Quiesce: all accepted sessions must die (EOF) and the books settle.
  for (int spins = 0; spins < 20000; ++spins) {
    if (srv.accepts() >= launched && srv.sessions_active() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double wall = seconds_since(t0);
  srv.stop();

  const server::TenantSnapshot ts = srv.tenant_stats(kTenant);
  const transport::TransportSnapshot xs = srv.transport_stats();
  Row r;
  r.kernel = "server_churn";
  r.frame_bytes = stream[0].size();
  r.shards = cfg.shards;
  r.conns = launched;
  r.dgrams = ts.dgrams_in;
  r.payload_bytes = ts.bytes_in;
  r.wall_seconds = wall;
  r.conns_per_s = wall > 0.0 ? static_cast<double>(launched) / wall : 0.0;
  r.has_goodput = false;
  r.ledger_ok = ts.ledger_exact() && xs.frames_in == xs.frames_out + xs.frames_lost &&
                srv.sessions_active() == 0;
  r.set_io(xs);
  if (!r.ledger_ok) {
    std::fprintf(stderr,
                 "bench_server: LEDGER VIOLATION after churn "
                 "(dgrams in=%llu out=%llu lost=%llu; chunks in=%llu out=%llu lost=%llu)\n",
                 static_cast<unsigned long long>(ts.dgrams_in),
                 static_cast<unsigned long long>(ts.dgrams_out()),
                 static_cast<unsigned long long>(ts.dgrams_lost),
                 static_cast<unsigned long long>(xs.frames_in),
                 static_cast<unsigned long long>(xs.frames_out),
                 static_cast<unsigned long long>(xs.frames_lost));
  }
  return r;
}

int run(int argc, char** argv) {
  bool smoke = false, quick = false;
  std::string out_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  raise_fd_limit();

  const std::size_t conns = smoke ? 32 : quick ? 200 : 1000;
  const double target_s = smoke ? 0.05 : quick ? 0.3 : 1.0;
  const std::size_t churn_total = smoke ? 100 : quick ? 2000 : 10000;
  const std::size_t churn_conc = smoke ? 25 : quick ? 100 : 200;
  const std::size_t dgram_len = 512;
  // Full mode: ~2000 chunks x 2430B shared across every connection; no conn
  // comes close to exhausting it inside the wall window.
  const std::size_t stream_chunks = smoke ? 64 : 2000;

  banner("bench_server — sharded multi-tenant TunnelServer at C10K",
         "many tunnels, few shards: the paper's line card as a termination server");
  paper_says("one P5 terminates one 2.488 Gbps line; a server shard terminates thousands of"
             " slower tunnels");

  const std::vector<Bytes> stream = encode_stream(stream_chunks, dgram_len);
  std::printf("pre-encoded %zu chunks (%.1f MB wire, %.1f MB payload)\n", stream.size(),
              static_cast<double>(stream.size() * stream[0].size()) / 1e6,
              static_cast<double>(decoded_payload_bytes(stream)) / 1e6);

  std::vector<Row> rows;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    rows.push_back(bench_goodput(shards, conns, target_s, stream, dgram_len));
  }
  rows.push_back(bench_churn(churn_total, churn_conc, stream));

  const double base_mb_s = rows[0].mb_s;
  bool ledgers_ok = true;
  for (const Row& r : rows) {
    ledgers_ok = ledgers_ok && r.ledger_ok;
    if (r.has_goodput) {
      std::printf("%-22s %4zu conns %zu shard(s)  %8.3fs  %10.2f MB/s  x%.2f vs 1shard  %5.1f fr/sys  %s\n",
                  r.kernel.c_str(), r.conns, r.shards, r.wall_seconds, r.mb_s,
                  base_mb_s > 0.0 ? r.mb_s / base_mb_s : 0.0, r.frames_per_syscall,
                  r.ledger_ok ? "ledger OK" : "LEDGER FAIL");
    } else {
      std::printf("%-22s %4zu conns %zu shard(s)  %8.3fs  %10.0f conns/s  %s\n", r.kernel.c_str(),
                  r.conns, r.shards, r.wall_seconds, r.conns_per_s,
                  r.ledger_ok ? "ledger OK" : "LEDGER FAIL");
    }
  }

  JsonReport report("server");
  report.header.set("unit", "MB/s")
      .set("mode", smoke ? "smoke" : quick ? "quick" : "full")
      .set("host_cpus", static_cast<std::size_t>(std::thread::hardware_concurrency()));
  for (const Row& r : rows) {
    auto& row = report.row()
                    .set("kernel", r.kernel)
                    .set("frame_bytes", r.frame_bytes)
                    .set("escape_density", 0.05)
                    .set("dispatch", "tcp")
                    .set("tier", "fast")
                    .set("pinned", false)
                    .set("shards", r.shards)
                    .set("conns", r.conns)
                    .set("dgrams", r.dgrams)
                    .set("payload_bytes", r.payload_bytes)
                    .set("wall_seconds", r.wall_seconds)
                    .set("syscalls", r.syscalls)
                    .set("frames_per_syscall", r.frames_per_syscall)
                    .set("pool_recycled", r.pool_recycled)
                    .set("ledger_ok", r.ledger_ok);
    if (r.has_goodput) {
      row.set("new_mb_s", r.mb_s)
          .set("scaling_vs_1shard", base_mb_s > 0.0 ? r.mb_s / base_mb_s : 0.0);
    } else {
      row.set("conns_per_s", r.conns_per_s);
    }
  }
  if (!report.write(out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)%s\n", out_path.c_str(), rows.size(),
              smoke ? " [smoke mode: timings are not meaningful]" : "");
  we_measure("aggregate sink goodput at " + std::to_string(conns) + " tunnels: " +
             std::to_string(rows[0].mb_s) + " MB/s (1 shard) vs " + std::to_string(rows[2].mb_s) +
             " MB/s (4 shards); churn " + std::to_string(rows[3].conns_per_s) + " conns/s");
  if (!ledgers_ok) {
    std::fprintf(stderr, "bench_server: FAIL — a ledger did not close exactly\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace p5::bench

int main(int argc, char** argv) { return p5::bench::run(argc, argv); }
