file(REMOVE_RECURSE
  "CMakeFiles/ppp_session.dir/ppp_session.cpp.o"
  "CMakeFiles/ppp_session.dir/ppp_session.cpp.o.d"
  "ppp_session"
  "ppp_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
