// Runtime-dispatched SIMD escape engine: HDLC stuff/destuff kernels that
// stay at or above the scalar baseline at *every* escape density.
//
// The paper's Escape Generate/Detect units keep the hardware pipeline at
// line rate even when one input word expands to eight output octets (the
// byte-sorter crossbar absorbs the expansion). The SWAR software fast path
// had the inverse problem: its skip-scan is superb on escape-free runs but
// regresses below the scalar seed once a quarter of the octets escape,
// because every flagged word falls back to a fresh byte-at-a-time patch.
// This engine closes that gap with compress/expand vector kernels in the
// byte-sorter spirit: escape positions are found 16/32 octets at a time
// with movemask, and flagged 8-octet groups are expanded (stuff) or
// compacted (destuff) branchlessly through pshufb tables indexed by the
// group's escape mask — dense traffic costs a table lookup per group, not a
// branch per octet.
//
// Three selection mechanisms stack, so no operating point falls below the
// scalar baseline:
//   * startup dispatch — CPUID picks the widest tier the host supports
//     (AVX2 > SSSE3 > SSE2 > portable SWAR); P5_ESCAPE_TIER=<name> clamps
//     it down for testing, and -DP5_FORCE_SCALAR compiles the SIMD tiers
//     out entirely;
//   * per-call size gate — frames shorter than one vector window take the
//     exact scalar loop (no setup to amortize);
//   * per-window density adaptation — each 16/32-octet window's escape
//     mask classifies it as clean (bulk vector copy), sparse, or dense;
//     flagged windows go through the branchless group expand/compress, so
//     the worst-case all-escape stream degrades to table lookups instead
//     of mispredicted branches.
//
// Per-frame setup (the ACCM-derived classification tables) is hoisted into
// the EscapeEngine constructor; callers that frame continuously (FrameArena,
// the line-card fabric, PppEndpoint) derive it once per ACCM programming,
// not once per frame.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "fastpath/slice_crc.hpp"
#include "hdlc/accm.hpp"

namespace p5::fastpath {

/// Dispatch tiers, widest last. kScalar/kSwar are portable; the rest are
/// x86-only and compiled out under P5_FORCE_SCALAR.
enum class EscapeTier : u8 { kScalar = 0, kSwar = 1, kSse2 = 2, kSsse3 = 3, kAvx2 = 4 };

[[nodiscard]] const char* to_string(EscapeTier tier);

/// Widest tier this host's CPU can execute (CPUID, cached after first call).
[[nodiscard]] EscapeTier detected_tier();

/// detected_tier() clamped down by the P5_ESCAPE_TIER environment variable
/// ("scalar", "swar", "sse2", "ssse3", "avx2"); the startup dispatch result.
[[nodiscard]] EscapeTier best_tier();

/// Every tier that can run on this host, narrowest first (for sweep tests
/// and per-tier bench rows).
[[nodiscard]] std::vector<EscapeTier> available_tiers();

/// Extra octets the vector stores may write past the logical end of an
/// output buffer before it is trimmed; sizing code must reserve this much
/// beyond the worst-case escape expansion.
inline constexpr std::size_t kStuffSlack = 16;

/// Below this input size the engine takes the scalar loop outright.
inline constexpr std::size_t kSmallFrameCutoff = 16;

/// Dispatch telemetry: how often each call-level tier ran, and the density
/// mix the per-window estimator observed. Plain counters with a single
/// writer — an engine must not be shared across threads (each FrameArena /
/// endpoint / channel owns its own).
struct TierCounters {
  u64 scalar_calls = 0;
  u64 swar_calls = 0;
  u64 simd_calls = 0;
  u64 clean_windows = 0;   ///< escape-free vector windows (bulk-copied)
  u64 sparse_windows = 0;  ///< windows with 1-2 escapes
  u64 dense_windows = 0;   ///< windows with 3+ escapes (branchless expand)
};

/// ACCM-derived classification state, built once per programmed ACCM:
/// a 256-entry exact escape-class table for the scalar paths and two
/// 16-entry nibble tables that let pshufb answer "is this control octet in
/// the map" for a whole vector at once.
struct EscapeClassTables {
  alignas(16) u8 accm_lo[16]{};  ///< 0xFF where ACCM escapes octet 0x00+i
  alignas(16) u8 accm_hi[16]{};  ///< 0xFF where ACCM escapes octet 0x10+i
  std::array<u8, 256> cls{};     ///< exact per-octet must_escape
  bool has_controls = false;     ///< any control octet mapped (accm != 0)
};

class EscapeEngine {
 public:
  explicit EscapeEngine(hdlc::Accm accm, EscapeTier tier = best_tier());

  [[nodiscard]] const hdlc::Accm& accm() const { return accm_; }
  [[nodiscard]] EscapeTier tier() const { return tier_; }

  /// Append the stuffed image of `data` to `out` (byte-identical to the
  /// scalar reference and the SWAR kernels).
  void stuff_append(Bytes& out, BytesView data) const;

  /// Append the destuffed image of `data` (no flags) to `out`; false on a
  /// dangling escape at end of input. ACCM-independent, like the wire.
  [[nodiscard]] bool destuff_append(Bytes& out, BytesView data) const;

  /// Fused framer kernel: advance the FCS over the unstuffed octets and
  /// append the stuffed image in the same call. Returns the new raw state.
  [[nodiscard]] u32 stuff_crc_append(Bytes& out, BytesView data, const SliceCrc& crc,
                                     u32 state) const;

  /// Exact number of octets stuffing would add.
  [[nodiscard]] std::size_t count_escapes(BytesView data) const;

  [[nodiscard]] const TierCounters& counters() const { return counters_; }
  void reset_counters() const { counters_ = {}; }

 private:
  hdlc::Accm accm_;
  EscapeTier tier_;
  EscapeClassTables tables_;
  mutable TierCounters counters_;
};

}  // namespace p5::fastpath
