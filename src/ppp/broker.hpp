// SessionBroker: a BRAS/NSP-style PPP session aggregator — the control-plane
// counterpart of the TunnelServer's C10K data plane. One broker terminates
// thousands of concurrent subscriber sessions, each a full PppEndpoint
// running LCP → authentication (PAP/CHAP) → IPCP (with address assignment
// and VJ compression) over whatever wire the caller attaches.
//
// The broker's contract is the *ledger*: every session it admits is
// eventually classified exactly once —
//
//     negotiated + failed + abandoned == started
//
// at quiescence, no matter what the wire or the peers did: bit errors,
// truncation, half-open floods (peers that never speak), renegotiation
// flaps, wrong secrets, option-rejection fuzzing. The storm tests pin this
// closure property under all of the above simultaneously.
//
// Also here: run_negotiation_storm(), the churn harness that drives N
// client endpoints against broker shards (optionally across threads —
// sessions are fully independent, so sharding changes wall-clock, never
// outcomes) with injectable wire taps. Taps are plain callables mutating the
// octet stream, so testing::FaultyLine plugs in without this library
// depending on the testing substrate.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ppp/endpoint.hpp"

namespace p5::ppp::broker {

/// Final classification of an admitted session.
enum class Outcome : u8 {
  kPending = 0,  ///< still negotiating
  kNegotiated,   ///< reached Network phase with IPCP open
  kFailed,       ///< definitive protocol failure (auth reject, FSM gave up)
  kAbandoned,    ///< timed out with a silent peer, or force-settled
};
[[nodiscard]] const char* to_string(Outcome o);

struct BrokerConfig {
  /// Authentication demanded of every subscriber (kNone = open access).
  AuthProto require_auth = AuthProto::kChap;
  /// Identity → secret table for the authenticator.
  AuthPolicy::SecretLookup accounts;
  unsigned max_bad_attempts = 0;
  std::string chap_name = "p5-bras";

  u32 gateway_address = 0x0A3F0001;  ///< 10.63.0.1, our side of every session
  u32 address_base = 0x0A400001;     ///< assigned subscriber addresses start here

  bool request_vj = true;  ///< ask subscribers to send us VJ-compressed TCP
  u8 vj_max_slot_id = 15;

  /// Admission cap on concurrently *pending* (not yet classified) sessions;
  /// 0 = unlimited. This is the half-open flood valve.
  std::size_t max_half_open = 0;

  /// Ticks before a still-pending session is force-classified.
  unsigned session_deadline_ticks = 240;

  FsmTimeouts fsm_timeouts;
  AuthTimeouts auth_timeouts;
  u16 mru = 1500;
};

/// Exact accounting of every admission decision and session fate.
struct SessionLedger {
  u64 started = 0;     ///< sessions admitted
  u64 negotiated = 0;  ///< reached Network phase at least once
  u64 failed = 0;
  u64 abandoned = 0;
  u64 rejected_half_open = 0;  ///< refused at admission by max_half_open
  u64 renegotiations = 0;      ///< re-opens of an already-negotiated session
  u64 auth_failures = 0;       ///< failures attributable to authentication
  /// The closure invariant: every started session has exactly one fate.
  [[nodiscard]] bool closed() const { return negotiated + failed + abandoned == started; }
  SessionLedger& operator+=(const SessionLedger& o);
};

class SessionBroker {
 public:
  /// Transmit raw wire octets toward the session's subscriber.
  using WireTx = std::function<void(BytesView)>;

  explicit SessionBroker(BrokerConfig cfg);
  ~SessionBroker();

  /// Admit a new subscriber line and start negotiating. Returns the session
  /// id, or nullopt when the half-open cap refuses admission.
  std::optional<u64> open_session(WireTx tx);

  /// Feed octets received from a session's subscriber.
  void wire_rx(u64 session, BytesView octets);

  /// Advance every session's timers one tick (and age pending sessions).
  void tick();
  /// Shard-friendly variant: advance exactly one session.
  void tick_session(u64 session);

  /// Administratively tear a session down (classifies it if still pending).
  void close_session(u64 session);

  /// Force-classify every still-pending session as abandoned (used by
  /// drivers at their tick bound to guarantee ledger closure).
  void abandon_pending();

  [[nodiscard]] PppEndpoint* endpoint(u64 session);
  [[nodiscard]] Outcome outcome(u64 session) const;
  [[nodiscard]] const SessionLedger& ledger() const { return ledger_; }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  /// Sessions admitted but not yet classified.
  [[nodiscard]] std::size_t pending_sessions() const { return pending_; }
  /// True when no session is pending (the ledger is closed by construction).
  [[nodiscard]] bool quiescent() const { return pending_ == 0; }

 private:
  struct Session {
    std::unique_ptr<PppEndpoint> endpoint;
    Outcome outcome = Outcome::kPending;
    unsigned age_ticks = 0;
    bool was_ready = false;  ///< edge detector for (re)negotiation
  };

  void poll(u64 id, Session& s);
  void settle(u64 id, Session& s, Outcome o);

  BrokerConfig cfg_;
  std::vector<Session> sessions_;  ///< index == session id
  std::size_t pending_ = 0;
  SessionLedger ledger_;
};

// ---- negotiation storm harness -----------------------------------------

struct StormConfig {
  unsigned sessions = 1000;
  unsigned shards = 1;         ///< worker threads; outcomes are shard-invariant
  unsigned max_ticks = 600;    ///< hard bound before abandon_pending()
  unsigned admit_per_tick = 50;///< staggered arrival rate
  u64 seed = 1;

  double half_open_fraction = 0.0;   ///< subscribers that never send a frame
  double flap_chance = 0.0;          ///< per-ready-tick flap chance; the whole
                                     ///< flap plan is drawn at admission from
                                     ///< the session's RNG (shard-invariant)
  unsigned max_flaps_per_session = 2;
  double bad_secret_fraction = 0.0;  ///< subscribers with a wrong secret
  double unknown_id_fraction = 0.0;  ///< subscribers unknown to the account table

  bool client_request_vj = true;

  BrokerConfig broker;

  /// Wire impairment: (session, server_to_client) → callable mutating the
  /// octet buffer in flight. Null = clean wire. testing::FaultyLine is
  /// directly usable via a capturing lambda.
  std::function<std::function<void(Bytes&)>(u64 session, bool server_to_client)> make_tap;

  /// Option fuzz: mutate a client's LCP/IPCP configs before it starts.
  std::function<void(u64 session, LcpConfig&, IpcpConfig&)> client_config_hook;
};

struct StormReport {
  SessionLedger ledger;   ///< aggregated over all shards
  u64 clients_open = 0;   ///< clients that reached ip_ready at quiescence
  u64 vj_sessions = 0;    ///< sessions with VJ active in at least one direction
  u64 ticks = 0;          ///< max ticks any shard needed
  u64 client_auth_failures = 0;
};

/// Drive `cfg.sessions` subscriber endpoints against broker shards to
/// quiescence. Deterministic for a given config+seed regardless of shard
/// count (shards partition sessions; they share nothing until the final
/// aggregation).
[[nodiscard]] StormReport run_negotiation_storm(const StormConfig& cfg);

/// Convenience: build a SecretLookup over an owned id→secret table.
[[nodiscard]] AuthPolicy::SecretLookup
make_account_table(std::unordered_map<std::string, std::string> accounts);

}  // namespace p5::ppp::broker
