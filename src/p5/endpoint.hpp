// Device tiers: every PPP-over-SONET endpoint in this repo implements the
// SonetEndpoint interface, and callers pick (or let the environment pick)
// which implementation carries their traffic.
//
//   * kCycle — P5SonetEndpoint (p5/sonet_link): the cycle-accurate P5
//     pipeline behind a SONET framer/deframer. Every octet moves through the
//     registered pipeline stages, so latencies and words-per-cycle are
//     architectural measurements. Throughput: simulation speed.
//   * kFast  — FastP5Endpoint (p5/fast_endpoint): the production-tier batch
//     datapath built from the proven fastpath kernels (slicing-by-8 FCS,
//     SIMD escape engine, table scramblers). Whole-frame operations, zero
//     per-cycle stepping, same SONET chunk stream and the same loss ledger.
//
// The two tiers are kept byte-equivalent by the DiffOracle's whole-endpoint
// leg (testing/diff_oracle): identical delivered payloads, identical
// receiver dispositions, identical resync behaviour under fault injection.
//
// `P5_DEVICE_TIER=cycle|fast` overrides the tier at every *default* selection
// point (linecard::ChannelConfig, the transport test harnesses, the bench and
// example binaries). Code that constructs a concrete endpoint class directly
// — the conformance oracle's reference legs, the cycle-model unit tests — is
// deliberately not affected.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "p5/config.hpp"
#include "p5/control.hpp"
#include "sonet/spe.hpp"

namespace p5::core {

enum class DeviceTier : u8 {
  kCycle,  ///< cycle-accurate P5 pipeline (conformance reference)
  kFast,   ///< batch SWAR/SIMD datapath (production tier)
};

[[nodiscard]] const char* to_string(DeviceTier tier);

/// Apply the `P5_DEVICE_TIER` environment override: returns the tier named
/// by the variable when it is set to "cycle" or "fast", otherwise
/// `configured`. Call this at default-selection points only (see header
/// comment); unknown values are ignored.
[[nodiscard]] DeviceTier resolve_device_tier(DeviceTier configured);

/// One end of a PPP-over-SONET link, tier-agnostic: a host-side datagram
/// interface (shared-memory admission semantics included) plus the two
/// stream attach points an external transport needs — pull scrambled SONET
/// frames out of the local transmitter, push received line octets toward the
/// local receiver.
class SonetEndpoint {
 public:
  virtual ~SonetEndpoint() = default;

  [[nodiscard]] virtual DeviceTier tier() const = 0;

  // ---- host-side API (shared-memory semantics in both tiers) ----
  /// Buffer a datagram for transmission; false when the transmit pool/ring
  /// is full (the host must back off, like any driver).
  virtual bool submit_datagram(u16 protocol, Bytes payload) = 0;
  /// Full-control submission (per-frame Control override for numbered mode).
  virtual bool submit_frame(TxRequest req) = 0;
  /// Would a submit of `payload_bytes` succeed right now?
  [[nodiscard]] virtual bool tx_has_room(std::size_t payload_bytes) const = 0;
  /// Without an rx sink, received datagrams accumulate in shared memory and
  /// the host reaps them here (with a sink they are delivered immediately).
  [[nodiscard]] virtual std::optional<RxDelivery> reap_datagram() = 0;
  virtual void set_rx_sink(std::function<void(RxDelivery)> sink) = 0;

  // ---- PHY/line-side API ----
  /// Next scrambled SONET frame from the local transmitter — always exactly
  /// sts().frame_bytes() octets. The line never starves: idle periods
  /// produce flag fill.
  [[nodiscard]] virtual Bytes pull_frame() = 0;
  /// Feed received line octets (whole frames or arbitrary fragments) toward
  /// the local receiver. Alignment recovery, descrambling and HDLC
  /// delineation happen downstream; a mid-stream attach costs a resync,
  /// never a crash.
  virtual void push_line(BytesView octets) = 0;
  /// Run the receive side to quiescence (no-op for the batch tier, which is
  /// always quiescent between push_line calls).
  virtual void drain_rx() {}

  // ---- introspection (the tier-equivalence surface) ----
  /// TX gate for paced pullers: true while datagrams are queued or a frame
  /// is mid-transmission. Pullers should linger ~2 frames after it clears.
  [[nodiscard]] virtual bool tx_pending() const = 0;
  /// Datagrams admitted but not yet fetched by the transmitter.
  [[nodiscard]] virtual std::size_t tx_queue_depth() const = 0;
  [[nodiscard]] virtual u64 frames_pulled() const = 0;
  [[nodiscard]] virtual bool rx_in_sync() const = 0;
  [[nodiscard]] virtual const sonet::DeframerStats& rx_stats() const = 0;
  [[nodiscard]] virtual const sonet::StsSpec& sts() const = 0;
  /// Receiver dispositions, by value: identical classification in both
  /// tiers (frames_bad = aborts + runts + FCS failures, then malformed /
  /// address-filter / oversize in that order — see DESIGN.md §12).
  [[nodiscard]] virtual RxCounters rx_counters() const = 0;
  /// Finished frames lost to receive pool/ring exhaustion (shared-memory
  /// rx_dropped — part of the loss ledger in both tiers).
  [[nodiscard]] virtual u64 rx_overflow_drops() const = 0;
};

/// Build an endpoint of the requested tier. The tier is taken literally —
/// apply resolve_device_tier() first if the callsite is a default-selection
/// point.
[[nodiscard]] std::unique_ptr<SonetEndpoint> make_sonet_endpoint(DeviceTier tier,
                                                                 const P5Config& cfg,
                                                                 sonet::StsSpec sts);

}  // namespace p5::core
