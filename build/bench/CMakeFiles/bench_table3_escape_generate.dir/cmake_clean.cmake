file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_escape_generate.dir/bench_table3_escape_generate.cpp.o"
  "CMakeFiles/bench_table3_escape_generate.dir/bench_table3_escape_generate.cpp.o.d"
  "bench_table3_escape_generate"
  "bench_table3_escape_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_escape_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
