# Empty compiler generated dependencies file for p5_ppp.
# This may be replaced when dependencies are built.
