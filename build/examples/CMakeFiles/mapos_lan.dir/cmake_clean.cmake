file(REMOVE_RECURSE
  "CMakeFiles/mapos_lan.dir/mapos_lan.cpp.o"
  "CMakeFiles/mapos_lan.dir/mapos_lan.cpp.o.d"
  "mapos_lan"
  "mapos_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapos_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
