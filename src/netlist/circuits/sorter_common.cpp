#include "netlist/circuits/sorter_common.hpp"

#include "common/check.hpp"

namespace p5::netlist::circuits {

std::size_t bits_for(std::size_t max_value) {
  std::size_t b = 1;
  while ((std::size_t{1} << b) <= max_value) ++b;
  return b;
}

Bus trunc_bus(const Bus& bus, std::size_t w) {
  P5_EXPECTS(bus.size() >= w);
  return Bus(bus.begin(), bus.begin() + static_cast<std::ptrdiff_t>(w));
}

/// Flip bit 5 of an octet bus (the XOR-0x20 transparency transform).
Bus flip_bit5(Netlist& nl, const Bus& byte) {
  Bus out = byte;
  out[5] = nl.not_(byte[5]);
  return out;
}

/// Split a wide bus into `lanes` octet buses (lane 0 = first on the wire).
std::vector<Bus> split_lanes(const Bus& word, unsigned lanes) {
  std::vector<Bus> out;
  out.reserve(lanes);
  for (unsigned i = 0; i < lanes; ++i)
    out.emplace_back(word.begin() + i * 8, word.begin() + (i + 1) * 8);
  return out;
}

QueueResult build_resync_queue(Builder& b, unsigned lanes, std::size_t cells,
                               const std::vector<Bus>& slots, const Bus& count,
                               NodeId slots_valid) {
  Netlist& nl = b.netlist();
  const std::size_t occ_bits = bits_for(cells);

  std::vector<Bus> buf;
  buf.reserve(cells);
  for (std::size_t k = 0; k < cells; ++k) buf.push_back(b.dff_bus(8));
  const Bus occ = b.dff_bus(occ_bits);

  // emit when at least one full output word is queued.
  const NodeId emit = b.ge_const(occ, lanes);

  // occ_a (occupancy after the emit) is a pure function of occ — one LUT
  // level, the subtract-and-select a synthesis tool folds together.
  const Bus occ_a = b.table_bus(
      occ, [lanes](u64 v) { return v >= lanes ? v - lanes : v; }, occ_bits);

  // accept iff the whole sorted word fits: occ_a + count <= cells.
  // Two-level function of (occ, count).
  Bus oc = occ;
  oc.insert(oc.end(), count.begin(), count.end());
  const NodeId fits = b.table_fn(oc, [lanes, cells, occ_bits](u64 v) {
    const u64 o = v & ((u64{1} << occ_bits) - 1);
    const u64 c = v >> occ_bits;
    const u64 oa = o >= lanes ? o - lanes : o;
    return oa + c <= cells;
  });
  const NodeId accept = nl.and_(slots_valid, fits);

  // Thermometer decode of count: t[j] = (count > j).
  std::vector<NodeId> thermo;
  thermo.reserve(slots.size());
  for (std::size_t j = 0; j < slots.size(); ++j) thermo.push_back(b.ge_const(count, j + 1));

  // Cell update: shift out `lanes` on emit, append slots at occ_a.
  const Bus zero_byte = b.constant_bus(0, 8);
  for (std::size_t k = 0; k < cells; ++k) {
    const Bus& after_shift_src = (k + lanes < cells) ? buf[k + lanes] : zero_byte;
    const Bus shifted = b.mux_bus(emit, buf[k], after_shift_src);

    // Which slot would land in cell k: slot j lands here iff occ_a == k - j.
    std::vector<NodeId> sels;
    std::vector<Bus> choices;
    for (std::size_t j = 0; j < slots.size(); ++j) {
      if (j > k) break;  // occ_a >= 0
      const std::size_t target = k - j;
      if (target > cells) continue;
      const NodeId here = b.eq_const(occ_a, target);
      sels.push_back(nl.and_(here, thermo[j]));
      choices.push_back(slots[j]);
    }
    if (sels.empty()) {
      b.wire_dff_bus(buf[k], shifted);
      continue;
    }
    const NodeId write_k = nl.and_(accept, b.reduce_or(sels));
    const Bus wdata = b.onehot_mux(sels, choices);
    b.wire_dff_bus(buf[k], b.mux_bus(write_k, shifted, wdata));
  }

  // occ' = occ_a + (accept ? count : 0).
  const Bus occ_plus = trunc_bus(b.add(occ_a, count), occ_bits);
  b.wire_dff_bus(occ, b.mux_bus(accept, occ_a, occ_plus));

  // Registered output word.
  QueueResult r;
  r.accept = accept;
  r.occ = occ;
  const NodeId out_valid = nl.dff(emit);
  Bus out_word;
  for (unsigned i = 0; i < lanes; ++i) {
    const Bus cell = b.dff_bus(8);
    b.wire_dff_bus(cell, b.mux_bus(emit, cell, buf[i]));
    out_word.insert(out_word.end(), cell.begin(), cell.end());
  }
  r.out_word = std::move(out_word);
  r.out_valid = out_valid;
  return r;
}

}  // namespace p5::netlist::circuits
