// net::capture + net::tunif — the subsystem that carries real traffic.
//
//  * Golden pcap vectors: all four classic-pcap dialects (little/big-endian
//    × usec/nsec magic) parse to exact records and re-serialize byte-exact;
//    a truncated last record yields the prefix plus a flag, never an error.
//  * Streaming: PcapWriter → PcapFileReader round trip, reopen-append.
//  * Replay: TraceSource into a standalone linecard::Channel delivers the
//    byte-identical frame sequence direct injection delivers; backpressure
//    parks, never drops or reorders. Timed pacing honours scaled gaps.
//  * CaptureTap: ledger is exact (records + drops == frames seen), and a
//    record→replay→record loop through a live endpoint pair is a fixpoint.
//  * Fault smoke: pre/post-FaultyLine taps record diffable pcaps of a
//    corrupted SONET line (the files double as the CI artifact).
//  * TUN (root/CAP_NET_ADMIN only — GTEST_SKIP otherwise): kernel-routed
//    datagrams cross the bridge and a P5 endpoint pair both ways.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <cstdio>
#include <string>
#include <vector>

#include "linecard/channel.hpp"
#include "net/capture/pcap.hpp"
#include "net/capture/replay.hpp"
#include "net/capture/tap.hpp"
#include "net/capture/trace_gen.hpp"
#include "net/ipv4.hpp"
#include "net/tunif/tun_bridge.hpp"
#include "net/tunif/tun_device.hpp"
#include "p5/endpoint.hpp"
#include "testing/fault.hpp"
#include "transport/event_loop.hpp"

namespace p5::net::capture {
namespace {

// ---------------------------------------------------------------------------
// Golden vectors: the four on-disk dialects, hand-assembled octet by octet.
// ---------------------------------------------------------------------------

/// Hand-build a one-record file: header fields (2.4, snaplen 65535,
/// linktype 101) + one record (ts 1s + frac, 4 data octets de ad be ef).
Bytes golden_file(bool big_endian, bool nsec) {
  const u32 magic = nsec ? kMagicNsec : kMagicUsec;
  // frac on disk: 2 µs in a usec file, 2000 ns in a nsec file — the same
  // instant, so parsed records must agree across dialects.
  const u32 frac = nsec ? 2000 : 2;
  Bytes f;
  auto put32 = [&](u32 v) { big_endian ? put_be32(f, v) : put_le32(f, v); };
  auto put16 = [&](u16 v) {
    if (big_endian) {
      put_be16(f, v);
    } else {
      f.push_back(static_cast<u8>(v));
      f.push_back(static_cast<u8>(v >> 8));
    }
  };
  put32(magic);
  put16(2);
  put16(4);
  put32(0);  // thiszone
  put32(0);  // sigfigs
  put32(65535);
  put32(kLinkRawIp);
  put32(1);      // ts_sec
  put32(frac);   // ts frac
  put32(4);      // incl_len
  put32(4);      // orig_len
  f.insert(f.end(), {0xde, 0xad, 0xbe, 0xef});
  return f;
}

TEST(PcapGolden, AllFourDialectsParseAndRoundTrip) {
  for (const bool be : {false, true}) {
    for (const bool nsec : {false, true}) {
      SCOPED_TRACE(std::string(be ? "big" : "little") + "-endian " +
                   (nsec ? "nsec" : "usec"));
      const Bytes file = golden_file(be, nsec);
      auto parsed = parse_pcap(file);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(parsed->meta.big_endian, be);
      EXPECT_EQ(parsed->meta.nsec, nsec);
      EXPECT_EQ(parsed->meta.version_major, 2u);
      EXPECT_EQ(parsed->meta.version_minor, 4u);
      EXPECT_EQ(parsed->meta.snaplen, 65535u);
      EXPECT_EQ(parsed->meta.linktype, kLinkRawIp);
      EXPECT_FALSE(parsed->truncated_tail);
      ASSERT_EQ(parsed->records.size(), 1u);
      const PcapRecord& r = parsed->records[0];
      EXPECT_EQ(r.ts_sec, 1u);
      EXPECT_EQ(r.ts_nsec, 2000u);  // normalized: every dialect agrees
      EXPECT_EQ(r.orig_len, 4u);
      EXPECT_EQ(r.data, (Bytes{0xde, 0xad, 0xbe, 0xef}));
      // Byte-exact re-emission through the writer path.
      EXPECT_EQ(serialize_pcap(parsed->meta, parsed->records), file);
    }
  }
}

TEST(PcapGolden, TruncatedLastRecordParsesPrefix) {
  Bytes file = golden_file(false, false);
  // Append a record header promising 100 octets but deliver only 10.
  put_le32(file, 2);
  put_le32(file, 0);
  put_le32(file, 100);
  put_le32(file, 100);
  for (int i = 0; i < 10; ++i) file.push_back(static_cast<u8>(i));
  auto parsed = parse_pcap(file);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->truncated_tail);
  ASSERT_EQ(parsed->records.size(), 1u);  // the intact record survived
  EXPECT_EQ(parsed->records[0].data, (Bytes{0xde, 0xad, 0xbe, 0xef}));

  // Cut inside the record *header* as well.
  Bytes cut(file.begin(), file.begin() + static_cast<long>(golden_file(false, false).size() + 7));
  auto parsed2 = parse_pcap(cut);
  ASSERT_TRUE(parsed2.has_value());
  EXPECT_TRUE(parsed2->truncated_tail);
  EXPECT_EQ(parsed2->records.size(), 1u);
}

TEST(PcapGolden, RejectsNonPcap) {
  EXPECT_FALSE(parse_pcap_header(Bytes{1, 2, 3}).has_value());
  Bytes junk(64, 0x42);
  EXPECT_FALSE(parse_pcap(junk).has_value());
}

// ---------------------------------------------------------------------------
// Streaming reader/writer.
// ---------------------------------------------------------------------------

TEST(PcapStream, WriteReadAppendRoundTrip) {
  const std::string path = "test_capture_stream.pcap";
  PcapMeta meta;
  meta.nsec = true;
  meta.linktype = kLinkUser0;
  {
    PcapWriter w;
    ASSERT_TRUE(w.create(path, meta));
    for (u32 i = 0; i < 5; ++i) {
      PcapRecord r;
      r.ts_sec = i;
      r.ts_nsec = i * 7;
      r.data = Bytes{static_cast<u8>(i), 0x7e, 0x7d};
      r.orig_len = static_cast<u32>(r.data.size());
      ASSERT_TRUE(w.write(r));
    }
    EXPECT_EQ(w.records_written(), 5u);
  }
  {
    // Reopen for append: dialect comes from the on-disk header.
    PcapWriter w;
    ASSERT_TRUE(w.append_to(path));
    EXPECT_TRUE(w.meta().nsec);
    EXPECT_EQ(w.meta().linktype, kLinkUser0);
    PcapRecord r;
    r.ts_sec = 99;
    r.data = Bytes{0xaa};
    ASSERT_TRUE(w.write(r));
  }
  PcapFileReader rd;
  ASSERT_TRUE(rd.open(path)) << rd.error();
  std::vector<PcapRecord> got;
  while (auto r = rd.next()) got.push_back(std::move(*r));
  EXPECT_FALSE(rd.truncated());
  ASSERT_EQ(got.size(), 6u);
  EXPECT_EQ(got[3].ts_nsec, 21u);
  EXPECT_EQ(got[5].ts_sec, 99u);
  EXPECT_EQ(got[5].data, Bytes{0xaa});
  std::remove(path.c_str());
}

TEST(TraceGen, DeterministicAcrossRuns) {
  TraceGenConfig cfg;
  cfg.flows = 3;
  cfg.packets = 64;
  cfg.seed = 20260808;
  const PcapFile a = synthesize_tcp_trace(cfg);
  const PcapFile b = synthesize_tcp_trace(cfg);
  ASSERT_EQ(a.records.size(), 64u);
  EXPECT_EQ(serialize_pcap(a.meta, a.records), serialize_pcap(b.meta, b.records));
  // Real IP with real TCP inside: every record parses and is protocol 6.
  for (const PcapRecord& r : a.records) {
    auto d = net::parse_datagram(r.data);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->header.protocol, 6u);
  }
  // Timestamps strictly increase (the seeded gaps never collapse to zero).
  for (std::size_t i = 1; i < a.records.size(); ++i)
    EXPECT_GT(a.records[i].timestamp_ns(), a.records[i - 1].timestamp_ns());
}

// ---------------------------------------------------------------------------
// Replay.
// ---------------------------------------------------------------------------

TEST(Replay, ChannelEquivalentToDirectInjection) {
  // The acceptance gate: a trace replayed through TraceSource into a
  // standalone Channel must emerge byte-identical to the same records
  // pushed into a second Channel by hand.
  TraceGenConfig cfg;
  cfg.packets = 40;
  cfg.seed = 7;
  const PcapFile trace = synthesize_tcp_trace(cfg);

  auto drive = [](linecard::Channel& ch, const std::function<bool()>& feed) {
    std::vector<Bytes> out;
    for (int guard = 0; guard < 200000; ++guard) {
      const bool more = feed();
      ch.step();
      while (auto d = ch.egress_ring().try_pop()) out.push_back(std::move(d->payload));
      if (!more && ch.idle()) break;
    }
    return out;
  };

  linecard::ChannelTelemetry tel_a, tel_b;
  linecard::ChannelConfig cc;
  linecard::Channel ch_a(0, cc, tel_a), ch_b(0, cc, tel_b);

  TraceSource src(trace.meta, trace.records);
  const auto sink = make_channel_sink(ch_a);
  const auto replayed = drive(ch_a, [&] {
    src.pump(0, 4, sink);
    return !src.done();
  });

  std::size_t fed = 0;
  const auto direct = drive(ch_b, [&] {
    while (fed < trace.records.size()) {
      const auto cls = TraceSource::classify(trace.meta.linktype,
                                             trace.records[fed].data);
      linecard::FrameDesc d;
      d.protocol = cls->first;
      d.payload.assign(cls->second.begin(), cls->second.end());
      if (!ch_b.source_ring().try_push(std::move(d))) break;
      ++fed;
    }
    return fed < trace.records.size();
  });

  ASSERT_EQ(replayed.size(), trace.records.size());
  ASSERT_EQ(replayed, direct);
  // Raw-IP linktype: the delivered frames ARE the trace records.
  for (std::size_t i = 0; i < replayed.size(); ++i)
    EXPECT_EQ(replayed[i], trace.records[i].data) << "record " << i;
  // Backpressure engaged (the channel ring is smaller than the trace) and
  // was absorbed by parking, not dropping.
  EXPECT_EQ(src.stats().delivered, trace.records.size());
  EXPECT_EQ(src.stats().offered - src.stats().delivered, src.stats().deferred);
}

TEST(Replay, TimedPacingHonoursScaledGaps) {
  PcapMeta meta;
  meta.nsec = true;
  std::vector<PcapRecord> recs;
  for (u32 i = 0; i < 3; ++i) {
    PcapRecord r;
    r.ts_sec = 0;
    r.ts_nsec = i * 1'000'000;  // 0, 1 ms, 2 ms
    r.data = Bytes{0x45, static_cast<u8>(i)};  // fake v4 nibble
    recs.push_back(r);
  }
  TraceSource src(meta, recs);
  src.set_pacing(Pacing::kTimed);
  src.set_time_scale(2.0);  // twice realtime: due at 0, 0.5 ms, 1 ms
  std::size_t taken = 0;
  const auto sink = [&](u16, BytesView) {
    ++taken;
    return true;
  };
  EXPECT_EQ(src.pump(1'000'000'000ull, 10, sink), 1u);  // anchor: first plays now
  EXPECT_EQ(src.pump(1'000'400'000ull, 10, sink), 0u);  // 0.4 ms: too early
  EXPECT_EQ(src.pump(1'000'500'000ull, 10, sink), 1u);  // 0.5 ms: second due
  EXPECT_EQ(src.pump(1'002'000'000ull, 10, sink), 1u);  // everything else
  EXPECT_TRUE(src.done());
  EXPECT_EQ(taken, 3u);
}

TEST(Replay, PppLinktypeStripsFraming) {
  const Bytes with_acf{0xff, 0x03, 0x00, 0x21, 0x45, 0x01};
  auto c1 = TraceSource::classify(kLinkPpp, with_acf);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->first, 0x0021);
  EXPECT_EQ(Bytes(c1->second.begin(), c1->second.end()), (Bytes{0x45, 0x01}));
  const Bytes acfc{0x00, 0x2d, 0xaa};  // address/control compressed away
  auto c2 = TraceSource::classify(kLinkPpp, acfc);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->first, 0x002d);
  const Bytes v6{0x60, 0x00};
  auto c3 = TraceSource::classify(kLinkRawIp, v6);
  ASSERT_TRUE(c3.has_value());
  EXPECT_EQ(c3->first, 0x0057);
  EXPECT_FALSE(TraceSource::classify(kLinkPpp, Bytes{0xff}).has_value());
}

// ---------------------------------------------------------------------------
// CaptureTap: the exact ledger, and record→replay→record as a fixpoint.
// ---------------------------------------------------------------------------

TEST(CaptureTap, LedgerIsExactUnderBound) {
  CaptureTap tap;
  tap.set_max_records(3);
  const auto hook = tap.line_tap();
  Bytes frame{1, 2, 3};
  for (int i = 0; i < 10; ++i) hook(frame);
  const TapStats s = tap.stats();
  EXPECT_EQ(s.records, 3u);
  EXPECT_EQ(s.drops, 7u);
  EXPECT_EQ(s.frames_seen(), 10u);
  EXPECT_EQ(s.bytes, 9u);
  EXPECT_EQ(tap.take_records().size(), 3u);
}

TEST(CaptureTap, RecordReplayRecordIsAFixpoint) {
  // Replay trace A through a live endpoint pair recording deliveries → C1;
  // replay C1 through a fresh pair recording again → C2. The pipeline is
  // byte-transparent and the tap clock deterministic, so C1 == C2 to the
  // last serialized octet.
  TraceGenConfig cfg;
  cfg.packets = 32;
  cfg.seed = 11;
  const PcapFile trace_a = synthesize_tcp_trace(cfg);

  auto run = [](const PcapMeta& meta, const std::vector<PcapRecord>& recs) {
    auto ep_a = core::make_sonet_endpoint(core::DeviceTier::kFast, {}, sonet::kSts3c);
    auto ep_b = core::make_sonet_endpoint(core::DeviceTier::kFast, {}, sonet::kSts3c);
    TraceSource src(meta, recs);
    const auto sink = make_endpoint_sink(*ep_a);
    CaptureTap tap({.nsec = true, .linktype = kLinkRawIp});
    std::vector<Bytes> delivered;
    int quiet = 0;
    for (int guard = 0; guard < 20000 && quiet < 8; ++guard) {
      src.pump(0, 8, sink);
      Bytes f = ep_a->pull_frame();
      ep_b->push_line(f);
      ep_b->drain_rx();
      bool any = false;
      while (auto d = ep_b->reap_datagram()) {
        tap.record(d->payload);
        any = true;
      }
      quiet = (src.done() && !ep_a->tx_pending() && !any) ? quiet + 1 : 0;
    }
    return std::make_pair(tap.take_records(), tap.stats());
  };

  auto [c1, s1] = run(trace_a.meta, trace_a.records);
  ASSERT_EQ(c1.size(), trace_a.records.size());  // ledger: every record delivered
  EXPECT_EQ(s1.records, trace_a.records.size());
  EXPECT_EQ(s1.drops, 0u);

  PcapMeta c1_meta;
  c1_meta.nsec = true;
  c1_meta.linktype = kLinkRawIp;
  auto [c2, s2] = run(c1_meta, c1);
  EXPECT_EQ(serialize_pcap(c1_meta, c1), serialize_pcap(c1_meta, c2));
}

TEST(CaptureTap, FaultLineSmokeWritesDiffablePcaps) {
  // The CI artifact: an endpoint pair with a BER-degraded line, one tap on
  // each side of the fault. Equal record counts, different bytes — the two
  // files are the offline diff of what the line did.
  auto ep_a = core::make_sonet_endpoint(core::DeviceTier::kFast, {}, sonet::kSts3c);
  auto ep_b = core::make_sonet_endpoint(core::DeviceTier::kFast, {}, sonet::kSts3c);
  testing::FaultyLine fault(testing::FaultSpec::ber(2e-5, 20260808));

  CaptureTap pre({.nsec = true, .linktype = kLinkUser0});
  CaptureTap post({.nsec = true, .linktype = kLinkUser0});
  ASSERT_TRUE(pre.open("capture_fault_pre.pcap"));
  ASSERT_TRUE(post.open("capture_fault_post.pcap"));

  TraceGenConfig cfg;
  cfg.packets = 48;
  cfg.seed = 3;
  const PcapFile trace = synthesize_tcp_trace(cfg);
  TraceSource src(trace.meta, trace.records);
  const auto sink = make_endpoint_sink(*ep_a);
  const auto pre_hook = pre.line_tap();
  const auto post_hook = post.line_tap();
  std::size_t delivered = 0;
  int quiet = 0;
  for (int guard = 0; guard < 20000 && quiet < 8; ++guard) {
    src.pump(0, 8, sink);
    Bytes f = ep_a->pull_frame();
    pre_hook(f);   // what the transmitter put on the line
    fault(f);      // the line's damage
    post_hook(f);  // what the receiver saw
    if (!f.empty()) ep_b->push_line(f);
    ep_b->drain_rx();
    bool any = false;
    while (ep_b->reap_datagram()) {
      ++delivered;
      any = true;
    }
    quiet = (src.done() && !ep_a->tx_pending() && !any) ? quiet + 1 : 0;
  }
  pre.close();
  post.close();

  // Ledger: both taps saw every line chunk.
  EXPECT_EQ(pre.stats().frames_seen(), post.stats().frames_seen());
  EXPECT_GT(fault.stats().faulted_chunks, 0u);
  EXPECT_LE(delivered, trace.records.size());

  // Both files are valid captures of the same length; the corruption shows.
  PcapFileReader r_pre, r_post;
  ASSERT_TRUE(r_pre.open("capture_fault_pre.pcap"));
  ASSERT_TRUE(r_post.open("capture_fault_post.pcap"));
  std::size_t n = 0, diff = 0;
  while (true) {
    auto a = r_pre.next();
    auto b = r_post.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    ++n;
    if (a->data != b->data) ++diff;
  }
  EXPECT_EQ(n, pre.stats().records);
  EXPECT_GT(diff, 0u);
}

// ---------------------------------------------------------------------------
// TUN bridge — needs /dev/net/tun and privilege; SKIPs cleanly without.
// ---------------------------------------------------------------------------

#define SKIP_WITHOUT_TUN()                                                    \
  do {                                                                        \
    if (!tunif::TunDevice::available())                                       \
      GTEST_SKIP() << "/dev/net/tun unavailable (needs root/CAP_NET_ADMIN)";  \
  } while (0)

TEST(Tun, DeviceOpensAndConfigures) {
  SKIP_WITHOUT_TUN();
  tunif::TunDevice tun;
  ASSERT_TRUE(tun.open("p5t%d")) << tun.error();
  EXPECT_FALSE(tun.name().empty());
  ASSERT_TRUE(tun.configure_ipv4("10.98.0.1", "10.98.0.2", 1400)) << tun.error();
  // A freshly-upped interface may already have kernel chatter queued (IPv6
  // neighbour discovery); drain it — the non-blocking contract is that the
  // fd reports kAgain once empty instead of blocking.
  Bytes pkt;
  tunif::ReadStatus st = tunif::ReadStatus::kPacket;
  for (int guard = 0; guard < 64 && st == tunif::ReadStatus::kPacket; ++guard)
    st = tun.read_packet(pkt);
  EXPECT_EQ(st, tunif::ReadStatus::kAgain);
}

TEST(Tun, KernelTrafficCrossesTheBridgeBothWays) {
  SKIP_WITHOUT_TUN();
  // One process, one TUN: datagrams the kernel routes toward the peer
  // address cross bridge → endpoint A → SONET line → endpoint B; a crafted
  // reply submitted at B comes back through the bridge into the kernel and
  // lands on a real UDP socket.
  tunif::TunDevice tun;
  ASSERT_TRUE(tun.open("p5t%d")) << tun.error();
  ASSERT_TRUE(tun.configure_ipv4("10.98.1.1", "10.98.1.2", 1400)) << tun.error();

  transport::EventLoop loop;
  auto ep_a = core::make_sonet_endpoint(core::DeviceTier::kFast, {}, sonet::kSts3c);
  auto ep_b = core::make_sonet_endpoint(core::DeviceTier::kFast, {}, sonet::kSts3c);
  tunif::TunBridge bridge(loop, tun, *ep_a);

  const int sk = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(sk, 0);
  sockaddr_in local{};
  local.sin_family = AF_INET;
  ASSERT_EQ(::inet_pton(AF_INET, "10.98.1.1", &local.sin_addr), 1);
  ASSERT_EQ(::bind(sk, reinterpret_cast<sockaddr*>(&local), sizeof local), 0);
  socklen_t slen = sizeof local;
  ASSERT_EQ(::getsockname(sk, reinterpret_cast<sockaddr*>(&local), &slen), 0);

  sockaddr_in peer{};
  peer.sin_family = AF_INET;
  peer.sin_port = htons(7777);
  ASSERT_EQ(::inet_pton(AF_INET, "10.98.1.2", &peer.sin_addr), 1);
  const Bytes magic{0xc0, 0xff, 0xee, 0x42};
  ASSERT_EQ(::sendto(sk, magic.data(), magic.size(), 0,
                     reinterpret_cast<sockaddr*>(&peer), sizeof peer),
            static_cast<ssize_t>(magic.size()));

  // Drive loop + wire until the datagram emerges at endpoint B.
  std::optional<net::ParsedDatagram> request;
  for (int guard = 0; guard < 5000 && !request; ++guard) {
    loop.run_once(1);  // readability → bridge.drain_tun()
    bridge.pump();
    Bytes f = ep_a->pull_frame();
    ep_b->push_line(f);
    ep_b->drain_rx();
    while (auto d = ep_b->reap_datagram()) {
      auto parsed = net::parse_datagram(d->payload);
      // The kernel may also emit unrelated noise (IPv6 ND is dropped by
      // classify at the far end; v4 noise is possible too) — match ours.
      if (parsed && parsed->header.protocol == 17 &&
          parsed->payload.size() >= 8 + magic.size() &&
          Bytes(parsed->payload.end() - 4, parsed->payload.end()) == magic) {
        request = std::move(parsed);
      }
    }
  }
  ASSERT_TRUE(request.has_value()) << "datagram never crossed the bridge";
  char dst_str[INET_ADDRSTRLEN];
  const u32 dst_be = htonl(request->header.dst);
  ASSERT_NE(::inet_ntop(AF_INET, &dst_be, dst_str, sizeof dst_str), nullptr);
  EXPECT_STREQ(dst_str, "10.98.1.2");

  // Craft the reply: swap addresses and UDP ports, echo the payload.
  const BytesView udp(request->payload);
  Bytes reply_udp;
  reply_udp.push_back(udp[2]);  // src port := request dst port (7777)
  reply_udp.push_back(udp[3]);
  reply_udp.push_back(udp[0]);  // dst port := request src port
  reply_udp.push_back(udp[1]);
  put_be16(reply_udp, static_cast<u16>(8 + magic.size()));
  put_be16(reply_udp, 0);  // UDP checksum 0: legal for IPv4
  append(reply_udp, magic);
  net::Ipv4Header hdr;
  hdr.protocol = 17;
  hdr.src = request->header.dst;
  hdr.dst = request->header.src;
  const Bytes reply = net::build_datagram(hdr, reply_udp);
  ASSERT_TRUE(ep_b->submit_datagram(0x0021, reply));

  // Wire B → A, bridge writes into the kernel, socket receives.
  bool got_reply = false;
  for (int guard = 0; guard < 5000 && !got_reply; ++guard) {
    Bytes f = ep_b->pull_frame();
    ep_a->push_line(f);
    ep_a->drain_rx();
    bridge.pump();
    loop.run_once(1);
    u8 buf[64];
    const ssize_t n = ::recv(sk, buf, sizeof buf, MSG_DONTWAIT);
    if (n == static_cast<ssize_t>(magic.size()) &&
        Bytes(buf, buf + n) == magic) {
      got_reply = true;
    }
  }
  EXPECT_TRUE(got_reply) << "reply never reached the kernel socket";
  const auto& st = bridge.stats();
  EXPECT_GE(st.tun_rx_packets, 1u);
  EXPECT_GE(st.delivered_packets, 1u);
  EXPECT_EQ(st.tun_write_failures, 0u);
  ::close(sk);
}

}  // namespace
}  // namespace p5::net::capture
