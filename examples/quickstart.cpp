// Quickstart: the shortest path through the public API.
//
// Builds one 32-bit P5 (the paper's 2.5 Gbps configuration), encapsulates a
// few IPv4 datagrams into PPP/HDLC frames, loops the transmit line straight
// into the receiver, and reads the results back through the Protocol OAM
// register map — the way the paper's host microprocessor would.
//
//   build/examples/quickstart
#include <cstdio>

#include "common/hexdump.hpp"
#include "net/ipv4.hpp"
#include "p5/p5.hpp"

int main() {
  using namespace p5;

  // 1. Configure the device: 32-bit datapath, FCS-32, default PPP header.
  core::P5Config cfg;
  cfg.lanes = 4;  // 4 octets per clock = 32 bits
  core::P5 dev(cfg);

  std::printf("P5 device: %u-bit datapath, %.1f Gbps at %.3f MHz\n", cfg.width_bits(),
              dev.config().line_gbps(), cfg.clock_mhz);

  // 2. Deliver received datagrams to a sink (the 'shared memory' side).
  std::vector<core::RxDelivery> received;
  dev.set_rx_sink([&](core::RxDelivery d) { received.push_back(std::move(d)); });

  // 3. Submit IPv4 datagrams for transmission.
  const char* messages[] = {"hello, SONET", "PPP in HDLC-like framing", "byte 0x7e gets escaped"};
  for (const char* msg : messages) {
    net::Ipv4Header hdr;
    hdr.src = 0x0A000001;  // 10.0.0.1
    hdr.dst = 0x0A000002;  // 10.0.0.2
    Bytes payload(msg, msg + std::char_traits<char>::length(msg));
    payload.push_back(0x7E);  // force at least one escape per datagram
    dev.submit_datagram(0x0021 /* IPv4 */, net::build_datagram(hdr, payload));
  }

  // 4. Drive the PHY: pull the transmit octet stream, show a slice of it,
  //    and loop it back into the receiver.
  Bytes wire_sample;
  for (int k = 0; k < 400; ++k) {
    const Bytes chunk = dev.phy_pull_tx(cfg.lanes);
    if (wire_sample.size() < 48) append(wire_sample, chunk);
    dev.phy_push_rx(chunk);
  }
  dev.drain_rx(200);

  std::printf("\nfirst octets on the wire (flag fill, then 7e ff 03 00 21 ...):\n%s\n",
              hex_dump(BytesView(wire_sample).subspan(0, 48)).c_str());

  // 5. Check results.
  std::printf("received %zu datagrams:\n", received.size());
  for (const auto& d : received) {
    const auto ip = net::parse_datagram(d.payload);
    if (ip) {
      std::printf("  proto=0x%04x  ipv4 %zu bytes  payload: \"%.*s\"\n", d.protocol,
                  d.payload.size(), static_cast<int>(ip->payload.size() - 1),
                  reinterpret_cast<const char*>(ip->payload.data()));
    }
  }

  // 6. Read the OAM register map like the host CPU would.
  using core::OamReg;
  auto rd = [&](OamReg r) { return dev.oam().read(static_cast<u32>(r)); };
  std::printf("\nOAM registers:\n");
  std::printf("  ID            = 0x%08x\n", rd(OamReg::kId));
  std::printf("  TX_FRAMES     = %u\n", rd(OamReg::kTxFrames));
  std::printf("  RX_FRAMES_OK  = %u\n", rd(OamReg::kRxFramesOk));
  std::printf("  RX_FCS_ERRORS = %u\n", rd(OamReg::kRxFcsErrors));
  std::printf("  TX_ESCAPES    = %u\n", rd(OamReg::kTxEscapes));
  return received.size() == 3 ? 0 : 1;
}
