// E1 — Paper Table 1: "P5 8-bit Implementation", pre/post-layout synthesis
// on XCV50-4 (Virtex) and XC2V40-6 (Virtex-II).
//
// Our synthesis substitute builds the complete 8-bit P5 as gate-level
// netlists (src/netlist/circuits), maps them to 4-input LUTs and applies the
// device timing models. Absolute counts differ from the authors' Synplicity
// run (see EXPERIMENTS.md); the utilisation and speed *shape* is what the
// experiment checks.
#include <cstdio>

#include "bench_util.hpp"
#include "netlist/circuits/p5_circuit.hpp"
#include "netlist/device.hpp"

int main() {
  using namespace p5::netlist;
  p5::bench::banner("E1 / bench_table1_p5_8bit — full 8-bit P5 synthesis model",
                    "Table 1: P5 8-bit implementation on XCV50-4 and XC2V40-6");

  p5::bench::paper_says(
      "8-bit P5 is small (a few hundred LUTs / FFs; fits XCV50 and nearly fills "
      "XC2V40); meets the 78.125 MHz needed for 625 Mbps.");

  const AreaReport report = circuits::p5_system_report(1);
  std::printf("\n%s\n", report.module_table().c_str());
  std::printf("%s\n",
              report.device_table({xcv50_4(), xc2v40_6()}).c_str());

  const double required = required_clock_mhz(0.625, 8);
  std::printf("required clock for 625 Mbps over 8 bits: %.3f MHz\n", required);
  for (const Device& d : {xcv50_4(), xc2v40_6()}) {
    const double post = d.fmax_mhz(report.critical_depth(), true);
    std::printf("  %-12s post-layout %6.1f MHz -> %s\n", d.name.c_str(), post,
                post >= required ? "MEETS 625 Mbps" : "misses 625 Mbps");
  }
  return 0;
}
