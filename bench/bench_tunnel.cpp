// bench_tunnel — socket-transport throughput for the P5 SONET stream.
//
// Three figures, all wall-clock (this bench measures the transport and the
// host, not the cycle model's clock):
//
//  * stream_echo — raw StreamConn loopback echo: length-prefixed frames out
//    and back through the epoll loop with no P5 model attached. This is the
//    transport's own ceiling; it should sit orders of magnitude above the
//    model-bound figures.
//  * tunnel_tcp / tunnel_udp — a socketed P5SonetEndpoint pair
//    (transport::Tunnel at both ends over loopback) delivering datagrams
//    end to end. Model-bound: the cycle-accurate P5 at each end simulates
//    at roughly the speed BENCH_linecard.json records, so these rows gate
//    "the tunnel does not get slower", not absolute socket speed.
//
// Results go to stdout and BENCH_tunnel.json. The JSON rows carry the
// bench_compare.py cell keys; gate with
//   scripts/bench_compare.py BENCH_tunnel.json <baseline> --metric new_mb_s
// (the tunnel baseline tolerance is loose — wall time on shared CI swings).
//
// Usage: bench_tunnel [--smoke] [--quick] [--out <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "p5/sonet_link.hpp"
#include "transport/conn.hpp"
#include "transport/event_loop.hpp"
#include "transport/tunnel.hpp"

namespace p5::bench {
namespace {

using transport::ConnConfig;
using transport::EventLoop;
using transport::Fd;
using transport::kReadable;
using transport::SocketAddr;
using transport::StreamConn;
using transport::TransportTelemetry;
using transport::Tunnel;
using transport::TunnelBinding;
using transport::TunnelConfig;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Row {
  std::string kernel;
  std::size_t frame_bytes = 0;
  std::string dispatch;
  std::size_t frames = 0;
  u64 payload_bytes = 0;
  double wall_seconds = 0.0;
  double mb_s = 0.0;
};

/// Raw StreamConn echo: `count` frames of `frame_bytes` out and back.
Row bench_stream_echo(std::size_t count, std::size_t frame_bytes) {
  EventLoop loop;
  TransportTelemetry ctel, stel;
  Fd listen_fd = transport::tcp_listen(SocketAddr{"127.0.0.1", 0});
  std::unique_ptr<StreamConn> server, client;
  ConnConfig scfg;
  scfg.send_watermark_bytes = 64 * 1024 * 1024;  // echo side is read-gated
  loop.add_fd(listen_fd.get(), kReadable, [&](u32) {
    Fd c = transport::tcp_accept(listen_fd.get());
    if (!c.valid()) return;
    server = std::make_unique<StreamConn>(loop, stel, scfg, std::move(c), false);
    server->set_on_frame([&](BytesView v) { (void)server->send_frame(v); });
  });
  bool in_progress = false;
  Fd c = transport::tcp_connect(SocketAddr{"127.0.0.1", transport::local_port(listen_fd.get())},
                                in_progress);
  client = std::make_unique<StreamConn>(loop, ctel, ConnConfig{}, std::move(c), in_progress);
  while (!server || !client->open()) loop.run_once(10);

  const Bytes frame = density_payload(frame_bytes, 0.0, 42);
  std::size_t echoed = 0;
  client->set_on_frame([&](BytesView) { ++echoed; });

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t sent = 0;
  while (echoed < count) {
    while (sent < count && client->send_frame(frame)) ++sent;
    loop.run_once(10);
  }
  Row r;
  r.kernel = "stream_echo";
  r.frame_bytes = frame_bytes;
  r.dispatch = "tcp";
  r.frames = count;
  r.payload_bytes = static_cast<u64>(count) * frame_bytes;
  r.wall_seconds = seconds_since(t0);
  // Payload octets that crossed the loop twice (out and back).
  r.mb_s = 2.0 * static_cast<double>(r.payload_bytes) / 1e6 / r.wall_seconds;
  loop.remove_fd(listen_fd.get());
  return r;
}

/// Socketed endpoint pair: `count` datagrams of `dgram_len` end to end.
Row bench_tunnel_pair(bool udp, std::size_t count, std::size_t dgram_len) {
  EventLoop loop;
  core::P5SonetEndpoint ep_a({}, sonet::kSts3c), ep_b({}, sonet::kSts3c);
  TunnelConfig ca;
  ca.listen = true;
  ca.udp = udp;
  ca.port = 0;
  Tunnel tun_a(loop, TunnelBinding::endpoint(ep_a), ca);
  tun_a.start();
  TunnelConfig cb;
  cb.udp = udp;
  cb.port = tun_a.bound_port();
  Tunnel tun_b(loop, TunnelBinding::endpoint(ep_b), cb);
  tun_b.start();

  const Bytes payload = density_payload(dgram_len, 0.05, 7);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t submitted = 0, delivered = 0;
  u64 delivered_bytes = 0;
  int settle = 0;
  while (delivered < count && settle < 400) {
    if (submitted < count && ep_b.device().submit_datagram(0x0021, payload)) ++submitted;
    tun_a.pump();
    tun_b.pump();
    loop.run_once(1);
    while (auto d = ep_a.device().reap_datagram()) {
      ++delivered;
      delivered_bytes += d->payload.size();
    }
    // UDP on loopback is effectively loss-free, but don't hang on a miracle.
    settle = (submitted == count && !ep_b.tx_pending()) ? settle + 1 : 0;
  }
  Row r;
  r.kernel = udp ? "tunnel_udp" : "tunnel_tcp";
  r.frame_bytes = dgram_len;
  r.dispatch = udp ? "udp" : "tcp";
  r.frames = delivered;
  r.payload_bytes = delivered_bytes;
  r.wall_seconds = seconds_since(t0);
  r.mb_s = static_cast<double>(delivered_bytes) / 1e6 / r.wall_seconds;
  return r;
}

int run(int argc, char** argv) {
  bool smoke = false, quick = false;
  std::string out_path = "BENCH_tunnel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  const std::size_t echo_frames = smoke ? 200 : quick ? 4000 : 20000;
  const std::size_t dgrams = smoke ? 10 : quick ? 60 : 150;

  banner("bench_tunnel — socket transport for P5 SONET streams",
         "carries the paper's STS-Nc byte stream between real processes");
  paper_says("2.488 Gbps sustained on the wire; here the wire is a kernel socket");

  std::vector<Row> rows;
  for (const std::size_t fb : {std::size_t{256}, std::size_t{2048}})
    rows.push_back(bench_stream_echo(echo_frames, fb));
  rows.push_back(bench_tunnel_pair(false, dgrams, 1024));
  rows.push_back(bench_tunnel_pair(true, dgrams, 1024));

  for (const Row& r : rows) {
    std::printf("%-12s %5zuB x %6zu  %8.3fs  %10.2f MB/s (%s)\n", r.kernel.c_str(),
                r.frame_bytes, r.frames, r.wall_seconds, r.mb_s, r.dispatch.c_str());
  }

  JsonReport report("tunnel");
  report.header.set("unit", "MB/s").set("mode", smoke ? "smoke" : quick ? "quick" : "full");
  for (const Row& r : rows) {
    report.row()
        .set("kernel", r.kernel)
        .set("frame_bytes", r.frame_bytes)
        .set("escape_density", 0.05)
        .set("dispatch", r.dispatch)
        .set("pinned", false)
        .set("frames", r.frames)
        .set("payload_bytes", r.payload_bytes)
        .set("wall_seconds", r.wall_seconds)
        .set("new_mb_s", r.mb_s);
  }
  if (!report.write(out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)%s\n", out_path.c_str(), rows.size(),
              smoke ? " [smoke mode: timings are not meaningful]" : "");
  we_measure("tunnel TCP end-to-end: " + std::to_string(rows[2].mb_s) +
             " MB/s wall (model-bound; see stream_echo for the transport ceiling)");
  return 0;
}

}  // namespace
}  // namespace p5::bench

int main(int argc, char** argv) { return p5::bench::run(argc, argv); }
