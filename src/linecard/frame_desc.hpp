// The descriptor the line-card rings carry. Descriptors own their payload
// bytes; rings move headers + a vector handle, never wire octets — stuffing,
// FCS and SONET encapsulation all happen inside the channel they belong to.
#pragma once

#include "common/types.hpp"

namespace p5::linecard {

struct FrameDesc {
  u16 protocol = 0x0021;  ///< PPP/MAPOS protocol number (IPv4 by default)
  /// MAPOS address the frame is forwarded to once it emerges from the
  /// channel's link. 0 is never a valid MAPOS address (the EA bit is always
  /// set), so 0 means "unspecified": the runtime substitutes the channel's
  /// egress default — the uplink port. 0xFF broadcasts across the fabric.
  u8 fabric_dest = 0;
  u8 source_channel = 0;  ///< tributary the frame entered on
  Bytes payload;
};

}  // namespace p5::linecard
