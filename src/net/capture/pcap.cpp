#include "net/capture/pcap.hpp"

#include <cstring>

namespace p5::net::capture {
namespace {

// The file's own endianness decides header scalar layout; records normalise
// to host order in memory. 16-bit helpers are local — the shared packing
// helpers in common/types.hpp only cover the widths the frame codecs use.
void put_u16(Bytes& b, u16 v, bool be) {
  if (be) {
    put_be16(b, v);
  } else {
    b.push_back(static_cast<u8>(v));
    b.push_back(static_cast<u8>(v >> 8));
  }
}

void put_u32(Bytes& b, u32 v, bool be) {
  if (be) {
    put_be32(b, v);
  } else {
    put_le32(b, v);
  }
}

[[nodiscard]] u16 get_u16(BytesView b, std::size_t off, bool be) {
  return be ? get_be16(b, off)
            : static_cast<u16>(b[off] | (b[off + 1] << 8));
}

[[nodiscard]] u32 get_u32(BytesView b, std::size_t off, bool be) {
  return be ? get_be32(b, off) : get_le32(b, off);
}

/// Frac field as stored on disk: nanoseconds pass through, microsecond
/// files quantise (the reader multiplies back, so usec round trips exactly).
[[nodiscard]] u32 frac_on_disk(const PcapMeta& meta, u32 ts_nsec) {
  return meta.nsec ? ts_nsec : ts_nsec / 1000u;
}

[[nodiscard]] u32 frac_to_nsec(const PcapMeta& meta, u32 frac) {
  return meta.nsec ? frac : frac * 1000u;
}

/// Sanity ceiling on a record body when the file header's snaplen is
/// implausibly small or zero: never trust incl_len to drive allocation.
[[nodiscard]] u32 max_record_bytes(const PcapMeta& meta) {
  u32 cap = meta.snaplen;
  if (cap < kDefaultSnaplen) cap = kDefaultSnaplen;
  return cap + 4096u;  // slack: some writers record snaplen loosely
}

}  // namespace

std::optional<PcapMeta> parse_pcap_header(BytesView data) {
  if (data.size() < kFileHeaderBytes) return std::nullopt;
  const u32 magic_le = get_le32(data, 0);
  const u32 magic_be = get_be32(data, 0);
  PcapMeta meta;
  if (magic_le == kMagicUsec || magic_le == kMagicNsec) {
    meta.big_endian = false;
    meta.nsec = (magic_le == kMagicNsec);
  } else if (magic_be == kMagicUsec || magic_be == kMagicNsec) {
    meta.big_endian = true;
    meta.nsec = (magic_be == kMagicNsec);
  } else {
    return std::nullopt;
  }
  meta.version_major = get_u16(data, 4, meta.big_endian);
  meta.version_minor = get_u16(data, 6, meta.big_endian);
  // Octets 8..15 are thiszone/sigfigs — always written zero, ignored on read.
  meta.snaplen = get_u32(data, 16, meta.big_endian);
  meta.linktype = get_u32(data, 20, meta.big_endian);
  return meta;
}

std::optional<PcapFile> parse_pcap(BytesView data) {
  auto meta = parse_pcap_header(data);
  if (!meta) return std::nullopt;
  PcapFile file;
  file.meta = *meta;
  const u32 cap = max_record_bytes(*meta);
  std::size_t off = kFileHeaderBytes;
  while (off < data.size()) {
    if (data.size() - off < kRecordHeaderBytes) {
      file.truncated_tail = true;
      break;
    }
    PcapRecord rec;
    rec.ts_sec = get_u32(data, off, meta->big_endian);
    rec.ts_nsec = frac_to_nsec(*meta, get_u32(data, off + 4, meta->big_endian));
    const u32 incl = get_u32(data, off + 8, meta->big_endian);
    rec.orig_len = get_u32(data, off + 12, meta->big_endian);
    off += kRecordHeaderBytes;
    if (incl > cap || data.size() - off < incl) {
      file.truncated_tail = true;
      break;
    }
    rec.data.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                    data.begin() + static_cast<std::ptrdiff_t>(off + incl));
    off += incl;
    file.records.push_back(std::move(rec));
  }
  return file;
}

Bytes serialize_pcap_header(const PcapMeta& meta) {
  Bytes out;
  out.reserve(kFileHeaderBytes);
  put_u32(out, meta.nsec ? kMagicNsec : kMagicUsec, meta.big_endian);
  put_u16(out, meta.version_major, meta.big_endian);
  put_u16(out, meta.version_minor, meta.big_endian);
  put_u32(out, 0, meta.big_endian);  // thiszone (GMT offset — always 0)
  put_u32(out, 0, meta.big_endian);  // sigfigs (always 0 in practice)
  put_u32(out, meta.snaplen, meta.big_endian);
  put_u32(out, meta.linktype, meta.big_endian);
  return out;
}

Bytes serialize_record(const PcapMeta& meta, const PcapRecord& rec) {
  Bytes out;
  out.reserve(kRecordHeaderBytes + rec.data.size());
  put_u32(out, rec.ts_sec, meta.big_endian);
  put_u32(out, frac_on_disk(meta, rec.ts_nsec), meta.big_endian);
  put_u32(out, static_cast<u32>(rec.data.size()), meta.big_endian);
  put_u32(out, rec.orig_len ? rec.orig_len : static_cast<u32>(rec.data.size()),
          meta.big_endian);
  append(out, rec.data);
  return out;
}

Bytes serialize_pcap(const PcapMeta& meta, std::span<const PcapRecord> records) {
  Bytes out = serialize_pcap_header(meta);
  for (const PcapRecord& rec : records) {
    Bytes r = serialize_record(meta, rec);
    append(out, r);
  }
  return out;
}

// ---------------------------------------------------------------- reader --

PcapFileReader::~PcapFileReader() {
  if (f_) std::fclose(f_);
}

bool PcapFileReader::open(const std::string& path) {
  if (f_) {
    std::fclose(f_);
    f_ = nullptr;
  }
  truncated_ = false;
  records_ = 0;
  error_.clear();
  f_ = std::fopen(path.c_str(), "rb");
  if (!f_) {
    error_ = "cannot open " + path;
    return false;
  }
  u8 hdr[kFileHeaderBytes];
  if (std::fread(hdr, 1, sizeof hdr, f_) != sizeof hdr) {
    error_ = path + ": shorter than a pcap file header";
    std::fclose(f_);
    f_ = nullptr;
    return false;
  }
  auto meta = parse_pcap_header(BytesView{hdr, sizeof hdr});
  if (!meta) {
    error_ = path + ": not a classic pcap (bad magic)";
    std::fclose(f_);
    f_ = nullptr;
    return false;
  }
  meta_ = *meta;
  return true;
}

std::optional<PcapRecord> PcapFileReader::next() {
  if (!f_) return std::nullopt;
  u8 hdr[kRecordHeaderBytes];
  const std::size_t got = std::fread(hdr, 1, sizeof hdr, f_);
  if (got == 0) return std::nullopt;  // clean end of file
  if (got != sizeof hdr) {
    truncated_ = true;
    return std::nullopt;
  }
  const BytesView hv{hdr, sizeof hdr};
  PcapRecord rec;
  rec.ts_sec = get_u32(hv, 0, meta_.big_endian);
  rec.ts_nsec = frac_to_nsec(meta_, get_u32(hv, 4, meta_.big_endian));
  const u32 incl = get_u32(hv, 8, meta_.big_endian);
  rec.orig_len = get_u32(hv, 12, meta_.big_endian);
  if (incl > max_record_bytes(meta_)) {
    truncated_ = true;  // corrupt length — refuse to allocate for it
    return std::nullopt;
  }
  rec.data.resize(incl);
  if (incl && std::fread(rec.data.data(), 1, incl, f_) != incl) {
    truncated_ = true;
    return std::nullopt;
  }
  ++records_;
  return rec;
}

// ---------------------------------------------------------------- writer --

PcapWriter::~PcapWriter() { close(); }

bool PcapWriter::create(const std::string& path, const PcapMeta& meta) {
  close();
  f_ = std::fopen(path.c_str(), "wb");
  if (!f_) return false;
  meta_ = meta;
  records_ = 0;
  bytes_ = 0;
  const Bytes hdr = serialize_pcap_header(meta_);
  if (std::fwrite(hdr.data(), 1, hdr.size(), f_) != hdr.size()) {
    close();
    return false;
  }
  return true;
}

bool PcapWriter::append_to(const std::string& path) {
  close();
  // Read the existing header first so appended records keep the file's
  // dialect, then reopen positioned at the tail.
  PcapFileReader probe;
  if (!probe.open(path)) return false;
  meta_ = probe.meta();
  f_ = std::fopen(path.c_str(), "ab");
  if (!f_) return false;
  records_ = 0;
  bytes_ = 0;
  return true;
}

bool PcapWriter::write(const PcapRecord& rec) {
  if (!f_) return false;
  const Bytes out = serialize_record(meta_, rec);
  if (std::fwrite(out.data(), 1, out.size(), f_) != out.size()) return false;
  ++records_;
  bytes_ += rec.data.size();
  return true;
}

void PcapWriter::flush() {
  if (f_) std::fflush(f_);
}

void PcapWriter::close() {
  if (f_) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

}  // namespace p5::net::capture
