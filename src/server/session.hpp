// One accepted tunnel inside a shard: an adopted StreamConn feeding a
// fast-tier SonetEndpoint, bound to a tenant, routed per the server policy.
//
// Lifecycle (all on the owning shard's loop thread):
//
//   adopted -> [awaiting hello] -> bound(tenant) -> carrying -> dead
//                     \-> bad hello / admission reject -> dead
//
// RX path per inbound burst (the conn's batched on_frames delivery): per
// chunk, hello/tenant binding on the first chunk when the listener carries
// no tenant, then the tenant policer, then endpoint.push_line(); after the
// whole burst is in the deframer, one drain_rx() + reap that dispositions
// every decoded datagram (echo / uplink handoff / sink — see RouteMode).
// Batched or not, per-chunk decisions and dispositions are identical.
// TX path per slice: the tx_pending()-gated, 2-frame-linger paced pull the
// Tunnel binding uses, into the conn until its watermark pushes back.
//
// A Session never destroys its conn from the conn's own callback stack:
// on_closed only marks dead_, and the shard sweeps dead sessions after its
// run_once() returns.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "p5/endpoint.hpp"
#include "server/tenant.hpp"
#include "transport/conn.hpp"
#include "transport/event_loop.hpp"

namespace p5::server {

enum class RouteMode : u8 {
  kEcho,    ///< resubmit each decoded datagram to the session's own endpoint
  kSink,    ///< count and drop (goodput measurement / pure termination)
  kUplink,  ///< hand off to the shared uplink (cross-shard SpscRing + DRR)
};

/// What a session needs from its shard, minus the shard type itself.
struct SessionEnv {
  transport::EventLoop* loop = nullptr;
  transport::TransportTelemetry* transport_tel = nullptr;  ///< shard-shared
  TenantRegistry* tenants = nullptr;
  RouteMode route = RouteMode::kEcho;
  std::size_t frames_per_pump = 8;
  /// Device factory, invoked only after the session binds — a rejected
  /// connection never allocates an endpoint (pools, arenas, scramblers).
  std::function<std::unique_ptr<core::SonetEndpoint>()> make_endpoint;
  /// Admission gate beyond the tenant's own (server-wide session cap).
  /// Returns false to refuse; the session then closes before binding.
  std::function<bool()> admit_global;
  /// Uplink handoff: push one decoded datagram toward the shared uplink.
  /// False = ring full; the session counts the datagram lost. Unset when
  /// route != kUplink.
  std::function<bool(u32 tenant, u16 protocol, Bytes&& payload)> uplink_offer;
  /// Called once when a bound session closes (global slot release).
  std::function<void()> release_global;
  /// Observation hook on every decoded datagram, before routing consumes
  /// it — the server's post-delivery capture point (net/capture tap).
  /// Sessions run on shard threads, so the callee MUST be thread-safe
  /// (CaptureTap is; a bare PcapWriter is not).
  std::function<void(u32 tenant, u16 protocol, BytesView payload)> delivered_tap;
};

class Session {
 public:
  /// `fixed_tenant` binds immediately (listener-port tenancy); nullopt means
  /// the first chunk must be a hello (hello.hpp codec) naming the tenant.
  /// Admission rejection closes the conn from inside the constructor; the
  /// shard sees dead() and sweeps.
  Session(SessionEnv env, std::unique_ptr<transport::Conn> conn,
          std::optional<u32> fixed_tenant);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// One TX slice; returns chunks handed to the conn.
  std::size_t slice();

  [[nodiscard]] bool dead() const { return dead_; }
  [[nodiscard]] bool bound() const { return tenant_ != nullptr; }
  [[nodiscard]] u32 tenant_id() const { return tenant_ ? tenant_->id() : 0; }
  [[nodiscard]] core::SonetEndpoint* endpoint() { return ep_.get(); }

 private:
  void on_chunks(std::span<const BytesView> chunks);
  /// One chunk of a burst: hello/tenant binding, policer, push_line. Returns
  /// false when the session died (skip the rest of the burst).
  bool on_chunk(BytesView chunk);
  bool bind_tenant(u32 tenant_id);
  void reap_and_route();
  void mark_dead();

  SessionEnv env_;
  std::unique_ptr<transport::Conn> conn_;
  std::unique_ptr<core::SonetEndpoint> ep_;
  TenantState* tenant_ = nullptr;  ///< registry-owned, stable address
  bool awaiting_hello_ = false;
  bool dead_ = false;
  bool global_slot_held_ = false;
  unsigned tx_linger_ = 0;  ///< trailing frames after tx_pending() clears
};

}  // namespace p5::server
