// HDLC-like framing substrate tests: octet stuffing (golden model), frame
// assembly/parse with the paper's programmability knobs, and the flag
// delineation state machine.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hdlc/accm.hpp"
#include "hdlc/delineation.hpp"
#include "hdlc/frame.hpp"
#include "hdlc/stuffing.hpp"

namespace p5::hdlc {
namespace {

// ---- ACCM ----

TEST(Accm, SonetEscapesOnlyFlagAndEscape) {
  const Accm a = Accm::sonet();
  EXPECT_TRUE(a.must_escape(kFlag));
  EXPECT_TRUE(a.must_escape(kEscape));
  EXPECT_FALSE(a.must_escape(0x00));
  EXPECT_FALSE(a.must_escape(0x1F));
  EXPECT_FALSE(a.must_escape('A'));
}

TEST(Accm, AsyncDefaultEscapesControls) {
  const Accm a = Accm::async_default();
  for (u8 c = 0; c < 0x20; ++c) EXPECT_TRUE(a.must_escape(c)) << int(c);
  EXPECT_FALSE(a.must_escape(0x20));
}

TEST(Accm, SelectiveMap) {
  const Accm a(u32{1} << 0x11);
  EXPECT_TRUE(a.must_escape(0x11));
  EXPECT_FALSE(a.must_escape(0x12));
}

// ---- stuffing ----

TEST(Stuffing, PaperExample) {
  // Paper Section 2: 31 33 7E 96 -> 31 33 7D 5E 96.
  const Bytes in{0x31, 0x33, 0x7E, 0x96};
  const Bytes expect{0x31, 0x33, 0x7D, 0x5E, 0x96};
  EXPECT_EQ(stuff(in), expect);
}

TEST(Stuffing, EscapesTheEscape) {
  const Bytes in{0x7D};
  const Bytes expect{0x7D, 0x5D};
  EXPECT_EQ(stuff(in), expect);
}

TEST(Stuffing, NoFlagsRemain) {
  Xoshiro256 rng(1);
  for (int t = 0; t < 50; ++t) {
    const Bytes out = stuff(rng.bytes(500));
    for (const u8 b : out) EXPECT_NE(b, kFlag);
  }
}

TEST(Stuffing, RoundTripRandom) {
  Xoshiro256 rng(2);
  for (int t = 0; t < 200; ++t) {
    const Bytes in = rng.bytes(rng.range(0, 400));
    const DestuffResult r = destuff(stuff(in));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.data, in);
  }
}

TEST(Stuffing, RoundTripAllFlags) {
  const Bytes in(64, kFlag);
  const Bytes out = stuff(in);
  EXPECT_EQ(out.size(), 128u);  // every octet doubles
  const DestuffResult r = destuff(out);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.data, in);
}

TEST(Stuffing, RoundTripWithAccm) {
  Xoshiro256 rng(3);
  const Accm accm = Accm::async_default();
  for (int t = 0; t < 50; ++t) {
    const Bytes in = rng.bytes(200);
    const Bytes wire = stuff(in, accm);
    for (const u8 b : wire) EXPECT_FALSE(b < 0x20);  // all controls escaped
    const DestuffResult r = destuff(wire);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.data, in);
  }
}

TEST(Stuffing, ExpansionCountMatches) {
  Xoshiro256 rng(4);
  for (int t = 0; t < 50; ++t) {
    const Bytes in = rng.bytes(300);
    EXPECT_EQ(stuff(in).size(), in.size() + stuffing_expansion(in));
  }
}

TEST(Stuffing, DanglingEscapeFails) {
  const Bytes bad{0x12, 0x7D};
  EXPECT_FALSE(destuff(bad).ok);
}

TEST(Stuffing, EmptyInput) {
  EXPECT_TRUE(stuff({}).empty());
  EXPECT_TRUE(destuff({}).ok);
}

// ---- frames ----

TEST(Frame, EncapsulateDefaultHeader) {
  const FrameConfig cfg;
  const Bytes payload{0xAA, 0xBB};
  const Bytes content = encapsulate(cfg, 0x0021, payload);
  ASSERT_GE(content.size(), 8u);
  EXPECT_EQ(content[0], 0xFF);  // address
  EXPECT_EQ(content[1], 0x03);  // control
  EXPECT_EQ(get_be16(content, 2), 0x0021);
  EXPECT_EQ(content.size(), 2u + 2u + 2u + 4u);  // hdr + proto + payload + fcs32
}

TEST(Frame, ParseRoundTrip) {
  const FrameConfig cfg;
  Xoshiro256 rng(5);
  for (int t = 0; t < 100; ++t) {
    const Bytes payload = rng.bytes(rng.range(0, 1500));
    const Bytes content = encapsulate(cfg, 0x0021, payload);
    const ParseResult r = parse(cfg, content);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.frame->protocol, 0x0021);
    EXPECT_EQ(r.frame->payload, payload);
  }
}

TEST(Frame, Fcs16RoundTrip) {
  FrameConfig cfg;
  cfg.fcs = FcsKind::kFcs16;
  const Bytes content = encapsulate(cfg, 0xC021, Bytes{1, 2, 3});
  const ParseResult r = parse(cfg, content);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame->protocol, 0xC021);
}

TEST(Frame, CorruptionDetected) {
  const FrameConfig cfg;
  Bytes content = encapsulate(cfg, 0x0021, Bytes{9, 9, 9});
  content[4] ^= 0x01;
  const ParseResult r = parse(cfg, content);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, ParseError::kBadFcs);
}

TEST(Frame, MaposAddressFilter) {
  FrameConfig tx_cfg;
  tx_cfg.address = 0x04;  // MAPOS unicast address
  FrameConfig rx_other = tx_cfg;
  rx_other.address = 0x08;
  const Bytes content = encapsulate(tx_cfg, 0x0021, Bytes{1});
  EXPECT_TRUE(parse(tx_cfg, content).ok());
  const ParseResult r = parse(rx_other, content);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, ParseError::kBadAddress);
}

TEST(Frame, AcfcCompressedHeader) {
  FrameConfig cfg;
  cfg.acfc = true;
  const Bytes content = encapsulate(cfg, 0x0021, Bytes{5, 6});
  EXPECT_EQ(get_be16(content, 0), 0x0021);  // no addr/ctrl
  const ParseResult r = parse(cfg, content);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame->payload, (Bytes{5, 6}));
}

TEST(Frame, AcfcReceiverAcceptsUncompressed) {
  FrameConfig tx;
  FrameConfig rx;
  rx.acfc = true;  // ACFC negotiated, peer still sends the header
  const Bytes content = encapsulate(tx, 0x0021, Bytes{7});
  const ParseResult r = parse(rx, content);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame->payload, (Bytes{7}));
}

TEST(Frame, PfcSingleOctetProtocol) {
  FrameConfig cfg;
  cfg.pfc = true;
  const Bytes content = encapsulate(cfg, 0x0021, Bytes{});
  // 0x21 is odd -> compressed to one octet.
  EXPECT_EQ(content[2], 0x21);
  const ParseResult r = parse(cfg, content);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame->protocol, 0x21);
}

TEST(Frame, TooShortRejected) {
  const FrameConfig cfg;
  const ParseResult r = parse(cfg, Bytes{1, 2, 3});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, ParseError::kTooShort);
}

TEST(Frame, WireFrameHasFlagsOnlyAtEnds) {
  const FrameConfig cfg;
  Xoshiro256 rng(6);
  const Bytes wire = build_wire_frame(cfg, 0x0021, rng.bytes(100));
  EXPECT_EQ(wire.front(), kFlag);
  EXPECT_EQ(wire.back(), kFlag);
  for (std::size_t i = 1; i + 1 < wire.size(); ++i) EXPECT_NE(wire[i], kFlag);
}

// ---- delineation ----

class Collector {
 public:
  std::vector<Bytes> frames;
  Delineator d{[this](BytesView f) { frames.emplace_back(f.begin(), f.end()); }};
};

TEST(Delineation, SingleFrame) {
  Collector c;
  const FrameConfig cfg;
  c.d.push(build_wire_frame(cfg, 0x0021, Bytes{1, 2, 3, 4}));
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_TRUE(parse(cfg, destuff(c.frames[0]).data).ok());
}

TEST(Delineation, BackToBackFramesSharedFlag) {
  Collector c;
  // frame1 | shared flag | frame2
  c.d.push(Bytes{kFlag, 1, 2, 3, 4, 5, kFlag, 6, 7, 8, 9, 10, kFlag});
  ASSERT_EQ(c.frames.size(), 2u);
  EXPECT_EQ(c.frames[0], (Bytes{1, 2, 3, 4, 5}));
  EXPECT_EQ(c.frames[1], (Bytes{6, 7, 8, 9, 10}));
}

TEST(Delineation, InterFrameFillSkipped) {
  Collector c;
  c.d.push(Bytes{kFlag, kFlag, kFlag, 1, 2, 3, 4, 5, kFlag, kFlag});
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.d.stats().frames, 1u);
}

TEST(Delineation, LeadingGarbageDiscarded) {
  Collector c;
  c.d.push(Bytes{0xAA, 0xBB, 0xCC, kFlag, 1, 2, 3, 4, 5, kFlag});
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].size(), 5u);
}

TEST(Delineation, AbortSequenceCounted) {
  Collector c;
  // 0x7D immediately before the closing flag = transmitter abort.
  c.d.push(Bytes{kFlag, 1, 2, 3, 4, kEscape, kFlag});
  EXPECT_EQ(c.frames.size(), 0u);
  EXPECT_EQ(c.d.stats().aborts, 1u);
}

TEST(Delineation, RuntDiscardedSilently) {
  Collector c;
  c.d.push(Bytes{kFlag, 1, 2, kFlag});
  EXPECT_EQ(c.frames.size(), 0u);
  EXPECT_EQ(c.d.stats().runts, 1u);
}

TEST(Delineation, OversizeDropsAndResyncs) {
  Collector cbig;
  Delineator d([&cbig](BytesView f) { cbig.frames.emplace_back(f.begin(), f.end()); }, 4, 64);
  Bytes stream{kFlag};
  for (int i = 0; i < 200; ++i) stream.push_back(0x11);  // runaway frame
  stream.push_back(kFlag);
  stream.insert(stream.end(), {1, 2, 3, 4, 5});
  stream.push_back(kFlag);
  d.push(stream);
  ASSERT_EQ(cbig.frames.size(), 1u);
  EXPECT_EQ(cbig.frames[0], (Bytes{1, 2, 3, 4, 5}));
  EXPECT_EQ(d.stats().oversize, 1u);
}

TEST(Delineation, FlushDropsPartial) {
  Collector c;
  c.d.push(Bytes{kFlag, 1, 2, 3});
  c.d.flush();
  EXPECT_EQ(c.frames.size(), 0u);
  EXPECT_EQ(c.d.stats().runts, 1u);
  // After flush the delineator hunts again.
  c.d.push(Bytes{4, 5, kFlag, 9, 9, 9, 9, 9, kFlag});
  EXPECT_EQ(c.frames.size(), 1u);
}

TEST(Delineation, ManyRandomFramesRecovered) {
  const FrameConfig cfg;
  Xoshiro256 rng(8);
  std::vector<Bytes> sent;
  Bytes stream;
  for (int i = 0; i < 100; ++i) {
    const Bytes payload = rng.bytes(rng.range(1, 300));
    sent.push_back(payload);
    append(stream, build_wire_frame(cfg, 0x0021, payload));
    for (u64 f = rng.below(3); f > 0; --f) stream.push_back(kFlag);
  }
  std::vector<Bytes> got;
  Delineator d([&](BytesView f) {
    const auto r = parse(cfg, destuff(f).data);
    ASSERT_TRUE(r.ok());
    got.push_back(r.frame->payload);
  });
  d.push(stream);
  EXPECT_EQ(got, sent);
}

TEST(Delineation, RecoversAfterCorruption) {
  const FrameConfig cfg;
  Bytes stream = build_wire_frame(cfg, 0x0021, Bytes(50, 0x42));
  stream[10] = kFlag;  // corruption splits the frame
  Bytes clean = build_wire_frame(cfg, 0x0021, Bytes(60, 0x17));
  append(stream, clean);
  int good = 0;
  Delineator d([&](BytesView f) {
    if (parse(cfg, destuff(f).data).ok()) ++good;
  });
  d.push(stream);
  EXPECT_EQ(good, 1);  // the clean frame still gets through
}

}  // namespace
}  // namespace p5::hdlc
