// PPP protocol-field registry (RFC 1661 §2 and the IANA PPP numbers the
// paper's Protocol OAM must classify: network-layer protocols start with a
// 0 bit, link/control protocols with a 1 bit).
#pragma once

#include "common/types.hpp"

namespace p5::ppp {

// Network-layer protocols (0x0***).
inline constexpr u16 kProtoIpv4 = 0x0021;
inline constexpr u16 kProtoVjComp = 0x002D;    ///< VJ compressed TCP (RFC 1144)
inline constexpr u16 kProtoVjUncomp = 0x002F;  ///< VJ uncompressed TCP (RFC 1144)
inline constexpr u16 kProtoIpx = 0x002B;
inline constexpr u16 kProtoIpv6 = 0x0057;
inline constexpr u16 kProtoMplsUnicast = 0x0281;

// NCPs (0x8***).
inline constexpr u16 kProtoIpcp = 0x8021;
inline constexpr u16 kProtoIpv6cp = 0x8057;

// LCP family (0xC***).
inline constexpr u16 kProtoLcp = 0xC021;
inline constexpr u16 kProtoPap = 0xC023;
inline constexpr u16 kProtoLqr = 0xC025;
inline constexpr u16 kProtoChap = 0xC223;

/// Paper §2: "Protocols starting with a 0 bit are network layer protocols
/// such as IP or IPX, those starting with a 1 bit are used to negotiate
/// other protocols including LCP and NCP."
[[nodiscard]] constexpr bool is_network_layer(u16 protocol) { return (protocol & 0x8000u) == 0; }
[[nodiscard]] constexpr bool is_control(u16 protocol) { return (protocol & 0x8000u) != 0; }

/// RFC 1661 §2: valid protocol fields have an even most-significant octet
/// and an odd least-significant octet.
[[nodiscard]] constexpr bool is_valid_protocol(u16 protocol) {
  return ((protocol >> 8) & 1u) == 0 && (protocol & 1u) == 1;
}

}  // namespace p5::ppp
