// Tenant plane of the TunnelServer: registration, admission control,
// byte-rate policing and the per-tenant datagram ledger.
//
// A tenant is a customer slice of the aggregator — identified either by the
// listener port a connection arrived on or by the hello chunk it sent first
// (server.hpp). Every session is bound to exactly one tenant before it may
// carry traffic, and the tenant enforces two admission axes:
//   * max_sessions  — concurrent tunnels (CAS acquire/release, multi-shard);
//   * rx_bytes_per_s — a token bucket over inbound wire chunks, refilled
//     from the observing shard's clock so deterministic manual-time tests
//     police byte-exactly.
//
// Telemetry follows the repo's snapshot discipline but is *multi-writer*:
// one tenant's sessions live on several shards, so the counters are plain
// fetch_add atomics and the snapshot uses the same stabilising double read
// as TransportTelemetry. The ledger tracked here is datagram-granular,
// one level above the transport chunk ledger:
//
//     dgrams_in == dgrams_echoed + dgrams_uplinked + dgrams_sunk
//                  + dgrams_lost          (+ dgrams still staged in flight)
//
// Exact at quiescence — every datagram a tenant's endpoints decode is
// dispositioned, across shard handoff, or counted lost where it was dropped
// (echo-full, handoff-ring-full, staging overflow). See DESIGN.md §13.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace p5::server {

struct TenantConfig {
  u32 id = 0;
  std::size_t max_sessions = 0;  ///< concurrent tunnels; 0 = unlimited
  u64 rx_bytes_per_s = 0;        ///< inbound wire-chunk policer; 0 = unlimited
  u64 rx_burst_bytes = 64 * 1024;  ///< bucket depth (instantaneous burst)
  u32 drr_quantum_bytes = 0;     ///< uplink DRR quantum; 0 = server default
};

/// Plain-value copy of one tenant's counters (or an aggregate roll-up).
struct TenantSnapshot {
  // Datagram ledger (see header comment).
  u64 dgrams_in = 0;  ///< datagrams decoded from this tenant's endpoints
  u64 bytes_in = 0;
  u64 dgrams_echoed = 0;  ///< resubmitted to the session's own endpoint
  u64 bytes_echoed = 0;
  u64 dgrams_uplinked = 0;  ///< emitted by the shared uplink (post-DRR)
  u64 bytes_uplinked = 0;
  u64 dgrams_sunk = 0;  ///< consumed by the sink route
  u64 bytes_sunk = 0;
  u64 dgrams_lost = 0;  ///< dropped: echo-full / handoff-full / stage-full

  // Admission and policing.
  u64 sessions_admitted = 0;
  u64 sessions_rejected = 0;  ///< admission refusals (tenant at max_sessions)
  u64 sessions_closed = 0;
  u64 chunks_policed = 0;  ///< inbound chunks dropped by the rate cap
  u64 bytes_policed = 0;

  [[nodiscard]] u64 dgrams_out() const { return dgrams_echoed + dgrams_uplinked + dgrams_sunk; }
  /// The ledger invariant, exact at quiescence. `in_flight` is whatever the
  /// caller knows is still staged (uplink rings/queues).
  [[nodiscard]] bool ledger_exact(u64 in_flight = 0) const {
    return dgrams_in == dgrams_out() + dgrams_lost + in_flight;
  }

  bool operator==(const TenantSnapshot&) const = default;
  TenantSnapshot& operator+=(const TenantSnapshot& o);
};

/// Live counters for one tenant. Multi-writer (sessions on any shard),
/// any number of readers.
class TenantTelemetry {
 public:
  void on_dgram_in(std::size_t bytes) {
    dgrams_in_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_echoed(std::size_t bytes) {
    dgrams_echoed_.fetch_add(1, std::memory_order_relaxed);
    bytes_echoed_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_uplinked(std::size_t bytes) {
    dgrams_uplinked_.fetch_add(1, std::memory_order_relaxed);
    bytes_uplinked_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_sunk(std::size_t bytes) {
    dgrams_sunk_.fetch_add(1, std::memory_order_relaxed);
    bytes_sunk_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_dgrams_lost(u64 n) {
    if (n) dgrams_lost_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_admitted() { sessions_admitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected() { sessions_rejected_.fetch_add(1, std::memory_order_relaxed); }
  void on_session_closed() { sessions_closed_.fetch_add(1, std::memory_order_relaxed); }
  void on_policed(std::size_t bytes) {
    chunks_policed_.fetch_add(1, std::memory_order_relaxed);
    bytes_policed_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Stabilising double read, as TransportTelemetry::snapshot().
  [[nodiscard]] TenantSnapshot snapshot() const;

 private:
  [[nodiscard]] TenantSnapshot read_once() const;

  std::atomic<u64> dgrams_in_{0}, bytes_in_{0};
  std::atomic<u64> dgrams_echoed_{0}, bytes_echoed_{0};
  std::atomic<u64> dgrams_uplinked_{0}, bytes_uplinked_{0};
  std::atomic<u64> dgrams_sunk_{0}, bytes_sunk_{0};
  std::atomic<u64> dgrams_lost_{0};
  std::atomic<u64> sessions_admitted_{0}, sessions_rejected_{0}, sessions_closed_{0};
  std::atomic<u64> chunks_policed_{0}, bytes_policed_{0};
};

/// One registered tenant: config, counters, live admission state and the
/// policer bucket. Stable address once created (registry hands out pointers).
class TenantState {
 public:
  explicit TenantState(TenantConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const TenantConfig& config() const { return cfg_; }
  [[nodiscard]] u32 id() const { return cfg_.id; }
  [[nodiscard]] TenantTelemetry& telemetry() { return tel_; }
  [[nodiscard]] std::size_t active_sessions() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Admission: claim a session slot. False (and a rejection count) when the
  /// tenant is at max_sessions. CAS loop — shards race for the last slot and
  /// exactly one wins.
  [[nodiscard]] bool try_acquire_session();
  void release_session();

  /// Token-bucket policer over inbound wire chunks. `now_ms` comes from the
  /// observing shard's loop clock (manual-time safe; a clock running
  /// backwards across shards refills nothing). True = admit the chunk.
  [[nodiscard]] bool police_rx(std::size_t bytes, u64 now_ms);

  /// Replace the limits in place (counters and active sessions survive).
  /// Registration-time use; racing this against live traffic only risks one
  /// chunk judged under either limit, never corruption.
  void reconfigure(TenantConfig cfg);

 private:
  TenantConfig cfg_;
  TenantTelemetry tel_;
  std::atomic<std::size_t> active_{0};

  std::mutex bucket_mu_;  ///< policer state; shards of one tenant contend here
  double tokens_ = -1.0;  ///< <0 = bucket not yet primed
  u64 last_refill_ms_ = 0;
};

/// All tenants the server knows. Creation is lazy (first session binds with
/// the server's default limits) or explicit via configure(). Lookup returns
/// stable pointers; the registry only grows.
class TenantRegistry {
 public:
  explicit TenantRegistry(TenantConfig defaults) : defaults_(defaults) {}

  /// Pre-register (or re-limit) a tenant. Counters survive reconfiguration.
  void configure(TenantConfig cfg);

  /// Find-or-create with the registry defaults (id overridden).
  [[nodiscard]] TenantState& ensure(u32 tenant_id);
  /// nullptr when the tenant was never seen.
  [[nodiscard]] TenantState* find(u32 tenant_id);

  [[nodiscard]] std::vector<u32> ids() const;
  /// Sum of every tenant's snapshot — the aggregate ledger.
  [[nodiscard]] TenantSnapshot aggregate() const;

 private:
  TenantConfig defaults_;
  mutable std::mutex mu_;
  std::map<u32, std::unique_ptr<TenantState>> tenants_;
};

}  // namespace p5::server
