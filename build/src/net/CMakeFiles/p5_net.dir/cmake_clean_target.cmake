file(REMOVE_RECURSE
  "libp5_net.a"
)
