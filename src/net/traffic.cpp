#include "net/traffic.hpp"

#include "common/check.hpp"
#include "hdlc/accm.hpp"

namespace p5::net {

std::string to_string(PayloadPattern p) {
  switch (p) {
    case PayloadPattern::kUniformRandom: return "uniform";
    case PayloadPattern::kAscii: return "ascii";
    case PayloadPattern::kFlagDense: return "flag-dense";
    case PayloadPattern::kAllFlags: return "all-flags";
    case PayloadPattern::kIncrementing: return "incrementing";
  }
  return "?";
}

TrafficGenerator::TrafficGenerator(const TrafficSpec& spec) : spec_(spec), rng_(spec.seed) {
  P5_EXPECTS(spec.min_len >= kIpv4HeaderBytes);
  P5_EXPECTS(spec.min_len <= spec.max_len);
}

Bytes TrafficGenerator::payload(std::size_t len) {
  Bytes p;
  p.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    switch (spec_.pattern) {
      case PayloadPattern::kUniformRandom:
        p.push_back(rng_.byte());
        break;
      case PayloadPattern::kAscii:
        p.push_back(static_cast<u8>(rng_.range(0x20, 0x7A)));  // excludes 0x7D/0x7E
        break;
      case PayloadPattern::kFlagDense:
        if (rng_.chance(spec_.escape_density)) {
          p.push_back(rng_.chance(0.5) ? hdlc::kFlag : hdlc::kEscape);
        } else {
          // Non-escaping filler: avoid accidentally emitting flag/escape.
          u8 b = rng_.byte();
          while (b == hdlc::kFlag || b == hdlc::kEscape) b = rng_.byte();
          p.push_back(b);
        }
        break;
      case PayloadPattern::kAllFlags:
        p.push_back(hdlc::kFlag);
        break;
      case PayloadPattern::kIncrementing:
        p.push_back(counter_++);
        break;
    }
  }
  return p;
}

Bytes TrafficGenerator::next_datagram() {
  const std::size_t len = rng_.range(spec_.min_len, spec_.max_len);
  Ipv4Header hdr;
  hdr.identification = next_id_++;
  hdr.src = 0x0A000001;  // 10.0.0.1
  hdr.dst = 0x0A000002;  // 10.0.0.2
  return build_datagram(hdr, payload(len - kIpv4HeaderBytes));
}

Bytes ImixGenerator::next_datagram() {
  // 7:4:1 mix of 40/576/1500-byte datagrams (classic IMIX).
  const u64 pick = rng_.below(12);
  const std::size_t len = pick < 7 ? 40 : (pick < 11 ? 576 : 1500);
  Ipv4Header hdr;
  hdr.identification = next_id_++;
  hdr.src = 0x0A000001;
  hdr.dst = 0x0A000002;
  Bytes payload;
  payload.reserve(len - kIpv4HeaderBytes);
  for (std::size_t i = 0; i < len - kIpv4HeaderBytes; ++i) payload.push_back(rng_.byte());
  return build_datagram(hdr, payload);
}

Workload make_workload(const TrafficSpec& spec, std::size_t count) {
  TrafficGenerator gen(spec);
  Workload w;
  w.datagrams.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    w.datagrams.push_back(gen.next_datagram());
    w.total_bytes += w.datagrams.back().size();
  }
  return w;
}

}  // namespace p5::net
