file(REMOVE_RECURSE
  "CMakeFiles/test_mapos.dir/test_mapos.cpp.o"
  "CMakeFiles/test_mapos.dir/test_mapos.cpp.o.d"
  "test_mapos"
  "test_mapos.pdb"
  "test_mapos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
