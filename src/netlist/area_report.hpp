// Synthesis-style reporting: per-module LUT/FF/depth rows, device
// utilisation percentages and pre/post-layout fmax — formatted like the
// paper's Tables 1-3 so the bench output reads side-by-side with the paper.
#pragma once

#include <string>
#include <vector>

#include "netlist/device.hpp"
#include "netlist/lut_mapper.hpp"

namespace p5::netlist {

struct ModuleArea {
  std::string module;
  MapResult map;
};

class AreaReport {
 public:
  explicit AreaReport(std::string title) : title_(std::move(title)) {}

  void add(std::string module, const MapResult& map) {
    rows_.push_back(ModuleArea{std::move(module), map});
  }

  [[nodiscard]] std::size_t total_luts() const;
  [[nodiscard]] std::size_t total_ffs() const;
  /// Critical register-to-register path over all modules.
  [[nodiscard]] std::size_t critical_depth() const;

  /// Per-module breakdown table.
  [[nodiscard]] std::string module_table() const;

  /// The paper's table shape: one row per device with LUTs (util%),
  /// FFs (util%) and fmax, pre- and post-layout.
  [[nodiscard]] std::string device_table(const std::vector<Device>& devices) const;

 private:
  std::string title_;
  std::vector<ModuleArea> rows_;
};

}  // namespace p5::netlist
