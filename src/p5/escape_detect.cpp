#include "p5/escape_detect.hpp"

#include "common/check.hpp"
#include "hdlc/accm.hpp"

namespace p5::core {

EscapeDetect::EscapeDetect(std::string name, unsigned lanes, rtl::Fifo<rtl::Word>& in,
                           rtl::Fifo<rtl::Word>& out)
    : rtl::Module(std::move(name)), lanes_(lanes), in_(in), out_(out) {
  P5_EXPECTS(lanes >= 1 && lanes <= rtl::Word::kMaxLanes);
}

void EscapeDetect::eval() {
  ++stats_.cycles;
  const std::size_t capacity = queue_capacity();

  s1_next_ = s1_;
  s2_next_ = s2_;
  pending_next_ = pending_;
  queue_next_ = queue_;
  queue_sof_next_ = queue_sof_;
  draining_next_ = draining_eof_;
  abort_next_ = abort_at_eof_;

  // ---- emit compacted words ----
  const bool want_full = queue_.size() >= lanes_;
  const bool want_drain = draining_eof_;  // may flush an empty abort marker
  if ((want_full || (want_drain && true)) && out_.can_push()) {
    rtl::Word w;
    const std::size_t n = std::min<std::size_t>(lanes_, queue_next_.size());
    for (std::size_t i = 0; i < n; ++i) {
      w.push(queue_next_.front());
      queue_next_.pop_front();
    }
    if (want_full || want_drain) {
      w.sof = queue_sof_;
      queue_sof_next_ = false;
      if (draining_eof_ && queue_next_.empty()) {
        w.eof = true;
        w.abort = abort_at_eof_;
        if (abort_at_eof_) ++aborts_;
        abort_next_ = false;
        draining_next_ = false;
      }
      out_.push(w);
      stats_.busy_cycles++;
      stats_.bytes += w.count();
    }
  } else if (want_full || want_drain) {
    ++stats_.stall_cycles;
  } else if (!s1_.valid && !s2_.valid && queue_.empty()) {
    ++stats_.starve_cycles;
  }

  // ---- merge S2 (already destuffed+classified) into the queue ----
  bool accepted = false;
  if (s2_.valid && !draining_next_) {
    if (queue_next_.size() + s2_.word.count() <= capacity) {
      if (s2_.word.sof && queue_next_.empty()) queue_sof_next_ = true;
      for (std::size_t i = 0; i < s2_.word.count(); ++i)
        queue_next_.push_back(s2_.word.lane(i));
      if (s2_.word.eof) {
        draining_next_ = true;
        abort_next_ = s2_.word.abort;
      }
      accepted = true;
    }
  }

  // ---- handshake: S2 <- S1 <- input (destuff at the load point) ----
  const bool s2_can_load = !s2_.valid || accepted;
  if (s2_can_load) {
    if (s1_.valid) {
      s2_next_ = s1_;
      s1_next_.valid = false;
    } else if (accepted) {
      s2_next_.valid = false;
    }
  }
  if (!s1_next_.valid && in_.can_pop()) {
    const rtl::Word raw = in_.pop();
    rtl::Word kept;
    kept.sof = raw.sof;
    kept.eof = raw.eof;
    kept.abort = raw.abort;
    bool covered = pending_next_;
    bool marker = false;
    for (std::size_t i = 0; i < raw.count(); ++i) {
      const u8 octet = raw.lane(i);
      marker = false;
      if (covered) {
        kept.push(octet ^ hdlc::kXor);  // the escaped octet, restored
        covered = false;
      } else if (octet == hdlc::kEscape) {
        marker = true;
        covered = true;
        ++escapes_;
      } else {
        kept.push(octet);
      }
    }
    pending_next_ = covered;
    if (raw.eof) {
      // A dangling escape at end-of-frame aborts the frame (RFC 1662 §4.3).
      if (covered) kept.abort = true;
      pending_next_ = false;  // frame boundary resets transparency state
    }
    (void)marker;
    s1_next_.word = kept;
    s1_next_.valid = true;
  }
}

void EscapeDetect::commit() {
  s1_ = s1_next_;
  s2_ = s2_next_;
  pending_ = pending_next_;
  queue_ = std::move(queue_next_);
  queue_sof_ = queue_sof_next_;
  draining_eof_ = draining_next_;
  abort_at_eof_ = abort_next_;
  peak_occ_ = std::max(peak_occ_, queue_.size());
}

}  // namespace p5::core
