// FPGA device models for the four parts the paper targets.
//
// Capacities are the published 4-input LUT / flip-flop counts; delays are
// representative datasheet-class numbers for the quoted speed grades. The
// paper's Section 4 finding — identical 6-LUT critical path on Virtex and
// Virtex-II, with the speed-up coming purely from Virtex-II's smaller
// per-LUT (and routing) delay — is reproduced by construction: fmax is
// depth x (LUT delay + net delay), with a layout factor distinguishing
// pre-layout (trial-route estimate) from post-layout timing.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace p5::netlist {

struct Device {
  std::string name;
  std::size_t luts;        ///< 4-input LUT capacity
  std::size_t ffs;         ///< flip-flop capacity
  double lut_delay_ns;     ///< logic delay through one LUT
  double net_delay_pre_ns; ///< per-level interconnect estimate, pre-layout
  double net_delay_post_ns;///< per-level interconnect, after place & route

  [[nodiscard]] double fmax_mhz(std::size_t depth, bool post_layout) const {
    if (depth == 0) depth = 1;
    const double per_level =
        lut_delay_ns + (post_layout ? net_delay_post_ns : net_delay_pre_ns);
    return 1000.0 / (static_cast<double>(depth) * per_level);
  }
  [[nodiscard]] double lut_utilisation(std::size_t used) const {
    return 100.0 * static_cast<double>(used) / static_cast<double>(luts);
  }
  [[nodiscard]] double ff_utilisation(std::size_t used) const {
    return 100.0 * static_cast<double>(used) / static_cast<double>(ffs);
  }
};

/// Virtex XCV50 speed grade -4: 1,536 LUTs / 1,536 FFs.
[[nodiscard]] const Device& xcv50_4();
/// Virtex XCV600 speed grade -4: 13,824 LUTs / 13,824 FFs.
[[nodiscard]] const Device& xcv600_4();
/// Virtex-II XC2V40 speed grade -6: 512 LUTs / 512 FFs.
[[nodiscard]] const Device& xc2v40_6();
/// Virtex-II XC2V1000 speed grade -6: 10,240 LUTs / 10,240 FFs.
[[nodiscard]] const Device& xc2v1000_6();

[[nodiscard]] const std::vector<Device>& all_devices();

/// Clock required to carry `gbps` over a `datapath_bits`-wide bus.
[[nodiscard]] inline double required_clock_mhz(double gbps, unsigned datapath_bits) {
  return gbps * 1e3 / static_cast<double>(datapath_bits);
}

}  // namespace p5::netlist
