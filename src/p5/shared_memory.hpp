// Shared packet memory (paper Figure 2: the "Shared Memory" block between
// the host microprocessor and the Transmitter/Receiver).
//
// Datagrams are buffered here before transmission and after reception; the
// host and the datapath exchange them through two descriptor rings with a
// byte-budget pool per direction. The model accounts for exactly the things
// a driver author cares about: ring/pool exhaustion (post_tx fails, receive
// frames drop), occupancy high-water marks, and completion counts that feed
// the OAM's TxDone interrupt.
#pragma once

#include <deque>
#include <optional>

#include "common/types.hpp"
#include "p5/control.hpp"

namespace p5::core {

struct SharedMemoryConfig {
  std::size_t tx_pool_bytes = 64 * 1024;
  std::size_t rx_pool_bytes = 64 * 1024;
  std::size_t tx_ring_entries = 64;
  std::size_t rx_ring_entries = 64;
};

struct SharedMemoryStats {
  u64 tx_posted = 0;
  u64 tx_rejected = 0;   ///< pool or ring full at post time
  u64 tx_completed = 0;  ///< fetched by the transmitter
  u64 rx_stored = 0;
  u64 rx_dropped = 0;    ///< receive pool/ring full: frame lost (counted)
  u64 rx_reaped = 0;
  std::size_t tx_peak_bytes = 0;
  std::size_t rx_peak_bytes = 0;
};

class SharedMemory {
 public:
  explicit SharedMemory(const SharedMemoryConfig& cfg = SharedMemoryConfig()) : cfg_(cfg) {}

  // ---- host -> transmitter ----
  /// Queue a datagram for transmission; false when the pool/ring is full.
  [[nodiscard]] bool post_tx(TxRequest req);
  /// Would a post_tx of `payload_bytes` succeed right now? Lets callers that
  /// own their payload check before moving it in (post_tx consumes the
  /// request even when it rejects it).
  [[nodiscard]] bool tx_has_room(std::size_t payload_bytes) const {
    return tx_ring_.size() < cfg_.tx_ring_entries &&
           tx_bytes_ + payload_bytes <= cfg_.tx_pool_bytes;
  }
  /// Device side: take the next frame to transmit.
  [[nodiscard]] std::optional<TxRequest> fetch_tx();
  [[nodiscard]] std::size_t tx_pending() const { return tx_ring_.size(); }

  // ---- receiver -> host ----
  /// Device side: store a received frame; false (and counted) when full.
  bool store_rx(RxDelivery d);
  /// Host side: take the oldest received frame.
  [[nodiscard]] std::optional<RxDelivery> reap_rx();
  [[nodiscard]] std::size_t rx_pending() const { return rx_ring_.size(); }

  [[nodiscard]] const SharedMemoryStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t tx_bytes_used() const { return tx_bytes_; }
  [[nodiscard]] std::size_t rx_bytes_used() const { return rx_bytes_; }

 private:
  SharedMemoryConfig cfg_;
  std::deque<TxRequest> tx_ring_;
  std::deque<RxDelivery> rx_ring_;
  std::size_t tx_bytes_ = 0;
  std::size_t rx_bytes_ = 0;
  SharedMemoryStats stats_;
};

}  // namespace p5::core
