// Old-vs-new throughput of the word-parallel software fast path
// (src/fastpath) against the seed-era scalar reference paths preserved in
// fastpath/scalar_ref.hpp:
//
//   * CRC FCS-16/FCS-32: byte-at-a-time table loop vs slicing-by-8;
//   * HDLC stuffing/destuffing: octet loop vs SWAR scan + bulk copy;
//   * framing: encapsulate+stuff+copy (3 allocations) vs fused zero-alloc
//     encode_into;
//   * SONET scramblers: bit-serial loops vs table / byte-parallel stepping.
//
// Swept across escape densities {0, 1/128, 0.25, 1.0} and frame sizes
// {64 B, 1500 B, 9 KB}. Results go to stdout and to a machine-readable
// BENCH_softpath.json (format documented in README.md) so future PRs can
// track the perf trajectory.
//
// Usage: bench_softpath [--smoke] [--out <path>]
//   --smoke  tiny iteration counts (CI bit-rot check, label `bench`)
//   --out    JSON output path (default BENCH_softpath.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crc/crc_table.hpp"
#include "fastpath/scalar_ref.hpp"
#include "hdlc/frame.hpp"
#include "hdlc/stuffing.hpp"
#include "sonet/scrambler.hpp"

namespace p5::bench {
namespace {

struct Row {
  std::string kernel;        // e.g. "crc32", "stuff"
  std::size_t frame_bytes;   // payload size driven through the kernel
  double escape_density;     // fraction of escape-class octets in the input
  double old_mb_s;           // seed scalar path
  double new_mb_s;           // fastpath
  [[nodiscard]] double speedup() const { return old_mb_s > 0 ? new_mb_s / old_mb_s : 0.0; }
};

double g_min_seconds = 0.04;  // per window; --smoke drops it to ~0
int g_repeats = 3;            // best-of-N windows; --smoke drops to 1

/// Run `fn` (which processes `bytes_per_call` octets) in g_repeats timed
/// windows and return the best MB/s (1e6 bytes per second). Best-of-N damps
/// scheduler/frequency noise symmetrically for the old and new paths, so the
/// reported speedups are stable run to run.
double measure_mb_s(std::size_t bytes_per_call, const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  // Warm-up run (also wakes lazily-built tables).
  fn();
  double best = 0.0;
  for (int rep = 0; rep < g_repeats; ++rep) {
    u64 calls = 0;
    const auto start = clock::now();
    double elapsed = 0.0;
    do {
      fn();
      ++calls;
      elapsed = std::chrono::duration<double>(clock::now() - start).count();
    } while (elapsed < g_min_seconds);
    const double mb_s =
        static_cast<double>(calls) * static_cast<double>(bytes_per_call) / elapsed / 1e6;
    if (mb_s > best) best = mb_s;
  }
  return best;
}

void print_row(const Row& r) {
  std::printf("  %-12s %6zu B  density %-8.4g  old %9.1f MB/s  new %9.1f MB/s  %5.2fx\n",
              r.kernel.c_str(), r.frame_bytes, r.escape_density, r.old_mb_s, r.new_mb_s,
              r.speedup());
}

bool write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"softpath\",\n  \"unit\": \"MB/s\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"frame_bytes\": " << r.frame_bytes
        << ", \"escape_density\": " << r.escape_density << ", \"old_mb_s\": " << r.old_mb_s
        << ", \"new_mb_s\": " << r.new_mb_s << ", \"speedup\": " << r.speedup() << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

volatile u32 g_sink;  // defeat dead-code elimination without perturbing loops

}  // namespace

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_softpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  if (smoke) {
    g_min_seconds = 0.0;  // one timed call per window
    g_repeats = 1;
  }

  banner("bench_softpath — word-parallel software fast path, old vs new",
         "host-side acceleration (no paper artifact); mirrors the paper's 8->32-bit "
         "width-scaling idea in software");

  const fastpath::scalar::ByteTableCrc old_crc32(crc::kFcs32);
  const fastpath::scalar::ByteTableCrc old_crc16(crc::kFcs16);
  const std::size_t sizes[] = {64, 1500, 9216};
  const double densities[] = {0.0, 1.0 / 128, 0.25, 1.0};
  std::vector<Row> rows;

  for (const std::size_t size : sizes) {
    for (const double density : densities) {
      const Bytes payload = density_payload(size, density, 42);
      const Bytes stuffed = hdlc::stuff(payload);

      // --- CRC (input-independent of density, but swept uniformly so every
      // row of the JSON has the same shape) ---
      rows.push_back({"crc32", size, density,
                      measure_mb_s(size, [&] { g_sink = old_crc32.crc(payload); }),
                      measure_mb_s(size, [&] { g_sink = crc::fcs32().crc(payload); })});
      rows.push_back({"crc16", size, density,
                      measure_mb_s(size, [&] { g_sink = old_crc16.crc(payload); }),
                      measure_mb_s(size, [&] { g_sink = crc::fcs16().crc(payload); })});

      // --- stuffing (throughput in *input* octets) ---
      rows.push_back({"stuff", size, density,
                      measure_mb_s(size, [&] { g_sink = static_cast<u32>(
                                                   fastpath::scalar::stuff(payload).size()); }),
                      measure_mb_s(size, [&] { g_sink = static_cast<u32>(
                                                   hdlc::stuff(payload).size()); })});
      rows.push_back({"destuff", stuffed.size(), density,
                      measure_mb_s(stuffed.size(),
                                   [&] { g_sink = static_cast<u32>(
                                             fastpath::scalar::destuff(stuffed).first.size()); }),
                      measure_mb_s(stuffed.size(), [&] { g_sink = static_cast<u32>(
                                                             hdlc::destuff(stuffed).data.size()); })});

      // --- full framer: seed three-buffer path vs fused zero-alloc path ---
      hdlc::FrameConfig cfg;
      cfg.max_payload = 9216;
      hdlc::FrameArena arena;
      rows.push_back(
          {"frame", size, density,
           measure_mb_s(size,
                        [&] {
                          const Bytes content = hdlc::encapsulate(cfg, 0x0021, payload);
                          Bytes wire;
                          wire.reserve(content.size() + 16);
                          wire.push_back(hdlc::kFlag);
                          const Bytes st = fastpath::scalar::stuff(content, cfg.accm);
                          append(wire, st);
                          wire.push_back(hdlc::kFlag);
                          g_sink = static_cast<u32>(wire.size());
                        }),
           measure_mb_s(size, [&] {
             g_sink = static_cast<u32>(hdlc::encode_into(arena, cfg, 0x0021, payload).size());
           })});
    }

    // --- scramblers (density-independent: one row per size) ---
    Bytes buf = density_payload(size, 0.0, 7);
    u8 lfsr = 0x7F;
    sonet::FrameScrambler frame_scr;
    rows.push_back({"scramble_x7", size, 0.0,
                    measure_mb_s(size,
                                 [&] {
                                   for (u8& b : buf)
                                     b ^= fastpath::scalar::frame_keystream_bitserial(lfsr);
                                 }),
                    measure_mb_s(size, [&] { frame_scr.apply(buf, 0, buf.size()); })});
    u64 hist = 0;
    sonet::SelfSyncScrambler43 selfsync;
    rows.push_back({"scramble_x43", size, 0.0,
                    measure_mb_s(size,
                                 [&] {
                                   for (u8& b : buf)
                                     b = fastpath::scalar::selfsync_scramble_bitserial(hist, b);
                                 }),
                    measure_mb_s(size, [&] { selfsync.scramble_in_place(buf); })});
  }

  for (const Row& r : rows) print_row(r);
  if (!write_json(rows, out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)%s\n", out_path.c_str(), rows.size(),
              smoke ? " [smoke mode: timings are not meaningful]" : "");

  // Headline numbers the acceptance criteria track: 1500 B at density 1/128.
  for (const Row& r : rows)
    if (r.frame_bytes == 1500 && r.escape_density > 0.0 && r.escape_density < 0.01 &&
        (r.kernel == "crc32" || r.kernel == "stuff"))
      we_measure(r.kernel + " speedup at 1500 B, density 1/128: " +
                 std::to_string(r.speedup()) + "x");
  return 0;
}

}  // namespace p5::bench

int main(int argc, char** argv) { return p5::bench::run(argc, argv); }
