// linecard::LineCard — the multi-channel runtime.
//
//  * Determinism: a 4-channel line card driven single-threaded via step()
//    delivers, per channel, byte-identical frames to four independently-run
//    P5SonetLink instances fed the same payloads (the acceptance criterion).
//  * MAPOS fabric: NSP address assignment, uplink aggregation, hairpin
//    channel-to-channel switching, fabric statistics.
//  * Telemetry: per-channel counters, aggregate roll-up, backpressure
//    stalls, high-water marks.
//  * Threaded mode: workers + fabric thread deliver everything exactly once
//    with clean start/stop (run under -fsanitize=thread to prove racefree).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "linecard/linecard.hpp"
#include "net/mapos.hpp"
#include "testing/fault.hpp"

namespace p5::linecard {
namespace {

/// Mixed traffic: mostly random octets with a sprinkling of flags/escapes so
/// stuffing and delineation actually work for a living.
Bytes test_payload(Xoshiro256& rng, std::size_t len) {
  Bytes p;
  p.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (rng.chance(0.08))
      p.push_back(rng.chance(0.5) ? u8{0x7E} : u8{0x7D});
    else
      p.push_back(rng.byte());
  }
  return p;
}

std::vector<std::vector<Bytes>> make_traffic(unsigned channels, std::size_t frames, u64 seed) {
  std::vector<std::vector<Bytes>> traffic(channels);
  for (unsigned c = 0; c < channels; ++c) {
    Xoshiro256 rng(seed + c);
    for (std::size_t f = 0; f < frames; ++f)
      traffic[c].push_back(test_payload(rng, rng.range(40, 1500)));
  }
  return traffic;
}

/// Reference drive: one standalone P5SonetLink fed the same payloads the
/// line-card channel gets, pumped until everything is delivered.
std::vector<Bytes> drive_standalone(const ChannelConfig& cc, const std::vector<Bytes>& payloads) {
  core::P5SonetLink link(cc.p5, cc.sts, cc.line);
  for (const Bytes& p : payloads) EXPECT_TRUE(link.a().submit_datagram(0x0021, p));
  std::vector<Bytes> out;
  for (int guard = 0; guard < 10000 && out.size() < payloads.size(); ++guard) {
    link.exchange_frames(1);
    while (auto d = link.b().reap_datagram()) out.push_back(std::move(d->payload));
  }
  return out;
}

TEST(LineCard, NspAssignsThePortAddresses) {
  LineCardConfig cfg;
  cfg.channels = 3;
  LineCard lc(cfg);
  for (unsigned i = 0; i < 3; ++i)
    EXPECT_EQ(lc.channel_address(i), net::mapos_port_address(i)) << "channel " << i;
  EXPECT_EQ(lc.uplink_address(), net::mapos_port_address(3));
  EXPECT_EQ(lc.fabric_stats().nsp_assignments, 4u);
}

TEST(LineCard, DeterministicStepMatchesStandaloneLinksByteForByte) {
  constexpr unsigned kChannels = 4;
  constexpr std::size_t kFrames = 8;
  const auto traffic = make_traffic(kChannels, kFrames, 1234);

  LineCardConfig cfg;
  cfg.channels = kChannels;
  LineCard lc(cfg);

  std::vector<std::vector<Bytes>> uplinked(kChannels);
  lc.set_uplink_sink([&](unsigned ch, const net::MaposNode::Received& r) {
    EXPECT_EQ(r.protocol, 0x0021);
    uplinked[ch].push_back(r.payload);
  });

  for (unsigned c = 0; c < kChannels; ++c)
    for (const Bytes& p : traffic[c]) {
      FrameDesc d;
      d.payload = p;
      ASSERT_TRUE(lc.inject(c, std::move(d)));
    }

  const u64 steps = lc.run_until_idle();
  EXPECT_GT(steps, kFrames);  // really did run the round-robin schedule

  for (unsigned c = 0; c < kChannels; ++c) {
    // The line card must deliver exactly what an independently-run link
    // with the same config (and the same per-channel line seed) delivers.
    ChannelConfig cc = cfg.channel;
    cc.line.seed = cfg.channel.line.seed + 2ull * c;
    const auto reference = drive_standalone(cc, traffic[c]);
    ASSERT_EQ(reference.size(), kFrames) << "standalone link did not deliver, channel " << c;
    ASSERT_EQ(uplinked[c].size(), kFrames) << "line card did not deliver, channel " << c;
    for (std::size_t f = 0; f < kFrames; ++f)
      EXPECT_EQ(uplinked[c][f], reference[f]) << "channel " << c << " frame " << f;
  }

  // Determinism across runs: a second identical line card produces the
  // identical uplink stream.
  LineCard lc2(cfg);
  std::vector<std::vector<Bytes>> uplinked2(kChannels);
  lc2.set_uplink_sink([&](unsigned ch, const net::MaposNode::Received& r) {
    uplinked2[ch].push_back(r.payload);
  });
  for (unsigned c = 0; c < kChannels; ++c)
    for (const Bytes& p : traffic[c]) {
      FrameDesc d;
      d.payload = p;
      ASSERT_TRUE(lc2.inject(c, std::move(d)));
    }
  (void)lc2.run_until_idle();
  EXPECT_EQ(uplinked2, uplinked);
}

TEST(LineCard, TelemetryCountsEveryFrameAndByte) {
  constexpr unsigned kChannels = 2;
  constexpr std::size_t kFrames = 6;
  const auto traffic = make_traffic(kChannels, kFrames, 77);

  LineCardConfig cfg;
  cfg.channels = kChannels;
  LineCard lc(cfg);
  lc.set_uplink_sink([](unsigned, const net::MaposNode::Received&) {});

  std::vector<u64> bytes(kChannels, 0);
  for (unsigned c = 0; c < kChannels; ++c)
    for (const Bytes& p : traffic[c]) {
      bytes[c] += p.size();
      FrameDesc d;
      d.payload = p;
      ASSERT_TRUE(lc.inject(c, std::move(d)));
    }
  (void)lc.run_until_idle();

  for (unsigned c = 0; c < kChannels; ++c) {
    const ChannelSnapshot s = lc.telemetry().snapshot(c);
    EXPECT_EQ(s.frames_in, kFrames);
    EXPECT_EQ(s.frames_out, kFrames);
    EXPECT_EQ(s.bytes_in, bytes[c]);
    EXPECT_EQ(s.bytes_out, bytes[c]);
    EXPECT_EQ(s.fcs_errors, 0u);
    EXPECT_GE(s.ingress_hwm, 1u);  // frames were queued ahead of the link
  }
  const ChannelSnapshot agg = lc.telemetry().aggregate();
  EXPECT_EQ(agg.frames_out, kChannels * kFrames);
  EXPECT_EQ(agg.bytes_out, bytes[0] + bytes[1]);

  // Every uplink frame crossed the fabric as a unicast forward.
  EXPECT_EQ(lc.fabric_stats().frames_forwarded, kChannels * kFrames);
  EXPECT_EQ(lc.fabric_stats().fcs_dropped, 0u);
}

TEST(LineCard, HairpinSwitchesBetweenChannels) {
  // A frame injected on channel 0 addressed to channel 1's MAPOS address
  // must traverse channel 0's link, cross the fabric, traverse channel 1's
  // link, and only then reach the uplink tagged as channel 1.
  LineCardConfig cfg;
  cfg.channels = 2;
  LineCard lc(cfg);

  std::vector<std::pair<unsigned, Bytes>> uplinked;
  lc.set_uplink_sink([&](unsigned ch, const net::MaposNode::Received& r) {
    uplinked.emplace_back(ch, r.payload);
  });

  Xoshiro256 rng(5);
  const Bytes payload = test_payload(rng, 256);
  FrameDesc d;
  d.fabric_dest = lc.channel_address(1);
  d.payload = payload;
  ASSERT_TRUE(lc.inject(0, std::move(d)));
  (void)lc.run_until_idle();

  ASSERT_EQ(uplinked.size(), 1u);
  EXPECT_EQ(uplinked[0].first, 1u);  // emerged from channel 1
  EXPECT_EQ(uplinked[0].second, payload);
  EXPECT_EQ(lc.telemetry().snapshot(0).frames_out, 1u);
  EXPECT_EQ(lc.telemetry().snapshot(1).frames_in, 1u);
  EXPECT_EQ(lc.fabric_stats().frames_forwarded, 2u);  // ch0->ch1, ch1->uplink
}

TEST(LineCard, SourceRingBackpressureIsCountedAndNonDestructive) {
  LineCardConfig cfg;
  cfg.channels = 1;
  cfg.channel.ring_capacity = 4;
  LineCard lc(cfg);
  lc.set_uplink_sink([](unsigned, const net::MaposNode::Received&) {});

  Xoshiro256 rng(9);
  unsigned accepted = 0;
  for (int i = 0; i < 6; ++i) {
    FrameDesc d;
    d.payload = test_payload(rng, 64);
    if (lc.inject(0, std::move(d))) ++accepted;
  }
  EXPECT_EQ(accepted, 4u);  // ring capacity
  EXPECT_GE(lc.telemetry().snapshot(0).ring_full_stalls, 2u);

  (void)lc.run_until_idle();
  EXPECT_EQ(lc.telemetry().snapshot(0).frames_out, 4u);  // accepted frames all arrive
}

TEST(Channel, EgressSpillKeepsOrderWhenFabricLags) {
  // Drive a Channel directly and let its egress ring (capacity 2) overflow
  // by not draining it: deliveries must spill, count stalls, and drain in
  // order once the consumer catches up.
  ChannelTelemetry tel;
  ChannelConfig cc;
  cc.ring_capacity = 2;
  Channel ch(0, cc, tel);

  constexpr std::size_t kFrames = 5;
  std::size_t fed = 0;
  for (int guard = 0; guard < 5000 && tel.snapshot().frames_out < kFrames; ++guard) {
    if (fed < kFrames) {
      FrameDesc d;
      d.payload = Bytes{static_cast<u8>(fed), 1, 2, 3};
      if (ch.source_ring().try_push(std::move(d))) ++fed;
    }
    ch.step();
  }
  ASSERT_EQ(tel.snapshot().frames_out, kFrames);
  EXPECT_GE(tel.snapshot().ring_full_stalls, 1u);  // the spill engaged
  EXPECT_GE(tel.snapshot().egress_hwm, 3u);        // beyond the ring's capacity

  std::vector<u8> order;
  for (int guard = 0; guard < 100 && order.size() < kFrames; ++guard) {
    while (auto d = ch.egress_ring().try_pop()) order.push_back(d->payload[0]);
    ch.step();  // flushes the spill into the freed slots
  }
  ASSERT_EQ(order.size(), kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) EXPECT_EQ(order[i], i);
}

TEST(LineCard, LossAccountingIsExactUnderFaultyLines) {
  // Four tributaries, each with a seeded FaultyLine on its A->B optical
  // direction. Whatever the line eats, the telemetry must account for every
  // single non-delivered descriptor: at idle, frames_in == frames_out +
  // frames_lost per channel — no double count, no leak — and every frame
  // that does reach the uplink is byte-identical to one that was injected.
  constexpr unsigned kChannels = 4;
  constexpr std::size_t kFrames = 30;
  const auto traffic = make_traffic(kChannels, kFrames, 20260806);

  LineCardConfig cfg;
  cfg.channels = kChannels;
  cfg.channel.ring_capacity = 64;
  LineCard lc(cfg);

  // Taps go in before any traffic moves; each direction gets its own
  // stateful FaultyLine (kept alive in this scope for the stats read-back).
  std::vector<std::unique_ptr<testing::FaultyLine>> lines;
  for (unsigned c = 0; c < kChannels; ++c) {
    testing::FaultSpec spec = testing::FaultSpec::ber(3e-5, 0x10C0 + c);
    spec.slip_delete_rate = 0.02;  // occasional pointer-style byte slip
    lines.push_back(std::make_unique<testing::FaultyLine>(spec));
    lc.channel(c).link().set_line_tap(
        [line = lines.back().get()](Bytes& b) { line->apply(b); }, {});
  }

  std::vector<u64> uplinked(kChannels, 0);
  lc.set_uplink_sink([&](unsigned ch, const net::MaposNode::Received& r) {
    ++uplinked[ch];
    // No silent corruption through the fabric either: the payload must be
    // one of the frames injected on that channel.
    EXPECT_NE(std::find(traffic[ch].begin(), traffic[ch].end(), r.payload), traffic[ch].end())
        << "channel " << ch << " delivered a payload that was never injected";
  });

  for (unsigned c = 0; c < kChannels; ++c)
    for (const Bytes& p : traffic[c]) {
      FrameDesc d;
      d.payload = p;
      ASSERT_TRUE(lc.inject(c, std::move(d)));
    }
  (void)lc.run_until_idle();

  u64 total_lost = 0;
  for (unsigned c = 0; c < kChannels; ++c) {
    const ChannelSnapshot s = lc.telemetry().snapshot(c);
    EXPECT_EQ(s.frames_in, kFrames) << "channel " << c;
    EXPECT_EQ(s.frames_out, uplinked[c]) << "channel " << c;
    // The exact-accounting invariant.
    EXPECT_EQ(s.frames_in, s.frames_out + s.frames_lost)
        << "channel " << c << ": " << s.frames_out << " delivered + " << s.frames_lost
        << " written off != " << s.frames_in << " admitted";
    EXPECT_GT(lines[c]->stats().events(), 0u) << "channel " << c << " line was never noisy";
    total_lost += s.frames_lost;
  }

  const ChannelSnapshot agg = lc.telemetry().aggregate();
  EXPECT_EQ(agg.frames_in, u64{kChannels} * kFrames);
  EXPECT_EQ(agg.frames_in, agg.frames_out + agg.frames_lost);
  EXPECT_EQ(agg.frames_lost, total_lost);
  // With these seeds the noise really bites — and the card still delivers.
  EXPECT_GT(agg.frames_lost, 0u) << "fault injection never cost a frame; raise the BER";
  EXPECT_GT(agg.frames_out, 0u) << "the card delivered nothing at all";
}

TEST(LineCard, ThreadedModeDeliversEverythingExactlyOnce) {
  constexpr unsigned kChannels = 4;
  constexpr std::size_t kFrames = 24;
  const auto traffic = make_traffic(kChannels, kFrames, 4321);

  LineCardConfig cfg;
  cfg.channels = kChannels;
  cfg.channel.ring_capacity = 8;  // force real backpressure on the sources
  LineCard lc(cfg);

  std::atomic<u64> received{0};
  std::vector<u64> frames_per_channel(kChannels, 0);  // fabric thread only
  std::vector<u64> bytes_per_channel(kChannels, 0);
  lc.set_uplink_sink([&](unsigned ch, const net::MaposNode::Received& r) {
    ++frames_per_channel[ch];
    bytes_per_channel[ch] += r.payload.size();
    received.fetch_add(1, std::memory_order_release);
  });

  lc.start();
  EXPECT_TRUE(lc.running());
  // Feed all channels from this thread (the single source producer),
  // blocking when a ring fills.
  for (std::size_t f = 0; f < kFrames; ++f)
    for (unsigned c = 0; c < kChannels; ++c) {
      FrameDesc d;
      d.payload = traffic[c][f];
      lc.inject_blocking(c, std::move(d));
    }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (received.load(std::memory_order_acquire) < kChannels * kFrames &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  lc.stop();
  EXPECT_FALSE(lc.running());

  ASSERT_EQ(received.load(), kChannels * kFrames) << "timed out waiting for deliveries";
  u64 expected_bytes = 0, counted_bytes = 0;
  for (unsigned c = 0; c < kChannels; ++c) {
    EXPECT_EQ(frames_per_channel[c], kFrames) << "channel " << c;
    const ChannelSnapshot s = lc.telemetry().snapshot(c);
    EXPECT_EQ(s.frames_in, kFrames);
    EXPECT_EQ(s.frames_out, kFrames);
    EXPECT_EQ(s.fcs_errors, 0u);
    for (const Bytes& p : traffic[c]) expected_bytes += p.size();
    counted_bytes += bytes_per_channel[c];
  }
  EXPECT_EQ(counted_bytes, expected_bytes);
  EXPECT_EQ(lc.telemetry().aggregate().frames_out, kChannels * kFrames);

  // Idempotent / clean restart after a full stop.
  lc.start();
  lc.stop();
}

}  // namespace
}  // namespace p5::linecard
