file(REMOVE_RECURSE
  "CMakeFiles/p5_sonet.dir/line.cpp.o"
  "CMakeFiles/p5_sonet.dir/line.cpp.o.d"
  "CMakeFiles/p5_sonet.dir/pointer.cpp.o"
  "CMakeFiles/p5_sonet.dir/pointer.cpp.o.d"
  "CMakeFiles/p5_sonet.dir/scrambler.cpp.o"
  "CMakeFiles/p5_sonet.dir/scrambler.cpp.o.d"
  "CMakeFiles/p5_sonet.dir/spe.cpp.o"
  "CMakeFiles/p5_sonet.dir/spe.cpp.o.d"
  "libp5_sonet.a"
  "libp5_sonet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5_sonet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
