# Empty compiler generated dependencies file for reliable_wireless.
# This may be replaced when dependencies are built.
