// Tests for the shared substrate: byte helpers, PRNG, contract checks,
// hex dumps, and the two-phase FIFO / simulator kernel.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/hexdump.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "rtl/fifo.hpp"
#include "rtl/simulator.hpp"
#include "rtl/word.hpp"

namespace p5 {
namespace {

TEST(Types, BigEndianRoundTrip) {
  Bytes b;
  put_be16(b, 0xC021);
  put_be32(b, 0xDEADBEEF);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(get_be16(b, 0), 0xC021);
  EXPECT_EQ(get_be32(b, 2), 0xDEADBEEFu);
}

TEST(Types, LittleEndian32) {
  Bytes b;
  put_le32(b, 0x11223344);
  EXPECT_EQ(b[0], 0x44);
  EXPECT_EQ(b[3], 0x11);
  EXPECT_EQ(get_le32(b, 0), 0x11223344u);
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, RangeBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Xoshiro256 rng(123);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Check, ExpectsThrowsOnViolation) {
  EXPECT_THROW(P5_EXPECTS(false), ContractViolation);
  EXPECT_NO_THROW(P5_EXPECTS(true));
}

TEST(Hexdump, LineFormat) {
  const Bytes b{0x7E, 0xFF, 0x03};
  EXPECT_EQ(hex_line(b), "7e ff 03");
}

TEST(Hexdump, LineCap) {
  const Bytes b{1, 2, 3, 4, 5};
  EXPECT_EQ(hex_line(b, 2), "01 02 ...");
}

TEST(Hexdump, DumpContainsAscii) {
  const Bytes b{'H', 'i', 0x00};
  const std::string d = hex_dump(b);
  EXPECT_NE(d.find("|Hi.|"), std::string::npos);
}

// ---- rtl kernel ----

TEST(Word, PushAndFlags) {
  rtl::Word w;
  w.push(0x11);
  w.push(0x22);
  w.sof = true;
  EXPECT_EQ(w.count(), 2u);
  EXPECT_EQ(w.lane(0), 0x11);
  EXPECT_EQ(w.lane(1), 0x22);
  EXPECT_NE(w.to_string().find("SOF"), std::string::npos);
}

TEST(Word, OfRejectsOversize) {
  Bytes big(rtl::Word::kMaxLanes + 1, 0);
  EXPECT_THROW((void)rtl::Word::of(big), ContractViolation);
}

TEST(Word, Equality) {
  rtl::Word a = rtl::Word::of(Bytes{1, 2});
  rtl::Word b = rtl::Word::of(Bytes{1, 2});
  EXPECT_EQ(a, b);
  b.eof = true;
  EXPECT_FALSE(a == b);
}

TEST(Fifo, PushPopWithinCycle) {
  rtl::Fifo<int> f("f", 2);
  EXPECT_TRUE(f.can_push());
  f.push(1);
  EXPECT_TRUE(f.empty());  // not visible until commit
  f.commit();
  ASSERT_TRUE(f.can_pop());
  EXPECT_EQ(f.front(), 1);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_FALSE(f.can_pop());  // pending pop hides the item
  f.commit();
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, FlowThroughCapacityOne) {
  // Consumer pops then producer pushes in the same cycle: a capacity-1 FIFO
  // sustains one token per cycle.
  rtl::Fifo<int> f("f", 1);
  f.push(0);
  f.commit();
  for (int cycle = 1; cycle < 10; ++cycle) {
    ASSERT_TRUE(f.can_pop());
    EXPECT_EQ(f.pop(), cycle - 1);
    ASSERT_TRUE(f.can_push());  // space freed by the pending pop
    f.push(cycle);
    f.commit();
  }
}

TEST(Fifo, CapacityRespectedWithoutPop) {
  rtl::Fifo<int> f("f", 1);
  f.push(1);
  f.commit();
  EXPECT_FALSE(f.can_push());
}

TEST(Fifo, PeakOccupancyTracked) {
  rtl::Fifo<int> f("f", 4);
  f.push(1);
  f.push(2);
  f.push(3);
  f.commit();
  EXPECT_EQ(f.peak_occupancy(), 3u);
  (void)f.pop();
  f.commit();
  EXPECT_EQ(f.peak_occupancy(), 3u);
  EXPECT_EQ(f.total_pushed(), 3u);
}

class CounterModule final : public rtl::Module {
 public:
  explicit CounterModule(rtl::Fifo<int>& out) : rtl::Module("counter"), out_(out) {}
  void eval() override {
    if (out_.can_push()) out_.push(n_);
  }
  void commit() override { ++n_; }

 private:
  rtl::Fifo<int>& out_;
  int n_ = 0;
};

TEST(Simulator, ModulesAndChannelsCommitTogether) {
  rtl::Fifo<int> ch("ch", 8);
  CounterModule m(ch);
  rtl::Simulator sim;
  sim.add(m);
  sim.add_channel(ch);
  sim.run(5);
  EXPECT_EQ(sim.cycle(), 5u);
  EXPECT_EQ(ch.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ch.pop(), i);
}

TEST(Simulator, RunUntilPredicate) {
  rtl::Fifo<int> ch("ch", 100);
  CounterModule m(ch);
  rtl::Simulator sim;
  sim.add(m);
  sim.add_channel(ch);
  const u64 cycles = sim.run_until([&] { return ch.size() >= 3; }, 1000);
  EXPECT_EQ(cycles, 3u);
}

}  // namespace
}  // namespace p5
