// Structural building blocks over Netlist: buses, comparators, adders,
// priority logic, barrel shifters — the vocabulary the P5 circuit generators
// (src/netlist/circuits) are written in.
#pragma once

#include <functional>
#include <vector>

#include "netlist/netlist.hpp"

namespace p5::netlist {

/// A multi-bit signal, LSB first.
using Bus = std::vector<NodeId>;

class Builder {
 public:
  explicit Builder(Netlist& nl) : nl_(nl) {}

  [[nodiscard]] Netlist& netlist() { return nl_; }

  // ---- sources ----
  [[nodiscard]] Bus input_bus(const std::string& prefix, std::size_t bits);
  [[nodiscard]] Bus constant_bus(u64 value, std::size_t bits);
  [[nodiscard]] Bus dff_bus(std::size_t bits);  ///< D inputs wired later

  // ---- wiring ----
  void wire_dff_bus(const Bus& dffs, const Bus& d);
  void output_bus(const Bus& bus, const std::string& prefix);

  // ---- balanced trees ----
  [[nodiscard]] NodeId reduce_and(const Bus& bits);
  [[nodiscard]] NodeId reduce_or(const Bus& bits);
  [[nodiscard]] NodeId reduce_xor(const Bus& bits);

  // ---- bitwise ----
  [[nodiscard]] Bus bitwise_xor(const Bus& a, const Bus& b);
  [[nodiscard]] Bus bitwise_and(const Bus& a, NodeId enable);
  [[nodiscard]] Bus mux_bus(NodeId sel, const Bus& when0, const Bus& when1);
  /// N-way one-hot mux: exactly one select should be high.
  [[nodiscard]] Bus onehot_mux(const std::vector<NodeId>& selects,
                               const std::vector<Bus>& choices);

  // ---- truth-table synthesis (two-level SOP) ----
  /// Arbitrary single-output function of a small bus (<= 8 inputs), built as
  /// a sum-of-products — the two-level form any function of <= K inputs
  /// collapses into one K-LUT under mapping. `fn` receives the input value.
  [[nodiscard]] NodeId table_fn(const Bus& in, const std::function<bool(u64)>& fn);
  /// Multi-output variant: bit b of the result is table_fn of (fn(v)>>b)&1.
  [[nodiscard]] Bus table_bus(const Bus& in, const std::function<u64(u64)>& fn,
                              std::size_t out_bits);

  // ---- comparison / arithmetic ----
  /// bus == constant (combinational equality comparator).
  [[nodiscard]] NodeId eq_const(const Bus& bus, u64 value);
  /// a == b.
  [[nodiscard]] NodeId eq_bus(const Bus& a, const Bus& b);
  /// Ripple-carry a + b (+ carry-in), result width = max + 1 unless trimmed.
  [[nodiscard]] Bus add(const Bus& a, const Bus& b, NodeId carry_in = kInvalidNode);
  /// Increment by a 1-bit amount (bus + bit).
  [[nodiscard]] Bus add_bit(const Bus& a, NodeId bit);
  /// a >= constant (unsigned).
  [[nodiscard]] NodeId ge_const(const Bus& bus, u64 value);
  /// Population count of the given bits as a small bus.
  [[nodiscard]] Bus popcount(const Bus& bits);

  // ---- selection networks ----
  /// Right-rotate `lanes` (a vector of equal-width buses) by `amount`
  /// (a log2(lanes)-bit bus): the byte-sorter's routing crossbar.
  [[nodiscard]] std::vector<Bus> rotate_lanes(const std::vector<Bus>& lanes, const Bus& amount);

  /// Priority encoder: index of the lowest set bit (valid = any set).
  struct Priority {
    Bus index;
    NodeId valid;
  };
  [[nodiscard]] Priority priority_encode(const Bus& bits);

 private:
  Netlist& nl_;
};

}  // namespace p5::netlist
