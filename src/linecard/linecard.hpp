// The multi-channel line-card runtime: N independent P5 <-> SDH/SONET
// tributaries stitched together by a MAPOS frame switch (RFC 2171) acting as
// the card's fabric, with one extra switch port as the uplink.
//
//   source rings -> [Channel 0..N-1: P5(A) ~SONET~ P5(B)] -> egress rings
//                          ^                                     |
//                          |          MAPOS fabric               v
//                    fabric rings <- (switch, NSP) <- zero-alloc re-frame
//                                        |
//                                     uplink sink
//
// Frames delivered by a channel are re-framed (via the channel's FrameArena,
// so the hot path allocates nothing) and switched by MAPOS destination
// address: the default destination is the uplink port (aggregation, the
// line-card's normal job), but a descriptor can carry another channel's
// NSP-assigned address for hairpin channel-to-channel switching.
//
// Two execution modes, same data path:
//   * deterministic — step() runs every channel then one fabric round on the
//     calling thread, in a fixed order; runs are byte-exact reproducible and
//     each channel delivers exactly what a standalone P5SonetLink would.
//   * threaded — start() spawns one worker per channel plus a fabric thread;
//     every inter-thread edge is an SPSC ring, the MAPOS switch and all
//     FrameArenas are touched only by the fabric thread, and telemetry is
//     lock-free atomics. stop() joins everything cleanly.
//
// Thread contract: inject() has one producer (the caller's thread);
// set_uplink_sink() must be called before start(); the sink runs in the
// fabric context (fabric thread in threaded mode, the step() caller in
// deterministic mode).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "linecard/channel.hpp"
#include "linecard/telemetry.hpp"
#include "net/mapos.hpp"

namespace p5::linecard {

struct LineCardConfig {
  unsigned channels = 4;
  /// Per-channel template; channel i's optical line runs with
  /// `channel.line.seed + 2*i` so tributaries see independent noise.
  ChannelConfig channel;
  /// Max egress descriptors forwarded per channel per fabric round (keeps
  /// one noisy channel from starving the others' fabric service).
  std::size_t fabric_burst = 64;
};

class LineCard {
 public:
  explicit LineCard(const LineCardConfig& cfg);
  ~LineCard();
  LineCard(const LineCard&) = delete;
  LineCard& operator=(const LineCard&) = delete;

  [[nodiscard]] unsigned channels() const { return static_cast<unsigned>(channels_.size()); }
  [[nodiscard]] Channel& channel(unsigned i) { return *channels_[i]; }
  [[nodiscard]] Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const net::MaposSwitchStats& fabric_stats() const { return fabric_.stats(); }

  /// NSP-assigned MAPOS unicast address of tributary i / the uplink port.
  [[nodiscard]] u8 channel_address(unsigned i) const;
  [[nodiscard]] u8 uplink_address() const;

  /// Called for every frame that reaches the uplink port; `channel` is the
  /// tributary it emerged from. Runs in the fabric context — set before
  /// start().
  void set_uplink_sink(std::function<void(unsigned channel, const net::MaposNode::Received&)> s) {
    uplink_sink_ = std::move(s);
  }

  /// Offer a descriptor to channel `ch`'s source ring (non-blocking; false
  /// and a counted stall when the ring is full). Single producer: call from
  /// one thread only.
  [[nodiscard]] bool inject(unsigned ch, FrameDesc d);
  /// Blocking variant (spins until the worker frees a slot).
  void inject_blocking(unsigned ch, FrameDesc d);

  // ---- deterministic single-threaded mode ----
  /// One round: each channel's step() in index order, then one fabric round.
  /// Must not be called while threaded mode is running.
  bool step();
  /// step() until a full round does no work, up to `max_steps`; returns the
  /// number of rounds executed.
  u64 run_until_idle(u64 max_steps = 1'000'000);

  // ---- threaded mode ----
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  std::size_t fabric_round();
  void worker_main(unsigned i);
  void fabric_main();

  LineCardConfig cfg_;
  Telemetry telemetry_;
  net::MaposSwitch fabric_;  ///< ports 0..N-1 = tributaries, port N = uplink
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<net::MaposNode>> nodes_;  ///< fabric-side per channel
  std::unique_ptr<net::MaposNode> uplink_;
  std::function<void(unsigned, const net::MaposNode::Received&)> uplink_sink_;
  unsigned fabric_current_channel_ = 0;  ///< fabric context only
  // Reusable burst scratch (fabric context only): descriptors popped this
  // round and their BatchFrame views; capacity stabilises after one burst.
  std::vector<FrameDesc> fabric_batch_;
  std::vector<hdlc::BatchFrame> fabric_batch_frames_;

  std::atomic<bool> running_{false};
  std::vector<std::thread> workers_;
  std::thread fabric_thread_;
};

}  // namespace p5::linecard
