// Synthesis-model substrate tests: gate-level netlist + simulator, the
// structural builder toolkit (verified exhaustively on small widths), and
// the LUT mapper's covering/depth properties.
#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"
#include "netlist/builder.hpp"
#include "netlist/device.hpp"
#include "netlist/lut_mapper.hpp"
#include "netlist/netlist.hpp"

namespace p5::netlist {
namespace {

// ---- netlist + simulator ----

TEST(Netlist, BasicGates) {
  Netlist nl("t");
  const NodeId a = nl.input("a");
  const NodeId b = nl.input("b");
  nl.output(nl.and_(a, b), "and");
  nl.output(nl.or_(a, b), "or");
  nl.output(nl.xor_(a, b), "xor");
  nl.output(nl.not_(a), "not");
  nl.output(nl.mux(a, b, nl.constant(true)), "mux");

  Netlist::Sim sim(nl);
  for (int av = 0; av < 2; ++av)
    for (int bv = 0; bv < 2; ++bv) {
      sim.set_input(0, av);
      sim.set_input(1, bv);
      sim.eval();
      EXPECT_EQ(sim.output(0), av && bv);
      EXPECT_EQ(sim.output(1), av || bv);
      EXPECT_EQ(sim.output(2), av != bv);
      EXPECT_EQ(sim.output(3), !av);
      EXPECT_EQ(sim.output(4), av ? true : bv);
    }
}

TEST(Netlist, DffHoldsAcrossClock) {
  Netlist nl("t");
  const NodeId d = nl.input("d");
  const NodeId q = nl.dff(d);
  nl.output(q, "q");
  Netlist::Sim sim(nl);
  sim.set_input(0, true);
  sim.eval();
  EXPECT_FALSE(sim.output(0));  // not latched yet
  sim.clock();
  sim.set_input(0, false);
  sim.eval();
  EXPECT_TRUE(sim.output(0));  // latched value visible
  sim.clock();
  sim.eval();
  EXPECT_FALSE(sim.output(0));
}

TEST(Netlist, ToggleFlipFlop) {
  Netlist nl("t");
  const NodeId q = nl.dff();
  nl.set_dff_input(q, nl.not_(q));
  nl.output(q, "q");
  Netlist::Sim sim(nl);
  bool expect = false;
  for (int i = 0; i < 6; ++i) {
    sim.eval();
    EXPECT_EQ(sim.output(0), expect);
    sim.clock();
    expect = !expect;
  }
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl("t");
  const NodeId a = nl.input("a");
  // Build a cycle through a mux by rewiring a DFF trick is not possible via
  // public API; construct via two gates referencing each other is prevented
  // by construction order, so validate the detector with a DFF-free loop via
  // set_dff_input misuse being rejected instead.
  EXPECT_THROW(nl.set_dff_input(a, a), ContractViolation);  // not a DFF
}

TEST(Netlist, FanoutCounts) {
  Netlist nl("t");
  const NodeId a = nl.input("a");
  const NodeId x = nl.not_(a);
  nl.output(nl.and_(x, a), "o1");
  nl.output(nl.or_(x, a), "o2");
  const auto fo = nl.fanout_counts();
  EXPECT_EQ(fo[x], 2u);
  EXPECT_EQ(fo[a], 3u);
}

// ---- builder: exhaustive verification on small widths ----

u64 run_comb(const Netlist& nl, u64 input_bits) {
  Netlist::Sim sim(nl);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    sim.set_input(i, (input_bits >> i) & 1u);
  sim.eval();
  u64 out = 0;
  for (std::size_t i = 0; i < nl.outputs().size(); ++i)
    if (sim.output(i)) out |= (u64{1} << i);
  return out;
}

TEST(Builder, AdderExhaustive4Plus4) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 4);
  const Bus c = b.input_bus("b", 4);
  b.output_bus(b.add(a, c), "s");
  for (u64 av = 0; av < 16; ++av)
    for (u64 bv = 0; bv < 16; ++bv)
      EXPECT_EQ(run_comb(nl, av | (bv << 4)), av + bv) << av << "+" << bv;
}

TEST(Builder, WideAdderRandom) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 12);
  const Bus c = b.input_bus("b", 12);
  b.output_bus(b.add(a, c), "s");
  Xoshiro256 rng(1);
  for (int t = 0; t < 200; ++t) {
    const u64 av = rng.below(4096), bv = rng.below(4096);
    EXPECT_EQ(run_comb(nl, av | (bv << 12)), av + bv);
  }
}

TEST(Builder, AddWithCarryIn) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 3);
  const Bus c = b.input_bus("b", 3);
  const NodeId cin = nl.input("cin");
  b.output_bus(b.add(a, c, cin), "s");
  for (u64 v = 0; v < 128; ++v) {
    const u64 av = v & 7, bv = (v >> 3) & 7, cv = (v >> 6) & 1;
    EXPECT_EQ(run_comb(nl, v), av + bv + cv);
  }
}

TEST(Builder, GeConstExhaustive) {
  for (const u64 threshold : {1ull, 4ull, 7ull, 12ull, 15ull}) {
    Netlist nl("t");
    Builder b(nl);
    const Bus a = b.input_bus("a", 4);
    nl.output(b.ge_const(a, threshold), "ge");
    for (u64 v = 0; v < 16; ++v) EXPECT_EQ(run_comb(nl, v), (v >= threshold) ? 1u : 0u);
  }
}

TEST(Builder, GeConstWide) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 11);
  nl.output(b.ge_const(a, 1500), "ge");
  Xoshiro256 rng(2);
  for (int t = 0; t < 300; ++t) {
    const u64 v = rng.below(2048);
    EXPECT_EQ(run_comb(nl, v), (v >= 1500) ? 1u : 0u);
  }
}

TEST(Builder, EqConstExhaustive) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 5);
  nl.output(b.eq_const(a, 19), "eq");
  for (u64 v = 0; v < 32; ++v) EXPECT_EQ(run_comb(nl, v), (v == 19) ? 1u : 0u);
}

TEST(Builder, PopcountExhaustive) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 6);
  b.output_bus(b.popcount(a), "p");
  for (u64 v = 0; v < 64; ++v)
    EXPECT_EQ(run_comb(nl, v), static_cast<u64>(std::popcount(v)));
}

TEST(Builder, TableFnArbitraryFunction) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 5);
  nl.output(b.table_fn(a, [](u64 v) { return (v * 7 + 3) % 5 == 0; }), "f");
  for (u64 v = 0; v < 32; ++v)
    EXPECT_EQ(run_comb(nl, v), ((v * 7 + 3) % 5 == 0) ? 1u : 0u);
}

TEST(Builder, TableBusMultiOutput) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 4);
  b.output_bus(b.table_bus(a, [](u64 v) { return v * 3; }, 6), "m");
  for (u64 v = 0; v < 16; ++v) EXPECT_EQ(run_comb(nl, v), v * 3);
}

TEST(Builder, MuxBusSelects) {
  Netlist nl("t");
  Builder b(nl);
  const NodeId sel = nl.input("s");
  const Bus a = b.input_bus("a", 3);
  const Bus c = b.input_bus("b", 3);
  b.output_bus(b.mux_bus(sel, a, c), "m");
  for (u64 v = 0; v < 128; ++v) {
    const u64 s = v & 1, av = (v >> 1) & 7, bv = (v >> 4) & 7;
    EXPECT_EQ(run_comb(nl, v), s ? bv : av);
  }
}

TEST(Builder, OnehotMux) {
  Netlist nl("t");
  Builder b(nl);
  const Bus sels = b.input_bus("s", 3);
  const std::vector<Bus> choices{b.constant_bus(0x5, 4), b.constant_bus(0xA, 4),
                                 b.constant_bus(0x3, 4)};
  b.output_bus(b.onehot_mux({sels[0], sels[1], sels[2]}, choices), "o");
  EXPECT_EQ(run_comb(nl, 0b001), 0x5u);
  EXPECT_EQ(run_comb(nl, 0b010), 0xAu);
  EXPECT_EQ(run_comb(nl, 0b100), 0x3u);
  EXPECT_EQ(run_comb(nl, 0b000), 0x0u);
}

TEST(Builder, PriorityEncoder) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 6);
  const auto p = b.priority_encode(a);
  b.output_bus(p.index, "i");
  nl.output(p.valid, "v");
  for (u64 v = 1; v < 64; ++v) {
    const u64 out = run_comb(nl, v);
    const u64 idx = out & 0x7;
    const bool valid = (out >> 3) & 1u;
    EXPECT_TRUE(valid);
    EXPECT_EQ(idx, static_cast<u64>(std::countr_zero(v)));
  }
  EXPECT_EQ(run_comb(nl, 0) >> 3, 0u);  // invalid when no bit set
}

TEST(Builder, RotateLanes) {
  Netlist nl("t");
  Builder b(nl);
  std::vector<Bus> lanes;
  for (int i = 0; i < 4; ++i) lanes.push_back(b.constant_bus(static_cast<u64>(i + 1), 4));
  const Bus amount = b.input_bus("amt", 2);
  const auto rotated = b.rotate_lanes(lanes, amount);
  for (const auto& lane : rotated) b.output_bus(lane, "l");
  for (u64 amt = 0; amt < 4; ++amt) {
    const u64 out = run_comb(nl, amt);
    for (u64 i = 0; i < 4; ++i) {
      const u64 lane_val = (out >> (4 * i)) & 0xF;
      EXPECT_EQ(lane_val, ((i + amt) % 4) + 1) << "amt=" << amt << " lane=" << i;
    }
  }
}

// ---- LUT mapper ----

TEST(LutMapper, SingleGateIsOneLut) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 4);
  nl.output(nl.gate(Op::kAnd, {a[0], a[1], a[2], a[3]}), "o");
  const MapResult r = map_to_luts(nl);
  EXPECT_EQ(r.luts, 1u);
  EXPECT_EQ(r.depth, 1u);
  EXPECT_EQ(r.ffs, 0u);
}

TEST(LutMapper, ChainAbsorbsIntoOneLutWhenSmall) {
  // not(and(a, or(b, c))) has 3 leaves -> single 4-LUT.
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 3);
  nl.output(nl.not_(nl.and_(a[0], nl.or_(a[1], a[2]))), "o");
  const MapResult r = map_to_luts(nl);
  EXPECT_EQ(r.luts, 1u);
  EXPECT_EQ(r.depth, 1u);
}

TEST(LutMapper, WideXorDecomposes) {
  // 16-input XOR into 4-LUTs: ceil(15/3) = 5 LUTs, depth 2.
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 16);
  nl.output(nl.gate(Op::kXor, Bus(a.begin(), a.end())), "o");
  const MapResult r = map_to_luts(nl);
  EXPECT_EQ(r.luts, 5u);
  EXPECT_EQ(r.depth, 2u);
}

TEST(LutMapper, FanoutForcesRoot) {
  Netlist nl("t");
  Builder b(nl);
  const Bus a = b.input_bus("a", 2);
  const NodeId shared = nl.and_(a[0], a[1]);
  nl.output(nl.not_(shared), "o1");
  nl.output(nl.or_(shared, a[0]), "o2");
  const MapResult r = map_to_luts(nl);
  EXPECT_EQ(r.luts, 3u);  // shared + two consumers
}

TEST(LutMapper, CountsFlipFlops) {
  Netlist nl("t");
  Builder b(nl);
  const Bus d = b.dff_bus(12);
  b.wire_dff_bus(d, d);  // identity feedback
  const MapResult r = map_to_luts(nl);
  EXPECT_EQ(r.ffs, 12u);
}

TEST(LutMapper, DepthGrowsWithSerialLogic) {
  // A chain of dependent adders must map deeper than one adder.
  Netlist nl1("one");
  {
    Builder b(nl1);
    const Bus a = b.input_bus("a", 8);
    b.output_bus(b.add(a, a), "s");
  }
  Netlist nl3("three");
  {
    Builder b(nl3);
    const Bus a = b.input_bus("a", 8);
    Bus s = b.add(a, a);
    s.resize(8);
    s = b.add(s, a);
    s.resize(8);
    s = b.add(s, a);
    b.output_bus(s, "s");
  }
  EXPECT_GT(map_to_luts(nl3).depth, map_to_luts(nl1).depth);
}

// ---- devices ----

TEST(Device, CapacitiesAndUtilisation) {
  EXPECT_EQ(xcv50_4().luts, 1536u);
  EXPECT_EQ(xc2v40_6().luts, 512u);
  EXPECT_NEAR(xc2v40_6().lut_utilisation(492), 96.0, 0.2);  // paper Table 3
}

TEST(Device, VirtexIiFasterAtSameDepth) {
  // Paper Section 4: identical 6-LUT critical path; Virtex-II wins purely on
  // per-level delay.
  for (const bool post : {false, true}) {
    EXPECT_GT(xc2v1000_6().fmax_mhz(6, post), xcv600_4().fmax_mhz(6, post));
  }
}

TEST(Device, SixLevelPathMeets78MhzOnVirtexIiOnly) {
  const double required = required_clock_mhz(2.5, 32);
  EXPECT_NEAR(required, 78.125, 1e-9);
  EXPECT_GE(xc2v1000_6().fmax_mhz(6, true), required);
  EXPECT_LT(xcv600_4().fmax_mhz(6, true), required);
}

TEST(Device, PostLayoutSlowerThanPreLayout) {
  for (const auto& d : all_devices())
    EXPECT_LT(d.fmax_mhz(6, true), d.fmax_mhz(6, false));
}

}  // namespace
}  // namespace p5::netlist
