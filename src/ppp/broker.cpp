#include "ppp/broker.hpp"

#include <deque>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace p5::ppp::broker {

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kPending: return "pending";
    case Outcome::kNegotiated: return "negotiated";
    case Outcome::kFailed: return "failed";
    case Outcome::kAbandoned: return "abandoned";
  }
  return "?";
}

SessionLedger& SessionLedger::operator+=(const SessionLedger& o) {
  started += o.started;
  negotiated += o.negotiated;
  failed += o.failed;
  abandoned += o.abandoned;
  rejected_half_open += o.rejected_half_open;
  renegotiations += o.renegotiations;
  auth_failures += o.auth_failures;
  return *this;
}

SessionBroker::SessionBroker(BrokerConfig cfg) : cfg_(std::move(cfg)) {}
SessionBroker::~SessionBroker() = default;

std::optional<u64> SessionBroker::open_session(WireTx tx) {
  if (cfg_.max_half_open != 0 && pending_ >= cfg_.max_half_open) {
    // Half-open flood valve: refuse admission until pending sessions settle.
    ++ledger_.rejected_half_open;
    return std::nullopt;
  }
  const u64 id = sessions_.size();

  PppEndpoint::Config ec;
  ec.lcp.mru = cfg_.mru;
  ec.lcp.require_auth = cfg_.require_auth;
  ec.ipcp.local_address = cfg_.gateway_address;
  ec.ipcp.assign_peer_address = cfg_.address_base + static_cast<u32>(id);
  ec.ipcp.request_vj = cfg_.request_vj;
  ec.ipcp.vj_max_slot_id = cfg_.vj_max_slot_id;
  ec.auth.name = cfg_.chap_name;
  ec.auth.policy.lookup = cfg_.accounts;
  ec.auth.policy.max_bad_attempts = cfg_.max_bad_attempts;
  ec.auth.timeouts = cfg_.auth_timeouts;
  ec.fsm_timeouts = cfg_.fsm_timeouts;

  Session s;
  s.endpoint = std::make_unique<PppEndpoint>("brs-" + std::to_string(id), ec, std::move(tx));
  s.endpoint->open();
  s.endpoint->lower_up();
  sessions_.push_back(std::move(s));
  ++ledger_.started;
  ++pending_;
  return id;
}

void SessionBroker::wire_rx(u64 session, BytesView octets) {
  if (session >= sessions_.size()) return;
  Session& s = sessions_[static_cast<std::size_t>(session)];
  s.endpoint->wire_rx(octets);
  poll(session, s);
}

void SessionBroker::tick() {
  for (u64 id = 0; id < sessions_.size(); ++id) tick_session(id);
}

void SessionBroker::tick_session(u64 session) {
  if (session >= sessions_.size()) return;
  Session& s = sessions_[static_cast<std::size_t>(session)];
  s.endpoint->tick();
  if (s.outcome == Outcome::kPending) {
    ++s.age_ticks;
    if (s.age_ticks >= cfg_.session_deadline_ticks) {
      // Deadline: a peer that never spoke was a half-open probe (abandoned);
      // one that spoke but never converged is a negotiation failure.
      s.endpoint->close();
      settle(session, s, s.endpoint->stats().frames_rx == 0 ? Outcome::kAbandoned
                                                            : Outcome::kFailed);
      return;
    }
  }
  poll(session, s);
}

void SessionBroker::close_session(u64 session) {
  if (session >= sessions_.size()) return;
  Session& s = sessions_[static_cast<std::size_t>(session)];
  s.endpoint->close();
  if (s.outcome == Outcome::kPending) settle(session, s, Outcome::kAbandoned);
}

void SessionBroker::abandon_pending() {
  for (u64 id = 0; id < sessions_.size(); ++id) {
    Session& s = sessions_[static_cast<std::size_t>(id)];
    if (s.outcome != Outcome::kPending) continue;
    s.endpoint->close();
    settle(id, s, Outcome::kAbandoned);
  }
}

PppEndpoint* SessionBroker::endpoint(u64 session) {
  if (session >= sessions_.size()) return nullptr;
  return sessions_[static_cast<std::size_t>(session)].endpoint.get();
}

Outcome SessionBroker::outcome(u64 session) const {
  P5_ASSERT(session < sessions_.size());
  return sessions_[static_cast<std::size_t>(session)].outcome;
}

void SessionBroker::settle(u64 id, Session& s, Outcome o) {
  (void)id;
  P5_ASSERT(s.outcome == Outcome::kPending);
  s.outcome = o;
  P5_ASSERT(pending_ > 0);
  --pending_;
  switch (o) {
    case Outcome::kNegotiated: ++ledger_.negotiated; break;
    case Outcome::kFailed: ++ledger_.failed; break;
    case Outcome::kAbandoned: ++ledger_.abandoned; break;
    case Outcome::kPending: break;
  }
}

void SessionBroker::poll(u64 id, Session& s) {
  if (s.outcome == Outcome::kPending) {
    if (s.endpoint->ip_ready()) {
      s.was_ready = true;
      settle(id, s, Outcome::kNegotiated);
      return;
    }
    if (s.endpoint->auth_result() == AuthResult::kFailed) {
      ++ledger_.auth_failures;
      settle(id, s, Outcome::kFailed);
      return;
    }
    // Administratively Closed LCP means the endpoint itself gave up (e.g.
    // the peer rejected a mandatory option). Stopped is NOT terminal: a
    // listening FSM revives on the peer's next Configure-Request, so only
    // the deadline settles silent/looping peers.
    if (s.endpoint->lcp().state() == State::kClosed) {
      settle(id, s, Outcome::kFailed);
    }
    return;
  }
  if (s.outcome == Outcome::kNegotiated) {
    const bool ready = s.endpoint->ip_ready();
    if (ready && !s.was_ready) ++ledger_.renegotiations;
    s.was_ready = ready;
    // A live session whose rechallenge or renegotiation authentication
    // failed is torn down by the endpoint; the ledger keeps its single
    // negotiated classification (fates are per-session, not per-attempt).
  }
}

// ---- negotiation storm harness -----------------------------------------

AuthPolicy::SecretLookup
make_account_table(std::unordered_map<std::string, std::string> accounts) {
  auto table = std::make_shared<std::unordered_map<std::string, std::string>>(std::move(accounts));
  return [table](const std::string& id) -> std::optional<std::string> {
    const auto it = table->find(id);
    if (it == table->end()) return std::nullopt;
    return it->second;
  };
}

namespace {

/// Default storm account scheme: identity "user-N" has secret "pw-N".
std::optional<std::string> storm_lookup(const std::string& id) {
  if (id.rfind("user-", 0) != 0) return std::nullopt;
  return "pw-" + id.substr(5);
}

struct ShardResult {
  SessionLedger ledger;
  u64 clients_open = 0;
  u64 vj_sessions = 0;
  u64 ticks = 0;
  u64 client_auth_failures = 0;
};

/// One subscriber line: the client endpoint, its broker session id, and the
/// two in-flight octet queues (with impairment taps applied at enqueue).
struct Line {
  u64 global_id = 0;
  std::optional<u64> server_id;
  std::unique_ptr<PppEndpoint> client;  ///< null: half-open (silent) subscriber
  std::vector<Bytes> to_server;
  std::vector<Bytes> to_client;
  std::function<void(Bytes&)> tap_c2s;
  std::function<void(Bytes&)> tap_s2c;
  Xoshiro256 rng{0};  ///< per-session decisions: shard-count invariant
  std::vector<unsigned> flap_after;  ///< ready-tick delay before each flap
  std::size_t flap_idx = 0;
  unsigned ready_ticks = 0;
  bool flap_in_progress = false;
};

/// Cap on the geometric flap-delay draw. A session that stays open this many
/// ticks without its next flap firing forfeits the rest of its plan.
constexpr unsigned kFlapHorizon = 64;

void run_shard(const StormConfig& cfg, u64 first_session, u64 n_sessions, ShardResult& out) {
  BrokerConfig bc = cfg.broker;
  if (!bc.accounts) bc.accounts = storm_lookup;
  SessionBroker broker(bc);
  std::deque<Line> lines;  // deque: stable addresses for the tx closures

  const auto admit = [&](u64 global_id) {
    lines.emplace_back();
    Line& line = lines.back();
    line.global_id = global_id;
    // Per-session RNG keyed on the global id so shard count never changes
    // any session's behavior.
    line.rng = Xoshiro256(cfg.seed ^ (0x9E3779B97F4A7C15ull * (global_id + 1)));
    const bool half_open = line.rng.chance(cfg.half_open_fraction);
    const bool bad_secret = !half_open && line.rng.chance(cfg.bad_secret_fraction);
    const bool unknown_id = !half_open && !bad_secret && line.rng.chance(cfg.unknown_id_fraction);
    // Flap plan, drawn up-front as geometric ready-tick delays. Runtime draws
    // would make the draw count depend on how long the *shard* runs, breaking
    // shard invariance; a fixed plan keyed on the session's own RNG does not.
    if (cfg.flap_chance > 0.0) {
      for (unsigned k = 0; k < cfg.max_flaps_per_session; ++k) {
        unsigned delay = 1;
        while (delay <= kFlapHorizon && !line.rng.chance(cfg.flap_chance)) ++delay;
        if (delay > kFlapHorizon) break;
        line.flap_after.push_back(delay);
      }
    }
    if (cfg.make_tap) {
      line.tap_c2s = cfg.make_tap(global_id, /*server_to_client=*/false);
      line.tap_s2c = cfg.make_tap(global_id, /*server_to_client=*/true);
    }

    Line* lp = &line;
    line.server_id = broker.open_session([lp](BytesView b) {
      Bytes buf(b.begin(), b.end());
      if (lp->tap_s2c) lp->tap_s2c(buf);
      if (!buf.empty()) lp->to_client.push_back(std::move(buf));
    });
    if (!line.server_id) return;  // admission refused: no line comes up
    if (half_open) return;        // subscriber never speaks

    PppEndpoint::Config ec;
    ec.lcp.mru = cfg.broker.mru;
    ec.ipcp.local_address = 0;  // request assignment
    ec.ipcp.request_vj = cfg.client_request_vj;
    ec.auth.identity = unknown_id ? "ghost-" + std::to_string(global_id)
                                  : "user-" + std::to_string(global_id);
    ec.auth.secret = bad_secret ? "wrong" : "pw-" + std::to_string(global_id);
    ec.auth.timeouts = cfg.broker.auth_timeouts;
    ec.fsm_timeouts = cfg.broker.fsm_timeouts;
    if (cfg.client_config_hook) cfg.client_config_hook(global_id, ec.lcp, ec.ipcp);

    line.client = std::make_unique<PppEndpoint>(
        "cli-" + std::to_string(global_id), ec, [lp](BytesView b) {
          Bytes buf(b.begin(), b.end());
          if (lp->tap_c2s) lp->tap_c2s(buf);
          if (!buf.empty()) lp->to_server.push_back(std::move(buf));
        });
    line.client->open();
    line.client->lower_up();
  };

  // Drain the in-flight queues to a fixpoint; returns octets moved.
  const auto pump = [&]() {
    std::size_t moved = 0;
    bool progress = true;
    while (progress) {
      progress = false;
      for (Line& line : lines) {
        if (!line.to_server.empty() && line.server_id) {
          std::vector<Bytes> batch;
          batch.swap(line.to_server);  // swap first: delivery may enqueue more
          for (const Bytes& b : batch) {
            moved += b.size();
            broker.wire_rx(*line.server_id, b);
          }
          progress = true;
        }
        if (!line.to_client.empty()) {
          std::vector<Bytes> batch;
          batch.swap(line.to_client);
          for (const Bytes& b : batch) {
            moved += b.size();
            if (line.client) line.client->wire_rx(b);
          }
          progress = true;
        }
      }
    }
    return moved;
  };

  u64 admitted = 0;
  u64 tick = 0;
  unsigned quiet_ticks = 0;
  for (; tick < cfg.max_ticks; ++tick) {
    for (unsigned k = 0; k < cfg.admit_per_tick && admitted < n_sessions; ++k, ++admitted) {
      admit(first_session + admitted);
    }
    std::size_t moved = pump();
    broker.tick();
    for (Line& line : lines) {
      if (line.client) line.client->tick();
    }
    moved += pump();

    // Renegotiation flaps: an open subscriber drops and immediately redials,
    // on the schedule drawn at admission (counted in its own ready ticks).
    for (Line& line : lines) {
      if (!line.client || line.flap_idx >= line.flap_after.size()) continue;
      if (line.flap_in_progress) {
        if (!line.client->ip_ready()) continue;
        line.flap_in_progress = false;
      }
      if (!line.client->ip_ready()) continue;
      if (++line.ready_ticks < line.flap_after[line.flap_idx]) continue;
      ++line.flap_idx;
      line.ready_ticks = 0;
      line.flap_in_progress = true;
      line.client->close();
      moved += pump();
      line.client->open();
      moved += pump();
    }

    // An open session with flaps still scheduled WILL fire within the horizon;
    // quiescing before then would cut plans short shard-dependently.
    bool flaps_pending = false;
    for (const Line& line : lines) {
      if (line.client && line.flap_idx < line.flap_after.size() &&
          !line.flap_in_progress && line.client->ip_ready()) {
        flaps_pending = true;
        break;
      }
    }

    if (admitted == n_sessions && broker.quiescent() && moved == 0 && !flaps_pending) {
      if (++quiet_ticks >= 5) break;
    } else {
      quiet_ticks = 0;
    }
  }
  broker.abandon_pending();
  pump();

  out.ledger = broker.ledger();
  out.ticks = tick;
  for (Line& line : lines) {
    if (line.client && line.client->ip_ready()) ++out.clients_open;
    if (line.client && line.client->auth_result() == AuthResult::kFailed)
      ++out.client_auth_failures;
    if (line.server_id && broker.outcome(*line.server_id) == Outcome::kNegotiated) {
      const VjNegotiation& vj = broker.endpoint(*line.server_id)->ipcp().vj();
      if (vj.rx || vj.tx) ++out.vj_sessions;
    }
  }
}

}  // namespace

StormReport run_negotiation_storm(const StormConfig& cfg) {
  const unsigned shards = std::max(1u, cfg.shards);
  std::vector<ShardResult> results(shards);

  // Partition sessions across shards. Sessions are fully independent, so
  // the partition affects wall-clock only; every per-session decision is
  // keyed on the global session id.
  std::vector<std::pair<u64, u64>> ranges;
  u64 base = 0;
  for (unsigned s = 0; s < shards; ++s) {
    const u64 n = cfg.sessions / shards + (s < cfg.sessions % shards ? 1 : 0);
    ranges.emplace_back(base, n);
    base += n;
  }

  if (shards == 1) {
    run_shard(cfg, ranges[0].first, ranges[0].second, results[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
      workers.emplace_back([&cfg, &results, &ranges, s]() {
        run_shard(cfg, ranges[s].first, ranges[s].second, results[s]);
      });
    }
    for (std::thread& w : workers) w.join();
  }

  StormReport report;
  for (const ShardResult& r : results) {
    report.ledger += r.ledger;
    report.clients_open += r.clients_open;
    report.vj_sessions += r.vj_sessions;
    report.client_auth_failures += r.client_auth_failures;
    report.ticks = std::max(report.ticks, r.ticks);
  }
  return report;
}

}  // namespace p5::ppp::broker
