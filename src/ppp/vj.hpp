// Van Jacobson TCP/IP header compression (RFC 1144), the payload companion
// to the control plane: negotiated through the IPCP IP-Compression-Protocol
// option, carried over PPP as protocols 0x002d (VJ compressed TCP) and
// 0x002f (VJ uncompressed TCP) — Pvjctcp/Pvjutcp in both exemplars.
//
// The compressor keeps per-connection slots holding the last transmitted
// IP+TCP header; a packet whose headers changed only in the expected ways
// (sequence/ack/window/id deltas, PUSH toggling) is sent as a change mask
// plus 1-2 octet deltas. Everything else falls back to an uncompressed-TCP
// sync packet (full headers, IP protocol field carrying the slot id) or to
// a plain IP packet. The decompressor reverses the process byte-exactly —
// compress→decompress is the identity on the datagram, which is what the
// DiffOracle VJ leg and the tests/test_vj.cpp property suite pin.
//
// Loss safety: the TCP checksum rides every compressed packet unmodified,
// and a decompressor that loses sync (a dropped frame between two
// compressed packets) *tosses* until the next explicit-slot packet arrives.
//
// Also here: a deterministic synthetic TCP flow generator so benches and
// storm tests drive the compressor with realistic header progressions
// (real seq/ack/window walks, interleaved flows) instead of random bytes.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace p5::ppp::vj {

// Change-mask bits in the first octet of a compressed packet (RFC 1144
// §3.2.2: |0|C|I|P|S|A|W|U|, msb to lsb).
inline constexpr u8 kNewC = 0x40;  ///< connection slot id present
inline constexpr u8 kNewI = 0x20;  ///< IP ID delta present (absent: ID += 1)
inline constexpr u8 kPush = 0x10;  ///< TCP PUSH flag set
inline constexpr u8 kNewS = 0x08;  ///< sequence delta present
inline constexpr u8 kNewA = 0x04;  ///< ack delta present
inline constexpr u8 kNewW = 0x02;  ///< window delta present
inline constexpr u8 kNewU = 0x01;  ///< urgent pointer present

/// Reserved mask values (RFC 1144 §3.2.3): seq and ack both advanced by the
/// last packet's data (echoed interactive traffic) / seq alone advanced
/// (unidirectional transfer). No delta octets follow for S/A/W/U.
inline constexpr u8 kSpecialI = kNewS | kNewW | kNewU;
inline constexpr u8 kSpecialD = kNewS | kNewA | kNewW | kNewU;
inline constexpr u8 kSpecialsMask = kNewS | kNewA | kNewW | kNewU;

inline constexpr std::size_t kMaxSlotLimit = 256;

/// Negotiated parameters (the IPCP option payload, RFC 1332 §4 as updated
/// by RFC 1144 §5): highest slot id in use and whether the slot id may be
/// compressed out (the C bit omitted when the connection is unchanged).
struct VjConfig {
  u8 max_slot_id = 15;
  bool comp_slot_id = true;
};

// TCP flag bits (only what the compressor needs).
inline constexpr u8 kTcpFin = 0x01;
inline constexpr u8 kTcpSyn = 0x02;
inline constexpr u8 kTcpRst = 0x04;
inline constexpr u8 kTcpPsh = 0x08;
inline constexpr u8 kTcpAck = 0x10;
inline constexpr u8 kTcpUrg = 0x20;

/// How a datagram left the compressor.
enum class PacketClass : u8 {
  kIp,               ///< unchanged IPv4 datagram (protocol 0x0021)
  kUncompressedTcp,  ///< slot sync: full headers, proto field = slot (0x002f)
  kCompressedTcp,    ///< change mask + deltas (0x002d)
};

struct CompressorStats {
  u64 packets = 0;
  u64 compressed = 0;
  u64 uncompressed_sync = 0;  ///< sent as uncompressed-TCP to (re)sync a slot
  u64 passthrough = 0;        ///< non-TCP / fragments / control segments
  u64 header_bytes_in = 0;    ///< IP+TCP header octets entering
  u64 header_bytes_out = 0;   ///< header + mask/delta octets leaving
};

class Compressor {
 public:
  explicit Compressor(VjConfig cfg = VjConfig());

  struct Result {
    PacketClass cls = PacketClass::kIp;
    Bytes packet;
  };
  /// Compress one IPv4 datagram. The result's packet is what travels in the
  /// PPP information field under the protocol implied by `cls`.
  [[nodiscard]] Result compress(BytesView datagram);

  [[nodiscard]] const CompressorStats& stats() const { return stats_; }
  [[nodiscard]] const VjConfig& config() const { return cfg_; }

 private:
  struct Slot {
    bool in_use = false;
    u64 last_used = 0;  ///< LRU stamp
    Bytes header;       ///< last transmitted IP+TCP header image
  };

  VjConfig cfg_;
  std::vector<Slot> slots_;
  u64 use_clock_ = 0;
  int last_slot_ = -1;  ///< slot of the previous compressed packet
  CompressorStats stats_;
};

struct DecompressorStats {
  u64 compressed_in = 0;
  u64 uncompressed_in = 0;
  u64 tossed = 0;  ///< packets dropped while out of sync
  u64 errors = 0;  ///< malformed / bad slot
};

class Decompressor {
 public:
  explicit Decompressor(VjConfig cfg = VjConfig());

  /// Reconstruct the original IPv4 datagram from an uncompressed-TCP packet
  /// (cls kUncompressedTcp) or a compressed one (kCompressedTcp). nullopt:
  /// the packet was tossed or malformed; the caller drops it (TCP
  /// retransmission recovers end to end).
  [[nodiscard]] std::optional<Bytes> decompress(PacketClass cls, BytesView packet);

  [[nodiscard]] const DecompressorStats& stats() const { return stats_; }

 private:
  struct Slot {
    bool in_use = false;
    Bytes header;
  };

  VjConfig cfg_;
  std::vector<Slot> slots_;
  int last_slot_ = -1;
  bool toss_ = true;  ///< out of sync until the first explicit slot id
  DecompressorStats stats_;
};

// ---- synthesis helpers (tests, benches, storm payload) -----------------

/// Scalar TCP header for datagram synthesis.
struct TcpFields {
  u16 src_port = 0;
  u16 dst_port = 0;
  u32 seq = 0;
  u32 ack = 0;
  u8 flags = kTcpAck;
  u16 window = 8192;
  u16 urgent = 0;
};

/// Build a full IPv4+TCP datagram (real IP header checksum, real TCP
/// checksum over the pseudo-header).
[[nodiscard]] Bytes build_tcp_datagram(u32 src, u32 dst, u16 ip_id, u8 ttl,
                                       const TcpFields& tcp, BytesView payload);

/// Deterministic bidirectional TCP flow set: `next()` produces the next
/// datagram of a seeded mix of bulk-transfer and interactive flows with
/// realistic seq/ack/id/window progressions — the compressible workload the
/// benches use in place of random bytes.
class TcpFlowGen {
 public:
  TcpFlowGen(unsigned flows, u64 seed, std::size_t max_payload = 512);

  [[nodiscard]] Bytes next();

 private:
  struct Flow {
    u32 src, dst;
    TcpFields fields;
    u16 ip_id;
    bool bulk;          ///< bulk transfer (data one way) vs interactive echo
    std::size_t burst;  ///< segments left before the flow yields
  };

  Xoshiro256 rng_;
  std::vector<Flow> flows_;
  std::size_t max_payload_;
  std::size_t cursor_ = 0;
};

}  // namespace p5::ppp::vj
