// E4 — Paper Figure 5: "Escape Generate Data Organisation Problem".
//
// The paper's example: a 32-bit word arrives carrying [7E 12 ..], the flag
// expands to 7D 5E, and "instead of the system holding 4 bytes to transmit
// at this moment, there are suddenly 5 bytes ... 1 byte must be transmitted
// on the next clock cycle with the first 3 of the next 4 incoming bytes."
//
// This bench replays exactly that scenario through the cycle-accurate
// 32-bit Escape Generate unit and prints the per-cycle word flow and the
// resynchronisation-buffer occupancy, making the extra-byte carry visible.
#include <cstdio>

#include "bench_util.hpp"
#include "p5/escape_generate.hpp"
#include "rtl/simulator.hpp"

using namespace p5;
using namespace p5::core;

int main() {
  bench::banner("E4 / bench_fig5_escape_generate_reorg — byte-sorter expansion trace",
                "Figure 5: Escape Generate data organisation problem");
  bench::paper_says(
      "input word [7E 12 a1 a2] becomes 5 octets [7D 5E 12 a1 a2]; the 5th octet is "
      "carried into the next output word together with the next input word's octets.");

  rtl::Fifo<rtl::Word> in("in", 8);
  rtl::Fifo<rtl::Word> out("out", 2);
  EscapeGenerate gen("gen", 4, in, out);
  rtl::Simulator sim;
  sim.add(gen);
  sim.add_channel(in);
  sim.add_channel(out);

  // The paper's stream: flag in lane 0 of word 1, plain data afterwards.
  const std::vector<Bytes> words = {
      {0x7E, 0x12, 0xA1, 0xA2}, {0xB1, 0xB2, 0xB3, 0xB4}, {0xC1, 0xC2, 0xC3, 0xC4},
      {0xD1, 0xD2, 0xD3, 0xD4},
  };

  // Pre-load the input channel so the trace shows the unit's own pacing,
  // not the testbench's.
  for (std::size_t i = 0; i < words.size(); ++i) {
    rtl::Word w = rtl::Word::of(words[i]);
    w.sof = i == 0;
    w.eof = i + 1 == words.size();
    in.push(w);
  }
  in.commit();

  std::printf("\ncycle | input pending | queue occ | output word\n");
  std::printf("------+---------------+-----------+----------------------\n");
  for (int cycle = 0; cycle < 12; ++cycle) {
    const std::size_t pending = in.size();
    sim.step();
    std::string out_str = "-";
    while (out.can_pop()) out_str = out.pop().to_string();
    std::string in_str = std::to_string(pending) + " words";
    std::printf("%5d | %-13s | %6zu/12 | %s\n", cycle, in_str.c_str(),
                gen.queue_occupancy(), out_str.c_str());
  }

  std::printf("\nescapes inserted: %llu (the single flag octet)\n",
              static_cast<unsigned long long>(gen.escapes_inserted()));
  std::printf("first output word is [7d 5e 12 a1] — the expanded flag pushed octet a2 into\n"
              "the next word, exactly the Figure 5 reorganisation.\n");
  return 0;
}
