// Golden-model CRC: the straightforward bit-serial implementation every other
// CRC engine in this repository is verified against.
#pragma once

#include "common/types.hpp"
#include "crc/crc_spec.hpp"

namespace p5::crc {

/// Advance the raw shift register by one data byte, LSB first.
[[nodiscard]] constexpr u32 bitwise_step(const CrcSpec& spec, u32 state, u8 byte) {
  state ^= byte;
  for (int bit = 0; bit < 8; ++bit) {
    const bool feedback = state & 1u;
    state >>= 1;
    if (feedback) state ^= spec.poly;
  }
  return state & spec.mask();
}

/// Raw register value after feeding `data` starting from `state`
/// (no init / xorout applied — the composable primitive).
[[nodiscard]] inline u32 bitwise_update(const CrcSpec& spec, u32 state, BytesView data) {
  for (const u8 b : data) state = bitwise_step(spec, state, b);
  return state;
}

/// Complete checksum of a buffer (init + update + xorout).
[[nodiscard]] inline u32 bitwise_crc(const CrcSpec& spec, BytesView data) {
  return bitwise_update(spec, spec.init, data) ^ spec.xorout;
}

/// RFC 1662-style check: run data *including* the received FCS field through
/// the register; a good frame leaves the spec's residue.
[[nodiscard]] inline bool bitwise_check(const CrcSpec& spec, BytesView data_with_fcs) {
  return bitwise_update(spec, spec.init, data_with_fcs) == spec.residue;
}

}  // namespace p5::crc
