
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hardware_export.cpp" "examples/CMakeFiles/hardware_export.dir/hardware_export.cpp.o" "gcc" "examples/CMakeFiles/hardware_export.dir/hardware_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p5/CMakeFiles/p5_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/p5_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/ppp/CMakeFiles/p5_ppp.dir/DependInfo.cmake"
  "/root/repo/build/src/sonet/CMakeFiles/p5_sonet.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p5_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hdlc/CMakeFiles/p5_hdlc.dir/DependInfo.cmake"
  "/root/repo/build/src/crc/CMakeFiles/p5_crc.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/p5_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p5_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
