// ChunkPool: a free-list of refcounted wire-chunk buffers shared by conns,
// tunnels, and server sessions.
//
// The transport hot path used to pay one fresh heap Bytes per chunk on TX
// (send_frame allocated, the socket consumed, the vector died). The pool
// closes that loop: acquire() hands out a recycled buffer whose capacity
// survives from the last chunk of similar size, so steady-state traffic
// allocates nothing. A chunk holds the length prefix and payload in one
// contiguous buffer — send_frame writes it once and the scatter-gather
// flush sends it straight from the pool, zero further copies.
//
// Lifetime rules (DESIGN.md §15):
//   * ChunkRef is the only handle: copying bumps a refcount, the last ref
//     returns the buffer to the free list. Refcounts are plain integers —
//     chunks never cross threads (each conn lives on one EventLoop thread),
//     matching the single-writer discipline of TransportTelemetry.
//   * The pool may die before its chunks: a Tunnel teardown can race a
//     queued chunk held by a deferred close. The free list lives in a
//     shared core; once the pool closes, late releases simply free instead
//     of recycling. No chunk is ever leaked or double-freed either way.
//   * The free list is bounded (max_free) and oversize buffers are trimmed
//     back to retain_capacity on release, so one 4 MB frame doesn't pin
//     megabytes behind a pool that then moves small chunks forever.
//
// Counters are relaxed atomics so stats printers on other threads can read
// them; all structural mutation stays on the owning loop thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace p5::transport {

class TransportTelemetry;
class ChunkPool;

/// Refcounted handle to one pooled buffer. Default-constructed refs are
/// empty; data() may only be called on a non-empty ref.
class ChunkRef {
 public:
  ChunkRef() = default;
  ChunkRef(const ChunkRef& o) : c_(o.c_) { retain(); }
  ChunkRef(ChunkRef&& o) noexcept : c_(std::exchange(o.c_, nullptr)) {}
  ChunkRef& operator=(const ChunkRef& o) {
    if (this != &o) {
      release();
      c_ = o.c_;
      retain();
    }
    return *this;
  }
  ChunkRef& operator=(ChunkRef&& o) noexcept {
    if (this != &o) {
      release();
      c_ = std::exchange(o.c_, nullptr);
    }
    return *this;
  }
  ~ChunkRef() { release(); }

  [[nodiscard]] explicit operator bool() const { return c_ != nullptr; }
  [[nodiscard]] Bytes& data();
  [[nodiscard]] const Bytes& data() const;
  /// The full wire image (for StreamConn chunks: length prefix + payload).
  [[nodiscard]] BytesView view() const;
  void reset() { release(); }

 private:
  friend class ChunkPool;
  struct Chunk;
  explicit ChunkRef(Chunk* c) : c_(c) {}
  void retain();
  void release();
  Chunk* c_ = nullptr;
};

class ChunkPool {
 public:
  struct Config {
    std::size_t max_free = 256;                  ///< free-list buffers retained
    std::size_t retain_capacity = 256 * 1024;    ///< trim buffers grown past this
  };
  /// Point-in-time counter copy; `outstanding` is live referenced chunks.
  struct Counters {
    u64 allocated = 0;  ///< fresh heap buffers ever created
    u64 recycled = 0;   ///< acquires served from the free list
    u64 outstanding = 0;
  };

  /// `tel`, when set, receives pool_recycled() ticks so the reuse rate shows
  /// up in the transport telemetry next to the syscall counters.
  ChunkPool();
  explicit ChunkPool(TransportTelemetry* tel);
  ChunkPool(TransportTelemetry* tel, Config cfg);
  ~ChunkPool();
  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  /// A cleared buffer with at least `reserve_bytes` capacity, refcount 1.
  [[nodiscard]] ChunkRef acquire(std::size_t reserve_bytes);
  [[nodiscard]] Counters counters() const;

 private:
  friend class ChunkRef;
  struct Core;
  std::shared_ptr<Core> core_;
};

}  // namespace p5::transport
