#include "hdlc/stuffing.hpp"

namespace p5::hdlc {

Bytes stuff(BytesView data, const Accm& accm) {
  Bytes out;
  out.reserve(data.size() + data.size() / 8);
  for (const u8 b : data) {
    if (accm.must_escape(b)) {
      out.push_back(kEscape);
      out.push_back(b ^ kXor);
    } else {
      out.push_back(b);
    }
  }
  return out;
}

std::size_t stuffing_expansion(BytesView data, const Accm& accm) {
  std::size_t n = 0;
  for (const u8 b : data)
    if (accm.must_escape(b)) ++n;
  return n;
}

DestuffResult destuff(BytesView data) {
  DestuffResult r;
  r.data.reserve(data.size());
  bool pending_escape = false;
  for (const u8 b : data) {
    if (pending_escape) {
      // Lenient decode: complement bit 6 whatever the octet is. A 0x7D-0x7E
      // (escape-then-flag) abort never reaches here because the delineator
      // splits frames on the flag first and reports the abort itself.
      r.data.push_back(b ^ kXor);
      pending_escape = false;
    } else if (b == kEscape) {
      pending_escape = true;
    } else {
      r.data.push_back(b);
    }
  }
  if (pending_escape) r.ok = false;  // dangling escape at end of frame
  return r;
}

}  // namespace p5::hdlc
