file(REMOVE_RECURSE
  "CMakeFiles/p5_core.dir/control.cpp.o"
  "CMakeFiles/p5_core.dir/control.cpp.o.d"
  "CMakeFiles/p5_core.dir/crc_unit.cpp.o"
  "CMakeFiles/p5_core.dir/crc_unit.cpp.o.d"
  "CMakeFiles/p5_core.dir/escape_detect.cpp.o"
  "CMakeFiles/p5_core.dir/escape_detect.cpp.o.d"
  "CMakeFiles/p5_core.dir/escape_generate.cpp.o"
  "CMakeFiles/p5_core.dir/escape_generate.cpp.o.d"
  "CMakeFiles/p5_core.dir/escape_generate8.cpp.o"
  "CMakeFiles/p5_core.dir/escape_generate8.cpp.o.d"
  "CMakeFiles/p5_core.dir/framer.cpp.o"
  "CMakeFiles/p5_core.dir/framer.cpp.o.d"
  "CMakeFiles/p5_core.dir/oam.cpp.o"
  "CMakeFiles/p5_core.dir/oam.cpp.o.d"
  "CMakeFiles/p5_core.dir/p5.cpp.o"
  "CMakeFiles/p5_core.dir/p5.cpp.o.d"
  "CMakeFiles/p5_core.dir/shared_memory.cpp.o"
  "CMakeFiles/p5_core.dir/shared_memory.cpp.o.d"
  "CMakeFiles/p5_core.dir/sonet_link.cpp.o"
  "CMakeFiles/p5_core.dir/sonet_link.cpp.o.d"
  "libp5_core.a"
  "libp5_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
