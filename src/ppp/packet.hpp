// LCP/NCP control-packet codec (RFC 1661 §5): Code | Identifier | Length |
// Data, with Data holding a TLV option list for the Configure-* codes.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace p5::ppp {

enum class Code : u8 {
  kConfigureRequest = 1,
  kConfigureAck = 2,
  kConfigureNak = 3,
  kConfigureReject = 4,
  kTerminateRequest = 5,
  kTerminateAck = 6,
  kCodeReject = 7,
  kProtocolReject = 8,
  kEchoRequest = 9,
  kEchoReply = 10,
  kDiscardRequest = 11,
};

[[nodiscard]] const char* to_string(Code c);

struct Option {
  u8 type = 0;
  Bytes data;

  [[nodiscard]] std::size_t wire_size() const { return 2 + data.size(); }
  bool operator==(const Option&) const = default;
};

struct Packet {
  u8 code = 0;
  u8 identifier = 0;
  Bytes data;  ///< everything after the Length field

  [[nodiscard]] Bytes serialize() const;

  /// Parse; validates the Length field. Trailing padding is dropped per
  /// RFC 1661 §5 ("the Length field must be ... padding octets ignored").
  [[nodiscard]] static std::optional<Packet> parse(BytesView wire);
};

/// Serialize an option list into a packet Data field.
[[nodiscard]] Bytes serialize_options(const std::vector<Option>& options);

/// Parse a Data field into options; nullopt on malformed TLVs.
[[nodiscard]] std::optional<std::vector<Option>> parse_options(BytesView data);

}  // namespace p5::ppp
