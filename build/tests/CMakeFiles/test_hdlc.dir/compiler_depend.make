# Empty compiler generated dependencies file for test_hdlc.
# This may be replaced when dependencies are built.
