// MAPOS — Multiple Access Protocol over SONET/SDH (RFC 2171), the network
// the paper's programmable Address field exists for: "this implementation
// allows this field to be programmable so that it is compatible with MAPOS
// systems".
//
// MAPOS keeps PPP's HDLC-like framing but turns the point-to-point link into
// a switched multi-access network: a frame switch forwards frames by the
// Address octet, and each node learns its unicast address from the switch
// through the Node-Switch Protocol (NSP). This module implements the
// single-switch subset:
//
//   * address format (RFC 2171 §4): unicast = port number shifted left once
//     with the LSB set (HDLC EA bit); 0xFF = broadcast to all nodes;
//   * NSP address assignment: a node sends an Address-Request with the
//     null address, the switch answers Address-Assign for its port;
//   * unicast forwarding, broadcast flooding (all ports except ingress),
//     and drop-counting for unknown destinations;
//   * the switch is store-and-forward and validates the FCS of every frame
//     it relays, like a real MAPOS switch port.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "hdlc/delineation.hpp"
#include "hdlc/frame.hpp"

namespace p5::net {

/// MAPOS protocol numbers (RFC 2171 §5).
inline constexpr u16 kMaposProtoIp = 0x0021;
inline constexpr u16 kMaposProtoNsp = 0xFE01;

/// NSP message codes (subset).
inline constexpr u8 kNspAddressRequest = 1;
inline constexpr u8 kNspAddressAssign = 2;

inline constexpr u8 kMaposBroadcast = 0xFF;
inline constexpr u8 kMaposNullAddress = 0x01;  ///< unassigned node (EA bit only)

/// Unicast address for a switch port (RFC 2171 §4, single-switch form).
[[nodiscard]] constexpr u8 mapos_port_address(unsigned port) {
  return static_cast<u8>(((port + 1) << 1) | 0x01);
}

struct MaposSwitchStats {
  u64 frames_forwarded = 0;
  u64 frames_flooded = 0;
  u64 unknown_destination = 0;
  u64 fcs_dropped = 0;
  u64 nsp_assignments = 0;
};

/// A MAPOS frame switch with N ports. Each port's transmit side is a
/// callback delivering raw wire octets toward the attached node.
class MaposSwitch {
 public:
  explicit MaposSwitch(unsigned ports);

  /// Wire the transmit side of a port.
  void attach(unsigned port, std::function<void(BytesView)> tx);

  /// Octets arriving from the node on `port`.
  void rx(unsigned port, BytesView octets);

  [[nodiscard]] const MaposSwitchStats& stats() const { return stats_; }
  [[nodiscard]] u8 port_address(unsigned port) const { return mapos_port_address(port); }

 private:
  void on_frame(unsigned port, BytesView stuffed);
  void transmit(unsigned port, BytesView content_destuffed);

  struct Port {
    std::function<void(BytesView)> tx;
    std::unique_ptr<hdlc::Delineator> delineator;
  };
  std::vector<Port> ports_;
  MaposSwitchStats stats_;
};

/// A MAPOS end node: acquires its address via NSP, then exchanges frames
/// (protocol + payload) with other nodes through the switch.
class MaposNode {
 public:
  struct Received {
    u8 source_guess = 0;  ///< MAPOS has no source field; 0 (see README note)
    u16 protocol = 0;
    Bytes payload;
  };

  /// `wire_tx` sends raw octets toward the switch port.
  explicit MaposNode(std::function<void(BytesView)> wire_tx);

  /// Kick off NSP address acquisition.
  void request_address();

  /// Send a payload to a destination address (requires an assigned address).
  bool send(u8 destination, u16 protocol, BytesView payload);

  /// Zero-allocation variant for hot paths (the line-card fabric): encodes
  /// the wire image with the fused framer into `arena`, which retains its
  /// capacity across calls. Byte-identical on the wire to send().
  bool send(hdlc::FrameArena& arena, u8 destination, u16 protocol, BytesView payload);

  /// Batched variant: every frame (each BatchFrame's `address` is its MAPOS
  /// destination) is encoded back-to-back into `arena` with one worst-case
  /// reservation and one escape-engine/CRC setup, then the concatenated
  /// stream goes to the wire in a single call — the far end's delineator
  /// splits it on the flags. The stream is byte-identical to calling send()
  /// once per frame. Returns the number of frames sent (0 before NSP
  /// assigns an address).
  std::size_t send_batch(hdlc::FrameArena& arena, std::span<const hdlc::BatchFrame> frames);

  /// Octets arriving from the switch.
  void rx(BytesView octets);

  void set_sink(std::function<void(const Received&)> sink) { sink_ = std::move(sink); }

  [[nodiscard]] std::optional<u8> address() const { return address_; }

 private:
  void on_frame(BytesView stuffed);

  std::function<void(BytesView)> wire_tx_;
  std::function<void(const Received&)> sink_;
  hdlc::Delineator delineator_;
  std::optional<u8> address_;
};

}  // namespace p5::net
