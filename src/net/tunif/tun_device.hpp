// TunDevice — the kernel side of "carry real traffic".
//
// A thin RAII wrapper over a Linux TUN interface: open /dev/net/tun, claim
// an interface name with TUNSETIFF (IFF_TUN | IFF_NO_PI, so reads and
// writes are bare IP datagrams with no packet-information header), and
// configure it point-to-point entirely through ioctls — address, peer,
// netmask, MTU, IFF_UP — so no `ip`/`ifconfig` shell-outs are needed and
// the example binaries work in a bare network namespace.
//
// The fd is switched to non-blocking before it is handed out: the bridge
// registers it on the transport EventLoop and drains on readability, and a
// read_packet() with nothing queued reports kAgain instead of blocking the
// loop.
//
// Everything degrades to a clean "not available" rather than a crash:
// available() probes /dev/net/tun for openability (absent node, or present
// but unprivileged — both common in CI sandboxes), and the tests/examples
// turn that into SKIP, never FAIL.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"

namespace p5::net::tunif {

/// Compile-time gate: TUN support is Linux-only; elsewhere every entry
/// point reports unavailable.
#if defined(__linux__)
inline constexpr bool kTunSupported = true;
#else
inline constexpr bool kTunSupported = false;
#endif

enum class ReadStatus : u8 {
  kPacket,  ///< a datagram was read
  kAgain,   ///< nothing queued (EAGAIN) — wait for readability
  kError,   ///< the fd failed; the device is unusable
};

class TunDevice {
 public:
  TunDevice() = default;
  ~TunDevice();
  TunDevice(const TunDevice&) = delete;
  TunDevice& operator=(const TunDevice&) = delete;
  TunDevice(TunDevice&& other) noexcept;
  TunDevice& operator=(TunDevice&& other) noexcept;

  /// Can this process create a TUN interface at all? False when
  /// /dev/net/tun is missing or opening it is not permitted — the callers'
  /// SKIP signal.
  [[nodiscard]] static bool available();

  /// Create the interface. `ifname_hint` may be empty (kernel picks
  /// "tunN") or a printf-style template like "p5tun%d". False: see error().
  [[nodiscard]] bool open(const std::string& ifname_hint = "");

  /// Point-to-point configuration, raw ioctls only: local/peer are dotted
  /// quads, mtu 0 keeps the kernel default. Brings the interface up; the
  /// kernel installs the peer host-route itself.
  [[nodiscard]] bool configure_ipv4(const std::string& local, const std::string& peer,
                                    u32 mtu = 0);

  /// Non-blocking read of one IP datagram into `out` (replaced, not
  /// appended).
  [[nodiscard]] ReadStatus read_packet(Bytes& out);
  /// Write one IP datagram to the kernel. False: the kernel refused it
  /// (interface down, oversize, transient ENOBUFS) — TUN writes never
  /// short-write, so false means the packet did not go in.
  [[nodiscard]] bool write_packet(BytesView packet);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  /// The name the kernel actually assigned (after %d expansion).
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  void close();

 private:
  int fd_ = -1;
  std::string name_;
  std::string error_;
};

}  // namespace p5::net::tunif
