// Bundled trace generator — a deterministic "real traffic" pcap with no
// external files.
//
// CI can't ship multi-megabyte capture fixtures, but the `--pcap` bench rows
// and the replay tests still need a trace with real TCP dynamics (growing
// sequence numbers, ack-only reverse segments, interactive vs bulk mixes —
// the properties VJ compression and the classifier actually react to, which
// uniform random payloads don't have). vj::TcpFlowGen already synthesizes
// exactly that for the compression tests; this wraps it into a pcap:
// deterministic datagrams, deterministic seeded inter-packet gaps, so the
// same (flows, packets, seed) triple always yields the identical file —
// bench baselines and golden assertions can rely on the bytes.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/capture/pcap.hpp"

namespace p5::net::capture {

struct TraceGenConfig {
  unsigned flows = 4;         ///< concurrent TCP conversations
  std::size_t packets = 256;  ///< records in the trace
  u64 seed = 1;
  std::size_t max_payload = 512;  ///< TcpFlowGen segment payload cap
  /// Mean inter-packet gap; gaps are seeded-uniform in [mean/2, 3*mean/2],
  /// so a timed replay has jitter but identical runs have identical jitter.
  u64 mean_gap_ns = 10'000;
};

/// Synthesize the trace in memory (linktype raw-IP, nsec precision).
[[nodiscard]] PcapFile synthesize_tcp_trace(const TraceGenConfig& cfg);

/// Synthesize and write to `path`. False: file not writable.
[[nodiscard]] bool write_tcp_trace(const std::string& path, const TraceGenConfig& cfg);

}  // namespace p5::net::capture
