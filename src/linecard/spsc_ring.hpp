// Fixed-capacity lock-free single-producer/single-consumer ring.
//
// The line-card runtime moves frame descriptors between three parties —
// traffic sources, channel workers, and the fabric — and every edge is
// single-producer/single-consumer by construction, so the classic two-index
// ring suffices: the producer owns `tail_`, the consumer owns `head_`, and
// each side publishes its index with release stores the other side reads
// with acquire loads. Cached copies of the remote index keep the fast path
// free of cross-core traffic (an index reload only happens when the cached
// value says the ring looks full/empty).
//
// Capacity is rounded up to a power of two so the slot index is a mask, and
// the indices are free-running 64-bit counters (no wrap ambiguity within any
// realistic run). Failed pushes are counted — that counter *is* the
// backpressure signal the telemetry reports as ring-full stalls.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace p5::linecard {

/// Alignment that keeps producer-side and consumer-side state on distinct
/// cache lines (no false sharing between the two threads).
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Moves from `v` only on success; a failed push leaves `v`
  /// intact and increments the stall counter.
  [[nodiscard]] bool try_push(T&& v) {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity()) {
        push_stalls_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool try_push(const T& v) {
    T copy = v;
    return try_push(std::move(copy));
  }

  /// Blocking producer push: spins (yielding) until space frees up. Each
  /// failed attempt counts as a stall, so a long block is visible in the
  /// backpressure accounting.
  void push(T v) {
    while (!try_push(std::move(v))) std::this_thread::yield();
  }

  /// Consumer side.
  [[nodiscard]] std::optional<T> try_pop() {
    const u64 head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return std::nullopt;
    }
    std::optional<T> v(std::move(slots_[head & mask_]));
    head_.store(head + 1, std::memory_order_release);
    return v;
  }

  /// Consumer side, bounded batch: pop up to `max` items, handing each to
  /// `fn` by rvalue. Returns the number consumed. The bound keeps a caller's
  /// slice a slice — a server shard drains its adoption/handoff rings with
  /// this without letting a hot producer starve the rest of the loop.
  template <typename Fn>
  std::size_t drain(std::size_t max, Fn&& fn) {
    std::size_t n = 0;
    while (n < max) {
      auto v = try_pop();
      if (!v) break;
      fn(std::move(*v));
      ++n;
    }
    return n;
  }

  /// Blocking consumer pop: spins (yielding) until an item arrives.
  [[nodiscard]] T pop() {
    for (;;) {
      if (auto v = try_pop()) return std::move(*v);
      pop_stalls_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }

  /// Occupancy as seen from any thread. Approximate by nature (the two
  /// indices are read at slightly different instants) but never negative and
  /// exact whenever the ring is quiescent — good enough for high-water marks.
  [[nodiscard]] std::size_t size_approx() const {
    const u64 t = tail_.load(std::memory_order_acquire);
    const u64 h = head_.load(std::memory_order_acquire);
    return t > h ? static_cast<std::size_t>(t - h) : 0;
  }

  [[nodiscard]] bool empty() const { return size_approx() == 0; }

  /// Failed push attempts (ring full at that instant) — the backpressure
  /// signal. Blocking pushes add one per retry, so the count scales with
  /// time spent blocked, not just with blocked frames.
  [[nodiscard]] u64 push_stalls() const { return push_stalls_.load(std::memory_order_relaxed); }
  /// Empty-pop spins inside blocking pop() (consumer starvation).
  [[nodiscard]] u64 pop_stalls() const { return pop_stalls_.load(std::memory_order_relaxed); }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  alignas(kCacheLineBytes) std::atomic<u64> head_{0};  ///< consumer-owned index
  alignas(kCacheLineBytes) std::atomic<u64> tail_{0};  ///< producer-owned index
  alignas(kCacheLineBytes) u64 head_cache_ = 0;        ///< producer's view of head_
  alignas(kCacheLineBytes) u64 tail_cache_ = 0;        ///< consumer's view of tail_
  alignas(kCacheLineBytes) std::atomic<u64> push_stalls_{0};
  std::atomic<u64> pop_stalls_{0};
};

}  // namespace p5::linecard
