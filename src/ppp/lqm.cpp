#include "ppp/lqm.hpp"

#include "common/check.hpp"

namespace p5::ppp {

Bytes LqrPacket::serialize() const {
  Bytes b;
  b.reserve(kWireBytes);
  put_be32(b, magic);
  put_be32(b, last_out_lqrs);
  put_be32(b, last_out_packets);
  put_be32(b, last_out_octets);
  put_be32(b, peer_in_lqrs);
  put_be32(b, peer_in_packets);
  put_be32(b, peer_in_discards);
  put_be32(b, peer_in_errors);
  put_be32(b, peer_in_octets);
  put_be32(b, peer_out_lqrs);
  put_be32(b, peer_out_packets);
  put_be32(b, peer_out_octets);
  return b;
}

std::optional<LqrPacket> LqrPacket::parse(BytesView wire) {
  if (wire.size() < kWireBytes) return std::nullopt;
  LqrPacket p;
  std::size_t off = 0;
  auto next = [&wire, &off] {
    const u32 v = get_be32(wire, off);
    off += 4;
    return v;
  };
  p.magic = next();
  p.last_out_lqrs = next();
  p.last_out_packets = next();
  p.last_out_octets = next();
  p.peer_in_lqrs = next();
  p.peer_in_packets = next();
  p.peer_in_discards = next();
  p.peer_in_errors = next();
  p.peer_in_octets = next();
  p.peer_out_lqrs = next();
  p.peer_out_packets = next();
  p.peer_out_octets = next();
  return p;
}

LqmMonitor::LqmMonitor(const LqmConfig& cfg, u32 magic, std::function<void(BytesView)> tx_lqr)
    : cfg_(cfg), magic_(magic), tx_lqr_(std::move(tx_lqr)),
      ticks_until_report_(cfg.reporting_ticks) {
  P5_EXPECTS(cfg.reporting_ticks >= 1);
  P5_EXPECTS(cfg.window_k >= 1 && cfg.window_k <= cfg.window_n);
}

void LqmMonitor::count_tx(std::size_t octets) {
  ++counters_.out_packets;
  counters_.out_octets += static_cast<u32>(octets);
}

void LqmMonitor::count_rx_good(std::size_t octets) {
  ++counters_.in_packets;
  counters_.in_octets += static_cast<u32>(octets);
}

void LqmMonitor::count_rx_error() { ++counters_.in_errors; }
void LqmMonitor::count_rx_discard() { ++counters_.in_discards; }

void LqmMonitor::tick() {
  if (!cfg_.emit_reports) return;
  if (--ticks_until_report_ == 0) {
    ticks_until_report_ = cfg_.reporting_ticks;
    emit_lqr();
  }
}

void LqmMonitor::emit_lqr() {
  ++counters_.out_lqrs;
  ++counters_.out_packets;  // the LQR itself travels the link

  LqrPacket p;
  p.magic = magic_;
  p.last_out_lqrs = counters_.out_lqrs;
  p.last_out_packets = counters_.out_packets;
  p.last_out_octets = counters_.out_octets;
  // "PeerIn*" in the packet we transmit describe *our* receive side — they
  // become the peer's view of its outbound quality.
  p.peer_in_lqrs = counters_.in_lqrs;
  p.peer_in_packets = counters_.in_packets;
  p.peer_in_discards = counters_.in_discards;
  p.peer_in_errors = counters_.in_errors;
  p.peer_in_octets = counters_.in_octets;
  p.peer_out_lqrs = counters_.out_lqrs;
  p.peer_out_packets = counters_.out_packets;
  p.peer_out_octets = counters_.out_octets;

  const Bytes wire = p.serialize();
  counters_.out_octets += static_cast<u32>(wire.size());
  tx_lqr_(wire);
}

void LqmMonitor::on_lqr(BytesView wire) {
  const auto pkt = LqrPacket::parse(wire);
  if (!pkt) return;
  ++counters_.in_lqrs;
  ++counters_.in_packets;  // an LQR is also a received packet

  if (previous_) {
    // Measurement window: peer's transmit delta vs our receive delta.
    const u32 sent = pkt->peer_out_packets - previous_->peer_out_packets;
    const u32 received = counters_.in_packets - in_packets_at_prev_lqr_;
    if (sent > 0) {
      const double loss =
          sent >= received ? static_cast<double>(sent - received) / static_cast<double>(sent)
                           : 0.0;
      last_loss_ = loss;
      bad_history_.push_back(loss > cfg_.max_loss);
      while (bad_history_.size() > cfg_.window_n) bad_history_.pop_front();
    }
  }
  previous_ = *pkt;
  in_packets_at_prev_lqr_ = counters_.in_packets;
}

bool LqmMonitor::link_good() const {
  unsigned bad = 0;
  for (const bool b : bad_history_)
    if (b) ++bad;
  return bad < cfg_.window_k;
}

}  // namespace p5::ppp
