#include "net/capture/replay.hpp"

#include <cmath>

namespace p5::net::capture {

TraceSource::TraceSource(PcapMeta meta, std::vector<PcapRecord> records)
    : meta_(meta), records_(std::move(records)) {}

bool TraceSource::open(const std::string& path) {
  if (!reader_.open(path)) return false;
  streaming_ = true;
  meta_ = reader_.meta();
  records_.clear();
  index_ = 0;
  exhausted_ = false;
  pending_.reset();
  return true;
}

std::optional<std::pair<u16, BytesView>> TraceSource::classify(u32 linktype,
                                                               BytesView data) {
  if (linktype == kLinkPpp) {
    // [ff 03] address/control is optional on the wire (ACFC); the be16
    // protocol field is not.
    std::size_t off = 0;
    if (data.size() >= 2 && data[0] == 0xff && data[1] == 0x03) off = 2;
    if (data.size() < off + 2) return std::nullopt;
    const u16 proto = get_be16(data, off);
    return std::make_pair(proto, data.subspan(off + 2));
  }
  // Raw IP (and private linktypes carrying this repo's own captures): the
  // version nibble picks the PPP protocol number.
  if (data.empty()) return std::nullopt;
  const u16 proto = (data[0] >> 4) == 6 ? u16{0x0057} : u16{0x0021};
  return std::make_pair(proto, data);
}

bool TraceSource::load_next() {
  while (true) {
    PcapRecord rec;
    if (streaming_) {
      auto r = reader_.next();
      if (!r) {
        exhausted_ = true;
        return false;
      }
      rec = std::move(*r);
    } else {
      if (index_ >= records_.size()) {
        exhausted_ = true;
        return false;
      }
      rec = records_[index_++];
    }
    auto cls = classify(meta_.linktype, rec.data);
    if (!cls) {
      ++stats_.malformed;
      continue;  // skip, keep pulling
    }
    Pending p;
    p.protocol = cls->first;
    p.ts_ns = rec.timestamp_ns();
    p.payload.assign(cls->second.begin(), cls->second.end());
    pending_ = std::move(p);
    return true;
  }
}

std::size_t TraceSource::pump(u64 now_ns, std::size_t budget, const Sink& sink) {
  std::size_t delivered = 0;
  while (delivered < budget) {
    if (!pending_ && !load_next()) break;
    if (pacing_ == Pacing::kTimed) {
      if (!anchored_) {
        // First record anchors the epoch: it plays immediately, later
        // records at their scaled offset from it.
        anchored_ = true;
        epoch_now_ns_ = now_ns;
        epoch_trace_ns_ = pending_->ts_ns;
      }
      const u64 trace_delta = pending_->ts_ns >= epoch_trace_ns_
                                  ? pending_->ts_ns - epoch_trace_ns_
                                  : 0;  // out-of-order stamp: due now
      const u64 due = epoch_now_ns_ +
                      static_cast<u64>(std::llround(static_cast<double>(trace_delta) /
                                                    time_scale_));
      if (now_ns < due) break;  // not yet — records replay in file order
    }
    ++stats_.offered;
    if (!sink(pending_->protocol, pending_->payload)) {
      ++stats_.deferred;
      break;  // park; backpressure delays the trace, never reorders it
    }
    ++stats_.delivered;
    ++delivered;
    pending_.reset();
  }
  return delivered;
}

}  // namespace p5::net::capture
