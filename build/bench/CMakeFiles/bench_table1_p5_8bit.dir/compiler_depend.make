# Empty compiler generated dependencies file for bench_table1_p5_8bit.
# This may be replaced when dependencies are built.
