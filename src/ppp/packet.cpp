#include "ppp/packet.hpp"

#include "common/check.hpp"

namespace p5::ppp {

const char* to_string(Code c) {
  switch (c) {
    case Code::kConfigureRequest: return "Configure-Request";
    case Code::kConfigureAck: return "Configure-Ack";
    case Code::kConfigureNak: return "Configure-Nak";
    case Code::kConfigureReject: return "Configure-Reject";
    case Code::kTerminateRequest: return "Terminate-Request";
    case Code::kTerminateAck: return "Terminate-Ack";
    case Code::kCodeReject: return "Code-Reject";
    case Code::kProtocolReject: return "Protocol-Reject";
    case Code::kEchoRequest: return "Echo-Request";
    case Code::kEchoReply: return "Echo-Reply";
    case Code::kDiscardRequest: return "Discard-Request";
  }
  return "Unknown";
}

Bytes Packet::serialize() const {
  P5_EXPECTS(data.size() + 4 <= 0xFFFF);
  Bytes out;
  out.reserve(4 + data.size());
  out.push_back(code);
  out.push_back(identifier);
  put_be16(out, static_cast<u16>(4 + data.size()));
  append(out, data);
  return out;
}

std::optional<Packet> Packet::parse(BytesView wire) {
  if (wire.size() < 4) return std::nullopt;
  const u16 length = get_be16(wire, 2);
  if (length < 4 || length > wire.size()) return std::nullopt;
  Packet p;
  p.code = wire[0];
  p.identifier = wire[1];
  p.data.assign(wire.begin() + 4, wire.begin() + length);
  return p;
}

Bytes serialize_options(const std::vector<Option>& options) {
  Bytes out;
  for (const Option& o : options) {
    P5_EXPECTS(o.data.size() + 2 <= 0xFF);
    out.push_back(o.type);
    out.push_back(static_cast<u8>(2 + o.data.size()));
    append(out, o.data);
  }
  return out;
}

std::optional<std::vector<Option>> parse_options(BytesView data) {
  std::vector<Option> out;
  std::size_t off = 0;
  while (off < data.size()) {
    if (off + 2 > data.size()) return std::nullopt;
    const u8 type = data[off];
    const u8 len = data[off + 1];
    if (len < 2 || off + len > data.size()) return std::nullopt;
    Option o;
    o.type = type;
    o.data.assign(data.begin() + static_cast<std::ptrdiff_t>(off) + 2,
                  data.begin() + static_cast<std::ptrdiff_t>(off) + len);
    out.push_back(std::move(o));
    off += len;
  }
  return out;
}

}  // namespace p5::ppp
