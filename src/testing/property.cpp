#include "testing/property.hpp"

#include <cstdlib>
#include <sstream>

#include "hdlc/accm.hpp"

namespace p5::testing {

namespace {

u64 splitmix(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::optional<u64> env_u64(const char* name) {
  const char* v = std::getenv(name);
  if (!v || !*v) return std::nullopt;
  return std::strtoull(v, nullptr, 0);  // accepts decimal and 0x-prefixed hex
}

/// Run the body once at (seed, size); returns the failure message or empty.
std::string run_case(const std::function<void(CaseContext&)>& body, u64 index, u64 seed,
                     std::size_t size) {
  CaseContext c;
  c.index = index;
  c.seed = seed;
  c.size = size;
  c.rng = Xoshiro256(seed);
  body(c);
  if (!c.failed) return {};
  return c.message.empty() ? std::string("property body called fail()") : c.message;
}

}  // namespace

u64 resolved_seed(u64 fallback) { return env_u64("P5_TEST_SEED").value_or(fallback); }

u64 resolved_cases(u64 fallback) { return env_u64("P5_TEST_CASES").value_or(fallback); }

PropertyResult check_property(std::string_view name, const PropertyOptions& opt,
                              const std::function<void(CaseContext&)>& body) {
  PropertyResult r;
  const u64 base_seed = resolved_seed(opt.seed);
  const u64 cases = resolved_cases(opt.cases);
  const std::size_t lo = opt.min_size;
  const std::size_t hi = std::max(opt.max_size, lo);

  for (u64 i = 0; i < cases; ++i) {
    const u64 case_seed = splitmix(base_seed ^ (i * 0x9E3779B97F4A7C15ull + 1));
    // Linear size ramp: early cases are tiny (fast, good at boundary bugs),
    // late cases stress capacity.
    const std::size_t size =
        cases <= 1 ? hi : lo + static_cast<std::size_t>((hi - lo) * i / (cases - 1));

    std::string msg = run_case(body, i, case_seed, size);
    ++r.cases_run;
    if (msg.empty()) continue;

    // Shrink by halving the size hint while the same case seed still fails.
    std::size_t failing_size = size;
    std::string failing_msg = msg;
    std::size_t probe = size / 2;
    while (probe >= lo && probe < failing_size) {
      std::string m = run_case(body, i, case_seed, probe);
      if (m.empty()) break;
      failing_size = probe;
      failing_msg = std::move(m);
      probe /= 2;
    }

    r.ok = false;
    r.failing_case = i;
    r.failing_seed = case_seed;
    r.failing_size = failing_size;
    std::ostringstream out;
    out << "property '" << name << "' failed at case " << i << "/" << cases << ": "
        << failing_msg << "\n  case seed 0x" << std::hex << case_seed << std::dec << ", size "
        << failing_size;
    if (failing_size != size) out << " (shrunk from " << size << ")";
    out << "\n  reproduce: P5_TEST_SEED=0x" << std::hex << base_seed << std::dec
        << " (base seed; the runner re-derives the case)";
    r.message = out.str();
    return r;
  }
  return r;
}

Bytes gen_payload(Xoshiro256& rng, std::size_t size) {
  Bytes p;
  p.reserve(size);
  // Occasionally generate the pathological all-escape payload that drives
  // worst-case stuffing expansion (the paper's sizing argument).
  if (size > 0 && rng.chance(0.05)) {
    p.assign(size, rng.chance(0.5) ? hdlc::kFlag : hdlc::kEscape);
    return p;
  }
  for (std::size_t i = 0; i < size; ++i) {
    if (rng.chance(0.15))
      p.push_back(rng.chance(0.5) ? hdlc::kFlag : hdlc::kEscape);
    else if (rng.chance(0.1))
      p.push_back(static_cast<u8>(rng.below(0x20)));  // ACCM-sensitive controls
    else
      p.push_back(rng.byte());
  }
  return p;
}

u16 gen_protocol(Xoshiro256& rng) {
  return static_cast<u16>(((rng.byte() & 0xFEu) << 8) | rng.byte() | 1u);
}

hdlc::FrameConfig gen_frame_config(Xoshiro256& rng) {
  hdlc::FrameConfig cfg;
  cfg.acfc = rng.chance(0.5);
  cfg.pfc = rng.chance(0.5);
  cfg.fcs = rng.chance(0.5) ? hdlc::FcsKind::kFcs32 : hdlc::FcsKind::kFcs16;
  cfg.accm = rng.chance(0.3) ? hdlc::Accm::async_default() : hdlc::Accm::sonet();
  return cfg;
}

}  // namespace p5::testing
