// A complete software PPP endpoint: LCP + IPCP over HDLC-like framing.
//
// This is the control-plane companion to the P5 datapath: examples and the
// end-to-end tests connect two PppEndpoints back to back (directly, or
// through the SONET substrate / P5 cycle model), negotiate the link, then
// move IPv4 datagrams. The negotiated LCP result is applied to the frame
// configuration the same way the paper's host microprocessor would program
// the OAM registers.
#pragma once

#include <functional>
#include <memory>

#include "common/types.hpp"
#include "hdlc/delineation.hpp"
#include "hdlc/frame.hpp"
#include "ppp/ipcp.hpp"
#include "ppp/lcp.hpp"
#include "ppp/lqm.hpp"

namespace p5::ppp {

enum class Phase : u8 { kDead, kEstablish, kNetwork, kTerminate };

[[nodiscard]] const char* to_string(Phase p);

struct EndpointStats {
  u64 frames_tx = 0;
  u64 frames_rx = 0;
  u64 fcs_errors = 0;
  u64 unknown_protocols = 0;
  u64 datagrams_tx = 0;
  u64 datagrams_rx = 0;
  u64 dropped_not_open = 0;
};

class PppEndpoint {
 public:
  struct Config {
    hdlc::FrameConfig frame;  ///< initial (pre-negotiation) framing
    LcpConfig lcp;
    IpcpConfig ipcp;
  };

  /// `wire_tx` transmits raw octets (flags included) toward the peer.
  PppEndpoint(std::string name, Config cfg, std::function<void(BytesView)> wire_tx);

  /// Deliver received IPv4 datagrams here.
  void set_ip_sink(std::function<void(BytesView)> sink) { ip_sink_ = std::move(sink); }

  // ---- control ----
  void lower_up();    ///< PHY came up: starts LCP
  void lower_down();
  void open();        ///< administrative open
  void close();
  void tick();        ///< advance protocol timers one unit

  // ---- data ----
  /// Encapsulate and transmit one IPv4 datagram (drops unless Network phase).
  bool send_ip(BytesView datagram);

  /// Feed raw octets received from the wire.
  void wire_rx(BytesView octets);

  // ---- introspection ----
  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] bool ip_ready() const { return ipcp_ && ipcp_->is_opened(); }
  [[nodiscard]] const EndpointStats& stats() const { return stats_; }
  [[nodiscard]] Lcp& lcp() { return *lcp_; }
  [[nodiscard]] Ipcp& ipcp() { return *ipcp_; }
  /// Link-quality monitor; non-null once LCP opened with LQM negotiated
  /// (either side requested it).
  [[nodiscard]] LqmMonitor* lqm() { return lqm_.get(); }
  [[nodiscard]] const hdlc::FrameConfig& frame_config() const { return frame_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  void send_control(u16 protocol, const Packet& pkt);
  void send_frame(u16 protocol, BytesView info);
  void on_frame(BytesView stuffed_content);
  void on_lcp_up(const LcpResult& result);
  void on_lcp_down();

  std::string name_;
  hdlc::FrameConfig frame_;
  hdlc::FrameConfig negotiating_frame_;  ///< LCP always uses default framing
  std::function<void(BytesView)> wire_tx_;
  std::function<void(BytesView)> ip_sink_;

  std::unique_ptr<Lcp> lcp_;
  std::unique_ptr<Ipcp> ipcp_;
  std::unique_ptr<LqmMonitor> lqm_;
  u32 requested_lqr_period_ = 0;
  hdlc::FrameArena tx_arena_;  ///< reusable scratch for zero-alloc encoding
  fastpath::EscapeEngine rx_engine_{hdlc::Accm::sonet()};  ///< dispatch derived once
  Bytes rx_scratch_;  ///< reusable destuff buffer (zero-alloc steady state)
  hdlc::Delineator delineator_;
  Phase phase_ = Phase::kDead;
  EndpointStats stats_;
};

}  // namespace p5::ppp
