#include "linecard/telemetry.hpp"

#include <algorithm>

namespace p5::linecard {

ChannelSnapshot& ChannelSnapshot::operator+=(const ChannelSnapshot& o) {
  frames_in += o.frames_in;
  frames_out += o.frames_out;
  bytes_in += o.bytes_in;
  bytes_out += o.bytes_out;
  fcs_errors += o.fcs_errors;
  frames_lost += o.frames_lost;
  ring_full_stalls += o.ring_full_stalls;
  ingress_hwm = std::max(ingress_hwm, o.ingress_hwm);
  egress_hwm = std::max(egress_hwm, o.egress_hwm);
  escape_scalar += o.escape_scalar;
  escape_swar += o.escape_swar;
  escape_simd += o.escape_simd;
  return *this;
}

ChannelSnapshot ChannelTelemetry::read_once() const {
  ChannelSnapshot s;
  s.frames_in = frames_in_.load(std::memory_order_acquire);
  s.frames_out = frames_out_.load(std::memory_order_acquire);
  s.bytes_in = bytes_in_.load(std::memory_order_acquire);
  s.bytes_out = bytes_out_.load(std::memory_order_acquire);
  s.fcs_errors = fcs_errors_.load(std::memory_order_acquire);
  s.frames_lost = frames_lost_.load(std::memory_order_acquire);
  s.ring_full_stalls = ring_full_stalls_.load(std::memory_order_acquire);
  s.ingress_hwm = ingress_hwm_.load(std::memory_order_acquire);
  s.egress_hwm = egress_hwm_.load(std::memory_order_acquire);
  s.escape_scalar = escape_scalar_.load(std::memory_order_acquire);
  s.escape_swar = escape_swar_.load(std::memory_order_acquire);
  s.escape_simd = escape_simd_.load(std::memory_order_acquire);
  return s;
}

ChannelSnapshot ChannelTelemetry::snapshot() const {
  ChannelSnapshot prev = read_once();
  for (int attempt = 0; attempt < 8; ++attempt) {
    ChannelSnapshot cur = read_once();
    if (cur == prev) return cur;
    prev = cur;
  }
  return prev;  // writer outran us; monotonic counters make this still valid
}

Telemetry::Telemetry(std::size_t channels) {
  per_channel_.reserve(channels);
  for (std::size_t i = 0; i < channels; ++i)
    per_channel_.push_back(std::make_unique<ChannelTelemetry>());
}

ChannelSnapshot Telemetry::snapshot(std::size_t i) const { return per_channel_[i]->snapshot(); }

ChannelSnapshot Telemetry::aggregate() const {
  ChannelSnapshot sum;
  for (const auto& ch : per_channel_) sum += ch->snapshot();
  return sum;
}

}  // namespace p5::linecard
