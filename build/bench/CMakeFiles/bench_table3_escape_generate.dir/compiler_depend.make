# Empty compiler generated dependencies file for bench_table3_escape_generate.
# This may be replaced when dependencies are built.
