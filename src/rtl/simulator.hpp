// Cycle scheduler: evaluates registered modules in order, then commits all
// modules and channels. Registration order encodes the pipeline's ready-path:
// register sinks before sources (see Fifo's evaluation-order contract).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "rtl/fifo.hpp"
#include "rtl/module.hpp"

namespace p5::rtl {

class Simulator {
 public:
  void add(Module& m) { modules_.push_back(&m); }
  void add_channel(FifoBase& f) { channels_.push_back(&f); }

  /// Advance one clock cycle.
  void step() {
    for (Module* m : modules_) m->eval();
    for (Module* m : modules_) m->commit();
    for (FifoBase* f : channels_) f->commit();
    ++cycle_;
  }

  void run(u64 cycles) {
    for (u64 i = 0; i < cycles; ++i) step();
  }

  /// Step until `done()` returns true or `max_cycles` elapse.
  /// Returns the number of cycles executed, or max_cycles if the predicate
  /// never fired.
  template <typename Pred>
  u64 run_until(Pred&& done, u64 max_cycles) {
    for (u64 i = 0; i < max_cycles; ++i) {
      if (done()) return i;
      step();
    }
    return max_cycles;
  }

  [[nodiscard]] u64 cycle() const { return cycle_; }

 private:
  std::vector<Module*> modules_;
  std::vector<FifoBase*> channels_;
  u64 cycle_ = 0;
};

}  // namespace p5::rtl
